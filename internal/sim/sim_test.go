package sim

import (
	"flag"
	"fmt"
	"sync"
	"testing"
)

// -seeds widens the matrix locally: `go test ./internal/sim -seeds 256`.
var seedCount = flag.Int("seeds", 32, "number of seeds in the simulation matrix")

// TestSimMatrix is the standing correctness gate: every seed runs the full
// randomized workload against the real stack at workers 1, 2, and 4, every
// invariant must hold, and the three traces must be byte-identical — the
// parallel execute phase may not change a single virtual-time outcome.
func TestSimMatrix(t *testing.T) {
	type stats struct {
		checked, voided int
	}
	var mu sync.Mutex
	total := stats{}
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			base, err := Run(Config{Seed: seed, Workers: 1})
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, v := range base.Violations {
				t.Errorf("workers=1: %s", v)
			}
			if base.Submitted == 0 {
				t.Errorf("run submitted no queries; the action stream is broken")
			}
			for _, w := range []int{2, 4} {
				res, err := Run(Config{Seed: seed, Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for _, v := range res.Violations {
					t.Errorf("workers=%d: %s", w, v)
				}
				if res.Trace != base.Trace {
					t.Errorf("workers=%d trace differs from workers=1 (lengths %d vs %d): %s",
						w, len(res.Trace), len(base.Trace), firstDiff(base.Trace, res.Trace))
				}
			}
			mu.Lock()
			total.checked += base.ExactChecked
			total.voided += base.ExactVoided
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		// The stage-model exactness invariant is voided on checks where a
		// cost refinement re-anchored the model. Voids must stay a small
		// minority (at most a third of checked), or the invariant has
		// silently gone vacuous.
		if total.voided*3 > total.checked {
			t.Errorf("exactness invariant voided too often: checked=%d voided=%d",
				total.checked, total.voided)
		}
		t.Logf("exactness checked=%d voided=%d", total.checked, total.voided)
	})
}

// TestSimReplayDeterministic pins the replay contract behind
// `mqpi-bench -sim -seed N`: the same cell run twice is byte-identical.
func TestSimReplayDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 17, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 17, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("same seed, same workers, different traces: %s", firstDiff(a.Trace, b.Trace))
	}
}

// TestSimScriptDriven pins the fuzz entry point: a byte script replaces the
// rng action stream and is likewise deterministic.
func TestSimScriptDriven(t *testing.T) {
	script := []byte{
		0x00, 0x10, // submit
		0x04, 0x80, // advance
		0x00, 0x57, // submit
		0x09, 0x00, // block
		0x04, 0xff, // advance
		0x0a, 0x00, // unblock
		0x0b, 0x01, // abort
		0x04, 0x40, // advance
	}
	a, err := Run(Config{Seed: 3, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) > 0 {
		t.Fatalf("violations: %v", a.Violations)
	}
	if a.Submitted != 2 || a.Actions < 8 {
		t.Fatalf("script applied %d actions, submitted %d; want >=8 actions, 2 submissions", a.Actions, a.Submitted)
	}
	b, err := Run(Config{Seed: 3, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("script run not deterministic: %s", firstDiff(a.Trace, b.Trace))
	}
}

// firstDiff locates the first differing line of two traces.
func firstDiff(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("one trace is a prefix of the other (%d vs %d lines)", len(la), len(lb))
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
