package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mqpi/internal/cluster"
	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
	"mqpi/internal/sched"
	"mqpi/internal/service"
)

// ClusterConfig parameterizes one cluster-mode simulation: the same seeded
// action-stream idea as Config, but driving a sharded cluster.Cluster front
// door instead of a single manager. Each shard runs the full real stack; the
// checker adds the router-level invariants on top (placement conservation,
// gid uniqueness, no lost work across aborts, admission accounting).
type ClusterConfig struct {
	Seed    int64
	Workers int // per-shard execute-phase workers; traces must not depend on it
	Shards  int // default 3
	Routing string
	Steps   int     // default 48
	MPL     int     // default 3
	RateC   float64 // default 10
	Quantum float64 // default 0.5
	Rows    int     // per-shard scan-table cardinality (default 768)

	// AdmitRate/AdmitBurst/AdmitQueue configure the token-bucket front door;
	// the default rate 0 disables admission so every submission routes.
	AdmitRate  float64
	AdmitBurst float64
	AdmitQueue bool

	// Fold enables shared-scan folding on every shard. With least-loaded
	// routing the front door becomes fold-aware, so placement may differ from
	// a fold-off run; the C6 invariant checks each shard's cost-plane
	// conservation either way.
	Fold bool
	// NoDML remaps DML actions to advances so a fold-on run is comparable
	// against a fold-off baseline under placement-stable policies.
	NoDML bool
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Routing == "" {
		c.Routing = "round-robin"
	}
	if c.Steps <= 0 {
		c.Steps = 48
	}
	if c.MPL <= 0 {
		c.MPL = 3
	}
	if c.RateC <= 0 {
		c.RateC = 10
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.Rows <= 0 {
		c.Rows = 768
	}
	return c
}

// ClusterResult is the outcome of one cluster-mode run.
type ClusterResult struct {
	// Trace is canonical (no wall-clock values, no worker counts): the same
	// seed must produce a byte-identical trace at every Workers setting.
	Trace      string
	Violations []string
	Actions    int
	// Submitted counts accepted submissions; Rejected counts 429s from the
	// admission bucket; Aborted counts successful aborts.
	Submitted, Rejected, Aborted int
}

// RunCluster executes one cluster simulation to completion.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.withDefaults()
	s, err := newClusterSim(cfg)
	if err != nil {
		return nil, err
	}
	defer s.c.Close()
	return s.run()
}

// clusterOpTable weights the cluster repertoire: submissions and advances
// dominate, with enough aborts and session churn to stress the routing
// invariants.
var clusterOpTable = [16]opKind{
	opSubmit, opSubmit, opSubmit, opSubmit, opSubmitDelayed,
	opAdvance, opAdvance, opAdvance, opAdvance, opAdvance,
	opBlock, opUnblock, opAbort, opAbort,
	opSetPriority, opExec,
}

type clusterSim struct {
	cfg ClusterConfig
	c   *cluster.Cluster
	src actionSource
	tr  strings.Builder

	actionN int
	execN   int

	submitted, rejected, aborted int
	advancedTotal                float64
	// live tracks every accepted gid and whether it has been seen terminal;
	// conservation checks walk it after every action.
	accepted   []int
	lastEpochs []uint64
	violations []string
}

// clusterDB builds one shard's replica dataset. Every shard must be
// byte-identical, so the builder reseeds its own rng per call instead of
// sharing a stream across shards.
func clusterDB(seed int64, rows int) (*engine.DB, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	db := engine.Open()
	for _, stmt := range []string{
		`CREATE TABLE t0 (k BIGINT, v DOUBLE)`,
		`CREATE TABLE t1 (k BIGINT, v DOUBLE)`,
	} {
		if _, err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	cat := db.Catalog()
	for i := 0; i < rows; i++ {
		if err := cat.Insert("t0", types.Row{types.NewInt(int64(i % keyRangeT0)), types.NewFloat(rng.Float64() * 100)}); err != nil {
			return nil, err
		}
		if err := cat.Insert("t1", types.Row{types.NewInt(int64(i % keyRangeT1)), types.NewFloat(rng.Float64() * 100)}); err != nil {
			return nil, err
		}
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	return db, nil
}

func newClusterSim(cfg ClusterConfig) (*clusterSim, error) {
	var dbErr error
	c, err := cluster.New(cluster.Config{
		Shards:     cfg.Shards,
		Routing:    cfg.Routing,
		AdmitRate:  cfg.AdmitRate,
		AdmitBurst: cfg.AdmitBurst,
		AdmitQueue: cfg.AdmitQueue,
		Service: service.Config{
			Sched: sched.Config{
				RateC:   cfg.RateC,
				MPL:     cfg.MPL,
				Quantum: cfg.Quantum,
				Workers: cfg.Workers,
				Fold:    cfg.Fold,
				Weights: map[int]float64{0: 1, 1: 2, 2: 4},
			},
			TickEvery: -1,
			EventCap:  4096,
		},
		OpenDB: func() *engine.DB {
			db, err := clusterDB(cfg.Seed, cfg.Rows)
			if err != nil {
				dbErr = err
				return engine.Open()
			}
			return db
		},
	})
	if err != nil {
		return nil, err
	}
	if dbErr != nil {
		c.Close()
		return nil, dbErr
	}
	return &clusterSim{
		cfg:        cfg,
		c:          c,
		src:        &rngSource{rng: rand.New(rand.NewSource(cfg.Seed)), left: cfg.Steps},
		lastEpochs: make([]uint64, cfg.Shards),
	}, nil
}

func (s *clusterSim) violate(format string, args ...any) {
	s.violations = append(s.violations, fmt.Sprintf("a%03d: ", s.actionN)+fmt.Sprintf(format, args...))
}

func (s *clusterSim) run() (*ClusterResult, error) {
	s.check()
	for {
		op, arg, ok := s.src.next()
		if !ok || len(s.violations) > 0 {
			break
		}
		s.actionN++
		kind := clusterOpTable[op&15]
		if s.cfg.NoDML && kind == opExec {
			kind = opAdvance
		}
		if err := s.apply(kind, arg); err != nil {
			return nil, fmt.Errorf("action %d: %w", s.actionN, err)
		}
		s.check()
	}
	// Drain so terminal conservation is checked over completed work too.
	for i := 0; i < 64 && len(s.violations) == 0; i++ {
		ov, err := s.c.Overview()
		if err != nil {
			return nil, err
		}
		busy := false
		for _, q := range ov.Running {
			if q.Status == "running" {
				busy = true
			}
		}
		if !busy && len(ov.Scheduled) == 0 {
			break
		}
		s.actionN++
		fmt.Fprintf(&s.tr, "a%03d drain advance %s\n", s.actionN, g(4*s.cfg.Quantum))
		if err := s.c.Advance(4 * s.cfg.Quantum); err != nil {
			return nil, err
		}
		s.advancedTotal += 4 * s.cfg.Quantum
		s.check()
	}
	return &ClusterResult{
		Trace:      s.tr.String(),
		Violations: s.violations,
		Actions:    s.actionN,
		Submitted:  s.submitted,
		Rejected:   s.rejected,
		Aborted:    s.aborted,
	}, nil
}

// sessionPool is small on purpose: sessions must collide across submissions
// so affinity routing actually groups work (and abort churn hits live keys).
const sessionPool = 6

func (s *clusterSim) apply(kind opKind, arg byte) error {
	switch kind {
	case opSubmit, opSubmitDelayed:
		req := cluster.SubmitRequest{
			SubmitRequest: service.SubmitRequest{
				Label:    fmt.Sprintf("q%d", s.submitted+s.rejected+1),
				SQL:      s.clusterSQL(arg),
				Priority: int(arg) % 3,
			},
			Session: fmt.Sprintf("session-%d", int(arg>>2)%sessionPool),
		}
		if kind == opSubmitDelayed {
			req.Delay = s.cfg.Quantum * (0.5 + float64(arg%16))
		}
		view, err := s.c.Submit(req)
		if err != nil {
			if !strings.Contains(err.Error(), "admission rejected") {
				return err
			}
			s.rejected++
			fmt.Fprintf(&s.tr, "a%03d submit %s rejected (admission)\n", s.actionN, req.Session)
			return nil
		}
		s.submitted++
		s.accepted = append(s.accepted, view.ID)
		shard := (view.ID - 1) % s.cfg.Shards
		fmt.Fprintf(&s.tr, "a%03d submit gid=%d shard=%d %s prio=%d delay=%s status=%s sql=%q\n",
			s.actionN, view.ID, shard, req.Session, req.Priority, g(req.Delay), view.Status, req.SQL)
	case opAdvance:
		v := s.cfg.Quantum * (0.3 + 3.7*float64(arg)/255)
		fmt.Fprintf(&s.tr, "a%03d advance %s\n", s.actionN, g(v))
		if err := s.c.Advance(v); err != nil {
			return err
		}
		s.advancedTotal += v
	case opBlock, opUnblock, opAbort, opSetPriority:
		gid, ok := s.pickGID(arg, kind)
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d %s skip (no target)\n", s.actionN, kind)
			return nil
		}
		var err error
		switch kind {
		case opBlock:
			err = s.c.Block(gid)
		case opUnblock:
			err = s.c.Unblock(gid)
		case opAbort:
			err = s.c.Abort(gid)
			if err == nil {
				s.aborted++
			}
		default:
			err = s.c.SetPriority(gid, int(arg>>4)%3)
		}
		fmt.Fprintf(&s.tr, "a%03d %s gid=%d err=%v\n", s.actionN, kind, gid, err)
	case opExec:
		s.execN++
		table := "t0"
		keys := keyRangeT0
		if arg&4 != 0 {
			table = "t1"
			keys = keyRangeT1
		}
		stmt := fmt.Sprintf("insert into %s values (%d, %d.5)", table, int(arg)%keys, s.execN)
		n, err := s.c.Exec(stmt)
		if err != nil {
			return fmt.Errorf("exec %q: %w", stmt, err)
		}
		fmt.Fprintf(&s.tr, "a%03d exec %q rows=%d\n", s.actionN, stmt, n)
	default:
		return fmt.Errorf("sim: cluster op %d unsupported", kind)
	}
	return nil
}

func (s *clusterSim) clusterSQL(arg byte) string {
	table := "t0"
	keys := keyRangeT0
	if arg&8 != 0 {
		table = "t1"
		keys = keyRangeT1
	}
	p := int(arg) % keys
	switch (arg >> 4) % 3 {
	case 0:
		return fmt.Sprintf("select sum(v) from %s", table)
	case 1:
		return fmt.Sprintf("select count(*) from %s where k < %d", table, p)
	default:
		return fmt.Sprintf("select sum(v), count(*) from %s where k >= %d", table, p)
	}
}

// pickGID selects a target from the merged overview, in gid order.
func (s *clusterSim) pickGID(arg byte, kind opKind) (int, bool) {
	ov, err := s.c.Overview()
	if err != nil {
		return 0, false
	}
	var ids []int
	add := func(views []service.QueryView, statuses ...string) {
		for _, v := range views {
			for _, st := range statuses {
				if v.Status == st {
					ids = append(ids, v.ID)
				}
			}
		}
	}
	switch kind {
	case opBlock:
		add(ov.Running, "running")
	case opUnblock:
		add(ov.Running, "blocked")
	case opAbort:
		add(ov.Running, "running", "blocked")
		add(ov.Queued, "queued")
		add(ov.Scheduled, "scheduled")
	default:
		add(ov.Running, "running", "blocked")
		add(ov.Queued, "queued")
	}
	if len(ids) == 0 {
		return 0, false
	}
	sort.Ints(ids)
	return ids[int(arg)%len(ids)], true
}

// check enforces the router-level invariants against the merged view and
// appends the canonical state line to the trace.
func (s *clusterSim) check() {
	ov, err := s.c.Overview()
	if err != nil {
		s.violate("overview failed: %v", err)
		return
	}

	// C1+C2 — placement conservation and gid uniqueness: every accepted
	// query appears in the merged view exactly once, on the shard its gid
	// encodes, and nothing the cluster never accepted shows up.
	seen := map[int]string{}
	walk := func(views []service.QueryView, section string) {
		for _, v := range views {
			if prev, dup := seen[v.ID]; dup {
				s.violate("C2: gid %d appears in both %s and %s", v.ID, prev, section)
			}
			seen[v.ID] = section
		}
	}
	walk(ov.Running, "running")
	walk(ov.Queued, "queued")
	walk(ov.Scheduled, "scheduled")
	walk(ov.Finished, "finished")
	if len(seen) != len(s.accepted) {
		s.violate("C1: merged view holds %d queries, accepted %d", len(seen), len(s.accepted))
	}
	for _, gid := range s.accepted {
		if _, ok := seen[gid]; !ok {
			s.violate("C1: accepted gid %d vanished from the merged view", gid)
		}
	}

	// C3 — no lost work across aborts: terminal + live counts add up to
	// every accepted admission (aborts move queries between sections, they
	// never drop them).
	total := len(ov.Running) + len(ov.Queued) + len(ov.Scheduled) + len(ov.Finished)
	if total != s.submitted {
		s.violate("C3: view total %d != %d accepted submissions", total, s.submitted)
	}

	// C4 — per-shard epoch monotonicity and clock sanity: published
	// snapshots never go backwards, and no shard's virtual clock outruns the
	// total advanced time.
	for i, sh := range ov.Shards {
		if sh.Epoch < s.lastEpochs[i] {
			s.violate("C4: shard %d epoch went backwards %d -> %d", i, s.lastEpochs[i], sh.Epoch)
		}
		s.lastEpochs[i] = sh.Epoch
		if sh.Now > s.advancedTotal+1e-9 {
			s.violate("C4: shard %d clock %s beyond advanced total %s", i, g(sh.Now), g(s.advancedTotal))
		}
	}

	// C5 — admission accounting: the router placed exactly the accepted
	// submissions, spread over the shards.
	routed := uint64(0)
	for _, n := range s.c.Metrics().RoutedCounts() {
		routed += n
	}
	if routed != uint64(s.submitted) {
		s.violate("C5: routed %d != accepted %d", routed, s.submitted)
	}
	if got := s.c.Metrics().Rejected(); got != uint64(s.rejected) {
		s.violate("C5: rejected counter %d != observed %d", got, s.rejected)
	}

	// C6 — fold conservation per shard (I11 at cluster scope): each shard's
	// work/cost gap is exactly its registry's saved pages, and with folding
	// off the two planes are identical everywhere. Integer page charges make
	// the equality float-exact. Violations only — nothing is traced here.
	for i := 0; i < s.cfg.Shards; i++ {
		sov, err := s.c.Shard(i).Overview()
		if err != nil {
			s.violate("C6: shard %d overview failed: %v", i, err)
			continue
		}
		saved := 0.0
		for _, sec := range [][]service.QueryView{sov.Running, sov.Queued, sov.Scheduled, sov.Finished} {
			for _, v := range sec {
				if v.Cost > v.Done {
					s.violate("C6: shard %d q%d engine cost %s exceeds charged work %s", i, v.ID, g(v.Cost), g(v.Done))
				}
				if !s.cfg.Fold && v.Cost != v.Done {
					s.violate("C6: shard %d q%d cost %s != done %s with folding off", i, v.ID, g(v.Cost), g(v.Done))
				}
				saved += v.Done - v.Cost
			}
		}
		if saved != float64(sov.Fold.PagesSaved) {
			s.violate("C6: shard %d sum(done-cost) = %s, registry saved %d pages (must be exact)",
				i, g(saved), sov.Fold.PagesSaved)
		}
	}

	// Canonical state line: per-shard section counts and clocks only —
	// nothing wall-clock- or worker-dependent.
	fmt.Fprintf(&s.tr, "state")
	for _, sh := range ov.Shards {
		fmt.Fprintf(&s.tr, " s%d[now=%s r=%d q=%d s=%d f=%d rem=%s]",
			sh.Shard, g(sh.Now), sh.Running, sh.Queued, sh.Scheduled, sh.Finished, g(sh.RemainingU))
	}
	fmt.Fprintf(&s.tr, " rejected=%d\n", s.rejected)
}
