package sim

import "testing"

// FuzzSim mutates the simulator's action trace: each byte pair is one action
// (opcode selector, argument) applied to the live stack, and the invariant
// checker validates the global state after every action. Any crash or
// violation reproduces from the corpus entry alone.
//
//	go test ./internal/sim -fuzz FuzzSim -fuzztime 60s
func FuzzSim(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x04, 0x80, 0x04, 0xff})
	f.Add([]byte{0x00, 0x10, 0x00, 0x57, 0x09, 0x00, 0x04, 0xff, 0x0a, 0x00, 0x0b, 0x01, 0x04, 0x40})
	f.Add([]byte{0x03, 0x22, 0x04, 0xc0, 0x0d, 0x05, 0x0c, 0x31, 0x04, 0x20, 0x0e, 0x09, 0x0f, 0x00})
	// Priority-change churn: repeated SetPriority between short advances keeps
	// re-keying the incremental stage structure (I10) while predictions are
	// repeatedly voided and re-taken (I6/I7).
	f.Add([]byte{0x00, 0x10, 0x00, 0x57, 0x00, 0x91, 0x0c, 0x11, 0x04, 0x30, 0x0c, 0x52, 0x04, 0x30,
		0x0c, 0x93, 0x0c, 0x20, 0x04, 0x60, 0x0c, 0x64, 0x04, 0xff})
	// Fold churn (opcode 0x08 toggles folding under FoldToggle): same-table
	// submissions fold, detach on the off-toggle mid-scan, and re-form on the
	// on-toggle, with I11 conservation checked after every action.
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x04, 0x80, 0x08, 0x00, 0x04, 0x40, 0x08, 0x01,
		0x00, 0x02, 0x04, 0xff})
	// Fold plus victim churn: block and abort members of a live group, then
	// toggle folding around a DML write to the scanned table.
	f.Add([]byte{0x08, 0x01, 0x00, 0x00, 0x00, 0x01, 0x04, 0x60, 0x09, 0x00, 0x0d, 0x01,
		0x08, 0x00, 0x0b, 0x00, 0x08, 0x01, 0x00, 0x03, 0x04, 0xff})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) < 2 {
			t.Skip("no actions")
		}
		// Cap the action count: the checker is O(queries) per action and the
		// fuzzer's value is in odd orderings, not long runs. The small table
		// keeps dataset construction out of the inner loop's budget.
		if len(script) > 192 {
			script = script[:192]
		}
		// Folding starts on and the script can toggle it, so the fuzzer
		// explores attach/detach orderings interleaved with DML and victim
		// operations — the riskiest corner of the shared-cursor protocol.
		res, err := Run(Config{Seed: 11, Rows: 384, Fold: true, FoldToggle: true, Script: script})
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		for _, v := range res.Violations {
			t.Errorf("invariant violation: %s", v)
		}
	})
}
