// Package sim is the deterministic workload simulator and invariant checker
// for the full progress-indicator stack: a service.Manager (owner goroutine,
// epoch-stamped snapshots, lock-free reads) over a sched.Server (three-phase
// tick, MPL admission, weighted fair sharing) over the real SQL engine.
//
// A single rand.Source seeds everything — the dataset, the SQL workload, the
// action stream (staggered arrivals, priority changes, block/unblock/abort,
// DML through Exec, §3.1–3.3 planner calls, irregular virtual-time advances) —
// so any failure reproduces exactly from its seed:
//
//	go test ./internal/sim -run TestSimMatrix       # the CI seed matrix
//	go run ./cmd/mqpi-bench -sim -seed 17 -workers 4 # replay one cell, full trace
//
// After every action a checker validates the global state (see invariants.go
// for the list: work conservation, stage-model exactness, re-prediction at
// boundaries, epoch monotonicity, MPL, slot conservation, metrics/view
// consistency, event lifecycle ordering). Every run also emits a canonical
// text trace containing no wall-clock values, so a run at Workers=1 must be
// byte-identical to the same seed at Workers=4 — the tentpole bit-identity
// guarantee of the parallel execute phase, checked end to end.
//
// The action stream can alternatively be driven by an opaque byte script
// (Config.Script), which is what the FuzzSim native fuzz target mutates.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/wm"
)

// Config parameterizes one simulation run. The zero value of every field is
// replaced by the defaults in withDefaults; only Seed and Workers normally
// need setting.
type Config struct {
	// Seed drives all randomness: dataset values, SQL workload, and (unless
	// Script is set) the action stream.
	Seed int64
	// Workers is the scheduler's execute-phase worker pool size. The trace is
	// byte-identical at every setting; the seed matrix runs 1/2/4.
	Workers int
	// Steps is the number of actions to generate (default 48). Ignored when
	// Script is set (the script length decides).
	Steps int
	// MPL is the admission limit (default 3).
	MPL int
	// RateC is the processing rate in U/s (default 10).
	RateC float64
	// Quantum is the virtual-time step in seconds (default 0.5).
	Quantum float64
	// Rows is the cardinality of the two scan tables (default 1536).
	Rows int
	// Script, when non-nil, replaces the rng-driven action stream with an
	// opaque byte stream: each action consumes two bytes (opcode selector,
	// argument). The dataset is still built from Seed. This is the FuzzSim
	// entry point.
	Script []byte
	// Fold starts the run with shared-scan folding enabled: same-table,
	// same-priority seq scans ride one cursor. Folding moves only the engine
	// cost plane; every charged-plane observable must be unaffected (I12).
	Fold bool
	// NoDML remaps DML actions to advances, freezing relation cardinalities.
	// A concurrent insert can legitimately be seen by a folded scan (which
	// starts mid-table) and missed by the solo scan of the same query, so the
	// fold-on/fold-off comparison is only exact with the data frozen.
	NoDML bool
	// FoldToggle remaps one advance slot of the op table to a fold on/off
	// switch, exercising attach/detach churn mid-scan. The I12 matrix keeps
	// it off so fold-on and fold-off runs see identical action streams; the
	// fuzz target turns it on.
	FoldToggle bool
	// Estimator selects the service's estimate plane (core.EstimatorModes;
	// "" means the default stage path). The I13 matrix runs "" and "stage"
	// runs of the same seed and demands byte-identical traces — the
	// pluggable plane must be a perfect wrapper until opted in. Non-stage
	// modes disable the stage-exactness invariants (I6, I7, I13): blended
	// points are heuristics, not the paper's exact model.
	Estimator string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Steps <= 0 {
		c.Steps = 48
	}
	if c.MPL <= 0 {
		c.MPL = 3
	}
	if c.RateC <= 0 {
		c.RateC = 10
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.Rows <= 0 {
		c.Rows = 1536
	}
	return c
}

// Result is the outcome of one simulation run.
type Result struct {
	// Trace is the canonical action/event/state trace. It contains no
	// wall-clock values and no worker counts, so it must be byte-identical
	// across runs of the same seed at different Config.Workers.
	Trace string
	// Violations lists every invariant violation, annotated with the action
	// index at which it was detected. Empty on a clean run.
	Violations []string
	// Actions is the number of actions applied.
	Actions int
	// Submitted/Finished/Failed/Aborted count query outcomes.
	Submitted, Finished, Failed, Aborted int
	// ExactChecked counts the checks where the stage-model exactness
	// invariant (I7) actually ran; ExactVoided counts the checks where it was
	// voided because a query left the fluid model (cost refinement or
	// chunk-granularity burst/payback). Tests assert the checked share
	// dominates, so the invariant cannot silently go vacuous.
	ExactChecked, ExactVoided int
	// Final summarizes every query's last published view in ID order. The
	// I12 cross-run comparison keys on it: a fold-on run must agree with the
	// fold-off baseline on everything except the cost plane.
	Final []QueryOutcome
}

// QueryOutcome is one query's terminal charged-plane view plus its engine
// cost.
type QueryOutcome struct {
	ID         int
	Status     string
	Done       float64
	Cost       float64
	FinishTime float64
}

// Run executes one simulation to completion (all actions, then a drain) and
// returns its trace and any invariant violations. Engine/build errors — which
// indicate a broken harness rather than a broken invariant — are returned as
// error.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	defer s.m.Close()
	return s.run()
}

// opKind enumerates the simulator's action repertoire.
type opKind uint8

const (
	opSubmit opKind = iota
	opSubmitDelayed
	opAdvance
	opBlock
	opUnblock
	opAbort
	opSetPriority
	opExec
	opPlan
	opDiagram
	opFold
)

// opTable maps the low 4 bits of an opcode byte to an action, with repeats
// providing the weighting (submissions and advances dominate, as in a real
// workload). Both the rng-driven stream and fuzz scripts select through this
// table, so a fuzz input is just a pre-rolled random stream.
var opTable = [16]opKind{
	opSubmit, opSubmit, opSubmit, opSubmitDelayed,
	opAdvance, opAdvance, opAdvance, opAdvance, opAdvance,
	opBlock, opUnblock, opAbort, opSetPriority,
	opExec, opPlan, opDiagram,
}

func (k opKind) String() string {
	switch k {
	case opSubmit:
		return "submit"
	case opSubmitDelayed:
		return "submit-delayed"
	case opAdvance:
		return "advance"
	case opBlock:
		return "block"
	case opUnblock:
		return "unblock"
	case opAbort:
		return "abort"
	case opSetPriority:
		return "priority"
	case opExec:
		return "exec"
	case opPlan:
		return "plan"
	case opDiagram:
		return "diagram"
	case opFold:
		return "fold"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// opFor maps an opcode byte to an action under the run's config: NoDML turns
// DML into advances (same argument, so the advance amount is unchanged), and
// FoldToggle turns one advance slot into a fold on/off switch.
func (s *sim) opFor(op byte) opKind {
	kind := opTable[op&15]
	if s.cfg.NoDML && kind == opExec {
		kind = opAdvance
	}
	if s.cfg.FoldToggle && op&15 == 8 {
		kind = opFold
	}
	return kind
}

// actionSource yields (opcode, argument) byte pairs: from the seeded rng, or
// from a fuzz script.
type actionSource interface {
	next() (op, arg byte, ok bool)
}

type rngSource struct {
	rng  *rand.Rand
	left int
}

func (r *rngSource) next() (byte, byte, bool) {
	if r.left <= 0 {
		return 0, 0, false
	}
	r.left--
	return byte(r.rng.Intn(256)), byte(r.rng.Intn(256)), true
}

type scriptSource struct {
	buf []byte
	pos int
}

func (s *scriptSource) next() (byte, byte, bool) {
	if s.pos+1 >= len(s.buf) {
		return 0, 0, false
	}
	op, arg := s.buf[s.pos], s.buf[s.pos+1]
	s.pos += 2
	return op, arg, true
}

// sim is one run's mutable state.
type sim struct {
	cfg Config
	rng *rand.Rand
	db  *engine.DB
	m   *service.Manager
	chk *checker
	tr  strings.Builder

	src     actionSource
	actionN int
	execN   int // deterministic counter for DML value generation

	submitted, aborted int
}

// Table geometry: two scan relations of cfg.Rows tuples each and one small
// outer relation driving the correlated-subquery template through the t0
// index, mirroring the paper's part/lineitem shape at toy scale.
const (
	keyRangeT0 = 251 // distinct keys in t0 (prime, so i%range cycles evenly)
	keyRangeT1 = 97
	partRows   = 48
)

func newSim(cfg Config) (*sim, error) {
	if err := core.ValidEstimator(cfg.Estimator); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.Open()
	mk := func(stmt string) error {
		_, err := db.Exec(stmt)
		return err
	}
	if err := mk(`CREATE TABLE t0 (k BIGINT, v DOUBLE)`); err != nil {
		return nil, err
	}
	if err := mk(`CREATE TABLE t1 (k BIGINT, v DOUBLE)`); err != nil {
		return nil, err
	}
	if err := mk(`CREATE TABLE part (k BIGINT, v DOUBLE)`); err != nil {
		return nil, err
	}
	cat := db.Catalog()
	for i := 0; i < cfg.Rows; i++ {
		r0 := types.Row{types.NewInt(int64(i % keyRangeT0)), types.NewFloat(rng.Float64() * 100)}
		if err := cat.Insert("t0", r0); err != nil {
			return nil, err
		}
		r1 := types.Row{types.NewInt(int64(i % keyRangeT1)), types.NewFloat(rng.Float64() * 100)}
		if err := cat.Insert("t1", r1); err != nil {
			return nil, err
		}
	}
	for i := 0; i < partRows; i++ {
		row := types.Row{types.NewInt(int64(rng.Intn(keyRangeT0))), types.NewFloat(rng.Float64() * 100)}
		if err := cat.Insert("part", row); err != nil {
			return nil, err
		}
	}
	if err := mk(`CREATE INDEX t0_k ON t0 (k)`); err != nil {
		return nil, err
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}

	m := service.New(db, service.Config{
		Sched: sched.Config{
			RateC:   cfg.RateC,
			MPL:     cfg.MPL,
			Quantum: cfg.Quantum,
			Workers: cfg.Workers,
			Fold:    cfg.Fold,
			Weights: map[int]float64{0: 1, 1: 2, 2: 4},
		},
		TickEvery: -1, // manual clock: virtual time moves only through Advance
		EventCap:  4096,
		Estimator: cfg.Estimator,
	})
	s := &sim{cfg: cfg, rng: rng, db: db, m: m}
	s.chk = newChecker(m, cfg)
	if cfg.Script != nil {
		s.src = &scriptSource{buf: cfg.Script}
	} else {
		s.src = &rngSource{rng: rng, left: cfg.Steps}
	}
	return s, nil
}

func (s *sim) run() (*Result, error) {
	// Initial state line anchors the trace.
	s.chk.check(&s.tr, checkCtx{})
	for {
		op, arg, ok := s.src.next()
		if !ok || len(s.chk.violations) > 0 {
			break
		}
		s.actionN++
		kind := s.opFor(op)
		ctx, err := s.apply(kind, arg)
		if err != nil {
			return nil, fmt.Errorf("action %d (%s): %w", s.actionN, kind, err)
		}
		ctx.action = s.actionN
		s.chk.check(&s.tr, ctx)
	}
	// Drain: advance until the service is idle (or stalled on blocked
	// queries), so finish-time exactness is checked for every query that can
	// still finish.
	for i := 0; i < 64 && len(s.chk.violations) == 0; i++ {
		ov, err := s.m.Overview()
		if err != nil {
			return nil, err
		}
		busy := false
		for _, q := range ov.Running {
			if q.Status == "running" {
				busy = true
			}
		}
		if !busy && len(ov.Scheduled) == 0 {
			break
		}
		s.actionN++
		fmt.Fprintf(&s.tr, "a%03d drain advance %s\n", s.actionN, g(4*s.cfg.Quantum))
		if err := s.m.Advance(4 * s.cfg.Quantum); err != nil {
			return nil, err
		}
		s.chk.check(&s.tr, checkCtx{action: s.actionN, mutated: true, advanced: true})
	}

	res := &Result{
		Trace:        s.tr.String(),
		Violations:   s.chk.violations,
		Actions:      s.actionN,
		Submitted:    s.submitted,
		Aborted:      s.aborted,
		ExactChecked: s.chk.exactChecked,
		ExactVoided:  s.chk.exactVoided,
	}
	if ov, err := s.m.Overview(); err == nil {
		for _, q := range ov.Finished {
			switch q.Status {
			case "finished":
				res.Finished++
			case "failed":
				res.Failed++
			}
		}
		for _, sec := range [][]service.QueryView{ov.Running, ov.Queued, ov.Scheduled, ov.Finished} {
			for _, v := range sec {
				res.Final = append(res.Final, QueryOutcome{
					ID: v.ID, Status: v.Status, Done: v.Done, Cost: v.Cost, FinishTime: v.FinishTime,
				})
			}
		}
		sort.Slice(res.Final, func(i, j int) bool { return res.Final[i].ID < res.Final[j].ID })
	}
	return res, nil
}

// g formats a float with full precision: traces must be bit-comparable.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// apply performs one action and reports what the checker needs to know about
// it. Action errors that are part of the service contract (unknown ID, wrong
// state) are traced, not fatal; only harness breakage is returned as error.
func (s *sim) apply(kind opKind, arg byte) (checkCtx, error) {
	switch kind {
	case opSubmit, opSubmitDelayed:
		return s.doSubmit(kind == opSubmitDelayed, arg)
	case opAdvance:
		v := s.cfg.Quantum * (0.3 + 3.7*float64(arg)/255)
		fmt.Fprintf(&s.tr, "a%03d advance %s\n", s.actionN, g(v))
		if err := s.m.Advance(v); err != nil {
			return checkCtx{}, err
		}
		return checkCtx{mutated: true, advanced: true}, nil
	case opBlock:
		id, ok := s.pick(arg, "running")
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d block skip (no runnable)\n", s.actionN)
			return checkCtx{}, nil
		}
		err := s.m.Block(id)
		fmt.Fprintf(&s.tr, "a%03d block q%d err=%v\n", s.actionN, id, err)
		return checkCtx{mutated: true, perturbed: err == nil}, nil
	case opUnblock:
		id, ok := s.pick(arg, "blocked")
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d unblock skip (no blocked)\n", s.actionN)
			return checkCtx{}, nil
		}
		err := s.m.Unblock(id)
		fmt.Fprintf(&s.tr, "a%03d unblock q%d err=%v\n", s.actionN, id, err)
		return checkCtx{mutated: true, perturbed: err == nil}, nil
	case opAbort:
		id, ok := s.pick(arg, "any")
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d abort skip (no active)\n", s.actionN)
			return checkCtx{}, nil
		}
		err := s.m.Abort(id)
		if err == nil {
			s.aborted++
		}
		fmt.Fprintf(&s.tr, "a%03d abort q%d err=%v\n", s.actionN, id, err)
		return checkCtx{mutated: true, perturbed: err == nil}, nil
	case opSetPriority:
		id, ok := s.pick(arg, "active")
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d priority skip (no active)\n", s.actionN)
			return checkCtx{}, nil
		}
		prio := int(arg>>4) % 3
		err := s.m.SetPriority(id, prio)
		fmt.Fprintf(&s.tr, "a%03d priority q%d=%d err=%v\n", s.actionN, id, prio, err)
		return checkCtx{mutated: true, perturbed: err == nil}, nil
	case opExec:
		return s.doExec(arg)
	case opPlan:
		return s.doPlan(arg)
	case opDiagram:
		d, err := s.m.Diagram(48)
		if err != nil {
			return checkCtx{}, err
		}
		fmt.Fprintf(&s.tr, "a%03d diagram %d bytes\n%s", s.actionN, len(d), d)
		return checkCtx{}, nil
	case opFold:
		// Folding moves only the cost plane, so the toggle publishes an epoch
		// but does not perturb any charged-plane prediction.
		on := arg&1 == 1
		err := s.m.SetFold(on)
		fmt.Fprintf(&s.tr, "a%03d fold on=%v err=%v\n", s.actionN, on, err)
		return checkCtx{mutated: true}, nil
	default:
		return checkCtx{}, fmt.Errorf("sim: unknown op %d", kind)
	}
}

// queryTemplates renders the SQL workload. All templates are scan-driven with
// accurate optimizer statistics, which is what makes the stage-model
// exactness invariant meaningful (Assumption 2: remaining costs are known).
func (s *sim) querySQL(arg byte) string {
	table := "t0"
	keys := keyRangeT0
	if arg&8 != 0 {
		table = "t1"
		keys = keyRangeT1
	}
	p := int(arg) % keys
	switch (arg >> 4) % 5 {
	case 0:
		return fmt.Sprintf("select sum(v) from %s", table)
	case 1:
		return fmt.Sprintf("select count(*) from %s where k < %d", table, p)
	case 2:
		return fmt.Sprintf("select k, v from %s where v > %d order by v limit 5", table, p%90)
	case 3:
		return fmt.Sprintf("select sum(v), count(*) from %s where k >= %d", table, p)
	default:
		// The paper's correlated shape: outer scan over part, index-probe
		// subquery into t0 per outer row.
		return fmt.Sprintf("select count(*) from part p where (select sum(l.v) from t0 l where l.k = p.k) > %d", 10*(int(arg)%40))
	}
}

func (s *sim) doSubmit(delayed bool, arg byte) (checkCtx, error) {
	req := service.SubmitRequest{
		Label:    fmt.Sprintf("q%d", s.submitted+1),
		SQL:      s.querySQL(arg),
		Priority: int(arg) % 3,
	}
	if delayed {
		req.Delay = s.cfg.Quantum * (0.5 + float64(arg%16))
	}
	view, err := s.m.Submit(req)
	if err != nil {
		return checkCtx{}, err
	}
	s.submitted++
	fmt.Fprintf(&s.tr, "a%03d submit id=%d prio=%d delay=%s status=%s sql=%q\n",
		s.actionN, view.ID, req.Priority, g(req.Delay), view.Status, req.SQL)
	return checkCtx{mutated: true, perturbed: true}, nil
}

func (s *sim) doExec(arg byte) (checkCtx, error) {
	table := "t0"
	keys := keyRangeT0
	if arg&4 != 0 {
		table = "t1"
		keys = keyRangeT1
	}
	s.execN++
	var stmt string
	switch arg % 3 {
	case 0:
		stmt = fmt.Sprintf("insert into %s values (%d, %d.5), (%d, %d.25)",
			table, int(arg)%keys, s.execN, (int(arg)+7)%keys, s.execN)
	case 1:
		stmt = fmt.Sprintf("delete from %s where k = %d", table, int(arg)%keys)
	default:
		stmt = fmt.Sprintf("update %s set v = v + 1 where k = %d", table, int(arg)%keys)
	}
	n, err := s.m.Exec(stmt)
	if err != nil {
		return checkCtx{}, fmt.Errorf("exec %q: %w", stmt, err)
	}
	fmt.Fprintf(&s.tr, "a%03d exec %q rows=%d\n", s.actionN, stmt, n)
	// DML changes relation cardinalities under running scans: every estimate
	// may legitimately move, so it perturbs predictions for all queries.
	return checkCtx{mutated: true, perturbed: true}, nil
}

func (s *sim) doPlan(arg byte) (checkCtx, error) {
	switch arg % 3 {
	case 0:
		id, ok := s.pick(arg, "running")
		if !ok {
			fmt.Fprintf(&s.tr, "a%03d plan speedup-single skip\n", s.actionN)
			return checkCtx{}, nil
		}
		victims, err := s.m.SpeedUpSingle(id, 1+int(arg>>6))
		if err != nil {
			fmt.Fprintf(&s.tr, "a%03d plan speedup-single q%d err=%v\n", s.actionN, id, err)
			return checkCtx{}, nil
		}
		fmt.Fprintf(&s.tr, "a%03d plan speedup-single q%d ->", s.actionN, id)
		for _, v := range victims {
			fmt.Fprintf(&s.tr, " q%d:%s", v.ID, g(v.Benefit))
		}
		fmt.Fprintln(&s.tr)
	case 1:
		v, err := s.m.SpeedUpOthers()
		if err != nil {
			fmt.Fprintf(&s.tr, "a%03d plan speedup-others err=%v\n", s.actionN, err)
			return checkCtx{}, nil
		}
		fmt.Fprintf(&s.tr, "a%03d plan speedup-others -> q%d:%s\n", s.actionN, v.ID, g(v.Benefit))
	default:
		deadline := s.cfg.Quantum * float64(4+int(arg>>3))
		plan, err := s.m.PlanMaintenance(deadline, wm.Case1CompletedWork, false)
		if err != nil {
			fmt.Fprintf(&s.tr, "a%03d plan maintenance err=%v\n", s.actionN, err)
			return checkCtx{}, nil
		}
		fmt.Fprintf(&s.tr, "a%03d plan maintenance deadline=%s abort=%v lost=%s quiescent=%s\n",
			s.actionN, g(deadline), plan.Abort, g(plan.Lost), g(plan.Quiescent))
	}
	return checkCtx{}, nil
}

// pick deterministically selects a target query: candidates are gathered from
// the current overview in ID order and indexed by arg.
func (s *sim) pick(arg byte, class string) (int, bool) {
	ov, err := s.m.Overview()
	if err != nil {
		return 0, false
	}
	var ids []int
	add := func(views []service.QueryView, statuses ...string) {
		for _, v := range views {
			for _, st := range statuses {
				if v.Status == st {
					ids = append(ids, v.ID)
				}
			}
		}
	}
	switch class {
	case "running":
		add(ov.Running, "running")
	case "blocked":
		add(ov.Running, "blocked")
	case "active":
		add(ov.Running, "running", "blocked")
		add(ov.Queued, "queued")
	default: // any: everything not yet terminated
		add(ov.Running, "running", "blocked")
		add(ov.Queued, "queued")
		add(ov.Scheduled, "scheduled")
	}
	if len(ids) == 0 {
		return 0, false
	}
	sort.Ints(ids)
	return ids[int(arg)%len(ids)], true
}
