package sim

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// stripFoldMarkers removes the stage diagram's "  [fold gN]" row annotations
// and the diagram byte counts they inflate — the only trace content folding
// is allowed to change. Everything else in the trace is charged-plane, and
// I12 demands it be byte-identical to a fold-off run of the same action
// stream.
func stripFoldMarkers(trace string) string {
	lines := splitLines(trace)
	for i, line := range lines {
		if j := strings.Index(line, "  [fold g"); j >= 0 {
			lines[i] = line[:j]
			continue
		}
		if j := strings.Index(line, " diagram "); j >= 0 && strings.HasSuffix(line, " bytes") {
			lines[i] = line[:j+len(" diagram")]
		}
	}
	return strings.Join(lines, "\n")
}

// TestFoldSimMatrix is the folding gate (I12 plus determinism): for every
// seed, with DML frozen, the fold-on run must match the fold-off baseline on
// every charged-plane observable — byte-identical traces once the diagram's
// fold markers are stripped, bit-identical per-query done and finish times —
// while the cost plane drops by exactly the shared pages (I11, checked per
// action inside each run). Fold-on runs must additionally be byte-identical
// at workers 1, 2, and 4.
func TestFoldSimMatrix(t *testing.T) {
	var mu sync.Mutex
	totalSaved := 0.0
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			off, err := Run(Config{Seed: seed, Workers: 1, NoDML: true})
			if err != nil {
				t.Fatalf("fold-off: %v", err)
			}
			for _, v := range off.Violations {
				t.Errorf("fold-off: %s", v)
			}
			on, err := Run(Config{Seed: seed, Workers: 1, NoDML: true, Fold: true})
			if err != nil {
				t.Fatalf("fold-on: %v", err)
			}
			for _, v := range on.Violations {
				t.Errorf("fold-on: %s", v)
			}

			// I12, trace form: stripped of fold markers, the traces coincide.
			if got, want := stripFoldMarkers(on.Trace), stripFoldMarkers(off.Trace); got != want {
				t.Errorf("fold-on trace differs from fold-off beyond fold markers: %s", firstDiff(want, got))
			}
			// I12, outcome form: identical IDs, statuses, charged work, and
			// finish times, bit for bit; cost may only drop, never rise.
			if len(on.Final) != len(off.Final) {
				t.Fatalf("fold-on finished with %d queries, fold-off with %d", len(on.Final), len(off.Final))
			}
			saved := 0.0
			for i := range off.Final {
				a, b := off.Final[i], on.Final[i]
				if a.ID != b.ID || a.Status != b.Status {
					t.Errorf("outcome %d: fold-off q%d/%s vs fold-on q%d/%s", i, a.ID, a.Status, b.ID, b.Status)
					continue
				}
				if math.Float64bits(a.Done) != math.Float64bits(b.Done) {
					t.Errorf("q%d charged work differs: fold-off %v, fold-on %v", a.ID, a.Done, b.Done)
				}
				if math.Float64bits(a.FinishTime) != math.Float64bits(b.FinishTime) {
					t.Errorf("q%d finish time differs: fold-off %v, fold-on %v", a.ID, a.FinishTime, b.FinishTime)
				}
				if a.Cost != a.Done {
					t.Errorf("q%d fold-off cost %v != done %v", a.ID, a.Cost, a.Done)
				}
				if b.Cost > b.Done {
					t.Errorf("q%d fold-on cost %v exceeds done %v", b.ID, b.Cost, b.Done)
				}
				saved += b.Done - b.Cost
			}

			// Fold-on determinism across worker counts.
			for _, w := range []int{2, 4} {
				res, err := Run(Config{Seed: seed, Workers: w, NoDML: true, Fold: true})
				if err != nil {
					t.Fatalf("fold-on workers=%d: %v", w, err)
				}
				for _, v := range res.Violations {
					t.Errorf("fold-on workers=%d: %s", w, v)
				}
				if res.Trace != on.Trace {
					t.Errorf("fold-on workers=%d trace differs from workers=1: %s", w, firstDiff(on.Trace, res.Trace))
				}
			}
			mu.Lock()
			totalSaved += saved
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		// The matrix must actually exercise sharing somewhere, or I12 is
		// vacuously comparing two solo runs.
		if totalSaved == 0 {
			t.Error("no seed saved any pages; folding never engaged in the matrix")
		}
		t.Logf("pages saved across matrix: %g", totalSaved)
	})
}

// TestSimFoldToggleScript pins the fold on/off toggle action: detach-all on
// the way off, re-fold of eligible newcomers on the way back on, invariants
// (I11 included) holding across the churn, deterministically.
func TestSimFoldToggleScript(t *testing.T) {
	script := []byte{
		0x00, 0x00, // submit sum(v) over t0
		0x00, 0x01, // submit the same shape: folds with the first
		0x04, 0x80, // advance mid-scan
		0x08, 0x00, // fold off: every member detaches, scans continue solo
		0x04, 0x40, // advance
		0x08, 0x01, // fold on again
		0x00, 0x02, // a newcomer that may fold with survivors
		0x04, 0xff, // advance
	}
	a, err := Run(Config{Seed: 7, Fold: true, FoldToggle: true, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Violations {
		t.Errorf("violation: %s", v)
	}
	if a.Submitted != 3 {
		t.Fatalf("submitted %d, want 3", a.Submitted)
	}
	b, err := Run(Config{Seed: 7, Fold: true, FoldToggle: true, Script: script})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != b.Trace {
		t.Fatalf("toggle script not deterministic: %s", firstDiff(a.Trace, b.Trace))
	}
}
