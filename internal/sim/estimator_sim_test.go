package sim

import (
	"fmt"
	"testing"

	"mqpi/internal/core"
)

// TestSimEstimatorMatrix is the estimator-plane transparency gate (I13,
// cross-run form): for every seed, an explicit `Estimator: "stage"` run must
// be byte-identical to the default-config baseline — the pluggable estimate
// plane may not change a single traced observable until a non-stage mode is
// opted into — and must stay byte-identical at workers 1, 2, and 4 (the
// per-action I13/I6 checks run inside every one of these cells).
func TestSimEstimatorMatrix(t *testing.T) {
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			base, err := Run(Config{Seed: seed, Workers: 1})
			if err != nil {
				t.Fatalf("default: %v", err)
			}
			for _, v := range base.Violations {
				t.Errorf("default: %s", v)
			}
			for _, w := range []int{1, 2, 4} {
				res, err := Run(Config{Seed: seed, Workers: w, Estimator: core.EstimatorStage})
				if err != nil {
					t.Fatalf("stage workers=%d: %v", w, err)
				}
				for _, v := range res.Violations {
					t.Errorf("stage workers=%d: %s", w, v)
				}
				if res.Trace != base.Trace {
					t.Errorf("stage workers=%d trace differs from default baseline: %s",
						w, firstDiff(base.Trace, res.Trace))
				}
			}
		})
	}
}

// TestSimEnsembleMode smoke-tests a non-stage estimate plane under the full
// randomized workload: the structural invariants (work conservation, MPL,
// epochs, metrics, lifecycle, fold, incremental profile) must all still hold
// — only the estimate-exactness checks (I6, I7, I13) are out of scope for
// blended points — and the run must stay byte-deterministic across worker
// counts, bands and all.
func TestSimEnsembleMode(t *testing.T) {
	t.Parallel()
	base, err := Run(Config{Seed: 5, Workers: 1, Estimator: core.EstimatorEnsemble})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range base.Violations {
		t.Errorf("workers=1: %s", v)
	}
	if base.Submitted == 0 {
		t.Fatal("ensemble run submitted no queries")
	}
	for _, w := range []int{2, 4} {
		res, err := Run(Config{Seed: 5, Workers: w, Estimator: core.EstimatorEnsemble})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for _, v := range res.Violations {
			t.Errorf("workers=%d: %s", w, v)
		}
		if res.Trace != base.Trace {
			t.Errorf("ensemble workers=%d trace differs from workers=1: %s",
				w, firstDiff(base.Trace, res.Trace))
		}
	}
}

// TestSimRejectsBadEstimator pins the config validation path: an unknown
// estimator mode is a harness error, reported before any engine work.
func TestSimRejectsBadEstimator(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{Seed: 1, Estimator: "oracle"}); err == nil {
		t.Fatal("Run accepted estimator \"oracle\"")
	}
}
