package sim

import (
	"fmt"
	"testing"
)

// TestClusterSimMatrix is the cluster-mode correctness gate: for every seed
// and every routing policy, the sharded tier must satisfy the router-level
// invariants (placement conservation, gid uniqueness, no lost work across
// aborts, admission accounting) and produce byte-identical traces at
// per-shard workers 1, 2, and 4.
func TestClusterSimMatrix(t *testing.T) {
	policies := []string{"round-robin", "least-loaded", "affinity"}
	for seed := int64(1); seed <= int64(*seedCount); seed++ {
		policy := policies[seed%int64(len(policies))]
		seed := seed
		t.Run(fmt.Sprintf("seed=%d/%s", seed, policy), func(t *testing.T) {
			t.Parallel()
			base, err := RunCluster(ClusterConfig{Seed: seed, Workers: 1, Routing: policy})
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, v := range base.Violations {
				t.Errorf("workers=1: %s", v)
			}
			if base.Submitted == 0 {
				t.Error("run submitted no queries; the action stream is broken")
			}
			for _, w := range []int{2, 4} {
				res, err := RunCluster(ClusterConfig{Seed: seed, Workers: w, Routing: policy})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for _, v := range res.Violations {
					t.Errorf("workers=%d: %s", w, v)
				}
				if res.Trace != base.Trace {
					t.Errorf("workers=%d trace differs from workers=1 (lengths %d vs %d): %s",
						w, len(res.Trace), len(base.Trace), firstDiff(base.Trace, res.Trace))
				}
			}
		})
	}
}

// TestClusterSimAdmission runs the matrix's admission variant: a tight
// token bucket in reject mode must produce 429s that the accounting
// invariant (C5) reconciles, deterministically across worker counts.
func TestClusterSimAdmission(t *testing.T) {
	for _, queue := range []bool{false, true} {
		queue := queue
		t.Run(fmt.Sprintf("queue=%v", queue), func(t *testing.T) {
			t.Parallel()
			cfg := ClusterConfig{
				Seed: 11, Workers: 1, Shards: 2, Routing: "least-loaded",
				AdmitRate: 0.5, AdmitBurst: 2, AdmitQueue: queue,
			}
			base, err := RunCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range base.Violations {
				t.Error(v)
			}
			if !queue && base.Rejected == 0 {
				t.Error("tight reject-mode bucket rejected nothing")
			}
			if queue && base.Rejected != 0 {
				t.Errorf("queue mode rejected %d submissions", base.Rejected)
			}
			cfg.Workers = 4
			res, err := RunCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Trace != base.Trace {
				t.Errorf("admission trace differs across workers: %s", firstDiff(base.Trace, res.Trace))
			}
		})
	}
}

// TestClusterSimSingleShard pins the degenerate cluster: one shard must
// reduce to the plain service (identity gids) while every invariant and the
// determinism contract still hold.
func TestClusterSimSingleShard(t *testing.T) {
	base, err := RunCluster(ClusterConfig{Seed: 5, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range base.Violations {
		t.Error(v)
	}
	res, err := RunCluster(ClusterConfig{Seed: 5, Workers: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != base.Trace {
		t.Errorf("single-shard trace differs across workers: %s", firstDiff(base.Trace, res.Trace))
	}
}

// TestClusterSimFoldMatrix runs the folding variant of the cluster gate:
// every shard folds same-table scans, the fold-aware least-loaded router is
// in the rotation, DML is frozen, and traces must stay byte-identical at
// per-shard workers 1, 2, and 4 while C6 (per-shard fold conservation) holds
// after every action. Under round-robin — the only policy whose placement
// ignores load and fold state — the fold-on trace must additionally be
// byte-identical to the fold-off baseline: folding may not move a single
// charged-plane observable.
func TestClusterSimFoldMatrix(t *testing.T) {
	policies := []string{"round-robin", "least-loaded", "affinity"}
	for seed := int64(1); seed <= 8; seed++ {
		policy := policies[seed%int64(len(policies))]
		seed := seed
		t.Run(fmt.Sprintf("seed=%d/%s", seed, policy), func(t *testing.T) {
			t.Parallel()
			cfg := ClusterConfig{Seed: seed, Workers: 1, Routing: policy, Fold: true, NoDML: true}
			base, err := RunCluster(cfg)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, v := range base.Violations {
				t.Errorf("workers=1: %s", v)
			}
			if base.Submitted == 0 {
				t.Error("run submitted no queries; the action stream is broken")
			}
			for _, w := range []int{2, 4} {
				cfg.Workers = w
				res, err := RunCluster(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for _, v := range res.Violations {
					t.Errorf("workers=%d: %s", w, v)
				}
				if res.Trace != base.Trace {
					t.Errorf("workers=%d trace differs from workers=1: %s", w, firstDiff(base.Trace, res.Trace))
				}
			}
			if policy == "round-robin" {
				off, err := RunCluster(ClusterConfig{Seed: seed, Workers: 1, Routing: policy, NoDML: true})
				if err != nil {
					t.Fatalf("fold-off: %v", err)
				}
				for _, v := range off.Violations {
					t.Errorf("fold-off: %s", v)
				}
				if off.Trace != base.Trace {
					t.Errorf("fold-on trace differs from fold-off under round-robin: %s", firstDiff(off.Trace, base.Trace))
				}
			}
		})
	}
}
