package sim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mqpi/internal/core"
	"mqpi/internal/service"
)

// The checker validates the global state after every simulated action:
//
//	I1  epoch monotonicity — the published snapshot epoch never moves
//	    backwards, and every mutation publishes a fresh epoch;
//	I2  MPL — admitted queries (running + blocked) never exceed the limit;
//	I3  slot conservation — a non-empty admission queue implies every MPL
//	    slot is occupied (no free-slot starvation);
//	I4  work monotonicity — no query's completed work ever decreases;
//	I5  work conservation — total completed work never exceeds C×now (plus
//	    tuple-granularity slack), and an advance during which some query ran
//	    throughout delivers at least C×Δt of aggregate work;
//	I6  estimate consistency — every published view's single- and multi-query
//	    ETA (and the quiescent ETA) is bit-identical to recomputing
//	    core.ComputeEstimates from the same published state: the read path
//	    re-predicts at every boundary, never serving stale estimates;
//	I7  stage-model exactness — between unplanned perturbations (arrivals,
//	    block/unblock, priority changes, aborts, DML), each query's measured
//	    finish time matches its last prediction, and predictions do not
//	    drift, within a quantization tolerance;
//	I8  metrics consistency — counters never decrease, depth gauges match
//	    the published snapshot, lifecycle counters match the terminated set;
//	I9  event lifecycle ordering — no query finishes before it was admitted,
//	    is admitted before it was submitted, or unblocks before it blocked;
//	I10 incremental-profile identity — a single incremental stage structure,
//	    patched across every action of the run, materializes a profile
//	    bit-identical (Order, StageDur, Finish, Shared) to core.ComputeProfile
//	    built from scratch on the same published states;
//	I11 fold conservation — shared-scan folding moves only the engine-cost
//	    plane: no query's cost exceeds its charged work, the registry's saved
//	    pages equal Σ(done−cost) over every query ever admitted exactly (all
//	    charges are whole units, so the equality is float-exact), and with
//	    folding never enabled the two planes are identical.
//	I13 estimator-plane transparency — a run-long stage-mode core.Estimator
//	    fed the published state returns a bundle bit-identical to
//	    core.ComputeEstimates (no blend weights, degenerate bands), and every
//	    live view's band is degenerate at its point estimate
//	    (ETALow == MultiETA == ETAHigh, bitwise): the pluggable estimate
//	    plane is a perfect wrapper until a non-stage mode is opted into.
//
// I12 — fold on/off runs of the same seed agree on every charged-plane
// observable — is a cross-run property, checked by TestFoldSimMatrix rather
// than by this per-action checker. Its estimator-plane sibling — stage-mode
// traces byte-identical between Estimator "" and "stage" configs — lives in
// TestSimEstimatorMatrix. The estimate-exactness invariants (I6, I7, I13)
// only run in stage mode; ensemble modes serve blended heuristic points that
// the paper's exact stage model does not govern.
type checker struct {
	m         *service.Manager
	rateC     float64
	quantum   float64
	mpl       int
	slackPerQ float64 // per-query work-accounting slop, in U's

	lastEpoch uint64
	lastSeq   int64
	lastNow   float64
	counters  map[string]float64
	done      map[int]float64 // latest per-query completed work
	prevDone  map[int]float64 // per-query completed work at the previous check
	prevEst   map[int]float64 // per-query Done+Remaining at the previous check
	predAbs   map[int]float64 // last finite absolute predicted finish, by query
	predAt    map[int]float64 // virtual time at which that prediction was read
	predSlack map[int]float64 // credit-displacement allowance at prediction time, seconds
	prevRun   map[int]bool    // queries with status "running" at the last check
	seen      map[int]map[string]bool
	foldEver  bool // folding was enabled at some check (I11's off-mode gate)

	// exactChecked / exactVoided count the checks where the stage-model
	// drift invariant ran vs. was voided because some query left the fluid
	// model (cost refinement or chunk-granularity burst/payback). Tests
	// assert exactChecked dominates, so I7 cannot silently go vacuous.
	exactChecked int
	exactVoided  int

	// incProf is I10's long-lived incremental stage structure: one instance
	// survives the whole run, patched (never rebuilt) at every check, so the
	// invariant exercises the structure's event path rather than a fresh
	// build. incOut is its reused materialization target.
	incProf *core.IncrementalProfile
	incOut  core.Profile

	// stageMode gates the estimate-exactness invariants (I6, I7, I13): they
	// only hold for the exact stage plane, not for blended ensemble points.
	// plane is I13's run-long stage-mode Estimator instance — like incProf,
	// one instance survives the whole run, so any state the pluggable plane
	// accidentally accreted would surface as drift from the pure oracle.
	stageMode bool
	plane     core.Estimator

	violations []string
}

// checkCtx tells the checker what the action just applied did.
type checkCtx struct {
	action   int
	mutated  bool // invoked a mutating Manager method (publishes an epoch)
	advanced bool // the action was a Advance (virtual time may have moved)
	// perturbed marks unplanned changes to the query mix (submission, block,
	// unblock, abort, priority, DML): stage-model predictions taken before
	// the action are void.
	perturbed bool
}

// overshootSlack bounds the work-accounting slop per query: one indivisible
// work chunk (a page, or one correlated-subquery evaluation) may overshoot
// its budget per settle, and balances carry between rounds. The checker adds
// the largest single charge on top — sort materialization bills 2×pages of
// the sorted set in one chunk, which scales with the table size.
const overshootSlack = 12.0

func newChecker(m *service.Manager, cfg Config) *checker {
	stage := cfg.Estimator == "" || cfg.Estimator == core.EstimatorStage
	var plane core.Estimator
	if stage {
		var err error
		if plane, err = core.NewEstimator(core.EstimatorStage); err != nil {
			panic(err) // unreachable: the stage mode always constructs
		}
	}
	return &checker{
		m:         m,
		rateC:     cfg.RateC,
		quantum:   cfg.Quantum,
		slackPerQ: overshootSlack + 2*math.Ceil(float64(cfg.Rows)/64),
		mpl:       cfg.MPL,
		counters:  make(map[string]float64),
		done:      make(map[int]float64),
		prevDone:  make(map[int]float64),
		prevEst:   make(map[int]float64),
		predAbs:   make(map[int]float64),
		predAt:    make(map[int]float64),
		predSlack: make(map[int]float64),
		prevRun:   make(map[int]bool),
		seen:      make(map[int]map[string]bool),
		incProf:   core.NewIncrementalProfile(),
		stageMode: stage,
		plane:     plane,
	}
}

func (c *checker) fail(tr *strings.Builder, ctx checkCtx, format string, args ...interface{}) {
	v := fmt.Sprintf("action %d: ", ctx.action) + fmt.Sprintf(format, args...)
	c.violations = append(c.violations, v)
	fmt.Fprintf(tr, "VIOLATION %s\n", v)
}

func isFinite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// check runs every invariant against the current service state and appends
// the new events plus a state line to the trace.
func (c *checker) check(tr *strings.Builder, ctx checkCtx) {
	ov, err := c.m.Overview()
	if err != nil {
		c.fail(tr, ctx, "overview: %v", err)
		return
	}

	// New events since the last check, in global sequence order.
	var newEvents []service.Event
	for _, ev := range c.m.Events(0) {
		if ev.Seq > c.lastSeq {
			newEvents = append(newEvents, ev)
		}
	}
	for _, ev := range newEvents {
		fmt.Fprintf(tr, "e%04d t=%s q%d %s %s\n", ev.Seq, g(ev.Virtual), ev.QueryID, ev.Type, ev.Detail)
		if ev.Seq > c.lastSeq {
			c.lastSeq = ev.Seq
		}
	}

	// I1: epoch monotonicity.
	if ov.Epoch < c.lastEpoch {
		c.fail(tr, ctx, "I1 epoch moved backwards: %d -> %d", c.lastEpoch, ov.Epoch)
	}
	if ctx.mutated && ov.Epoch == c.lastEpoch {
		c.fail(tr, ctx, "I1 mutation did not publish a new epoch (still %d)", ov.Epoch)
	}
	if ov.Now < c.lastNow-1e-9 {
		c.fail(tr, ctx, "I1 virtual time moved backwards: %s -> %s", g(c.lastNow), g(ov.Now))
	}

	// I2: MPL never exceeded (blocked queries hold their slot).
	if c.mpl > 0 && len(ov.Running) > c.mpl {
		c.fail(tr, ctx, "I2 MPL exceeded: %d admitted > %d", len(ov.Running), c.mpl)
	}
	// I3: slot conservation.
	if c.mpl > 0 && len(ov.Queued) > 0 && len(ov.Running) < c.mpl {
		c.fail(tr, ctx, "I3 admission queue non-empty (%d) with free MPL slots (%d/%d)",
			len(ov.Queued), len(ov.Running), c.mpl)
	}

	// Gather every view; all terminated queries stay in Finished forever.
	all := make([]service.QueryView, 0, len(ov.Running)+len(ov.Queued)+len(ov.Scheduled)+len(ov.Finished))
	all = append(all, ov.Running...)
	all = append(all, ov.Queued...)
	all = append(all, ov.Scheduled...)
	all = append(all, ov.Finished...)

	// I4 + I5: per-query work monotonicity and global work conservation.
	totalDone := 0.0
	for _, v := range all {
		if prev, ok := c.done[v.ID]; ok && v.Done < prev-1e-9 {
			c.fail(tr, ctx, "I4 q%d work decreased: %s -> %s", v.ID, g(prev), g(v.Done))
		}
		c.done[v.ID] = v.Done
		totalDone += v.Done
	}
	slack := c.slackPerQ * float64(len(c.done)+1)
	if budget := c.rateC * ov.Now; totalDone > budget+slack {
		c.fail(tr, ctx, "I5 total work %s exceeds budget C*now=%s (+%s slack)",
			g(totalDone), g(budget), g(slack))
	}
	prevTotal := 0.0
	for _, d := range c.prevDone {
		prevTotal += d
	}
	if ctx.advanced && ov.Now > c.lastNow {
		// Work conservation lower bound needs a witness that was runnable for
		// the whole advance: a query running at both checks never left the
		// running state in between (no action intervened).
		witness := false
		for _, v := range ov.Running {
			if v.Status == "running" && c.prevRun[v.ID] {
				witness = true
				break
			}
		}
		if witness {
			want := c.rateC*(ov.Now-c.lastNow) - slack
			if totalDone-prevTotal < want {
				c.fail(tr, ctx, "I5 advance %s..%s delivered %s U, want >= %s U (work-conserving)",
					g(c.lastNow), g(ov.Now), g(totalDone-prevTotal), g(want))
			}
		}
	}

	// I11: fold conservation. Folding may only move the cost plane, and the
	// registry's lifetime saved-pages counter must account for the work/cost
	// gap of every query ever admitted — including aborted and failed ones,
	// whose meters freeze with their rides intact.
	if ov.Fold.Enabled {
		c.foldEver = true
	}
	savedSum := 0.0
	for _, v := range all {
		if v.Cost > v.Done {
			c.fail(tr, ctx, "I11 q%d engine cost %s exceeds charged work %s", v.ID, g(v.Cost), g(v.Done))
		}
		if !c.foldEver && v.Cost != v.Done {
			c.fail(tr, ctx, "I11 q%d cost %s != done %s with folding never enabled", v.ID, g(v.Cost), g(v.Done))
		}
		savedSum += v.Done - v.Cost
	}
	if savedSum != float64(ov.Fold.PagesSaved) {
		c.fail(tr, ctx, "I11 sum(done-cost) = %s, registry saved %d pages (must be exact)",
			g(savedSum), ov.Fold.PagesSaved)
	}

	// I6: estimate consistency — recompute the bundle from the published
	// views and compare bit-for-bit.
	c.checkEstimates(tr, ctx, &ov)

	// I7: stage-model exactness over the batch's events.
	c.checkExactness(tr, ctx, &ov, newEvents)

	// I8: metrics consistency.
	c.checkMetrics(tr, ctx, &ov)

	// I9: event lifecycle ordering.
	c.checkLifecycle(tr, ctx, newEvents)

	// Bookkeeping for the next check.
	c.lastEpoch = ov.Epoch
	c.lastNow = ov.Now
	c.prevDone = make(map[int]float64, len(c.done))
	for id, d := range c.done {
		c.prevDone[id] = d
	}
	c.prevRun = make(map[int]bool)
	c.predAbs = make(map[int]float64)
	c.predAt = make(map[int]float64)
	for _, v := range ov.Running {
		if v.Status == "running" {
			c.prevRun[v.ID] = true
		}
	}
	c.prevEst = make(map[int]float64)
	c.predSlack = make(map[int]float64)
	credSlack := c.creditSlack(&ov)
	for _, v := range append(append([]service.QueryView(nil), ov.Running...), ov.Queued...) {
		c.prevEst[v.ID] = v.Done + v.Remaining
		if eta := float64(v.MultiETA); (v.Status == "running" || v.Status == "queued") && isFinite(eta) {
			c.predAbs[v.ID] = ov.Now + eta
			c.predAt[v.ID] = ov.Now
			c.predSlack[v.ID] = credSlack(v.Weight)
		}
	}

	// State line: full-precision summary, no wall-clock values.
	nRun, nBlk := 0, 0
	for _, v := range ov.Running {
		if v.Status == "blocked" {
			nBlk++
		} else {
			nRun++
		}
	}
	fmt.Fprintf(tr, "s%03d now=%s epoch=%d run=%d blk=%d queued=%d sched=%d fin=%d done=%s\n",
		ctx.action, g(ov.Now), ov.Epoch, nRun, nBlk, len(ov.Queued), len(ov.Scheduled), len(ov.Finished), g(totalDone))
	if debugViews {
		for _, v := range append(append([]service.QueryView(nil), ov.Running...), ov.Queued...) {
			fmt.Fprintf(tr, "  dbg q%d %s w=%s done=%s rem=%s eta=%s\n",
				v.ID, v.Status, g(v.Weight), g(v.Done), g(v.Remaining), g(float64(v.MultiETA)))
		}
	}
}

func (c *checker) checkEstimates(tr *strings.Builder, ctx checkCtx, ov *service.Overview) {
	running := make([]core.QueryState, 0, len(ov.Running))
	speeds := make(map[int]float64, len(ov.Running))
	for _, v := range ov.Running {
		running = append(running, core.QueryState{ID: v.ID, Remaining: v.Remaining, Weight: v.Weight, Done: v.Done, Fold: v.FoldGroup})
		speeds[v.ID] = v.Speed
	}
	queued := make([]core.QueryState, 0, len(ov.Queued))
	for _, v := range ov.Queued {
		queued = append(queued, core.QueryState{ID: v.ID, Remaining: v.Remaining, Weight: v.Weight, Done: v.Done})
	}

	// I10: the run-long incremental profile, synced to the published running
	// set, must materialize bit-for-bit what a from-scratch build produces.
	// It concerns the stage structure, not the estimate surface, so it runs
	// in every estimator mode.
	c.checkIncremental(tr, ctx, running, ov.RateC)

	if !c.stageMode {
		return
	}
	in := core.EstimateInput{
		Running: running,
		Queued:  queued,
		MPL:     ov.MPL,
		RateC:   ov.RateC,
		Speeds:  speeds,
	}
	want := core.ComputeEstimates(in)
	sameFloat := func(a, b float64) bool {
		return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
	}
	views := append(append([]service.QueryView(nil), ov.Running...), ov.Queued...)
	for _, v := range views {
		w := want.PerQuery[v.ID]
		if !sameFloat(float64(v.MultiETA), w.MultiQuery) {
			c.fail(tr, ctx, "I6 q%d multi ETA stale: view %s, recomputed %s",
				v.ID, g(float64(v.MultiETA)), g(w.MultiQuery))
		}
		if !sameFloat(float64(v.SingleETA), w.SingleQuery) {
			c.fail(tr, ctx, "I6 q%d single ETA stale: view %s, recomputed %s",
				v.ID, g(float64(v.SingleETA)), g(w.SingleQuery))
		}
		// I13, view form: stage-mode bands are degenerate at the point.
		if !sameFloat(float64(v.ETALow), float64(v.MultiETA)) || !sameFloat(float64(v.ETAHigh), float64(v.MultiETA)) {
			c.fail(tr, ctx, "I13 q%d stage-mode band [%s,%s] not degenerate at point %s",
				v.ID, g(float64(v.ETALow)), g(float64(v.ETAHigh)), g(float64(v.MultiETA)))
		}
	}
	if !sameFloat(float64(ov.QuiescentETA), want.Quiescent) {
		c.fail(tr, ctx, "I6 quiescent ETA stale: view %s, recomputed %s",
			g(float64(ov.QuiescentETA)), g(want.Quiescent))
	}

	// I13, plane form: the run-long pluggable stage estimator must be a
	// perfect, stateless wrapper — same input, bit-identical bundle to the
	// pure oracle, no blend weights, bands collapsed onto the point.
	got := c.plane.Estimates(in, core.EnsembleState{})
	if got.Weights != nil {
		c.fail(tr, ctx, "I13 stage estimator reported blend weights %v", got.Weights)
	}
	if len(got.PerQuery) != len(want.PerQuery) {
		c.fail(tr, ctx, "I13 stage estimator returned %d estimates, oracle %d",
			len(got.PerQuery), len(want.PerQuery))
	}
	for id, w := range want.PerQuery {
		ge, ok := got.PerQuery[id]
		if !ok {
			c.fail(tr, ctx, "I13 stage estimator missing q%d", id)
			continue
		}
		if !sameFloat(ge.MultiQuery, w.MultiQuery) || !sameFloat(ge.SingleQuery, w.SingleQuery) {
			c.fail(tr, ctx, "I13 q%d plane ETA (%s,%s), oracle (%s,%s) (bitwise)",
				id, g(ge.SingleQuery), g(ge.MultiQuery), g(w.SingleQuery), g(w.MultiQuery))
		}
		if !sameFloat(ge.ETALow, w.ETALow) || !sameFloat(ge.ETAHigh, w.ETAHigh) {
			c.fail(tr, ctx, "I13 q%d plane band [%s,%s], oracle [%s,%s] (bitwise)",
				id, g(ge.ETALow), g(ge.ETAHigh), g(w.ETALow), g(w.ETAHigh))
		}
	}
	if !sameFloat(got.Quiescent, want.Quiescent) {
		c.fail(tr, ctx, "I13 plane quiescent %s, oracle %s (bitwise)", g(got.Quiescent), g(want.Quiescent))
	}
}

// checkIncremental is invariant I10: patch the checker's long-lived
// incremental stage structure to the published running set and demand its
// materialized profile be bit-identical to core.ComputeProfile built from
// scratch. Because the same structure persists across all of the run's
// arrivals, finishes, blocks, priority flips, and cost refinements, any
// divergence between the O(log n) patch path and the O(n log n) oracle
// surfaces at the first action that breaks it.
func (c *checker) checkIncremental(tr *strings.Builder, ctx checkCtx, running []core.QueryState, rateC float64) {
	c.incProf.Sync(running)
	c.incProf.ProfileInto(rateC, &c.incOut)
	want := core.ComputeProfile(running, rateC)
	if len(c.incOut.Order) != len(want.Order) || len(c.incOut.Finish) != len(want.Finish) {
		c.fail(tr, ctx, "I10 incremental profile shape: %d stages/%d finishes, want %d/%d",
			len(c.incOut.Order), len(c.incOut.Finish), len(want.Order), len(want.Finish))
		return
	}
	for i, id := range want.Order {
		if c.incOut.Order[i] != id {
			c.fail(tr, ctx, "I10 stage %d is q%d, want q%d", i, c.incOut.Order[i], id)
			return
		}
		if math.Float64bits(c.incOut.StageDur[i]) != math.Float64bits(want.StageDur[i]) {
			c.fail(tr, ctx, "I10 stage %d duration %s, want %s (bitwise)",
				i, g(c.incOut.StageDur[i]), g(want.StageDur[i]))
			return
		}
	}
	for id, w := range want.Finish {
		got, ok := c.incOut.Finish[id]
		if !ok || (math.Float64bits(got) != math.Float64bits(w) && !(math.IsNaN(got) && math.IsNaN(w))) {
			c.fail(tr, ctx, "I10 q%d finish %s, want %s (bitwise)", id, g(got), g(w))
			return
		}
	}
	// The shared-stage inventory (fold groups in stage order, member IDs
	// ascending) must match exactly as well.
	if len(c.incOut.Shared) != len(want.Shared) {
		c.fail(tr, ctx, "I10 %d shared stages, want %d", len(c.incOut.Shared), len(want.Shared))
		return
	}
	for i, w := range want.Shared {
		got := c.incOut.Shared[i]
		if got.Fold != w.Fold || len(got.IDs) != len(w.IDs) {
			c.fail(tr, ctx, "I10 shared stage %d = g%d/%d members, want g%d/%d", i, got.Fold, len(got.IDs), w.Fold, len(w.IDs))
			return
		}
		for j := range w.IDs {
			if got.IDs[j] != w.IDs[j] {
				c.fail(tr, ctx, "I10 shared stage %d member %d is q%d, want q%d", i, j, got.IDs[j], w.IDs[j])
				return
			}
		}
	}
}

// checkExactness verifies the paper's central claim at run time: while the
// query mix changes only in ways the stage model plans for (its own finishes
// and queue admissions), measured finish times match predictions and
// predictions do not drift. Unplanned perturbations void predictions from
// their virtual time onward. The tolerance absorbs quantization — finishers
// are stamped at segment ends, queue refills happen at tick boundaries — and
// the remaining-cost refinement's drift, both of which scale with the quantum
// and the prediction horizon, not with the bug classes this invariant exists
// to catch (stale estimates, credit leaks, lost redistribution).
func (c *checker) checkExactness(tr *strings.Builder, ctx checkCtx, ov *service.Overview, events []service.Event) {
	if !c.stageMode {
		// Blended ensemble points are heuristics; the paper's exactness claim
		// (and hence this invariant) governs only the stage plane.
		return
	}
	perturbAt := math.Inf(1)
	if ctx.perturbed {
		perturbAt = math.Inf(-1) // the action itself voids every prediction
	}

	// A stage-model prediction for any query depends on the entire mix, so a
	// single query leaving the fluid model perturbs every prediction made
	// before this interval, not just its own. Two legitimate exits exist.
	// First, the engine refined a remaining-cost estimate (Assumption-2
	// drift, observable as a shift in Done+Remaining): that re-anchors the
	// model's input, so the interval is voided outright. Second, an
	// indivisible chunk (sort phase, correlated-subquery evaluation) can't be
	// split to match a credit share, so the scheduler banks or repays the
	// difference — observable directly as credit balances. Balances displace
	// finishes by a bounded amount (the deferred work drains at the query's
	// share rate), so instead of voiding, creditSlack widens the tolerance by
	// that bound. A credit LEAK stays detectable: leaked service leaves no
	// balance behind, so the late finish gets no extra allowance. The
	// exactChecked/exactVoided counters let tests assert the invariant still
	// runs on the vast majority of checks.
	views := append(append([]service.QueryView(nil), ov.Running...), ov.Queued...)
	fluid := true
	for _, v := range views {
		if c.costRefined(v.ID, v.Done+v.Remaining) {
			fluid = false
			break
		}
	}
	if fluid {
		for _, ev := range events {
			if ev.Type == service.EventFinished && c.costRefined(ev.QueryID, c.done[ev.QueryID]) {
				fluid = false
				break
			}
		}
	}
	slackNow := c.creditSlack(ov)

	boundaries := 0 // planned-but-quantized events: finishes, queue refills
	for _, ev := range events {
		switch ev.Type {
		case service.EventSubmitted, service.EventQueued, service.EventScheduled,
			service.EventBlocked, service.EventUnblocked, service.EventPriority,
			service.EventAborted, service.EventFailed:
			if ev.Virtual < perturbAt {
				perturbAt = ev.Virtual
			}
		case service.EventFinished:
			pred, ok := c.predAbs[ev.QueryID]
			if ok && fluid && ev.Virtual < perturbAt {
				tol := c.finishTol(pred, c.predAt[ev.QueryID], boundaries) + c.predSlack[ev.QueryID]
				if d := math.Abs(ev.Virtual - pred); d > tol {
					c.fail(tr, ctx, "I7 q%d finished at %s, last prediction %s (|Δ|=%s > tol %s)",
						ev.QueryID, g(ev.Virtual), g(pred), g(d), g(tol))
				}
			}
			boundaries++
		case service.EventAdmitted:
			boundaries++
		}
	}
	if !fluid {
		// Count the void only when the drift check below was otherwise
		// eligible: perturbed intervals never run it regardless of fluidity,
		// so counting them would inflate the vacuousness ratio.
		if math.IsInf(perturbAt, 1) {
			c.exactVoided++
		}
		return
	}
	if math.IsInf(perturbAt, 1) {
		// No unplanned perturbation and the mix stayed fluid: surviving
		// queries' predictions must be stable. Both endpoints' predictions
		// carry their own credit displacement, so both slacks apply.
		c.exactChecked++
		for _, v := range views {
			eta := float64(v.MultiETA)
			prev, ok := c.predAbs[v.ID]
			if !ok || !isFinite(eta) {
				continue
			}
			abs := ov.Now + eta
			tol := c.finishTol(prev, c.predAt[v.ID], boundaries) + c.predSlack[v.ID] + slackNow(v.Weight)
			if d := math.Abs(abs - prev); d > tol {
				c.fail(tr, ctx, "I7 q%d prediction drifted without perturbation: %s -> %s (|Δ|=%s > tol %s)",
					v.ID, g(prev), g(abs), g(d), g(tol))
			}
		}
	}
}

// creditSlack returns a function mapping a query's weight to the worst-case
// finish-time displacement, in seconds, that the mix's current credit
// balances can cause. The scheduler's total delivery is always C, so balances
// only defer or advance WHICH query receives service: at most T = Σ|credit|
// units of a query's modeled service can be displaced, and they drain at the
// query's share rate C·w/W. Predictions made while balances are materially
// nonzero may shift by up to T·W/(C·w) before the mix settles.
func (c *checker) creditSlack(ov *service.Overview) func(weight float64) float64 {
	total, weights := 0.0, 0.0
	for _, v := range ov.Running {
		if v.Status == "running" {
			total += math.Abs(v.Credit)
			weights += v.Weight
		}
	}
	return func(weight float64) float64 {
		if total == 0 || weight <= 0 || weights <= 0 {
			return 0
		}
		return total * weights / (c.rateC * weight)
	}
}

// costRefined reports whether query id's total cost estimate shifted
// materially from its value at the last check (estNow is Done+Remaining for a
// live query, or the final measured work for a finisher): the engine's
// remaining-work refinement re-anchored the stage model's input, so
// predictions made against the old cost are void. The paper's exactness claim
// is conditional on known costs (Assumption 2).
func (c *checker) costRefined(id int, estNow float64) bool {
	pe, ok := c.prevEst[id]
	if !ok {
		return false
	}
	return math.Abs(estNow-pe) > math.Max(2, 0.02*pe)
}

// finishTol is the stage-model exactness tolerance for a prediction made at
// predAt with absolute finish pred: quantization (1.5 quanta, plus one
// quantum per planned boundary crossed — each finish/refill realigns service
// to tick granularity) plus a refinement allowance proportional to how far
// out the prediction looked.
func (c *checker) finishTol(pred, predAt float64, boundaries int) float64 {
	horizon := math.Max(0, pred-predAt)
	return 1.5*c.quantum + float64(boundaries)*c.quantum + 0.08*horizon + 4/c.rateC
}

func (c *checker) checkMetrics(tr *strings.Builder, ctx checkCtx, ov *service.Overview) {
	vals := parseMetrics(c.m.Metrics().Text())

	// Counters never decrease.
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !isCounterLine(k) {
			continue
		}
		if prev, ok := c.counters[k]; ok && vals[k] < prev {
			c.fail(tr, ctx, "I8 counter %s decreased: %s -> %s", k, g(prev), g(vals[k]))
		}
	}
	c.counters = vals

	// Depth gauges match the published snapshot.
	nRun, nBlk := 0, 0
	for _, v := range ov.Running {
		if v.Status == "blocked" {
			nBlk++
		} else {
			nRun++
		}
	}
	gauge := func(name string, want int) {
		if got, ok := vals[name]; !ok || got != float64(want) {
			c.fail(tr, ctx, "I8 gauge %s = %s, snapshot says %d", name, g(vals[name]), want)
		}
	}
	gauge("mqpi_queries_running", nRun)
	gauge("mqpi_queries_blocked", nBlk)
	gauge("mqpi_queries_queued", len(ov.Queued))
	gauge("mqpi_queries_scheduled", len(ov.Scheduled))
	if got := vals["mqpi_snapshot_epoch"]; got != float64(ov.Epoch) {
		c.fail(tr, ctx, "I8 snapshot epoch gauge %s != overview epoch %d", g(got), ov.Epoch)
	}

	// Lifecycle counters match the terminated set (the done list is complete).
	nFin, nFail, nAbort := 0, 0, 0
	for _, v := range ov.Finished {
		switch v.Status {
		case "finished":
			nFin++
		case "failed":
			nFail++
		case "aborted":
			nAbort++
		}
	}
	gauge("mqpi_queries_finished_total", nFin)
	gauge("mqpi_queries_failed_total", nFail)
	gauge("mqpi_queries_aborted_total", nAbort)
	total := len(ov.Running) + len(ov.Queued) + len(ov.Scheduled) + len(ov.Finished)
	gauge("mqpi_queries_submitted_total", total)
}

var lifecyclePrereq = map[string][]string{
	service.EventQueued:    {service.EventSubmitted},
	service.EventAdmitted:  {service.EventSubmitted},
	service.EventBlocked:   {service.EventAdmitted},
	service.EventUnblocked: {service.EventBlocked},
	service.EventPriority:  {service.EventSubmitted, service.EventScheduled},
	service.EventRevised:   {service.EventSubmitted},
	service.EventFinished:  {service.EventAdmitted},
	service.EventFailed:    {service.EventAdmitted},
	service.EventAborted:   {service.EventSubmitted, service.EventScheduled},
}

func (c *checker) checkLifecycle(tr *strings.Builder, ctx checkCtx, events []service.Event) {
	for _, ev := range events {
		prereqs, checked := lifecyclePrereq[ev.Type]
		if checked {
			satisfied := false
			for _, p := range prereqs {
				if c.seen[ev.QueryID][p] {
					satisfied = true
					break
				}
			}
			if !satisfied {
				c.fail(tr, ctx, "I9 q%d event %q (seq %d) before any of %v",
					ev.QueryID, ev.Type, ev.Seq, prereqs)
			}
		}
		if c.seen[ev.QueryID] == nil {
			c.seen[ev.QueryID] = make(map[string]bool)
		}
		c.seen[ev.QueryID][ev.Type] = true
	}
}

// parseMetrics extracts "name value" and "name{labels} value" samples from
// the Prometheus text exposition format.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

func isCounterLine(key string) bool {
	name := key
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_count") ||
		strings.HasSuffix(name, "_sum") || strings.HasSuffix(name, "_bucket")
}

// debugViews, when true, appends per-query detail lines to the trace.
var debugViews = false
