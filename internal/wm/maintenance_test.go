package wm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mqpi/internal/core"
)

func maintStates() []core.QueryState {
	return []core.QueryState{
		{ID: 1, Remaining: 100, Weight: 1, Done: 900}, // nearly finished: expensive to abort
		{ID: 2, Remaining: 500, Weight: 1, Done: 50},  // cheap to abort, big savings
		{ID: 3, Remaining: 300, Weight: 1, Done: 300},
		{ID: 4, Remaining: 50, Weight: 1, Done: 10},
	}
}

func TestPlanMaintenanceNoAbortWhenDeadlineGenerous(t *testing.T) {
	states := maintStates()
	C := 10.0
	// Total remaining 950 -> quiescent 95s; deadline 100s needs no aborts.
	plan, err := PlanMaintenance(states, C, 100, Case1CompletedWork)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Abort) != 0 || plan.Lost != 0 {
		t.Errorf("plan: %+v", plan)
	}
	if !almostEq(plan.Quiescent, 95) {
		t.Errorf("quiescent = %g", plan.Quiescent)
	}
}

func TestPlanMaintenanceGreedyOrder(t *testing.T) {
	states := maintStates()
	C := 10.0
	// Deadline 50s: kept work must be <= 500 U. Greedy ranks by loss/c:
	// Case 1 losses/c: Q1 9.0, Q2 0.1, Q3 1.0, Q4 0.2 -> abort Q2 first
	// (950-500=450 kept, quiescent 45 <= 50, done).
	plan, err := PlanMaintenance(states, C, 50, Case1CompletedWork)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Abort) != 1 || plan.Abort[0] != 2 {
		t.Fatalf("abort set: %v", plan.Abort)
	}
	if !almostEq(plan.Lost, 50) {
		t.Errorf("lost = %g", plan.Lost)
	}
	if !almostEq(plan.Quiescent, 45) {
		t.Errorf("quiescent = %g", plan.Quiescent)
	}
}

func TestPlanMaintenanceCase2(t *testing.T) {
	states := maintStates()
	C := 10.0
	// Case 2 losses/c: Q1 10, Q2 1.1, Q3 2, Q4 1.2 -> still Q2 first.
	plan, err := PlanMaintenance(states, C, 50, Case2TotalCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Abort) != 1 || plan.Abort[0] != 2 {
		t.Fatalf("abort set: %v", plan.Abort)
	}
	if !almostEq(plan.Lost, 550) { // done 50 + remaining 500
		t.Errorf("lost = %g", plan.Lost)
	}
}

func TestPlanMaintenanceZeroDeadline(t *testing.T) {
	states := maintStates()
	plan, err := PlanMaintenance(states, 10, 0, Case1CompletedWork)
	if err != nil {
		t.Fatal(err)
	}
	// Everything with remaining work must go.
	if len(plan.Abort) != 4 {
		t.Errorf("abort set: %v", plan.Abort)
	}
	if !almostEq(plan.Quiescent, 0) {
		t.Errorf("quiescent = %g", plan.Quiescent)
	}
}

func TestPlanMaintenanceSkipsFinishedQueries(t *testing.T) {
	states := []core.QueryState{
		{ID: 1, Remaining: 0, Weight: 1, Done: 100}, // already done: aborting is pure loss
		{ID: 2, Remaining: 100, Weight: 1, Done: 0},
	}
	plan, err := PlanMaintenance(states, 10, 0, Case1CompletedWork)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Abort) != 1 || plan.Abort[0] != 2 {
		t.Errorf("abort set: %v", plan.Abort)
	}
}

func TestPlanMaintenanceErrors(t *testing.T) {
	if _, err := PlanMaintenance(maintStates(), 0, 10, Case1CompletedWork); err == nil {
		t.Error("C=0 should fail")
	}
	if _, err := PlanMaintenance(maintStates(), 10, -1, Case1CompletedWork); err == nil {
		t.Error("negative deadline should fail")
	}
	if _, err := PlanMaintenanceExact(maintStates(), 0, 10, Case1CompletedWork); err == nil {
		t.Error("exact: C=0 should fail")
	}
	if _, err := PlanMaintenanceExact(make([]core.QueryState, 30), 10, 10, Case1CompletedWork); err == nil {
		t.Error("exact: n>25 should fail")
	}
}

// bruteForce finds the optimal plan by unpruned enumeration, as an
// independent oracle for the branch-and-bound implementation.
func bruteForce(states []core.QueryState, C, deadline float64, mode LostWorkMode) float64 {
	n := len(states)
	best := -1.0
	for mask := 0; mask < 1<<n; mask++ {
		kept, lost := 0.0, 0.0
		for i, q := range states {
			if mask&(1<<i) != 0 {
				lost += mode.lossOf(q)
			} else if q.Remaining > 0 {
				kept += q.Remaining
			}
		}
		if kept <= C*deadline+1e-9 && (best < 0 || lost < best) {
			best = lost
		}
	}
	return best
}

// TestExactMatchesBruteForce: branch-and-bound equals brute force on random
// instances, for both loss modes.
func TestExactMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{
				ID:        i + 1,
				Remaining: rng.Float64() * 100,
				Weight:    1,
				Done:      rng.Float64() * 100,
			}
		}
		C := 10.0
		deadline := rng.Float64() * 10
		for _, mode := range []LostWorkMode{Case1CompletedWork, Case2TotalCost} {
			plan, err := PlanMaintenanceExact(states, C, deadline, mode)
			if err != nil {
				return false
			}
			want := bruteForce(states, C, deadline, mode)
			if !almostEq(plan.Lost, want) {
				t.Logf("seed %d mode %v: got %g, brute force %g", seed, mode, plan.Lost, want)
				return false
			}
			if plan.Quiescent > deadline+1e-9 {
				t.Logf("seed %d: infeasible plan, quiescent %g > %g", seed, plan.Quiescent, deadline)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNeverBeatsExact and is feasible: greedy lost >= exact lost.
func TestGreedyNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{
				ID:        i + 1,
				Remaining: rng.Float64() * 100,
				Weight:    1,
				Done:      rng.Float64() * 100,
			}
		}
		C := 10.0
		deadline := rng.Float64() * 8
		greedy, err1 := PlanMaintenance(states, C, deadline, Case2TotalCost)
		exact, err2 := PlanMaintenanceExact(states, C, deadline, Case2TotalCost)
		if err1 != nil || err2 != nil {
			return false
		}
		if greedy.Quiescent > deadline+1e-9 {
			t.Logf("seed %d: greedy infeasible (%g > %g)", seed, greedy.Quiescent, deadline)
			return false
		}
		return greedy.Lost >= exact.Lost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLostWorkModeString(t *testing.T) {
	if Case1CompletedWork.String() != "completed-work" || Case2TotalCost.String() != "total-cost" {
		t.Errorf("%q / %q", Case1CompletedWork.String(), Case2TotalCost.String())
	}
}
