package wm

import (
	"fmt"
	"math"
	"sort"

	"mqpi/internal/core"
)

// LostWorkMode selects the §3.3 definition of lost work.
type LostWorkMode uint8

const (
	// Case1CompletedWork counts the work already completed for aborted
	// queries (it is wasted when they are aborted).
	Case1CompletedWork LostWorkMode = iota
	// Case2TotalCost counts the total cost e_i + c_i of aborted queries
	// (they must be rerun after maintenance — "unfinished work").
	Case2TotalCost
)

// String renders the mode.
func (m LostWorkMode) String() string {
	switch m {
	case Case1CompletedWork:
		return "completed-work"
	case Case2TotalCost:
		return "total-cost"
	default:
		return fmt.Sprintf("LostWorkMode(%d)", uint8(m))
	}
}

// lossOf returns the lost-work value of aborting q under the mode.
func (m LostWorkMode) lossOf(q core.QueryState) float64 {
	switch m {
	case Case2TotalCost:
		return q.Done + q.Remaining
	default:
		return q.Done
	}
}

// MaintenancePlan is the outcome of a scheduled-maintenance decision: which
// queries to abort now (operation O2′) so the rest finish by the deadline.
type MaintenancePlan struct {
	// Abort lists the IDs of queries to abort at time 0.
	Abort []int
	// Lost is the total lost work of the aborted queries (mode-dependent).
	Lost float64
	// Quiescent is the predicted system quiescent time in seconds: when all
	// kept queries will have finished. Because weighted fair sharing is
	// work-conserving, it equals Σ_kept c_i / C regardless of weights.
	Quiescent float64
}

// PlanMaintenance is the paper's greedy knapsack of §3.3: sort queries
// ascending by loss_i / V_i, where V_i = c_i/C is how much aborting Q_i
// shortens the quiescent time, and abort in that order until the predicted
// quiescent time meets the deadline. Queries that cannot help (c_i = 0) are
// never aborted.
func PlanMaintenance(states []core.QueryState, C float64, deadline float64, mode LostWorkMode) (MaintenancePlan, error) {
	if C <= 0 {
		return MaintenancePlan{}, fmt.Errorf("wm: rate C must be positive")
	}
	if deadline < 0 {
		return MaintenancePlan{}, fmt.Errorf("wm: deadline must be non-negative")
	}
	total := 0.0
	order := make([]int, 0, len(states))
	for i, q := range states {
		if q.Remaining > 0 {
			order = append(order, i)
		}
		total += math.Max(0, q.Remaining)
	}
	sort.SliceStable(order, func(a, b int) bool {
		qa, qb := states[order[a]], states[order[b]]
		// loss/V ascending; V = c/C, so compare loss/c.
		ra := mode.lossOf(qa) / qa.Remaining
		rb := mode.lossOf(qb) / qb.Remaining
		if ra != rb {
			return ra < rb
		}
		// Tie-break toward bigger time savings first.
		if qa.Remaining != qb.Remaining {
			return qa.Remaining > qb.Remaining
		}
		return qa.ID < qb.ID
	})
	plan := MaintenancePlan{}
	budget := C * deadline // kept work must fit in the deadline
	keptWork := total
	for _, idx := range order {
		if keptWork <= budget+1e-9 {
			break
		}
		q := states[idx]
		plan.Abort = append(plan.Abort, q.ID)
		plan.Lost += mode.lossOf(q)
		keptWork -= q.Remaining
	}
	plan.Quiescent = keptWork / C
	return plan, nil
}

// PlanMaintenanceExact computes the optimal abort set by exhaustive subset
// search with branch-and-bound: minimize lost work subject to the kept
// queries' total remaining cost fitting within C×deadline. It is the
// "theoretical limitation" of Figure 11 when fed exact costs. Exponential in
// n; intended for n ≤ ~25 (the paper's experiments use n = 10).
func PlanMaintenanceExact(states []core.QueryState, C float64, deadline float64, mode LostWorkMode) (MaintenancePlan, error) {
	if C <= 0 {
		return MaintenancePlan{}, fmt.Errorf("wm: rate C must be positive")
	}
	if deadline < 0 {
		return MaintenancePlan{}, fmt.Errorf("wm: deadline must be non-negative")
	}
	if len(states) > 25 {
		return MaintenancePlan{}, fmt.Errorf("wm: exact plan limited to 25 queries, got %d", len(states))
	}
	budget := C * deadline
	n := len(states)
	// Sort by descending loss so branch-and-bound prunes early.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return mode.lossOf(states[idx[a]]) > mode.lossOf(states[idx[b]])
	})
	bestLost := math.Inf(1)
	var bestAbort []int
	cur := make([]int, 0, n)

	var search func(pos int, keptWork, lost float64)
	search = func(pos int, keptWork, lost float64) {
		if lost >= bestLost {
			return
		}
		if pos == n {
			if keptWork <= budget+1e-9 {
				bestLost = lost
				bestAbort = append([]int(nil), cur...)
			}
			return
		}
		q := states[idx[pos]]
		// Option 1: keep the query.
		search(pos+1, keptWork+math.Max(0, q.Remaining), lost)
		// Option 2: abort it (pointless if it has no remaining cost).
		if q.Remaining > 0 {
			cur = append(cur, q.ID)
			search(pos+1, keptWork, lost+mode.lossOf(q))
			cur = cur[:len(cur)-1]
		}
	}
	// Prune further: if even aborting everything cannot fit (impossible,
	// since keeping nothing has keptWork 0), the search always finds a plan.
	search(0, 0, 0)

	plan := MaintenancePlan{Abort: bestAbort, Lost: bestLost}
	kept := 0.0
	aborted := make(map[int]bool, len(bestAbort))
	for _, id := range bestAbort {
		aborted[id] = true
	}
	for _, q := range states {
		if !aborted[q.ID] {
			kept += math.Max(0, q.Remaining)
		}
	}
	plan.Quiescent = kept / C
	sort.Ints(plan.Abort)
	return plan, nil
}
