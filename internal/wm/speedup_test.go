package wm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mqpi/internal/core"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// simulatedBenefit computes the actual shortening of targetID's remaining
// time when `victims` are blocked at time 0, via the stage model with the
// victims' weights zeroed.
func simulatedBenefit(states []core.QueryState, C float64, targetID int, victims map[int]bool) float64 {
	before := core.ComputeProfile(states, C).Finish[targetID]
	blocked := make([]core.QueryState, len(states))
	copy(blocked, states)
	for i := range blocked {
		if victims[blocked[i].ID] {
			blocked[i].Weight = 0
		}
	}
	after := core.ComputeProfile(blocked, C).Finish[targetID]
	return before - after
}

// TestSpeedUpBenefitFormulas: the closed-form benefits of §3.1 must match
// direct simulation, for both victim classes.
func TestSpeedUpBenefitFormulas(t *testing.T) {
	states := []core.QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 250, Weight: 2}, // ratio 125
		{ID: 3, Remaining: 300, Weight: 1}, // target, ratio 300
		{ID: 4, Remaining: 700, Weight: 1},
		{ID: 5, Remaining: 2000, Weight: 2}, // ratio 1000
	}
	C := 10.0
	victims, err := SpeedUpSingle(states, C, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 4 {
		t.Fatalf("got %d victims", len(victims))
	}
	for _, v := range victims {
		sim := simulatedBenefit(states, C, 3, map[int]bool{v.ID: true})
		if !almostEq(v.Benefit, sim) {
			t.Errorf("victim %d: formula %g, simulation %g", v.ID, v.Benefit, sim)
		}
	}
	// Victims must come out in decreasing benefit order.
	for i := 1; i < len(victims); i++ {
		if victims[i].Benefit > victims[i-1].Benefit+1e-9 {
			t.Errorf("victims unsorted: %+v", victims)
		}
	}
}

// TestSpeedUpOptimalityQuick: for random instances, the chosen single victim
// is at least as good as every alternative (checked by simulation).
func TestSpeedUpOptimalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{
				ID:        i + 1,
				Remaining: 10 + rng.Float64()*1000,
				Weight:    []float64{1, 2, 4}[rng.Intn(3)],
			}
		}
		C := 10.0
		target := 1 + rng.Intn(n)
		best, err := SpeedUpSingle(states, C, target, 1)
		if err != nil || len(best) != 1 {
			return false
		}
		bestSim := simulatedBenefit(states, C, target, map[int]bool{best[0].ID: true})
		for _, q := range states {
			if q.ID == target {
				continue
			}
			alt := simulatedBenefit(states, C, target, map[int]bool{q.ID: true})
			if alt > bestSim+1e-6 {
				t.Logf("seed %d: victim %d (%.4f) beaten by %d (%.4f)", seed, best[0].ID, bestSim, q.ID, alt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSpeedUpAdditivity: the benefit of blocking h victims equals the sum of
// their individual benefits (the paper's observation justifying the greedy).
func TestSpeedUpAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{
				ID:        i + 1,
				Remaining: 10 + rng.Float64()*1000,
				Weight:    1, // additivity in the paper's derivation assumes the standard schedule
			}
		}
		C := 10.0
		target := 1 + rng.Intn(n)
		h := 2
		victims, err := SpeedUpSingle(states, C, target, h)
		if err != nil || len(victims) != h {
			return false
		}
		sum := 0.0
		set := map[int]bool{}
		for _, v := range victims {
			sum += simulatedBenefit(states, C, target, map[int]bool{v.ID: true})
			set[v.ID] = true
		}
		joint := simulatedBenefit(states, C, target, set)
		return almostEq(sum, joint)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpeedUpEqualPriorityFastPath(t *testing.T) {
	states := []core.QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 300, Weight: 1},
		{ID: 3, Remaining: 500, Weight: 1},
	}
	// Target not last: any query with c >= c_target works; ours must pick one.
	v, err := SpeedUpSingleEqualPriority(states, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 3 {
		t.Errorf("victim = %d, want 3", v.ID)
	}
	// Target is last: the optimal victim is the second largest.
	v, err = SpeedUpSingleEqualPriority(states, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 2 {
		t.Errorf("victim = %d, want 2 (Q_{n-1})", v.ID)
	}
	// The fast path agrees with the general algorithm on benefit.
	general, err := SpeedUpSingle(states, 10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if general[0].ID != v.ID {
		t.Errorf("fast path %d vs general %d", v.ID, general[0].ID)
	}
}

// TestFastPathMatchesGeneralQuick: for equal priorities, the O(n) fast path
// and the general algorithm pick victims of identical simulated benefit.
func TestFastPathMatchesGeneralQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{ID: i + 1, Remaining: 10 + rng.Float64()*1000, Weight: 1}
		}
		target := 1 + rng.Intn(n)
		fast, err1 := SpeedUpSingleEqualPriority(states, target)
		general, err2 := SpeedUpSingle(states, 10, target, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		a := simulatedBenefit(states, 10, target, map[int]bool{fast.ID: true})
		b := simulatedBenefit(states, 10, target, map[int]bool{general[0].ID: true})
		return almostEq(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSpeedUpErrors(t *testing.T) {
	states := []core.QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 200, Weight: 1},
	}
	if _, err := SpeedUpSingle(states, 0, 1, 1); err == nil {
		t.Error("C=0 should fail")
	}
	if _, err := SpeedUpSingle(states, 10, 1, 0); err == nil {
		t.Error("h=0 should fail")
	}
	if _, err := SpeedUpSingle(states, 10, 99, 1); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := SpeedUpSingle([]core.QueryState{{ID: 1, Remaining: 1, Weight: 1}}, 10, 1, 1); err == nil {
		t.Error("no candidates should fail")
	}
	blocked := []core.QueryState{{ID: 1, Remaining: 1, Weight: 0}, {ID: 2, Remaining: 1, Weight: 1}}
	if _, err := SpeedUpSingle(blocked, 10, 1, 1); err == nil {
		t.Error("blocked target should fail")
	}
	if _, err := SpeedUpSingleEqualPriority(states, 99); err == nil {
		t.Error("unknown target (fast path) should fail")
	}
	if _, err := SpeedUpSingleEqualPriority([]core.QueryState{{ID: 1, Remaining: 1, Weight: 1}}, 1); err == nil {
		t.Error("no candidates (fast path) should fail")
	}
}

// totalResponseTime sums the finish times of all queries except the victim.
func totalResponseTime(states []core.QueryState, C float64, victim int) float64 {
	mod := make([]core.QueryState, len(states))
	copy(mod, states)
	for i := range mod {
		if mod[i].ID == victim {
			mod[i].Weight = 0
		}
	}
	p := core.ComputeProfile(mod, C)
	sum := 0.0
	for _, q := range mod {
		if q.ID != victim {
			sum += p.Finish[q.ID]
		}
	}
	return sum
}

// TestSpeedUpOthersFormula: R_m must match the simulated improvement of
// total response time, and the chosen victim must be optimal.
func TestSpeedUpOthersFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		states := make([]core.QueryState, n)
		for i := range states {
			states[i] = core.QueryState{
				ID:        i + 1,
				Remaining: 10 + rng.Float64()*1000,
				Weight:    []float64{1, 2}[rng.Intn(2)],
			}
		}
		C := 10.0
		v, err := SpeedUpOthers(states, C)
		if err != nil {
			return false
		}
		baseProfile := core.ComputeProfile(states, C)
		baseTotal := 0.0
		for _, q := range states {
			baseTotal += baseProfile.Finish[q.ID]
		}
		// Simulated improvement when blocking v (victim's own time excluded
		// from both sides, as in the paper: the other n−1 queries).
		simImpr := (baseTotal - baseProfile.Finish[v.ID]) - totalResponseTime(states, C, v.ID)
		if !almostEq(simImpr, v.Benefit) {
			t.Logf("seed %d: formula %g, sim %g", seed, v.Benefit, simImpr)
			return false
		}
		// Optimality over all alternatives.
		for _, q := range states {
			alt := (baseTotal - baseProfile.Finish[q.ID]) - totalResponseTime(states, C, q.ID)
			if alt > v.Benefit+1e-6 {
				t.Logf("seed %d: victim %d (%.4f) beaten by %d (%.4f)", seed, v.ID, v.Benefit, q.ID, alt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSpeedUpOthersErrors(t *testing.T) {
	if _, err := SpeedUpOthers(nil, 10); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := SpeedUpOthers([]core.QueryState{{ID: 1, Remaining: 1, Weight: 1}}, 10); err == nil {
		t.Error("single query should fail")
	}
	if _, err := SpeedUpOthers([]core.QueryState{
		{ID: 1, Remaining: 1, Weight: 1}, {ID: 2, Remaining: 1, Weight: 1},
	}, 0); err == nil {
		t.Error("C=0 should fail")
	}
}
