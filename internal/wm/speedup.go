// Package wm implements the paper's three workload-management problems on
// top of the multi-query PI's stage model (Section 3): single-query speed-up
// (§3.1), multiple-query speed-up (§3.2), and scheduled maintenance (§3.3).
// All functions operate on core.QueryState snapshots, so they work against
// any source of remaining-cost estimates.
package wm

import (
	"fmt"
	"math"
	"sort"

	"mqpi/internal/core"
)

// Victim is a query selected for blocking, with the predicted benefit in
// seconds (how much the target's — or the others' total — remaining time
// shrinks).
type Victim struct {
	ID      int
	Benefit float64
}

// sortedStates returns runnable states sorted ascending by c_i/w_i (the
// paper's canonical order) and the suffix weight sums W_j.
func sortedStates(states []core.QueryState) ([]core.QueryState, []float64) {
	active := make([]core.QueryState, 0, len(states))
	for _, q := range states {
		if q.Weight > 0 {
			if q.Remaining < 0 {
				q.Remaining = 0
			}
			active = append(active, q)
		}
	}
	sort.SliceStable(active, func(i, j int) bool {
		ri := active[i].Remaining / active[i].Weight
		rj := active[j].Remaining / active[j].Weight
		if ri != rj {
			return ri < rj
		}
		return active[i].ID < active[j].ID
	})
	suffixW := make([]float64, len(active)+1)
	for i := len(active) - 1; i >= 0; i-- {
		suffixW[i] = suffixW[i+1] + active[i].Weight
	}
	return active, suffixW
}

// stageDurations computes t_j for the sorted states (the standard case).
func stageDurations(sorted []core.QueryState, suffixW []float64, C float64) []float64 {
	out := make([]float64, len(sorted))
	prev := 0.0
	for j, q := range sorted {
		ratio := q.Remaining / q.Weight
		t := (ratio - prev) * suffixW[j] / C
		if t < 0 {
			t = 0
		}
		out[j] = t
		prev = ratio
	}
	return out
}

// SpeedUpSingle solves the single-query speed-up problem of §3.1: choose h
// victim queries to block at time 0 so that the target query's remaining
// execution time shrinks the most. Victims are returned in decreasing
// benefit order. Blocking victim Q_m with sorted position m yields benefit
//
//	m after target: T_m = w_m × Σ_{j=1..i} t_j / W_j   (condition C1),
//	m before target: T_m = c_m / C                      (condition C2),
//
// and blocking several victims adds their individual benefits, so the
// optimal h victims are the h largest T_m (the paper's greedy).
func SpeedUpSingle(states []core.QueryState, C float64, targetID int, h int) ([]Victim, error) {
	if C <= 0 {
		return nil, fmt.Errorf("wm: rate C must be positive")
	}
	if h < 1 {
		return nil, fmt.Errorf("wm: number of victims h must be >= 1")
	}
	sorted, suffixW := sortedStates(states)
	ti := -1
	for i, q := range sorted {
		if q.ID == targetID {
			ti = i
			break
		}
	}
	if ti < 0 {
		return nil, fmt.Errorf("wm: target query %d is not a runnable query", targetID)
	}
	if len(sorted) < 2 {
		return nil, fmt.Errorf("wm: no candidate victims")
	}
	durs := stageDurations(sorted, suffixW, C)
	// A = Σ_{j=1..i} t_j / W_j (1-based stages up to and including the
	// target's stage).
	A := 0.0
	for j := 0; j <= ti; j++ {
		if suffixW[j] > 0 {
			A += durs[j] / suffixW[j]
		}
	}
	victims := make([]Victim, 0, len(sorted)-1)
	for m, q := range sorted {
		if m == ti {
			continue
		}
		var benefit float64
		if m > ti {
			benefit = q.Weight * A
		} else {
			benefit = q.Remaining / C
		}
		victims = append(victims, Victim{ID: q.ID, Benefit: benefit})
	}
	sort.SliceStable(victims, func(i, j int) bool {
		if victims[i].Benefit != victims[j].Benefit {
			return victims[i].Benefit > victims[j].Benefit
		}
		return victims[i].ID < victims[j].ID
	})
	if h > len(victims) {
		h = len(victims)
	}
	return victims[:h], nil
}

// SpeedUpSingleEqualPriority is the O(n) fast path of §3.1 for the common
// case where every query has the same priority: any query with remaining
// cost at least the target's is optimal; otherwise the query with the
// largest remaining cost is. A single scan suffices — no sorting, no stage
// computation.
func SpeedUpSingleEqualPriority(states []core.QueryState, targetID int) (Victim, error) {
	var target *core.QueryState
	for i := range states {
		if states[i].ID == targetID {
			target = &states[i]
			break
		}
	}
	if target == nil || target.Weight <= 0 {
		return Victim{}, fmt.Errorf("wm: target query %d is not a runnable query", targetID)
	}
	best := -1
	for i := range states {
		q := &states[i]
		if q.ID == targetID || q.Weight <= 0 {
			continue
		}
		if q.Remaining >= target.Remaining {
			return Victim{ID: q.ID, Benefit: q.Remaining}, nil
		}
		if best < 0 || q.Remaining > states[best].Remaining {
			best = i
		}
	}
	if best < 0 {
		return Victim{}, fmt.Errorf("wm: no candidate victims")
	}
	return Victim{ID: states[best].ID, Benefit: states[best].Remaining}, nil
}

// SpeedUpOthers solves the multiple-query speed-up problem of §3.2: choose
// the one victim whose blocking most improves the total response time of the
// remaining n−1 queries. Blocking sorted query m improves it by
//
//	R_m = w_m × Σ_{j=1..m} (n−j) × t_j / W_j.
func SpeedUpOthers(states []core.QueryState, C float64) (Victim, error) {
	if C <= 0 {
		return Victim{}, fmt.Errorf("wm: rate C must be positive")
	}
	sorted, suffixW := sortedStates(states)
	n := len(sorted)
	if n < 2 {
		return Victim{}, fmt.Errorf("wm: need at least two runnable queries")
	}
	durs := stageDurations(sorted, suffixW, C)
	best := Victim{Benefit: math.Inf(-1)}
	prefix := 0.0 // Σ_{j=1..m} (n−j) t_j / W_j
	for m, q := range sorted {
		if suffixW[m] > 0 {
			prefix += float64(n-(m+1)) * durs[m] / suffixW[m]
		}
		r := q.Weight * prefix
		if r > best.Benefit || (r == best.Benefit && q.ID < best.ID) {
			best = Victim{ID: q.ID, Benefit: r}
		}
	}
	return best, nil
}
