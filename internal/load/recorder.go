package load

import (
	"math"
	"sync"
	"sync/atomic"
)

// Recorder collects everything the swarm measures. Latency histograms and op
// counters are lock-free; the ETA-accuracy accumulator takes a short mutex
// once per completed query (not per poll), keeping it off the hot path.
type Recorder struct {
	Submit Histogram // wall latency of POST /queries
	Poll   Histogram // wall latency of GET /queries/{id}
	E2E    Histogram // wall time from submit to first poll observing a terminal state

	Submitted atomic.Uint64 // accepted submissions (201)
	Rejected  atomic.Uint64 // admission 429s
	Errors    atomic.Uint64 // transport failures and unexpected statuses
	Polls     atomic.Uint64
	Completed atomic.Uint64 // queries observed reaching a terminal state
	Timeouts  atomic.Uint64 // queries still running when the swarm stopped
	Dropped   atomic.Uint64 // scheduled ops never fired (deadline hit first)

	eta etaAgg
}

// etaSample is one in-flight observation of a query's predicted finish: at
// virtual time Now the server predicted Now+ETA, with the uncertainty band
// [Now+Low, Now+High]. Fraction is the progress at sampling time, which is
// what buckets the accuracy curve.
type etaSample struct {
	Now, ETA, Low, High, Fraction float64
}

// etaBuckets splits ETA samples by the progress fraction at which they were
// taken: early-life predictions are expected to be worse than near-finish
// ones, and the curve shows whether load widens that gap.
const etaBuckets = 10

// etaBucket is one decile's accumulated accuracy.
type etaBucket struct {
	samples int
	sumAbs  float64 // |predicted finish - actual finish|, virtual seconds
	sumRel  float64 // abs error relative to the remaining time at sampling
	covered int     // actual finish fell inside [Now+Low, Now+High]
	banded  int     // samples that carried a finite band at all
}

type etaAgg struct {
	mu      sync.Mutex
	buckets [etaBuckets]etaBucket
}

// foldQuery folds one completed query's poll-time samples into the aggregate,
// given the actual (virtual) finish time reported after completion.
func (r *Recorder) foldQuery(samples []etaSample, actualFinish float64) {
	if len(samples) == 0 || math.IsNaN(actualFinish) || math.IsInf(actualFinish, 0) {
		return
	}
	r.eta.mu.Lock()
	defer r.eta.mu.Unlock()
	for _, s := range samples {
		if math.IsNaN(s.ETA) || math.IsInf(s.ETA, 0) {
			continue
		}
		i := int(s.Fraction * etaBuckets)
		if i < 0 {
			i = 0
		}
		if i >= etaBuckets {
			i = etaBuckets - 1
		}
		b := &r.eta.buckets[i]
		pred := s.Now + s.ETA
		abs := math.Abs(pred - actualFinish)
		remaining := actualFinish - s.Now
		if remaining < 1e-9 {
			remaining = 1e-9
		}
		b.samples++
		b.sumAbs += abs
		b.sumRel += abs / remaining
		if !math.IsNaN(s.Low) && !math.IsNaN(s.High) && !math.IsInf(s.High, 0) {
			b.banded++
			// One-quantum epsilon absorbs the granularity of tick-aligned
			// finishes, mirroring the calibration battery's convention.
			const eps = 1e-9
			if actualFinish >= s.Now+s.Low-eps && actualFinish <= s.Now+s.High+eps {
				b.covered++
			}
		}
	}
}

// ETAPoint is one decile of the ETA-accuracy-under-load curve.
type ETAPoint struct {
	FractionLo float64 `json:"fraction_lo"` // bucket start (0.0, 0.1, …)
	Samples    int     `json:"samples"`
	MeanAbsErr float64 `json:"mean_abs_err_s"` // virtual seconds
	MeanRelErr float64 `json:"mean_rel_err"`
	Coverage   float64 `json:"band_coverage"` // fraction of banded samples covered
	Banded     int     `json:"banded_samples"`
}

// ETAAccuracy is the swarm-wide ETA scorecard: pooled error plus the
// per-progress-decile curve.
type ETAAccuracy struct {
	Samples    int        `json:"samples"`
	MeanAbsErr float64    `json:"mean_abs_err_s"`
	MeanRelErr float64    `json:"mean_rel_err"`
	Coverage   float64    `json:"band_coverage"`
	Banded     int        `json:"banded_samples"`
	Curve      []ETAPoint `json:"curve"`
}

// ETA summarizes the folded samples.
func (r *Recorder) ETA() ETAAccuracy {
	r.eta.mu.Lock()
	defer r.eta.mu.Unlock()
	var out ETAAccuracy
	var sumAbs, sumRel float64
	var covered int
	for i, b := range r.eta.buckets {
		p := ETAPoint{FractionLo: float64(i) / etaBuckets, Samples: b.samples, Banded: b.banded}
		if b.samples > 0 {
			p.MeanAbsErr = b.sumAbs / float64(b.samples)
			p.MeanRelErr = b.sumRel / float64(b.samples)
		}
		if b.banded > 0 {
			p.Coverage = float64(b.covered) / float64(b.banded)
		}
		out.Curve = append(out.Curve, p)
		out.Samples += b.samples
		out.Banded += b.banded
		sumAbs += b.sumAbs
		sumRel += b.sumRel
		covered += b.covered
	}
	if out.Samples > 0 {
		out.MeanAbsErr = sumAbs / float64(out.Samples)
		out.MeanRelErr = sumRel / float64(out.Samples)
	}
	if out.Banded > 0 {
		out.Coverage = float64(covered) / float64(out.Banded)
	}
	return out
}
