package load

import (
	"runtime"
	"testing"
)

func genConfigs() map[string]GenConfig {
	return map[string]GenConfig{
		"closed":  {Arrival: ArrivalClosed, Seed: 42, Ops: 500},
		"poisson": {Arrival: ArrivalPoisson, Seed: 42, Rate: 400, Horizon: 3},
		"bursty":  {Arrival: ArrivalBursty, Seed: 42, Rate: 200, Horizon: 3},
		"diurnal": {Arrival: ArrivalDiurnal, Seed: 42, Rate: 300, Horizon: 3},
	}
}

// TestScheduleDeterministic is the seeded-determinism contract, mirroring the
// experiments pool's: the same seed must produce a byte-identical arrival
// schedule and template sequence no matter how the swarm will be shaped.
// GenConfig deliberately has no client-count field — clients only claim ops
// by atomic index — so -clients cannot perturb the schedule by construction;
// what this test pins is independence from repetition and from GOMAXPROCS.
func TestScheduleDeterministic(t *testing.T) {
	for name, cfg := range genConfigs() {
		t.Run(name, func(t *testing.T) {
			s1, err := BuildSchedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prev := runtime.GOMAXPROCS(1)
			s2, err := BuildSchedule(cfg)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			runtime.GOMAXPROCS(4)
			s3, err := BuildSchedule(cfg)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			f1, f2, f3 := s1.Fingerprint(), s2.Fingerprint(), s3.Fingerprint()
			if f1 != f2 || f1 != f3 {
				t.Fatalf("schedule not deterministic across GOMAXPROCS: lens %d/%d/%d", len(f1), len(f2), len(f3))
			}
			if len(s1.Ops) == 0 {
				t.Fatal("empty schedule")
			}

			other := cfg
			other.Seed = 43
			s4, err := BuildSchedule(other)
			if err != nil {
				t.Fatal(err)
			}
			if s4.Fingerprint() == f1 {
				t.Fatal("different seeds produced identical schedules")
			}
		})
	}
}

// TestScheduleShape checks each process's structural invariants: open-loop
// instants are non-decreasing within the horizon, closed-loop thinks are
// non-negative, templates stay within the configured table set, and the Ops
// cap is honored.
func TestScheduleShape(t *testing.T) {
	for name, cfg := range genConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg.Tables = 3
			s, err := BuildSchedule(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prevAt := 0.0
			for i, op := range s.Ops {
				if op.Table < 1 || op.Table > 3 {
					t.Fatalf("op %d: table %d outside 1..3", i, op.Table)
				}
				if op.SQL() == "" {
					t.Fatalf("op %d: empty SQL", i)
				}
				if s.Open() {
					if op.At < prevAt {
						t.Fatalf("op %d: arrival %g before previous %g", i, op.At, prevAt)
					}
					if op.At > s.Cfg.Horizon {
						t.Fatalf("op %d: arrival %g beyond horizon %g", i, op.At, s.Cfg.Horizon)
					}
					prevAt = op.At
				} else if op.Think < 0 {
					t.Fatalf("op %d: negative think %g", i, op.Think)
				}
			}
		})
	}

	capped := GenConfig{Arrival: ArrivalPoisson, Seed: 1, Rate: 10000, Horizon: 10, Ops: 37}
	s, err := BuildSchedule(capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 37 {
		t.Fatalf("ops cap ignored: %d ops, want 37", len(s.Ops))
	}
}

// TestScheduleZipfSkew: with a strongly skewed exponent, part_1 must be the
// hottest table — the property the fold-aware routing and the paper's
// size distribution both rely on.
func TestScheduleZipfSkew(t *testing.T) {
	s, err := BuildSchedule(GenConfig{Arrival: ArrivalClosed, Seed: 9, Ops: 3000, Tables: 3, ZipfA: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, op := range s.Ops {
		counts[op.Table]++
	}
	if !(counts[1] > counts[2] && counts[1] > counts[3]) {
		t.Fatalf("Zipf skew missing: counts %v", counts)
	}
}

func TestValidArrival(t *testing.T) {
	for _, a := range Arrivals() {
		if err := ValidArrival(a); err != nil {
			t.Errorf("ValidArrival(%q) = %v", a, err)
		}
	}
	if err := ValidArrival("uniform"); err == nil {
		t.Error("ValidArrival accepted an unknown process")
	}
	if _, err := BuildSchedule(GenConfig{Arrival: "uniform"}); err == nil {
		t.Error("BuildSchedule accepted an unknown process")
	}
}
