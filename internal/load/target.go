package load

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"mqpi/internal/cluster"
	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/workload"
)

// Target is where the swarm sends its traffic: a base URL plus the client
// used to reach it. NewURLTarget points at a live mqpi-serve process over
// TCP; NewHandlerTarget drives an in-process handler through the full
// HTTP mux/JSON stack without sockets, which is what the CI smoke and the
// committed baseline use so file-descriptor limits never shape the numbers.
type Target struct {
	BaseURL string
	Client  *http.Client
}

// NewURLTarget drives a live endpoint over the network. The transport's idle
// pool is widened so thousands of clients reuse connections instead of
// thrashing the dialer.
func NewURLTarget(url string, clients int) *Target {
	tr := &http.Transport{
		MaxIdleConns:        clients + 64,
		MaxIdleConnsPerHost: clients + 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Target{
		BaseURL: strings.TrimRight(url, "/"),
		Client:  &http.Client{Transport: tr, Timeout: 30 * time.Second},
	}
}

// NewHandlerTarget drives an http.Handler in process.
func NewHandlerTarget(h http.Handler) *Target {
	return &Target{BaseURL: "http://mqpi.local", Client: &http.Client{Transport: handlerTransport{h}}}
}

// handlerTransport short-circuits RoundTrip into a direct ServeHTTP call.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &respRecorder{code: http.StatusOK, header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode: rec.code,
		Status:     http.StatusText(rec.code),
		Header:     rec.header,
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		Request:    req,
		ProtoMajor: 1, ProtoMinor: 1,
		ContentLength: int64(rec.body.Len()),
	}, nil
}

// respRecorder is the minimal ResponseWriter the transport needs (the stdlib
// recorder lives in net/http/httptest, which drags the testing package into
// the mqpi-load binary).
type respRecorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func (r *respRecorder) Header() http.Header         { return r.header }
func (r *respRecorder) WriteHeader(code int)        { r.code = code }
func (r *respRecorder) Write(b []byte) (int, error) { return r.body.Write(b) }

// ServerOpts shapes the in-process server the harness stands up when no
// external -url is given. Shards > 1 or AdmitRate > 0 selects the cluster
// front door, mirroring mqpi-serve's buildServer.
type ServerOpts struct {
	Rows       int           `json:"rows"`
	RateC      float64       `json:"rate_c"`
	MPL        int           `json:"mpl,omitempty"`
	Quantum    float64       `json:"quantum"`
	TimeScale  float64       `json:"time_scale"`
	Tick       time.Duration `json:"tick_ns"`
	Workers    int           `json:"workers"`
	Shards     int           `json:"shards"`
	Routing    string        `json:"routing,omitempty"`
	AdmitRate  float64       `json:"admit_rate,omitempty"`
	AdmitBurst float64       `json:"admit_burst,omitempty"`
	AdmitQueue bool          `json:"admit_queue,omitempty"`
	Fold       bool          `json:"fold,omitempty"`
	Estimator  string        `json:"estimator,omitempty"`
}

func (o ServerOpts) withDefaults() ServerOpts {
	// 15000 is the floor the demo part tables need: part_1's 500 distinct
	// partkeys require lineitem's key range (rows/30) to reach 500.
	if o.Rows <= 0 {
		o.Rows = 15000
	}
	if o.RateC <= 0 {
		o.RateC = 200
	}
	if o.Quantum <= 0 {
		o.Quantum = 0.25
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 400
	}
	if o.Tick <= 0 {
		o.Tick = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Routing == "" {
		o.Routing = "round-robin"
	}
	if o.Estimator == "" {
		o.Estimator = core.EstimatorStage
	}
	return o
}

// LocalServer is an in-process serving tier plus the handler in front of it.
type LocalServer struct {
	Handler http.Handler
	closer  interface{ Close() }
}

// Close shuts the tier down.
func (s *LocalServer) Close() { s.closer.Close() }

// demoDB builds one demo-dataset engine (lineitem + part_1..3, Table 1
// proportions) scaled to rows.
func demoDB(rows int) (*engine.DB, error) {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: rows, Seed: 1})
	if err != nil {
		return nil, err
	}
	for i, n := range []int{50, 10, 20} {
		if err := ds.CreatePartTable(i+1, n); err != nil {
			return nil, err
		}
	}
	return ds.DB, nil
}

// StartLocal stands up the serving tier the swarm will flood: the demo
// dataset behind either the single-engine service handler or the sharded
// cluster front door, with a live wall-clock ticker advancing virtual time.
func StartLocal(o ServerOpts) (*LocalServer, error) {
	o = o.withDefaults()
	svcCfg := service.Config{
		Sched:     sched.Config{RateC: o.RateC, MPL: o.MPL, Quantum: o.Quantum, Workers: o.Workers, Fold: o.Fold},
		TickEvery: o.Tick,
		TimeScale: o.TimeScale,
		Estimator: o.Estimator,
	}
	if o.Shards > 1 || o.AdmitRate > 0 {
		var dbErr error
		c, err := cluster.New(cluster.Config{
			Shards:     o.Shards,
			Routing:    o.Routing,
			AdmitRate:  o.AdmitRate,
			AdmitBurst: o.AdmitBurst,
			AdmitQueue: o.AdmitQueue,
			Service:    svcCfg,
			OpenDB: func() *engine.DB {
				db, err := demoDB(o.Rows)
				if err != nil {
					dbErr = err
					return engine.Open()
				}
				return db
			},
		})
		if err != nil {
			return nil, err
		}
		if dbErr != nil {
			c.Close()
			return nil, fmt.Errorf("load: demo dataset: %w", dbErr)
		}
		return &LocalServer{Handler: cluster.NewHandler(c), closer: c}, nil
	}
	db, err := demoDB(o.Rows)
	if err != nil {
		return nil, fmt.Errorf("load: demo dataset: %w", err)
	}
	m := service.New(db, svcCfg)
	return &LocalServer{Handler: service.NewHandler(m), closer: m}, nil
}
