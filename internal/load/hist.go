// Package load is the YCSB-style load harness: seeded arrival/template
// generators, a goroutine-per-client swarm that floods a live mqpi-serve
// endpoint with submit+poll traffic, lock-free latency recording, and an
// SLO scorecard (p50/p95/p99/p999 plus ETA-accuracy-under-load curves).
//
// Everything the swarm records is either lock-free (latency histograms,
// op counters) or folded under a short critical section once per completed
// query (ETA accuracy), so the harness itself stays off the latency path
// it is measuring.
package load

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram layout: HDR-style log-bucketed counts over nanosecond values.
// Values below subCount get exact unit buckets; above that, each power-of-two
// octave splits into subCount sub-buckets, bounding the relative bucket width
// by 1/subCount (~3.1% at subBits=5). Recording is a single atomic increment,
// so any number of client goroutines share one Histogram without locks.
const (
	subBits  = 5
	subCount = 1 << subBits
	// numBuckets covers every shift a 64-bit value can need.
	numBuckets = subCount + (64-subBits)*subCount
)

// Histogram is a lock-free log-bucketed latency histogram. The zero value is
// ready to use. Record and the read-side accessors may race benignly: reads
// see some linearization of concurrent increments, which is all a percentile
// report needs.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds; saturating in practice (584y of latency)
	max    atomic.Uint64
	min    atomic.Uint64 // stored as ^value so zero means "unset"
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // floor(log2 v), >= subBits
	shift := e - subBits
	sub := int(v>>uint(shift)) - subCount // in [0, subCount)
	return subCount + shift*subCount + sub
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket idx.
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < subCount {
		return uint64(idx), uint64(idx)
	}
	shift := uint((idx - subCount) / subCount)
	sub := uint64((idx - subCount) % subCount)
	lo = (subCount + sub) << shift
	return lo, lo + (1 << shift) - 1
}

// Record adds one duration. Non-positive durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if ^v <= cur || h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value in nanoseconds (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Min returns the smallest recorded value in nanoseconds (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return ^h.min.Load()
}

// Mean returns the mean recorded value in nanoseconds.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (q in [0,1]) in nanoseconds, approximated
// to the midpoint of the bucket holding the q-th value. The error is bounded
// by half the bucket width: at most ~1/subCount of the value itself.
func (h *Histogram) Quantile(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the counts once so a concurrent recorder can't make the rank
	// walk overshoot the total it was computed from.
	var snap [numBuckets]uint64
	total := uint64(0)
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for i, c := range snap {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			return (lo + hi) / 2
		}
	}
	lo, hi := bucketBounds(numBuckets - 1)
	return (lo + hi) / 2
}

// LatencyStats is one histogram's scorecard row, in milliseconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Max   float64 `json:"max_ms"`
}

// Stats summarizes the histogram for the scorecard.
func (h *Histogram) Stats() LatencyStats {
	ms := func(ns uint64) float64 { return float64(ns) / 1e6 }
	return LatencyStats{
		Count: h.Count(),
		Mean:  h.Mean() / 1e6,
		P50:   ms(h.Quantile(0.50)),
		P95:   ms(h.Quantile(0.95)),
		P99:   ms(h.Quantile(0.99)),
		P999:  ms(h.Quantile(0.999)),
		Max:   ms(h.Max()),
	}
}

// Ordered reports whether the percentile ladder is sane: non-empty and
// monotonic p50 <= p95 <= p99 <= p999. Bucket midpoints are monotonic by
// construction, so a violation means the histogram itself is corrupt; the
// smoke run asserts it to catch exactly that.
func (s LatencyStats) Ordered() bool {
	return s.Count > 0 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.P999
}
