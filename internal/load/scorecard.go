package load

import (
	"fmt"
	"strings"
)

// OpCounts is the swarm's op-level tally.
type OpCounts struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected_429"`
	Errors    uint64 `json:"errors"`
	Polls     uint64 `json:"polls"`
	Completed uint64 `json:"completed"`
	Timeouts  uint64 `json:"timeouts"`
	Dropped   uint64 `json:"dropped"`
}

// Latencies groups the three measured distributions.
type Latencies struct {
	Submit LatencyStats `json:"submit"`
	Poll   LatencyStats `json:"poll"`
	E2E    LatencyStats `json:"end_to_end"`
}

// Scorecard is one load run's full result: configuration echo, op counts,
// the latency SLO ladder for submit/poll/end-to-end, and the ETA accuracy
// observed while the swarm ran. It is what mqpi-load emits as JSON and what
// BENCH_load.json commits as the baseline.
type Scorecard struct {
	Name        string      `json:"name,omitempty"`
	Gen         GenConfig   `json:"gen"`
	Swarm       SwarmOpts   `json:"swarm"`
	Server      *ServerOpts `json:"server,omitempty"` // nil when driving an external URL
	WallSeconds float64     `json:"wall_seconds"`
	// CompletedPerSec is end-to-end query throughput (completions, not HTTP
	// requests, per wall second).
	CompletedPerSec float64     `json:"completed_per_sec"`
	PollsPerSec     float64     `json:"polls_per_sec"`
	Ops             OpCounts    `json:"ops"`
	Latency         Latencies   `json:"latency_ms"`
	ETA             ETAAccuracy `json:"eta"`
}

// BuildScorecard folds a finished run into its report.
func BuildScorecard(name string, gen GenConfig, swarm SwarmOpts, server *ServerOpts, rec *Recorder, wallSeconds float64) Scorecard {
	sc := Scorecard{
		Name:        name,
		Gen:         gen.withDefaults(),
		Swarm:       swarm.withDefaults(),
		Server:      server,
		WallSeconds: wallSeconds,
		Ops: OpCounts{
			Submitted: rec.Submitted.Load(),
			Rejected:  rec.Rejected.Load(),
			Errors:    rec.Errors.Load(),
			Polls:     rec.Polls.Load(),
			Completed: rec.Completed.Load(),
			Timeouts:  rec.Timeouts.Load(),
			Dropped:   rec.Dropped.Load(),
		},
		Latency: Latencies{Submit: rec.Submit.Stats(), Poll: rec.Poll.Stats(), E2E: rec.E2E.Stats()},
		ETA:     rec.ETA(),
	}
	if wallSeconds > 0 {
		sc.CompletedPerSec = float64(sc.Ops.Completed) / wallSeconds
		sc.PollsPerSec = float64(sc.Ops.Polls) / wallSeconds
	}
	return sc
}

// Check is the smoke run's self-test: every histogram must be non-empty with
// a sane percentile ladder, at least one query must have completed, and the
// swarm must not have died on transport errors. It returns nil on a healthy
// scorecard.
func (s *Scorecard) Check() error {
	for _, h := range []struct {
		name string
		st   LatencyStats
	}{{"submit", s.Latency.Submit}, {"poll", s.Latency.Poll}, {"end_to_end", s.Latency.E2E}} {
		if h.st.Count == 0 {
			return fmt.Errorf("load: %s histogram is empty", h.name)
		}
		if !h.st.Ordered() {
			return fmt.Errorf("load: %s percentiles disordered: p50=%.3f p95=%.3f p99=%.3f p999=%.3f",
				h.name, h.st.P50, h.st.P95, h.st.P99, h.st.P999)
		}
	}
	if s.Ops.Completed == 0 {
		return fmt.Errorf("load: no query completed end to end")
	}
	if s.Ops.Errors > 0 {
		return fmt.Errorf("load: %d transport/status errors during the run", s.Ops.Errors)
	}
	if c := s.ETA.Coverage; c < 0 || c > 1 {
		return fmt.Errorf("load: band coverage %g outside [0,1]", c)
	}
	return nil
}

// Text renders the human-readable scorecard table.
func (s *Scorecard) Text() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "== %s ==\n", s.Name)
	}
	fmt.Fprintf(&b, "arrival=%s clients=%d ops=%d wall=%.2fs  completed=%d (%.0f/s)  polls=%d (%.0f/s)\n",
		s.Gen.Arrival, s.Swarm.Clients, s.Ops.Submitted, s.WallSeconds,
		s.Ops.Completed, s.CompletedPerSec, s.Ops.Polls, s.PollsPerSec)
	if s.Ops.Rejected+s.Ops.Errors+s.Ops.Timeouts+s.Ops.Dropped > 0 {
		fmt.Fprintf(&b, "rejected(429)=%d errors=%d timeouts=%d dropped=%d\n",
			s.Ops.Rejected, s.Ops.Errors, s.Ops.Timeouts, s.Ops.Dropped)
	}
	row := func(name string, st LatencyStats) {
		fmt.Fprintf(&b, "%-11s n=%-8d mean=%8.3fms  p50=%8.3fms  p95=%8.3fms  p99=%8.3fms  p999=%8.3fms  max=%8.3fms\n",
			name, st.Count, st.Mean, st.P50, st.P95, st.P99, st.P999, st.Max)
	}
	row("submit", s.Latency.Submit)
	row("poll", s.Latency.Poll)
	row("end-to-end", s.Latency.E2E)
	fmt.Fprintf(&b, "eta: samples=%d mean_abs_err=%.3fvs mean_rel_err=%.3f band_coverage=%.1f%% (banded=%d)\n",
		s.ETA.Samples, s.ETA.MeanAbsErr, s.ETA.MeanRelErr, 100*s.ETA.Coverage, s.ETA.Banded)
	for _, p := range s.ETA.Curve {
		if p.Samples == 0 {
			continue
		}
		fmt.Fprintf(&b, "  progress %.0f-%.0f%%: n=%-6d rel_err=%.3f coverage=%.1f%%\n",
			100*p.FractionLo, 100*(p.FractionLo+1.0/etaBuckets), p.Samples, p.MeanRelErr, 100*p.Coverage)
	}
	return b.String()
}
