package load

import (
	"testing"
	"time"
)

// smokeServer keeps the in-process tier small and fast: a reduced dataset
// with aggressive virtual-time scaling so a seconds-scale wall budget
// completes hundreds of queries.
func smokeServer() ServerOpts {
	return ServerOpts{
		Rows:      15000,
		RateC:     400,
		Quantum:   0.25,
		TimeScale: 800,
		Tick:      time.Millisecond,
	}
}

func runSmoke(t *testing.T, server ServerOpts, gen GenConfig, swarm SwarmOpts) Scorecard {
	t.Helper()
	srv, err := StartLocal(server)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sched, err := BuildSchedule(gen)
	if err != nil {
		t.Fatal(err)
	}
	rec, wall := Run(NewHandlerTarget(srv.Handler), sched, swarm)
	return BuildScorecard(t.Name(), gen, swarm, &server, rec, wall)
}

// TestSwarmSingleEngine drives a small closed-loop swarm against the
// single-engine service end to end: every op must complete, the three
// histograms must fill with ordered percentiles, and the ETA audit must
// collect samples stamped with virtual time.
func TestSwarmSingleEngine(t *testing.T) {
	gen := GenConfig{Arrival: ArrivalClosed, Seed: 3, Ops: 32, Think: 0.001}
	swarm := SwarmOpts{Clients: 8, PollEvery: time.Millisecond, Duration: 30 * time.Second}
	sc := runSmoke(t, smokeServer(), gen, swarm)

	if err := sc.Check(); err != nil {
		t.Fatalf("scorecard check: %v\n%s", err, sc.Text())
	}
	if sc.Ops.Submitted != 32 || sc.Ops.Completed != 32 {
		t.Fatalf("submitted=%d completed=%d, want 32/32\n%s", sc.Ops.Submitted, sc.Ops.Completed, sc.Text())
	}
	if sc.Ops.Polls < sc.Ops.Completed {
		t.Fatalf("polls=%d < completed=%d", sc.Ops.Polls, sc.Ops.Completed)
	}
	if sc.ETA.Samples == 0 {
		t.Fatalf("no ETA samples collected\n%s", sc.Text())
	}
	// Stage mode emits degenerate bands (low == high == point), which still
	// count as banded samples; coverage must be a valid fraction.
	if sc.ETA.Coverage < 0 || sc.ETA.Coverage > 1 {
		t.Fatalf("coverage %g outside [0,1]", sc.ETA.Coverage)
	}
}

// TestSwarmCluster points the same swarm at the 2-shard cluster front door
// with generous admission, exercising routed submits, global-ID polls, and
// the merged read path under concurrency.
func TestSwarmCluster(t *testing.T) {
	server := smokeServer()
	server.Shards = 2
	server.Routing = "least-loaded"
	server.AdmitRate = 1e6
	server.AdmitBurst = 1e6
	gen := GenConfig{Arrival: ArrivalPoisson, Seed: 5, Rate: 120, Horizon: 0.8}
	swarm := SwarmOpts{Clients: 16, PollEvery: time.Millisecond, Duration: 30 * time.Second, Sessions: true}
	sc := runSmoke(t, server, gen, swarm)

	if err := sc.Check(); err != nil {
		t.Fatalf("scorecard check: %v\n%s", err, sc.Text())
	}
	if sc.Ops.Completed == 0 || sc.Ops.Completed != sc.Ops.Submitted {
		t.Fatalf("completed=%d submitted=%d\n%s", sc.Ops.Completed, sc.Ops.Submitted, sc.Text())
	}
}

// TestSwarmAdmissionRejects starves the token bucket so the swarm observes
// 429s: rejected ops must be counted separately from errors, and the run as
// a whole still completes the admitted burst.
func TestSwarmAdmissionRejects(t *testing.T) {
	server := smokeServer()
	server.Shards = 2
	server.AdmitRate = 1e-9
	server.AdmitBurst = 4
	gen := GenConfig{Arrival: ArrivalClosed, Seed: 7, Ops: 12, Think: 0.0005}
	swarm := SwarmOpts{Clients: 4, PollEvery: time.Millisecond, Duration: 30 * time.Second, Sessions: true}
	sc := runSmoke(t, server, gen, swarm)

	if sc.Ops.Errors != 0 {
		t.Fatalf("errors=%d\n%s", sc.Ops.Errors, sc.Text())
	}
	if sc.Ops.Rejected == 0 {
		t.Fatalf("starved bucket produced no 429s\n%s", sc.Text())
	}
	if sc.Ops.Submitted+sc.Ops.Rejected != 12 {
		t.Fatalf("submitted=%d rejected=%d, want 12 total\n%s", sc.Ops.Submitted, sc.Ops.Rejected, sc.Text())
	}
	if sc.Ops.Completed != sc.Ops.Submitted {
		t.Fatalf("completed=%d submitted=%d\n%s", sc.Ops.Completed, sc.Ops.Submitted, sc.Text())
	}
}

// TestSwarmDeadlineDropsOps pins the duration cap: a schedule far larger
// than the budget must stop at the deadline with the unfired remainder
// counted as dropped, never hanging.
func TestSwarmDeadlineDropsOps(t *testing.T) {
	gen := GenConfig{Arrival: ArrivalClosed, Seed: 11, Ops: 4096, Think: 0.001}
	swarm := SwarmOpts{Clients: 4, PollEvery: time.Millisecond, Duration: 900 * time.Millisecond}
	sc := runSmoke(t, smokeServer(), gen, swarm)

	if sc.Ops.Dropped == 0 {
		t.Fatalf("no ops dropped under a 0.9s budget for 4096 ops\n%s", sc.Text())
	}
	if sc.Ops.Errors != 0 {
		t.Fatalf("errors=%d\n%s", sc.Ops.Errors, sc.Text())
	}
	// With no errors, every scheduled op is accounted exactly once.
	total := sc.Ops.Submitted + sc.Ops.Rejected + sc.Ops.Dropped
	if total != 4096 {
		t.Fatalf("op accounting leaks: %d accounted of 4096\n%s", total, sc.Text())
	}
	if sc.WallSeconds > 25 {
		t.Fatalf("swarm overran its deadline: ran %.1fs", sc.WallSeconds)
	}
}
