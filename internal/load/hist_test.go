package load

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds pins the bucket geometry: every value maps into a
// bucket whose [lo, hi] range contains it, indexes are monotone in the value,
// and the relative bucket width never exceeds 1/subCount.
func TestBucketIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prevIdx := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 65, 1023, 1024, 1 << 20, 1 << 40, 1<<62 + 12345} {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d range [%d, %d]", v, idx, lo, hi)
		}
		if idx < prevIdx {
			t.Fatalf("bucket index not monotone at value %d", v)
		}
		prevIdx = idx
		if lo >= subCount {
			if width := hi - lo + 1; float64(width)/float64(lo) > 1.0/subCount+1e-12 {
				t.Fatalf("bucket %d width %d exceeds %d/subCount relative bound (lo=%d)", idx, width, lo, lo)
			}
		}
	}
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63())
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("random value %d outside bucket %d range [%d, %d]", v, idx, lo, hi)
		}
	}
}

// TestQuantileAgainstSortedOracle is the histogram correctness property: on
// randomized inputs spanning six orders of magnitude, every reported
// percentile must land within one bucket's relative error (1/subCount, plus
// the half-bucket midpoint rounding) of the exact sorted-sample oracle.
func TestQuantileAgainstSortedOracle(t *testing.T) {
	quantiles := []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 100 + rng.Intn(20000)
		h := &Histogram{}
		vals := make([]uint64, n)
		for i := range vals {
			// Mix scales: sub-microsecond through minutes, in nanoseconds.
			v := uint64(rng.Int63n(int64(1) << uint(10+rng.Intn(26))))
			vals[i] = v
			h.Record(time.Duration(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if h.Count() != uint64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, h.Count(), n)
		}
		if h.Max() != vals[n-1] || h.Min() != vals[0] {
			t.Fatalf("trial %d: min/max (%d,%d), want (%d,%d)", trial, h.Min(), h.Max(), vals[0], vals[n-1])
		}
		for _, q := range quantiles {
			rank := int(float64(n)*q+0.9999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			exact := float64(vals[rank])
			got := float64(h.Quantile(q))
			// The quantile's sample sits in some bucket; the midpoint answer
			// can miss the exact value by at most the bucket width, which is
			// bounded by exact/subCount (and 0 below subCount).
			tol := exact/subCount + 1
			if got < exact-tol || got > exact+tol {
				t.Fatalf("trial %d: q%.3f = %g, oracle %g (tol %g, n=%d)", trial, q, got, exact, tol, n)
			}
		}
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// while a reader keeps taking percentile snapshots; run under -race this pins
// the lock-free recording contract, and afterwards the total count and the
// percentile ladder must be exact and ordered.
func TestHistogramConcurrentRecord(t *testing.T) {
	const goroutines = 16
	const perG = 20000
	h := &Histogram{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
				_ = h.Stats()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(rng.Int63n(1 << 30)))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()

	if h.Count() != goroutines*perG {
		t.Fatalf("count %d, want %d", h.Count(), goroutines*perG)
	}
	st := h.Stats()
	if !st.Ordered() {
		t.Fatalf("percentiles disordered after concurrent recording: %+v", st)
	}
	if st.Max == 0 || st.P50 <= 0 {
		t.Fatalf("implausible stats after %d records: %+v", goroutines*perG, st)
	}
}
