package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SwarmOpts shapes the client pool consuming a Schedule.
type SwarmOpts struct {
	// Clients is the number of concurrent submit+poll goroutines.
	Clients int `json:"clients"`
	// PollEvery is each client's pause between progress polls on its
	// in-flight query.
	PollEvery time.Duration `json:"poll_every_ns"`
	// Duration caps the run in wall time; 0 runs until the schedule drains.
	Duration time.Duration `json:"duration_ns"`
	// MaxETASamples caps per-query ETA observations so very long queries
	// don't dominate the accuracy pool (0 = 64).
	MaxETASamples int `json:"max_eta_samples,omitempty"`
	// Sessions adds a per-client session affinity key to each submission.
	// Only the cluster front door knows the field — the single-engine
	// service's strict request parsing rejects it — so enable it exactly
	// when the target is a cluster.
	Sessions bool `json:"sessions,omitempty"`
}

func (o SwarmOpts) withDefaults() SwarmOpts {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 5 * time.Millisecond
	}
	if o.MaxETASamples <= 0 {
		o.MaxETASamples = 64
	}
	return o
}

// pollView is the slice of a /queries/{id} response the swarm reads. The ETA
// fields are pointers because the service renders non-finite values as JSON
// null; Now is the virtual-time stamp the poll path carries so predicted
// finishes can be audited against actual ones.
type pollView struct {
	ID         int      `json:"id"`
	Status     string   `json:"status"`
	Now        float64  `json:"now"`
	Fraction   float64  `json:"fraction"`
	FinishTime float64  `json:"finish_time"`
	Multi      *float64 `json:"multi_query_eta"`
	Low        *float64 `json:"eta_low"`
	High       *float64 `json:"eta_high"`
}

func terminal(status string) bool {
	return status == "finished" || status == "aborted" || status == "failed"
}

// Run floods the target with the schedule: Clients goroutines claim ops by
// atomic index (never drawing randomness, so the schedule stays the
// generator's), submit them, and poll each query to completion while
// recording per-op latency and ETA accuracy. It returns the populated
// Recorder and the wall-clock seconds the swarm ran.
func Run(target *Target, sched *Schedule, opts SwarmOpts) (*Recorder, float64) {
	opts = opts.withDefaults()
	rec := &Recorder{}
	var next atomic.Int64
	start := time.Now()
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}

	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			w := worker{target: target, rec: rec, opts: opts, session: fmt.Sprintf("c%d", client)}
			for {
				i := int(next.Add(1) - 1)
				if i >= len(sched.Ops) {
					return
				}
				op := sched.Ops[i]
				if !w.pace(start, deadline, op, sched.Open()) {
					// Deadline hit before this op could fire: put it back
					// conceptually by counting it dropped, and stop.
					rec.Dropped.Add(1)
					return
				}
				w.runOp(i, op, deadline)
			}
		}(c)
	}
	wg.Wait()

	// Ops never claimed by any client are dropped too.
	if claimed := next.Load(); int(claimed) < len(sched.Ops) {
		rec.Dropped.Add(uint64(len(sched.Ops) - int(claimed)))
	}
	return rec, time.Since(start).Seconds()
}

// worker is one client goroutine's state.
type worker struct {
	target  *Target
	rec     *Recorder
	opts    SwarmOpts
	session string
}

// pace blocks until the op may fire: until its absolute instant in open-loop
// mode, or through its think pause in closed-loop mode. It returns false if
// the deadline arrives first.
func (w *worker) pace(start, deadline time.Time, op Op, open bool) bool {
	var until time.Time
	if open {
		until = start.Add(time.Duration(op.At * float64(time.Second)))
	} else {
		until = time.Now().Add(time.Duration(op.Think * float64(time.Second)))
	}
	if !deadline.IsZero() && until.After(deadline) {
		return false
	}
	if d := time.Until(until); d > 0 {
		time.Sleep(d)
	}
	return !(!deadline.IsZero() && time.Now().After(deadline))
}

// runOp submits one query and polls it to a terminal state.
func (w *worker) runOp(i int, op Op, deadline time.Time) {
	payload := map[string]any{"sql": op.SQL(), "label": fmt.Sprintf("op-%d", i)}
	if w.opts.Sessions {
		payload["session"] = w.session
	}
	body, _ := json.Marshal(payload)
	t0 := time.Now()
	status, resp, err := w.do(http.MethodPost, "/queries", body)
	w.rec.Submit.Record(time.Since(t0))
	switch {
	case err != nil:
		w.rec.Errors.Add(1)
		return
	case status == http.StatusTooManyRequests:
		w.rec.Rejected.Add(1)
		return
	case status != http.StatusCreated:
		w.rec.Errors.Add(1)
		return
	}
	var created pollView
	if err := json.Unmarshal(resp, &created); err != nil || created.ID <= 0 {
		w.rec.Errors.Add(1)
		return
	}
	w.rec.Submitted.Add(1)

	path := fmt.Sprintf("/queries/%d", created.ID)
	var samples []etaSample
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			w.rec.Timeouts.Add(1)
			return
		}
		p0 := time.Now()
		status, resp, err := w.do(http.MethodGet, path, nil)
		w.rec.Poll.Record(time.Since(p0))
		w.rec.Polls.Add(1)
		if err != nil || status != http.StatusOK {
			w.rec.Errors.Add(1)
			return
		}
		var v pollView
		if err := json.Unmarshal(resp, &v); err != nil {
			w.rec.Errors.Add(1)
			return
		}
		if terminal(v.Status) {
			w.rec.E2E.Record(time.Since(t0))
			w.rec.Completed.Add(1)
			if v.Status == "finished" {
				w.rec.foldQuery(samples, v.FinishTime)
			}
			return
		}
		if v.Multi != nil && len(samples) < w.opts.MaxETASamples {
			s := etaSample{Now: v.Now, ETA: *v.Multi, Fraction: v.Fraction, Low: math.NaN(), High: math.NaN()}
			if v.Low != nil && v.High != nil {
				s.Low, s.High = *v.Low, *v.High
			}
			samples = append(samples, s)
		}
		time.Sleep(w.opts.PollEvery)
	}
}

// do issues one request and returns (status, body, error).
func (w *worker) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, w.target.BaseURL+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.target.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}
