package load

import (
	"strings"
	"testing"
	"time"
)

// healthyScorecard fabricates a recorder that passes every Check gate.
func healthyScorecard() Scorecard {
	rec := &Recorder{}
	for i := 1; i <= 10; i++ {
		d := time.Duration(i) * time.Millisecond
		rec.Submit.Record(d)
		rec.Poll.Record(d / 10)
		rec.E2E.Record(2 * d)
	}
	rec.Submitted.Store(10)
	rec.Polls.Store(10)
	rec.Completed.Store(10)
	return BuildScorecard("unit", GenConfig{Arrival: ArrivalClosed, Seed: 1}, SwarmOpts{Clients: 2}, nil, rec, 1.5)
}

// TestScorecardCheckGates walks every failure branch of the selfcheck: empty
// histograms, missing completions, transport errors, and out-of-range band
// coverage must each produce a distinct error, and the healthy card none.
func TestScorecardCheckGates(t *testing.T) {
	sc := healthyScorecard()
	if err := sc.Check(); err != nil {
		t.Fatalf("healthy scorecard rejected: %v", err)
	}

	empty := sc
	empty.Latency.Poll = LatencyStats{}
	if err := empty.Check(); err == nil || !strings.Contains(err.Error(), "poll histogram is empty") {
		t.Errorf("empty poll histogram: %v", err)
	}

	disordered := sc
	disordered.Latency.Submit.P50 = disordered.Latency.Submit.P99 * 2
	if err := disordered.Check(); err == nil || !strings.Contains(err.Error(), "disordered") {
		t.Errorf("disordered percentiles: %v", err)
	}

	none := sc
	none.Ops.Completed = 0
	if err := none.Check(); err == nil || !strings.Contains(err.Error(), "no query completed") {
		t.Errorf("zero completions: %v", err)
	}

	errs := sc
	errs.Ops.Errors = 3
	if err := errs.Check(); err == nil || !strings.Contains(err.Error(), "3 transport/status errors") {
		t.Errorf("transport errors: %v", err)
	}

	cov := sc
	cov.ETA.Coverage = 1.5
	if err := cov.Check(); err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Errorf("coverage out of range: %v", err)
	}
}

// TestScorecardText pins the human rendering: header, all three latency rows,
// the op-anomaly line (only when something went wrong), and the non-empty ETA
// curve rows.
func TestScorecardText(t *testing.T) {
	sc := healthyScorecard()
	sc.ETA = ETAAccuracy{
		Samples: 4, MeanAbsErr: 1, MeanRelErr: 0.1, Coverage: 0.5, Banded: 4,
		Curve: []ETAPoint{{FractionLo: 0, Samples: 4, MeanRelErr: 0.1, Coverage: 0.5}, {FractionLo: 0.1}},
	}
	out := sc.Text()
	for _, want := range []string{"== unit ==", "arrival=closed", "submit", "poll", "end-to-end", "progress 0-10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rejected(429)") {
		t.Errorf("anomaly line rendered with zero anomalies:\n%s", out)
	}
	if strings.Contains(out, "progress 10-20%") {
		t.Errorf("empty curve bucket rendered:\n%s", out)
	}

	sc.Ops.Timeouts = 2
	sc.Name = ""
	out = sc.Text()
	if !strings.Contains(out, "timeouts=2") {
		t.Errorf("anomaly line missing:\n%s", out)
	}
	if strings.Contains(out, "==") {
		t.Errorf("nameless scorecard rendered a header:\n%s", out)
	}
}

// TestHistogramEmptyAndEdges covers the empty-histogram accessors and the
// Quantile clamping that the swarm paths never hit.
func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram not all-zero: min=%d max=%d mean=%g q50=%d", h.Min(), h.Max(), h.Mean(), h.Quantile(0.5))
	}
	if st := h.Stats(); st.Count != 0 || st.Ordered() {
		t.Fatalf("empty stats: %+v", st)
	}

	h.Record(5 * time.Microsecond)
	h.Record(7 * time.Microsecond)
	if h.Min() != 5000 || h.Max() != 7000 {
		t.Fatalf("min/max = %d/%d, want 5000/7000", h.Min(), h.Max())
	}
	if m := h.Mean(); m != 6000 {
		t.Fatalf("mean = %g, want 6000", m)
	}
	// Out-of-range q clamps; q=0 still returns the first occupied bucket.
	if h.Quantile(-1) == 0 || h.Quantile(2) == 0 {
		t.Fatal("clamped quantiles returned zero on a populated histogram")
	}
	// Negative durations clamp to zero, not to huge unsigned values.
	h.Record(-time.Second)
	if h.Count() != 3 || h.Min() != 0 {
		t.Fatalf("negative duration mishandled: count=%d min=%d", h.Count(), h.Min())
	}
}

// TestNewURLTarget covers the external-target constructor: trailing slashes
// are trimmed and the transport is sized to the client pool.
func TestNewURLTarget(t *testing.T) {
	target := NewURLTarget("http://localhost:8080/", 128)
	if target.BaseURL != "http://localhost:8080" {
		t.Fatalf("base URL = %q", target.BaseURL)
	}
	if target.Client == nil || target.Client.Transport == nil {
		t.Fatal("no transport configured")
	}
}
