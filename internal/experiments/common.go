// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment builds the TPC-R-style dataset,
// runs real SQL queries through the engine under the virtual-time
// multi-query scheduler, attaches the competing progress indicators, and
// reports the same series the paper plots. cmd/mqpi-bench and the top-level
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"mqpi/internal/core"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// buildPartQuery creates part_idx with the given N, plans the paper's query
// Q_idx over it, and wraps it as a scheduler query. Result rows are
// discarded (the experiments only account work).
func buildPartQuery(ds *workload.Dataset, srv *sched.Server, idx, n, priority int) (*sched.Query, error) {
	return buildPartQueryTmpl(ds, srv, idx, n, priority, workload.TemplateRetail)
}

// buildPartQueryTmpl is buildPartQuery with an explicit query template, for
// the mixed-workload experiments that check the paper's "other kinds of
// queries" claim.
func buildPartQueryTmpl(ds *workload.Dataset, srv *sched.Server, idx, n, priority int, tmpl workload.QueryTemplate) (*sched.Query, error) {
	if err := ds.CreatePartTable(idx, n); err != nil {
		return nil, err
	}
	sqlText := workload.QuerySQLVariant(idx, tmpl)
	runner, err := ds.DB.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	runner.CollectRows = false
	q := srv.NewQuery(fmt.Sprintf("Q%d(N=%d,%s)", idx, n, tmpl), sqlText, priority, runner)
	return q, nil
}

// prework advances a query to a random point of its execution before time 0,
// as the MCQ and SCQ experiments require ("each query was at a random point
// of its execution"). The fraction is uniform in [0, maxFrac).
//
// The budget is frac × EstCost(), an optimizer estimate. If the optimizer
// overestimates (stale statistics, say), that budget can run the query to
// completion before the experiment even starts — and the completed run has
// revealed the true cost, so the query is re-prepared and advanced by
// frac × trueCost instead. A query that completes even on its true cost is an
// error: the experiment would be measuring nothing.
func prework(ds *workload.Dataset, q *sched.Query, rng *rand.Rand, maxFrac float64) error {
	frac := rng.Float64() * maxFrac
	budget := frac * q.Runner.Plan().EstCost()
	if budget <= 0 {
		return nil
	}
	if _, _, err := q.Runner.Step(budget); err != nil {
		return err
	}
	if !q.Runner.Done() {
		return nil
	}
	// Overestimated: the finished runner's work done is the true cost.
	trueCost := q.Runner.WorkDone()
	fresh, err := ds.DB.Prepare(q.SQL)
	if err != nil {
		return fmt.Errorf("experiments: re-preparing %q after prework overrun: %w", q.Label, err)
	}
	fresh.CollectRows = q.Runner.CollectRows
	q.Runner = fresh
	if budget = frac * trueCost; budget <= 0 {
		return nil
	}
	if _, _, err := q.Runner.Step(budget); err != nil {
		return err
	}
	if q.Runner.Done() {
		return fmt.Errorf("experiments: prework completed %q even at fraction %.3f of its true cost %.1f U", q.Label, frac, trueCost)
	}
	return nil
}

// fairShare is the instantaneous model speed C×w/W for a query — the
// fallback the single-query PI uses before it has observed any speed
// samples.
func fairShare(srv *sched.Server, q *sched.Query) float64 {
	W := 0.0
	for _, r := range srv.Running() {
		if r.Status == sched.StatusRunning {
			W += srv.WeightOf(r.Priority)
		}
	}
	if W <= 0 {
		return 0
	}
	return srv.RateC() * srv.WeightOf(q.Priority) / W
}

// singleEstimate is the single-query PI's remaining-time estimate t = c/s
// for one query: refined remaining cost over currently observed speed.
func singleEstimate(srv *sched.Server, q *sched.Query) float64 {
	s := q.ObservedSpeed()
	if s <= 0 {
		s = fairShare(srv, q)
	}
	return core.SingleQueryRemainingTime(q.Runner.EstRemaining(), s)
}

// incrementalShadow, when non-nil, receives every §2.2 closed-form input the
// sweeps evaluate (states plus rate C). The experiments test installs a
// differential checker that patches a run-long core.IncrementalProfile and
// demands bit-identity with the from-scratch profile, so the paper sweeps
// double as a corpus for the incremental stage structure. Sweeps may evaluate
// estimates from pool workers, so the hook is called under shadowMu.
var (
	shadowMu          sync.Mutex
	incrementalShadow func(states []core.QueryState, C float64)
)

func shadowCheck(states []core.QueryState, C float64) {
	shadowMu.Lock()
	if incrementalShadow != nil {
		incrementalShadow(states, C)
	}
	shadowMu.Unlock()
}

// stageEstimates is the §2.2 closed form over explicit states, mirrored
// through the incremental shadow checker when one is installed. Every sweep's
// no-queue/no-arrival estimate goes through here.
func stageEstimates(states []core.QueryState, C float64) map[int]float64 {
	shadowCheck(states, C)
	return core.MultiQueryRemainingTimes(states, C)
}

// multiEstimates is the multi-query PI of §2.2 over the server's current
// running set.
func multiEstimates(srv *sched.Server) map[int]float64 {
	return stageEstimates(srv.StateRunning(), srv.RateC())
}

// runSampled ticks the server, invoking sample at time 0 and then every
// `every` virtual seconds, until stop returns true or the server idles.
// A final sample is taken when the loop exits.
func runSampled(srv *sched.Server, every float64, sample func(), stop func() bool) {
	next := srv.Now()
	for srv.Busy() && !stop() {
		if srv.Now()+1e-9 >= next {
			sample()
			next += every
		}
		srv.Tick()
	}
	sample()
}

// CostModel is a linear fit cost(N) ≈ Intercept + Slope×N of the optimizer
// cost of Q_i as a function of the part-table size parameter N. The SCQ
// experiments use it to give the multi-query PI the "exact average cost c̄"
// of future queries.
type CostModel struct {
	Intercept float64
	Slope     float64
}

// Cost evaluates the model.
func (m CostModel) Cost(n float64) float64 { return m.Intercept + m.Slope*n }

// fitCostModel plans Q over two scratch part tables and fits the line.
func fitCostModel(ds *workload.Dataset) (CostModel, error) {
	const (
		scratchIdx = 999983 // unlikely to collide with experiment tables
		nLo, nHi   = 1, 16
	)
	costAt := func(n int) (float64, error) {
		if err := ds.CreatePartTable(scratchIdx, n); err != nil {
			return 0, err
		}
		defer ds.DropPartTable(scratchIdx)
		p, err := ds.DB.Plan(workload.QuerySQL(scratchIdx))
		if err != nil {
			return 0, err
		}
		return p.EstCost(), nil
	}
	lo, err := costAt(nLo)
	if err != nil {
		return CostModel{}, err
	}
	hi, err := costAt(nHi)
	if err != nil {
		return CostModel{}, err
	}
	slope := (hi - lo) / float64(nHi-nLo)
	return CostModel{Intercept: lo - slope*nLo, Slope: slope}, nil
}
