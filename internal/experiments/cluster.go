package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mqpi/internal/cluster"
	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/workload"
)

// ClusterSweepConfig configures the serving-tier experiment: a heavy mixed
// Zipf workload (query costs drawn from a Zipf over geometrically sized
// tables, staggered arrivals, session churn) replayed against every shard
// count × routing policy cell. Two questions: how does throughput scale with
// shards under each placement policy, and what does sharding do to the
// quality of the time-0 multi-query ETA (each shard only models its own
// queries, so bad placement shows up as estimate error, not just latency).
type ClusterSweepConfig struct {
	Seed       int64
	Runs       int      // per cell; default 3
	NumQueries int      // per run; default 24
	Shards     []int    // default 1, 2, 4, 8
	Policies   []string // default all three routing policies
	ZipfA      float64  // table-size skew; default 1.1
	RateC      float64  // per-shard processing rate; default 10
	Quantum    float64  // default 0.5
	MPL        int      // per-shard admission limit; default 3
	Workers    int      // per-shard execute workers; results identical at any setting
	// Parallel caps worker goroutines across independent cells (0 =
	// GOMAXPROCS, 1 = sequential). Output is identical at every setting.
	Parallel int
}

func (c ClusterSweepConfig) withDefaults() ClusterSweepConfig {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 24
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if len(c.Policies) == 0 {
		c.Policies = cluster.RoutingPolicies()
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.1
	}
	if c.RateC <= 0 {
		c.RateC = 10
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.MPL <= 0 {
		c.MPL = 3
	}
	return c
}

// ClusterSweepResult carries the two figures: throughput vs shard count and
// mean time-0 ETA error vs shard count, one series per routing policy.
type ClusterSweepResult struct {
	FigThroughput metrics.Figure
	FigETA        metrics.Figure
}

// clusterTables is the size ladder: table zK holds 64·2^K rows, so a Zipf
// sample over table indexes yields a heavy-tailed cost mix (most queries
// small, a few 32× larger).
const clusterTables = 6

// clusterSweepDB builds one shard's replica: the ladder tables, identical on
// every shard because the builder reseeds its own rng per call.
func clusterSweepDB(seed int64) (*engine.DB, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x7ab1e))
	db := engine.Open()
	for k := 0; k < clusterTables; k++ {
		name := fmt.Sprintf("z%d", k)
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (a BIGINT, v DOUBLE)", name)); err != nil {
			return nil, err
		}
		cat := db.Catalog()
		for i := 0; i < 64<<k; i++ {
			if err := cat.Insert(name, types.Row{
				types.NewInt(int64(i % 101)), types.NewFloat(rng.Float64() * 100),
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	return db, nil
}

// RunClusterSweep replays the workload for every (policy, shards, run) cell
// and aggregates throughput (finished queries per virtual second of
// makespan) and the mean relative error of each query's time-0 multi-query
// ETA against its actual response time.
func RunClusterSweep(cfg ClusterSweepConfig) (*ClusterSweepResult, error) {
	cfg = cfg.withDefaults()
	zipf, err := workload.NewZipf(cfg.ZipfA, clusterTables)
	if err != nil {
		return nil, err
	}
	res := &ClusterSweepResult{
		FigThroughput: metrics.Figure{
			Title:  "Serving tier: throughput vs shard count per routing policy",
			XLabel: "shards",
			YLabel: "queries per virtual second",
		},
		FigETA: metrics.Figure{
			Title:  "Serving tier: mean time-0 multi-query ETA error vs shard count",
			XLabel: "shards",
			YLabel: "relative error (fraction)",
		},
	}

	type cell struct {
		throughput float64
		errs       []float64
	}
	nCells := len(cfg.Policies) * len(cfg.Shards) * cfg.Runs
	cells, err := runIndexed(cfg.Parallel, nCells, func(j int) (cell, error) {
		pi := j / (len(cfg.Shards) * cfg.Runs)
		si := (j / cfg.Runs) % len(cfg.Shards)
		r := j % cfg.Runs
		policy, shards := cfg.Policies[pi], cfg.Shards[si]
		off := int64(pi)*104729 + int64(si)*6977 + int64(r)*7919
		dbSeed := datasetSeed(cfg.Seed, off)
		rng := rand.New(rand.NewSource(cfg.Seed + off))

		var dbErr error
		c, err := cluster.New(cluster.Config{
			Shards:  shards,
			Routing: policy,
			Service: service.Config{
				Sched: sched.Config{
					RateC: cfg.RateC, MPL: cfg.MPL, Quantum: cfg.Quantum, Workers: cfg.Workers,
				},
				TickEvery: -1,
			},
			OpenDB: func() *engine.DB {
				db, err := clusterSweepDB(dbSeed)
				if err != nil {
					dbErr = err
					return engine.Open()
				}
				return db
			},
		})
		if err != nil {
			return cell{}, err
		}
		defer c.Close()
		if dbErr != nil {
			return cell{}, dbErr
		}

		// Staggered Zipf workload: heavy mix of table sizes, sessions from a
		// small pool so affinity has real collisions, a short random gap
		// before each arrival.
		eta0 := make(map[int]float64, cfg.NumQueries)
		clock := 0.0
		for i := 0; i < cfg.NumQueries; i++ {
			gap := cfg.Quantum * float64(rng.Intn(3))
			if gap > 0 {
				if err := c.Advance(gap); err != nil {
					return cell{}, err
				}
				clock += gap
			}
			table := zipf.Sample(rng) - 1
			view, err := c.Submit(cluster.SubmitRequest{
				SubmitRequest: service.SubmitRequest{
					Label:    fmt.Sprintf("q%d", i+1),
					SQL:      fmt.Sprintf("select sum(v) from z%d", table),
					Priority: rng.Intn(3),
				},
				Session: fmt.Sprintf("session-%d", rng.Intn(4)),
			})
			if err != nil {
				return cell{}, err
			}
			if eta := float64(view.MultiETA); !math.IsNaN(eta) && !math.IsInf(eta, 0) && eta > 0 {
				eta0[view.ID] = eta
			}
		}

		// Drain to quiescence; the makespan is the virtual time consumed.
		for i := 0; i < 10000; i++ {
			ov, err := c.Overview()
			if err != nil {
				return cell{}, err
			}
			done := len(ov.Running) == 0 && len(ov.Queued) == 0 && len(ov.Scheduled) == 0
			if done {
				break
			}
			if err := c.Advance(cfg.Quantum); err != nil {
				return cell{}, err
			}
			clock += cfg.Quantum
		}

		ov, err := c.Overview()
		if err != nil {
			return cell{}, err
		}
		if len(ov.Finished) != cfg.NumQueries {
			return cell{}, fmt.Errorf("experiments: cluster cell %s/%d finished %d of %d queries",
				policy, shards, len(ov.Finished), cfg.NumQueries)
		}
		out := cell{throughput: float64(cfg.NumQueries) / clock}
		for _, v := range ov.Finished {
			if v.Status != "finished" {
				return cell{}, fmt.Errorf("experiments: query %d ended %s: %s", v.ID, v.Status, v.Err)
			}
			// Both timestamps are in the owning shard's virtual clock (which
			// freezes while that shard idles), so the response time is
			// consistent with the shard-local ETA taken at submission.
			if eta, ok := eta0[v.ID]; ok {
				if actual := v.FinishTime - v.SubmitTime; actual > 0 {
					out.errs = append(out.errs, metrics.RelErr(eta, actual))
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	for pi, policy := range cfg.Policies {
		sT := res.FigThroughput.AddSeries(policy)
		sE := res.FigETA.AddSeries(policy)
		for si, shards := range cfg.Shards {
			var tps, errs []float64
			for r := 0; r < cfg.Runs; r++ {
				c := cells[pi*len(cfg.Shards)*cfg.Runs+si*cfg.Runs+r]
				tps = append(tps, c.throughput)
				errs = append(errs, c.errs...)
			}
			sT.Add(float64(shards), metrics.Mean(tps))
			sE.Add(float64(shards), metrics.Mean(errs))
		}
	}
	return res, nil
}
