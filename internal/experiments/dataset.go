package experiments

import (
	"fmt"
	"strings"

	"mqpi/internal/workload"
)

// DatasetConfig configures the Table 1 reproduction.
type DatasetConfig struct {
	Seed int64
	// PartSizes lists the N_i of part tables to materialize alongside
	// lineitem (defaults to the NAQ sizes 50, 10, 20).
	PartSizes []int
	Data      workload.DataConfig
}

// DatasetRow is one row of Table 1.
type DatasetRow struct {
	Relation string
	Tuples   int
	Pages    int
	AvgMatch float64 // average lineitem matches per part tuple (parts only)
}

// DatasetResult is the reproduced Table 1 (tuple counts and on-"disk" pages
// instead of the paper's gigabytes, since pages are the engine's size unit).
type DatasetResult struct {
	Rows       []DatasetRow
	MaxPartKey int64
}

// RunDataset builds the test data set and reports Table 1.
func RunDataset(cfg DatasetConfig) (*DatasetResult, error) {
	if len(cfg.PartSizes) == 0 {
		cfg.PartSizes = []int{50, 10, 20}
	}
	if cfg.Data.Seed == 0 {
		cfg.Data.Seed = cfg.Seed
	}
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	res := &DatasetResult{MaxPartKey: ds.MaxPartKey}
	cat := ds.DB.Catalog()
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, DatasetRow{
		Relation: "lineitem",
		Tuples:   li.Rel.NumRows(),
		Pages:    li.Rel.NumPages(),
	})
	for i, n := range cfg.PartSizes {
		idx := i + 1
		if err := ds.CreatePartTable(idx, n); err != nil {
			return nil, err
		}
		pt, err := cat.Table(workload.PartTableName(idx))
		if err != nil {
			return nil, err
		}
		// Average matches: count lineitem rows for each part key via the
		// index (this is also a sanity check on the ~30 matches the schema
		// promises).
		bt, ok := cat.IndexOn("lineitem", "partkey")
		if !ok {
			return nil, fmt.Errorf("experiments: lineitem.partkey index missing")
		}
		totalMatches := 0
		for p := 0; p < pt.Rel.NumPages(); p++ {
			for _, row := range pt.Rel.Page(p) {
				totalMatches += len(bt.SearchEq(row[0].Int()).RowIDs)
			}
		}
		avg := 0.0
		if pt.Rel.NumRows() > 0 {
			avg = float64(totalMatches) / float64(pt.Rel.NumRows())
		}
		res.Rows = append(res.Rows, DatasetRow{
			Relation: workload.PartTableName(idx),
			Tuples:   pt.Rel.NumRows(),
			Pages:    pt.Rel.NumPages(),
			AvgMatch: avg,
		})
	}
	return res, nil
}

// Render draws Table 1 as text.
func (r *DatasetResult) Render() string {
	var b strings.Builder
	b.WriteString("== Table 1: test data set ==\n")
	fmt.Fprintf(&b, "%-12s  %10s  %8s  %12s\n", "relation", "tuples", "pages", "avg matches")
	b.WriteString(strings.Repeat("-", 48))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		match := "-"
		if row.AvgMatch > 0 {
			match = fmt.Sprintf("%.1f", row.AvgMatch)
		}
		fmt.Fprintf(&b, "%-12s  %10d  %8d  %12s\n", row.Relation, row.Tuples, row.Pages, match)
	}
	fmt.Fprintf(&b, "(max partkey: %d)\n", r.MaxPartKey)
	return b.String()
}
