package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// PriorityConfig configures the weighted-priorities extension experiment.
// The paper's Assumption 3 (speed proportional to priority weight) could not
// be evaluated in its PostgreSQL prototype ("PostgreSQL does not support
// priorities for queries"); this substrate implements the weight table
// directly, so the weighted stage model can be validated end-to-end.
type PriorityConfig struct {
	Seed        int64
	Runs        int     // independent workloads to average; default 1
	PerClass    int     // queries per priority class; default 4
	LowWeight   float64 // default 1
	HighWeight  float64 // default 3
	MaxN        int     // default 40
	ZipfA       float64 // default 1.2
	RateC       float64 // default 150
	Quantum     float64 // default 0.5
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	SampleEvery float64 // default 5
	Data        workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c PriorityConfig) withDefaults() PriorityConfig {
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.PerClass <= 0 {
		c.PerClass = 4
	}
	if c.LowWeight <= 0 {
		c.LowWeight = 1
	}
	if c.HighWeight <= 0 {
		c.HighWeight = 3
	}
	if c.MaxN <= 0 {
		c.MaxN = 40
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.2
	}
	if c.RateC <= 0 {
		c.RateC = 150
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// PriorityResult summarizes the weighted-priorities experiment.
type PriorityResult struct {
	// SpeedRatio is the measured high/low execution-speed ratio for two
	// same-sized probe queries (Assumption 3 predicts HighWeight/LowWeight).
	SpeedRatio float64
	// ErrT0Single and ErrT0Multi are mean relative errors of the time-0
	// remaining-time estimates across all queries.
	ErrT0Single float64
	ErrT0Multi  float64
	// Fig: per-query time-0 estimates vs actual (x = query ID).
	Fig metrics.Figure
}

// RunPriority runs mixed-priority workloads: PerClass queries at low
// priority and PerClass at high priority, plus one same-sized probe pair to
// measure the speed ratio. It reports how well the weighted stage model
// predicts remaining times compared with the single-query PI. With Runs > 1
// the scalar metrics are averaged over independent workloads (fanned across
// the pool); the figure always shows run 0, whose workload is identical to
// the Runs == 1 output.
func RunPriority(cfg PriorityConfig) (*PriorityResult, error) {
	cfg = cfg.withDefaults()
	results, err := runIndexed(cfg.Parallel, cfg.Runs, func(r int) (*PriorityResult, error) {
		// Run 0 keeps the historical single-run behaviour exactly: the base
		// dataset (generator rng stream) and the original rng seed.
		var ds *workload.Dataset
		var err error
		rngSeed := cfg.Seed ^ 0x9E3779B9
		if r == 0 {
			ds, err = workload.BuildDataset(cfg.Data)
		} else {
			ds, err = workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, int64(r)*48611))
			rngSeed = (cfg.Seed + int64(r)*48611) ^ 0x9E3779B9
		}
		if err != nil {
			return nil, err
		}
		return runPriorityOnce(ds, cfg, rngSeed)
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	if cfg.Runs > 1 {
		ratios := make([]float64, 0, cfg.Runs)
		errS := make([]float64, 0, cfg.Runs)
		errM := make([]float64, 0, cfg.Runs)
		for _, r := range results {
			ratios = append(ratios, r.SpeedRatio)
			errS = append(errS, r.ErrT0Single)
			errM = append(errM, r.ErrT0Multi)
		}
		res.SpeedRatio = metrics.Mean(ratios)
		res.ErrT0Single = metrics.Mean(errS)
		res.ErrT0Multi = metrics.Mean(errM)
	}
	return res, nil
}

// runPriorityOnce executes one mixed-priority workload on its own dataset.
func runPriorityOnce(ds *workload.Dataset, cfg PriorityConfig, rngSeed int64) (*PriorityResult, error) {
	rng := rand.New(rand.NewSource(rngSeed))
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	const (
		lowPri  = 1
		highPri = 2
	)
	srv := sched.New(sched.Config{
		RateC:   cfg.RateC,
		Quantum: cfg.Quantum,
		Workers: cfg.Workers,
		Weights: map[int]float64{lowPri: cfg.LowWeight, highPri: cfg.HighWeight},
	})
	defer srv.Close()

	var queries []*sched.Query
	idx := 1
	addQuery := func(n, pri int, preworkFrac float64) (*sched.Query, error) {
		q, err := buildPartQuery(ds, srv, idx, n, pri)
		if err != nil {
			return nil, err
		}
		idx++
		if preworkFrac > 0 {
			if _, _, err := q.Runner.Step(preworkFrac * q.Runner.Plan().EstCost()); err != nil {
				return nil, err
			}
		}
		queries = append(queries, q)
		return q, nil
	}
	for i := 0; i < cfg.PerClass; i++ {
		if _, err := addQuery(zipf.Sample(rng), lowPri, rng.Float64()*0.8); err != nil {
			return nil, err
		}
		if _, err := addQuery(zipf.Sample(rng), highPri, rng.Float64()*0.8); err != nil {
			return nil, err
		}
	}
	// The probe pair: identical size, no prework, different priority.
	probeN := cfg.MaxN / 2
	probeLow, err := addQuery(probeN, lowPri, 0)
	if err != nil {
		return nil, err
	}
	probeHigh, err := addQuery(probeN, highPri, 0)
	if err != nil {
		return nil, err
	}
	for _, q := range queries {
		srv.Submit(q)
	}

	// Time-0 estimates.
	states := srv.StateRunning()
	multi := stageEstimates(states, cfg.RateC)
	single := make(map[int]float64, len(queries))
	for _, q := range queries {
		single[q.ID] = singleEstimate(srv, q)
	}

	// Measure the probes' speeds over an early window, while both classes
	// are saturated; cumulative work over elapsed time avoids the speed
	// tracker's window quantization.
	measure := 120 * cfg.Quantum
	srv.RunUntil(measure)
	speedLow := probeLow.Runner.WorkDone() / srv.Now()
	speedHigh := probeHigh.Runner.WorkDone() / srv.Now()
	srv.RunUntilIdle(1e9)

	res := &PriorityResult{
		Fig: metrics.Figure{
			Title:  "Extension: weighted priorities — time-0 estimates vs actual",
			XLabel: "query id",
			YLabel: "remaining time (s)",
		},
	}
	if speedLow > 0 {
		res.SpeedRatio = speedHigh / speedLow
	}
	actualS := res.Fig.AddSeries("actual")
	singleS := res.Fig.AddSeries("single-query estimate")
	multiS := res.Fig.AddSeries("multi-query estimate")
	var errS, errM []float64
	for _, q := range queries {
		if q.Status == sched.StatusFailed {
			return nil, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
		}
		actual := q.FinishTime
		actualS.Add(float64(q.ID), actual)
		singleS.Add(float64(q.ID), single[q.ID])
		multiS.Add(float64(q.ID), multi[q.ID])
		errS = append(errS, metrics.RelErr(single[q.ID], actual))
		errM = append(errM, metrics.RelErr(multi[q.ID], actual))
	}
	res.ErrT0Single = metrics.Mean(errS)
	res.ErrT0Multi = metrics.Mean(errM)
	return res, nil
}
