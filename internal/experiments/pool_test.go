package experiments

import (
	"errors"
	"fmt"
	"testing"
)

// TestRunIndexedOrder: results land at their own index for every parallelism
// level, matching the sequential baseline exactly.
func TestRunIndexedOrder(t *testing.T) {
	job := func(i int) (string, error) { return fmt.Sprintf("job-%d", i*i), nil }
	want, err := runIndexed(1, 17, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 3, 8, 64} {
		got, err := runIndexed(p, 17, job)
		if err != nil {
			t.Fatalf("parallel=%d: %v", p, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d: index %d got %q want %q", p, i, got[i], want[i])
			}
		}
	}
}

// TestRunIndexedError: a failing job surfaces its error; the lowest failing
// index wins so the reported error does not depend on scheduling.
func TestRunIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, p := range []int{1, 4} {
		_, err := runIndexed(p, 20, func(i int) (int, error) {
			if i == 3 || i == 11 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("parallel=%d: want boom, got %v", p, err)
		}
		if p == 1 && err.Error() != "job 3: boom" {
			t.Fatalf("sequential pool should fail at first bad index, got %v", err)
		}
	}
}

// TestRunIndexedEmpty: n == 0 is a no-op.
func TestRunIndexedEmpty(t *testing.T) {
	out, err := runIndexed(4, 0, func(i int) (int, error) { t.Fatal("job ran"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}
