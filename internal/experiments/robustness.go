package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// RobustnessConfig configures the Assumption 1 violation experiment (§4.1).
// The real server's total rate varies with the number of runnable queries —
// Contention > 0 models thrashing (more queries, less total throughput),
// Contention < 0 models under-utilization at low concurrency — while both
// PIs keep assuming the constant nominal rate C. The paper argues the
// multi-query PI "is still likely to be superior" when the assumption
// breaks; this experiment measures it.
type RobustnessConfig struct {
	Seed       int64
	Runs       int     // default 8
	NumQueries int     // default 10
	MaxN       int     // default 40
	ZipfA      float64 // default 1.2
	RateC      float64 // nominal C; default 150
	Quantum    float64 // default 0.5
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	// Contention is the per-extra-query throughput penalty: with n runnable
	// queries the actual rate is C × (1 − Contention × (n−1)/n). Default 0.3
	// (30% total slowdown at high concurrency).
	Contention float64
	Data       workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c RobustnessConfig) withDefaults() RobustnessConfig {
	if c.Runs <= 0 {
		c.Runs = 8
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 10
	}
	if c.MaxN <= 0 {
		c.MaxN = 40
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.2
	}
	if c.RateC <= 0 {
		c.RateC = 150
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.Contention == 0 {
		c.Contention = 0.3
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// RobustnessResult reports mean time-0 estimate errors under the violated
// assumption.
type RobustnessResult struct {
	ErrSingle float64
	ErrMulti  float64
	// Fig compares the two estimators' mean error across runs (x = run).
	Fig metrics.Figure
}

// RunRobustness measures both PIs' time-0 estimate errors over Runs
// workloads executed on a server whose true rate deviates from the assumed
// constant C.
func RunRobustness(cfg RobustnessConfig) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{
		Fig: metrics.Figure{
			Title:  fmt.Sprintf("Extension: Assumption 1 violated (contention=%.2f) — mean time-0 error per run", cfg.Contention),
			XLabel: "run",
			YLabel: "relative error (fraction)",
		},
	}
	singleSeries := res.Fig.AddSeries("single-query estimate")
	multiSeries := res.Fig.AddSeries("multi-query estimate")
	var allS, allM []float64

	// One pool job per run on a private dataset; per-run means are folded
	// into the figure and the overall averages in run order afterwards.
	type robCell struct{ ms, mm float64 }
	cells, err := runIndexed(cfg.Parallel, cfg.Runs, func(r int) (robCell, error) {
		off := 31337 + int64(r)*104729
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off))
		if err != nil {
			return robCell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		rateFunc := func(runnable int) float64 {
			if runnable < 1 {
				runnable = 1
			}
			return cfg.RateC * (1 - cfg.Contention*float64(runnable-1)/float64(runnable))
		}
		srv := sched.New(sched.Config{RateC: cfg.RateC, RateFunc: rateFunc, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
		var queries []*sched.Query
		for i := 1; i <= cfg.NumQueries; i++ {
			q, err := buildPartQuery(dsRun, srv, i, zipf.Sample(rng), 0)
			if err != nil {
				return robCell{}, err
			}
			if err := prework(dsRun, q, rng, 0.9); err != nil {
				return robCell{}, err
			}
			queries = append(queries, q)
			srv.Submit(q)
		}
		single := make(map[int]float64, len(queries))
		for _, q := range queries {
			single[q.ID] = singleEstimate(srv, q)
		}
		multi := multiEstimates(srv)
		srv.RunUntilIdle(1e9)

		var sErrs, mErrs []float64
		for _, q := range queries {
			if q.Status == sched.StatusFailed {
				return robCell{}, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
			}
			sErrs = append(sErrs, metrics.RelErr(single[q.ID], q.FinishTime))
			mErrs = append(mErrs, metrics.RelErr(multi[q.ID], q.FinishTime))
		}
		return robCell{ms: metrics.Mean(sErrs), mm: metrics.Mean(mErrs)}, nil
	})
	if err != nil {
		return nil, err
	}
	for r, cell := range cells {
		singleSeries.Add(float64(r+1), cell.ms)
		multiSeries.Add(float64(r+1), cell.mm)
		allS = append(allS, cell.ms)
		allM = append(allM, cell.mm)
	}
	res.ErrSingle = metrics.Mean(allS)
	res.ErrMulti = metrics.Mean(allM)
	return res, nil
}
