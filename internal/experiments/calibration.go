package experiments

import (
	"fmt"
	"math"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/workload"
)

// CalibrationConfig configures the estimator-band calibration sweep: seven
// scenarios shaped like the paper's evaluation settings (concurrent batch,
// queued admission, staggered arrivals, weighted priorities, a blocked
// query), each driven through a full service.Manager running the ensemble
// estimate plane on a manual clock. At a fixed cadence the sweep records
// every live query's reported uncertainty interval [now+eta_low, now+eta_high]
// and, once the workload drains, scores each interval against the query's
// true finish time. Coverage is the fraction of intervals that contained it —
// the number a band is FOR; a well-calibrated default band must keep it high
// without ballooning the interval width.
type CalibrationConfig struct {
	Seed    int64
	RateC   float64 // default 100
	Quantum float64 // default 0.5
	// SampleEvery is the virtual-time cadence of band observations (default 5).
	SampleEvery float64
	// Estimator is the estimate plane under test (default ensemble; stage
	// would trivially score its degenerate bands).
	Estimator string
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	Data    workload.DataConfig

	// Parallel caps the worker goroutines running independent scenarios:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c CalibrationConfig) withDefaults() CalibrationConfig {
	if c.RateC <= 0 {
		c.RateC = 100
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5
	}
	if c.Estimator == "" {
		c.Estimator = core.EstimatorEnsemble
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// CalibrationScenario is one scenario's coverage scorecard.
type CalibrationScenario struct {
	Name     string
	Samples  int     // scored intervals (finite-band observations of finishers)
	Within   int     // intervals that contained the true finish time
	Coverage float64 // Within / Samples
}

// CalibrationResult aggregates band coverage across the scenario battery.
type CalibrationResult struct {
	Scenarios []CalibrationScenario
	Samples   int
	Within    int
	Coverage  float64 // pooled over all scenarios
	// Fig plots per-scenario coverage (x = scenario index, in battery order).
	Fig metrics.Figure
}

type calSubmit struct {
	n        int     // part-table size parameter N of the paper query
	priority int     // 0 low / 1 medium / 2 high (weights 1/2/4)
	delay    float64 // virtual seconds before the query enters the system
}

type calAction struct {
	at     float64
	kind   string // "block" | "unblock"
	target int    // submission index the action aims at
}

type calScenario struct {
	name    string
	mpl     int
	submits []calSubmit
	actions []calAction
}

// calScenarios is the battery: one scenario per evaluation regime the paper
// sweeps, at sizes small enough that the whole battery stays a smoke-testable
// few virtual minutes.
func calScenarios() []calScenario {
	return []calScenario{
		// MCQ: a concurrent batch of unequal queries, no queue.
		{name: "mcq", submits: []calSubmit{{n: 8}, {n: 16}, {n: 24}}},
		// NAQ: MPL 2 with a third query waiting in the admission queue.
		{name: "naq", mpl: 2, submits: []calSubmit{{n: 24}, {n: 6}, {n: 10}}},
		// SCQ: a deep FIFO backlog draining through two slots.
		{name: "scq", mpl: 2, submits: []calSubmit{{n: 10}, {n: 8}, {n: 12}, {n: 6}, {n: 9}, {n: 7}}},
		// Weighted priorities (Assumption 3): same sizes, different shares.
		{name: "priority", submits: []calSubmit{{n: 10, priority: 2}, {n: 10, priority: 1}, {n: 10}, {n: 12, priority: 1}}},
		// Staggered arrivals: later queries dilute the shares of earlier ones.
		{name: "arrivals", submits: []calSubmit{{n: 12}, {n: 10, delay: 15}, {n: 8, delay: 30}}},
		// MPL sweep regime: a wider batch over three slots.
		{name: "mpl", mpl: 3, submits: []calSubmit{{n: 6}, {n: 8}, {n: 10}, {n: 5}, {n: 7}, {n: 9}, {n: 6}, {n: 8}}},
		// Perturbation: a mid-run block/unblock invalidates earlier bands for
		// the victim and shifts everyone else's shares.
		{name: "perturb", submits: []calSubmit{{n: 10}, {n: 12}, {n: 8}},
			actions: []calAction{{at: 10, kind: "block", target: 1}, {at: 40, kind: "unblock", target: 1}}},
	}
}

// calMaxSteps caps one scenario's advance loop; at the default quantum it is
// hours of virtual time, far past any sane drain, so hitting it means a hang.
const calMaxSteps = 40000

type calCell struct {
	samples, within int
}

// RunCalibration runs the battery and scores band coverage.
func RunCalibration(cfg CalibrationConfig) (*CalibrationResult, error) {
	cfg = cfg.withDefaults()
	if err := core.ValidEstimator(cfg.Estimator); err != nil {
		return nil, err
	}
	scenarios := calScenarios()
	cells, err := runIndexed(cfg.Parallel, len(scenarios), func(i int) (calCell, error) {
		return runCalScenario(cfg, int64(i), scenarios[i])
	})
	if err != nil {
		return nil, err
	}
	res := &CalibrationResult{
		Fig: metrics.Figure{
			Title:  "Estimator ensemble: uncertainty-band coverage per scenario",
			XLabel: "scenario (battery order: mcq naq scq priority arrivals mpl perturb)",
			YLabel: "fraction of intervals containing the true finish",
		},
	}
	s := res.Fig.AddSeries("band coverage")
	for i, cell := range cells {
		cov := 0.0
		if cell.samples > 0 {
			cov = float64(cell.within) / float64(cell.samples)
		}
		res.Scenarios = append(res.Scenarios, CalibrationScenario{
			Name: scenarios[i].name, Samples: cell.samples, Within: cell.within, Coverage: cov,
		})
		res.Samples += cell.samples
		res.Within += cell.within
		s.Add(float64(i+1), cov)
	}
	if res.Samples == 0 {
		return nil, fmt.Errorf("experiments: calibration scored no intervals; the battery is vacuous")
	}
	res.Coverage = float64(res.Within) / float64(res.Samples)
	return res, nil
}

// runCalScenario drives one scenario through a manual-clock service.Manager
// and returns its interval scorecard.
func runCalScenario(cfg CalibrationConfig, off int64, sc calScenario) (calCell, error) {
	ds, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off*7919))
	if err != nil {
		return calCell{}, err
	}
	for i, sub := range sc.submits {
		if err := ds.CreatePartTable(i+1, sub.n); err != nil {
			return calCell{}, err
		}
	}
	m := service.New(ds.DB, service.Config{
		Sched: sched.Config{
			RateC: cfg.RateC, MPL: sc.mpl, Quantum: cfg.Quantum, Workers: cfg.Workers,
			Weights: map[int]float64{0: 1, 1: 2, 2: 4},
		},
		TickEvery: -1, // manual clock: virtual time moves only through Advance
		Estimator: cfg.Estimator,
	})
	defer m.Close()

	ids := make([]int, len(sc.submits))
	for i, sub := range sc.submits {
		v, err := m.Submit(service.SubmitRequest{
			Label:    fmt.Sprintf("%s-q%d", sc.name, i+1),
			SQL:      workload.QuerySQL(i + 1),
			Priority: sub.priority,
			Delay:    sub.delay,
		})
		if err != nil {
			return calCell{}, err
		}
		ids[i] = v.ID
	}

	type interval struct {
		id     int
		lo, hi float64 // absolute virtual-time bounds on the finish
	}
	var preds []interval
	acted := make([]bool, len(sc.actions))
	nextSample := 0.0
	for step := 0; ; step++ {
		if step >= calMaxSteps {
			return calCell{}, fmt.Errorf("experiments: calibration scenario %s did not drain in %d steps", sc.name, calMaxSteps)
		}
		ov, err := m.Overview()
		if err != nil {
			return calCell{}, err
		}
		for i, a := range sc.actions {
			if acted[i] || ov.Now+1e-9 < a.at {
				continue
			}
			acted[i] = true
			switch a.kind {
			case "block":
				err = m.Block(ids[a.target])
			case "unblock":
				err = m.Unblock(ids[a.target])
			default:
				err = fmt.Errorf("experiments: unknown calibration action %q", a.kind)
			}
			if err != nil {
				return calCell{}, fmt.Errorf("experiments: calibration %s action %s: %w", sc.name, a.kind, err)
			}
		}
		if ov.Now+1e-9 >= nextSample {
			nextSample = ov.Now + cfg.SampleEvery
			for _, v := range append(append([]service.QueryView(nil), ov.Running...), ov.Queued...) {
				lo, hi := float64(v.ETALow), float64(v.ETAHigh)
				// Infinite bands (blocked queries) contain every finish
				// trivially; scoring them would inflate coverage.
				if math.IsNaN(lo) || math.IsInf(hi, 0) {
					continue
				}
				preds = append(preds, interval{id: v.ID, lo: ov.Now + lo, hi: ov.Now + hi})
			}
		}
		if len(ov.Running) == 0 && len(ov.Queued) == 0 && len(ov.Scheduled) == 0 {
			break
		}
		if err := m.Advance(cfg.Quantum); err != nil {
			return calCell{}, err
		}
	}

	ov, err := m.Overview()
	if err != nil {
		return calCell{}, err
	}
	finish := make(map[int]float64, len(ids))
	for _, v := range ov.Finished {
		if v.Status == "failed" {
			return calCell{}, fmt.Errorf("experiments: calibration query %s failed: %s", v.Label, v.Err)
		}
		finish[v.ID] = v.FinishTime
	}
	if len(finish) != len(ids) {
		return calCell{}, fmt.Errorf("experiments: calibration scenario %s finished %d of %d queries", sc.name, len(finish), len(ids))
	}

	// Score every recorded interval against the true finish, with one tick of
	// quantization slack: finishes are stamped at segment ends, so no band
	// read a tick earlier can resolve finer than the quantum.
	cell := calCell{}
	eps := cfg.Quantum
	for _, p := range preds {
		t := finish[p.id]
		cell.samples++
		if p.lo-eps <= t && t <= p.hi+eps {
			cell.within++
		}
	}
	return cell, nil
}
