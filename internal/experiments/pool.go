package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runIndexed executes job(0..n-1) across up to `parallel` goroutines and
// returns the results in index order. parallel <= 0 means GOMAXPROCS;
// parallel == 1 runs inline with no goroutines at all, preserving the exact
// sequential execution the pre-harness code had.
//
// Determinism contract: jobs must be independent — a job's result may depend
// only on its index (every run derives its dataset and rng from (cfg, i)),
// never on shared mutable state. Under that contract the returned slice is
// identical for every parallelism level, and callers that fold results in
// index order reproduce the sequential figures bit for bit, including float
// summation order.
//
// On error the pool stops handing out new indexes and returns the error from
// the lowest-numbered failing job (so the reported error is also independent
// of worker interleaving). Results from jobs that never ran are zero values.
func runIndexed[T any](parallel, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		firstE error
		wg     sync.WaitGroup
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				v, err := job(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstE = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return out, nil
}

// datasetSeed derives the dataset seed for run r of an experiment seeded with
// base. The mix decorrelates it from the per-run simulation rngs (which use
// small-multiplier formulas like base + r*7919) so a worker's dataset never
// accidentally shares a stream with another run's event noise.
func datasetSeed(base, r int64) int64 {
	return (base+r)*0x9E3779B9 ^ 0x5CA1AB1E
}
