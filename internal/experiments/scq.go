package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// SCQConfig configures the Stream Concurrent Query experiments (§5.2.3,
// Figures 6-10): ten initial queries at random points of execution, with new
// queries arriving as a Poisson process while they run.
type SCQConfig struct {
	Seed       int64
	Runs       int     // runs per data point (paper: 100; default 20)
	NumInitial int     // default 10
	ZipfA      float64 // default 2.2
	MaxN       int     // default 20
	RateC      float64 // default 46 U/s (puts the stability knee λ*=C/c̄ near the paper's 0.07)
	Quantum    float64 // default 1 s
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int

	// Lambdas is the λ sweep of Figures 6-7.
	Lambdas []float64
	// FixedLambda and LambdaPrimes drive Figures 8-9 (λ' ≠ λ).
	FixedLambda  float64
	LambdaPrimes []float64

	// ArrivalCutoff stops generating new arrivals after this virtual time;
	// it models the finite duration of the paper's real runs and keeps
	// unstable configurations terminating. Default 1500 s.
	ArrivalCutoff float64
	// HardHorizon caps a run's virtual time outright. Default 30000 s.
	HardHorizon float64

	SampleEvery float64 // trajectory sampling period (Figure 10); default 2 s
	Data        workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c SCQConfig) withDefaults() SCQConfig {
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.NumInitial <= 0 {
		c.NumInitial = 10
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 2.2
	}
	if c.MaxN <= 0 {
		c.MaxN = 20
	}
	if c.RateC <= 0 {
		c.RateC = 46 // puts the stability boundary λ* = C/c̄ near the paper's 0.07
	}
	if c.Quantum <= 0 {
		c.Quantum = 1
	}
	if len(c.Lambdas) == 0 {
		c.Lambdas = []float64{0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2}
	}
	if c.FixedLambda <= 0 {
		c.FixedLambda = 0.03
	}
	if len(c.LambdaPrimes) == 0 {
		c.LambdaPrimes = []float64{0, 0.01, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2}
	}
	if c.ArrivalCutoff <= 0 {
		c.ArrivalCutoff = 1500
	}
	if c.HardHorizon <= 0 {
		c.HardHorizon = 30000
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 2
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// scqRun is the outcome of one SCQ run: per-initial-query actuals and the
// time-0 estimates of each estimator.
type scqRun struct {
	ids    []int
	actual map[int]float64             // actual remaining execution time at time 0
	single map[int]float64             // single-query estimates at time 0
	multi  map[float64]map[int]float64 // λ' -> multi-query estimates at time 0
	lastID int                         // the last-finishing initial query
}

// runSCQOnce performs one SCQ run: build the initial queries, take time-0
// estimates (one multi-query estimate per λ′), then simulate with Poisson(λ)
// arrivals until every initial query finishes.
func runSCQOnce(ds *workload.Dataset, cfg SCQConfig, lambda float64, lambdaPrimes []float64, cbar float64, rng *rand.Rand) (*scqRun, error) {
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()

	var created []int
	defer func() {
		for _, idx := range created {
			_ = ds.DropPartTable(idx)
		}
	}()

	initial := make([]*sched.Query, 0, cfg.NumInitial)
	for i := 1; i <= cfg.NumInitial; i++ {
		q, err := buildPartQuery(ds, srv, i, zipf.Sample(rng), 0)
		if err != nil {
			return nil, err
		}
		created = append(created, i)
		if err := prework(ds, q, rng, 0.9); err != nil {
			return nil, err
		}
		initial = append(initial, q)
	}
	for _, q := range initial {
		srv.Submit(q)
	}

	run := &scqRun{
		actual: make(map[int]float64, len(initial)),
		single: make(map[int]float64, len(initial)),
		multi:  make(map[float64]map[int]float64, len(lambdaPrimes)),
	}
	for _, q := range initial {
		run.ids = append(run.ids, q.ID)
		run.single[q.ID] = singleEstimate(srv, q)
	}
	states := srv.StateRunning()
	shadowCheck(states, cfg.RateC)
	for _, lp := range lambdaPrimes {
		am := core.ArrivalModel{Lambda: lp, AvgCost: cbar, AvgWeight: 1}
		run.multi[lp] = core.MultiQueryWithFuture(states, nil, 0, cfg.RateC, am)
	}

	// Simulate with dynamically generated arrivals until all initial
	// queries finish.
	poisson := workload.Poisson{Lambda: lambda}
	nextArrival := poisson.NextInterarrival(rng)
	nextIdx := cfg.NumInitial + 1
	remaining := len(initial)
	for _, q := range initial {
		q := q
		srv.OnFinish(func(f *sched.Query) {
			if f == q {
				remaining--
			}
		})
	}
	for remaining > 0 && srv.Now() < cfg.HardHorizon {
		for nextArrival <= srv.Now() && srv.Now() <= cfg.ArrivalCutoff {
			q, err := buildPartQuery(ds, srv, nextIdx, zipf.Sample(rng), 0)
			if err != nil {
				return nil, err
			}
			created = append(created, nextIdx)
			nextIdx++
			srv.Submit(q)
			nextArrival += poisson.NextInterarrival(rng)
		}
		srv.Tick()
	}

	lastFinish := -1.0
	for _, q := range initial {
		if q.Status == sched.StatusFailed {
			return nil, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
		}
		finish := q.FinishTime
		if q.Status != sched.StatusFinished {
			// Horizon hit (extreme overload): extrapolate the tail at the
			// fair-share rate so the run still yields a (large) actual.
			share := fairShare(srv, q)
			if share <= 0 {
				share = cfg.RateC / float64(len(srv.Running())+1)
			}
			finish = srv.Now() + q.Runner.EstRemaining()/share
		}
		run.actual[q.ID] = finish
		if finish > lastFinish {
			lastFinish = finish
			run.lastID = q.ID
		}
	}
	return run, nil
}

// SCQResult holds Figures 6 and 7.
type SCQResult struct {
	// Fig6: relative error of the time-0 remaining-time estimate for the
	// last-finishing query, vs λ.
	Fig6 metrics.Figure
	// Fig7: same, averaged over all ten initial queries.
	Fig7 metrics.Figure
	// CBar is the fitted average query cost c̄ handed to the multi-query PI.
	CBar float64
	// StabilityLambda is C/c̄, the arrival rate beyond which the system is
	// unstable.
	StabilityLambda float64
}

// RunSCQ reproduces Figures 6 and 7: sweep λ, measure the relative error of
// the single- and multi-query estimates (λ′ = λ: the PI knows the exact
// arrival rate and average cost).
func RunSCQ(cfg SCQConfig) (*SCQResult, error) {
	cfg = cfg.withDefaults()
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	cm, err := fitCostModel(ds)
	if err != nil {
		return nil, err
	}
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	cbar := cm.Cost(zipf.Mean())

	res := &SCQResult{
		Fig6: metrics.Figure{
			Title:  "Figure 6: relative error of estimated remaining execution time for the last finishing query",
			XLabel: "lambda",
			YLabel: "relative error (fraction)",
		},
		Fig7: metrics.Figure{
			Title:  "Figure 7: average relative error of estimated remaining execution time for all ten queries",
			XLabel: "lambda",
			YLabel: "relative error (fraction)",
		},
		CBar:            cbar,
		StabilityLambda: cfg.RateC / cbar,
	}
	f6single := res.Fig6.AddSeries("single-query estimate")
	f6multi := res.Fig6.AddSeries("multi-query estimate")
	f7single := res.Fig7.AddSeries("single-query estimate")
	f7multi := res.Fig7.AddSeries("multi-query estimate")

	// Fan the (λ, run) grid across the pool. Every job hydrates a private
	// dataset from the shared snapshot, so its part tables depend only on
	// (cfg, li, r) — never on how many runs executed before it — and the
	// figures are identical at every parallelism level. Aggregation below
	// walks the cells in the exact (li, r) order the sequential loop used,
	// preserving float summation order bit for bit.
	type scqCell struct{ es, em errPair }
	cells, err := runIndexed(cfg.Parallel, len(cfg.Lambdas)*cfg.Runs, func(j int) (scqCell, error) {
		li, r := j/cfg.Runs, j%cfg.Runs
		off := int64(li)*100003 + int64(r)*7919
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off))
		if err != nil {
			return scqCell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		run, err := runSCQOnce(dsRun, cfg, cfg.Lambdas[li], []float64{cfg.Lambdas[li]}, cbar, rng)
		if err != nil {
			return scqCell{}, err
		}
		es, em := runErrors(run, cfg.Lambdas[li])
		return scqCell{es: es, em: em}, nil
	})
	if err != nil {
		return nil, err
	}
	for li, lambda := range cfg.Lambdas {
		var lastS, lastM, avgS, avgM []float64
		for r := 0; r < cfg.Runs; r++ {
			c := cells[li*cfg.Runs+r]
			lastS = append(lastS, c.es.last)
			lastM = append(lastM, c.em.last)
			avgS = append(avgS, c.es.avg)
			avgM = append(avgM, c.em.avg)
		}
		f6single.Add(lambda, metrics.Mean(lastS))
		f6multi.Add(lambda, metrics.Mean(lastM))
		f7single.Add(lambda, metrics.Mean(avgS))
		f7multi.Add(lambda, metrics.Mean(avgM))
	}
	return res, nil
}

type errPair struct{ last, avg float64 }

// runErrors computes the paper's two error aggregates for one run: the
// relative error for the last-finishing query and the average over all
// initial queries.
func runErrors(run *scqRun, lambdaPrime float64) (single, multi errPair) {
	var sErrs, mErrs []float64
	m := run.multi[lambdaPrime]
	for _, id := range run.ids {
		actual := run.actual[id]
		sErrs = append(sErrs, metrics.RelErr(run.single[id], actual))
		mErrs = append(mErrs, metrics.RelErr(m[id], actual))
	}
	single = errPair{
		last: metrics.RelErr(run.single[run.lastID], run.actual[run.lastID]),
		avg:  metrics.Mean(sErrs),
	}
	multi = errPair{
		last: metrics.RelErr(m[run.lastID], run.actual[run.lastID]),
		avg:  metrics.Mean(mErrs),
	}
	return single, multi
}

// SCQLambdaErrResult holds Figures 8 and 9.
type SCQLambdaErrResult struct {
	// Fig8: relative error for the last finishing query vs the λ′ the
	// multi-query PI assumed (true λ fixed); the single-query estimate is a
	// flat reference line.
	Fig8 metrics.Figure
	// Fig9: same, averaged over all ten queries.
	Fig9 metrics.Figure
	// Lambda is the true arrival rate.
	Lambda float64
	CBar   float64
}

// RunSCQLambdaErr reproduces Figures 8 and 9: the multi-query PI estimates
// with a wrong arrival rate λ′ while queries actually arrive at λ.
func RunSCQLambdaErr(cfg SCQConfig) (*SCQLambdaErrResult, error) {
	cfg = cfg.withDefaults()
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	cm, err := fitCostModel(ds)
	if err != nil {
		return nil, err
	}
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	cbar := cm.Cost(zipf.Mean())

	res := &SCQLambdaErrResult{
		Fig8: metrics.Figure{
			Title:  fmt.Sprintf("Figure 8: relative error for the last finishing query (lambda=%.3g, varying lambda')", cfg.FixedLambda),
			XLabel: "lambda' (assumed by multi-query PI)",
			YLabel: "relative error (fraction)",
		},
		Fig9: metrics.Figure{
			Title:  fmt.Sprintf("Figure 9: average relative error for all ten queries (lambda=%.3g, varying lambda')", cfg.FixedLambda),
			XLabel: "lambda' (assumed by multi-query PI)",
			YLabel: "relative error (fraction)",
		},
		Lambda: cfg.FixedLambda,
		CBar:   cbar,
	}
	f8single := res.Fig8.AddSeries("single-query estimate")
	f8multi := res.Fig8.AddSeries("multi-query estimate")
	f9single := res.Fig9.AddSeries("single-query estimate")
	f9multi := res.Fig9.AddSeries("multi-query estimate")

	// One pool job per run; each returns the single-query errors plus the
	// multi-query errors for every λ′, aligned with cfg.LambdaPrimes.
	type lerrCell struct {
		lastS, avgS float64
		multi       []errPair
	}
	cells, err := runIndexed(cfg.Parallel, cfg.Runs, func(r int) (lerrCell, error) {
		off := 424243 + int64(r)*7919
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off))
		if err != nil {
			return lerrCell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		run, err := runSCQOnce(dsRun, cfg, cfg.FixedLambda, cfg.LambdaPrimes, cbar, rng)
		if err != nil {
			return lerrCell{}, err
		}
		// Single-query errors do not depend on λ′.
		var sErrs []float64
		for _, id := range run.ids {
			sErrs = append(sErrs, metrics.RelErr(run.single[id], run.actual[id]))
		}
		cell := lerrCell{
			lastS: metrics.RelErr(run.single[run.lastID], run.actual[run.lastID]),
			avgS:  metrics.Mean(sErrs),
			multi: make([]errPair, 0, len(cfg.LambdaPrimes)),
		}
		for _, lp := range cfg.LambdaPrimes {
			_, em := runErrors(run, lp)
			cell.multi = append(cell.multi, em)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	lastS := make([]float64, 0, cfg.Runs)
	avgS := make([]float64, 0, cfg.Runs)
	lastM := make(map[float64][]float64, len(cfg.LambdaPrimes))
	avgM := make(map[float64][]float64, len(cfg.LambdaPrimes))
	for _, cell := range cells {
		lastS = append(lastS, cell.lastS)
		avgS = append(avgS, cell.avgS)
		for i, lp := range cfg.LambdaPrimes {
			lastM[lp] = append(lastM[lp], cell.multi[i].last)
			avgM[lp] = append(avgM[lp], cell.multi[i].avg)
		}
	}
	singleLast := metrics.Mean(lastS)
	singleAvg := metrics.Mean(avgS)
	lps := append([]float64(nil), cfg.LambdaPrimes...)
	sort.Float64s(lps)
	for _, lp := range lps {
		f8single.Add(lp, singleLast)
		f8multi.Add(lp, metrics.Mean(lastM[lp]))
		f9single.Add(lp, singleAvg)
		f9multi.Add(lp, metrics.Mean(avgM[lp]))
	}
	return res, nil
}

// SCQTrajectoryResult holds Figure 10.
type SCQTrajectoryResult struct {
	// Fig10: the multi-query estimate for the last-finishing query over
	// time, one series per assumed λ′, plus the actual remaining time.
	Fig10 metrics.Figure
	// FocusFinish is the observed finish time of the tracked query.
	FocusFinish float64
}

// RunSCQTrajectory reproduces Figure 10: a single run with λ =
// cfg.FixedLambda in which the multi-query PI continuously re-estimates the
// last-finishing query's remaining time under wrong λ′ assumptions,
// demonstrating the PI's self-correcting adaptivity.
func RunSCQTrajectory(cfg SCQConfig, lambdaPrimes []float64) (*SCQTrajectoryResult, error) {
	cfg = cfg.withDefaults()
	if len(lambdaPrimes) == 0 {
		lambdaPrimes = []float64{0.04, 0.05}
	}
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	cm, err := fitCostModel(ds)
	if err != nil {
		return nil, err
	}
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	cbar := cm.Cost(zipf.Mean())
	rng := rand.New(rand.NewSource(cfg.Seed + 777))

	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
	initial := make([]*sched.Query, 0, cfg.NumInitial)
	for i := 1; i <= cfg.NumInitial; i++ {
		q, err := buildPartQuery(ds, srv, i, zipf.Sample(rng), 0)
		if err != nil {
			return nil, err
		}
		if err := prework(ds, q, rng, 0.9); err != nil {
			return nil, err
		}
		initial = append(initial, q)
	}
	for _, q := range initial {
		srv.Submit(q)
	}

	type sampleRec struct {
		t   float64
		est map[float64]map[int]float64
	}
	var samples []sampleRec

	poisson := workload.Poisson{Lambda: cfg.FixedLambda}
	nextArrival := poisson.NextInterarrival(rng)
	nextIdx := cfg.NumInitial + 1
	remaining := len(initial)
	for _, q := range initial {
		q := q
		srv.OnFinish(func(f *sched.Query) {
			if f == q {
				remaining--
			}
		})
	}
	nextSample := 0.0
	for remaining > 0 && srv.Now() < cfg.HardHorizon {
		for nextArrival <= srv.Now() && srv.Now() <= cfg.ArrivalCutoff {
			q, err := buildPartQuery(ds, srv, nextIdx, zipf.Sample(rng), 0)
			if err != nil {
				return nil, err
			}
			nextIdx++
			srv.Submit(q)
			nextArrival += poisson.NextInterarrival(rng)
		}
		if srv.Now()+1e-9 >= nextSample {
			states := srv.StateRunning()
			shadowCheck(states, cfg.RateC)
			est := make(map[float64]map[int]float64, len(lambdaPrimes))
			for _, lp := range lambdaPrimes {
				am := core.ArrivalModel{Lambda: lp, AvgCost: cbar, AvgWeight: 1}
				est[lp] = core.MultiQueryWithFuture(states, nil, 0, cfg.RateC, am)
			}
			samples = append(samples, sampleRec{t: srv.Now(), est: est})
			nextSample += cfg.SampleEvery
		}
		srv.Tick()
	}

	// Identify the last-finishing initial query.
	var focus *sched.Query
	for _, q := range initial {
		if q.Status == sched.StatusFailed {
			return nil, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
		}
		if focus == nil || q.FinishTime > focus.FinishTime {
			focus = q
		}
	}
	res := &SCQTrajectoryResult{
		Fig10: metrics.Figure{
			Title:  fmt.Sprintf("Figure 10: remaining time estimated by the multi-query PI over time (lambda=%.3g)", cfg.FixedLambda),
			XLabel: "time (s)",
			YLabel: "estimated remaining query execution time (s)",
		},
		FocusFinish: focus.FinishTime,
	}
	actual := res.Fig10.AddSeries("actual")
	series := make(map[float64]*metrics.Series, len(lambdaPrimes))
	for _, lp := range lambdaPrimes {
		series[lp] = res.Fig10.AddSeries(fmt.Sprintf("lambda'=%.3g", lp))
	}
	for _, s := range samples {
		if s.t > focus.FinishTime {
			break
		}
		actual.Add(s.t, math.Max(0, focus.FinishTime-s.t))
		for _, lp := range lambdaPrimes {
			if est, ok := s.est[lp][focus.ID]; ok {
				series[lp].Add(s.t, est)
			}
		}
	}
	return res, nil
}
