package experiments

import (
	"testing"

	"mqpi/internal/workload"
)

// The parallel harness must produce byte-identical figure output to the
// sequential (-parallel=1) execution: jobs depend only on their index, and
// results are folded in index order, so float summation order is preserved.

func TestParallelSCQSweepByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunSCQ(SCQConfig{
			Seed:     3,
			Runs:     3,
			Lambdas:  []float64{0, 0.05},
			Data:     workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel: parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig6.Render() + res.Fig7.Render()
	}
	seq := mk(1)
	for _, p := range []int{0, 4} {
		if got := mk(p); got != seq {
			t.Errorf("parallel=%d output differs from sequential:\n%s\nvs\n%s", p, got, seq)
		}
	}
}

func TestParallelSCQLambdaErrByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunSCQLambdaErr(SCQConfig{
			Seed:         3,
			Runs:         2,
			FixedLambda:  0.03,
			LambdaPrimes: []float64{0, 0.05},
			Data:         workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel:     parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig8.Render() + res.Fig9.Render()
	}
	if seq, par := mk(1), mk(4); par != seq {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}

func TestParallelMPLSweepByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunMPLSweep(MPLSweepConfig{
			Seed:       3,
			Runs:       2,
			NumQueries: 6,
			MPLs:       []int{2, 0},
			Data:       workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel:   parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig.Render()
	}
	if seq, par := mk(1), mk(4); par != seq {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}

func TestParallelMaintenanceByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunMaintenance(MaintenanceConfig{
			Seed:           3,
			Runs:           3,
			NumQueries:     6,
			WarmupFinishes: 8,
			TFracs:         []float64{0.3, 0.7, 1.0},
			Data:           workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel:       parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig11.Render()
	}
	if seq, par := mk(1), mk(4); par != seq {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}

func TestParallelSpeedupByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunSpeedup(SpeedupConfig{
			Seed:     3,
			Runs:     3,
			Data:     workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel: parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig.Render()
	}
	if seq, par := mk(1), mk(4); par != seq {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}

func TestParallelRobustnessByteIdentical(t *testing.T) {
	mk := func(parallel int) string {
		res, err := RunRobustness(RobustnessConfig{
			Seed:     3,
			Runs:     3,
			Data:     workload.DataConfig{LineitemRows: 30000, Seed: 5},
			Parallel: parallel,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.Fig.Render()
	}
	if seq, par := mk(1), mk(4); par != seq {
		t.Errorf("parallel output differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}

// TestPriorityRunsAveraging: Runs=1 output matches the historical single-run
// result (run 0 uses the base dataset and rng), and Runs>1 averages over
// distinct workloads identically at every parallelism level.
func TestParallelPriorityByteIdentical(t *testing.T) {
	data := workload.DataConfig{LineitemRows: 30000, Seed: 5}
	base, err := RunPriority(PriorityConfig{Seed: 3, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(parallel int) *PriorityResult {
		res, err := RunPriority(PriorityConfig{Seed: 3, Runs: 3, Data: data, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	seq, par := mk(1), mk(4)
	if seq.Fig.Render() != base.Fig.Render() {
		t.Error("run 0 of a multi-run priority experiment must reproduce the single-run figure")
	}
	if seq.SpeedRatio != par.SpeedRatio || seq.ErrT0Single != par.ErrT0Single || seq.ErrT0Multi != par.ErrT0Multi {
		t.Errorf("parallel priority metrics differ: %+v vs %+v", par, seq)
	}
	if seq.Fig.Render() != par.Fig.Render() {
		t.Error("parallel priority figure differs from sequential")
	}
}
