package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/wm"
	"mqpi/internal/workload"
)

// SpeedupConfig configures the §3.1 policy-comparison experiment. The paper
// reports that its workload-management experiments behaved like the
// maintenance one and shows only Figure 11; this experiment fills that gap:
// it compares the multi-query PI's victim choice against the heuristics the
// paper's introduction argues against.
type SpeedupConfig struct {
	Seed       int64
	Runs       int     // default 10
	NumQueries int     // default 8
	MaxN       int     // default 25
	ZipfA      float64 // default 1.2
	RateC      float64 // default 80
	Quantum    float64 // default 0.5
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	Data       workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c SpeedupConfig) withDefaults() SpeedupConfig {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 8
	}
	if c.MaxN <= 0 {
		c.MaxN = 25
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.2
	}
	if c.RateC <= 0 {
		c.RateC = 80
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// SpeedupPolicy names a victim-selection policy.
type SpeedupPolicy string

const (
	// PolicyMultiPI picks the victim via the §3.1 algorithm over PI states.
	PolicyMultiPI SpeedupPolicy = "multi-query PI (§3.1)"
	// PolicyHeaviestConsumer picks the query that has consumed the most
	// work so far — "a common approach is to choose the victim query to be
	// the heaviest resource consumer", which the paper argues can backfire
	// when that query is about to finish.
	PolicyHeaviestConsumer SpeedupPolicy = "heaviest consumer"
	// PolicyRandom blocks a uniformly random non-target query.
	PolicyRandom SpeedupPolicy = "random victim"
	// PolicyNone is the no-intervention baseline.
	PolicyNone SpeedupPolicy = "no intervention"
)

// SpeedupResult summarizes the policy comparison.
type SpeedupResult struct {
	// Fig: mean speed-up of the target (seconds saved vs no intervention)
	// per policy, x = policy index in Policies order.
	Fig metrics.Figure
	// Policies lists the compared policies; MeanSavings is aligned with it.
	Policies    []SpeedupPolicy
	MeanSavings []float64
	// PredictedVsActual is the mean |predicted−actual| of the §3.1 benefit
	// formula across runs, in seconds.
	PredictedVsActual float64
}

// speedupScenario rebuilds the identical workload for one run. Determinism
// makes policy comparisons exact: each policy replays the same queries with
// the same prework. The shape realizes the paper's motivating trap: query 1
// is the heaviest resource consumer (most work done) but is about to finish,
// while query 2 is equally large and has barely started; the remaining
// queries are a small Zipf mix, and the target sits in the middle.
func speedupScenario(ds *workload.Dataset, cfg SpeedupConfig, seed int64) (*sched.Server, []*sched.Query, error) {
	rng := rand.New(rand.NewSource(seed))
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN/4)
	if err != nil {
		return nil, nil, err
	}
	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
	type spec struct {
		n       int
		prework float64
	}
	specs := []spec{
		{cfg.MaxN, 0.85 + 0.1*rng.Float64()}, // the trap: heavy consumer, nearly done
		{cfg.MaxN, 0.05 * rng.Float64()},     // the real victim: heavy and fresh
		{cfg.MaxN / 2, 0.3 * rng.Float64()},  // the target
	}
	for len(specs) < cfg.NumQueries {
		specs = append(specs, spec{zipf.Sample(rng), rng.Float64() * 0.8})
	}
	var queries []*sched.Query
	for i, sp := range specs {
		q, err := buildPartQuery(ds, srv, i+1, sp.n, 0)
		if err != nil {
			return nil, nil, err
		}
		if sp.prework > 0 {
			if _, _, err := q.Runner.Step(sp.prework * q.Runner.Plan().EstCost()); err != nil {
				return nil, nil, err
			}
		}
		queries = append(queries, q)
		srv.Submit(q)
	}
	return srv, queries, nil
}

// targetPos is the index of the target query in the scenario's spec order.
const targetPos = 2

// RunSpeedup compares victim-selection policies for the single-query
// speed-up problem across Runs deterministic scenarios.
func RunSpeedup(cfg SpeedupConfig) (*SpeedupResult, error) {
	cfg = cfg.withDefaults()
	policies := []SpeedupPolicy{PolicyMultiPI, PolicyHeaviestConsumer, PolicyRandom}

	// One pool job per run. The four replays of a scenario (baseline + three
	// policies) share the job's private dataset sequentially, exactly as the
	// sequential code shared the global one within a run.
	type spdCell struct {
		savings []float64 // aligned with policies
		predErr float64   // |predicted − actual| for the PI policy
	}
	cells, err := runIndexed(cfg.Parallel, cfg.Runs, func(r int) (spdCell, error) {
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, int64(r)*65537))
		if err != nil {
			return spdCell{}, err
		}
		seed := cfg.Seed + int64(r)*65537
		// Baseline replay: find the target and its unassisted finish time.
		srv, queries, err := speedupScenario(dsRun, cfg, seed)
		if err != nil {
			return spdCell{}, err
		}
		srv.RunUntilIdle(1e9)
		if queries[targetPos].Status != sched.StatusFinished {
			return spdCell{}, fmt.Errorf("experiments: target failed: %v", queries[targetPos].Err)
		}
		baseline := queries[targetPos].FinishTime

		cell := spdCell{savings: make([]float64, 0, len(policies))}
		for _, policy := range policies {
			srv, queries, err := speedupScenario(dsRun, cfg, seed)
			if err != nil {
				return spdCell{}, err
			}
			target := queries[targetPos]
			victimID, predicted, err := pickVictim(policy, srv, target, seed)
			if err != nil {
				return spdCell{}, err
			}
			if err := srv.Block(victimID); err != nil {
				return spdCell{}, err
			}
			for srv.Busy() && target.Status != sched.StatusFinished && target.Status != sched.StatusFailed {
				srv.Tick()
			}
			if target.Status != sched.StatusFinished {
				return spdCell{}, fmt.Errorf("experiments: target did not finish under %s: %v", policy, target.Err)
			}
			saving := baseline - target.FinishTime
			cell.savings = append(cell.savings, saving)
			if policy == PolicyMultiPI {
				d := predicted - saving
				if d < 0 {
					d = -d
				}
				cell.predErr = d
			}
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make(map[SpeedupPolicy]float64, len(policies))
	var predErr []float64
	for _, cell := range cells {
		for i, p := range policies {
			sums[p] += cell.savings[i]
		}
		predErr = append(predErr, cell.predErr)
	}

	res := &SpeedupResult{
		Fig: metrics.Figure{
			Title:  "Extension: victim-selection policies — mean target speed-up (s)",
			XLabel: "policy#",
			YLabel: "seconds saved vs no intervention",
		},
		Policies:          policies,
		PredictedVsActual: metrics.Mean(predErr),
	}
	s := res.Fig.AddSeries("mean saving")
	for i, p := range policies {
		mean := sums[p] / float64(cfg.Runs)
		res.MeanSavings = append(res.MeanSavings, mean)
		s.Add(float64(i+1), mean)
	}
	return res, nil
}

// pickVictim applies one policy to the time-0 state and returns the chosen
// victim and (for the PI policy) the predicted benefit.
func pickVictim(policy SpeedupPolicy, srv *sched.Server, target *sched.Query, seed int64) (int, float64, error) {
	running := srv.Running()
	switch policy {
	case PolicyMultiPI:
		victims, err := wm.SpeedUpSingle(srv.StateRunning(), srv.RateC(), target.ID, 1)
		if err != nil {
			return 0, 0, err
		}
		return victims[0].ID, victims[0].Benefit, nil
	case PolicyHeaviestConsumer:
		best, bestWork := -1, -1.0
		for _, q := range running {
			if q.ID == target.ID {
				continue
			}
			if w := q.Runner.WorkDone(); w > bestWork {
				best, bestWork = q.ID, w
			}
		}
		return best, 0, nil
	case PolicyRandom:
		rng := rand.New(rand.NewSource(seed ^ 0x51ED270))
		candidates := make([]int, 0, len(running)-1)
		for _, q := range running {
			if q.ID != target.ID {
				candidates = append(candidates, q.ID)
			}
		}
		return candidates[rng.Intn(len(candidates))], 0, nil
	default:
		return 0, 0, fmt.Errorf("experiments: unknown policy %q", policy)
	}
}
