package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/wm"
	"mqpi/internal/workload"
)

// MaintenanceConfig configures the scheduled-maintenance experiment (§5.3,
// Figure 11): a steady-state mix of n queries (a query finishing triggers a
// fresh Zipf-sized submission), inspected at a random time rt to plan
// maintenance scheduled t seconds later. Case 2 lost work (total cost of
// aborted queries) is reported, as in the paper.
type MaintenanceConfig struct {
	Seed           int64
	Runs           int     // default 10 (as in the paper)
	NumQueries     int     // steady-state multiprogramming level; default 10
	ZipfA          float64 // submission size distribution; default 2.2
	MaxN           int     // default 20
	RateC          float64 // default 32 U/s
	Quantum        float64 // default 1 s
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	WarmupFinishes int     // completions before rt; default 25
	// TFracs are the t/tfinish points of Figure 11's x axis.
	TFracs []float64
	// Case1 switches the lost-work definition to §3.3's Case 1 (completed
	// work of aborted queries); the default is the paper's Figure 11 choice,
	// Case 2 (total cost of aborted queries).
	Case1 bool
	Data  workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c MaintenanceConfig) withDefaults() MaintenanceConfig {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 10
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 2.2
	}
	if c.MaxN <= 0 {
		c.MaxN = 20
	}
	if c.RateC <= 0 {
		c.RateC = 32
	}
	if c.Quantum <= 0 {
		c.Quantum = 1
	}
	if c.WarmupFinishes <= 0 {
		c.WarmupFinishes = 25
	}
	if len(c.TFracs) == 0 {
		c.TFracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// maintSnapshot captures one query's state at the inspection time rt.
type maintSnapshot struct {
	id        int
	doneWork  float64 // e_i: exact completed work at rt
	estRemain float64 // refined PI estimate of c_i
	speed     float64 // observed execution speed at rt (for the single PI)
	trueCost  float64 // e_i + true remaining work (known post hoc)
	trueRem   float64 // true remaining work at rt
}

// MaintenanceResult holds Figure 11 plus headline aggregates.
type MaintenanceResult struct {
	// Fig11: unfinished work UW/TW vs t/tfinish for the four methods.
	Fig11 metrics.Figure
	// SingleAtTFinish is the single-PI method's UW/TW at t = tfinish
	// (the paper reports 67%: it aborts large queries unnecessarily).
	SingleAtTFinish float64
	// MultiVsNoPI and MultiVsSingle are the average reductions of unfinished
	// work achieved by the multi-PI method over the other two for t<tfinish
	// (positive = multi is better).
	MultiVsNoPI   float64
	MultiVsSingle float64
	// MultiVsLimit is the multi-PI method's average excess over the
	// theoretical limit for t<tfinish.
	MultiVsLimit float64
}

// RunMaintenance reproduces Figure 11. For each run it simulates the warm
// steady state once, snapshots the n running queries at rt, drains the
// system to learn the true costs, and then evaluates every method at every
// t analytically (weighted fair sharing with equal priorities is
// work-conserving, so post-rt finish times follow the stage model exactly).
func RunMaintenance(cfg MaintenanceConfig) (*MaintenanceResult, error) {
	cfg = cfg.withDefaults()
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}

	mode := wm.Case2TotalCost
	caseName := "Case 2"
	if cfg.Case1 {
		mode = wm.Case1CompletedWork
		caseName = "Case 1"
	}

	type methodKey int
	const (
		mNoPI methodKey = iota
		mSingle
		mMulti
		mLimit
	)
	sums := map[methodKey][]float64{
		mNoPI:   make([]float64, len(cfg.TFracs)),
		mSingle: make([]float64, len(cfg.TFracs)),
		mMulti:  make([]float64, len(cfg.TFracs)),
		mLimit:  make([]float64, len(cfg.TFracs)),
	}

	// One pool job per run: simulate the steady state on a private dataset
	// and return the normalized UW/TW contribution of every (method, t) cell.
	// The contributions are then summed strictly in run order, so the final
	// figure matches the sequential accumulation bit for bit.
	type maintCell struct {
		noPI, single, multi, limit []float64 // indexed like cfg.TFracs
	}
	cells, err := runIndexed(cfg.Parallel, cfg.Runs, func(r int) (maintCell, error) {
		off := 904537 + int64(r)*7919
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off))
		if err != nil {
			return maintCell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		snaps, err := runMaintenanceOnce(dsRun, cfg, zipf, rng)
		if err != nil {
			return maintCell{}, err
		}
		// tfinish: system quiescent time under no interruption = total true
		// remaining work / C (work-conserving).
		totalRem := 0.0
		tw := 0.0
		for _, s := range snaps {
			totalRem += s.trueRem
			tw += s.trueCost
		}
		tfinish := totalRem / cfg.RateC
		if tfinish <= 0 || tw <= 0 {
			return maintCell{}, fmt.Errorf("experiments: degenerate maintenance run (tfinish=%g, tw=%g)", tfinish, tw)
		}
		cell := maintCell{
			noPI:   make([]float64, len(cfg.TFracs)),
			single: make([]float64, len(cfg.TFracs)),
			multi:  make([]float64, len(cfg.TFracs)),
			limit:  make([]float64, len(cfg.TFracs)),
		}
		for ti, frac := range cfg.TFracs {
			t := frac * tfinish
			cell.noPI[ti] = evalNoPI(snaps, cfg.RateC, t, mode) / tw
			cell.single[ti] = evalSinglePI(snaps, cfg.RateC, t, mode) / tw
			uwMulti, err := evalMultiPI(snaps, cfg.RateC, t, mode)
			if err != nil {
				return maintCell{}, err
			}
			cell.multi[ti] = uwMulti / tw
			uwLimit, err := evalLimit(snaps, cfg.RateC, t, mode)
			if err != nil {
				return maintCell{}, err
			}
			cell.limit[ti] = uwLimit / tw
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		for ti := range cfg.TFracs {
			sums[mNoPI][ti] += cell.noPI[ti]
			sums[mSingle][ti] += cell.single[ti]
			sums[mMulti][ti] += cell.multi[ti]
			sums[mLimit][ti] += cell.limit[ti]
		}
	}

	res := &MaintenanceResult{
		Fig11: metrics.Figure{
			Title:  fmt.Sprintf("Figure 11: unfinished work of the three methods vs theoretical limit (%s)", caseName),
			XLabel: "t / tfinish",
			YLabel: "UW / TW",
		},
	}
	noPI := res.Fig11.AddSeries("no PI method")
	single := res.Fig11.AddSeries("single-query PI method")
	multi := res.Fig11.AddSeries("multi-query PI method")
	limit := res.Fig11.AddSeries("theoretical limitation")
	runs := float64(cfg.Runs)
	var dNo, dSingle, dLimit []float64
	for ti, frac := range cfg.TFracs {
		vNo := sums[mNoPI][ti] / runs
		vSingle := sums[mSingle][ti] / runs
		vMulti := sums[mMulti][ti] / runs
		vLimit := sums[mLimit][ti] / runs
		noPI.Add(frac, vNo)
		single.Add(frac, vSingle)
		multi.Add(frac, vMulti)
		limit.Add(frac, vLimit)
		if frac >= 0.999 {
			res.SingleAtTFinish = vSingle
		}
		if frac < 0.999 {
			dNo = append(dNo, vNo-vMulti)
			dSingle = append(dSingle, vSingle-vMulti)
			dLimit = append(dLimit, vMulti-vLimit)
		}
	}
	res.MultiVsNoPI = metrics.Mean(dNo)
	res.MultiVsSingle = metrics.Mean(dSingle)
	res.MultiVsLimit = metrics.Mean(dLimit)
	return res, nil
}

// runMaintenanceOnce simulates the steady state for one run and returns the
// snapshots of the queries running at rt, with true costs filled in from the
// post-rt drain.
func runMaintenanceOnce(ds *workload.Dataset, cfg MaintenanceConfig, zipf *workload.Zipf, rng *rand.Rand) ([]maintSnapshot, error) {
	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
	// Distinct table-index space per run so datasets can be reused.
	nextIdx := 1
	var created []int
	defer func() {
		for _, idx := range created {
			_ = ds.DropPartTable(idx)
		}
	}()
	newQuery := func() (*sched.Query, error) {
		q, err := buildPartQuery(ds, srv, nextIdx, zipf.Sample(rng), 0)
		if err != nil {
			return nil, err
		}
		created = append(created, nextIdx)
		nextIdx++
		return q, nil
	}

	finishes := 0
	replacing := true
	var submitErr error
	srv.OnFinish(func(f *sched.Query) {
		finishes++
		if !replacing || submitErr != nil {
			return
		}
		q, err := newQuery()
		if err != nil {
			submitErr = err
			return
		}
		srv.Submit(q)
	})
	for i := 0; i < cfg.NumQueries; i++ {
		q, err := newQuery()
		if err != nil {
			return nil, err
		}
		// Start the initial mix at random points so early steady state is
		// less biased toward synchronized finishes.
		if err := prework(ds, q, rng, 0.9); err != nil {
			return nil, err
		}
		srv.Submit(q)
	}
	// Warm up: run until enough completions have churned the mix, plus a
	// small random extension so rt is not aligned with a completion.
	for finishes < cfg.WarmupFinishes && srv.Busy() {
		srv.Tick()
		if submitErr != nil {
			return nil, submitErr
		}
	}
	extra := rng.Intn(20)
	for i := 0; i < extra && srv.Busy(); i++ {
		srv.Tick()
		if submitErr != nil {
			return nil, submitErr
		}
	}

	// Time rt: stop admissions (operation O1) and snapshot.
	replacing = false
	running := srv.Running()
	if len(running) == 0 {
		return nil, fmt.Errorf("experiments: no queries running at rt")
	}
	snaps := make([]maintSnapshot, 0, len(running))
	workAtRt := make(map[int]float64, len(running))
	for _, q := range running {
		speed := q.ObservedSpeed()
		if speed <= 0 {
			speed = fairShare(srv, q)
		}
		snaps = append(snaps, maintSnapshot{
			id:        q.ID,
			doneWork:  q.Runner.WorkDone(),
			estRemain: q.Runner.EstRemaining(),
			speed:     speed,
		})
		workAtRt[q.ID] = q.Runner.WorkDone()
	}

	// Drain to completion to learn true remaining costs.
	for srv.Busy() {
		srv.Tick()
	}
	for i := range snaps {
		q, ok := srv.Lookup(snaps[i].id)
		if !ok {
			return nil, fmt.Errorf("experiments: query %d vanished during drain", snaps[i].id)
		}
		if q.Status == sched.StatusFailed {
			return nil, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
		}
		snaps[i].trueRem = q.Runner.WorkDone() - workAtRt[q.ID]
		snaps[i].trueCost = q.Runner.WorkDone()
	}
	return snaps, nil
}

// lostAtAbort returns the mode-dependent lost work of aborting a query that
// has completed `done` work in total (Case 1: the completed work is wasted;
// Case 2: the whole cost must be redone).
func lostAtAbort(s maintSnapshot, doneSinceRt float64, mode wm.LostWorkMode) float64 {
	if mode == wm.Case1CompletedWork {
		return s.doneWork + doneSinceRt
	}
	return s.trueCost
}

// workDoneBy computes, for equal-weight fair sharing over the kept queries'
// true remaining costs, how much work each query completes within the first
// t seconds (stage-by-stage, the §2.2 schedule).
func workDoneBy(kept []maintSnapshot, C, t float64) map[int]float64 {
	type qs struct {
		id  int
		rem float64
	}
	active := make([]qs, 0, len(kept))
	done := make(map[int]float64, len(kept))
	for _, s := range kept {
		active = append(active, qs{id: s.id, rem: s.trueRem})
		done[s.id] = 0
	}
	// Process stages in ascending remaining order.
	for now := 0.0; now < t && len(active) > 0; {
		minRem := active[0].rem
		for _, q := range active {
			if q.rem < minRem {
				minRem = q.rem
			}
		}
		share := C / float64(len(active))
		stage := minRem / share // time until the smallest query finishes
		dt := stage
		if now+dt > t {
			dt = t - now
		}
		kept2 := active[:0]
		for _, q := range active {
			amount := share * dt
			if amount > q.rem {
				amount = q.rem
			}
			done[q.id] += amount
			q.rem -= amount
			if q.rem > 1e-9 {
				kept2 = append(kept2, q)
			}
		}
		active = kept2
		now += dt
	}
	return done
}

// keptUnfinished returns the lost work of queries kept at rt but still
// unfinished at deadline t: under equal-weight fair sharing their finish
// times follow the stage model over the true remaining costs.
func keptUnfinished(kept []maintSnapshot, C, t float64, mode wm.LostWorkMode) float64 {
	states := make([]core.QueryState, len(kept))
	for i, s := range kept {
		states[i] = core.QueryState{ID: s.id, Remaining: s.trueRem, Weight: 1, Done: s.doneWork}
	}
	shadowCheck(states, C)
	prof := core.ComputeProfile(states, C)
	var doneBy map[int]float64
	if mode == wm.Case1CompletedWork {
		doneBy = workDoneBy(kept, C, t)
	}
	lost := 0.0
	for _, s := range kept {
		if prof.Finish[s.id] > t+1e-9 {
			lost += lostAtAbort(s, doneBy[s.id], mode)
		}
	}
	return lost
}

// evalNoPI: operations O1+O2 — nobody is aborted at rt; whatever has not
// finished by rt+t is aborted then.
func evalNoPI(snaps []maintSnapshot, C, t float64, mode wm.LostWorkMode) float64 {
	return keptUnfinished(snaps, C, t, mode)
}

// evalSinglePI: abort at rt every query whose single-query estimate c/s
// exceeds t (the single-query PI assumes current speeds persist and cannot
// anticipate the post-abort speed-up), then abort late finishers at rt+t.
func evalSinglePI(snaps []maintSnapshot, C, t float64, mode wm.LostWorkMode) float64 {
	lost := 0.0
	var kept []maintSnapshot
	for _, s := range snaps {
		est := core.SingleQueryRemainingTime(s.estRemain, s.speed)
		if est > t+1e-9 {
			lost += lostAtAbort(s, 0, mode)
			continue
		}
		kept = append(kept, s)
	}
	return lost + keptUnfinished(kept, C, t, mode)
}

// evalMultiPI: the §3.3 greedy knapsack over the PI's estimated remaining
// costs, then abort late finishers at rt+t.
func evalMultiPI(snaps []maintSnapshot, C, t float64, mode wm.LostWorkMode) (float64, error) {
	states := make([]core.QueryState, len(snaps))
	for i, s := range snaps {
		states[i] = core.QueryState{ID: s.id, Remaining: s.estRemain, Weight: 1, Done: s.doneWork}
	}
	plan, err := wm.PlanMaintenance(states, C, t, mode)
	if err != nil {
		return 0, err
	}
	return evalAbortSet(snaps, plan.Abort, C, t, mode), nil
}

// evalLimit: the theoretical limitation — the exact optimal abort set
// computed from the true run-to-completion costs.
func evalLimit(snaps []maintSnapshot, C, t float64, mode wm.LostWorkMode) (float64, error) {
	states := make([]core.QueryState, len(snaps))
	for i, s := range snaps {
		states[i] = core.QueryState{ID: s.id, Remaining: s.trueRem, Weight: 1, Done: s.doneWork}
	}
	plan, err := wm.PlanMaintenanceExact(states, C, t, mode)
	if err != nil {
		return 0, err
	}
	return evalAbortSet(snaps, plan.Abort, C, t, mode), nil
}

// evalAbortSet charges the lost work of queries aborted at rt plus that of
// kept queries that still miss the deadline.
func evalAbortSet(snaps []maintSnapshot, abort []int, C, t float64, mode wm.LostWorkMode) float64 {
	abortSet := make(map[int]bool, len(abort))
	for _, id := range abort {
		abortSet[id] = true
	}
	lost := 0.0
	var kept []maintSnapshot
	for _, s := range snaps {
		if abortSet[s.id] {
			lost += lostAtAbort(s, 0, mode)
			continue
		}
		kept = append(kept, s)
	}
	return lost + keptUnfinished(kept, C, t, mode)
}
