package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// MCQConfig configures the Multiple Concurrent Query experiment (§5.2.1,
// Figures 3 and 4): ten queries with Zipf(a=1.2) sizes, each starting at a
// random point of its execution, no further arrivals.
type MCQConfig struct {
	Seed        int64
	NumQueries  int     // default 10
	ZipfA       float64 // default 1.2
	MaxN        int     // default 150
	RateC       float64 // default 200 U/s
	Quantum     float64 // default 0.5 s
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	SampleEvery float64 // default 5 s
	// Templates are assigned round-robin to the queries (default: the
	// paper's published Q_i only). Mixing templates reproduces the paper's
	// "we repeated our experiments with other kinds of queries" check.
	Templates []workload.QueryTemplate
	Data      workload.DataConfig
}

func (c MCQConfig) withDefaults() MCQConfig {
	if c.NumQueries <= 0 {
		c.NumQueries = 10
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.2
	}
	if c.MaxN <= 0 {
		c.MaxN = 150
	}
	if c.RateC <= 0 {
		c.RateC = 200
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// MCQResult holds the reproduced Figures 3 and 4 plus headline numbers.
type MCQResult struct {
	FocusLabel string
	FocusID    int
	// Fig3: remaining execution time for the focus query over time —
	// actual, single-query estimate, multi-query estimate.
	Fig3 metrics.Figure
	// Fig4: the focus query's observed execution speed over time.
	Fig4 metrics.Figure
	// FinishTime is the focus query's actual finish time (s).
	FinishTime float64
	// SpeedRatio is final/initial observed speed (the paper sees ~5×).
	SpeedRatio float64
	// ErrStartSingle and ErrStartMulti are the relative errors of the two
	// estimators at time 0 (the paper's single-query PI is ~3× off).
	ErrStartSingle float64
	ErrStartMulti  float64
}

// RunMCQ executes the MCQ experiment once.
func RunMCQ(cfg MCQConfig) (*MCQResult, error) {
	cfg = cfg.withDefaults()
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()

	templates := cfg.Templates
	if len(templates) == 0 {
		templates = []workload.QueryTemplate{workload.TemplateRetail}
	}
	queries := make([]*sched.Query, 0, cfg.NumQueries)
	for i := 1; i <= cfg.NumQueries; i++ {
		q, err := buildPartQueryTmpl(ds, srv, i, zipf.Sample(rng), 0, templates[(i-1)%len(templates)])
		if err != nil {
			return nil, err
		}
		if err := prework(ds, q, rng, 0.9); err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	// Focus on the query with the largest remaining cost at time 0 (the
	// paper's "typical large query Q").
	var focus *sched.Query
	for _, q := range queries {
		if focus == nil || q.Runner.EstRemaining() > focus.Runner.EstRemaining() {
			focus = q
		}
	}
	for _, q := range queries {
		srv.Submit(q)
	}

	res := &MCQResult{
		FocusLabel: focus.Label,
		FocusID:    focus.ID,
		Fig3: metrics.Figure{
			Title:  "Figure 3: remaining query execution time estimated over time for Q (MCQ)",
			XLabel: "time (s)",
			YLabel: "estimated remaining query execution time (s)",
		},
		Fig4: metrics.Figure{
			Title:  "Figure 4: query execution speed monitored over time for Q (MCQ)",
			XLabel: "time (s)",
			YLabel: "query execution speed (U/s)",
		},
	}
	actual := res.Fig3.AddSeries("actual")
	single := res.Fig3.AddSeries("single-query estimate")
	multi := res.Fig3.AddSeries("multi-query estimate")
	speed := res.Fig4.AddSeries("speed")

	type sampleRec struct{ t, single, multi, speed float64 }
	var samples []sampleRec
	runSampled(srv, cfg.SampleEvery, func() {
		if focus.Status == sched.StatusFinished || focus.Status == sched.StatusFailed {
			return
		}
		sp := focus.ObservedSpeed()
		if sp <= 0 {
			sp = fairShare(srv, focus)
		}
		samples = append(samples, sampleRec{
			t:      srv.Now(),
			single: singleEstimate(srv, focus),
			multi:  multiEstimates(srv)[focus.ID],
			speed:  sp,
		})
	}, func() bool {
		return focus.Status == sched.StatusFinished || focus.Status == sched.StatusFailed
	})
	if focus.Status == sched.StatusFailed {
		return nil, fmt.Errorf("experiments: focus query failed: %w", focus.Err)
	}
	res.FinishTime = focus.FinishTime

	for _, s := range samples {
		actual.Add(s.t, res.FinishTime-s.t)
		single.Add(s.t, s.single)
		multi.Add(s.t, s.multi)
		speed.Add(s.t, s.speed)
	}
	if len(samples) > 0 {
		first, last := samples[0], samples[len(samples)-1]
		if first.speed > 0 {
			res.SpeedRatio = last.speed / first.speed
		}
		res.ErrStartSingle = metrics.RelErr(first.single, res.FinishTime-first.t)
		res.ErrStartMulti = metrics.RelErr(first.multi, res.FinishTime-first.t)
	}
	return res, nil
}
