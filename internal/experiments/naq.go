package experiments

import (
	"fmt"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// NAQConfig configures the Non-empty Admission Queue experiment (§5.2.2,
// Figure 5): three queries with N1=50, N2=10, N3=20 under an MPL of 2.
// Q1 and Q2 start; Q3 waits in the admission queue until Q2 finishes.
type NAQConfig struct {
	Seed        int64
	N1, N2, N3  int     // defaults 50, 10, 20
	MPL         int     // default 2
	RateC       float64 // default 70 U/s
	Quantum     float64 // default 0.5 s
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	SampleEvery float64 // default 5 s
	Data        workload.DataConfig
}

func (c NAQConfig) withDefaults() NAQConfig {
	if c.N1 <= 0 {
		c.N1 = 50
	}
	if c.N2 <= 0 {
		c.N2 = 10
	}
	if c.N3 <= 0 {
		c.N3 = 20
	}
	if c.MPL <= 0 {
		c.MPL = 2
	}
	if c.RateC <= 0 {
		c.RateC = 70
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// NAQResult holds the reproduced Figure 5 plus the event markers the paper
// draws as vertical lines.
type NAQResult struct {
	// Fig5: Q1's remaining time over time under four views — actual,
	// single-query, multi-query ignoring the queue, multi-query considering
	// the queue.
	Fig5 metrics.Figure
	// Q2Finish is when Q2 finishes and Q3 is admitted (Q3's start marker).
	Q2Finish float64
	// Q3Finish is Q3's finish marker.
	Q3Finish float64
	// Q1Finish is the actual completion of the observed query.
	Q1Finish float64
	// ErrStartSingle, ErrStartNoQueue, ErrStartQueue are the three
	// estimators' relative errors at time 0.
	ErrStartSingle  float64
	ErrStartNoQueue float64
	ErrStartQueue   float64
}

// RunNAQ executes the NAQ experiment once.
func RunNAQ(cfg NAQConfig) (*NAQResult, error) {
	cfg = cfg.withDefaults()
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	srv := sched.New(sched.Config{RateC: cfg.RateC, MPL: cfg.MPL, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()

	sizes := []int{cfg.N1, cfg.N2, cfg.N3}
	queries := make([]*sched.Query, 3)
	for i, n := range sizes {
		q, err := buildPartQuery(ds, srv, i+1, n, 0)
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}
	// Submission order matters: Q1 and Q2 take the two MPL slots, Q3 queues.
	for _, q := range queries {
		srv.Submit(q)
	}
	q1, q2, q3 := queries[0], queries[1], queries[2]

	res := &NAQResult{
		Fig5: metrics.Figure{
			Title:  "Figure 5: remaining query execution time estimated over time for Q1 (NAQ)",
			XLabel: "time (s)",
			YLabel: "estimated remaining query execution time (s)",
		},
	}
	actual := res.Fig5.AddSeries("actual")
	single := res.Fig5.AddSeries("single-query estimate")
	noQueue := res.Fig5.AddSeries("multi-query (ignoring admission queue)")
	withQueue := res.Fig5.AddSeries("multi-query (considering admission queue)")

	type sampleRec struct{ t, single, noQueue, withQueue float64 }
	var samples []sampleRec
	runSampled(srv, cfg.SampleEvery, func() {
		if q1.Status == sched.StatusFinished || q1.Status == sched.StatusFailed {
			return
		}
		running := srv.StateRunning()
		queued := srv.StateQueued()
		samples = append(samples, sampleRec{
			t:         srv.Now(),
			single:    singleEstimate(srv, q1),
			noQueue:   stageEstimates(running, cfg.RateC)[q1.ID],
			withQueue: core.MultiQueryWithQueue(running, queued, cfg.MPL, cfg.RateC)[q1.ID],
		})
	}, func() bool {
		return q1.Status == sched.StatusFinished || q1.Status == sched.StatusFailed
	})
	for _, q := range queries {
		if q.Status == sched.StatusFailed {
			return nil, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
		}
	}
	res.Q1Finish = q1.FinishTime
	res.Q2Finish = q2.FinishTime
	res.Q3Finish = q3.FinishTime

	for _, s := range samples {
		actual.Add(s.t, res.Q1Finish-s.t)
		single.Add(s.t, s.single)
		noQueue.Add(s.t, s.noQueue)
		withQueue.Add(s.t, s.withQueue)
	}
	if len(samples) > 0 {
		first := samples[0]
		rem := res.Q1Finish - first.t
		res.ErrStartSingle = metrics.RelErr(first.single, rem)
		res.ErrStartNoQueue = metrics.RelErr(first.noQueue, rem)
		res.ErrStartQueue = metrics.RelErr(first.withQueue, rem)
	}
	return res, nil
}
