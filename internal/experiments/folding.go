package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/workload"
)

// FoldingConfig configures the shared-scan folding experiment: a Zipf-skewed
// scan workload (hotter skew ⇒ more same-table collisions ⇒ more foldable
// work) replayed twice per cell, folding on and folding off. The design
// claim under test is that folding moves ONLY the engine-cost plane: the
// throughput and ETA series must coincide exactly between the two modes,
// while the saved-pages series separates them.
type FoldingConfig struct {
	Seed       int64
	Runs       int       // per cell; default 3
	NumQueries int       // per run; default 24
	ZipfAs     []float64 // table-size/popularity skew; default 1.05, 1.3, 1.6, 2.0
	RateC      float64   // processing rate; default 10
	Quantum    float64   // default 0.5
	MPL        int       // admission limit; default 4 (folding needs co-residents)
	Workers    int       // execute workers; results identical at any setting
	// Parallel caps worker goroutines across independent cells (0 =
	// GOMAXPROCS, 1 = sequential). Output is identical at every setting.
	Parallel int
}

func (c FoldingConfig) withDefaults() FoldingConfig {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 24
	}
	if len(c.ZipfAs) == 0 {
		c.ZipfAs = []float64{1.05, 1.3, 1.6, 2.0}
	}
	if c.RateC <= 0 {
		c.RateC = 10
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if c.MPL <= 0 {
		c.MPL = 4
	}
	return c
}

// FoldingResult carries three series pairs (fold-on vs fold-off): throughput
// and ETA error (time-0 and mid-flight samples), which must be identical
// between the modes, and the fraction of engine work the shared cursors
// deduplicated, which is where folding is allowed to show.
type FoldingResult struct {
	FigThroughput metrics.Figure
	FigETA        metrics.Figure
	FigSaved      metrics.Figure
}

// RunFoldingSweep replays the workload for every (zipf-a, fold, run) cell.
// Each cell submits NumQueries staggered SUM scans over the z-ladder tables
// (the table index drawn from the cell's Zipf), drains to quiescence, and
// reports throughput (queries per virtual second of makespan), mean relative
// error of the multi-query ETA (sampled at submission and once per drain tick
// mid-flight), and the saved fraction Σ(done−cost)/Σdone.
func RunFoldingSweep(cfg FoldingConfig) (*FoldingResult, error) {
	cfg = cfg.withDefaults()
	res := &FoldingResult{
		FigThroughput: metrics.Figure{
			Title:  "Shared-scan folding: throughput vs workload skew (must coincide)",
			XLabel: "zipf a",
			YLabel: "queries per virtual second",
		},
		FigETA: metrics.Figure{
			Title:  "Shared-scan folding: mean multi-query ETA error (time-0 + mid-flight) vs skew (must coincide)",
			XLabel: "zipf a",
			YLabel: "relative error (fraction)",
		},
		FigSaved: metrics.Figure{
			Title:  "Shared-scan folding: engine work deduplicated vs workload skew",
			XLabel: "zipf a",
			YLabel: "saved fraction of charged work",
		},
	}

	type cell struct {
		throughput float64
		errs       []float64
		done, cost float64
	}
	modes := []bool{false, true}
	nCells := len(cfg.ZipfAs) * len(modes) * cfg.Runs
	cells, err := runIndexed(cfg.Parallel, nCells, func(j int) (cell, error) {
		ai := j / (len(modes) * cfg.Runs)
		fold := modes[(j/cfg.Runs)%len(modes)]
		r := j % cfg.Runs
		// The seed offset deliberately ignores the fold mode: both modes of a
		// (zipf-a, run) pair replay the identical dataset and arrival stream,
		// so any charged-plane divergence is a bug, not noise.
		off := int64(ai)*104729 + int64(r)*7919
		dbSeed := datasetSeed(cfg.Seed, off)
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		zipf, err := workload.NewZipf(cfg.ZipfAs[ai], clusterTables)
		if err != nil {
			return cell{}, err
		}

		db, err := clusterSweepDB(dbSeed)
		if err != nil {
			return cell{}, err
		}
		m := service.New(db, service.Config{
			Sched: sched.Config{
				RateC: cfg.RateC, MPL: cfg.MPL, Quantum: cfg.Quantum,
				Workers: cfg.Workers, Fold: fold,
			},
			TickEvery: -1,
		})
		defer m.Close()

		// Every multi-query ETA the service publishes is scored against the
		// realized remaining time: one sample at submission (time 0) and one
		// per drain tick while the query runs (mid-flight).
		type pred struct {
			id  int
			at  float64
			eta float64
		}
		var preds []pred
		sample := func(id int, at float64, eta float64) {
			if !math.IsNaN(eta) && !math.IsInf(eta, 0) && eta > 0 {
				preds = append(preds, pred{id: id, at: at, eta: eta})
			}
		}
		clock := 0.0
		for i := 0; i < cfg.NumQueries; i++ {
			gap := cfg.Quantum * float64(rng.Intn(3))
			if gap > 0 {
				if err := m.Advance(gap); err != nil {
					return cell{}, err
				}
				clock += gap
			}
			// Hottest Zipf rank ⇒ largest ladder table: fold opportunities
			// concentrate on scans long enough to overlap (z0 is a single page,
			// below the registry's 2-page sharing floor).
			table := clusterTables - zipf.Sample(rng)
			view, err := m.Submit(service.SubmitRequest{
				Label:    fmt.Sprintf("q%d", i+1),
				SQL:      fmt.Sprintf("select sum(v) from z%d", table),
				Priority: rng.Intn(3),
			})
			if err != nil {
				return cell{}, err
			}
			sample(view.ID, clock, float64(view.MultiETA))
		}

		for i := 0; i < 10000; i++ {
			ov, err := m.Overview()
			if err != nil {
				return cell{}, err
			}
			if len(ov.Running) == 0 && len(ov.Queued) == 0 && len(ov.Scheduled) == 0 {
				break
			}
			for _, v := range ov.Running {
				sample(v.ID, clock, float64(v.MultiETA))
			}
			if err := m.Advance(cfg.Quantum); err != nil {
				return cell{}, err
			}
			clock += cfg.Quantum
		}

		ov, err := m.Overview()
		if err != nil {
			return cell{}, err
		}
		if len(ov.Finished) != cfg.NumQueries {
			return cell{}, fmt.Errorf("experiments: folding cell a=%g fold=%v finished %d of %d queries",
				cfg.ZipfAs[ai], fold, len(ov.Finished), cfg.NumQueries)
		}
		out := cell{throughput: float64(cfg.NumQueries) / clock}
		finish := make(map[int]float64, len(ov.Finished))
		for _, v := range ov.Finished {
			if v.Status != "finished" {
				return cell{}, fmt.Errorf("experiments: query %d ended %s: %s", v.ID, v.Status, v.Err)
			}
			out.done += v.Done
			out.cost += v.Cost
			finish[v.ID] = v.FinishTime
		}
		for _, p := range preds {
			if actual := finish[p.id] - p.at; actual > 0 {
				out.errs = append(out.errs, metrics.RelErr(p.eta, actual))
			}
		}
		if !fold && out.cost != out.done {
			return cell{}, fmt.Errorf("experiments: fold-off cell a=%g cost %g != done %g",
				cfg.ZipfAs[ai], out.cost, out.done)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	for mi, fold := range modes {
		name := "fold-off"
		if fold {
			name = "fold-on"
		}
		sT := res.FigThroughput.AddSeries(name)
		sE := res.FigETA.AddSeries(name)
		sS := res.FigSaved.AddSeries(name)
		for ai, a := range cfg.ZipfAs {
			var tps, errs []float64
			done, cost := 0.0, 0.0
			for r := 0; r < cfg.Runs; r++ {
				c := cells[ai*len(modes)*cfg.Runs+mi*cfg.Runs+r]
				tps = append(tps, c.throughput)
				errs = append(errs, c.errs...)
				done += c.done
				cost += c.cost
			}
			sT.Add(a, metrics.Mean(tps))
			sE.Add(a, metrics.Mean(errs))
			saved := 0.0
			if done > 0 {
				saved = (done - cost) / done
			}
			sS.Add(a, saved)
		}
	}
	return res, nil
}
