package experiments

import (
	"math"
	"testing"

	"mqpi/internal/workload"
)

// smallData is a scaled-down dataset config shared by the experiment tests.
var smallData = workload.DataConfig{LineitemRows: 30000, Seed: 5}

func TestRunDataset(t *testing.T) {
	res, err := RunDataset(DatasetConfig{Seed: 5, PartSizes: []int{10, 5}, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0].Relation != "lineitem" || res.Rows[0].Tuples != 30000 {
		t.Errorf("lineitem row: %+v", res.Rows[0])
	}
	if res.Rows[1].Tuples != 100 || res.Rows[2].Tuples != 50 {
		t.Errorf("part rows: %+v", res.Rows[1:])
	}
	for _, r := range res.Rows[1:] {
		if r.AvgMatch < 20 || r.AvgMatch > 40 {
			t.Errorf("%s avg matches = %g, want ~30", r.Relation, r.AvgMatch)
		}
	}
	out := res.Render()
	if len(out) == 0 {
		t.Error("empty render")
	}
}

func TestRunMCQShape(t *testing.T) {
	res, err := RunMCQ(MCQConfig{Seed: 5, NumQueries: 6, MaxN: 40, SampleEvery: 10, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: the multi-query estimate at time 0 is far more
	// accurate than the single-query estimate, which grossly overestimates.
	if res.ErrStartMulti >= res.ErrStartSingle {
		t.Errorf("multi %g should beat single %g at time 0", res.ErrStartMulti, res.ErrStartSingle)
	}
	if res.ErrStartMulti > 0.5 {
		t.Errorf("multi-query error at time 0 = %g, want small", res.ErrStartMulti)
	}
	// The focus query's speed must grow as peers finish.
	if res.SpeedRatio <= 1.5 {
		t.Errorf("speed ratio = %g, want substantial growth", res.SpeedRatio)
	}
	if res.FinishTime <= 0 {
		t.Error("no finish time")
	}
	if len(res.Fig3.Series) != 3 || len(res.Fig4.Series) != 1 {
		t.Errorf("figure series: %d, %d", len(res.Fig3.Series), len(res.Fig4.Series))
	}
	for _, s := range res.Fig3.Series {
		if len(s.Pts) < 2 {
			t.Errorf("series %s has %d points", s.Name, len(s.Pts))
		}
	}
}

func TestRunNAQShape(t *testing.T) {
	res, err := RunNAQ(NAQConfig{Seed: 5, SampleEvery: 10, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	// Event ordering: Q2 < Q3 < Q1 finishes.
	if !(res.Q2Finish < res.Q3Finish && res.Q3Finish < res.Q1Finish) {
		t.Errorf("event order: q2=%g q3=%g q1=%g", res.Q2Finish, res.Q3Finish, res.Q1Finish)
	}
	// The queue-aware estimator dominates at time 0.
	if res.ErrStartQueue >= res.ErrStartNoQueue || res.ErrStartQueue >= res.ErrStartSingle {
		t.Errorf("queue-aware %g should beat no-queue %g and single %g",
			res.ErrStartQueue, res.ErrStartNoQueue, res.ErrStartSingle)
	}
	if res.ErrStartQueue > 0.25 {
		t.Errorf("queue-aware error = %g, want near-exact", res.ErrStartQueue)
	}
	if len(res.Fig5.Series) != 4 {
		t.Errorf("figure series: %d", len(res.Fig5.Series))
	}
}

func TestRunSCQShape(t *testing.T) {
	cfg := SCQConfig{
		Seed:    5,
		Runs:    4,
		Lambdas: []float64{0, 0.05},
		Data:    smallData,
	}
	res, err := RunSCQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CBar <= 0 || res.StabilityLambda <= 0 {
		t.Errorf("calibration: c̄=%g λ*=%g", res.CBar, res.StabilityLambda)
	}
	// At λ=0 (stable, no arrivals) the multi-query estimate must be much
	// more accurate for the last-finishing query.
	s0 := res.Fig6.Series[0].YAt(0)
	m0 := res.Fig6.Series[1].YAt(0)
	if math.IsNaN(s0) || math.IsNaN(m0) || m0 >= s0 {
		t.Errorf("λ=0 last query: single %g vs multi %g", s0, m0)
	}
	// Average errors too.
	s0a := res.Fig7.Series[0].YAt(0)
	m0a := res.Fig7.Series[1].YAt(0)
	if m0a >= s0a {
		t.Errorf("λ=0 average: single %g vs multi %g", s0a, m0a)
	}
}

func TestRunSCQLambdaErrShape(t *testing.T) {
	cfg := SCQConfig{
		Seed:         5,
		Runs:         3,
		FixedLambda:  0.03,
		LambdaPrimes: []float64{0, 0.03, 0.2},
		Data:         smallData,
	}
	res, err := RunSCQLambdaErr(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The single-query series is flat across λ'.
	s := res.Fig9.Series[0]
	if len(s.Pts) != 3 || s.Pts[0].Y != s.Pts[1].Y || s.Pts[1].Y != s.Pts[2].Y {
		t.Errorf("single series should be constant: %+v", s.Pts)
	}
	// The multi-query error at the true λ must not exceed the error at a
	// wildly wrong λ'.
	m := res.Fig9.Series[1]
	atTrue := m.YAt(0.03)
	atWrong := m.YAt(0.2)
	if atTrue > atWrong {
		t.Errorf("error at true λ (%g) exceeds error at λ'=0.2 (%g)", atTrue, atWrong)
	}
	// Estimates stay finite even for assumed-unstable λ'.
	if math.IsInf(atWrong, 1) || math.IsNaN(atWrong) {
		t.Errorf("λ'=0.2 error = %g", atWrong)
	}
}

func TestRunSCQTrajectoryShape(t *testing.T) {
	cfg := SCQConfig{Seed: 5, SampleEvery: 10, Data: smallData}
	res, err := RunSCQTrajectory(cfg, []float64{0.04, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig10.Series) != 3 { // actual + two λ'
		t.Fatalf("series: %d", len(res.Fig10.Series))
	}
	if res.FocusFinish <= 0 {
		t.Error("no focus finish")
	}
	// Adaptivity: the estimate's error shrinks from the first to the last
	// sample as the PI corrects itself.
	actual := res.Fig10.Series[0]
	for _, s := range res.Fig10.Series[1:] {
		if len(s.Pts) < 2 {
			t.Fatalf("series %s: %d points", s.Name, len(s.Pts))
		}
		first := s.Pts[0]
		last := s.Pts[len(s.Pts)-1]
		firstErr := math.Abs(first.Y - actual.YAt(first.X))
		lastErr := math.Abs(last.Y - actual.YAt(last.X))
		if lastErr > firstErr {
			t.Errorf("%s: error grew from %g to %g", s.Name, firstErr, lastErr)
		}
	}
}

func TestRunMaintenanceShape(t *testing.T) {
	cfg := MaintenanceConfig{
		Seed:           5,
		Runs:           3,
		WarmupFinishes: 12,
		TFracs:         []float64{0.2, 0.5, 1.0},
		Data:           smallData,
	}
	res, err := RunMaintenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig11.Series) != 4 {
		t.Fatalf("series: %d", len(res.Fig11.Series))
	}
	noPI, single, multi, limit := res.Fig11.Series[0], res.Fig11.Series[1], res.Fig11.Series[2], res.Fig11.Series[3]
	for _, frac := range cfg.TFracs {
		l := limit.YAt(frac)
		m := multi.YAt(frac)
		// The theoretical limit lower-bounds every method.
		for _, s := range []float64{noPI.YAt(frac), single.YAt(frac), m} {
			if s < l-1e-9 {
				t.Errorf("t=%g: method UW %g below limit %g", frac, s, l)
			}
		}
		// UW/TW is a fraction.
		if m < 0 || m > 1 {
			t.Errorf("t=%g: multi UW/TW = %g", frac, m)
		}
	}
	// At t = tfinish the no-PI method loses nothing, the single-PI method
	// loses a lot (the paper's 67% effect).
	if noPI.YAt(1.0) != 0 {
		t.Errorf("no-PI at tfinish = %g, want 0", noPI.YAt(1.0))
	}
	if single.YAt(1.0) < 0.2 {
		t.Errorf("single-PI at tfinish = %g, want large (paper: 0.67)", single.YAt(1.0))
	}
	// Multi beats single on average for t < tfinish.
	if res.MultiVsSingle <= 0 {
		t.Errorf("multi-PI should beat single-PI on average: %g", res.MultiVsSingle)
	}
}

func TestCostModelFitIsLinear(t *testing.T) {
	ds, err := workload.BuildDataset(smallData)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := fitCostModel(ds)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Slope <= 0 {
		t.Fatalf("slope = %g", cm.Slope)
	}
	// The fit must predict the planner's cost for an intermediate size
	// within a few percent (cost is linear in N by construction).
	if err := ds.CreatePartTable(500, 8); err != nil {
		t.Fatal(err)
	}
	p, err := ds.DB.Plan(workload.QuerySQL(500))
	if err != nil {
		t.Fatal(err)
	}
	got := cm.Cost(8)
	want := p.EstCost()
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("cost model at N=8: fit %g vs plan %g", got, want)
	}
}

// TestRefinementBeatsOptimizerOnStaleStats demonstrates why the refined
// remaining-cost estimate exists: when optimizer statistics go stale (here
// the lineitem relation doubles after ANALYZE), the optimizer-only remaining
// cost collapses to zero mid-query while the refined estimate tracks the
// truth.
func TestRefinementBeatsOptimizerOnStaleStats(t *testing.T) {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.CreatePartTable(1, 10); err != nil {
		t.Fatal(err)
	}
	// Double lineitem behind the optimizer's back: every probe now returns
	// ~2× the rows the plan expects.
	cat := ds.DB.Catalog()
	li, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	maxKey := ds.MaxPartKey
	n := li.Rel.NumRows()
	for i := 0; i < n; i++ {
		row := li.Rel.Page(i / 64)[i%64]
		if err := cat.Insert("lineitem", row.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	_ = maxKey

	// True total cost, from an uninstrumented full run.
	ref, err := ds.DB.Prepare(workload.QuerySQL(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.CollectRows = false
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.WorkDone()

	r, err := ds.DB.Prepare(workload.QuerySQL(1))
	if err != nil {
		t.Fatal(err)
	}
	r.CollectRows = false
	for r.WorkDone() < total*0.6 {
		if _, done, err := r.Step(50); err != nil || done {
			t.Fatalf("done=%v err=%v before 60%% of the work", done, err)
		}
	}
	trueRem := total - r.WorkDone()
	refined := r.EstRemaining()
	optOnly := r.EstRemainingOptimizer()
	refErr := math.Abs(refined-trueRem) / trueRem
	optErr := math.Abs(optOnly-trueRem) / trueRem
	if refErr >= optErr {
		t.Errorf("refined err %.2f should beat optimizer-only err %.2f (true rem %g, refined %g, opt %g)",
			refErr, optErr, trueRem, refined, optOnly)
	}
	if refErr > 0.35 {
		t.Errorf("refined estimate too far off: %g vs true %g", refined, trueRem)
	}
}

func TestRunSpeedupPolicyComparison(t *testing.T) {
	res, err := RunSpeedup(SpeedupConfig{Seed: 5, Runs: 4, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 || len(res.MeanSavings) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	multi, heaviest, random := res.MeanSavings[0], res.MeanSavings[1], res.MeanSavings[2]
	// The paper's point: the PI-guided victim beats the heaviest-consumer
	// heuristic when the heavy consumer is about to finish.
	if multi <= heaviest {
		t.Errorf("multi-PI saving %g should beat heaviest-consumer %g", multi, heaviest)
	}
	if multi <= random {
		t.Errorf("multi-PI saving %g should beat random %g", multi, random)
	}
	if multi <= 0 {
		t.Errorf("blocking the PI victim must help: %g", multi)
	}
	// The §3.1 closed-form benefit must predict the realized saving well.
	if res.PredictedVsActual > 0.25*multi {
		t.Errorf("benefit prediction off by %gs on a %gs saving", res.PredictedVsActual, multi)
	}
}

func TestRunPriorityAssumption3(t *testing.T) {
	res, err := RunPriority(PriorityConfig{Seed: 5, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	// Assumption 3: speed ratio ≈ weight ratio (3).
	if res.SpeedRatio < 2.4 || res.SpeedRatio > 3.6 {
		t.Errorf("speed ratio = %g, want ~3", res.SpeedRatio)
	}
	// The weighted stage model stays accurate; the single-query PI does not.
	if res.ErrT0Multi >= res.ErrT0Single {
		t.Errorf("multi %g should beat single %g", res.ErrT0Multi, res.ErrT0Single)
	}
	if res.ErrT0Multi > 0.25 {
		t.Errorf("weighted multi-query error = %g, want small", res.ErrT0Multi)
	}
}

func TestRunRobustnessAssumption1(t *testing.T) {
	res, err := RunRobustness(RobustnessConfig{Seed: 5, Runs: 4, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: even with the constant-rate assumption violated, the multi-query
	// PI remains superior to the single-query PI.
	if res.ErrMulti >= res.ErrSingle {
		t.Errorf("multi %g should stay below single %g under contention", res.ErrMulti, res.ErrSingle)
	}
	// But it must be visibly degraded vs the assumption-satisfied case
	// (sanity: contention really bites).
	clean, err := RunMCQAblation(MCQConfig{Seed: 5, MaxN: 40, Data: smallData}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrMulti <= clean.MeanMultiErr {
		t.Logf("note: contention error %g vs clean %g", res.ErrMulti, clean.MeanMultiErr)
	}
}

// TestMixedTemplatesStillFavorMultiPI reproduces the paper's "we repeated
// our experiments with other kinds of queries; the results were similar":
// with three different query families in the mix, the multi-query PI still
// dominates the single-query PI at time 0.
func TestMixedTemplatesStillFavorMultiPI(t *testing.T) {
	res, err := RunMCQ(MCQConfig{
		Seed: 5, NumQueries: 6, MaxN: 40, SampleEvery: 10,
		Templates: []workload.QueryTemplate{
			workload.TemplateRetail, workload.TemplateMaxPrice, workload.TemplateGroupCount,
		},
		Data: smallData,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrStartMulti >= res.ErrStartSingle {
		t.Errorf("mixed templates: multi %g should beat single %g", res.ErrStartMulti, res.ErrStartSingle)
	}
	if res.ErrStartMulti > 0.5 {
		t.Errorf("mixed templates: multi error %g too large", res.ErrStartMulti)
	}
}

// TestTemplateVariantsRunAndCost checks every template parses, plans with an
// index-probe-dominated cost, and runs.
func TestTemplateVariantsRunAndCost(t *testing.T) {
	ds, err := workload.BuildDataset(smallData)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.CreatePartTable(1, 10); err != nil {
		t.Fatal(err)
	}
	for _, tmpl := range []workload.QueryTemplate{
		workload.TemplateRetail, workload.TemplateMaxPrice, workload.TemplateGroupCount,
	} {
		src := workload.QuerySQLVariant(1, tmpl)
		p, err := ds.DB.Plan(src)
		if err != nil {
			t.Fatalf("%s: %v", tmpl, err)
		}
		// 100 part rows × ~34 U per probe dominates.
		if p.EstCost() < 1000 {
			t.Errorf("%s: cost %g suspiciously small", tmpl, p.EstCost())
		}
		if _, _, work, err := ds.DB.Query(src); err != nil || work <= 0 {
			t.Errorf("%s: run failed: work=%g err=%v", tmpl, work, err)
		}
	}
}

// TestExperimentDeterminism: the same seed must reproduce every figure
// bit-for-bit — the property DESIGN.md promises.
func TestExperimentDeterminism(t *testing.T) {
	runAll := func() string {
		var out string
		mcq, err := RunMCQ(MCQConfig{Seed: 9, NumQueries: 5, MaxN: 30, SampleEvery: 10, Data: workload.DataConfig{LineitemRows: 30000, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		out += mcq.Fig3.Render() + mcq.Fig4.Render()
		naq, err := RunNAQ(NAQConfig{Seed: 9, SampleEvery: 20, Data: workload.DataConfig{LineitemRows: 30000, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		out += naq.Fig5.Render()
		m, err := RunMaintenance(MaintenanceConfig{Seed: 9, Runs: 2, WarmupFinishes: 8, TFracs: []float64{0.5}, Data: workload.DataConfig{LineitemRows: 30000, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		out += m.Fig11.Render()
		return out
	}
	a := runAll()
	b := runAll()
	if a != b {
		t.Error("experiments are not deterministic for a fixed seed")
	}
	if len(a) < 200 {
		t.Errorf("suspiciously short output: %d bytes", len(a))
	}
}

// TestRunMaintenanceCase1 exercises §3.3's Case 1 (lost work = completed
// work of aborted queries): the multi-PI method must still dominate, and at
// t=tfinish the no-PI method still loses nothing.
func TestRunMaintenanceCase1(t *testing.T) {
	res, err := RunMaintenance(MaintenanceConfig{
		Seed: 5, Runs: 3, WarmupFinishes: 12, Case1: true,
		TFracs: []float64{0.3, 0.7, 1.0},
		Data:   smallData,
	})
	if err != nil {
		t.Fatal(err)
	}
	noPI, single, multi, limit := res.Fig11.Series[0], res.Fig11.Series[1], res.Fig11.Series[2], res.Fig11.Series[3]
	if noPI.YAt(1.0) != 0 {
		t.Errorf("no-PI at tfinish = %g", noPI.YAt(1.0))
	}
	if res.MultiVsSingle <= 0 {
		t.Errorf("multi should beat single in Case 1 too: %g", res.MultiVsSingle)
	}
	for _, frac := range []float64{0.3, 0.7} {
		if multi.YAt(frac) < limit.YAt(frac)-1e-9 {
			t.Errorf("t=%g: multi %g below limit %g", frac, multi.YAt(frac), limit.YAt(frac))
		}
		// Case 1 losses are bounded by Case 2 losses (completed ≤ total).
		if multi.YAt(frac) > 1 {
			t.Errorf("t=%g: UW/TW %g out of range", frac, multi.YAt(frac))
		}
	}
	_ = single
}

// TestRunMPLSweep: the §2.3 queue-aware estimator must dominate the
// queue-blind one whenever an admission queue exists, and the two must
// coincide with no admission limit.
func TestRunMPLSweep(t *testing.T) {
	res, err := RunMPLSweep(MPLSweepConfig{Seed: 5, Runs: 2, MPLs: []int{2, 0}, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	blind, aware := res.Fig.Series[1], res.Fig.Series[2]
	if aware.YAt(2) >= blind.YAt(2) {
		t.Errorf("MPL 2: aware %g should beat blind %g", aware.YAt(2), blind.YAt(2))
	}
	if aware.YAt(2) > 0.2 {
		t.Errorf("MPL 2: queue-aware error %g should be small", aware.YAt(2))
	}
	// Unlimited MPL: no queue, the estimators coincide.
	if d := aware.YAt(0) - blind.YAt(0); d > 1e-9 || d < -1e-9 {
		t.Errorf("MPL 0: estimators should coincide, delta %g", d)
	}
}
