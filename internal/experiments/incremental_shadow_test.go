package experiments

import (
	"fmt"
	"math"
	"testing"

	"mqpi/internal/core"
)

// TestSweepsIncrementalProfileIdentity replays the paper's sweeps with the
// incremental shadow checker installed: every §2.2 closed-form evaluation any
// sweep performs also patches one run-long core.IncrementalProfile, and its
// materialized profile must be bit-identical (stage order, stage durations,
// finish times) to core.ComputeProfile built from scratch on the same states.
// The sweeps thus become a realistic corpus — staggered finishes, priority
// mixes, maintenance aborts, MPL churn — for the incremental structure, on
// top of the randomized differential tests in internal/core.
func TestSweepsIncrementalProfileIdentity(t *testing.T) {
	prof := core.NewIncrementalProfile()
	var out core.Profile
	checks := 0
	var firstDiff string
	incrementalShadow = func(states []core.QueryState, C float64) {
		checks++
		prof.Sync(states)
		prof.ProfileInto(C, &out)
		want := core.ComputeProfile(states, C)
		if firstDiff != "" {
			return
		}
		if len(out.Order) != len(want.Order) {
			firstDiff = fmt.Sprintf("check %d: %d stages, want %d", checks, len(out.Order), len(want.Order))
			return
		}
		for i, id := range want.Order {
			if out.Order[i] != id || math.Float64bits(out.StageDur[i]) != math.Float64bits(want.StageDur[i]) {
				firstDiff = fmt.Sprintf("check %d: stage %d = (q%d, %v), want (q%d, %v)",
					checks, i, out.Order[i], out.StageDur[i], id, want.StageDur[i])
				return
			}
		}
		for id, w := range want.Finish {
			got, ok := out.Finish[id]
			if !ok || (math.Float64bits(got) != math.Float64bits(w) && !(math.IsNaN(got) && math.IsNaN(w))) {
				firstDiff = fmt.Sprintf("check %d: q%d finish %v, want %v", checks, id, got, w)
				return
			}
		}
	}
	defer func() {
		shadowMu.Lock()
		incrementalShadow = nil
		shadowMu.Unlock()
	}()

	sweeps := []struct {
		name string
		run  func() error
	}{
		{"mcq", func() error {
			_, err := RunMCQ(MCQConfig{Seed: 5, NumQueries: 6, MaxN: 40, SampleEvery: 10, Data: smallData})
			return err
		}},
		{"naq", func() error {
			_, err := RunNAQ(NAQConfig{Seed: 5, SampleEvery: 10, Data: smallData})
			return err
		}},
		{"scq", func() error {
			_, err := RunSCQ(SCQConfig{Seed: 5, Runs: 2, Lambdas: []float64{0, 0.05}, Data: smallData})
			return err
		}},
		{"scq-lambda-err", func() error {
			_, err := RunSCQLambdaErr(SCQConfig{Seed: 5, Runs: 2, FixedLambda: 0.03, LambdaPrimes: []float64{0, 0.2}, Data: smallData})
			return err
		}},
		{"scq-trajectory", func() error {
			_, err := RunSCQTrajectory(SCQConfig{Seed: 5, SampleEvery: 10, Data: smallData}, []float64{0.05})
			return err
		}},
		{"maintenance", func() error {
			_, err := RunMaintenance(MaintenanceConfig{Seed: 5, Runs: 2, WarmupFinishes: 8, TFracs: []float64{0.5}, Data: smallData})
			return err
		}},
		{"priority", func() error {
			_, err := RunPriority(PriorityConfig{Seed: 5, Data: smallData})
			return err
		}},
		{"robustness", func() error {
			_, err := RunRobustness(RobustnessConfig{Seed: 5, Data: smallData})
			return err
		}},
		{"mpl-sweep", func() error {
			_, err := RunMPLSweep(MPLSweepConfig{Seed: 5, MPLs: []int{2, 0}, Data: smallData})
			return err
		}},
	}
	for _, sw := range sweeps {
		before := checks
		if err := sw.run(); err != nil {
			t.Fatalf("%s: %v", sw.name, err)
		}
		if firstDiff != "" {
			t.Fatalf("%s: incremental profile diverged from ComputeProfile: %s", sw.name, firstDiff)
		}
		if checks == before {
			t.Fatalf("%s: sweep performed no §2.2 evaluations; shadow corpus is vacuous", sw.name)
		}
	}
	t.Logf("incremental profile matched ComputeProfile bit-for-bit on %d sweep evaluations", checks)
}
