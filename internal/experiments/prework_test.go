package experiments

import (
	"math/rand"
	"testing"

	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// TestPreworkSurvivesInflatedEstimate: when the optimizer overestimates a
// query's cost (here: statistics describe a part table 10× its real size),
// the old prework could silently run the query to completion before the
// experiment's t=0. The fixed prework must leave the query strictly
// unfinished, advanced by its fraction of the *true* cost.
func TestPreworkSurvivesInflatedEstimate(t *testing.T) {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv := sched.New(sched.Config{RateC: 100})
	q, err := buildPartQuery(ds, srv, 1, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deflate the table behind the optimizer's back: stats still claim 200
	// rows, reality has ~20, so EstCost is wildly inflated.
	name := workload.PartTableName(1)
	if _, err := ds.DB.Exec("DELETE FROM " + name + " WHERE partkey > 100"); err != nil {
		t.Fatal(err)
	}
	estCost := q.Runner.Plan().EstCost()

	// Find a seed whose first Float64 draw gives a large fraction, so the
	// inflated budget certainly overruns the true cost.
	var seed int64
	for seed = 1; ; seed++ {
		if f := rand.New(rand.NewSource(seed)).Float64(); f > 0.85 {
			break
		}
	}
	rng := rand.New(rand.NewSource(seed))
	if err := prework(ds, q, rng, 0.9); err != nil {
		t.Fatal(err)
	}
	if q.Runner.Done() {
		t.Fatal("prework ran the query to completion before t=0")
	}
	done := q.Runner.WorkDone()
	if done <= 0 {
		t.Fatalf("prework did no work (WorkDone=%g)", done)
	}
	// The true cost must be far below the inflated estimate, and the work
	// done must be a strict fraction of it: let the query finish and check.
	var total float64
	for !q.Runner.Done() {
		c, _, err := q.Runner.Step(1000)
		if err != nil {
			t.Fatal(err)
		}
		total += c
	}
	trueCost := done + total
	if trueCost >= estCost {
		t.Fatalf("test setup failed to inflate the estimate: true %g vs est %g", trueCost, estCost)
	}
	if done >= trueCost {
		t.Fatalf("prework work %g should be < true cost %g", done, trueCost)
	}
}

// TestPreworkZeroFraction: a zero draw does nothing and is not an error.
func TestPreworkZeroFraction(t *testing.T) {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv := sched.New(sched.Config{RateC: 100})
	q, err := buildPartQuery(ds, srv, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := prework(ds, q, rand.New(rand.NewSource(1)), 0); err != nil {
		t.Fatal(err)
	}
	if q.Runner.WorkDone() != 0 {
		t.Errorf("maxFrac=0 should do no work, did %g", q.Runner.WorkDone())
	}
}
