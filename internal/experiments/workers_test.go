package experiments

import (
	"runtime"
	"testing"

	"mqpi/internal/workload"
)

// The three-phase tick must keep every figure byte-identical no matter how
// many execute-phase workers step the runners: credits are fixed serially
// before execution and settlement folds in admission order, so the virtual
// clock, work meters, and estimates never see the physical interleaving.
// This sweeps all seven experiment drivers at workers = 1, 2, NumCPU.
func TestWorkersByteIdenticalAcrossSweeps(t *testing.T) {
	data := workload.DataConfig{LineitemRows: 30000, Seed: 5}
	sweeps := []struct {
		name string
		run  func(workers int) string
	}{
		{"scq", func(w int) string {
			res, err := RunSCQ(SCQConfig{Seed: 3, Runs: 2, Lambdas: []float64{0, 0.05}, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig6.Render() + res.Fig7.Render()
		}},
		{"scq-lambda-err", func(w int) string {
			res, err := RunSCQLambdaErr(SCQConfig{Seed: 3, Runs: 2, FixedLambda: 0.03, LambdaPrimes: []float64{0, 0.05}, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig8.Render() + res.Fig9.Render()
		}},
		{"mpl-sweep", func(w int) string {
			res, err := RunMPLSweep(MPLSweepConfig{Seed: 3, Runs: 2, NumQueries: 6, MPLs: []int{2, 0}, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig.Render()
		}},
		{"maintenance", func(w int) string {
			res, err := RunMaintenance(MaintenanceConfig{Seed: 3, Runs: 2, NumQueries: 6, WarmupFinishes: 8, TFracs: []float64{0.3, 1.0}, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig11.Render()
		}},
		{"speedup", func(w int) string {
			res, err := RunSpeedup(SpeedupConfig{Seed: 3, Runs: 2, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig.Render()
		}},
		{"robustness", func(w int) string {
			res, err := RunRobustness(RobustnessConfig{Seed: 3, Runs: 2, Data: data, Parallel: 1, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig.Render()
		}},
		{"priority", func(w int) string {
			res, err := RunPriority(PriorityConfig{Seed: 3, Data: data, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			return res.Fig.Render()
		}},
	}
	counts := []int{2, runtime.NumCPU()}
	for _, sw := range sweeps {
		serial := sw.run(1)
		for _, w := range counts {
			if got := sw.run(w); got != serial {
				t.Errorf("%s: workers=%d output differs from workers=1:\n%s\nvs\n%s", sw.name, w, got, serial)
			}
		}
	}
}
