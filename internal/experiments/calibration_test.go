package experiments

import (
	"testing"

	"mqpi/internal/core"
)

// TestRunCalibrationCoverage is the acceptance gate for the ensemble's
// uncertainty bands: pooled across the seven-scenario battery, at least 80%
// of the reported intervals must contain the true finish time at the default
// band width.
func TestRunCalibrationCoverage(t *testing.T) {
	res, err := RunCalibration(CalibrationConfig{Seed: 5, Data: smallData})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 7 {
		t.Fatalf("battery ran %d scenarios, want 7", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		if sc.Samples == 0 {
			t.Errorf("scenario %s scored no intervals", sc.Name)
		}
		t.Logf("%-9s coverage %5.1f%% (%d/%d)", sc.Name, sc.Coverage*100, sc.Within, sc.Samples)
	}
	if res.Coverage < 0.80 {
		t.Errorf("pooled band coverage %.3f < 0.80 (%d/%d intervals)", res.Coverage, res.Within, res.Samples)
	}
	if len(res.Fig.Series) != 1 || len(res.Fig.Series[0].Pts) != 7 {
		t.Errorf("figure shape: %d series", len(res.Fig.Series))
	}
}

// TestRunCalibrationDeterministic pins the harness contract shared by every
// sweep: the scorecard is identical at any parallelism and worker setting.
func TestRunCalibrationDeterministic(t *testing.T) {
	a, err := RunCalibration(CalibrationConfig{Seed: 5, Data: smallData, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCalibration(CalibrationConfig{Seed: 5, Data: smallData, Parallel: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d", len(a.Scenarios), len(b.Scenarios))
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Errorf("scenario %d differs across parallelism: %+v vs %+v", i, a.Scenarios[i], b.Scenarios[i])
		}
	}
}

// TestRunCalibrationRejectsBadEstimator pins config validation.
func TestRunCalibrationRejectsBadEstimator(t *testing.T) {
	if _, err := RunCalibration(CalibrationConfig{Seed: 1, Estimator: "oracle"}); err == nil {
		t.Fatal("RunCalibration accepted estimator \"oracle\"")
	}
	if _, err := RunCalibration(CalibrationConfig{Seed: 1, Estimator: core.EstimatorStage, Data: smallData}); err != nil {
		// Stage mode is pointless (degenerate bands) but must still be legal.
		t.Fatalf("stage mode: %v", err)
	}
}
