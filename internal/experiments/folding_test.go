package experiments

import (
	"math"
	"testing"

	"mqpi/internal/metrics"
)

// TestFoldingSweep runs a reduced folding sweep and checks the experiment's
// headline claims: the charged plane (throughput, ETA error) is bit-identical
// fold-on vs fold-off, fold-off saves exactly nothing, and fold-on saves
// engine work at the hottest skew.
func TestFoldingSweep(t *testing.T) {
	cfg := FoldingConfig{
		Seed: 5, Runs: 2, NumQueries: 16,
		ZipfAs:   []float64{1.1, 2.0},
		Parallel: 1,
	}
	res, err := RunFoldingSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.FigSaved.Series[0], res.FigSaved.Series[1]
	if off.Name != "fold-off" || on.Name != "fold-on" {
		t.Fatalf("series order: %s, %s", off.Name, on.Name)
	}
	for _, p := range off.Pts {
		if p.Y != 0 {
			t.Errorf("fold-off saved %g of charged work at a=%g; folding disabled must cost full price", p.Y, p.X)
		}
	}
	last := on.Pts[len(on.Pts)-1]
	if last.Y <= 0 {
		t.Errorf("fold-on saved nothing at the hottest skew a=%g; folding never engaged", last.X)
	}

	// The charged plane must coincide exactly: folding changes only what the
	// engine pays, never what queries are charged or when they finish.
	for _, fig := range []struct {
		name string
		fig  *metrics.Figure
	}{
		{"throughput", &res.FigThroughput},
		{"eta", &res.FigETA},
	} {
		a, b := fig.fig.Series[0].Pts, fig.fig.Series[1].Pts
		if len(a) != len(b) {
			t.Fatalf("%s: point counts differ: %d vs %d", fig.name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
				math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) {
				t.Errorf("%s point %d: fold-off (%v, %v) != fold-on (%v, %v)",
					fig.name, i, a[i].X, a[i].Y, b[i].X, b[i].Y)
			}
		}
	}

	// Bit-identical across pool parallelism and scheduler worker counts.
	par, err := RunFoldingSweep(FoldingConfig{
		Seed: 5, Runs: 2, NumQueries: 16,
		ZipfAs:   []float64{1.1, 2.0},
		Parallel: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		name string
		a, b string
	}{
		{"throughput", res.FigThroughput.CSV(), par.FigThroughput.CSV()},
		{"eta", res.FigETA.CSV(), par.FigETA.CSV()},
		{"saved", res.FigSaved.CSV(), par.FigSaved.CSV()},
	} {
		if pair.a != pair.b {
			t.Errorf("%s figure differs across parallelism:\n%s\nvs\n%s", pair.name, pair.a, pair.b)
		}
	}
}
