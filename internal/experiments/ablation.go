package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// AblationResult reports how the multi-query PI's accuracy depends on the
// quality of its remaining-cost inputs (DESIGN.md's "refined remaining cost"
// ablation, relaxing Assumption 2).
type AblationResult struct {
	// MeanMultiErr is the focus query's multi-query estimate error averaged
	// over all samples of its lifetime.
	MeanMultiErr float64
	// ErrT0 is the error of the first sample.
	ErrT0 float64
	// OptimizerOnly records which estimator variant produced the numbers.
	OptimizerOnly bool
}

// RunMCQAblation runs the MCQ scenario feeding the multi-query PI either
// refined remaining costs (the default machinery) or raw optimizer-remaining
// costs (plan estimate minus work done), and measures the estimate error
// over the focus query's lifetime.
func RunMCQAblation(cfg MCQConfig, optimizerOnly bool) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	ds, err := workload.BuildDataset(cfg.Data)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	srv := sched.New(sched.Config{RateC: cfg.RateC, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
	queries := make([]*sched.Query, 0, cfg.NumQueries)
	for i := 1; i <= cfg.NumQueries; i++ {
		q, err := buildPartQuery(ds, srv, i, zipf.Sample(rng), 0)
		if err != nil {
			return nil, err
		}
		if err := prework(ds, q, rng, 0.9); err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	var focus *sched.Query
	for _, q := range queries {
		if focus == nil || q.Runner.EstRemaining() > focus.Runner.EstRemaining() {
			focus = q
		}
	}
	for _, q := range queries {
		srv.Submit(q)
	}

	states := func() []core.QueryState {
		out := make([]core.QueryState, 0, len(srv.Running()))
		for _, q := range srv.Running() {
			rem := q.Runner.EstRemaining()
			if optimizerOnly {
				rem = q.Runner.EstRemainingOptimizer()
			}
			w := 0.0
			if q.Status == sched.StatusRunning {
				w = srv.WeightOf(q.Priority)
			}
			out = append(out, core.QueryState{ID: q.ID, Remaining: rem, Weight: w, Done: q.Runner.WorkDone()})
		}
		return out
	}

	type sampleRec struct{ t, est float64 }
	var samples []sampleRec
	runSampled(srv, cfg.SampleEvery, func() {
		if focus.Status == sched.StatusFinished || focus.Status == sched.StatusFailed {
			return
		}
		samples = append(samples, sampleRec{
			t:   srv.Now(),
			est: stageEstimates(states(), cfg.RateC)[focus.ID],
		})
	}, func() bool {
		return focus.Status == sched.StatusFinished || focus.Status == sched.StatusFailed
	})
	if focus.Status == sched.StatusFailed {
		return nil, fmt.Errorf("experiments: focus query failed: %w", focus.Err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("experiments: no samples collected")
	}
	var errs []float64
	for _, s := range samples {
		errs = append(errs, metrics.RelErr(s.est, focus.FinishTime-s.t))
	}
	return &AblationResult{
		MeanMultiErr:  metrics.Mean(errs),
		ErrT0:         errs[0],
		OptimizerOnly: optimizerOnly,
	}, nil
}
