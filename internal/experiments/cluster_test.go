package experiments

import "testing"

// TestClusterSweep runs a reduced sweep and checks the structural claims:
// every cell completes, throughput does not collapse when shards are added,
// and the output is bit-identical across pool parallelism levels.
func TestClusterSweep(t *testing.T) {
	cfg := ClusterSweepConfig{
		Seed: 3, Runs: 2, NumQueries: 10,
		Shards:   []int{1, 2},
		Policies: []string{"round-robin", "least-loaded"},
		Parallel: 1,
	}
	seq, err := RunClusterSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.FigThroughput.Series) != 2 || len(seq.FigETA.Series) != 2 {
		t.Fatalf("series: %d throughput, %d eta", len(seq.FigThroughput.Series), len(seq.FigETA.Series))
	}
	for _, s := range seq.FigThroughput.Series {
		if len(s.Pts) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Pts))
		}
		for _, p := range s.Pts {
			if p.Y <= 0 {
				t.Errorf("series %s at shards=%g: throughput %g", s.Name, p.X, p.Y)
			}
		}
		// Doubling per-shard capacity must not make the workload slower.
		if s.Pts[1].Y < s.Pts[0].Y*0.99 {
			t.Errorf("series %s: throughput fell with more shards: %g -> %g",
				s.Name, s.Pts[0].Y, s.Pts[1].Y)
		}
	}
	for _, s := range seq.FigETA.Series {
		for _, p := range s.Pts {
			if p.Y < 0 {
				t.Errorf("eta series %s at shards=%g: negative error %g", s.Name, p.X, p.Y)
			}
		}
	}

	par, err := RunClusterSweep(ClusterSweepConfig{
		Seed: 3, Runs: 2, NumQueries: 10,
		Shards:   []int{1, 2},
		Policies: []string{"round-robin", "least-loaded"},
		Parallel: 4, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.FigThroughput.CSV() != par.FigThroughput.CSV() {
		t.Errorf("throughput figure differs across parallelism:\n%s\nvs\n%s",
			seq.FigThroughput.CSV(), par.FigThroughput.CSV())
	}
	if seq.FigETA.CSV() != par.FigETA.CSV() {
		t.Errorf("eta figure differs across parallelism:\n%s\nvs\n%s",
			seq.FigETA.CSV(), par.FigETA.CSV())
	}
}
