package experiments

import (
	"fmt"
	"math/rand"

	"mqpi/internal/core"
	"mqpi/internal/metrics"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

// MPLSweepConfig configures the §2.3 extension experiment: with a fixed
// batch of queries, a lower multiprogramming limit puts more of them in the
// admission queue — exactly the regime where the queue-aware estimator of
// §2.3 should increasingly dominate the queue-blind one. The paper shows the
// effect at one point (NAQ, MPL 2, one queued query); this sweeps it.
type MPLSweepConfig struct {
	Seed       int64
	Runs       int     // default 5
	NumQueries int     // batch size; default 12
	MaxN       int     // default 30
	ZipfA      float64 // default 1.2
	RateC      float64 // default 100
	Quantum    float64 // default 0.5
	// Workers sets the scheduler's execute-phase worker count
	// (0/1 = inline serial). Results are bit-identical at every setting.
	Workers int
	// MPLs are the admission limits to sweep (default 2, 4, 8, 0=unlimited).
	MPLs []int
	Data workload.DataConfig

	// Parallel caps the worker goroutines used for independent runs:
	// 0 = GOMAXPROCS, 1 = sequential. Output is identical at every setting.
	Parallel int
}

func (c MPLSweepConfig) withDefaults() MPLSweepConfig {
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 12
	}
	if c.MaxN <= 0 {
		c.MaxN = 30
	}
	if c.ZipfA <= 0 {
		c.ZipfA = 1.2
	}
	if c.RateC <= 0 {
		c.RateC = 100
	}
	if c.Quantum <= 0 {
		c.Quantum = 0.5
	}
	if len(c.MPLs) == 0 {
		c.MPLs = []int{2, 4, 8, 0}
	}
	if c.Data.Seed == 0 {
		c.Data.Seed = c.Seed
	}
	return c
}

// MPLSweepResult reports mean time-0 estimate errors per MPL for the three
// estimators (single-query, queue-blind multi, queue-aware multi).
type MPLSweepResult struct {
	Fig metrics.Figure
}

// RunMPLSweep submits the same batch of queries under each MPL, takes time-0
// estimates for every query (running or queued), and measures relative
// errors against the actual finish times.
func RunMPLSweep(cfg MPLSweepConfig) (*MPLSweepResult, error) {
	cfg = cfg.withDefaults()
	zipf, err := workload.NewZipf(cfg.ZipfA, cfg.MaxN)
	if err != nil {
		return nil, err
	}
	res := &MPLSweepResult{
		Fig: metrics.Figure{
			Title:  "Extension: admission-queue visibility (§2.3) — mean time-0 error vs MPL",
			XLabel: "MPL (0 = unlimited)",
			YLabel: "relative error (fraction)",
		},
	}
	sSingle := res.Fig.AddSeries("single-query estimate")
	sBlind := res.Fig.AddSeries("multi-query (ignoring admission queue)")
	sAware := res.Fig.AddSeries("multi-query (considering admission queue)")

	// One pool job per (MPL, run) cell; each job simulates the whole batch on
	// a private dataset and returns the per-query errors in submission order,
	// so aggregation below reproduces the sequential append order exactly.
	type mplCell struct{ eS, eB, eA []float64 }
	cells, err := runIndexed(cfg.Parallel, len(cfg.MPLs)*cfg.Runs, func(j int) (mplCell, error) {
		mpl, r := cfg.MPLs[j/cfg.Runs], j%cfg.Runs
		off := int64(mpl)*6977 + int64(r)*7919
		dsRun, err := workload.SharedCache().HydrateSeeded(cfg.Data, datasetSeed(cfg.Seed, off))
		if err != nil {
			return mplCell{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + off))
		srv := sched.New(sched.Config{RateC: cfg.RateC, MPL: mpl, Quantum: cfg.Quantum, Workers: cfg.Workers})
	defer srv.Close()
		var queries []*sched.Query
		for i := 1; i <= cfg.NumQueries; i++ {
			q, err := buildPartQuery(dsRun, srv, i, zipf.Sample(rng), 0)
			if err != nil {
				return mplCell{}, err
			}
			queries = append(queries, q)
			srv.Submit(q)
		}
		running := srv.StateRunning()
		queued := srv.StateQueued()
		single := make(map[int]float64, len(queries))
		for _, q := range srv.Running() {
			single[q.ID] = singleEstimate(srv, q)
		}
		// The single-query PI cannot see queued queries at all; it has
		// no estimate for them (scored as the blind-worst: their own
		// cost at full speed, the only thing a per-query estimator
		// could say).
		for _, q := range srv.Queued() {
			single[q.ID] = q.Runner.EstRemaining() / cfg.RateC
		}
		blind := stageEstimates(running, cfg.RateC)
		aware := core.MultiQueryWithQueue(running, queued, mpl, cfg.RateC)
		// Queue-blind has no prediction for queued queries either; give
		// it the same fallback as the single PI.
		for _, q := range srv.Queued() {
			blind[q.ID] = single[q.ID]
		}
		srv.RunUntilIdle(1e9)
		var cell mplCell
		for _, q := range queries {
			if q.Status == sched.StatusFailed {
				return mplCell{}, fmt.Errorf("experiments: query %s failed: %w", q.Label, q.Err)
			}
			cell.eS = append(cell.eS, metrics.RelErr(single[q.ID], q.FinishTime))
			cell.eB = append(cell.eB, metrics.RelErr(blind[q.ID], q.FinishTime))
			cell.eA = append(cell.eA, metrics.RelErr(aware[q.ID], q.FinishTime))
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mpl := range cfg.MPLs {
		var eS, eB, eA []float64
		for r := 0; r < cfg.Runs; r++ {
			c := cells[mi*cfg.Runs+r]
			eS = append(eS, c.eS...)
			eB = append(eB, c.eB...)
			eA = append(eA, c.eA...)
		}
		x := float64(mpl)
		sSingle.Add(x, metrics.Mean(eS))
		sBlind.Add(x, metrics.Mean(eB))
		sAware.Add(x, metrics.Mean(eA))
	}
	return res, nil
}
