package core

import (
	"fmt"
	"math"
	"sort"
)

// This file is the pluggable estimate plane: a small interface over the
// §2.2–2.4 stage model plus two independent remaining-time estimators and an
// online blender. Following "A Statistical Approach Towards Robust Progress
// Estimation" (König et al.) no single estimator dominates across workloads,
// so the ensemble runs all members per query, weights them by observed
// rolling error (per-query absolute ETA error measured at finish), and —
// following "Uncertainty Aware Query Execution Time Prediction" (Wu et al.) —
// reports an uncertainty band around the blended point, not just the mean.
//
// The "stage" member wraps the existing IncrementalEstimator with unchanged
// numerics, and the stage *mode* is a pure pass-through: its outputs are
// bit-identical to the pre-ensemble estimate path (the sim's I13 invariant
// pins this), so the refactor changes nothing until a caller opts into the
// ensemble.

// Estimator modes accepted by NewEstimator (and the service's -estimator
// flag). "stage" is the classic single-pipeline stage model; "cost" and
// "speed" force a single ensemble member; "ensemble" blends all members
// online by rolling error.
const (
	EstimatorStage    = "stage"
	EstimatorCost     = "cost"
	EstimatorSpeed    = "speed"
	EstimatorEnsemble = "ensemble"
)

// EstimatorModes lists the valid estimator modes in display order.
func EstimatorModes() []string {
	return []string{EstimatorStage, EstimatorCost, EstimatorSpeed, EstimatorEnsemble}
}

// ValidEstimator rejects unknown estimator modes with a message listing the
// valid ones ("" is accepted as the default, stage).
func ValidEstimator(mode string) error {
	switch mode {
	case "", EstimatorStage, EstimatorCost, EstimatorSpeed, EstimatorEnsemble:
		return nil
	}
	valid := EstimatorModes()
	return fmt.Errorf("core: unknown estimator %q (valid: %s, %s, %s, %s)",
		mode, valid[0], valid[1], valid[2], valid[3])
}

// Ensemble member indices. MemberNames gives the canonical exposition order
// used for weights maps and the mqpi_estimator_weight{member=...} gauges.
const (
	memberStage = iota
	memberCost
	memberSpeed
	numMembers
)

// MemberNames names the ensemble members in index order.
var MemberNames = [numMembers]string{EstimatorStage, EstimatorCost, EstimatorSpeed}

// Interval is an uncertainty band in seconds. Low <= High; a degenerate band
// (Low == High == point) means the estimator reports no uncertainty.
type Interval struct {
	Low  float64
	High float64
}

// Estimator is the pluggable estimate plane: anything that turns one
// immutable EstimateInput plus the published calibration state into the full
// estimate bundle. Implementations may keep internal acceleration structures
// (the stage member's incremental profile), but their output must be a pure
// function of (input, state) — the service computes estimates on arbitrary
// goroutines and caches them per snapshot epoch.
type Estimator interface {
	// Mode reports which estimator this is (one of EstimatorModes).
	Mode() string
	// Estimates computes the bundle. The zero EnsembleState means
	// "uncalibrated": equal blend weights, no speed history.
	Estimates(in EstimateInput, st EnsembleState) Estimates
}

// NewEstimator builds the estimator for a mode ("" = stage). The stage
// estimator is the pre-ensemble pipeline verbatim; every other mode runs the
// member ensemble with a fixed or error-weighted selection.
func NewEstimator(mode string) (Estimator, error) {
	if err := ValidEstimator(mode); err != nil {
		return nil, err
	}
	switch mode {
	case "", EstimatorStage:
		return &stageEstimator{}, nil
	default:
		return &ensembleEstimator{mode: mode}, nil
	}
}

// stageEstimator is the classic path: the incremental stage model, unchanged
// numerics, degenerate bands (Low == High == point). Not safe for concurrent
// use (callers serialize, as they already did for IncrementalEstimator).
type stageEstimator struct {
	inc IncrementalEstimator
}

func (e *stageEstimator) Mode() string { return EstimatorStage }

func (e *stageEstimator) Estimates(in EstimateInput, _ EnsembleState) Estimates {
	return e.inc.Estimates(in)
}

// EnsembleState is the published calibration state the ensemble members and
// blender read: immutable once published, safe to share across goroutines.
// The zero value is a valid "uncalibrated" state.
type EnsembleState struct {
	// Errors maps member name to its rolling mean absolute ETA error in
	// seconds, updated from finish-time residuals (nil = no observations).
	Errors map[string]float64
	// SpeedEWMA maps query ID to the speed-history member's smoothed observed
	// speed in U/s (nil = no history).
	SpeedEWMA map[int]float64
	// Samples counts the finish residuals folded into Errors.
	Samples int
}

// ensembleEstimator runs all three members and selects or blends per mode.
type ensembleEstimator struct {
	mode string
	inc  IncrementalEstimator // stage member backing structure
}

func (e *ensembleEstimator) Mode() string { return e.mode }

// memberWeight floors a rolling error when inverting it into a weight, so a
// member with a (so far) zero observed error cannot monopolize the blend.
const errWeightFloor = 1e-3

// blendWeights derives the member weights for a mode from the calibration
// state: forced single-member for cost/speed, inverse rolling error for the
// ensemble (equal weights until the first finish residual lands).
func blendWeights(mode string, st EnsembleState) [numMembers]float64 {
	var w [numMembers]float64
	switch mode {
	case EstimatorCost:
		w[memberCost] = 1
		return w
	case EstimatorSpeed:
		w[memberSpeed] = 1
		return w
	}
	if st.Samples == 0 || len(st.Errors) == 0 {
		for i := range w {
			w[i] = 1.0 / numMembers
		}
		return w
	}
	sum := 0.0
	for i, name := range MemberNames {
		w[i] = 1 / (st.Errors[name] + errWeightFloor)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// bandRelFloor is the default band's relative half-width floor: even with no
// calibration history yet, the reported interval spans at least ±10% of the
// point estimate (plus the member spread). The calibration sweep measures the
// fraction of true finish times inside this default band.
const bandRelFloor = 0.10

// Estimates runs the member ensemble. The stage member reuses the same
// incremental structure (and the same queue/arrival fallbacks) as the classic
// path; the cost and speed members are O(n) closed forms over the input.
func (e *ensembleEstimator) Estimates(in EstimateInput, st EnsembleState) Estimates {
	base := e.inc.Estimates(in)
	stage := make(map[int]float64, len(base.PerQuery))
	for id, b := range base.PerQuery {
		stage[id] = b.MultiQuery
	}
	cost := costMemberETAs(in)
	speed := speedMemberETAs(in, st.SpeedEWMA)

	w := blendWeights(e.mode, st)
	weights := make(map[string]float64, numMembers)
	for i, name := range MemberNames {
		weights[name] = w[i]
	}

	// wErr is the error-calibrated half-width component: the blend-weighted
	// rolling error of the members (0 until residuals arrive).
	wErr := 0.0
	for i, name := range MemberNames {
		wErr += w[i] * st.Errors[name]
	}

	out := Estimates{
		PerQuery:  make(map[int]Estimate, len(base.PerQuery)),
		Quiescent: base.Quiescent,
		Weights:   weights,
	}
	out.members[memberStage] = stage
	out.members[memberCost] = cost
	out.members[memberSpeed] = speed
	for id, b := range base.PerQuery {
		etas := [numMembers]float64{stage[id], cost[id], speed[id]}
		point, lo, hi := blendPoint(etas, w)
		if !isFiniteETA(point) {
			out.PerQuery[id] = Estimate{
				SingleQuery: b.SingleQuery, MultiQuery: point,
				ETALow: point, ETAHigh: point,
			}
			continue
		}
		half := wErr + bandRelFloor*point
		low := lo - half
		if low < 0 {
			low = 0
		}
		out.PerQuery[id] = Estimate{
			SingleQuery: b.SingleQuery,
			MultiQuery:  point,
			ETALow:      low,
			ETAHigh:     hi + half,
		}
	}
	return out
}

func isFiniteETA(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// blendPoint folds the member ETAs into the blended point plus the raw member
// spread [lo, hi]. Members with non-finite ETAs drop out (their weight is
// redistributed); if no member is finite the point is +Inf.
func blendPoint(etas [numMembers]float64, w [numMembers]float64) (point, lo, hi float64) {
	sumW, sum := 0.0, 0.0
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, eta := range etas {
		if !isFiniteETA(eta) || w[i] <= 0 {
			continue
		}
		sumW += w[i]
		sum += w[i] * eta
		if eta < lo {
			lo = eta
		}
		if eta > hi {
			hi = eta
		}
	}
	if sumW <= 0 {
		inf := math.Inf(1)
		return inf, inf, inf
	}
	return sum / sumW, lo, hi
}

// runnableShare computes each running query's weighted fair share C·w/W over
// the runnable set — the model speed both heuristic members fall back to when
// no (or no trustworthy) observation exists.
func runnableShare(in EstimateInput) (share map[int]float64, C float64) {
	C = sanitizeRate(in.RateC)
	share = make(map[int]float64, len(in.Running))
	W := 0.0
	for _, q := range in.Running {
		if s := sanitize(q); s.Weight > 0 {
			W += s.Weight
		}
	}
	for _, q := range in.Running {
		s := sanitize(q)
		if s.Weight <= 0 || W <= 0 || C <= 0 {
			share[s.ID] = 0
			continue
		}
		share[s.ID] = C * (s.Weight / W)
	}
	return share, C
}

// queuedBacklogETAs gives every queued query the optimizer-cost view of its
// wait: all runnable remaining work plus the queue ahead of it drains at the
// aggregate rate C before its own cost does.
func queuedBacklogETAs(in EstimateInput, C float64, out map[int]float64) {
	backlog := 0.0
	for _, q := range in.Running {
		if s := sanitize(q); s.Weight > 0 {
			backlog += s.Remaining
		}
	}
	for _, q := range in.Queued {
		s := sanitize(q)
		backlog += s.Remaining
		if C <= 0 {
			out[s.ID] = math.Inf(1)
			continue
		}
		out[s.ID] = backlog / C
	}
}

// costMemberETAs is the optimizer-cost member: remaining cost divided by a
// blended speed — the mean of the observed execution speed and the model's
// fair share C·w/W (falling back to the share alone before any observation).
// It reacts faster than the stage model when observed speeds drift from the
// model (Assumption 1 violations) but ignores upcoming stage transitions.
func costMemberETAs(in EstimateInput) map[int]float64 {
	share, C := runnableShare(in)
	out := make(map[int]float64, len(in.Running)+len(in.Queued))
	for _, q := range in.Running {
		s := sanitize(q)
		sp := share[s.ID]
		if obs := in.Speeds[s.ID]; obs > 0 && sp > 0 {
			sp = (obs + sp) / 2
		}
		out[s.ID] = remainingOver(s.Remaining, sp)
	}
	queuedBacklogETAs(in, C, out)
	return out
}

// speedMemberETAs is the speed-history member: remaining cost divided by the
// EWMA of the query's observed speed — a pure extrapolation of measured
// throughput, robust to a mis-specified rate C but blind to the future mix.
func speedMemberETAs(in EstimateInput, ewma map[int]float64) map[int]float64 {
	share, C := runnableShare(in)
	out := make(map[int]float64, len(in.Running)+len(in.Queued))
	for _, q := range in.Running {
		s := sanitize(q)
		if s.Weight <= 0 {
			out[s.ID] = remainingOver(s.Remaining, 0)
			continue
		}
		sp := ewma[s.ID]
		if sp <= 0 {
			sp = in.Speeds[s.ID]
		}
		if sp <= 0 {
			sp = share[s.ID]
		}
		out[s.ID] = remainingOver(s.Remaining, sp)
	}
	queuedBacklogETAs(in, C, out)
	return out
}

// remainingOver is c/s with the blocked/degenerate conventions of
// SingleQueryRemainingTime.
func remainingOver(remaining, speed float64) float64 {
	if remaining <= 0 {
		return 0
	}
	if speed <= 0 {
		return math.Inf(1)
	}
	return remaining / speed
}

// speedEWMAAlpha smooths the speed-history member's per-query speed; errAlpha
// smooths the per-member rolling ETA error fed by finish residuals.
const (
	speedEWMAAlpha = 0.3
	errAlpha       = 0.25
)

// EnsembleCalib is the owner-side calibration accumulator: it watches every
// published estimate pass (Observe), turns query finishes into per-member
// absolute ETA residuals (Finish), and exports the immutable EnsembleState
// the pure estimate computation reads. Not safe for concurrent use — the
// service owner goroutine is the only writer, and State() copies.
type EnsembleCalib struct {
	errs     [numMembers]float64
	seeded   [numMembers]bool
	samples  int
	ewma     map[int]float64
	preds    map[int][numMembers]float64
	bands    map[int]Interval
	finishes uint64 // finishes with a recorded band
	within   uint64 // ... whose true finish fell inside that band
}

// NewEnsembleCalib returns an empty calibration accumulator.
func NewEnsembleCalib() *EnsembleCalib {
	return &EnsembleCalib{
		ewma:  make(map[int]float64),
		preds: make(map[int][numMembers]float64),
		bands: make(map[int]Interval),
	}
}

// Observe folds one estimate pass into the calibration state: per-query speed
// EWMAs for the speed-history member, each member's absolute predicted finish
// (now + member ETA) for residual accounting, and the reported absolute band
// for coverage accounting. est must come from an ensemble-mode Estimator run
// on the same input (stage-mode bundles carry no member breakdown and are
// ignored).
func (c *EnsembleCalib) Observe(now float64, in EstimateInput, est Estimates) {
	for _, q := range in.Running {
		if s := in.Speeds[q.ID]; s > 0 {
			if prev, ok := c.ewma[q.ID]; ok {
				c.ewma[q.ID] = speedEWMAAlpha*s + (1-speedEWMAAlpha)*prev
			} else {
				c.ewma[q.ID] = s
			}
		}
	}
	if est.members[memberStage] == nil {
		return
	}
	for id, e := range est.PerQuery {
		var p [numMembers]float64
		for m := range p {
			eta := est.members[m][id]
			if isFiniteETA(eta) {
				p[m] = now + eta
			} else {
				p[m] = math.NaN()
			}
		}
		c.preds[id] = p
		if isFiniteETA(e.ETALow) && isFiniteETA(e.ETAHigh) {
			c.bands[id] = Interval{Low: now + e.ETALow, High: now + e.ETAHigh}
		} else {
			delete(c.bands, id)
		}
	}
}

// Finish records a query's true finish time: each member with a live
// prediction gets its absolute residual folded into the rolling error, and
// the last reported band is scored for coverage. Call exactly once per
// successful finish; aborted/failed queries go through Forget.
func (c *EnsembleCalib) Finish(id int, finishTime float64) {
	if p, ok := c.preds[id]; ok {
		counted := false
		for m := range p {
			if math.IsNaN(p[m]) {
				continue
			}
			r := math.Abs(p[m] - finishTime)
			if c.seeded[m] {
				c.errs[m] = errAlpha*r + (1-errAlpha)*c.errs[m]
			} else {
				c.errs[m] = r
				c.seeded[m] = true
			}
			counted = true
		}
		if counted {
			c.samples++
		}
	}
	if b, ok := c.bands[id]; ok {
		c.finishes++
		if finishTime >= b.Low-1e-9 && finishTime <= b.High+1e-9 {
			c.within++
		}
	}
	c.Forget(id)
}

// Forget drops a query's calibration entries (abort, failure, or any exit
// that should not produce a residual).
func (c *EnsembleCalib) Forget(id int) {
	delete(c.ewma, id)
	delete(c.preds, id)
	delete(c.bands, id)
}

// Coverage reports the lifetime band-coverage counters: finishes with a
// reported interval, and those whose true finish time fell inside it. Both
// are monotonic, ready for Prometheus counters.
func (c *EnsembleCalib) Coverage() (within, finishes uint64) {
	return c.within, c.finishes
}

// State exports the immutable calibration state for publication: rolling
// errors by member name, a copy of the speed EWMAs, and the residual count.
func (c *EnsembleCalib) State() EnsembleState {
	st := EnsembleState{Samples: c.samples}
	if c.samples > 0 {
		st.Errors = make(map[string]float64, numMembers)
		for i, name := range MemberNames {
			st.Errors[name] = c.errs[i]
		}
	}
	if len(c.ewma) > 0 {
		st.SpeedEWMA = make(map[int]float64, len(c.ewma))
		for id, v := range c.ewma {
			st.SpeedEWMA[id] = v
		}
	}
	return st
}

// SortedWeights renders a weights map in canonical member order, for
// deterministic exposition (metrics, overview JSON, experiment tables).
func SortedWeights(w map[string]float64) []struct {
	Member string
	Weight float64
} {
	out := make([]struct {
		Member string
		Weight float64
	}, 0, len(w))
	for _, name := range MemberNames {
		if v, ok := w[name]; ok {
			out = append(out, struct {
				Member string
				Weight float64
			}{name, v})
		}
	}
	// Any non-canonical members (future-proofing) go last, sorted.
	var extra []string
	for name := range w {
		known := false
		for _, m := range MemberNames {
			if m == name {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, struct {
			Member string
			Weight float64
		}{name, w[name]})
	}
	return out
}
