package core

import (
	"math"
	"testing"
)

// TestComputeEstimatesMatchesEstimateAll: the snapshot-driven entry point
// must agree with EstimateAll for every query, in both the queue-aware and
// future-aware configurations — it is the same math behind a pure-value
// interface.
func TestComputeEstimatesMatchesEstimateAll(t *testing.T) {
	running := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1, Done: 50},
		{ID: 2, Remaining: 300, Weight: 1, Done: 0},
		{ID: 3, Remaining: 80, Weight: 0, Done: 10}, // blocked
	}
	queued := []QueryState{{ID: 4, Remaining: 50, Weight: 1}}
	speeds := map[int]float64{1: 50, 2: 50}

	for _, am := range []*ArrivalModel{nil, {Lambda: 0.5, AvgCost: 100, AvgWeight: 1}} {
		got := ComputeEstimates(EstimateInput{
			Running: running, Queued: queued, MPL: 2, RateC: 100, Speeds: speeds, Arrivals: am,
		})
		want := EstimateAll(running, queued, 2, 100, speeds, am)
		if len(got.PerQuery) != len(want) {
			t.Fatalf("arrivals=%v: %d estimates, want %d", am, len(got.PerQuery), len(want))
		}
		for id, w := range want {
			g := got.PerQuery[id]
			if g != w && !(math.IsInf(g.MultiQuery, 1) && math.IsInf(w.MultiQuery, 1) && g.SingleQuery == w.SingleQuery) {
				t.Errorf("arrivals=%v Q%d: got %+v, want %+v", am, id, g, w)
			}
		}
	}
}

// TestComputeEstimatesQuiescent: the quiescent ETA is the last finite finish
// of the queue-aware profile and ignores the hypothetical future arrivals,
// matching the §2.3 definition (and sched.Server.QuiescentEstimate).
func TestComputeEstimatesQuiescent(t *testing.T) {
	running := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 300, Weight: 1},
	}
	queued := []QueryState{{ID: 3, Remaining: 100, Weight: 1}}
	noArrivals := ComputeEstimates(EstimateInput{Running: running, Queued: queued, MPL: 2, RateC: 100})
	want := 0.0
	for _, f := range MultiQueryWithQueue(running, queued, 2, 100) {
		if !math.IsInf(f, 1) && f > want {
			want = f
		}
	}
	if math.Abs(noArrivals.Quiescent-want) > 1e-9 {
		t.Errorf("quiescent = %g, want %g", noArrivals.Quiescent, want)
	}
	withArrivals := ComputeEstimates(EstimateInput{
		Running: running, Queued: queued, MPL: 2, RateC: 100,
		Arrivals: &ArrivalModel{Lambda: 1, AvgCost: 50, AvgWeight: 1},
	})
	if withArrivals.Quiescent != noArrivals.Quiescent {
		t.Errorf("arrivals changed the quiescent ETA: %g vs %g", withArrivals.Quiescent, noArrivals.Quiescent)
	}
	// Blocked-only systems never quiesce... but the quiescent ETA of an empty
	// system is 0, and +Inf finishes are excluded rather than propagated.
	blocked := ComputeEstimates(EstimateInput{Running: []QueryState{{ID: 9, Remaining: 50, Weight: 0}}, RateC: 100})
	if blocked.Quiescent != 0 {
		t.Errorf("blocked-only quiescent = %g, want 0 (Inf excluded)", blocked.Quiescent)
	}
	if !math.IsInf(blocked.PerQuery[9].MultiQuery, 1) {
		t.Errorf("blocked query multi ETA = %g, want +Inf", blocked.PerQuery[9].MultiQuery)
	}
}
