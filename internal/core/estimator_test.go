package core

import (
	"math"
	"testing"
)

func TestSingleQueryRemainingTime(t *testing.T) {
	if got := SingleQueryRemainingTime(100, 10); got != 10 {
		t.Errorf("c/s = %g", got)
	}
	if got := SingleQueryRemainingTime(0, 10); got != 0 {
		t.Errorf("zero cost = %g", got)
	}
	if got := SingleQueryRemainingTime(-5, 10); got != 0 {
		t.Errorf("negative cost = %g", got)
	}
	if got := SingleQueryRemainingTime(100, 0); !math.IsInf(got, 1) {
		t.Errorf("zero speed = %g", got)
	}
}

func TestMultiQueryRemainingTimesWrapper(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 300, Weight: 1},
	}
	est := MultiQueryRemainingTimes(states, 100)
	// Q1: 100 U at 50 U/s -> 2s. Q2: 200 U left at 100 U/s -> finishes at 4s
	// (work conservation: 400 U total / 100 U/s).
	if est[1] != 2 || est[2] != 4 {
		t.Errorf("estimates: %v", est)
	}
}

func TestMultiQueryWithQueueWrapper(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 100, Weight: 1}}
	queued := []QueryState{{ID: 2, Remaining: 100, Weight: 1}}
	est := MultiQueryWithQueue(running, queued, 1, 100)
	if est[1] != 1 || est[2] != 2 {
		t.Errorf("estimates: %v", est)
	}
}

func TestMultiQueryWithFutureWrapper(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 1000, Weight: 1}}
	am := ArrivalModel{Lambda: 0.1, AvgCost: 100, AvgWeight: 1}
	withF := MultiQueryWithFuture(running, nil, 0, 10, am)
	without := MultiQueryRemainingTimes(running, 10)
	if withF[1] <= without[1] {
		t.Errorf("future arrivals should slow the estimate: %g vs %g", withF[1], without[1])
	}
}

func TestSpeedTrackerBasic(t *testing.T) {
	tr := NewSpeedTracker(10)
	if tr.Speed() != 0 {
		t.Error("empty tracker should report 0")
	}
	tr.Observe(0, 0)
	if tr.Speed() != 0 {
		t.Error("single sample should report 0")
	}
	tr.Observe(1, 50)
	tr.Observe(2, 100)
	if got := tr.Speed(); got != 50 {
		t.Errorf("speed = %g, want 50", got)
	}
}

func TestSpeedTrackerWindow(t *testing.T) {
	tr := NewSpeedTracker(10)
	// 0..20s at 10 U/s, then 20..30s at 100 U/s.
	for i := 0; i <= 20; i++ {
		tr.Observe(float64(i), float64(i*10))
	}
	for i := 21; i <= 30; i++ {
		tr.Observe(float64(i), 200+float64(i-20)*100)
	}
	got := tr.Speed()
	if math.Abs(got-100) > 1 {
		t.Errorf("windowed speed = %g, want ~100 (old samples must roll off)", got)
	}
}

// TestSpeedTrackerSparseSamples is the regression test for the window drop
// leaving a single sample behind: when observations are sparser than the
// window, Speed() must still be computed from the newest two samples instead
// of reporting 0 for a steadily running query.
func TestSpeedTrackerSparseSamples(t *testing.T) {
	tr := NewSpeedTracker(1)
	tr.Observe(0, 0)
	tr.Observe(10, 5)
	tr.Observe(20, 10)
	if got := tr.Speed(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sparse-sample speed = %g, want 0.5 from the newest two samples", got)
	}
	// Still true after enough sparse samples to trigger compaction.
	tr = NewSpeedTracker(1)
	for i := 0; i <= 3000; i++ {
		tr.Observe(float64(i*2), float64(i))
	}
	if got := tr.Speed(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sparse-sample speed after compaction = %g, want 0.5", got)
	}
}

func TestSpeedTrackerZeroTimeDelta(t *testing.T) {
	tr := NewSpeedTracker(10)
	tr.Observe(5, 10)
	tr.Observe(5, 20)
	if got := tr.Speed(); got != 0 {
		t.Errorf("zero-dt speed = %g", got)
	}
}

func TestSpeedTrackerCompaction(t *testing.T) {
	tr := NewSpeedTracker(5)
	// Force many samples so compaction triggers; speed must stay correct.
	for i := 0; i < 5000; i++ {
		tr.Observe(float64(i), float64(i)*7)
	}
	if got := tr.Speed(); math.Abs(got-7) > 1e-6 {
		t.Errorf("speed after compaction = %g, want 7", got)
	}
}

func TestSpeedTrackerDefaultWindow(t *testing.T) {
	tr := NewSpeedTracker(0) // defaults to 10s
	tr.Observe(0, 0)
	tr.Observe(1, 5)
	if tr.Speed() != 5 {
		t.Errorf("speed = %g", tr.Speed())
	}
}

// TestMultiQueryWithFutureAndQueueCombined: §2.3 and §2.4 compose — a
// queued query plus predicted arrivals both push the estimate out.
func TestMultiQueryWithFutureAndQueueCombined(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 1000, Weight: 1}}
	queued := []QueryState{{ID: 2, Remaining: 500, Weight: 1}}
	am := ArrivalModel{Lambda: 0.02, AvgCost: 300, AvgWeight: 1}
	plain := MultiQueryRemainingTimes(running, 10)[1]
	queueOnly := MultiQueryWithQueue(running, queued, 1, 10)[1]
	both := MultiQueryWithFuture(running, queued, 1, 10, am)[1]
	// Extra load can only delay estimates, never improve them.
	if queueOnly < plain {
		t.Errorf("queue should never speed things up: %g < %g", queueOnly, plain)
	}
	if both < queueOnly {
		t.Errorf("arrivals should never speed things up: %g < %g", both, queueOnly)
	}
	// The queued query's own estimate accounts for waiting.
	if q2 := MultiQueryWithQueue(running, queued, 1, 10)[2]; q2 <= queueOnly {
		t.Errorf("queued query finishes after the running one: %g <= %g", q2, queueOnly)
	}
}

func TestEstimateAll(t *testing.T) {
	running := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1, Done: 50},
		{ID: 2, Remaining: 300, Weight: 1, Done: 0},
		{ID: 3, Remaining: 80, Weight: 0, Done: 10}, // blocked
	}
	queued := []QueryState{{ID: 4, Remaining: 50, Weight: 1}}
	speeds := map[int]float64{1: 50, 2: 50}
	got := EstimateAll(running, queued, 0, 100, speeds, nil)
	if len(got) != 4 {
		t.Fatalf("estimates for %d queries, want 4", len(got))
	}
	// Single-query: c/s where observed; +Inf where not.
	if got[1].SingleQuery != 2 {
		t.Errorf("Q1 single = %g, want 2", got[1].SingleQuery)
	}
	if !math.IsInf(got[3].SingleQuery, 1) || !math.IsInf(got[4].SingleQuery, 1) {
		t.Errorf("unobserved queries must have +Inf single-query ETA: %v, %v", got[3], got[4])
	}
	// Multi-query must agree with the underlying queue-aware profile.
	multi := MultiQueryWithQueue(running, queued, 0, 100)
	for id, e := range got {
		if e.MultiQuery != multi[id] && !(math.IsInf(e.MultiQuery, 1) && math.IsInf(multi[id], 1)) {
			t.Errorf("Q%d multi = %g, want %g", id, e.MultiQuery, multi[id])
		}
	}
	// Future-aware variant slows everything down.
	fut := EstimateAll(running, queued, 0, 100, speeds, &ArrivalModel{Lambda: 0.5, AvgCost: 100, AvgWeight: 1})
	if fut[2].MultiQuery <= got[2].MultiQuery {
		t.Errorf("future arrivals must not speed Q2 up: %g vs %g", fut[2].MultiQuery, got[2].MultiQuery)
	}
}
