// Package core implements the paper's multi-query progress indicator: the
// stage model of concurrent query execution under weighted fair sharing
// (Section 2.2), its extension to non-empty admission queues (Section 2.3)
// and predicted future arrivals (Section 2.4), and the single-query estimator
// it is compared against.
//
// All inputs are abstract QueryStates — remaining cost c_i in work units U,
// weight w_i, completed work e_i — so the algorithms are independent of the
// SQL engine that produces them.
package core

import (
	"math"
	"sort"
)

// QueryState is the PI's view of one query, mirroring the paper's notation.
type QueryState struct {
	ID        int
	Remaining float64 // c_i: remaining cost in U's
	Weight    float64 // w_i: weight of the query's priority
	Done      float64 // e_i: work completed so far in U's
	// Fold tags the shared-scan group the query currently rides (0 = solo).
	// Folding is the §2.2 extension for shared work: group members advance in
	// lockstep over the same pages, so their charged-work trajectories — and
	// therefore every stage-model quantity — are exactly what weighted fair
	// sharing already predicts. The tag does not alter the math; it only
	// surfaces which stages advance together (Profile.Shared).
	Fold int
}

// SharedStage is one fold group as the stage model sees it: the runnable
// queries advancing in lockstep over one shared cursor. Members (being
// equal-weight scans of the same relation) typically occupy adjacent stages.
type SharedStage struct {
	Fold int   // fold-group ID (matches QueryState.Fold)
	IDs  []int // member query IDs, ascending
}

// Profile is the result of the stage model: the n queries finish one per
// stage, in ascending order of c_i/w_i (Section 2.2).
type Profile struct {
	// Order lists query IDs in predicted finish order.
	Order []int
	// StageDur[i] is t_{i+1}, the duration of stage i+1 in seconds.
	StageDur []float64
	// Finish maps query ID to its predicted remaining execution time r_i in
	// seconds. Queries that never finish (zero weight, or C <= 0) map to +Inf.
	Finish map[int]float64
	// Shared inventories the fold groups among the runnable queries, ordered
	// by first appearance in stage order. Empty when nothing folds.
	Shared []SharedStage
}

// QuiescentTime returns the predicted time until the last query finishes
// (the paper's "system quiescent time"); 0 when there are no queries.
func (p Profile) QuiescentTime() float64 {
	t := 0.0
	for _, d := range p.StageDur {
		t += d
	}
	return t
}

// ComputeProfile runs the closed-form stage algorithm of Section 2.2:
// sort the n queries in ascending c_i/w_i; stage k then lasts
//
//	t_k = (c_k/w_k − c_{k−1}/w_{k−1}) × W_k / C,  W_k = Σ_{j≥k} w_j,
//
// and query k finishes at r_k = Σ_{j≤k} t_j. Time O(n log n), space O(n).
// Queries with non-positive weight are treated as blocked: they consume no
// capacity and never finish.
func ComputeProfile(states []QueryState, C float64) Profile {
	prof := Profile{Finish: make(map[int]float64, len(states))}
	var active []QueryState
	for _, q := range states {
		q = sanitize(q)
		if q.Weight <= 0 {
			prof.Finish[q.ID] = math.Inf(1)
			continue
		}
		active = append(active, q)
	}
	C = sanitizeRate(C)
	if C <= 0 {
		for _, q := range active {
			prof.Finish[q.ID] = math.Inf(1)
		}
		return prof
	}
	sort.SliceStable(active, func(i, j int) bool {
		ri := active[i].Remaining / active[i].Weight
		rj := active[j].Remaining / active[j].Weight
		if ri != rj {
			return ri < rj
		}
		return active[i].ID < active[j].ID
	})
	// Suffix weight sums W_k.
	suffixW := make([]float64, len(active)+1)
	for i := len(active) - 1; i >= 0; i-- {
		suffixW[i] = suffixW[i+1] + active[i].Weight
	}
	prevRatio := 0.0
	elapsed := 0.0
	for k, q := range active {
		ratio := q.Remaining / q.Weight
		t := (ratio - prevRatio) * suffixW[k] / C
		if math.IsNaN(t) || t < 0 {
			t = 0 // floating-point jitter, or Inf-Inf from degenerate inputs
		}
		elapsed += t
		prof.StageDur = append(prof.StageDur, t)
		prof.Order = append(prof.Order, q.ID)
		prof.Finish[q.ID] = elapsed
		prevRatio = ratio
		if q.Fold != 0 {
			prof.Shared = appendFoldStage(prof.Shared, q.Fold, q.ID)
		}
	}
	sortFoldStages(prof.Shared)
	return prof
}

// appendFoldStage records one runnable folded query in the profile's shared
// inventory: one entry per group, in order of first appearance in stage order.
func appendFoldStage(shared []SharedStage, fold, id int) []SharedStage {
	for i := range shared {
		if shared[i].Fold == fold {
			shared[i].IDs = append(shared[i].IDs, id)
			return shared
		}
	}
	return append(shared, SharedStage{Fold: fold, IDs: []int{id}})
}

// sortFoldStages canonicalizes member lists to ascending ID (they arrive in
// (ratio, ID) stage order, which only ties back to ID order at equal ratios).
func sortFoldStages(shared []SharedStage) {
	for i := range shared {
		sort.Ints(shared[i].IDs)
	}
}

// sanitizeRate clamps a pathological processing rate: NaN and non-positive
// rates are invalid (0), +Inf becomes a huge finite rate.
func sanitizeRate(C float64) float64 {
	if math.IsNaN(C) || C <= 0 {
		return 0
	}
	if math.IsInf(C, 1) {
		return math.MaxFloat64 / 1e6
	}
	return C
}

// sanitize clamps pathological inputs so the algorithms cannot loop or
// propagate NaNs: NaN or negative remaining costs become 0, NaN or infinite
// weights become 0 (blocked).
func sanitize(q QueryState) QueryState {
	if math.IsNaN(q.Remaining) || q.Remaining < 0 {
		q.Remaining = 0
	}
	if math.IsInf(q.Remaining, 1) {
		q.Remaining = math.MaxFloat64 / 1e6
	}
	if math.IsNaN(q.Weight) || math.IsInf(q.Weight, 0) || q.Weight < 0 {
		q.Weight = 0
	}
	// Weights are priority weights; clamp to a sane range so summing any
	// number of them cannot overflow.
	if q.Weight > 1e12 {
		q.Weight = 1e12
	}
	return q
}

// ArrivalModel is the paper's prediction about future queries (Section 2.4):
// every 1/Lambda seconds a query with cost AvgCost and weight AvgWeight is
// assumed to arrive.
type ArrivalModel struct {
	Lambda    float64 // average arrival rate λ in queries/second
	AvgCost   float64 // average cost c̄ in U's
	AvgWeight float64 // weight of the average priority p̄
}

// SimOptions configures SimulateProfile.
type SimOptions struct {
	// MPL caps the number of concurrently running queries (the admission
	// policy of Section 2.3); 0 means unlimited.
	MPL int
	// Queued holds the admission queue in FIFO order; entries are admitted
	// as running queries finish.
	Queued []QueryState
	// Arrivals, when non-nil, injects the virtual future queries of
	// Section 2.4.
	Arrivals *ArrivalModel
	// ArrivalWindow bounds how far into the future virtual arrivals are
	// injected. 0 means the default: the no-arrival quiescent time of the
	// known queries plus one inter-arrival gap. The bound keeps estimates
	// finite even when the assumed arrival rate would make the hypothetical
	// system unstable (the paper's Figure 8 shows bounded errors at λ' ≫ λ,
	// implying the same kind of bounded look-ahead).
	ArrivalWindow float64
	// Horizon is a safety cap on simulated time; queries that have not
	// finished by the horizon get extrapolated (large but finite) estimates.
	// 0 means a generous default derived from the total known work.
	Horizon float64
}

// futureID is the synthetic ID space for virtual arrivals; they are excluded
// from the returned profile.
const futureIDBase = -1000000

// maxVirtualArrivals bounds the number of injected future queries per
// estimate; a window so long that it would exceed this is itself a sign the
// inputs are degenerate, and truncating only makes the estimate optimistic.
const maxVirtualArrivals = 10000

// SimulateProfile generalizes the stage model: it event-steps the weighted
// fair-sharing execution of the running queries, admitting queued queries as
// slots free up and injecting predicted future arrivals. With no queue and
// no arrivals it reproduces ComputeProfile exactly (a property the tests
// check). Queries in the admission queue are predicted to finish after they
// are admitted; their Finish times are included in the profile. The returned
// profile carries no Shared inventory: fold membership is a property of the
// live mix, and the simulation's hypothetical admissions and arrivals do not
// model which future scans would fold.
func SimulateProfile(running []QueryState, C float64, opt SimOptions) Profile {
	prof := Profile{Finish: make(map[int]float64, len(running)+len(opt.Queued))}
	C = sanitizeRate(C)
	if C <= 0 {
		for _, q := range running {
			prof.Finish[q.ID] = math.Inf(1)
		}
		for _, q := range opt.Queued {
			prof.Finish[q.ID] = math.Inf(1)
		}
		return prof
	}

	type simQ struct {
		QueryState
		virtual bool
	}
	var active []simQ
	for _, q := range running {
		active = append(active, simQ{QueryState: sanitize(q)})
	}
	queue := make([]QueryState, 0, len(opt.Queued))
	for _, q := range opt.Queued {
		queue = append(queue, sanitize(q))
	}

	horizon := opt.Horizon
	var nextArrival float64 = math.Inf(1)
	var interarrival, arrivalWindow float64
	var arrivalCost, arrivalWeight float64
	if opt.Arrivals != nil && opt.Arrivals.Lambda > 0 && opt.Arrivals.AvgCost > 0 {
		// The model's numbers come from workload statistics; clamp them the
		// same way query states are clamped.
		am := sanitize(QueryState{Remaining: opt.Arrivals.AvgCost, Weight: opt.Arrivals.AvgWeight})
		arrivalCost, arrivalWeight = am.Remaining, am.Weight
		interarrival = 1 / opt.Arrivals.Lambda
		nextArrival = interarrival
		base := 0.0
		for _, q := range active {
			base += q.Remaining
		}
		for _, q := range queue {
			base += math.Max(0, q.Remaining)
		}
		arrivalWindow = opt.ArrivalWindow
		if arrivalWindow <= 0 {
			arrivalWindow = base/C + interarrival
		}
		if nextArrival > arrivalWindow {
			nextArrival = math.Inf(1)
		}
		if horizon <= 0 {
			// Safety cap: all known work plus every virtual arrival in the
			// window, with slack. The simulation always terminates well
			// before this.
			injected := math.Min(math.Ceil(arrivalWindow/interarrival), maxVirtualArrivals) * arrivalCost
			horizon = 10 * (base + injected + arrivalCost) / C
		}
	}

	now := 0.0
	virtualSeq := 0
	admit := func() {
		// Every admitted query occupies an MPL slot, runnable or blocked.
		for len(queue) > 0 && (opt.MPL <= 0 || len(active) < opt.MPL) {
			q := queue[0]
			queue = queue[1:]
			if q.Remaining < 0 {
				q.Remaining = 0
			}
			active = append(active, simQ{QueryState: q})
		}
	}
	// Initial admissions if slots are free.
	admit()

	const eps = 1e-12
	for {
		// Termination: stop once every real query — active or queued — has a
		// finish time. A non-empty queue behind virtual-only occupants must
		// NOT terminate the loop: virtual arrivals finish in finite time and
		// free their MPL slots, so queued real queries still inherit finite
		// ETAs (the horizon and the W<=0 branch below cover the degenerate
		// virtual mixes that never drain).
		realLeft := false
		for _, q := range active {
			if !q.virtual {
				realLeft = true
				break
			}
		}
		if !realLeft {
			if len(queue) == 0 {
				// Only virtual queries (if any) remain; real work is done.
				break
			}
			if len(active) == 0 {
				// Defensive: admit() fills every free slot, so a non-empty
				// queue with nothing active means admission is impossible.
				for _, q := range queue {
					prof.Finish[q.ID] = math.Inf(1)
				}
				break
			}
			// All MPL slots are held by virtual arrivals; keep simulating so
			// their finishes admit the queued real queries.
		}

		// Total weight of runnable queries.
		W := 0.0
		for _, q := range active {
			if q.Weight > 0 {
				W += q.Weight
			}
		}
		if W <= 0 {
			// Everything blocked: remaining real queries never finish.
			for _, q := range active {
				if !q.virtual {
					prof.Finish[q.ID] = math.Inf(1)
				}
			}
			for _, q := range queue {
				prof.Finish[q.ID] = math.Inf(1)
			}
			break
		}

		// Next completion among runnable queries.
		nextFinish := math.Inf(1)
		for _, q := range active {
			if q.Weight <= 0 {
				continue
			}
			// C × (w/W): the share is computed first so huge C and huge
			// weights cannot overflow to +Inf in the intermediate product.
			speed := C * (q.Weight / W)
			t := q.Remaining / speed
			if t < nextFinish {
				nextFinish = t
			}
		}
		dt := nextFinish
		arriving := false
		if now+dt > nextArrival-eps && nextArrival < math.Inf(1) {
			dt = nextArrival - now
			arriving = true
		}
		if math.IsNaN(dt) || math.IsInf(dt, 1) {
			// Degenerate speeds (e.g. a vanishing weight share): nothing
			// left can finish in finite time.
			for _, q := range active {
				if !q.virtual {
					prof.Finish[q.ID] = math.Inf(1)
				}
			}
			for _, q := range queue {
				prof.Finish[q.ID] = math.Inf(1)
			}
			break
		}
		if horizon > 0 && now+dt > horizon {
			// The system is unstable under the assumed arrivals and the
			// simulation horizon was reached. Return finite (large)
			// estimates by extrapolating at the frozen mix: each active
			// query keeps its current speed; queued queries drain after the
			// work admitted ahead of them.
			for _, q := range active {
				if q.virtual {
					continue
				}
				if q.Weight > 0 && W > 0 {
					prof.Finish[q.ID] = now + q.Remaining/(C*(q.Weight/W))
				} else {
					prof.Finish[q.ID] = math.Inf(1)
				}
			}
			backlog := 0.0
			for _, q := range active {
				backlog += q.Remaining
			}
			for _, q := range queue {
				backlog += math.Max(0, q.Remaining)
				prof.Finish[q.ID] = now + backlog/C
			}
			break
		}

		// Advance dt seconds of weighted fair sharing. Retirement uses a
		// threshold relative to the amount each query just processed: an
		// absolute epsilon cannot work across the f64 range (one ulp of a
		// huge remaining cost exceeds any fixed epsilon, which would loop
		// forever shaving ulps).
		for i := range active {
			if active[i].Weight <= 0 {
				continue
			}
			active[i].Remaining -= C * (active[i].Weight / W) * dt
		}
		now += dt

		// Retire finished queries. Simultaneous finishers are canonicalized to
		// ascending ID order — the tie order ComputeProfile's (ratio, ID) sort
		// produces — rather than active-slice insertion order, so the profile
		// stays bit-comparable against any reordered implementation. Only
		// Order needs the sort: every finisher in the batch shares Finish=now,
		// and the duration recovery below reads Finish, not positions.
		finStart := len(prof.Order)
		kept := active[:0]
		for _, q := range active {
			amount := C * (q.Weight / W) * dt
			if q.Weight > 0 && q.Remaining <= eps*math.Max(1, C)+1e-9*amount {
				if !q.virtual {
					prof.Order = append(prof.Order, q.ID)
					prof.StageDur = append(prof.StageDur, 0) // durations filled below
					prof.Finish[q.ID] = now
				}
				continue
			}
			kept = append(kept, q)
		}
		active = kept
		if len(prof.Order)-finStart > 1 {
			sort.Ints(prof.Order[finStart:])
		}

		if arriving {
			virtualSeq++
			active = append(active, simQ{
				QueryState: QueryState{
					ID:        futureIDBase - virtualSeq,
					Remaining: arrivalCost,
					Weight:    arrivalWeight,
				},
				virtual: true,
			})
			nextArrival += interarrival
			if nextArrival > arrivalWindow || virtualSeq >= maxVirtualArrivals {
				nextArrival = math.Inf(1)
			}
		}
		admit()
	}

	// Recover stage durations from consecutive finish times.
	prev := 0.0
	for i, id := range prof.Order {
		prof.StageDur[i] = prof.Finish[id] - prev
		prev = prof.Finish[id]
	}
	return prof
}
