package core

import (
	"strings"
	"testing"
)

func TestStageDiagramEmpty(t *testing.T) {
	if got := StageDiagram(nil, 10, 40); got != "(no runnable queries)\n" {
		t.Errorf("nil states: got %q", got)
	}
	// Blocked-only input has no runnable queries either.
	blocked := []QueryState{{ID: 1, Remaining: 10, Weight: 0}}
	if got := StageDiagram(blocked, 10, 40); got != "(no runnable queries)\n" {
		t.Errorf("blocked-only states: got %q", got)
	}
}

func TestStageDiagramAllFinished(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 0, Weight: 1, Done: 5},
		{ID: 2, Remaining: 0, Weight: 2, Done: 9},
	}
	if got := StageDiagram(states, 10, 40); got != "(all queries already finished)\n" {
		t.Errorf("got %q", got)
	}
}

func TestStageDiagramWidthClamp(t *testing.T) {
	// A non-positive width falls back to the 60-column default; the blocked
	// row's dot run makes the effective width directly observable.
	states := []QueryState{
		{ID: 1, Remaining: 10, Weight: 1},
		{ID: 2, Remaining: 10, Weight: 0},
	}
	for _, width := range []int{0, -7} {
		out := StageDiagram(states, 10, width)
		if !strings.Contains(out, strings.Repeat("·", 60)+"  blocked") {
			t.Errorf("width=%d: blocked row does not span the 60-column default:\n%s", width, out)
		}
		if strings.Contains(out, strings.Repeat("·", 61)) {
			t.Errorf("width=%d: blocked row exceeds the 60-column default:\n%s", width, out)
		}
	}
}

func TestStageDiagramRows(t *testing.T) {
	// Figure 1's shape: four equal-priority queries, remaining work 10..40 at
	// C=10 U/s finish at 4, 7, 9, and 10 seconds.
	states := []QueryState{
		{ID: 4, Remaining: 40, Weight: 1},
		{ID: 2, Remaining: 20, Weight: 1},
		{ID: 3, Remaining: 30, Weight: 1},
		{ID: 1, Remaining: 10, Weight: 1},
	}
	out := StageDiagram(states, 10, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // four query rows plus the time axis
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	wantFinish := []string{
		"Q1", "finishes at 4.0s",
		"Q2", "finishes at 7.0s",
		"Q3", "finishes at 9.0s",
		"Q4", "finishes at 10.0s",
	}
	for i := 0; i < 4; i++ {
		line := lines[i]
		if !strings.HasPrefix(line, wantFinish[2*i]) || !strings.Contains(line, wantFinish[2*i+1]) {
			t.Errorf("row %d: want prefix %q and finish %q, got %q",
				i, wantFinish[2*i], wantFinish[2*i+1], line)
		}
		// Row k crosses k+1 stages, one boundary bar per stage.
		if got := strings.Count(line, "|"); got != i+1 {
			t.Errorf("row %d: want %d stage bars, got %d: %q", i, i+1, got, line)
		}
	}
	if !strings.HasPrefix(lines[4], "       0s") || !strings.HasSuffix(lines[4], "10.0s") {
		t.Errorf("time axis malformed: %q", lines[4])
	}
}

func TestStageDiagramBlockedRow(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 10, Weight: 1},
		{ID: 9, Remaining: 99, Weight: 0},
		{ID: 5, Remaining: 50, Weight: 0},
	}
	out := StageDiagram(states, 10, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// One running row, two blocked rows (sorted by ID), then the axis.
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	for i, want := range []string{"Q5", "Q9"} {
		line := lines[1+i]
		if !strings.HasPrefix(line, want) || !strings.HasSuffix(line, "blocked") {
			t.Errorf("blocked row %d: got %q", i, line)
		}
		if !strings.Contains(line, strings.Repeat("·", 20)) {
			t.Errorf("blocked row %d: dot run shorter than width: %q", i, line)
		}
	}
}

func TestStageDiagramFoldMarker(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 30, Weight: 1, Fold: 2},
		{ID: 2, Remaining: 30, Weight: 1, Fold: 2},
		{ID: 3, Remaining: 10, Weight: 1},
	}
	d := StageDiagram(states, 10, 40)
	if !strings.Contains(d, "[fold g2]") {
		t.Errorf("diagram missing fold marker:\n%s", d)
	}
	if strings.Count(d, "[fold g2]") != 2 {
		t.Errorf("want fold marker on both members:\n%s", d)
	}
	for _, line := range strings.Split(d, "\n") {
		if strings.HasPrefix(line, "Q3") && strings.Contains(line, "fold") {
			t.Errorf("solo query marked folded: %s", line)
		}
	}
}
