package core

import "math"

// SingleQueryRemainingTime is the single-query PI of [11, 12] that the paper
// compares against: t = c/s, where c is the refined remaining cost and s is
// the query's currently observed execution speed. It implicitly reflects
// concurrent queries (the observed speed is lower when they run) but assumes
// the current speed persists until the query finishes.
func SingleQueryRemainingTime(remaining, observedSpeed float64) float64 {
	if remaining <= 0 {
		return 0
	}
	if observedSpeed <= 0 {
		return math.Inf(1)
	}
	return remaining / observedSpeed
}

// MultiQueryRemainingTimes is the multi-query PI for the standard case of
// Section 2.2: no admission queue, no future arrivals. It returns the
// predicted remaining execution time for every query in states.
func MultiQueryRemainingTimes(states []QueryState, C float64) map[int]float64 {
	return ComputeProfile(states, C).Finish
}

// MultiQueryWithQueue extends the estimate with the admission queue
// (Section 2.3): queued queries are known future load, so their admission —
// and the slowdown they cause — is simulated. An empty queue degenerates to
// §2.2 exactly, so it takes the closed form instead of the event-stepped
// simulation (the two agree to float rounding, a property the tests pin; the
// closed form is also what the incremental stage structure reproduces
// bit-for-bit).
func MultiQueryWithQueue(running, queued []QueryState, mpl int, C float64) map[int]float64 {
	if len(queued) == 0 {
		return ComputeProfile(running, C).Finish
	}
	return SimulateProfile(running, C, SimOptions{MPL: mpl, Queued: queued}).Finish
}

// MultiQueryWithFuture extends the estimate with predicted future arrivals
// (Section 2.4): every 1/λ seconds a query of average cost and priority is
// assumed to arrive. The admission queue, if any, is honored too.
func MultiQueryWithFuture(running, queued []QueryState, mpl int, C float64, am ArrivalModel) map[int]float64 {
	return SimulateProfile(running, C, SimOptions{MPL: mpl, Queued: queued, Arrivals: &am}).Finish
}

// SpeedTracker observes a query's execution speed over a sliding window of
// virtual time, the way the single-query PI "continuously monitors the
// current query execution speed". Samples must be added with nondecreasing
// timestamps. Storage is a ring: once the window's worth of samples fits the
// backing arrays, steady observation allocates nothing (the old append-based
// tracker reallocated on every slice doubling and on compaction, which showed
// up as the scheduler tick's steady-state allocations).
type SpeedTracker struct {
	window float64
	times  []float64 // ring storage, len(times) == capacity
	work   []float64
	head   int // ring index of the oldest live sample
	n      int // live sample count
}

// NewSpeedTracker creates a tracker with the given window in seconds.
func NewSpeedTracker(window float64) *SpeedTracker {
	return NewSpeedTrackerSized(window, 0)
}

// NewSpeedTrackerSized pre-sizes the ring for the expected number of
// in-window samples, so a caller that knows its observation cadence (one per
// scheduler quantum) gets a tracker that never reallocates. samples <= 0
// starts empty and grows on demand.
func NewSpeedTrackerSized(window float64, samples int) *SpeedTracker {
	if window <= 0 {
		window = 10
	}
	t := &SpeedTracker{window: window}
	if samples > 0 {
		t.times = make([]float64, samples)
		t.work = make([]float64, samples)
	}
	return t
}

// idx maps a logical offset from the oldest sample to a ring index.
func (t *SpeedTracker) idx(i int) int {
	i += t.head
	if i >= len(t.times) {
		i -= len(t.times)
	}
	return i
}

// grow doubles the ring, linearizing the live samples to the front.
func (t *SpeedTracker) grow() {
	c := 2 * len(t.times)
	if c < 8 {
		c = 8
	}
	times := make([]float64, c)
	work := make([]float64, c)
	for i := 0; i < t.n; i++ {
		j := t.idx(i)
		times[i], work[i] = t.times[j], t.work[j]
	}
	t.times, t.work = times, work
	t.head = 0
}

// Observe records cumulative work done at time now.
func (t *SpeedTracker) Observe(now, cumWork float64) {
	if t.n == len(t.times) {
		t.grow()
	}
	i := t.idx(t.n)
	t.times[i], t.work[i] = now, cumWork
	t.n++
	// Drop samples older than the window, keeping at least two: with sparse
	// observations (gaps longer than the window) the newest pair still yields
	// a speed, where dropping down to one sample would report 0 for a query
	// that is steadily running.
	for t.n > 2 && t.times[t.idx(1)] <= now-t.window {
		t.head = t.idx(1)
		t.n--
	}
}

// Speed returns the observed speed in U/s over the window, or 0 if fewer
// than two samples (or no time) have been observed.
func (t *SpeedTracker) Speed() float64 {
	if t.n < 2 {
		return 0
	}
	oldest, newest := t.idx(0), t.idx(t.n-1)
	dt := t.times[newest] - t.times[oldest]
	if dt <= 0 {
		return 0
	}
	dw := t.work[newest] - t.work[oldest]
	if dw < 0 {
		return 0
	}
	return dw / dt
}
