package core

import "math"

// SingleQueryRemainingTime is the single-query PI of [11, 12] that the paper
// compares against: t = c/s, where c is the refined remaining cost and s is
// the query's currently observed execution speed. It implicitly reflects
// concurrent queries (the observed speed is lower when they run) but assumes
// the current speed persists until the query finishes.
func SingleQueryRemainingTime(remaining, observedSpeed float64) float64 {
	if remaining <= 0 {
		return 0
	}
	if observedSpeed <= 0 {
		return math.Inf(1)
	}
	return remaining / observedSpeed
}

// MultiQueryRemainingTimes is the multi-query PI for the standard case of
// Section 2.2: no admission queue, no future arrivals. It returns the
// predicted remaining execution time for every query in states.
func MultiQueryRemainingTimes(states []QueryState, C float64) map[int]float64 {
	return ComputeProfile(states, C).Finish
}

// MultiQueryWithQueue extends the estimate with the admission queue
// (Section 2.3): queued queries are known future load, so their admission —
// and the slowdown they cause — is simulated.
func MultiQueryWithQueue(running, queued []QueryState, mpl int, C float64) map[int]float64 {
	return SimulateProfile(running, C, SimOptions{MPL: mpl, Queued: queued}).Finish
}

// MultiQueryWithFuture extends the estimate with predicted future arrivals
// (Section 2.4): every 1/λ seconds a query of average cost and priority is
// assumed to arrive. The admission queue, if any, is honored too.
func MultiQueryWithFuture(running, queued []QueryState, mpl int, C float64, am ArrivalModel) map[int]float64 {
	return SimulateProfile(running, C, SimOptions{MPL: mpl, Queued: queued, Arrivals: &am}).Finish
}

// SpeedTracker observes a query's execution speed over a sliding window of
// virtual time, the way the single-query PI "continuously monitors the
// current query execution speed". Samples must be added with nondecreasing
// timestamps.
type SpeedTracker struct {
	window  float64
	times   []float64
	work    []float64
	headIdx int
}

// NewSpeedTracker creates a tracker with the given window in seconds.
func NewSpeedTracker(window float64) *SpeedTracker {
	if window <= 0 {
		window = 10
	}
	return &SpeedTracker{window: window}
}

// Observe records cumulative work done at time now.
func (t *SpeedTracker) Observe(now, cumWork float64) {
	t.times = append(t.times, now)
	t.work = append(t.work, cumWork)
	// Drop samples older than the window, keeping at least two: with sparse
	// observations (gaps longer than the window) the newest pair still yields
	// a speed, where dropping down to one sample would report 0 for a query
	// that is steadily running.
	for t.headIdx < len(t.times)-2 && t.times[t.headIdx+1] <= now-t.window {
		t.headIdx++
	}
	// Compact occasionally so memory stays bounded.
	if t.headIdx > 1024 {
		t.times = append([]float64(nil), t.times[t.headIdx:]...)
		t.work = append([]float64(nil), t.work[t.headIdx:]...)
		t.headIdx = 0
	}
}

// Speed returns the observed speed in U/s over the window, or 0 if fewer
// than two samples (or no time) have been observed.
func (t *SpeedTracker) Speed() float64 {
	n := len(t.times)
	if n-t.headIdx < 2 {
		return 0
	}
	dt := t.times[n-1] - t.times[t.headIdx]
	if dt <= 0 {
		return 0
	}
	dw := t.work[n-1] - t.work[t.headIdx]
	if dw < 0 {
		return 0
	}
	return dw / dt
}
