package core

import "math"

// Estimate bundles the two competing remaining-time views of one query, the
// comparison the paper's evaluation is built around: the single-query PI's
// t = c/s against the multi-query stage model.
type Estimate struct {
	// SingleQuery is the classic estimate c/s from the query's currently
	// observed speed (+Inf when the speed is zero, e.g. blocked or queued).
	SingleQuery float64
	// MultiQuery is the stage-model estimate, aware of the other running
	// queries, the admission queue, and (optionally) predicted arrivals.
	// Under an ensemble estimator this is the blended point.
	MultiQuery float64
	// ETALow/ETAHigh bound the uncertainty band around MultiQuery. The
	// classic stage path reports a degenerate band (Low == High == point);
	// ensemble modes widen it by member spread and calibrated rolling error.
	ETALow  float64
	ETAHigh float64
}

// EstimateInput is the pure-value input to ComputeEstimates: everything the
// §2.2–2.4 estimators need, with no pointers into a live scheduler. A service
// snapshot converts into one of these, which makes the estimate bundle a
// deterministic function of the snapshot — safe to compute on any goroutine
// and to share between concurrent pollers of the same epoch.
type EstimateInput struct {
	Running  []QueryState    // admitted queries (blocked ones carry Weight 0)
	Queued   []QueryState    // admission queue, FIFO order
	MPL      int             // admission limit (0 = unlimited)
	RateC    float64         // processing rate C in U/s
	Speeds   map[int]float64 // observed per-query execution speeds in U/s
	Arrivals *ArrivalModel   // optional §2.4 future-arrival model
}

// Estimates is the bundle ComputeEstimates derives from one input: both
// indicators for every admitted and queued query, plus the system quiescent
// ETA — seconds until all *known* work drains, ignoring hypothetical future
// arrivals (matching §2.3's definition of quiescence).
type Estimates struct {
	PerQuery  map[int]Estimate
	Quiescent float64
	// Weights maps ensemble member name to its blend weight for this pass
	// (nil on the classic stage path, which runs no ensemble).
	Weights map[string]float64
	// members holds each member's raw per-query ETA (index order follows
	// MemberNames); only ensemble modes fill it, for calibration accounting.
	members [numMembers]map[int]float64
}

// ComputeEstimates computes the full estimate bundle from one immutable
// snapshot of the system. It is a pure function: the same input always yields
// the same output, nothing is retained, and nothing live is touched.
func ComputeEstimates(in EstimateInput) Estimates {
	var base Profile
	if len(in.Queued) == 0 {
		// An empty admission queue degenerates to §2.2's closed form — the
		// same fast path MultiQueryWithQueue takes, so ComputeEstimates and
		// EstimateAll stay exactly equal, and the same materialization the
		// incremental stage structure reproduces bit-for-bit.
		base = ComputeProfile(in.Running, in.RateC)
	} else {
		base = SimulateProfile(in.Running, in.RateC, SimOptions{MPL: in.MPL, Queued: in.Queued})
	}
	multi := base.Finish
	if in.Arrivals != nil {
		multi = SimulateProfile(in.Running, in.RateC,
			SimOptions{MPL: in.MPL, Queued: in.Queued, Arrivals: in.Arrivals}).Finish
	}
	quiescent := 0.0
	for _, f := range base.Finish {
		if !math.IsInf(f, 1) && f > quiescent {
			quiescent = f
		}
	}
	return Estimates{
		PerQuery:  bundleEstimates(in.Running, in.Queued, in.Speeds, multi),
		Quiescent: quiescent,
	}
}

// IncrementalEstimator is ComputeEstimates with a maintained stage structure:
// repeated calls over a slowly changing mix reuse the sorted stage order and
// patch only what changed, refilling the bundle in O(n + changed·log n)
// instead of re-sorting in O(n log n). Results are bit-identical to
// ComputeEstimates on the same input — the service tests and the sim's I6
// invariant pin this. When the input has a non-empty admission queue or an
// arrival model, the event-stepped simulation is the only correct estimator
// and the call falls back to ComputeEstimates verbatim. The zero value is
// ready to use; not safe for concurrent use (the service serializes the read
// path behind a mutex).
type IncrementalEstimator struct {
	prof *IncrementalProfile
	base Profile // reused materialization target
}

// Estimates computes the same bundle ComputeEstimates would, maintaining the
// incremental stage structure across calls.
func (e *IncrementalEstimator) Estimates(in EstimateInput) Estimates {
	if len(in.Queued) > 0 || in.Arrivals != nil {
		return ComputeEstimates(in)
	}
	if e.prof == nil {
		e.prof = NewIncrementalProfile()
	}
	e.prof.Sync(in.Running)
	e.prof.ProfileInto(in.RateC, &e.base)
	quiescent := 0.0
	for _, f := range e.base.Finish {
		if !math.IsInf(f, 1) && f > quiescent {
			quiescent = f
		}
	}
	return Estimates{
		PerQuery:  bundleEstimates(in.Running, in.Queued, in.Speeds, e.base.Finish),
		Quiescent: quiescent,
	}
}

// EstimateAll computes both indicators for every admitted and queued query
// from one consistent snapshot. speeds maps query ID to its observed
// execution speed in U/s (missing entries mean "no observation yet", which
// yields a +Inf single-query estimate). A non-nil arrival model switches the
// multi-query estimate from the §2.3 queue-aware form to the §2.4
// future-aware form.
func EstimateAll(running, queued []QueryState, mpl int, C float64, speeds map[int]float64, am *ArrivalModel) map[int]Estimate {
	var multi map[int]float64
	if am != nil {
		multi = MultiQueryWithFuture(running, queued, mpl, C, *am)
	} else {
		multi = MultiQueryWithQueue(running, queued, mpl, C)
	}
	return bundleEstimates(running, queued, speeds, multi)
}

// bundleEstimates pairs the per-query multi-query finish times with the
// single-query c/s estimates.
func bundleEstimates(running, queued []QueryState, speeds map[int]float64, multi map[int]float64) map[int]Estimate {
	out := make(map[int]Estimate, len(running)+len(queued))
	add := func(states []QueryState) {
		for _, q := range states {
			m := multi[q.ID]
			out[q.ID] = Estimate{
				SingleQuery: SingleQueryRemainingTime(q.Remaining, speeds[q.ID]),
				MultiQuery:  m,
				ETALow:      m,
				ETAHigh:     m,
			}
		}
	}
	add(running)
	add(queued)
	return out
}
