package core

// Estimate bundles the two competing remaining-time views of one query, the
// comparison the paper's evaluation is built around: the single-query PI's
// t = c/s against the multi-query stage model.
type Estimate struct {
	// SingleQuery is the classic estimate c/s from the query's currently
	// observed speed (+Inf when the speed is zero, e.g. blocked or queued).
	SingleQuery float64
	// MultiQuery is the stage-model estimate, aware of the other running
	// queries, the admission queue, and (optionally) predicted arrivals.
	MultiQuery float64
}

// EstimateAll computes both indicators for every admitted and queued query
// from one consistent snapshot. speeds maps query ID to its observed
// execution speed in U/s (missing entries mean "no observation yet", which
// yields a +Inf single-query estimate). A non-nil arrival model switches the
// multi-query estimate from the §2.3 queue-aware form to the §2.4
// future-aware form.
func EstimateAll(running, queued []QueryState, mpl int, C float64, speeds map[int]float64, am *ArrivalModel) map[int]Estimate {
	var multi map[int]float64
	if am != nil {
		multi = MultiQueryWithFuture(running, queued, mpl, C, *am)
	} else {
		multi = MultiQueryWithQueue(running, queued, mpl, C)
	}
	out := make(map[int]Estimate, len(running)+len(queued))
	add := func(states []QueryState) {
		for _, q := range states {
			out[q.ID] = Estimate{
				SingleQuery: SingleQueryRemainingTime(q.Remaining, speeds[q.ID]),
				MultiQuery:  multi[q.ID],
			}
		}
	}
	add(running)
	add(queued)
	return out
}
