package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func randomEnsembleInput(rng *rand.Rand) EstimateInput {
	in := EstimateInput{RateC: 50 + rng.Float64()*150, Speeds: map[int]float64{}}
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		q := QueryState{
			ID:        i + 1,
			Remaining: rng.Float64() * 500,
			Weight:    float64(rng.Intn(4)), // weight 0 = blocked
			Done:      rng.Float64() * 100,
		}
		in.Running = append(in.Running, q)
		if rng.Intn(2) == 0 {
			in.Speeds[q.ID] = rng.Float64() * 80
		}
	}
	for i := 0; i < rng.Intn(3); i++ {
		in.Queued = append(in.Queued, QueryState{ID: 100 + i, Remaining: rng.Float64() * 200, Weight: 1})
	}
	if len(in.Queued) > 0 {
		in.MPL = n
	}
	return in
}

// TestStageEstimatorBitIdentical: the "stage" mode of the pluggable plane is
// the pre-ensemble pipeline verbatim — across random inputs (including queued
// work, which exercises the simulation fallback) its output must be bitwise
// equal to ComputeEstimates, with degenerate bands and no weights. This is
// the unit-level half of sim invariant I13.
func TestStageEstimatorBitIdentical(t *testing.T) {
	est, err := NewEstimator(EstimatorStage)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		in := randomEnsembleInput(rng)
		got := est.Estimates(in, EnsembleState{})
		want := ComputeEstimates(in)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: stage estimator diverged\n got %+v\nwant %+v", trial, got, want)
		}
		if got.Weights != nil {
			t.Fatalf("trial %d: stage mode reported weights %v", trial, got.Weights)
		}
		for id, e := range got.PerQuery {
			if e.ETALow != e.MultiQuery || e.ETAHigh != e.MultiQuery {
				if !(math.IsInf(e.MultiQuery, 1) && math.IsInf(e.ETALow, 1) && math.IsInf(e.ETAHigh, 1)) {
					t.Fatalf("trial %d Q%d: stage band not degenerate: %+v", trial, id, e)
				}
			}
		}
	}
}

// TestNewEstimatorModes: "" defaults to stage, each named mode reports
// itself, and unknown modes are rejected with a message listing the valid
// ones.
func TestNewEstimatorModes(t *testing.T) {
	def, err := NewEstimator("")
	if err != nil || def.Mode() != EstimatorStage {
		t.Fatalf(`NewEstimator("") = %v, %v; want stage`, def, err)
	}
	for _, mode := range EstimatorModes() {
		e, err := NewEstimator(mode)
		if err != nil {
			t.Fatalf("NewEstimator(%q): %v", mode, err)
		}
		if e.Mode() != mode {
			t.Fatalf("NewEstimator(%q).Mode() = %q", mode, e.Mode())
		}
	}
	if _, err := NewEstimator("oracle"); err == nil {
		t.Fatal("unknown estimator accepted")
	} else {
		for _, mode := range EstimatorModes() {
			if !containsStr(err.Error(), mode) {
				t.Fatalf("error %q does not list valid mode %q", err, mode)
			}
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEnsembleBandsContainPoint: in every non-stage mode the band must
// bracket the blended point for every query with a finite ETA, the point must
// sit within the raw member range, and weights must be normalized.
func TestEnsembleBandsContainPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, mode := range []string{EstimatorCost, EstimatorSpeed, EstimatorEnsemble} {
		est, err := NewEstimator(mode)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			in := randomEnsembleInput(rng)
			got := est.Estimates(in, EnsembleState{})
			sum := 0.0
			for _, w := range got.Weights {
				if w < 0 {
					t.Fatalf("%s trial %d: negative weight %v", mode, trial, got.Weights)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s trial %d: weights %v sum to %g", mode, trial, got.Weights, sum)
			}
			for id, e := range got.PerQuery {
				if math.IsInf(e.MultiQuery, 1) {
					if !math.IsInf(e.ETALow, 1) || !math.IsInf(e.ETAHigh, 1) {
						t.Fatalf("%s trial %d Q%d: infinite point with finite band %+v", mode, trial, id, e)
					}
					continue
				}
				if !(e.ETALow <= e.MultiQuery && e.MultiQuery <= e.ETAHigh) {
					t.Fatalf("%s trial %d Q%d: band [%g,%g] misses point %g",
						mode, trial, id, e.ETALow, e.ETAHigh, e.MultiQuery)
				}
				if e.ETALow < 0 {
					t.Fatalf("%s trial %d Q%d: negative band low %g", mode, trial, id, e.ETALow)
				}
				if e.MultiQuery > 0 && e.ETAHigh-e.ETALow <= 0 {
					t.Fatalf("%s trial %d Q%d: band collapsed for nonzero ETA %+v", mode, trial, id, e)
				}
			}
		}
	}
}

// TestForcedMemberModes: cost/speed modes select a single member (degenerate
// weights) and their point equals that member's raw ETA.
func TestForcedMemberModes(t *testing.T) {
	in := EstimateInput{
		Running: []QueryState{
			{ID: 1, Remaining: 100, Weight: 1},
			{ID: 2, Remaining: 300, Weight: 2},
		},
		RateC:  100,
		Speeds: map[int]float64{1: 20, 2: 80},
	}
	st := EnsembleState{SpeedEWMA: map[int]float64{1: 25, 2: 70}}

	costEst, _ := NewEstimator(EstimatorCost)
	got := costEst.Estimates(in, st)
	if got.Weights[EstimatorCost] != 1 || got.Weights[EstimatorStage] != 0 || got.Weights[EstimatorSpeed] != 0 {
		t.Fatalf("cost mode weights = %v", got.Weights)
	}
	// Q1: share = 100·(1/3) = 33.33, blended with observed 20 → 26.67 U/s.
	wantQ1 := 100 / ((20 + 100.0/3) / 2)
	if math.Abs(got.PerQuery[1].MultiQuery-wantQ1) > 1e-9 {
		t.Fatalf("cost mode Q1 = %g, want %g", got.PerQuery[1].MultiQuery, wantQ1)
	}

	speedEst, _ := NewEstimator(EstimatorSpeed)
	got = speedEst.Estimates(in, st)
	if got.Weights[EstimatorSpeed] != 1 {
		t.Fatalf("speed mode weights = %v", got.Weights)
	}
	if want := 100 / 25.0; math.Abs(got.PerQuery[1].MultiQuery-want) > 1e-9 {
		t.Fatalf("speed mode Q1 = %g, want %g (EWMA speed 25)", got.PerQuery[1].MultiQuery, want)
	}
}

// TestEnsembleBlockedQueryInfinite: a blocked query (weight 0) must report
// +Inf from every member — a stale observed speed must not leak a finite ETA
// for work that cannot progress.
func TestEnsembleBlockedQueryInfinite(t *testing.T) {
	in := EstimateInput{
		Running: []QueryState{
			{ID: 1, Remaining: 100, Weight: 1},
			{ID: 2, Remaining: 100, Weight: 0}, // blocked, but has a stale speed
		},
		RateC:  100,
		Speeds: map[int]float64{2: 50},
	}
	st := EnsembleState{SpeedEWMA: map[int]float64{2: 50}}
	for _, mode := range []string{EstimatorCost, EstimatorSpeed, EstimatorEnsemble} {
		est, _ := NewEstimator(mode)
		got := est.Estimates(in, st)
		if !math.IsInf(got.PerQuery[2].MultiQuery, 1) {
			t.Fatalf("%s: blocked query ETA = %g, want +Inf", mode, got.PerQuery[2].MultiQuery)
		}
	}
}

// TestEnsembleQueuedBacklog: queued queries get the FIFO backlog view —
// runnable remaining work plus the queue ahead, drained at C.
func TestEnsembleQueuedBacklog(t *testing.T) {
	in := EstimateInput{
		Running: []QueryState{
			{ID: 1, Remaining: 100, Weight: 1},
			{ID: 9, Remaining: 70, Weight: 0}, // blocked: excluded from backlog
		},
		Queued: []QueryState{
			{ID: 2, Remaining: 200, Weight: 1},
			{ID: 3, Remaining: 100, Weight: 1},
		},
		MPL:   1,
		RateC: 100,
	}
	est, _ := NewEstimator(EstimatorCost)
	got := est.Estimates(in, EnsembleState{})
	if want := (100 + 200.0) / 100; math.Abs(got.PerQuery[2].MultiQuery-want) > 1e-9 {
		t.Fatalf("queued Q2 = %g, want %g", got.PerQuery[2].MultiQuery, want)
	}
	if want := (100 + 200 + 100.0) / 100; math.Abs(got.PerQuery[3].MultiQuery-want) > 1e-9 {
		t.Fatalf("queued Q3 = %g, want %g", got.PerQuery[3].MultiQuery, want)
	}
}

// TestEnsembleCalibWeights: after residuals land, the blender must weight the
// historically better member higher; before any residual, weights are equal.
func TestEnsembleCalibWeights(t *testing.T) {
	uncal := blendWeights(EstimatorEnsemble, EnsembleState{})
	for i := range uncal {
		if math.Abs(uncal[i]-1.0/numMembers) > 1e-12 {
			t.Fatalf("uncalibrated weights = %v, want equal", uncal)
		}
	}
	st := EnsembleState{
		Samples: 5,
		Errors:  map[string]float64{EstimatorStage: 1.0, EstimatorCost: 10.0, EstimatorSpeed: 10.0},
	}
	w := blendWeights(EstimatorEnsemble, st)
	if !(w[memberStage] > w[memberCost] && w[memberStage] > w[memberSpeed]) {
		t.Fatalf("weights %v do not favor the lower-error member", w)
	}
	sum := w[memberStage] + w[memberCost] + w[memberSpeed]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights %v sum to %g", w, sum)
	}
}

// TestEnsembleCalibLifecycle: Observe records member predictions and bands,
// Finish folds residuals into rolling errors and scores band coverage, and
// Forget drops entries without a residual.
func TestEnsembleCalibLifecycle(t *testing.T) {
	est, _ := NewEstimator(EstimatorEnsemble)
	calib := NewEnsembleCalib()
	in := EstimateInput{
		Running: []QueryState{{ID: 1, Remaining: 100, Weight: 1}},
		RateC:   100,
		Speeds:  map[int]float64{1: 100},
	}
	bundle := est.Estimates(in, calib.State())
	calib.Observe(10, in, bundle)

	st := calib.State()
	if st.Samples != 0 || st.Errors != nil {
		t.Fatalf("state before any finish = %+v", st)
	}
	if st.SpeedEWMA[1] != 100 {
		t.Fatalf("speed EWMA seeded to %g, want 100", st.SpeedEWMA[1])
	}

	// All members predict finish at 10+1=11s with a ±10% band ([10.9,11.1]).
	// An actual finish at 11.05s gives every member a 0.05s first-sample
	// error — and lands inside the band.
	calib.Finish(1, 11.05)
	st = calib.State()
	if st.Samples != 1 {
		t.Fatalf("samples = %d, want 1", st.Samples)
	}
	for _, name := range MemberNames {
		if math.Abs(st.Errors[name]-0.05) > 1e-9 {
			t.Fatalf("member %s error = %g, want 0.05", name, st.Errors[name])
		}
	}
	within, finishes := calib.Coverage()
	if finishes != 1 || within != 1 {
		t.Fatalf("coverage = %d/%d, want 1/1", within, finishes)
	}

	// A second query observed then forgotten (abort) must not add a residual.
	in2 := EstimateInput{Running: []QueryState{{ID: 2, Remaining: 50, Weight: 1}}, RateC: 100}
	calib.Observe(20, in2, est.Estimates(in2, calib.State()))
	calib.Forget(2)
	calib.Finish(2, 99) // no recorded prediction → no-op
	st = calib.State()
	if st.Samples != 1 {
		t.Fatalf("forgotten query added a residual: samples = %d", st.Samples)
	}
	if _, ok := st.SpeedEWMA[2]; ok {
		t.Fatal("Forget left the speed EWMA entry behind")
	}

	// A finish far outside the band increments finishes but not within.
	in3 := EstimateInput{Running: []QueryState{{ID: 3, Remaining: 100, Weight: 1}}, RateC: 100, Speeds: map[int]float64{3: 100}}
	calib.Observe(30, in3, est.Estimates(in3, calib.State()))
	calib.Finish(3, 300)
	within, finishes = calib.Coverage()
	if finishes != 2 || within != 1 {
		t.Fatalf("coverage after miss = %d/%d, want 1/2", within, finishes)
	}
}

// TestEnsembleStateIsolated: State() returns copies — mutating the calib
// afterwards must not reach through into a previously published state.
func TestEnsembleStateIsolated(t *testing.T) {
	calib := NewEnsembleCalib()
	in := EstimateInput{Running: []QueryState{{ID: 1, Remaining: 10, Weight: 1}}, RateC: 10, Speeds: map[int]float64{1: 5}}
	calib.Observe(0, in, Estimates{})
	st := calib.State()
	calib.Observe(1, EstimateInput{Running: in.Running, Speeds: map[int]float64{1: 50}, RateC: 10}, Estimates{})
	if st.SpeedEWMA[1] != 5 {
		t.Fatalf("published state mutated: EWMA = %g, want 5", st.SpeedEWMA[1])
	}
}

// TestSortedWeights: canonical member order first, unknown members last.
func TestSortedWeights(t *testing.T) {
	w := map[string]float64{EstimatorSpeed: 0.2, EstimatorStage: 0.5, EstimatorCost: 0.3}
	got := SortedWeights(w)
	if len(got) != 3 || got[0].Member != EstimatorStage || got[1].Member != EstimatorCost || got[2].Member != EstimatorSpeed {
		t.Fatalf("SortedWeights order = %+v", got)
	}
	if got[0].Weight != 0.5 {
		t.Fatalf("SortedWeights dropped values: %+v", got)
	}
}
