package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// TestProfileFigure1 reproduces the paper's Figure 1 setting: n equal-
// priority queries finish in ascending remaining-cost order, one per stage.
func TestProfileFigure1(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 200, Weight: 1},
		{ID: 3, Remaining: 300, Weight: 1},
		{ID: 4, Remaining: 400, Weight: 1},
	}
	C := 100.0
	p := ComputeProfile(states, C)
	if len(p.Order) != 4 {
		t.Fatalf("order: %v", p.Order)
	}
	for i, id := range []int{1, 2, 3, 4} {
		if p.Order[i] != id {
			t.Fatalf("finish order: %v", p.Order)
		}
	}
	// Stage 1: Q1 runs at C/4=25: t1 = 100/25 = 4.
	// Stage 2: Q2 has 200-100=100 left at C/3: t2 = 3.
	// Stage 3: Q3 has 300-200=100 left at C/2: t3 = 2.
	// Stage 4: Q4 has 400-300=100 left at C:   t4 = 1.
	wantDur := []float64{4, 3, 2, 1}
	for i, w := range wantDur {
		if !almostEq(p.StageDur[i], w) {
			t.Errorf("t%d = %g, want %g", i+1, p.StageDur[i], w)
		}
	}
	wantFinish := map[int]float64{1: 4, 2: 7, 3: 9, 4: 10}
	for id, w := range wantFinish {
		if !almostEq(p.Finish[id], w) {
			t.Errorf("r%d = %g, want %g", id, p.Finish[id], w)
		}
	}
	// Work conservation: quiescent time = total work / C.
	if !almostEq(p.QuiescentTime(), 10) {
		t.Errorf("quiescent = %g", p.QuiescentTime())
	}
}

// TestProfileWeights checks Assumption 3: speed proportional to weight.
func TestProfileWeights(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 3}, // ratio 33.3
		{ID: 2, Remaining: 100, Weight: 1}, // ratio 100
	}
	C := 4.0
	p := ComputeProfile(states, C)
	// Q1 runs at 3 U/s: finishes at 33.33s. Then Q2 (66.67 left) at 4 U/s:
	// finishes at 33.33 + 16.67 = 50.
	if !almostEq(p.Finish[1], 100.0/3) {
		t.Errorf("r1 = %g", p.Finish[1])
	}
	if !almostEq(p.Finish[2], 50) {
		t.Errorf("r2 = %g", p.Finish[2])
	}
}

func TestProfileEdgeCases(t *testing.T) {
	// Zero C: everything unfinishable.
	p := ComputeProfile([]QueryState{{ID: 1, Remaining: 10, Weight: 1}}, 0)
	if !math.IsInf(p.Finish[1], 1) {
		t.Errorf("C=0 finish = %g", p.Finish[1])
	}
	// Blocked query (weight 0) never finishes; others unaffected by it.
	p = ComputeProfile([]QueryState{
		{ID: 1, Remaining: 10, Weight: 0},
		{ID: 2, Remaining: 10, Weight: 1},
	}, 10)
	if !math.IsInf(p.Finish[1], 1) {
		t.Errorf("blocked query finish = %g", p.Finish[1])
	}
	if !almostEq(p.Finish[2], 1) {
		t.Errorf("runnable query finish = %g", p.Finish[2])
	}
	// Zero-remaining query finishes immediately.
	p = ComputeProfile([]QueryState{
		{ID: 1, Remaining: 0, Weight: 1},
		{ID: 2, Remaining: 10, Weight: 1},
	}, 10)
	if !almostEq(p.Finish[1], 0) {
		t.Errorf("empty query finish = %g", p.Finish[1])
	}
	if !almostEq(p.Finish[2], 1) {
		t.Errorf("r2 = %g (empty peer should cost no time)", p.Finish[2])
	}
	// Negative remaining is clamped.
	p = ComputeProfile([]QueryState{{ID: 1, Remaining: -5, Weight: 1}}, 10)
	if !almostEq(p.Finish[1], 0) {
		t.Errorf("negative remaining: %g", p.Finish[1])
	}
	// Empty input.
	p = ComputeProfile(nil, 10)
	if len(p.Order) != 0 || p.QuiescentTime() != 0 {
		t.Errorf("empty profile: %+v", p)
	}
}

// TestSimulationMatchesClosedForm is the central cross-check: the event
// simulation with no queue and no arrivals must agree with the closed-form
// stage algorithm on random inputs.
func TestSimulationMatchesClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		states := make([]QueryState, n)
		for i := range states {
			states[i] = QueryState{
				ID:        i + 1,
				Remaining: rng.Float64() * 1000,
				Weight:    0.5 + 2*rng.Float64(),
			}
		}
		C := 10 + 100*rng.Float64()
		closed := ComputeProfile(states, C)
		sim := SimulateProfile(states, C, SimOptions{})
		for id, want := range closed.Finish {
			if !almostEq(sim.Finish[id], want) {
				t.Logf("seed %d id %d: sim %g, closed %g", seed, id, sim.Finish[id], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSimulateWithQueue reproduces the NAQ setting analytically: MPL 2,
// three queries with costs 50k, 10k, 20k (NAQ's N-proportional costs).
func TestSimulateWithQueue(t *testing.T) {
	C := 70.0
	running := []QueryState{
		{ID: 1, Remaining: 5000, Weight: 1},
		{ID: 2, Remaining: 1000, Weight: 1},
	}
	queued := []QueryState{{ID: 3, Remaining: 2000, Weight: 1}}
	p := SimulateProfile(running, C, SimOptions{MPL: 2, Queued: queued})
	// Q2 finishes at 2×1000/70 = 28.57. Q3 admitted, finishes 28.57 + 2×2000/70
	// = 85.71. Q1: work conservation → 8000/70 = 114.29.
	if !almostEq(p.Finish[2], 2000.0/70) {
		t.Errorf("r2 = %g", p.Finish[2])
	}
	if !almostEq(p.Finish[3], 2000.0/70+4000.0/70) {
		t.Errorf("r3 = %g", p.Finish[3])
	}
	if !almostEq(p.Finish[1], 8000.0/70) {
		t.Errorf("r1 = %g", p.Finish[1])
	}
}

// TestQueueAwareBeatsQueueBlind: when the queue is non-empty, the queue-aware
// profile must predict a later finish for the long-running query than the
// queue-blind profile (which misses the extra load) — the Figure 5 effect.
func TestQueueAwareBeatsQueueBlind(t *testing.T) {
	C := 70.0
	running := []QueryState{
		{ID: 1, Remaining: 5000, Weight: 1},
		{ID: 2, Remaining: 1000, Weight: 1},
	}
	queued := []QueryState{{ID: 3, Remaining: 2000, Weight: 1}}
	blind := ComputeProfile(running, C)
	aware := SimulateProfile(running, C, SimOptions{MPL: 2, Queued: queued})
	if aware.Finish[1] <= blind.Finish[1] {
		t.Errorf("queue-aware %g should exceed queue-blind %g", aware.Finish[1], blind.Finish[1])
	}
	// Exactly the queued query's drain time longer (work conservation).
	if !almostEq(aware.Finish[1]-blind.Finish[1], 2000.0/70) {
		t.Errorf("delta = %g", aware.Finish[1]-blind.Finish[1])
	}
}

// TestQueueUnlimitedMPLAdmitsImmediately: MPL 0 means no admission limit.
func TestQueueUnlimitedMPLAdmitsImmediately(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 100, Weight: 1}}
	queued := []QueryState{{ID: 2, Remaining: 100, Weight: 1}}
	p := SimulateProfile(running, 10, SimOptions{Queued: queued})
	// Both share from t=0: both finish at 20.
	if !almostEq(p.Finish[1], 20) || !almostEq(p.Finish[2], 20) {
		t.Errorf("finish: %g, %g", p.Finish[1], p.Finish[2])
	}
}

// TestFutureArrivalsSlowDown: predicted arrivals must strictly increase the
// estimate for queries that finish after the first arrival, and the effect
// must grow with λ'.
func TestFutureArrivalsSlowDown(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 2000, Weight: 1},
	}
	C := 10.0
	base := ComputeProfile(states, C).Finish[2]
	prev := base
	for _, lambda := range []float64{0.005, 0.01, 0.02} {
		am := ArrivalModel{Lambda: lambda, AvgCost: 200, AvgWeight: 1}
		got := SimulateProfile(states, C, SimOptions{Arrivals: &am}).Finish[2]
		if got <= prev {
			t.Errorf("λ=%g: finish %g should exceed %g", lambda, got, prev)
		}
		prev = got
	}
}

// TestFutureArrivalsRespectWindow: arrivals beyond the window are ignored,
// keeping the estimate finite even for absurd λ'.
func TestFutureArrivalsRespectWindow(t *testing.T) {
	states := []QueryState{{ID: 1, Remaining: 1000, Weight: 1}}
	C := 10.0
	am := ArrivalModel{Lambda: 10, AvgCost: 1000, AvgWeight: 1} // 100× overload
	p := SimulateProfile(states, C, SimOptions{Arrivals: &am})
	got := p.Finish[1]
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("estimate must stay finite, got %g", got)
	}
	if got <= 100 {
		t.Errorf("arrivals ignored entirely: %g", got)
	}
	// With an explicit tiny window, only ~window×λ arrivals are injected.
	small := SimulateProfile(states, C, SimOptions{
		Arrivals:      &ArrivalModel{Lambda: 10, AvgCost: 1000, AvgWeight: 1},
		ArrivalWindow: 0.05, // before the first 0.1s arrival
	})
	if !almostEq(small.Finish[1], 100) {
		t.Errorf("window=0.05 should see no arrivals: %g", small.Finish[1])
	}
}

// TestArrivalsZeroLambdaIsNoop: a zero-rate arrival model changes nothing.
func TestArrivalsZeroLambdaIsNoop(t *testing.T) {
	states := []QueryState{{ID: 1, Remaining: 500, Weight: 1}}
	am := ArrivalModel{Lambda: 0, AvgCost: 100, AvgWeight: 1}
	got := SimulateProfile(states, 10, SimOptions{Arrivals: &am}).Finish[1]
	if !almostEq(got, 50) {
		t.Errorf("finish = %g, want 50", got)
	}
}

// TestSimulateAllBlocked: if every admitted query is blocked, nothing
// finishes and queued queries never start.
func TestSimulateAllBlocked(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 10, Weight: 0}}
	queued := []QueryState{{ID: 2, Remaining: 10, Weight: 1}}
	p := SimulateProfile(running, 10, SimOptions{MPL: 1, Queued: queued})
	if !math.IsInf(p.Finish[1], 1) || !math.IsInf(p.Finish[2], 1) {
		t.Errorf("finish: %v", p.Finish)
	}
}

// TestWorkConservation: for any instance, the quiescent time equals total
// work / C regardless of weights (weighted fair sharing is work-conserving).
func TestWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		total := 0.0
		states := make([]QueryState, n)
		for i := range states {
			c := rng.Float64() * 500
			total += c
			states[i] = QueryState{ID: i + 1, Remaining: c, Weight: 0.1 + rng.Float64()}
		}
		C := 5 + 50*rng.Float64()
		p := ComputeProfile(states, C)
		return almostEq(p.QuiescentTime(), total/C)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFinishOrderMatchesRatio: finish order is ascending c/w (paper's
// equation 1), for any weights.
func TestFinishOrderMatchesRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		states := make([]QueryState, n)
		for i := range states {
			states[i] = QueryState{ID: i + 1, Remaining: 1 + rng.Float64()*500, Weight: 0.1 + rng.Float64()}
		}
		C := 10.0
		p := ComputeProfile(states, C)
		byID := make(map[int]QueryState, n)
		for _, q := range states {
			byID[q.ID] = q
		}
		for i := 1; i < len(p.Order); i++ {
			a, b := byID[p.Order[i-1]], byID[p.Order[i]]
			if a.Remaining/a.Weight > b.Remaining/b.Weight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStageDiagram(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 200, Weight: 1},
		{ID: 3, Remaining: 300, Weight: 1},
		{ID: 4, Remaining: 400, Weight: 1},
	}
	out := StageDiagram(states, 100, 40)
	for _, frag := range []string{"Q1", "Q4", "finishes at 4.0s", "finishes at 10.0s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("diagram missing %q:\n%s", frag, out)
		}
	}
	// A blocked query renders as a flat line (the Figure 2 case).
	blocked := append([]QueryState{{ID: 5, Remaining: 500, Weight: 0}}, states...)
	out = StageDiagram(blocked, 100, 40)
	if !strings.Contains(out, "blocked") {
		t.Errorf("blocked row missing:\n%s", out)
	}
	// Degenerate inputs.
	if out := StageDiagram(nil, 100, 0); !strings.Contains(out, "no runnable") {
		t.Errorf("empty diagram: %q", out)
	}
	if out := StageDiagram([]QueryState{{ID: 1, Remaining: 0, Weight: 1}}, 100, 10); !strings.Contains(out, "finished") {
		t.Errorf("zero-work diagram: %q", out)
	}
}

// TestAdversarialInputsNeverPanicOrHang: NaN, Inf, and negative states must
// produce finite-time, panic-free results from both algorithms.
func TestAdversarialInputsNeverPanicOrHang(t *testing.T) {
	poison := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0, 1e308, 5}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(6)
		states := make([]QueryState, n)
		for i := range states {
			states[i] = QueryState{
				ID:        i + 1,
				Remaining: poison[rng.Intn(len(poison))],
				Weight:    poison[rng.Intn(len(poison))],
				Done:      poison[rng.Intn(len(poison))],
			}
		}
		C := poison[rng.Intn(len(poison))]
		p := ComputeProfile(states, C)
		for id, f := range p.Finish {
			if math.IsNaN(f) {
				t.Fatalf("trial %d: NaN finish for %d (states %+v, C=%g)", trial, id, states, C)
			}
		}
		var queued []QueryState
		if n > 1 {
			queued = states[n-1:]
		}
		am := &ArrivalModel{Lambda: rng.Float64() * 0.1, AvgCost: poison[rng.Intn(len(poison))], AvgWeight: 1}
		sp := SimulateProfile(states[:n-len(queued)], C, SimOptions{MPL: rng.Intn(3), Queued: queued, Arrivals: am})
		for id, f := range sp.Finish {
			if math.IsNaN(f) {
				t.Fatalf("trial %d: NaN sim finish for %d", trial, id)
			}
		}
	}
}

// TestSimulateQueuedBehindVirtualArrivals is the regression test for queued
// real queries being marked +Inf when only virtual arrivals occupy the active
// set: virtuals bypass the admission queue (they model load, not admissions)
// but still finish in finite time and free their MPL slots, so a queued real
// query must inherit a finite ETA instead of "never".
//
// Construction: MPL 1, C 10. q1 (10 U) runs alone; one virtual arrival (8 U)
// lands at t=0.5 (λ=2, window 0.6 keeps it to exactly one). From t=0.5 both
// share C: q1 finishes its last 5 U at t=1.5, leaving only the virtual active
// — the state the old code treated as terminal, freezing q2 at +Inf. The
// virtual's remaining 3 U drain by t=1.8, q2 is admitted and finishes at
// t=2.8.
func TestSimulateQueuedBehindVirtualArrivals(t *testing.T) {
	running := []QueryState{{ID: 1, Remaining: 10, Weight: 1}}
	queued := []QueryState{{ID: 2, Remaining: 10, Weight: 1}}
	prof := SimulateProfile(running, 10, SimOptions{
		MPL:           1,
		Queued:        queued,
		Arrivals:      &ArrivalModel{Lambda: 2, AvgCost: 8, AvgWeight: 1},
		ArrivalWindow: 0.6,
	})
	if !almostEq(prof.Finish[1], 1.5) {
		t.Errorf("q1 finish = %v, want 1.5", prof.Finish[1])
	}
	if math.IsInf(prof.Finish[2], 1) {
		t.Fatalf("q2 stuck at +Inf behind a virtual-only active set")
	}
	if !almostEq(prof.Finish[2], 2.8) {
		t.Errorf("q2 finish = %v, want 2.8", prof.Finish[2])
	}
}

// TestSimulateSimultaneousFinishTieOrder pins the canonical tie order:
// queries that finish at the same instant retire in ascending ID order — the
// order ComputeProfile's (ratio, ID) sort produces — not in active-slice
// insertion order, so the two models stay bit-comparable.
func TestSimulateSimultaneousFinishTieOrder(t *testing.T) {
	states := []QueryState{
		{ID: 7, Remaining: 100, Weight: 1},
		{ID: 3, Remaining: 100, Weight: 1},
		{ID: 5, Remaining: 50, Weight: 1},
	}
	prof := SimulateProfile(states, 10, SimOptions{})
	want := []int{5, 3, 7}
	if len(prof.Order) != len(want) {
		t.Fatalf("order %v, want %v", prof.Order, want)
	}
	for i, id := range want {
		if prof.Order[i] != id {
			t.Fatalf("order %v, want %v (ties must retire by ascending ID)", prof.Order, want)
		}
	}
	closed := ComputeProfile(states, 10)
	for i := range want {
		if prof.Order[i] != closed.Order[i] {
			t.Fatalf("simulated order %v differs from closed-form order %v", prof.Order, closed.Order)
		}
	}
}

// TestProfileSharedStages: ComputeProfile inventories fold groups in order of
// first appearance in stage order, member IDs ascending; blocked members are
// excluded, solo queries never appear.
func TestProfileSharedStages(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1, Fold: 7},
		{ID: 2, Remaining: 100, Weight: 1, Fold: 7},
		{ID: 3, Remaining: 10, Weight: 1},          // solo, finishes first
		{ID: 4, Remaining: 40, Weight: 1, Fold: 9}, // earlier stage than group 7
		{ID: 5, Remaining: 45, Weight: 1, Fold: 9},
		{ID: 6, Remaining: 100, Weight: 0, Fold: 7}, // blocked: not in Shared
	}
	prof := ComputeProfile(states, 10)
	if len(prof.Shared) != 2 {
		t.Fatalf("shared = %v, want 2 groups", prof.Shared)
	}
	if prof.Shared[0].Fold != 9 || prof.Shared[1].Fold != 7 {
		t.Errorf("group order %d,%d, want 9,7 (first appearance in stage order)",
			prof.Shared[0].Fold, prof.Shared[1].Fold)
	}
	if got := prof.Shared[0].IDs; len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("group 9 members %v, want [4 5]", got)
	}
	if got := prof.Shared[1].IDs; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("group 7 members %v, want [1 2]", got)
	}

	// No folds: no Shared inventory at all.
	if p := ComputeProfile([]QueryState{{ID: 1, Remaining: 5, Weight: 1}}, 10); p.Shared != nil {
		t.Errorf("solo profile has Shared = %v", p.Shared)
	}
}

// TestSimulateProfileBoundaries pins the simulator's degenerate corners,
// where the event loop never takes a step or takes zero-length ones: an
// empty system, zero-cost queries on both sides of the admission fence, and
// the single-query case, which must agree with the closed form exactly.
func TestSimulateProfileBoundaries(t *testing.T) {
	// Empty system: no running set, no queue. No stages, no finishes, zero
	// quiescent time — and no panic from an empty event heap.
	p := SimulateProfile(nil, 100, SimOptions{})
	if len(p.Order) != 0 || len(p.Finish) != 0 || p.QuiescentTime() != 0 {
		t.Errorf("empty system profile: %+v", p)
	}
	p = SimulateProfile([]QueryState{}, 100, SimOptions{MPL: 2, Queued: []QueryState{}})
	if len(p.Order) != 0 || len(p.Finish) != 0 || p.QuiescentTime() != 0 {
		t.Errorf("empty running + empty queue profile: %+v", p)
	}

	// Queue only: with every slot free, the queue drains from time 0 even
	// though nothing was running when the simulation started.
	p = SimulateProfile(nil, 100, SimOptions{MPL: 1, Queued: []QueryState{{ID: 7, Remaining: 200, Weight: 1}}})
	if !almostEq(p.Finish[7], 2) {
		t.Errorf("queue-only finish = %g, want 2", p.Finish[7])
	}

	// Zero-cost queries finish at time 0 on both sides of the admission
	// fence and add nothing to anyone else's estimate.
	p = SimulateProfile([]QueryState{
		{ID: 1, Remaining: 0, Weight: 1},
		{ID: 2, Remaining: 50, Weight: 1},
	}, 100, SimOptions{MPL: 2, Queued: []QueryState{{ID: 3, Remaining: 0, Weight: 1}}})
	if !almostEq(p.Finish[1], 0) || !almostEq(p.Finish[3], 0) {
		t.Errorf("zero-cost finishes: running %g, queued %g, want 0 and 0", p.Finish[1], p.Finish[3])
	}
	if !almostEq(p.Finish[2], 0.5) {
		t.Errorf("peer of zero-cost queries finishes at %g, want 0.5", p.Finish[2])
	}

	// Single quiescent query: simulation and closed form agree on the finish
	// and on the quiescent time, which is just c/C at full capacity.
	states := []QueryState{{ID: 1, Remaining: 123, Weight: 2}}
	sim := SimulateProfile(states, 10, SimOptions{})
	closed := ComputeProfile(states, 10)
	if !almostEq(sim.Finish[1], closed.Finish[1]) {
		t.Errorf("single query: sim %g vs closed %g", sim.Finish[1], closed.Finish[1])
	}
	if !almostEq(sim.QuiescentTime(), closed.QuiescentTime()) || !almostEq(sim.QuiescentTime(), 12.3) {
		t.Errorf("single-query quiescent: sim %g, closed %g, want 12.3",
			sim.QuiescentTime(), closed.QuiescentTime())
	}
}
