package core

import (
	"fmt"
	"math"
	"testing"
)

// Estimate-path benchmarks: from-scratch ComputeProfile against the
// incremental stage structure, over a slowly changing mix — the service's
// per-epoch shape, where a tick refines a handful of costs and at most one
// query arrives or finishes. The committed curve lives in EXPERIMENTS.md;
// the paper's point is that maintaining the §2.2 sort beats redoing it.

// benchStates builds n runnable queries with deterministically scattered
// costs and a small weight palette.
func benchStates(n int) []QueryState {
	states := make([]QueryState, n)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range states {
		rng = rng*6364136223846793005 + 1442695040888963407
		states[i] = QueryState{
			ID:        i + 1,
			Remaining: 1 + float64(rng%100000)/10,
			Weight:    []float64{1, 1, 2, 4}[(rng>>32)%4],
			Done:      0,
		}
	}
	return states
}

// mutateStates applies one epoch's worth of churn in place: ~8 cost
// refinements plus one membership change (a finish replaced by an arrival, so
// n stays constant and runs are comparable).
func mutateStates(states []QueryState, step int) {
	n := len(states)
	for k := 0; k < 8; k++ {
		i := (step*8 + k*131) % n
		states[i].Remaining = math.Max(0.1, states[i].Remaining*0.97)
	}
	j := (step * 977) % n
	states[j] = QueryState{
		ID:        n + step + 1,
		Remaining: 50 + float64((step*2654435761)%1000),
		Weight:    1,
	}
}

func BenchmarkEstimatePathFromScratch(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			states := benchStates(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mutateStates(states, i)
				b.StartTimer()
				prof := ComputeProfile(states, 1000)
				if len(prof.Finish) == 0 {
					b.Fatal("empty profile")
				}
			}
		})
	}
}

func BenchmarkEstimatePathIncremental(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			states := benchStates(n)
			p := NewIncrementalProfile()
			p.Sync(states)
			var out Profile
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mutateStates(states, i)
				b.StartTimer()
				p.Sync(states)
				p.ProfileInto(1000, &out)
				if len(out.Finish) == 0 {
					b.Fatal("empty profile")
				}
			}
		})
	}
}

// BenchmarkEstimatePathPerEvent measures the pure event path with no
// materialization: patch one query and read one finish time back — the
// O(log n) unit the progress-indicator poll loop pays per refinement when it
// needs a single query's ETA rather than the whole profile.
func BenchmarkEstimatePathPerEvent(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			states := benchStates(n)
			p := NewIncrementalProfile()
			p.Sync(states)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := states[i%n]
				q.Remaining = math.Max(0.1, q.Remaining*0.97)
				states[i%n] = q
				p.Upsert(q)
				if f, ok := p.FinishOf(q.ID, 1000); !ok || f < 0 {
					b.Fatal("lost query")
				}
			}
		})
	}
}
