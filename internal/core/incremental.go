package core

import "math"

// This file is the incremental stage model: a maintained sorted-by-c/w stage
// structure that patches per scheduling event instead of re-sorting, with
// ComputeProfile retained as the from-scratch oracle it must match bit for
// bit (pinned by the lockstep differential tests and the sim's I10
// invariant).
//
// The structure is a treap (an order-statistic tree keyed by the stage
// model's (c_i/w_i, ID) sort key) over a flat node slab, augmented with
// subtree count and suffix-weight/suffix-cost sums:
//
//	event                      operation             cost
//	arrival                    insert                O(log n)
//	finish / abort             delete                O(log n)
//	priority change            delete + insert       O(log n)
//	block / unblock            delete / insert       O(log n)
//	cost refinement            delete + insert       O(log n)
//	full-state reconcile       Sync                  O(n + changed·log n)
//	point estimate             FinishOf              O(log n)
//	full profile               ProfileInto           O(n)
//
// Heap priorities are splitmix64 of the query ID, so the tree shape is a
// deterministic function of the key set — no RNG state, and identical trees
// on every run and at every worker count.

// IncrementalProfile maintains the §2.2 stage order of a changing query mix.
// Queries with non-positive (sanitized) weight are held in a blocked side set
// rather than the tree, mirroring ComputeProfile's +Inf treatment. IDs are
// assumed unique — the structure is keyed by query identity, which
// ComputeProfile's pure-slice input has no notion of; duplicate IDs collapse
// to the latest Upsert. Not safe for concurrent use.
type IncrementalProfile struct {
	nodes []incNode
	free  int32 // head of the released-node free list, threaded through right
	root  int32
	byID  map[int]incEntry
	gen   uint64 // Sync liveness generation

	// Reused scratch: traversal stack, in-order node sequence, suffix weight
	// sums, and the stale-ID list of Sync's sweep.
	stack   []int32
	order   []int32
	suffixW []float64
	stale   []int
}

// incEntry locates one tracked query: the slab index of its tree node, or -1
// when the query is blocked (sanitized weight <= 0). gen is the Sync liveness
// stamp for blocked entries; runnable entries are stamped on the node itself
// so an unchanged runnable query costs no map write per Sync.
type incEntry struct {
	node int32
	gen  uint64
}

type incNode struct {
	left, right int32
	id          int
	ratio       float64 // sanitized Remaining/Weight — the sort key
	c, w        float64 // sanitized Remaining and Weight
	fold        int     // shared-scan group tag (0 = solo); not part of the key
	prio        uint64  // deterministic heap priority: splitmix64(id)
	gen         uint64  // Sync liveness stamp
	cnt         int32   // subtree size
	sumW, sumC  float64 // subtree aggregates, for FinishOf's closed form
}

// NewIncrementalProfile returns an empty structure.
func NewIncrementalProfile() *IncrementalProfile {
	return &IncrementalProfile{free: -1, root: -1, byID: make(map[int]incEntry)}
}

// splitmix64 is the standard finalizer-style mixer; one application of it to
// the query ID gives the treap its heap priority.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Len returns the number of tracked queries, blocked ones included.
func (p *IncrementalProfile) Len() int { return len(p.byID) }

// RunnableLen returns the number of queries in the stage order (weight > 0).
func (p *IncrementalProfile) RunnableLen() int {
	if p.root < 0 {
		return 0
	}
	return int(p.nodes[p.root].cnt)
}

func (p *IncrementalProfile) alloc(id int, ratio, c, w float64, fold int) int32 {
	var idx int32
	if p.free >= 0 {
		idx = p.free
		p.free = p.nodes[idx].right
	} else {
		p.nodes = append(p.nodes, incNode{})
		idx = int32(len(p.nodes) - 1)
	}
	p.nodes[idx] = incNode{
		left: -1, right: -1,
		id: id, ratio: ratio, c: c, w: w, fold: fold,
		prio: splitmix64(uint64(int64(id))), gen: p.gen,
		cnt: 1, sumW: w, sumC: c,
	}
	return idx
}

func (p *IncrementalProfile) release(idx int32) {
	p.nodes[idx] = incNode{right: p.free}
	p.free = idx
}

func (p *IncrementalProfile) pull(t int32) {
	n := &p.nodes[t]
	n.cnt, n.sumW, n.sumC = 1, n.w, n.c
	if n.left >= 0 {
		l := &p.nodes[n.left]
		n.cnt += l.cnt
		n.sumW += l.sumW
		n.sumC += l.sumC
	}
	if n.right >= 0 {
		r := &p.nodes[n.right]
		n.cnt += r.cnt
		n.sumW += r.sumW
		n.sumC += r.sumC
	}
}

// split partitions subtree t into keys < (ratio, id) and keys > (ratio, id).
// The key is never present in t (callers insert fresh keys only).
func (p *IncrementalProfile) split(t int32, ratio float64, id int) (int32, int32) {
	if t < 0 {
		return -1, -1
	}
	n := &p.nodes[t]
	if n.ratio < ratio || (n.ratio == ratio && n.id < id) {
		a, b := p.split(n.right, ratio, id)
		n.right = a
		p.pull(t)
		return t, b
	}
	a, b := p.split(n.left, ratio, id)
	n.left = b
	p.pull(t)
	return a, t
}

// merge joins two treaps where every key of l precedes every key of r.
func (p *IncrementalProfile) merge(l, r int32) int32 {
	if l < 0 {
		return r
	}
	if r < 0 {
		return l
	}
	if p.nodes[l].prio >= p.nodes[r].prio {
		p.nodes[l].right = p.merge(p.nodes[l].right, r)
		p.pull(l)
		return l
	}
	p.nodes[r].left = p.merge(l, p.nodes[r].left)
	p.pull(r)
	return r
}

func (p *IncrementalProfile) insertNode(idx int32) {
	n := p.nodes[idx]
	l, r := p.split(p.root, n.ratio, n.id)
	p.root = p.merge(p.merge(l, idx), r)
}

// deleteKey removes the node with exactly the given key from subtree t and
// releases it to the free list. The key is present (callers look it up first).
func (p *IncrementalProfile) deleteKey(t int32, ratio float64, id int) int32 {
	if t < 0 {
		return -1
	}
	n := &p.nodes[t]
	if n.id == id && n.ratio == ratio {
		res := p.merge(n.left, n.right)
		p.release(t)
		return res
	}
	if ratio < n.ratio || (ratio == n.ratio && id < n.id) {
		n.left = p.deleteKey(n.left, ratio, id)
	} else {
		n.right = p.deleteKey(n.right, ratio, id)
	}
	p.pull(t)
	return t
}

// Upsert applies one event for query q — arrival, priority change (new
// weight), block/unblock (weight to/from 0), or cost refinement (new
// remaining) — re-keying its node in O(log n). Inputs pass through the same
// sanitize as ComputeProfile's. It reports whether the stage order changed.
func (p *IncrementalProfile) Upsert(q QueryState) bool {
	if p.byID == nil {
		p.byID = make(map[int]incEntry)
		p.free, p.root = -1, -1
	}
	q = sanitize(q)
	e, ok := p.byID[q.ID]
	if q.Weight <= 0 {
		if ok && e.node >= 0 {
			n := p.nodes[e.node]
			p.root = p.deleteKey(p.root, n.ratio, n.id)
		}
		changed := !ok || e.node >= 0
		p.byID[q.ID] = incEntry{node: -1, gen: p.gen}
		return changed
	}
	ratio := q.Remaining / q.Weight
	if ok && e.node >= 0 {
		n := p.nodes[e.node]
		if n.ratio == ratio && n.w == q.Weight && n.c == q.Remaining {
			p.nodes[e.node].gen = p.gen
			if n.fold != q.Fold {
				// Attach/detach with unchanged key (e.g. a fresh pair folding
				// before either moved): the node stays put — fold is not part
				// of the sort key — but the profile's Shared inventory changes.
				p.nodes[e.node].fold = q.Fold
				return true
			}
			return false
		}
		p.root = p.deleteKey(p.root, n.ratio, n.id)
	}
	idx := p.alloc(q.ID, ratio, q.Remaining, q.Weight, q.Fold)
	p.insertNode(idx)
	p.byID[q.ID] = incEntry{node: idx}
	return true
}

// Remove drops query id (finish or abort) in O(log n). It reports whether the
// query was tracked.
func (p *IncrementalProfile) Remove(id int) bool {
	e, ok := p.byID[id]
	if !ok {
		return false
	}
	if e.node >= 0 {
		n := p.nodes[e.node]
		p.root = p.deleteKey(p.root, n.ratio, n.id)
	}
	delete(p.byID, id)
	return true
}

// Sync reconciles the structure against a full state slice: O(n) map traffic
// plus O(log n) tree work per entry that actually changed. Entries absent
// from states are swept (the sweep runs only when membership could have
// shrunk). It returns the number of inserted, removed, or re-keyed entries.
func (p *IncrementalProfile) Sync(states []QueryState) int {
	if p.byID == nil {
		p.byID = make(map[int]incEntry)
		p.free, p.root = -1, -1
	}
	p.gen++
	changed, inserted := 0, 0
	for _, q := range states {
		_, existed := p.byID[q.ID]
		if p.Upsert(q) {
			changed++
		}
		if !existed {
			inserted++
		}
	}
	if inserted == 0 && len(states) == len(p.byID) {
		// Same membership as last time and nothing new: no sweep needed.
		return changed
	}
	p.stale = p.stale[:0]
	for id, e := range p.byID {
		g := e.gen
		if e.node >= 0 {
			g = p.nodes[e.node].gen
		}
		if g != p.gen {
			p.stale = append(p.stale, id)
		}
	}
	for _, id := range p.stale {
		p.Remove(id)
		changed++
	}
	return changed
}

// ProfileInto materializes the stage model into out, reusing its slices and
// map. The result is bit-identical to ComputeProfile over the same states and
// C: the in-order traversal yields exactly the (ratio, ID) order the sort
// produces, ratios are the same single division, and the suffix-weight and
// stage-duration passes run the same float operations in the same order.
func (p *IncrementalProfile) ProfileInto(C float64, out *Profile) {
	if out.Finish == nil {
		out.Finish = make(map[int]float64, len(p.byID))
	} else {
		clear(out.Finish)
	}
	out.Order = out.Order[:0]
	out.StageDur = out.StageDur[:0]
	out.Shared = nil
	inf := math.Inf(1)
	for id, e := range p.byID {
		if e.node < 0 {
			out.Finish[id] = inf
		}
	}
	n := p.RunnableLen()
	if n == 0 {
		return
	}

	// In-order traversal of the treap == ascending (ratio, ID).
	order := p.order[:0]
	stack := p.stack[:0]
	t := p.root
	for t >= 0 || len(stack) > 0 {
		for t >= 0 {
			stack = append(stack, t)
			t = p.nodes[t].left
		}
		t = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, t)
		t = p.nodes[t].right
	}
	p.order, p.stack = order, stack

	C = sanitizeRate(C)
	if C <= 0 {
		for _, idx := range order {
			out.Finish[p.nodes[idx].id] = inf
		}
		return
	}
	if cap(p.suffixW) < n+1 {
		p.suffixW = make([]float64, n+1)
	}
	suffixW := p.suffixW[:n+1]
	suffixW[n] = 0
	for i := n - 1; i >= 0; i-- {
		suffixW[i] = suffixW[i+1] + p.nodes[order[i]].w
	}
	prevRatio := 0.0
	elapsed := 0.0
	for k, idx := range order {
		nd := &p.nodes[idx]
		t := (nd.ratio - prevRatio) * suffixW[k] / C
		if math.IsNaN(t) || t < 0 {
			t = 0 // floating-point jitter, or Inf-Inf from degenerate inputs
		}
		elapsed += t
		out.StageDur = append(out.StageDur, t)
		out.Order = append(out.Order, nd.id)
		out.Finish[nd.id] = elapsed
		prevRatio = nd.ratio
		if nd.fold != 0 {
			out.Shared = appendFoldStage(out.Shared, nd.fold, nd.id)
		}
	}
	sortFoldStages(out.Shared)
}

// Profile is ProfileInto into a fresh Profile.
func (p *IncrementalProfile) Profile(C float64) Profile {
	var out Profile
	p.ProfileInto(C, &out)
	return out
}

// FinishOf answers a single query's predicted remaining time in O(log n)
// without materializing the profile, from the closed form of the staged sum:
//
//	r_i = (Σ_{j≤i} c_j + (c_i/w_i)·Σ_{j>i} w_j) / C
//
// (Abel summation of ComputeProfile's stage durations). The reassociated
// additions agree with ProfileInto to float rounding, not bit-for-bit — this
// is the cheap point query for scheduling decisions, while the bit-pinned
// read path goes through ProfileInto. Returns (+Inf, true) for blocked
// queries and (0, false) for untracked IDs.
func (p *IncrementalProfile) FinishOf(id int, C float64) (float64, bool) {
	e, ok := p.byID[id]
	if !ok {
		return 0, false
	}
	C = sanitizeRate(C)
	if e.node < 0 || C <= 0 {
		return math.Inf(1), true
	}
	target := p.nodes[e.node]
	if math.IsInf(target.ratio, 1) {
		// Its stage duration is infinite in the staged sum too.
		return math.Inf(1), true
	}
	prefixC, prefixW := 0.0, 0.0
	t := p.root
	for t >= 0 {
		n := &p.nodes[t]
		if n.id == target.id && n.ratio == target.ratio {
			if n.left >= 0 {
				prefixC += p.nodes[n.left].sumC
				prefixW += p.nodes[n.left].sumW
			}
			prefixC += n.c
			prefixW += n.w
			break
		}
		if target.ratio < n.ratio || (target.ratio == n.ratio && target.id < n.id) {
			t = n.left
		} else {
			if n.left >= 0 {
				prefixC += p.nodes[n.left].sumC
				prefixW += p.nodes[n.left].sumW
			}
			prefixC += n.c
			prefixW += n.w
			t = n.right
		}
	}
	suffW := p.nodes[p.root].sumW - prefixW
	if suffW < 0 {
		suffW = 0 // float cancellation in the subtraction
	}
	r := (prefixC + target.ratio*suffW) / C
	if math.IsNaN(r) || r < 0 {
		r = 0
	}
	return r, true
}
