package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bitEqualProfiles fails the test unless got and want are bit-identical:
// same finish order, same stage-duration bits, same finish-time bits.
func bitEqualProfiles(t *testing.T, got, want Profile, label string) {
	t.Helper()
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d, want %d (got %v want %v)",
			label, len(got.Order), len(want.Order), got.Order, want.Order)
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: order[%d] = q%d, want q%d (got %v want %v)",
				label, i, got.Order[i], want.Order[i], got.Order, want.Order)
		}
		if math.Float64bits(got.StageDur[i]) != math.Float64bits(want.StageDur[i]) {
			t.Fatalf("%s: stage %d duration %v (bits %x), want %v (bits %x)",
				label, i, got.StageDur[i], math.Float64bits(got.StageDur[i]),
				want.StageDur[i], math.Float64bits(want.StageDur[i]))
		}
	}
	if len(got.Finish) != len(want.Finish) {
		t.Fatalf("%s: finish map size %d, want %d", label, len(got.Finish), len(want.Finish))
	}
	for id, w := range want.Finish {
		g, ok := got.Finish[id]
		if !ok {
			t.Fatalf("%s: finish map missing q%d", label, id)
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: q%d finish %v (bits %x), want %v (bits %x)",
				label, id, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	if len(got.Shared) != len(want.Shared) {
		t.Fatalf("%s: shared stages %v, want %v", label, got.Shared, want.Shared)
	}
	for i := range want.Shared {
		if got.Shared[i].Fold != want.Shared[i].Fold {
			t.Fatalf("%s: shared[%d] fold %d, want %d", label, i, got.Shared[i].Fold, want.Shared[i].Fold)
		}
		if len(got.Shared[i].IDs) != len(want.Shared[i].IDs) {
			t.Fatalf("%s: shared[%d] members %v, want %v", label, i, got.Shared[i].IDs, want.Shared[i].IDs)
		}
		for j := range want.Shared[i].IDs {
			if got.Shared[i].IDs[j] != want.Shared[i].IDs[j] {
				t.Fatalf("%s: shared[%d] members %v, want %v", label, i, got.Shared[i].IDs, want.Shared[i].IDs)
			}
		}
	}
}

func statesOf(m map[int]QueryState) []QueryState {
	out := make([]QueryState, 0, len(m))
	for _, q := range m {
		out = append(out, q)
	}
	// ComputeProfile's result is input-order independent (the (ratio, ID)
	// comparator is a total order over unique IDs); shuffle-resistance is part
	// of what the differential test exercises, so any order works.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// randomState draws a query state, including pathological values, so the
// incremental structure proves it sanitizes exactly like ComputeProfile.
func randomState(rng *rand.Rand, id int) QueryState {
	q := QueryState{ID: id}
	switch rng.Intn(12) {
	case 0:
		q.Remaining = 0
	case 1:
		q.Remaining = math.Inf(1)
	case 2:
		q.Remaining = math.NaN()
	case 3:
		q.Remaining = -rng.Float64() * 100
	default:
		q.Remaining = rng.Float64() * 1000
	}
	switch rng.Intn(12) {
	case 0:
		q.Weight = 0
	case 1:
		q.Weight = -1
	case 2:
		q.Weight = math.NaN()
	case 3:
		q.Weight = math.Inf(1)
	case 4:
		q.Weight = 1e300 // clamped to 1e12
	default:
		q.Weight = []float64{1, 1, 1, 2, 4, 0.5}[rng.Intn(6)]
	}
	if rng.Intn(3) == 0 {
		q.Fold = 1 + rng.Intn(3) // arrives already folded
	}
	return q
}

// TestIncrementalProfileEventSequences is the lockstep differential test of
// the tentpole: random event sequences — arrival, finish, priority change,
// block, unblock, cost refinement, plus poisoned inputs — applied to
// IncrementalProfile one event at a time, with the materialized profile
// compared bit-for-bit against the ComputeProfile oracle after every event.
func TestIncrementalProfileEventSequences(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inc := NewIncrementalProfile()
		model := map[int]QueryState{}
		nextID := 1
		C := []float64{10, 100, 1000, 0, -5, math.Inf(1)}[rng.Intn(6)]
		ids := func() []int {
			out := make([]int, 0, len(model))
			for id := range model {
				out = append(out, id)
			}
			sort.Ints(out)
			return out
		}
		pick := func() (int, bool) {
			all := ids()
			if len(all) == 0 {
				return 0, false
			}
			return all[rng.Intn(len(all))], true
		}
		for step := 0; step < 150; step++ {
			switch rng.Intn(12) {
			case 0, 1, 2: // arrival
				q := randomState(rng, nextID)
				nextID++
				model[q.ID] = q
				inc.Upsert(q)
			case 3: // finish / abort
				if id, ok := pick(); ok {
					delete(model, id)
					if !inc.Remove(id) {
						t.Fatalf("seed %d step %d: Remove(%d) found nothing", seed, step, id)
					}
				}
			case 4: // priority change
				if id, ok := pick(); ok {
					q := model[id]
					q.Weight = []float64{1, 2, 4, 8, 0.25}[rng.Intn(5)]
					model[id] = q
					inc.Upsert(q)
				}
			case 5: // block
				if id, ok := pick(); ok {
					q := model[id]
					q.Weight = 0
					model[id] = q
					inc.Upsert(q)
				}
			case 6: // unblock
				if id, ok := pick(); ok {
					q := model[id]
					q.Weight = 1 + rng.Float64()*3
					model[id] = q
					inc.Upsert(q)
				}
			case 7, 8: // cost refinement
				if id, ok := pick(); ok {
					q := model[id]
					q.Remaining = math.Max(0, q.Remaining*(0.5+rng.Float64()))
					model[id] = q
					inc.Upsert(q)
				}
			case 9: // poisoned re-key
				if id, ok := pick(); ok {
					q := randomState(rng, id)
					model[id] = q
					inc.Upsert(q)
				}
			case 10: // fold attach — the shared-scan tag flips with no key change
				if id, ok := pick(); ok {
					q := model[id]
					q.Fold = 1 + rng.Intn(3)
					model[id] = q
					inc.Upsert(q)
				}
			case 11: // fold detach
				if id, ok := pick(); ok {
					q := model[id]
					q.Fold = 0
					model[id] = q
					inc.Upsert(q)
				}
			}
			states := statesOf(model)
			want := ComputeProfile(states, C)
			got := inc.Profile(C)
			bitEqualProfiles(t, got, want, "event sequence")
			if inc.Len() != len(model) {
				t.Fatalf("seed %d step %d: Len=%d, model has %d", seed, step, inc.Len(), len(model))
			}
			// FinishOf's closed form agrees with the staged sum to rounding.
			// The tolerance is wider than almostEq: the staged sum clamps
			// jitter-negative stage durations to 0 while the closed form
			// reassociates, and this suite's poisoned inputs (1e12 weights,
			// clamped-Inf costs) amplify the difference.
			if id, ok := pick(); ok {
				r, tracked := inc.FinishOf(id, C)
				if !tracked {
					t.Fatalf("seed %d step %d: FinishOf(%d) untracked", seed, step, id)
				}
				w := want.Finish[id]
				if !(math.IsInf(r, 1) && math.IsInf(w, 1)) && math.Abs(r-w) > 1e-3*(1+math.Abs(r)+math.Abs(w)) {
					t.Fatalf("seed %d step %d: FinishOf(%d) = %v, staged sum %v", seed, step, id, r, w)
				}
			}
		}
	}
}

// TestIncrementalProfileSync reconciles whole random state slices — the
// per-epoch refill path the service uses — against the oracle.
func TestIncrementalProfileSync(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		inc := NewIncrementalProfile()
		var prev []QueryState
		for round := 0; round < 60; round++ {
			// Mutate the previous slice: drop some, tweak some, add some —
			// the shape of consecutive scheduler epochs.
			next := make([]QueryState, 0, len(prev)+4)
			for _, q := range prev {
				switch rng.Intn(6) {
				case 0: // finished
				case 1:
					q.Remaining = math.Max(0, q.Remaining-rng.Float64()*50)
					next = append(next, q)
				case 2:
					q.Weight = []float64{0, 1, 2, 4}[rng.Intn(4)]
					next = append(next, q)
				default:
					next = append(next, q)
				}
			}
			for k := rng.Intn(4); k > 0; k-- {
				next = append(next, randomState(rng, 1000*int(seed)+round*10+k))
			}
			prev = next
			inc.Sync(next)
			C := []float64{100, 7, 0}[rng.Intn(3)]
			bitEqualProfiles(t, inc.Profile(C), ComputeProfile(next, C), "sync")
		}
	}
}

// TestIncrementalSyncNoChange pins the cheap path: re-syncing an identical
// slice reports zero changes and leaves the profile identical.
func TestIncrementalSyncNoChange(t *testing.T) {
	states := []QueryState{
		{ID: 1, Remaining: 100, Weight: 1},
		{ID: 2, Remaining: 50, Weight: 2},
		{ID: 3, Remaining: 80, Weight: 0}, // blocked
	}
	inc := NewIncrementalProfile()
	if changed := inc.Sync(states); changed != 3 {
		t.Fatalf("initial sync changed %d, want 3", changed)
	}
	if changed := inc.Sync(states); changed != 0 {
		t.Fatalf("no-op sync changed %d, want 0", changed)
	}
	bitEqualProfiles(t, inc.Profile(10), ComputeProfile(states, 10), "no-change")
	if inc.RunnableLen() != 2 {
		t.Fatalf("RunnableLen = %d, want 2", inc.RunnableLen())
	}
}

// TestIncrementalProfileMatchesSimulate ties the maintained structure to the
// event-stepped generalization: with no queue and no arrivals the two models
// agree (to simulation rounding), so estimates may switch between them freely.
func TestIncrementalProfileMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc := NewIncrementalProfile()
	states := make([]QueryState, 0, 12)
	for i := 1; i <= 12; i++ {
		states = append(states, QueryState{ID: i, Remaining: rng.Float64() * 500, Weight: []float64{1, 2, 4}[rng.Intn(3)]})
	}
	inc.Sync(states)
	got := inc.Profile(100)
	sim := SimulateProfile(states, 100, SimOptions{})
	for id, w := range sim.Finish {
		if !almostEq(got.Finish[id], w) {
			t.Errorf("q%d: incremental %v, simulated %v", id, got.Finish[id], w)
		}
	}
}

// TestIncrementalProfileEdges covers the degenerate corners the oracle
// defines behaviour for.
func TestIncrementalProfileEdges(t *testing.T) {
	inc := NewIncrementalProfile()
	// Empty.
	bitEqualProfiles(t, inc.Profile(10), ComputeProfile(nil, 10), "empty")
	if _, ok := inc.FinishOf(1, 10); ok {
		t.Error("FinishOf on empty structure reported tracked")
	}
	// All blocked.
	blocked := []QueryState{{ID: 1, Remaining: 10, Weight: 0}, {ID: 2, Remaining: 5, Weight: -3}}
	inc.Sync(blocked)
	bitEqualProfiles(t, inc.Profile(10), ComputeProfile(blocked, 10), "all blocked")
	if r, ok := inc.FinishOf(1, 10); !ok || !math.IsInf(r, 1) {
		t.Errorf("blocked FinishOf = %v, %v", r, ok)
	}
	// C <= 0 and C = +Inf.
	mixed := []QueryState{{ID: 1, Remaining: 10, Weight: 1}, {ID: 2, Remaining: 5, Weight: 0}}
	inc.Sync(mixed)
	for _, C := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		bitEqualProfiles(t, inc.Profile(C), ComputeProfile(mixed, C), "degenerate C")
	}
	// Removing everything returns to empty.
	inc.Remove(1)
	inc.Remove(2)
	if inc.Len() != 0 || inc.RunnableLen() != 0 {
		t.Fatalf("Len=%d RunnableLen=%d after removing all", inc.Len(), inc.RunnableLen())
	}
	bitEqualProfiles(t, inc.Profile(10), ComputeProfile(nil, 10), "emptied")
	// Upsert is idempotent and the zero value is usable.
	var zero IncrementalProfile
	q := QueryState{ID: 9, Remaining: 42, Weight: 2}
	if !zero.Upsert(q) {
		t.Error("first Upsert reported no change")
	}
	if zero.Upsert(q) {
		t.Error("identical Upsert reported a change")
	}
	bitEqualProfiles(t, zero.Profile(10), ComputeProfile([]QueryState{q}, 10), "zero value")
}

// TestIncrementalEstimatorMatchesComputeEstimates pins the estimator wrapper:
// bit-identical bundles on the fast path, verbatim fallback with a queue or
// an arrival model, interleaved so the maintained structure survives being
// bypassed.
func TestIncrementalEstimatorMatchesComputeEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var est IncrementalEstimator
	running := []QueryState{}
	for i := 1; i <= 8; i++ {
		running = append(running, QueryState{ID: i, Remaining: rng.Float64() * 400, Weight: []float64{1, 2, 4, 0}[rng.Intn(4)]})
	}
	speeds := map[int]float64{1: 10, 2: 25, 3: 0}
	queued := []QueryState{{ID: 100, Remaining: 50, Weight: 1}}
	am := &ArrivalModel{Lambda: 0.2, AvgCost: 80, AvgWeight: 1}
	inputs := []EstimateInput{
		{Running: running, RateC: 100, Speeds: speeds},
		{Running: running, Queued: queued, MPL: 4, RateC: 100, Speeds: speeds},
		{Running: running[:5], RateC: 100, Speeds: speeds},
		{Running: running, RateC: 100, Speeds: speeds, Arrivals: am},
		{Running: running[2:], RateC: 0, Speeds: speeds},
		{Running: running, RateC: 100, Speeds: speeds},
	}
	for step, in := range inputs {
		got := est.Estimates(in)
		want := ComputeEstimates(in)
		if math.Float64bits(got.Quiescent) != math.Float64bits(want.Quiescent) {
			t.Fatalf("step %d: quiescent %v, want %v", step, got.Quiescent, want.Quiescent)
		}
		if len(got.PerQuery) != len(want.PerQuery) {
			t.Fatalf("step %d: %d estimates, want %d", step, len(got.PerQuery), len(want.PerQuery))
		}
		for id, w := range want.PerQuery {
			g := got.PerQuery[id]
			if math.Float64bits(g.MultiQuery) != math.Float64bits(w.MultiQuery) ||
				math.Float64bits(g.SingleQuery) != math.Float64bits(w.SingleQuery) {
				t.Fatalf("step %d q%d: got %+v, want %+v", step, id, g, w)
			}
		}
	}
}
