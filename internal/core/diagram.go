package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StageDiagram renders a Profile as the ASCII equivalent of the paper's
// Figures 1 and 2: one row per query, columns are time, and each cell's
// glyph height encodes the query's execution speed during that stage (taller
// block = faster). A blocked query renders as a flat line.
//
// Example (four equal-priority queries, Figure 1):
//
//	Q1 ▁▁▁▁|
//	Q2 ▁▁▁▁|▂▂▂|
//	Q3 ▁▁▁▁|▂▂▂|▄▄|
//	Q4 ▁▁▁▁|▂▂▂|▄▄|█|
//	    t1   t2  t3 t4
func StageDiagram(states []QueryState, C float64, width int) string {
	return StageDiagramBands(states, C, width, nil)
}

// StageDiagramBands is StageDiagram with per-query uncertainty bands: each
// finish annotation gains its estimator interval ("finishes at 12.0s
// ±[10.8,13.4]"). A nil bands map renders byte-identically to StageDiagram —
// the stage-mode service passes nil, so classic diagrams are unchanged.
func StageDiagramBands(states []QueryState, C float64, width int, bands map[int]Interval) string {
	if width <= 0 {
		width = 60
	}
	prof := ComputeProfile(states, C)
	if len(prof.Order) == 0 {
		return "(no runnable queries)\n"
	}
	total := prof.QuiescentTime()
	if total <= 0 {
		return "(all queries already finished)\n"
	}

	byID := make(map[int]QueryState, len(states))
	for _, q := range states {
		byID[q.ID] = q
	}
	// Suffix weights per stage determine speeds: during stage k the
	// remaining queries share C by weight.
	suffixW := make([]float64, len(prof.Order)+1)
	for i := len(prof.Order) - 1; i >= 0; i-- {
		suffixW[i] = suffixW[i+1] + byID[prof.Order[i]].Weight
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")

	// Folded queries are annotated with their shared-scan group so the rows
	// advancing in lockstep over one cursor are visible in the figure.
	foldOf := make(map[int]int)
	for _, s := range prof.Shared {
		for _, id := range s.IDs {
			foldOf[id] = s.Fold
		}
	}

	var b strings.Builder
	// Render rows in finish order, like the paper's figures.
	for qi, id := range prof.Order {
		fmt.Fprintf(&b, "%-6s ", fmt.Sprintf("Q%d", id))
		for stage := 0; stage <= qi; stage++ {
			dur := prof.StageDur[stage]
			cells := int(math.Round(dur / total * float64(width)))
			if cells == 0 && dur > 0 {
				cells = 1
			}
			speed := C * byID[id].Weight / suffixW[stage]
			level := int(speed / C * float64(len(glyphs)))
			if level >= len(glyphs) {
				level = len(glyphs) - 1
			}
			b.WriteString(strings.Repeat(string(glyphs[level]), cells))
			// Stage boundary bar after every stage, as in the figures: each
			// bar marks a finish time at which the survivors speed up.
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "  finishes at %.1fs", prof.Finish[id])
		if band, ok := bands[id]; ok && band.High > band.Low {
			fmt.Fprintf(&b, " ±[%.1f,%.1f]", band.Low, band.High)
		}
		if g, ok := foldOf[id]; ok {
			fmt.Fprintf(&b, "  [fold g%d]", g)
		}
		b.WriteByte('\n')
	}
	// Blocked queries (never finish) render as flat lines.
	blockedIDs := make([]int, 0)
	for _, q := range states {
		if q.Weight <= 0 {
			blockedIDs = append(blockedIDs, q.ID)
		}
	}
	sort.Ints(blockedIDs)
	for _, id := range blockedIDs {
		fmt.Fprintf(&b, "%-6s %s  blocked\n", fmt.Sprintf("Q%d", id), strings.Repeat("·", width))
	}
	fmt.Fprintf(&b, "%-6s 0s%ss\n", "", strings.Repeat("-", width-4)+fmt.Sprintf("%.1f", total))
	return b.String()
}
