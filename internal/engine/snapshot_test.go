package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mqpi/internal/engine/types"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same tables.
	n1, n2 := db.Catalog().TableNames(), db2.Catalog().TableNames()
	if strings.Join(n1, ",") != strings.Join(n2, ",") {
		t.Fatalf("tables: %v vs %v", n1, n2)
	}
	// Identical query results, including through the rebuilt index.
	queries := []string{
		"SELECT * FROM part ORDER BY partkey",
		"SELECT * FROM lineitem WHERE partkey = 7 ORDER BY extendedprice",
		"SELECT quantity, COUNT(*), SUM(extendedprice) FROM lineitem GROUP BY quantity ORDER BY quantity",
	}
	for _, src := range queries {
		a := query(t, db, src)
		b := query(t, db2, src)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d rows", src, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Fatalf("%s: row %d differs: %v vs %v", src, i, a[i], b[i])
			}
		}
	}
	// Statistics were re-collected (testDB analyzed the original).
	if db2.Catalog().TableStats("lineitem") == nil {
		t.Error("stats not restored")
	}
	// Plans agree on cost (same data, same stats).
	p1, err := db.Plan("SELECT * FROM lineitem WHERE partkey = 3")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db2.Plan("SELECT * FROM lineitem WHERE partkey = 3")
	if err != nil {
		t.Fatal(err)
	}
	if p1.EstCost() != p2.EstCost() {
		t.Errorf("plan costs differ after reload: %g vs %g", p1.EstCost(), p2.EstCost())
	}
}

// Property: any random database round-trips exactly.
func TestSnapshotRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := Open()
		if _, err := db.Exec("CREATE TABLE r (a BIGINT, b DOUBLE, c TEXT, d BOOLEAN)"); err != nil {
			return false
		}
		cat := db.Catalog()
		n := rng.Intn(300)
		for i := 0; i < n; i++ {
			row := types.Row{
				randValue(rng, types.KindInt),
				randValue(rng, types.KindFloat),
				randValue(rng, types.KindString),
				randValue(rng, types.KindBool),
			}
			if err := cat.Insert("r", row); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		db2, err := Load(&buf)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		a, _, _, err1 := db.Query("SELECT * FROM r")
		b, _, _, err2 := db2.Query("SELECT * FROM r")
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				t.Logf("seed %d: row %d: %v vs %v", seed, i, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func randValue(rng *rand.Rand, kind types.Kind) types.Value {
	if rng.Intn(8) == 0 {
		return types.Null
	}
	switch kind {
	case types.KindInt:
		return types.NewInt(rng.Int63() - rng.Int63())
	case types.KindFloat:
		return types.NewFloat(rng.NormFloat64() * 1e6)
	case types.KindString:
		b := make([]byte, rng.Intn(20))
		for i := range b {
			b[i] = byte(32 + rng.Intn(95))
		}
		return types.NewString(string(b))
	default:
		return types.NewBool(rng.Intn(2) == 0)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("nope"),
		[]byte("MQPI1"), // truncated after magic
		append([]byte("MQPI1"), 0xff, 0xff, 0xff, 0xff), // absurd table count then EOF
	}
	for i, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 3} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := Open().Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Catalog().TableNames()) != 0 {
		t.Error("empty database should stay empty")
	}
}
