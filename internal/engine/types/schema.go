package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns. Column lookup is by (optionally
// qualified) name; qualifiers come from table aliases in the FROM clause.
type Schema struct {
	Cols []Column
	// Quals[i] is the table qualifier for Cols[i] ("" if unqualified).
	Quals []string
}

// NewSchema builds an unqualified schema from columns.
func NewSchema(cols ...Column) Schema {
	return Schema{Cols: cols, Quals: make([]string, len(cols))}
}

// WithQualifier returns a copy of the schema with every column qualified.
func (s Schema) WithQualifier(q string) Schema {
	out := Schema{Cols: append([]Column(nil), s.Cols...), Quals: make([]string, len(s.Cols))}
	for i := range out.Quals {
		out.Quals[i] = q
	}
	return out
}

// Concat appends another schema's columns, preserving qualifiers.
func (s Schema) Concat(o Schema) Schema {
	return Schema{
		Cols:  append(append([]Column(nil), s.Cols...), o.Cols...),
		Quals: append(append([]string(nil), s.Quals...), o.Quals...),
	}
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// ColIndex resolves a column reference. If qual is empty the name must be
// unambiguous across the schema; otherwise both qualifier and name must match.
func (s Schema) ColIndex(qual, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qual != "" && !strings.EqualFold(s.qual(i), qual) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("types: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("types: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("types: unknown column %s", name)
	}
	return found, nil
}

func (s Schema) qual(i int) string {
	if i < len(s.Quals) {
		return s.Quals[i]
	}
	return ""
}

// String renders the schema as "(a BIGINT, b DOUBLE)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		if q := s.qual(i); q != "" {
			b.WriteString(q)
			b.WriteByte('.')
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values positionally matching a schema.
type Row []Value

// Clone returns a copy of the row; operators that buffer rows must clone
// because scans reuse backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns the concatenation of two rows (used by joins).
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// Key renders the row as a grouping key. Distinct rows map to distinct keys
// because each value is length-prefixed.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		s := v.String()
		fmt.Fprintf(&b, "%d:%d:%s;", int(v.Kind()), len(s), s)
	}
	return b.String()
}

// String renders the row for display.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
