package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func twoColSchema() Schema {
	return NewSchema(
		Column{Name: "a", Type: KindInt},
		Column{Name: "b", Type: KindFloat},
	)
}

func TestColIndex(t *testing.T) {
	s := twoColSchema()
	if i, err := s.ColIndex("", "a"); err != nil || i != 0 {
		t.Errorf("ColIndex(a) = %d, %v", i, err)
	}
	if i, err := s.ColIndex("", "B"); err != nil || i != 1 {
		t.Errorf("ColIndex(B) should be case-insensitive, got %d, %v", i, err)
	}
	if _, err := s.ColIndex("", "c"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestColIndexQualified(t *testing.T) {
	s := twoColSchema().WithQualifier("t1").Concat(twoColSchema().WithQualifier("t2"))
	if i, err := s.ColIndex("t2", "a"); err != nil || i != 2 {
		t.Errorf("ColIndex(t2.a) = %d, %v; want 2", i, err)
	}
	if i, err := s.ColIndex("T1", "b"); err != nil || i != 1 {
		t.Errorf("qualifier matching should be case-insensitive, got %d, %v", i, err)
	}
	if _, err := s.ColIndex("", "a"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified a should be ambiguous, got %v", err)
	}
	if _, err := s.ColIndex("t3", "a"); err == nil {
		t.Error("unknown qualifier should fail")
	}
}

func TestSchemaConcatAndString(t *testing.T) {
	s := twoColSchema().WithQualifier("x")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	str := s.String()
	if !strings.Contains(str, "x.a BIGINT") || !strings.Contains(str, "x.b DOUBLE") {
		t.Errorf("Schema.String() = %q", str)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias the original")
	}
}

func TestRowConcat(t *testing.T) {
	a := Row{NewInt(1)}
	b := Row{NewInt(2), NewInt(3)}
	c := a.Concat(b)
	if len(c) != 3 || c[0].Int() != 1 || c[2].Int() != 3 {
		t.Errorf("Concat = %v", c)
	}
}

// Property: distinct rows produce distinct grouping keys, even for values
// whose string forms could collide without length prefixes.
func TestRowKeyInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		r1 := Row{NewInt(a), NewString(s1)}
		r2 := Row{NewInt(b), NewString(s2)}
		same := a == b && s1 == s2
		return (r1.Key() == r2.Key()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyTypeSensitive(t *testing.T) {
	// 1 (int) and "1" (string) must group separately.
	r1 := Row{NewInt(1)}
	r2 := Row{NewString("1")}
	if r1.Key() == r2.Key() {
		t.Error("keys must distinguish types")
	}
	// Adjacent values must not merge: ("ab", "c") vs ("a", "bc").
	r3 := Row{NewString("ab"), NewString("c")}
	r4 := Row{NewString("a"), NewString("bc")}
	if r3.Key() == r4.Key() {
		t.Error("keys must length-prefix values")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), Null, NewString("x")}
	if got := r.String(); got != "(1, NULL, x)" {
		t.Errorf("Row.String() = %q", got)
	}
}
