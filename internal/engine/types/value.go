// Package types defines the value model shared by every layer of the engine:
// typed scalar values, rows, and relation schemas.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types the engine supports.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the common aliases
// used in CREATE TABLE statements.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the value as an int64. It panics if the value is not an integer.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the value as a float64, converting integers.
// It panics on non-numeric values.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Str returns the value as a string. It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the value as a bool. It panics if the value is not a boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// IsNumeric reports whether the value is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and for use as a grouping key.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Compare orders two values. NULL sorts before everything; numeric values
// compare numerically across int/float; otherwise the kinds must match.
// The error reports incomparable kinds (e.g. string vs int).
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare %s values", a.kind)
	}
}

// ArithOp names an arithmetic operation for Arith.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("ArithOp(%d)", uint8(op))
	}
}

// Arith applies op to two numeric values with SQL semantics: NULL propagates,
// int op int stays int (except division, which promotes to float), and any
// float operand promotes the result to float. Division by zero yields NULL,
// matching the engine's preference for continuing over aborting a long query.
func Arith(op ArithOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("types: %s requires numeric operands, got %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		}
	}
	af, bf := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return NewFloat(af + bf), nil
	case OpSub:
		return NewFloat(af - bf), nil
	case OpMul:
		return NewFloat(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return Null, nil
		}
		return NewFloat(af / bf), nil
	}
	return Null, fmt.Errorf("types: unknown arithmetic op %v", op)
}

// Truthy reports whether a value counts as true in a WHERE clause.
// NULL and false are not truthy; numeric values follow C conventions.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.i != 0
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0 && !math.IsNaN(v.f)
	default:
		return false
	}
}
