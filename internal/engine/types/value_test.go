package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "BIGINT",
		KindFloat:  "DOUBLE",
		KindString: "TEXT",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]Kind{
		"INT": KindInt, "INTEGER": KindInt, "BIGINT": KindInt,
		"DOUBLE": KindFloat, "FLOAT": KindFloat, "REAL": KindFloat,
		"TEXT": KindString, "VARCHAR": KindString,
		"BOOL": KindBool, "BOOLEAN": KindBool,
	}
	for name, want := range good {
		got, err := ParseKind(name)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt || v.IsNull() {
		t.Errorf("NewInt broken: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Kind() != KindFloat {
		t.Errorf("NewFloat broken: %v", v)
	}
	if v := NewString("hi"); v.Str() != "hi" || v.Kind() != KindString {
		t.Errorf("NewString broken: %v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool broken: %v", v)
	}
	if !Null.IsNull() {
		t.Error("Null must be null")
	}
	// Int values convert to float via Float().
	if NewInt(3).Float() != 3.0 {
		t.Error("int should convert to float")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Float on string", func() { NewString("x").Float() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewString("abc"), "abc"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v) error: %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("string vs int comparison should fail")
	}
	if _, err := Compare(NewBool(true), NewString("x")); err == nil {
		t.Error("bool vs string comparison should fail")
	}
}

// Property: Compare is antisymmetric over ints and floats.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(NewInt(a), NewInt(b))
		y, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, err1 := Compare(NewFloat(a), NewFloat(b))
		y, err2 := Compare(NewFloat(b), NewFloat(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		a, b Value
		want Value
	}{
		{OpAdd, NewInt(2), NewInt(3), NewInt(5)},
		{OpSub, NewInt(2), NewInt(3), NewInt(-1)},
		{OpMul, NewInt(4), NewInt(3), NewInt(12)},
		{OpDiv, NewInt(6), NewInt(4), NewFloat(1.5)},
		{OpAdd, NewFloat(1.5), NewInt(1), NewFloat(2.5)},
		{OpMul, NewFloat(2), NewFloat(3), NewFloat(6)},
		{OpDiv, NewInt(1), NewInt(0), Null}, // division by zero -> NULL
		{OpAdd, Null, NewInt(1), Null},      // NULL propagates
		{OpMul, NewInt(1), Null, Null},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("Arith(%v, %v, %v) error: %v", c.op, c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Arith(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := Arith(OpAdd, NewString("x"), NewInt(1)); err == nil {
		t.Error("arith on string should fail")
	}
}

// Property: int addition and multiplication commute.
func TestArithCommutative(t *testing.T) {
	f := func(a, b int64) bool {
		x, _ := Arith(OpAdd, NewInt(a), NewInt(b))
		y, _ := Arith(OpAdd, NewInt(b), NewInt(a))
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{NewBool(true), NewInt(1), NewInt(-3), NewFloat(0.5)}
	falsy := []Value{Null, NewBool(false), NewInt(0), NewFloat(0), NewFloat(math.NaN()), NewString("x")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestArithOpString(t *testing.T) {
	ops := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d renders %q, want %q", op, op.String(), want)
		}
	}
}
