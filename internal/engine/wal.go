package engine

// Write-ahead logging: a logical redo log of catalog mutations. Combined
// with snapshots this gives point-in-time recovery — Recover(snapshot, wal)
// rebuilds the database a crash interrupted:
//
//	wal, _ := os.Create("db.wal")
//	db.AttachWAL(wal)            // every mutation is logged before applying
//	...
//	db.Save(checkpoint)          // checkpoint; a fresh WAL can start here
//
// Records are self-delimiting; replay stops cleanly at a torn tail (the
// partial record a crash may leave), so recovery never fails on the
// artifacts of the crash it exists to survive.
//
// Record formats (after the "MQWL1" header):
//
//	0x01 create-table: str name, u32 cols, per col (str name, u8 kind)
//	0x02 drop-table:   str name
//	0x03 create-index: str idxName, str table, str column
//	0x04 insert:       str table, u32 cols, values
//	0x05 delete:       str table, u32 page, u32 slot
//
// Simplifications vs a production WAL, documented deliberately: no fsync
// control (callers own the file), no LSNs (the snapshot/WAL pairing is
// positional: attach a fresh WAL right after a checkpoint), and statistics
// are not logged (re-run ANALYZE after recovery).

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

var walMagic = []byte("MQWL1")

const (
	walCreateTable byte = 0x01
	walDropTable   byte = 0x02
	walCreateIndex byte = 0x03
	walInsert      byte = 0x04
	walDelete      byte = 0x05
)

// WAL is a catalog.Observer that appends a logical redo record for every
// mutation before it is applied.
type WAL struct {
	w       *bufio.Writer
	records int
}

// NewWAL writes the header and returns a ready log.
func NewWAL(w io.Writer) (*WAL, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(walMagic); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &WAL{w: bw}, nil
}

// Records returns the number of records written.
func (l *WAL) Records() int { return l.records }

// Flush forces buffered records out to the underlying writer.
func (l *WAL) Flush() error { return l.w.Flush() }

func (l *WAL) record(f func() error) error {
	if err := f(); err != nil {
		return fmt.Errorf("engine: wal append: %w", err)
	}
	// Flush per record: the write-ahead property is only as strong as the
	// buffering between us and the disk.
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("engine: wal flush: %w", err)
	}
	l.records++
	return nil
}

// OnCreateTable implements catalog.Observer.
func (l *WAL) OnCreateTable(name string, schema types.Schema) error {
	return l.record(func() error {
		if err := l.w.WriteByte(walCreateTable); err != nil {
			return err
		}
		if err := writeStr(l.w, name); err != nil {
			return err
		}
		if err := writeU32(l.w, uint32(schema.Len())); err != nil {
			return err
		}
		for _, col := range schema.Cols {
			if err := writeStr(l.w, col.Name); err != nil {
				return err
			}
			if err := l.w.WriteByte(byte(col.Type)); err != nil {
				return err
			}
		}
		return nil
	})
}

// OnDropTable implements catalog.Observer.
func (l *WAL) OnDropTable(name string) error {
	return l.record(func() error {
		if err := l.w.WriteByte(walDropTable); err != nil {
			return err
		}
		return writeStr(l.w, name)
	})
}

// OnCreateIndex implements catalog.Observer.
func (l *WAL) OnCreateIndex(idxName, table, column string) error {
	return l.record(func() error {
		if err := l.w.WriteByte(walCreateIndex); err != nil {
			return err
		}
		if err := writeStr(l.w, idxName); err != nil {
			return err
		}
		if err := writeStr(l.w, table); err != nil {
			return err
		}
		return writeStr(l.w, column)
	})
}

// OnInsert implements catalog.Observer.
func (l *WAL) OnInsert(table string, row types.Row) error {
	return l.record(func() error {
		if err := l.w.WriteByte(walInsert); err != nil {
			return err
		}
		if err := writeStr(l.w, table); err != nil {
			return err
		}
		if err := writeU32(l.w, uint32(len(row))); err != nil {
			return err
		}
		for _, v := range row {
			if err := writeValue(l.w, v); err != nil {
				return err
			}
		}
		return nil
	})
}

// OnDelete implements catalog.Observer.
func (l *WAL) OnDelete(table string, rid storage.RowID) error {
	return l.record(func() error {
		if err := l.w.WriteByte(walDelete); err != nil {
			return err
		}
		if err := writeStr(l.w, table); err != nil {
			return err
		}
		if err := writeU32(l.w, uint32(rid.Page)); err != nil {
			return err
		}
		return writeU32(l.w, uint32(rid.Slot))
	})
}

var _ catalog.Observer = (*WAL)(nil)

// AttachWAL starts logging every catalog mutation to w (write-ahead: the
// record is flushed before the mutation applies). It returns the WAL so the
// caller can inspect or flush it; DetachWAL stops logging.
func (db *DB) AttachWAL(w io.Writer) (*WAL, error) {
	l, err := NewWAL(w)
	if err != nil {
		return nil, err
	}
	db.cat.SetObserver(l)
	return l, nil
}

// DetachWAL stops logging.
func (db *DB) DetachWAL() { db.cat.SetObserver(nil) }

// ReplayWAL applies a redo log to the database. It returns the number of
// records applied. A torn final record (crash artifact) ends replay cleanly;
// any other malformed input is an error.
func (db *DB) ReplayWAL(r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("engine: reading wal header: %w", err)
	}
	if string(magic) != string(walMagic) {
		return 0, fmt.Errorf("engine: not a wal file (magic %q)", magic)
	}
	applied := 0
	for {
		rec, err := br.ReadByte()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if err := db.replayRecord(br, rec); err != nil {
			if isTorn(err) {
				return applied, nil
			}
			return applied, fmt.Errorf("engine: wal record %d: %w", applied+1, err)
		}
		applied++
	}
}

func isTorn(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func (db *DB) replayRecord(br *bufio.Reader, rec byte) error {
	switch rec {
	case walCreateTable:
		name, err := readStr(br)
		if err != nil {
			return err
		}
		n, err := readU32(br)
		if err != nil {
			return err
		}
		if n == 0 || n > 1<<16 {
			return fmt.Errorf("implausible column count %d", n)
		}
		cols := make([]types.Column, n)
		for i := range cols {
			cname, err := readStr(br)
			if err != nil {
				return err
			}
			kind, err := br.ReadByte()
			if err != nil {
				return err
			}
			cols[i] = types.Column{Name: cname, Type: types.Kind(kind)}
		}
		_, err = db.cat.CreateTable(name, types.NewSchema(cols...))
		return err
	case walDropTable:
		name, err := readStr(br)
		if err != nil {
			return err
		}
		return db.cat.DropTable(name)
	case walCreateIndex:
		idxName, err := readStr(br)
		if err != nil {
			return err
		}
		table, err := readStr(br)
		if err != nil {
			return err
		}
		column, err := readStr(br)
		if err != nil {
			return err
		}
		_, err = db.cat.CreateIndex(idxName, table, column)
		return err
	case walInsert:
		table, err := readStr(br)
		if err != nil {
			return err
		}
		n, err := readU32(br)
		if err != nil {
			return err
		}
		if n == 0 || n > 1<<16 {
			return fmt.Errorf("implausible column count %d", n)
		}
		row := make(types.Row, n)
		for i := range row {
			v, err := readValue(br)
			if err != nil {
				return err
			}
			row[i] = v
		}
		return db.cat.Insert(table, row)
	case walDelete:
		table, err := readStr(br)
		if err != nil {
			return err
		}
		page, err := readU32(br)
		if err != nil {
			return err
		}
		slot, err := readU32(br)
		if err != nil {
			return err
		}
		return db.cat.Delete(table, storage.RowID{Page: int(page), Slot: int(slot)})
	default:
		return fmt.Errorf("unknown record type 0x%02x", rec)
	}
}

// Recover rebuilds a database from a checkpoint snapshot plus the WAL
// written since that checkpoint. Either reader may be nil (no checkpoint:
// start empty; no WAL: snapshot only). Statistics are re-collected for every
// table that had them in the snapshot; re-run Analyze after heavy replay.
func Recover(snapshot, wal io.Reader) (*DB, int, error) {
	var db *DB
	var err error
	if snapshot != nil {
		db, err = Load(snapshot)
		if err != nil {
			return nil, 0, err
		}
	} else {
		db = Open()
	}
	if wal == nil {
		return db, 0, nil
	}
	applied, err := db.ReplayWAL(wal)
	if err != nil {
		return nil, applied, err
	}
	return db, applied, nil
}
