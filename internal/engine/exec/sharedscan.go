package exec

import (
	"sort"

	"mqpi/internal/engine/storage"
)

// This file is the scan-sharing ("folding") layer: when several concurrent
// queries seq-scan the same relation, they attach to one shared cursor that
// circles the heap once per member. Every page the cursor grants charges each
// consuming member's progress plane exactly as a solo scan would (1 U per
// page, at the same grant points), but only the first consumer of a cursor
// position pays the engine-cost plane — the rest ride the page already "in
// the buffer" for free (WorkMeter.ChargeShared). A member that arrives late
// attaches at the cursor's current position and wraps around (attach-at-
// offset); a member that completes its lap, or is forcibly released (block,
// abort, priority change, fold disabled), detaches and — if its lap is
// unfinished — continues the remaining rotation solo at full cost.
//
// Concurrency contract: a FoldGroup is stepped by exactly one goroutine at a
// time (the scheduler runs a whole group as one execute-phase work item), so
// group state needs no synchronization. Registry operations (Attach, Release,
// Sweep, Stats, Tables) are serial-phase only: the scheduler calls them from
// its allocate/settle phases or from control operations, never while an
// execute phase is in flight.

// ScanPageState is the outcome of asking a ScanSource for the next page.
type ScanPageState int

const (
	// PageReady: the returned page number may be read now; the source has
	// already charged the member's meter for it.
	PageReady ScanPageState = iota
	// PageWait: a shared cursor is parked behind a slower member; the scan
	// must yield its budget slice and retry on a later step.
	PageWait
	// PageEOF: the scan has covered every page; no page was granted.
	PageEOF
)

// ScanSource hands a sequential scan its next heap page. soloSource walks
// 0..NumPages-1; FoldMember serves the shared rotating cursor.
type ScanSource interface {
	NextPage(ctx *Ctx) (int, ScanPageState)
}

// soloSource is the unshared page source: pages in physical order, one
// ChargePage per grant — exactly the classic seq-scan cost model. NumPages is
// re-read on every grant so rows appended by DML between scheduler ticks are
// still scanned.
type soloSource struct {
	rel  *storage.Relation
	next int
}

func (s *soloSource) NextPage(ctx *Ctx) (int, ScanPageState) {
	if s.next >= s.rel.NumPages() {
		return 0, PageEOF
	}
	p := s.next
	s.next++
	ctx.Meter.ChargePage()
	return p, PageReady
}

// FoldMember is one query's seat on a shared cursor. It implements ScanSource
// for the query's driver seq-scan. After detachment it keeps serving pages —
// the solo continuation of the interrupted lap — so releasing a fold never
// perturbs the member's result or its charged-work accounting.
type FoldMember struct {
	group    *FoldGroup
	groupID  int  // stamped at attach; survives detach for reporting
	consumed bool // consumed the group's current cursor position
	read     int  // pages consumed so far (lap is done at NumPages)
	detached bool
	pos      int // solo-continuation cursor, valid once detached
}

// GroupID returns the fold group this member attached to (stable after
// detach, for reporting).
func (m *FoldMember) GroupID() int { return m.groupID }

// Attached reports whether the member still rides the shared cursor.
func (m *FoldMember) Attached() bool { return !m.detached }

// NextPage serves the member's next page: from the shared cursor while
// attached, from the solo continuation after detachment.
func (m *FoldMember) NextPage(ctx *Ctx) (int, ScanPageState) {
	if m.detached {
		rel := m.group.rel
		if m.read >= rel.NumPages() {
			return 0, PageEOF
		}
		p := m.pos
		m.pos++
		if m.pos >= rel.NumPages() {
			m.pos = 0
		}
		m.read++
		ctx.Meter.ChargePage()
		return p, PageReady
	}
	g := m.group
	for {
		if m.read >= g.rel.NumPages() {
			// Lap complete (or empty relation): leave the group so peers no
			// longer wait on this member at the barrier.
			g.detach(m)
			return 0, PageEOF
		}
		if !m.consumed {
			// Consume the cursor's current position. The first consumer of a
			// position fetches the page (full cost); later consumers ride it.
			if !g.fetched {
				g.fetched = true
				g.fetches++
				ctx.Meter.ChargePage()
			} else {
				g.shared++
				ctx.Meter.ChargeShared(1)
			}
			m.consumed = true
			m.read++
			return g.pos, PageReady
		}
		// Already consumed this position: the cursor advances only once every
		// member has (the barrier that keeps the lap shared).
		for _, o := range g.members {
			if !o.consumed {
				return 0, PageWait
			}
		}
		g.pos++
		if g.pos >= g.rel.NumPages() {
			g.pos = 0
		}
		g.fetched = false
		for _, o := range g.members {
			o.consumed = false
		}
	}
}

// FoldGroup is one shared cursor: the members attached to one relation within
// one sharing class, and the cursor's rotation state.
type FoldGroup struct {
	id      int
	table   string
	rel     *storage.Relation
	members []*FoldMember
	pos     int  // current cursor position (absolute page number)
	fetched bool // current position already paid for this lap step
	fetches int  // pages physically read on behalf of the group
	shared  int  // page consumptions served without a physical read
}

// detach removes m from the group and arms its solo continuation: the next
// page m would have consumed from the shared cursor.
func (g *FoldGroup) detach(m *FoldMember) {
	if m.detached {
		return
	}
	m.pos = g.pos
	if m.consumed {
		m.pos++
		if m.pos >= g.rel.NumPages() {
			m.pos = 0
		}
	}
	m.detached = true
	for i, o := range g.members {
		if o == m {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
}

// FoldStats is a point-in-time summary of a registry: live group/member
// gauges plus lifetime counters (monotonic across fold on/off toggles).
type FoldStats struct {
	Groups   int    // live groups (>= 1 member)
	Members  int    // live attached members
	Attaches uint64 // lifetime member attachments
	Fetches  uint64 // lifetime pages physically read by shared cursors
	Shared   uint64 // lifetime page consumptions served without a read
}

// PagesSaved is the engine I/O avoided by folding: every shared consumption
// is one page-read that did not happen.
func (s FoldStats) PagesSaved() uint64 { return s.Shared }

// foldKey identifies a sharing group: one relation, one class (the scheduler
// passes the query's priority, so only equal-weight queries fold together and
// each member's charged progress stays bit-identical to its solo run).
type foldKey struct {
	rel   *storage.Relation
	class int
}

// FoldRegistry tracks the live fold groups of one scheduler. Serial-phase
// only; see the concurrency contract at the top of the file.
type FoldRegistry struct {
	minPages int
	groups   map[foldKey]*FoldGroup
	nextID   int
	attaches uint64
	// Lifetime counters folded in from retired groups by Sweep; Stats adds
	// the live groups' counts on top.
	fetches uint64
	shared  uint64
}

// NewFoldRegistry creates a registry. Scans of relations smaller than
// minPages pages are not worth sharing and stay solo (minPages < 2 means 2:
// a shorter scan cannot outlive the tick that starts it).
func NewFoldRegistry(minPages int) *FoldRegistry {
	if minPages < 2 {
		minPages = 2
	}
	return &FoldRegistry{minPages: minPages, groups: make(map[foldKey]*FoldGroup)}
}

// Attach folds r's driver seq-scan into the registry, creating the relation's
// group on first use or joining the cursor at its current position. It
// reports whether r folded; ineligible runners (no driver seq-scan, already
// started, already folded, relation below the page floor) are left solo.
func (reg *FoldRegistry) Attach(r *Runner, class int) bool {
	scan := r.foldTarget()
	if scan == nil || r.opened || r.fold != nil {
		return false
	}
	rel := scan.node.Table.Rel
	if rel.NumPages() < reg.minPages {
		return false
	}
	key := foldKey{rel: rel, class: class}
	g := reg.groups[key]
	if g == nil {
		reg.nextID++
		g = &FoldGroup{id: reg.nextID, table: scan.node.Name, rel: rel}
		reg.groups[key] = g
	}
	m := &FoldMember{group: g, groupID: g.id, pos: g.pos}
	g.members = append(g.members, m)
	reg.attaches++
	r.fold = m
	scan.fold = m
	return true
}

// Sweep retires empty groups, folding their counters into the lifetime
// totals. Call from a serial phase after members may have detached.
func (reg *FoldRegistry) Sweep() {
	for key, g := range reg.groups {
		if len(g.members) == 0 {
			reg.fetches += uint64(g.fetches)
			reg.shared += uint64(g.shared)
			delete(reg.groups, key)
		}
	}
}

// ReleaseAll force-detaches every member of every group (fold switched off):
// each continues its lap solo. Groups retire on the next Sweep.
func (reg *FoldRegistry) ReleaseAll() {
	for _, g := range reg.groups {
		for len(g.members) > 0 {
			g.detach(g.members[len(g.members)-1])
		}
	}
}

// HasSharing reports whether any live group has at least two members — the
// only case where the scheduler's execute phase must group runners into
// shared work items.
func (reg *FoldRegistry) HasSharing() bool {
	for _, g := range reg.groups {
		if len(g.members) >= 2 {
			return true
		}
	}
	return false
}

// Stats summarizes the registry. Drained groups that have not been swept yet
// still contribute their counters (only the gauges skip them), so the
// lifetime totals never dip in the window between a detach and the next
// Sweep — snapshots published by mid-tick mutations read Stats directly.
func (reg *FoldRegistry) Stats() FoldStats {
	st := FoldStats{Attaches: reg.attaches, Fetches: reg.fetches, Shared: reg.shared}
	for _, g := range reg.groups {
		st.Fetches += uint64(g.fetches)
		st.Shared += uint64(g.shared)
		if len(g.members) == 0 {
			continue
		}
		st.Groups++
		st.Members += len(g.members)
	}
	return st
}

// Tables returns the sorted table names with at least one live fold group —
// the routing signal a fold-aware balancer keys on.
func (reg *FoldRegistry) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	for _, g := range reg.groups {
		if len(g.members) > 0 && !seen[g.table] {
			seen[g.table] = true
			out = append(out, g.table)
		}
	}
	sort.Strings(out)
	return out
}
