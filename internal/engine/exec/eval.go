package exec

import (
	"fmt"

	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

type row = types.Row

// EvalExpr evaluates a bound expression against a row — the public entry
// point DELETE/UPDATE execution uses to run predicates and SET expressions
// (including any embedded sub-plans) outside a full operator tree.
func EvalExpr(e plan.Expr, r types.Row, ctx *Ctx) (types.Value, error) {
	return evalExpr(e, r, ctx)
}

// evalExpr evaluates a bound expression against the current row with SQL
// three-valued logic. Scalar sub-plans execute inline, charging their work
// to the context's meter — this is how the paper's correlated sub-query
// dominates its query's cost.
func evalExpr(e plan.Expr, r row, ctx *Ctx) (types.Value, error) {
	switch x := e.(type) {
	case plan.ColIdx:
		if x.Idx >= len(r) {
			return types.Null, fmt.Errorf("exec: column index %d out of range (row width %d)", x.Idx, len(r))
		}
		return r[x.Idx], nil
	case plan.OuterCol:
		pos := len(ctx.Outer) - x.Level
		if pos < 0 || pos >= len(ctx.Outer) {
			return types.Null, fmt.Errorf("exec: outer reference level %d with %d outer rows", x.Level, len(ctx.Outer))
		}
		or := ctx.Outer[pos]
		if x.Idx >= len(or) {
			return types.Null, fmt.Errorf("exec: outer column index %d out of range", x.Idx)
		}
		return or[x.Idx], nil
	case plan.Const:
		return x.Val, nil
	case plan.BinaryExpr:
		return evalBinary(x, r, ctx)
	case plan.NotExpr:
		v, err := evalExpr(x.X, r, ctx)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			return types.Null, nil
		}
		return types.NewBool(!v.Truthy()), nil
	case plan.NegExpr:
		v, err := evalExpr(x.X, r, ctx)
		if err != nil {
			return types.Null, err
		}
		return types.Arith(types.OpSub, types.NewInt(0), v)
	case plan.IsNullExpr:
		v, err := evalExpr(x.X, r, ctx)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(v.IsNull() != x.Negate), nil
	case plan.SubplanExpr:
		return evalSubplan(x, r, ctx)
	case plan.ExistsExpr:
		return evalExists(x, r, ctx)
	default:
		return types.Null, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

// evalExists runs an EXISTS sub-query, stopping at the first row.
func evalExists(x plan.ExistsExpr, r row, ctx *Ctx) (types.Value, error) {
	op := Build(x.Plan)
	ctx.Outer = append(ctx.Outer, r)
	savedLimit := ctx.Limit
	ctx.Limit = 0
	defer func() {
		ctx.Outer = ctx.Outer[:len(ctx.Outer)-1]
		ctx.Limit = savedLimit
	}()
	if err := op.Open(ctx); err != nil {
		return types.Null, err
	}
	defer op.Close()
	first, err := op.Next(ctx)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool((first != nil) != x.Negate), nil
}

func evalBinary(x plan.BinaryExpr, r row, ctx *Ctx) (types.Value, error) {
	switch x.Op {
	case sql.BinAnd, sql.BinOr:
		return evalLogical(x, r, ctx)
	}
	l, err := evalExpr(x.L, r, ctx)
	if err != nil {
		return types.Null, err
	}
	rv, err := evalExpr(x.R, r, ctx)
	if err != nil {
		return types.Null, err
	}
	switch x.Op {
	case sql.BinAdd:
		return types.Arith(types.OpAdd, l, rv)
	case sql.BinSub:
		return types.Arith(types.OpSub, l, rv)
	case sql.BinMul:
		return types.Arith(types.OpMul, l, rv)
	case sql.BinDiv:
		return types.Arith(types.OpDiv, l, rv)
	}
	// Comparison: NULL operands yield NULL.
	if l.IsNull() || rv.IsNull() {
		return types.Null, nil
	}
	cmp, err := types.Compare(l, rv)
	if err != nil {
		return types.Null, err
	}
	var out bool
	switch x.Op {
	case sql.BinEq:
		out = cmp == 0
	case sql.BinNe:
		out = cmp != 0
	case sql.BinLt:
		out = cmp < 0
	case sql.BinLe:
		out = cmp <= 0
	case sql.BinGt:
		out = cmp > 0
	case sql.BinGe:
		out = cmp >= 0
	default:
		return types.Null, fmt.Errorf("exec: unsupported binary op %v", x.Op)
	}
	return types.NewBool(out), nil
}

// evalLogical implements SQL three-valued AND/OR with short-circuiting.
func evalLogical(x plan.BinaryExpr, r row, ctx *Ctx) (types.Value, error) {
	l, err := evalExpr(x.L, r, ctx)
	if err != nil {
		return types.Null, err
	}
	if x.Op == sql.BinAnd {
		if !l.IsNull() && !l.Truthy() {
			return types.NewBool(false), nil
		}
		rv, err := evalExpr(x.R, r, ctx)
		if err != nil {
			return types.Null, err
		}
		switch {
		case !rv.IsNull() && !rv.Truthy():
			return types.NewBool(false), nil
		case l.IsNull() || rv.IsNull():
			return types.Null, nil
		default:
			return types.NewBool(true), nil
		}
	}
	// OR
	if !l.IsNull() && l.Truthy() {
		return types.NewBool(true), nil
	}
	rv, err := evalExpr(x.R, r, ctx)
	if err != nil {
		return types.Null, err
	}
	switch {
	case !rv.IsNull() && rv.Truthy():
		return types.NewBool(true), nil
	case l.IsNull() || rv.IsNull():
		return types.Null, nil
	default:
		return types.NewBool(false), nil
	}
}

// evalSubplan runs a scalar sub-query with the current row pushed onto the
// outer-row stack. Zero rows yield NULL; more than one row is an error, as
// in PostgreSQL.
func evalSubplan(x plan.SubplanExpr, r row, ctx *Ctx) (types.Value, error) {
	op := Build(x.Plan)
	ctx.Outer = append(ctx.Outer, r)
	// One scalar sub-query evaluation is the indivisible work quantum:
	// suspend the yield limit so the sub-plan's own loops run to completion.
	savedLimit := ctx.Limit
	ctx.Limit = 0
	defer func() {
		ctx.Outer = ctx.Outer[:len(ctx.Outer)-1]
		ctx.Limit = savedLimit
	}()
	if err := op.Open(ctx); err != nil {
		return types.Null, err
	}
	defer op.Close()
	first, err := op.Next(ctx)
	if err != nil {
		return types.Null, err
	}
	if first == nil {
		return types.Null, nil
	}
	second, err := op.Next(ctx)
	if err != nil {
		return types.Null, err
	}
	if second != nil {
		return types.Null, fmt.Errorf("exec: scalar sub-query returned more than one row")
	}
	return first[0], nil
}
