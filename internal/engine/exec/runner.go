package exec

import (
	"math"

	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/types"
)

// Runner drives a plan to completion in budgeted steps. It is the unit the
// multi-query scheduler interleaves, and it hosts the refined remaining-cost
// estimation of [Luo et al., SIGMOD'04/ICDE'05] that the paper's Assumption 2
// relies on: the optimizer estimate early on, interpolation from observed
// progress once enough of the driver input has been consumed.
//
// A Runner is single-owner: at most one goroutine may call its methods at a
// time, and a Step must complete before any other method (WorkDone,
// EstRemaining, Progress, another Step) is invoked — possibly from a
// different goroutine, with an intervening happens-before edge. Distinct
// Runners are independent and may be stepped concurrently; they share only
// read-only engine state (see the package comment).
type Runner struct {
	root   Operator
	plan   plan.Node
	ctx    *Ctx
	opened bool
	done   bool
	failed error
	fold   *FoldMember // shared-scan seat, set by FoldRegistry.Attach

	// CollectRows controls whether result rows are retained. Experiments
	// discard them; the shell and examples keep them.
	CollectRows bool
	rows        []types.Row
}

// NewRunner prepares a runner for the plan. Rows are collected by default.
func NewRunner(p plan.Node) *Runner {
	return &Runner{root: Build(p), plan: p, ctx: NewCtx(), CollectRows: true}
}

// Plan returns the underlying physical plan.
func (r *Runner) Plan() plan.Node { return r.plan }

// Schema returns the output schema.
func (r *Runner) Schema() types.Schema { return r.plan.Schema() }

// Rows returns the collected result rows (nil if CollectRows is false).
func (r *Runner) Rows() []types.Row { return r.rows }

// Done reports whether the query has finished (successfully or not).
func (r *Runner) Done() bool { return r.done }

// Err returns the terminal error, if execution failed.
func (r *Runner) Err() error { return r.failed }

// WorkDone returns the charged work units consumed so far — the progress
// plane, unchanged by scan sharing.
func (r *Runner) WorkDone() float64 { return r.ctx.Meter.Total() }

// CostDone returns the engine-cost units consumed so far: physical work
// after shared-scan deduplication. Equal to WorkDone for unfolded queries.
func (r *Runner) CostDone() float64 { return r.ctx.Meter.Cost() }

// foldTarget returns the driver seq-scan a fold would attach to: the
// left-most leaf of the operator tree, provided it is a sequential scan. The
// driver is opened exactly once per execution, unlike inner-side scans a
// nested-loop join re-opens per outer row, so it is the only scan a shared
// cursor can serve coherently.
func (r *Runner) foldTarget() *seqScan {
	op := r.root
	for {
		switch x := op.(type) {
		case *seqScan:
			return x
		case *filterOp:
			op = x.child
		case *projectOp:
			op = x.child
		case *nlJoin:
			op = x.l
		case *aggOp:
			op = x.child
		case *distinctOp:
			op = x.child
		case *sortOp:
			op = x.child
		case *limitOp:
			op = x.child
		default:
			return nil
		}
	}
}

// FoldGroup returns the fold group this runner attached to, or 0 if it never
// folded. The value survives detachment, for reporting.
func (r *Runner) FoldGroup() int {
	if r.fold == nil {
		return 0
	}
	return r.fold.groupID
}

// FoldAttached reports whether the runner currently rides a shared cursor.
func (r *Runner) FoldAttached() bool { return r.fold != nil && r.fold.Attached() }

// ReleaseFold force-detaches the runner from its shared cursor (block, abort,
// priority change, fold disabled). The scan finishes its lap solo; charged
// work and results are unaffected. No-op for unfolded or already-detached
// runners. Serial-phase only — never call while the runner may be mid-Step.
func (r *Runner) ReleaseFold() {
	if r.fold != nil && !r.fold.detached {
		r.fold.group.detach(r.fold)
	}
}

// Step executes until approximately budget additional work units have been
// consumed or the query completes. It returns the work actually consumed
// (one tuple's work is indivisible, so the last call may overshoot slightly)
// and whether the query is now done. A non-positive budget performs no work.
func (r *Runner) Step(budget float64) (consumed float64, done bool, err error) {
	if r.done {
		return 0, true, r.failed
	}
	if budget <= 0 {
		return 0, false, nil
	}
	start := r.ctx.Meter.Total()
	if !r.opened {
		if err := r.root.Open(r.ctx); err != nil {
			r.done, r.failed = true, err
			return r.ctx.Meter.Total() - start, true, err
		}
		r.opened = true
	}
	target := start + budget
	r.ctx.Limit = target
	defer func() { r.ctx.Limit = 0 }()
	for r.ctx.Meter.Total() < target {
		row, err := r.root.Next(r.ctx)
		if err == errYield {
			break
		}
		if err != nil {
			r.done, r.failed = true, err
			return r.ctx.Meter.Total() - start, true, err
		}
		if row == nil {
			r.done = true
			if cerr := r.root.Close(); cerr != nil && r.failed == nil {
				r.failed = cerr
			}
			break
		}
		if r.CollectRows {
			r.rows = append(r.rows, row.Clone())
		}
	}
	return r.ctx.Meter.Total() - start, r.done, r.failed
}

// Run executes the query to completion. It must not be used on a folded
// runner: a shared cursor parks behind its slowest member (Step yields with
// no progress), and only the scheduler's group-aware execute phase steps the
// members in rotation.
func (r *Runner) Run() error {
	for {
		_, done, err := r.Step(math.MaxFloat64 / 4)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Progress returns the driver-input fraction consumed, in [0, 1].
func (r *Runner) Progress() float64 {
	if r.done {
		return 1
	}
	if !r.opened {
		return 0
	}
	return math.Min(1, math.Max(0, r.root.Progress()))
}

// Refinement thresholds: below lowWatermark of driver progress the optimizer
// estimate is trusted entirely; above highWatermark the observed-progress
// interpolation is trusted entirely; in between the two are blended linearly.
const (
	lowWatermark  = 0.02
	highWatermark = 0.30
)

// EstRemainingOptimizer returns the optimizer-only remaining-cost estimate:
// the plan's total estimated cost minus work done (floored at zero).
func (r *Runner) EstRemainingOptimizer() float64 {
	if r.done {
		return 0
	}
	return math.Max(0, r.plan.EstCost()-r.WorkDone())
}

// EstRemaining returns the refined remaining-cost estimate in U's. This is
// the c_i the progress indicators consume.
func (r *Runner) EstRemaining() float64 {
	if r.done {
		return 0
	}
	opt := r.EstRemainingOptimizer()
	f := r.Progress()
	if f <= lowWatermark {
		return opt
	}
	interp := r.WorkDone() * (1 - f) / f
	if f >= highWatermark {
		return interp
	}
	w := (f - lowWatermark) / (highWatermark - lowWatermark)
	return (1-w)*opt + w*interp
}

// EstTotal returns the refined estimate of the query's total cost
// (work done + estimated remaining).
func (r *Runner) EstTotal() float64 { return r.WorkDone() + r.EstRemaining() }
