package exec

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

// errYield signals that an operator paused because the Ctx work limit was
// reached; the Runner resumes it on the next Step. It never escapes the
// package.
var errYield = errors.New("exec: work budget exhausted")

// Operator is a resumable volcano iterator. Next returns (nil, nil) at end
// of stream. Progress reports the fraction of the operator's driver input
// consumed, in [0, 1]; it powers the refined remaining-cost estimate.
type Operator interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (types.Row, error)
	Close() error
	Progress() float64
}

// Build constructs an executable operator tree from a physical plan.
func Build(n plan.Node) Operator {
	switch x := n.(type) {
	case *plan.SeqScan:
		return &seqScan{node: x}
	case *plan.IndexScan:
		return &indexScan{node: x}
	case *plan.Filter:
		return &filterOp{node: x, child: Build(x.Child)}
	case *plan.Project:
		return &projectOp{node: x, child: Build(x.Child)}
	case *plan.NLJoin:
		return &nlJoin{node: x, l: Build(x.L), r: Build(x.R)}
	case *plan.Agg:
		return &aggOp{node: x, child: Build(x.Child)}
	case *plan.Distinct:
		return &distinctOp{node: x, child: Build(x.Child)}
	case *plan.Sort:
		return &sortOp{node: x, child: Build(x.Child)}
	case *plan.Limit:
		return &limitOp{node: x, child: Build(x.Child)}
	default:
		panic(fmt.Sprintf("exec: unknown plan node %T", n))
	}
}

// --- SeqScan ---

// seqScan reads heap pages from a ScanSource: the embedded soloSource
// (physical order, classic costing) unless a FoldMember was attached before
// the scan opened, in which case pages arrive in shared-cursor rotation
// order. The scan itself only tracks the page currently being emitted; page
// choice and meter charging are the source's job.
type seqScan struct {
	node *plan.SeqScan
	fold *FoldMember // set by FoldRegistry.Attach before Open; nil = solo
	solo soloSource
	src  ScanSource

	page   int  // page currently being emitted (granted by src)
	slot   int  // next slot within that page
	done   int  // pages fully consumed before the current one
	active bool // a granted page is being emitted
	eof    bool
}

func (s *seqScan) Open(ctx *Ctx) error {
	s.page, s.slot, s.done, s.active, s.eof = 0, 0, 0, false, false
	if s.fold != nil {
		s.src = s.fold
	} else {
		s.solo = soloSource{rel: s.node.Table.Rel}
		s.src = &s.solo
	}
	return nil
}

func (s *seqScan) Next(ctx *Ctx) (types.Row, error) {
	rel := s.node.Table.Rel
	for !s.eof {
		if !s.active {
			p, st := s.src.NextPage(ctx)
			switch st {
			case PageEOF:
				s.eof = true
				continue
			case PageWait:
				return nil, errYield
			}
			s.page, s.slot, s.active = p, 0, true
		}
		// Page(page) is re-read on every call so rows appended to the current
		// page by DML between scheduler ticks stay visible, as before.
		rows := rel.Page(s.page)
		if s.slot < len(rows) {
			id := storage.RowID{Page: s.page, Slot: s.slot}
			r := rows[s.slot]
			s.slot++
			if !rel.Live(id) {
				continue
			}
			return r, nil
		}
		s.active, s.slot = false, 0
		s.done++
	}
	return nil, nil
}

func (s *seqScan) Close() error { return nil }

func (s *seqScan) Progress() float64 {
	rel := s.node.Table.Rel
	n := rel.NumSlots()
	if n == 0 || s.eof {
		return 1
	}
	// Slot-granular progress: page-granular reporting is far too coarse for
	// the small part tables that drive the paper's queries, and the refined
	// remaining-cost interpolation amplifies any progress error. done counts
	// consumed pages, so for a solo scan this is bit-identical to the classic
	// page*PageSlots+slot formula at every observable point.
	read := s.done*storage.PageSlots + s.slot
	return math.Min(1, float64(read)/float64(n))
}

// --- IndexScan ---

type indexScan struct {
	node     *plan.IndexScan
	rids     []storage.RowID
	pos      int
	lastPage int
	empty    bool
}

func (s *indexScan) Open(ctx *Ctx) error {
	s.rids, s.pos, s.lastPage, s.empty = nil, 0, -1, false
	key, err := evalExpr(s.node.KeyExpr, nil, ctx)
	if err != nil {
		return err
	}
	if key.IsNull() {
		s.empty = true
		ctx.Meter.ChargePage() // the probe that finds nothing still reads the root
		return nil
	}
	if key.Kind() != types.KindInt {
		return fmt.Errorf("exec: index key must be BIGINT, got %s", key.Kind())
	}
	probe := s.node.Index.SearchEq(key.Int())
	ctx.Meter.Charge(float64(probe.NodesTouched))
	s.rids = probe.RowIDs
	return nil
}

func (s *indexScan) Next(ctx *Ctx) (types.Row, error) {
	rel := s.node.Table.Rel
	for !s.empty && s.pos < len(s.rids) {
		rid := s.rids[s.pos]
		s.pos++
		if rid.Page != s.lastPage {
			ctx.Meter.ChargePage()
			s.lastPage = rid.Page
		}
		// The B+-tree retains entries for deleted tuples; verify liveness
		// against the heap (the page touch above is the cost of finding
		// out).
		if !rel.Live(rid) {
			continue
		}
		r, err := rel.Fetch(rid)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
	return nil, nil
}

func (s *indexScan) Close() error { return nil }

func (s *indexScan) Progress() float64 {
	if s.empty || len(s.rids) == 0 {
		return 1
	}
	return float64(s.pos) / float64(len(s.rids))
}

// --- Filter ---

type filterOp struct {
	node  *plan.Filter
	child Operator
}

func (f *filterOp) Open(ctx *Ctx) error { return f.child.Open(ctx) }

func (f *filterOp) Next(ctx *Ctx) (types.Row, error) {
	for {
		// Each rejected candidate may have cost a full sub-query
		// evaluation; yield between candidates once over budget so the
		// scheduler's quantum holds.
		if ctx.OverBudget() {
			return nil, errYield
		}
		r, err := f.child.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		v, err := evalExpr(f.node.Pred, r, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

func (f *filterOp) Close() error      { return f.child.Close() }
func (f *filterOp) Progress() float64 { return f.child.Progress() }

// --- Project ---

type projectOp struct {
	node  *plan.Project
	child Operator
}

func (p *projectOp) Open(ctx *Ctx) error { return p.child.Open(ctx) }

func (p *projectOp) Next(ctx *Ctx) (types.Row, error) {
	r, err := p.child.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	out := make(types.Row, len(p.node.Exprs))
	for i, e := range p.node.Exprs {
		v, err := evalExpr(e, r, ctx)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (p *projectOp) Close() error      { return p.child.Close() }
func (p *projectOp) Progress() float64 { return p.child.Progress() }

// --- Nested loop join (cross product; predicates live in a Filter above) ---

type nlJoin struct {
	node    *plan.NLJoin
	l, r    Operator
	lRow    types.Row
	started bool
}

func (j *nlJoin) Open(ctx *Ctx) error {
	j.lRow, j.started = nil, false
	if err := j.l.Open(ctx); err != nil {
		return err
	}
	return nil
}

func (j *nlJoin) Next(ctx *Ctx) (types.Row, error) {
	for {
		if ctx.OverBudget() {
			return nil, errYield
		}
		if j.lRow == nil {
			lr, err := j.l.Next(ctx)
			if err != nil || lr == nil {
				return nil, err
			}
			j.lRow = lr.Clone()
			if j.started {
				if err := j.r.Close(); err != nil {
					return nil, err
				}
			}
			if err := j.r.Open(ctx); err != nil {
				return nil, err
			}
			j.started = true
		}
		rr, err := j.r.Next(ctx)
		if err != nil {
			return nil, err
		}
		if rr == nil {
			j.lRow = nil
			continue
		}
		return j.lRow.Concat(rr), nil
	}
}

func (j *nlJoin) Close() error {
	lerr := j.l.Close()
	var rerr error
	if j.started {
		rerr = j.r.Close()
	}
	if lerr != nil {
		return lerr
	}
	return rerr
}

func (j *nlJoin) Progress() float64 { return j.l.Progress() }

// --- Aggregate ---

type aggState struct {
	key    types.Row
	accums []accumulator
}

type aggOp struct {
	node    *plan.Agg
	child   Operator
	groups  map[string]*aggState
	order   []string
	drained bool
	out     []types.Row
	pos     int
}

func (a *aggOp) Open(ctx *Ctx) error {
	a.groups, a.order, a.drained, a.out, a.pos = nil, nil, false, nil, 0
	return a.child.Open(ctx)
}

func (a *aggOp) Next(ctx *Ctx) (types.Row, error) {
	if !a.drained {
		if err := a.drain(ctx); err != nil {
			return nil, err
		}
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, nil
}

// drain accumulates the child's rows into groups. It is resumable: the
// accumulation state lives on the operator, and the loop yields when the
// work budget runs out.
func (a *aggOp) drain(ctx *Ctx) error {
	scalar := len(a.node.GroupBy) == 0
	if a.groups == nil {
		a.groups = make(map[string]*aggState)
		if scalar {
			a.groups[""] = &aggState{accums: newAccums(a.node.Aggs)}
			a.order = append(a.order, "")
		}
	}
	for {
		if ctx.OverBudget() {
			return errYield
		}
		r, err := a.child.Next(ctx)
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		var key string
		var keyRow types.Row
		if !scalar {
			keyRow = make(types.Row, len(a.node.GroupBy))
			for i, g := range a.node.GroupBy {
				v, err := evalExpr(g, r, ctx)
				if err != nil {
					return err
				}
				keyRow[i] = v
			}
			key = keyRow.Key()
		}
		st, ok := a.groups[key]
		if !ok {
			st = &aggState{key: keyRow, accums: newAccums(a.node.Aggs)}
			a.groups[key] = st
			a.order = append(a.order, key)
		}
		for i, spec := range a.node.Aggs {
			var v types.Value
			if spec.Star {
				v = types.NewInt(1)
			} else {
				var err error
				v, err = evalExpr(spec.Arg, r, ctx)
				if err != nil {
					return err
				}
			}
			st.accums[i].add(v)
		}
	}
	a.out = make([]types.Row, 0, len(a.order))
	for _, key := range a.order {
		st := a.groups[key]
		row := make(types.Row, 0, len(st.key)+len(st.accums))
		row = append(row, st.key...)
		for _, acc := range st.accums {
			row = append(row, acc.result())
		}
		a.out = append(a.out, row)
	}
	// Materializing the result costs one page per PageSlots groups.
	ctx.Meter.Charge(math.Max(1, math.Ceil(float64(len(a.out))/float64(storage.PageSlots))))
	a.drained = true
	return nil
}

func (a *aggOp) Close() error { return a.child.Close() }

func (a *aggOp) Progress() float64 {
	if !a.drained {
		return 0.95 * a.child.Progress()
	}
	if len(a.out) == 0 {
		return 1
	}
	return 0.95 + 0.05*float64(a.pos)/float64(len(a.out))
}

// accumulator implements one aggregate function incrementally.
type accumulator struct {
	fn      sql.AggFunc
	star    bool
	count   int64 // non-null inputs (or all inputs for COUNT(*))
	sumF    float64
	sumI    int64
	isFloat bool
	minMax  types.Value
}

func newAccums(specs []plan.AggSpec) []accumulator {
	out := make([]accumulator, len(specs))
	for i, s := range specs {
		out[i] = accumulator{fn: s.Func, star: s.Star}
	}
	return out
}

func (a *accumulator) add(v types.Value) {
	if a.star {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	a.count++
	switch a.fn {
	case sql.AggSum, sql.AggAvg:
		if v.Kind() == types.KindFloat {
			a.isFloat = true
		}
		if v.IsNumeric() {
			a.sumF += v.Float()
			if v.Kind() == types.KindInt {
				a.sumI += v.Int()
			}
		}
	case sql.AggMin:
		if a.minMax.IsNull() {
			a.minMax = v
		} else if cmp, err := types.Compare(v, a.minMax); err == nil && cmp < 0 {
			a.minMax = v
		}
	case sql.AggMax:
		if a.minMax.IsNull() {
			a.minMax = v
		} else if cmp, err := types.Compare(v, a.minMax); err == nil && cmp > 0 {
			a.minMax = v
		}
	}
}

func (a *accumulator) result() types.Value {
	switch a.fn {
	case sql.AggCount:
		return types.NewInt(a.count)
	case sql.AggSum:
		if a.count == 0 {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF)
		}
		return types.NewInt(a.sumI)
	case sql.AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat(a.sumF / float64(a.count))
	case sql.AggMin, sql.AggMax:
		return a.minMax
	default:
		return types.Null
	}
}

// --- Distinct ---

type distinctOp struct {
	node    *plan.Distinct
	child   Operator
	seen    map[string]bool
	emitted int
}

func (d *distinctOp) Open(ctx *Ctx) error {
	d.seen = make(map[string]bool)
	d.emitted = 0
	return d.child.Open(ctx)
}

func (d *distinctOp) Next(ctx *Ctx) (types.Row, error) {
	for {
		if ctx.OverBudget() {
			return nil, errYield
		}
		r, err := d.child.Next(ctx)
		if err != nil || r == nil {
			return nil, err
		}
		key := r.Key()
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		d.emitted++
		// The dedup hash table materializes one page per PageSlots rows.
		if d.emitted%storage.PageSlots == 1 {
			ctx.Meter.ChargePage()
		}
		return r, nil
	}
}

func (d *distinctOp) Close() error      { return d.child.Close() }
func (d *distinctOp) Progress() float64 { return d.child.Progress() }

// --- Sort ---

type sortOp struct {
	node    *plan.Sort
	child   Operator
	drained bool
	rows    []types.Row
	pos     int
	sortErr error
}

func (s *sortOp) Open(ctx *Ctx) error {
	s.drained, s.rows, s.pos, s.sortErr = false, nil, 0, nil
	return s.child.Open(ctx)
}

func (s *sortOp) Next(ctx *Ctx) (types.Row, error) {
	if !s.drained {
		// Resumable input phase: the buffer persists across yields.
		for {
			if ctx.OverBudget() {
				return nil, errYield
			}
			r, err := s.child.Next(ctx)
			if err != nil {
				return nil, err
			}
			if r == nil {
				break
			}
			s.rows = append(s.rows, r.Clone())
		}
		// Materialize (write + read back): two page passes.
		pages := math.Max(1, math.Ceil(float64(len(s.rows))/float64(storage.PageSlots)))
		ctx.Meter.Charge(2 * pages)
		keys := s.node.Keys
		sort.SliceStable(s.rows, func(i, j int) bool {
			for _, k := range keys {
				vi, err := evalExpr(k.Expr, s.rows[i], ctx)
				if err != nil {
					s.sortErr = err
					return false
				}
				vj, err := evalExpr(k.Expr, s.rows[j], ctx)
				if err != nil {
					s.sortErr = err
					return false
				}
				cmp, err := types.Compare(vi, vj)
				if err != nil {
					s.sortErr = err
					return false
				}
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		if s.sortErr != nil {
			return nil, s.sortErr
		}
		s.drained = true
	}
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

func (s *sortOp) Close() error { return s.child.Close() }

func (s *sortOp) Progress() float64 {
	if !s.drained {
		return 0.9 * s.child.Progress()
	}
	if len(s.rows) == 0 {
		return 1
	}
	return 0.9 + 0.1*float64(s.pos)/float64(len(s.rows))
}

// --- Limit ---

type limitOp struct {
	node    *plan.Limit
	child   Operator
	emitted int64
}

func (l *limitOp) Open(ctx *Ctx) error {
	l.emitted = 0
	return l.child.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (types.Row, error) {
	if l.emitted >= l.node.N {
		return nil, nil
	}
	r, err := l.child.Next(ctx)
	if err != nil || r == nil {
		return nil, err
	}
	l.emitted++
	return r, nil
}

func (l *limitOp) Close() error { return l.child.Close() }

func (l *limitOp) Progress() float64 {
	if l.node.N <= 0 {
		return 1
	}
	frac := float64(l.emitted) / float64(l.node.N)
	child := l.child.Progress()
	return math.Min(1, math.Max(frac, child))
}
