package exec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

// buildCatalog creates part(partkey, retailprice) with nPart rows and
// lineitem(partkey, quantity, extendedprice) with nLine rows plus an index
// on lineitem.partkey.
func buildCatalog(t testing.TB, nPart, nLine int) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("part", types.NewSchema(
		types.Column{Name: "partkey", Type: types.KindInt},
		types.Column{Name: "retailprice", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("lineitem", types.NewSchema(
		types.Column{Name: "partkey", Type: types.KindInt},
		types.Column{Name: "quantity", Type: types.KindInt},
		types.Column{Name: "extendedprice", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < nPart; i++ {
		if err := c.Insert("part", types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(50 + 100*rng.Float64()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nLine; i++ {
		if err := c.Insert("lineitem", types.Row{
			types.NewInt(int64(rng.Intn(nPart))),
			types.NewInt(int64(1 + rng.Intn(10))),
			types.NewFloat(100 * rng.Float64() * float64(1+rng.Intn(10))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateIndex("li_pk", "lineitem", "partkey"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func planQuery(t testing.TB, c *catalog.Catalog, src string) plan.Node {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.NewPlanner(c).PlanSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const paperQuery = `SELECT * FROM part p WHERE p.retailprice * 0.75 >
	(SELECT SUM(l.extendedprice) / SUM(l.quantity) FROM lineitem l WHERE l.partkey = p.partkey)`

// TestStepBudgetIndependence: executing a query in steps of any budget size
// must produce exactly the rows and total work of a single uninterrupted
// run. This is the core invariant the multi-query scheduler relies on.
func TestStepBudgetIndependence(t *testing.T) {
	c := buildCatalog(t, 60, 600)
	queries := []string{
		paperQuery,
		"SELECT quantity, COUNT(*), SUM(extendedprice) FROM lineitem GROUP BY quantity ORDER BY quantity",
		"SELECT * FROM part ORDER BY retailprice DESC LIMIT 7",
		"SELECT p.partkey, l.quantity FROM part p, lineitem l WHERE p.partkey = l.partkey AND l.quantity = 3",
		"SELECT DISTINCT quantity FROM lineitem",
		`SELECT * FROM part p WHERE EXISTS
		   (SELECT * FROM lineitem l WHERE l.partkey = p.partkey AND l.quantity > 8)`,
	}
	for _, src := range queries {
		ref := NewRunner(planQuery(t, c, src))
		if err := ref.Run(); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for _, budget := range []float64{0.5, 1, 3.7, 16, 1000} {
			r := NewRunner(planQuery(t, c, src))
			steps := 0
			for {
				_, done, err := r.Step(budget)
				if err != nil {
					t.Fatalf("step: %v", err)
				}
				steps++
				if steps > 1e7 {
					t.Fatal("no progress")
				}
				if done {
					break
				}
			}
			if got, want := len(r.Rows()), len(ref.Rows()); got != want {
				t.Fatalf("%s budget=%g: %d rows, want %d", src, budget, got, want)
			}
			for i := range ref.Rows() {
				if r.Rows()[i].Key() != ref.Rows()[i].Key() {
					t.Fatalf("%s budget=%g: row %d differs", src, budget, i)
				}
			}
			if math.Abs(r.WorkDone()-ref.WorkDone()) > 1e-6 {
				t.Fatalf("%s budget=%g: work %g, want %g", src, budget, r.WorkDone(), ref.WorkDone())
			}
		}
	}
}

// Property: random step budgets also preserve the result.
func TestStepBudgetIndependenceQuick(t *testing.T) {
	c := buildCatalog(t, 30, 300)
	ref := NewRunner(planQuery(t, c, paperQuery))
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRunner(planQuery(t, c, paperQuery))
		for i := 0; i < 1e6; i++ {
			_, done, err := r.Step(0.1 + 20*rng.Float64())
			if err != nil {
				return false
			}
			if done {
				break
			}
		}
		if len(r.Rows()) != len(ref.Rows()) {
			return false
		}
		return math.Abs(r.WorkDone()-ref.WorkDone()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestStepOvershootBounded: with sub-plan evaluation as the indivisible
// quantum, a 1-U budget must never overshoot by more than one sub-query's
// work (plus a page).
func TestStepOvershootBounded(t *testing.T) {
	c := buildCatalog(t, 60, 600)
	sub := planQuery(t, c, "SELECT SUM(l.extendedprice) FROM lineitem l WHERE l.partkey = 0")
	bound := sub.EstCost()*4 + 8 // generous: matches vary per key
	r := NewRunner(planQuery(t, c, paperQuery))
	for {
		consumed, done, err := r.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		if consumed > 1+bound {
			t.Fatalf("overshoot: consumed %g U on a 1-U budget (bound %g)", consumed, bound)
		}
		if done {
			break
		}
	}
}

func TestProgressMonotonicAndEstimateConverges(t *testing.T) {
	c := buildCatalog(t, 60, 600)
	r := NewRunner(planQuery(t, c, paperQuery))
	r.CollectRows = false
	prev := -1.0
	for {
		_, done, err := r.Step(25)
		if err != nil {
			t.Fatal(err)
		}
		p := r.Progress()
		if p < prev-1e-9 {
			t.Fatalf("progress regressed: %g -> %g", prev, p)
		}
		if p < 0 || p > 1 {
			t.Fatalf("progress out of range: %g", p)
		}
		prev = p
		if done {
			break
		}
	}
	if r.Progress() != 1 {
		t.Errorf("final progress = %g", r.Progress())
	}
	if r.EstRemaining() != 0 || r.EstRemainingOptimizer() != 0 {
		t.Errorf("finished query should have zero remaining, got %g/%g",
			r.EstRemaining(), r.EstRemainingOptimizer())
	}
}

// TestRefinedEstimateAccuracy: by mid-execution the refined estimate must be
// within a modest factor of the true remaining work — and strictly better
// than nothing. (The optimizer estimate is itself good here, so this mostly
// guards the interpolation math.)
func TestRefinedEstimateAccuracy(t *testing.T) {
	c := buildCatalog(t, 60, 600)
	ref := NewRunner(planQuery(t, c, paperQuery))
	ref.CollectRows = false
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.WorkDone()

	r := NewRunner(planQuery(t, c, paperQuery))
	r.CollectRows = false
	for r.WorkDone() < total/2 {
		if _, done, err := r.Step(10); err != nil || done {
			t.Fatalf("done=%v err=%v before half the work", done, err)
		}
	}
	trueRem := total - r.WorkDone()
	est := r.EstRemaining()
	if est < trueRem*0.5 || est > trueRem*2 {
		t.Errorf("refined estimate %g vs true remaining %g (total %g)", est, trueRem, total)
	}
	if r.EstTotal() < total*0.5 || r.EstTotal() > total*2 {
		t.Errorf("EstTotal %g vs true %g", r.EstTotal(), total)
	}
}

func TestRunnerZeroBudgetNoWork(t *testing.T) {
	c := buildCatalog(t, 10, 50)
	r := NewRunner(planQuery(t, c, "SELECT * FROM part"))
	if consumed, done, err := r.Step(0); consumed != 0 || done || err != nil {
		t.Errorf("Step(0) = %g, %v, %v", consumed, done, err)
	}
	if consumed, done, err := r.Step(-5); consumed != 0 || done || err != nil {
		t.Errorf("Step(-5) = %g, %v, %v", consumed, done, err)
	}
	if r.WorkDone() != 0 {
		t.Errorf("work after zero budgets: %g", r.WorkDone())
	}
}

func TestRunnerStepAfterDone(t *testing.T) {
	c := buildCatalog(t, 10, 50)
	r := NewRunner(planQuery(t, c, "SELECT * FROM part"))
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	consumed, done, err := r.Step(100)
	if consumed != 0 || !done || err != nil {
		t.Errorf("Step after done = %g, %v, %v", consumed, done, err)
	}
}

func TestRunnerSchemaAndPlanAccessors(t *testing.T) {
	c := buildCatalog(t, 10, 50)
	p := planQuery(t, c, "SELECT partkey FROM part")
	r := NewRunner(p)
	if r.Plan() != p {
		t.Error("Plan accessor")
	}
	if r.Schema().Len() != 1 || r.Schema().Cols[0].Name != "partkey" {
		t.Errorf("Schema: %v", r.Schema())
	}
	if r.Done() || r.Err() != nil {
		t.Error("fresh runner should not be done")
	}
}

func TestCollectRowsOff(t *testing.T) {
	c := buildCatalog(t, 10, 50)
	r := NewRunner(planQuery(t, c, "SELECT * FROM part"))
	r.CollectRows = false
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Rows() != nil {
		t.Error("rows should be discarded")
	}
	if r.WorkDone() <= 0 {
		t.Error("work must still be accounted")
	}
}

// TestWorkMatchesPageMath: a bare table scan charges exactly its page count.
func TestWorkMatchesPageMath(t *testing.T) {
	c := buildCatalog(t, 130, 50) // 130 rows -> 3 pages
	r := NewRunner(planQuery(t, c, "SELECT * FROM part"))
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.WorkDone() != 3 {
		t.Errorf("scan work = %g, want 3 pages", r.WorkDone())
	}
}

// TestIndexScanChargesProbe: an index lookup charges the B+-tree descent
// plus the heap pages it touches — bounded and far below a full scan.
func TestIndexScanChargesProbe(t *testing.T) {
	c := buildCatalog(t, 500, 5000) // ~10 matches per key over ~79 heap pages
	full := NewRunner(planQuery(t, c, "SELECT * FROM lineitem"))
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}
	idx := NewRunner(planQuery(t, c, "SELECT * FROM lineitem WHERE partkey = 5"))
	if err := idx.Run(); err != nil {
		t.Fatal(err)
	}
	if idx.WorkDone() >= full.WorkDone()/2 {
		t.Errorf("index scan %g U vs full scan %g U", idx.WorkDone(), full.WorkDone())
	}
	if len(idx.Rows()) == 0 {
		t.Error("index scan found nothing")
	}
}
