package exec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

func evalOn(t *testing.T, e plan.Expr, r types.Row, ctx *Ctx) types.Value {
	t.Helper()
	v, err := EvalExpr(e, r, ctx)
	if err != nil {
		t.Fatalf("eval %s: %v", e.String(), err)
	}
	return v
}

func TestEvalBasics(t *testing.T) {
	ctx := NewCtx()
	row := types.Row{types.NewInt(7), types.NewFloat(2.5), types.NewString("x"), types.Null}
	col := func(i int) plan.Expr { return plan.ColIdx{Idx: i} }
	c := func(v types.Value) plan.Expr { return plan.Const{Val: v} }

	// Column and constant access.
	if got := evalOn(t, col(0), row, ctx); got.Int() != 7 {
		t.Errorf("col 0 = %v", got)
	}
	if got := evalOn(t, c(types.NewInt(3)), row, ctx); got.Int() != 3 {
		t.Errorf("const = %v", got)
	}
	// Arithmetic.
	add := plan.BinaryExpr{Op: sql.BinAdd, L: col(0), R: c(types.NewInt(1))}
	if got := evalOn(t, add, row, ctx); got.Int() != 8 {
		t.Errorf("7+1 = %v", got)
	}
	div := plan.BinaryExpr{Op: sql.BinDiv, L: col(0), R: c(types.NewInt(2))}
	if got := evalOn(t, div, row, ctx); got.Float() != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	sub := plan.BinaryExpr{Op: sql.BinSub, L: col(1), R: c(types.NewFloat(0.5))}
	if got := evalOn(t, sub, row, ctx); got.Float() != 2 {
		t.Errorf("2.5-0.5 = %v", got)
	}
	mul := plan.BinaryExpr{Op: sql.BinMul, L: col(0), R: c(types.NewInt(3))}
	if got := evalOn(t, mul, row, ctx); got.Int() != 21 {
		t.Errorf("7*3 = %v", got)
	}
	// Negation.
	neg := plan.NegExpr{X: col(0)}
	if got := evalOn(t, neg, row, ctx); got.Int() != -7 {
		t.Errorf("-7 = %v", got)
	}
	// Comparisons with NULL yield NULL.
	cmp := plan.BinaryExpr{Op: sql.BinGt, L: col(3), R: c(types.NewInt(1))}
	if got := evalOn(t, cmp, row, ctx); !got.IsNull() {
		t.Errorf("NULL > 1 = %v", got)
	}
	// All comparison operators.
	for op, want := range map[sql.BinOp]bool{
		sql.BinEq: false, sql.BinNe: true, sql.BinLt: false,
		sql.BinLe: false, sql.BinGt: true, sql.BinGe: true,
	} {
		e := plan.BinaryExpr{Op: op, L: col(0), R: c(types.NewInt(5))}
		if got := evalOn(t, e, row, ctx); got.Bool() != want {
			t.Errorf("7 %v 5 = %v, want %v", op, got, want)
		}
	}
	// IS NULL.
	if got := evalOn(t, plan.IsNullExpr{X: col(3)}, row, ctx); !got.Bool() {
		t.Error("NULL IS NULL should be true")
	}
	if got := evalOn(t, plan.IsNullExpr{X: col(0), Negate: true}, row, ctx); !got.Bool() {
		t.Error("7 IS NOT NULL should be true")
	}
	// NOT with NULL stays NULL.
	if got := evalOn(t, plan.NotExpr{X: col(3)}, row, ctx); !got.IsNull() {
		t.Errorf("NOT NULL = %v", got)
	}
	if got := evalOn(t, plan.NotExpr{X: c(types.NewBool(true))}, row, ctx); got.Bool() {
		t.Error("NOT true should be false")
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	ctx := NewCtx()
	null := plan.Const{Val: types.Null}
	tru := plan.Const{Val: types.NewBool(true)}
	fls := plan.Const{Val: types.NewBool(false)}
	cases := []struct {
		op   sql.BinOp
		l, r plan.Expr
		want string // "t", "f", "n"
	}{
		{sql.BinAnd, tru, tru, "t"},
		{sql.BinAnd, tru, fls, "f"},
		{sql.BinAnd, fls, null, "f"},
		{sql.BinAnd, null, fls, "f"},
		{sql.BinAnd, tru, null, "n"},
		{sql.BinAnd, null, null, "n"},
		{sql.BinOr, fls, fls, "f"},
		{sql.BinOr, fls, tru, "t"},
		{sql.BinOr, null, tru, "t"},
		{sql.BinOr, tru, null, "t"},
		{sql.BinOr, fls, null, "n"},
		{sql.BinOr, null, null, "n"},
	}
	for _, c := range cases {
		got := evalOn(t, plan.BinaryExpr{Op: c.op, L: c.l, R: c.r}, nil, ctx)
		var code string
		switch {
		case got.IsNull():
			code = "n"
		case got.Bool():
			code = "t"
		default:
			code = "f"
		}
		if code != c.want {
			t.Errorf("%s %v %s = %q, want %q", c.l.String(), c.op, c.r.String(), code, c.want)
		}
	}
}

func TestEvalOuterColLevels(t *testing.T) {
	ctx := NewCtx()
	ctx.Outer = []types.Row{
		{types.NewInt(100)}, // level 2 from the innermost frame
		{types.NewInt(200)}, // level 1
	}
	if got := evalOn(t, plan.OuterCol{Level: 1, Idx: 0}, nil, ctx); got.Int() != 200 {
		t.Errorf("level 1 = %v", got)
	}
	if got := evalOn(t, plan.OuterCol{Level: 2, Idx: 0}, nil, ctx); got.Int() != 100 {
		t.Errorf("level 2 = %v", got)
	}
	if _, err := EvalExpr(plan.OuterCol{Level: 3, Idx: 0}, nil, ctx); err == nil {
		t.Error("level beyond the stack should fail")
	}
	if _, err := EvalExpr(plan.OuterCol{Level: 1, Idx: 5}, nil, ctx); err == nil {
		t.Error("index beyond the outer row should fail")
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := NewCtx()
	if _, err := EvalExpr(plan.ColIdx{Idx: 3}, types.Row{types.NewInt(1)}, ctx); err == nil {
		t.Error("column index out of range should fail")
	}
	bad := plan.BinaryExpr{
		Op: sql.BinAdd,
		L:  plan.Const{Val: types.NewString("x")},
		R:  plan.Const{Val: types.NewInt(1)},
	}
	if _, err := EvalExpr(bad, nil, ctx); err == nil {
		t.Error("string arithmetic should fail")
	}
	mismatch := plan.BinaryExpr{
		Op: sql.BinLt,
		L:  plan.Const{Val: types.NewString("x")},
		R:  plan.Const{Val: types.NewInt(1)},
	}
	if _, err := EvalExpr(mismatch, nil, ctx); err == nil {
		t.Error("string/int comparison should fail")
	}
}

// TestOperatorProgressMidExecution exercises every operator's Progress
// through partially executed plans with each operator shape at the root.
func TestOperatorProgressMidExecution(t *testing.T) {
	c := buildCatalog(t, 60, 1200)
	queries := []string{
		"SELECT quantity, COUNT(*) FROM lineitem GROUP BY quantity",
		"SELECT * FROM lineitem ORDER BY extendedprice",
		"SELECT DISTINCT quantity FROM lineitem",
		"SELECT * FROM lineitem LIMIT 500",
		"SELECT * FROM part p, lineitem l WHERE p.partkey = l.partkey",
		"SELECT * FROM lineitem WHERE partkey = 5",
	}
	for _, src := range queries {
		r := NewRunner(planQuery(t, c, src))
		r.CollectRows = false
		prev := -1.0
		for i := 0; i < 100000; i++ {
			_, done, err := r.Step(5)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			p := r.Progress()
			if p < 0 || p > 1 {
				t.Fatalf("%s: progress %g out of range", src, p)
			}
			if p < prev-1e-9 {
				t.Fatalf("%s: progress regressed %g -> %g", src, prev, p)
			}
			prev = p
			if done {
				break
			}
		}
		if r.Progress() != 1 {
			t.Errorf("%s: final progress %g", src, r.Progress())
		}
	}
}

// TestPlanExprStrings pins the display forms the EXPLAIN output relies on.
func TestPlanExprStrings(t *testing.T) {
	exprs := map[string]plan.Expr{
		"$2":                    plan.ColIdx{Idx: 2},
		"a":                     plan.ColIdx{Idx: 0, Name: "a"},
		"outer(1).p.k":          plan.OuterCol{Level: 1, Idx: 0, Name: "p.k"},
		"outer(2).$3":           plan.OuterCol{Level: 2, Idx: 3},
		"42":                    plan.Const{Val: types.NewInt(42)},
		"NOT a":                 plan.NotExpr{X: plan.ColIdx{Name: "a"}},
		"(-a)":                  plan.NegExpr{X: plan.ColIdx{Name: "a"}},
		"a IS NULL":             plan.IsNullExpr{X: plan.ColIdx{Name: "a"}},
		"a IS NOT NULL":         plan.IsNullExpr{X: plan.ColIdx{Name: "a"}, Negate: true},
		"(a AND b)":             plan.BinaryExpr{Op: sql.BinAnd, L: plan.ColIdx{Name: "a"}, R: plan.ColIdx{Name: "b"}},
		"exists(cost<=0.0)":     plan.ExistsExpr{},
		"not-exists(cost<=0.0)": plan.ExistsExpr{Negate: true},
		"subplan(cost=5.0)":     plan.SubplanExpr{PerEvalCost: 5},
	}
	for want, e := range exprs {
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains((plan.OuterCol{Level: 1, Idx: 0}).String(), "outer(1)") {
		t.Error("anonymous outer ref rendering")
	}
}

// TestAccumulatorProperties cross-checks the streaming aggregate
// accumulators against straightforward reference computations on random
// inputs with NULLs.
func TestAccumulatorProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		specs := []plan.AggSpec{
			{Func: sql.AggCount, Star: true},
			{Func: sql.AggCount, Arg: plan.ColIdx{Idx: 0}},
			{Func: sql.AggSum, Arg: plan.ColIdx{Idx: 0}},
			{Func: sql.AggAvg, Arg: plan.ColIdx{Idx: 0}},
			{Func: sql.AggMin, Arg: plan.ColIdx{Idx: 0}},
			{Func: sql.AggMax, Arg: plan.ColIdx{Idx: 0}},
		}
		accs := newAccums(specs)
		var vals []int64
		total := 0
		for i := 0; i < n; i++ {
			var v types.Value
			if rng.Intn(5) == 0 {
				v = types.Null
			} else {
				x := int64(rng.Intn(2001) - 1000)
				vals = append(vals, x)
				v = types.NewInt(x)
			}
			total++
			for j := range accs {
				if accs[j].star {
					accs[j].add(types.NewInt(1))
				} else {
					accs[j].add(v)
				}
			}
		}
		// References.
		var sum, minV, maxV int64
		for i, x := range vals {
			sum += x
			if i == 0 || x < minV {
				minV = x
			}
			if i == 0 || x > maxV {
				maxV = x
			}
		}
		if accs[0].result().Int() != int64(total) {
			return false
		}
		if accs[1].result().Int() != int64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			for _, i := range []int{2, 3, 4, 5} {
				if !accs[i].result().IsNull() {
					return false
				}
			}
			return true
		}
		if accs[2].result().Int() != sum {
			return false
		}
		wantAvg := float64(sum) / float64(len(vals))
		if math.Abs(accs[3].result().Float()-wantAvg) > 1e-9 {
			return false
		}
		return accs[4].result().Int() == minV && accs[5].result().Int() == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAccumulatorMixedIntFloatSum: SUM over mixed int/float inputs promotes
// to float.
func TestAccumulatorMixedIntFloatSum(t *testing.T) {
	specs := []plan.AggSpec{{Func: sql.AggSum, Arg: plan.ColIdx{Idx: 0}}}
	accs := newAccums(specs)
	accs[0].add(types.NewInt(2))
	accs[0].add(types.NewFloat(0.5))
	got := accs[0].result()
	if got.Kind() != types.KindFloat || got.Float() != 2.5 {
		t.Errorf("mixed sum = %v (%v)", got, got.Kind())
	}
}
