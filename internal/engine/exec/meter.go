// Package exec implements the volcano-style executor with the paper's
// work-unit accounting: every page touched (heap page, index node, or
// materialization page) charges 1 U against the query's WorkMeter. Execution
// is resumable in budgeted steps so the multi-query scheduler can interleave
// queries under weighted fair sharing.
//
// # Concurrency model
//
// Everything a running query mutates is query-private: the Runner, its
// operator tree (including operators built on the fly for scalar sub-query
// evaluation), its Ctx/WorkMeter, and any materialized state (sort buffers,
// aggregation groups, collected rows). Everything it reads through the plan
// is shared but immutable during execution: plan nodes (costs are
// precomputed), catalog tables, heap pages, and B+-tree nodes. Distinct
// Runners may therefore be stepped by distinct goroutines concurrently —
// the scheduler's parallel execute phase relies on this — provided no DDL or
// DML mutates the underlying relations while any runner is mid-step. The
// layers above enforce that: the service runs DML on the owner goroutine,
// which only executes between ticks, never during the parallel phase.
package exec

// WorkMeter accumulates the work units (U's) a query has performed, on two
// planes:
//
//   - charged work (Total) is what the query's progress indicator sees — every
//     page the query logically processed, whether or not the engine had to
//     read it. Progress, ETAs, and the scheduler's credit settlement all use
//     this plane, so folding never changes a query's reported semantics.
//   - engine cost (Cost) is the deduplicated physical work: a page served from
//     a shared scan's current cursor position costs the engine nothing extra
//     for the second and later consumers. Cost <= Total always, with equality
//     whenever the query never rode a shared cursor.
type WorkMeter struct {
	total float64
	cost  float64
}

// Charge adds u work units on both planes (ordinary, unshared work).
func (m *WorkMeter) Charge(u float64) { m.total += u; m.cost += u }

// ChargePage adds one work unit (one page of bytes processed) on both planes.
func (m *WorkMeter) ChargePage() { m.total++; m.cost++ }

// ChargeShared adds u charged work units without engine cost: the physical
// read was already paid for by another member of the same shared scan.
func (m *WorkMeter) ChargeShared(u float64) { m.total += u }

// Total returns the charged work done so far.
func (m *WorkMeter) Total() float64 { return m.total }

// Cost returns the engine-cost plane: physical work actually performed on
// behalf of this query. Equal to Total for queries that never folded.
func (m *WorkMeter) Cost() float64 { return m.cost }

// Ctx is the per-query execution context threaded through all operators.
type Ctx struct {
	Meter *WorkMeter
	// Outer is the stack of enclosing-query rows for correlated sub-query
	// evaluation; Outer[len-1] is the nearest enclosing row.
	Outer []row
	// Limit, when positive, is the absolute meter level at which operators
	// with internal loops (Filter candidate rejection, aggregation drains,
	// joins, sorts) must yield back to the Runner so the scheduler's work
	// budget is respected. Scalar sub-plan evaluation is the indivisible
	// work quantum: the limit is suspended while one runs.
	Limit float64
}

// NewCtx returns a context with a fresh meter.
func NewCtx() *Ctx { return &Ctx{Meter: &WorkMeter{}} }

// OverBudget reports whether the work limit has been reached.
func (c *Ctx) OverBudget() bool { return c.Limit > 0 && c.Meter.Total() >= c.Limit }
