package exec

import (
	"fmt"
	"testing"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/types"
)

// TestWorkMeterPlanes: the two accounting planes move together for ordinary
// work and diverge only through ChargeShared.
func TestWorkMeterPlanes(t *testing.T) {
	var m WorkMeter
	if m.Total() != 0 || m.Cost() != 0 {
		t.Fatalf("zero meter: total=%g cost=%g", m.Total(), m.Cost())
	}
	m.Charge(2.5)
	m.ChargePage()
	if m.Total() != 3.5 || m.Cost() != 3.5 {
		t.Fatalf("after charges: total=%g cost=%g, want 3.5/3.5", m.Total(), m.Cost())
	}
	m.ChargeShared(1)
	m.ChargeShared(2)
	if m.Total() != 6.5 {
		t.Errorf("total=%g, want 6.5 (shared charges count)", m.Total())
	}
	if m.Cost() != 3.5 {
		t.Errorf("cost=%g, want 3.5 (shared charges are free)", m.Cost())
	}
	if m.Cost() > m.Total() {
		t.Errorf("cost %g > total %g", m.Cost(), m.Total())
	}
}

// scanCatalog builds a single-table catalog with exactly pages heap pages.
func scanCatalog(t testing.TB, pages int) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("t", types.NewSchema(
		types.Column{Name: "a", Type: types.KindInt},
	)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages*64; i++ {
		if err := c.Insert("t", types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

// scanRunner prepares SELECT SUM(a) FROM t (a pure driver seq-scan, total
// work pages+1 U). Rows are collected; tests that don't read the aggregate
// switch CollectRows off themselves.
func scanRunner(t testing.TB, c *catalog.Catalog) *Runner {
	t.Helper()
	return NewRunner(planQuery(t, c, "SELECT SUM(a) FROM t"))
}

// driveGroup steps the runners round-robin with the given per-step budget
// until all are done, mimicking one scheduler work item. Returns the number
// of round-robin passes as a runaway guard.
func driveGroup(t testing.TB, runners []*Runner, budget float64) {
	t.Helper()
	for pass := 0; ; pass++ {
		if pass > 100000 {
			t.Fatal("group did not converge (barrier deadlock?)")
		}
		progress := false
		alldone := true
		for _, r := range runners {
			if r.Done() {
				continue
			}
			alldone = false
			consumed, done, err := r.Step(budget)
			if err != nil {
				t.Fatal(err)
			}
			if consumed > 0 || done {
				progress = true
			}
		}
		if alldone {
			return
		}
		if !progress {
			t.Fatal("no progress in a full pass with budget remaining")
		}
	}
}


// TestSharedScanDedup: two members folded from the start each charge a full
// lap of progress while the engine reads every page exactly once (the I11
// conservation law at the exec layer).
func TestSharedScanDedup(t *testing.T) {
	const pages = 8
	c := scanCatalog(t, pages)
	reg := NewFoldRegistry(2)
	a, b := scanRunner(t, c), scanRunner(t, c)
	solo := scanRunner(t, c)
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}
	if !reg.Attach(a, 0) || !reg.Attach(b, 0) {
		t.Fatal("both runners should fold")
	}
	if got := reg.Stats(); got.Groups != 1 || got.Members != 2 || got.Attaches != 2 {
		t.Fatalf("stats after attach: %+v", got)
	}
	driveGroup(t, []*Runner{a, b}, 3)
	for name, r := range map[string]*Runner{"a": a, "b": b} {
		if r.WorkDone() != solo.WorkDone() {
			t.Errorf("%s charged %g U, want solo's %g", name, r.WorkDone(), solo.WorkDone())
		}
		if r.FoldGroup() != 1 {
			t.Errorf("%s fold group = %d, want 1 (sticky after detach)", name, r.FoldGroup())
		}
		if r.FoldAttached() {
			t.Errorf("%s still attached after finishing", name)
		}
	}
	// One lap of pages was paid once across the pair; non-page work (the
	// aggregate drain) is full cost for both.
	if got, want := a.CostDone()+b.CostDone(), 2*solo.CostDone()-float64(pages); got != want {
		t.Errorf("combined cost = %g (a=%g b=%g), want %g", got, a.CostDone(), b.CostDone(), want)
	}
	reg.Sweep()
	st := reg.Stats()
	if st.Groups != 0 || st.Members != 0 {
		t.Errorf("after sweep: %+v", st)
	}
	if st.Fetches != pages || st.PagesSaved() != pages {
		t.Errorf("fetches=%d saved=%d, want %d/%d", st.Fetches, st.PagesSaved(), pages, pages)
	}
}

// TestSharedScanAttachAtOffset: a member that joins mid-rotation wraps around
// the cursor, still charges exactly one full lap, and computes the same
// result as a solo scan.
func TestSharedScanAttachAtOffset(t *testing.T) {
	const pages = 10
	c := scanCatalog(t, pages)
	solo := scanRunner(t, c)
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}
	want := sumOfSolo(t, c)

	reg := NewFoldRegistry(2)
	a := scanRunner(t, c)
	if !reg.Attach(a, 0) {
		t.Fatal("a should fold")
	}
	// Advance a partway through its lap before b arrives.
	for a.WorkDone() < 4 {
		if _, done, err := a.Step(1); err != nil || done {
			t.Fatalf("a finished early: done=%v err=%v", done, err)
		}
	}
	b := scanRunner(t, c)
	b.CollectRows = false
	if !reg.Attach(b, 0) {
		t.Fatal("b should join a's group")
	}
	if a.FoldGroup() != b.FoldGroup() {
		t.Fatalf("groups differ: %d vs %d", a.FoldGroup(), b.FoldGroup())
	}
	driveGroup(t, []*Runner{a, b}, 2)
	if a.WorkDone() != solo.WorkDone() || b.WorkDone() != solo.WorkDone() {
		t.Errorf("charged a=%g b=%g, want %g", a.WorkDone(), b.WorkDone(), solo.WorkDone())
	}
	// b consumed the pages in rotated order; its aggregate must not care.
	ar, err := aggValue(a)
	if err != nil {
		t.Fatal(err)
	}
	if ar != want {
		t.Errorf("a sum = %d, want %d", ar, want)
	}
	reg.Sweep()
	st := reg.Stats()
	// a fetched its full lap; b rode the tail it shared with a and fetched the
	// head pages it replayed solo-in-group after a detached.
	if st.Shared == 0 {
		t.Errorf("no pages shared: %+v", st)
	}
	if st.Fetches+st.Shared != 2*pages {
		t.Errorf("fetches+shared = %d, want %d (two full laps)", st.Fetches+st.Shared, 2*pages)
	}
}

func sumOfSolo(t testing.TB, c *catalog.Catalog) int64 {
	t.Helper()
	r := scanRunner(t, c)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	v, err := aggValue(r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// aggValue reads the runner's single collected aggregate row.
func aggValue(r *Runner) (int64, error) {
	rows := r.Rows()
	if len(rows) != 1 {
		return 0, fmt.Errorf("got %d rows, want 1", len(rows))
	}
	return rows[0][0].Int(), nil
}

// TestSharedScanDetachMidPage: releasing a member mid-lap must hand it a solo
// continuation that finishes the lap at full cost, without re-charging or
// skipping pages.
func TestSharedScanDetachMidPage(t *testing.T) {
	const pages = 8
	c := scanCatalog(t, pages)
	solo := scanRunner(t, c)
	if err := solo.Run(); err != nil {
		t.Fatal(err)
	}
	want := sumOfSolo(t, c)

	reg := NewFoldRegistry(2)
	a, b := scanRunner(t, c), scanRunner(t, c)
	b.CollectRows = false
	reg.Attach(a, 0)
	reg.Attach(b, 0)
	// Step the pair partway in lockstep.
	for a.WorkDone() < 3 {
		if _, _, err := a.Step(1); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	a.ReleaseFold()
	if a.FoldAttached() {
		t.Fatal("a still attached after release")
	}
	if !b.FoldAttached() {
		t.Fatal("b should remain attached")
	}
	// Both finish independently now (b is a 1-member group, never barriers).
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	driveGroup(t, []*Runner{b}, 5)
	if a.WorkDone() != solo.WorkDone() || b.WorkDone() != solo.WorkDone() {
		t.Errorf("charged a=%g b=%g, want %g", a.WorkDone(), b.WorkDone(), solo.WorkDone())
	}
	if v, err := aggValue(a); err != nil || v != want {
		t.Errorf("a sum = %d (err %v), want %d", v, err, want)
	}
	// Stepped a-first, a pays every fetch while attached and then its solo
	// continuation at full cost; b rode the shared stretch for free.
	if a.CostDone() != a.WorkDone() {
		t.Errorf("a cost=%g total=%g, want equal (a fetched everything it read)", a.CostDone(), a.WorkDone())
	}
	if b.CostDone() >= b.WorkDone() {
		t.Errorf("b shared nothing: cost=%g total=%g", b.CostDone(), b.WorkDone())
	}
}

// TestFoldRegistryEligibility: runners without a seq-scan driver, already
// started, or over tiny relations stay solo.
func TestFoldRegistryEligibility(t *testing.T) {
	c := scanCatalog(t, 8)
	reg := NewFoldRegistry(2)

	started := scanRunner(t, c)
	if _, _, err := started.Step(1); err != nil {
		t.Fatal(err)
	}
	if reg.Attach(started, 0) {
		t.Error("a started runner must not fold")
	}

	r := scanRunner(t, c)
	if !reg.Attach(r, 0) {
		t.Fatal("fresh runner should fold")
	}
	if reg.Attach(r, 0) {
		t.Error("double attach must be refused")
	}

	// Different priority class: separate group.
	other := scanRunner(t, c)
	if !reg.Attach(other, 1) {
		t.Fatal("other class should fold into its own group")
	}
	if other.FoldGroup() == r.FoldGroup() {
		t.Error("different classes folded together")
	}

	// Below the page floor: solo.
	big := NewFoldRegistry(100)
	small := scanRunner(t, c)
	if big.Attach(small, 0) {
		t.Error("relation below minPages must not fold")
	}
}

// TestFoldBudgetSemantics: a folded member honors its Step budget exactly as
// a solo runner does — OverBudget with Limit=0 never trips, and mid-operator
// budget exhaustion on the shared cursor never over-charges a member.
func TestFoldBudgetSemantics(t *testing.T) {
	ctx := NewCtx()
	if ctx.OverBudget() {
		t.Fatal("Limit=0 must mean no budget")
	}
	ctx.Meter.Charge(1e9)
	if ctx.OverBudget() {
		t.Fatal("Limit=0 must mean no budget regardless of meter level")
	}

	const pages = 6
	c := scanCatalog(t, pages)
	reg := NewFoldRegistry(2)
	a, b := scanRunner(t, c), scanRunner(t, c)
	a.CollectRows, b.CollectRows = false, false
	reg.Attach(a, 0)
	reg.Attach(b, 0)
	// Fractional budgets: each Step may overshoot by at most one indivisible
	// chunk, exactly like solo execution.
	for !a.Done() || !b.Done() {
		before := a.WorkDone()
		consumed, _, err := a.Step(0.6)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != a.WorkDone()-before {
			t.Fatalf("consumed %g reported, meter moved %g", consumed, a.WorkDone()-before)
		}
		if consumed > 2 {
			t.Fatalf("0.6 budget consumed %g U (over-charge)", consumed)
		}
		if _, _, err := b.Step(0.6); err != nil {
			t.Fatal(err)
		}
	}
	if a.WorkDone() != b.WorkDone() || a.WorkDone() != float64(pages+1) {
		t.Errorf("charged a=%g b=%g, want %d", a.WorkDone(), b.WorkDone(), pages+1)
	}
}

// TestSharedScanManyMembers folds 16 members over one relation and checks
// the conservation law at scale: every member charges a full lap, and total
// engine cost across the group is exactly one lap of pages.
func TestSharedScanManyMembers(t *testing.T) {
	const pages, n = 12, 16
	c := scanCatalog(t, pages)
	reg := NewFoldRegistry(2)
	runners := make([]*Runner, n)
	for i := range runners {
		runners[i] = scanRunner(t, c)
		runners[i].CollectRows = false
		if !reg.Attach(runners[i], 0) {
			t.Fatalf("runner %d did not fold", i)
		}
	}
	driveGroup(t, runners, 2.5)
	for i, r := range runners {
		if r.WorkDone() != float64(pages+1) {
			t.Errorf("runner %d charged %g U, want %d", i, r.WorkDone(), pages+1)
		}
	}
	reg.Sweep()
	st := reg.Stats()
	if st.Fetches != pages {
		t.Errorf("group fetched %d pages, want %d (one lap total)", st.Fetches, pages)
	}
	if st.PagesSaved() != uint64(pages*(n-1)) {
		t.Errorf("saved %d pages, want %d", st.PagesSaved(), pages*(n-1))
	}
}
