package engine

// Database snapshots: a compact binary format for saving and restoring the
// whole catalog — schemas, rows, index definitions, and whether statistics
// were collected. This is the maintenance-scenario companion: after the
// paper's scheduled maintenance (§3.3) the RDBMS restarts and aborted
// queries are rerun against the reloaded database.
//
// Format (all integers little-endian):
//
//	magic "MQPI1"
//	u32 tableCount
//	per table:
//	  str name
//	  u32 colCount; per column: str name, u8 kind
//	  u32 indexCount; per index: str indexName, str columnName
//	  u8 analyzed (1 if statistics existed)
//	  u64 rowCount; per row, per column: value
//	value: u8 kind tag, then
//	  null: nothing | bool: u8 | int: u64 (two's complement) |
//	  float: u64 (IEEE bits) | string: str
//	str: u32 length + bytes

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

var snapshotMagic = []byte("MQPI1")

// Save writes the database to w in snapshot format.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	names := db.cat.TableNames()
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		if err := writeStr(bw, name); err != nil {
			return err
		}
		schema := t.Rel.Schema()
		if err := writeU32(bw, uint32(schema.Len())); err != nil {
			return err
		}
		for _, col := range schema.Cols {
			if err := writeStr(bw, col.Name); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(col.Type)); err != nil {
				return err
			}
		}
		if err := writeU32(bw, uint32(len(t.Indexes))); err != nil {
			return err
		}
		for col, bt := range t.Indexes {
			if err := writeStr(bw, bt.Name()); err != nil {
				return err
			}
			if err := writeStr(bw, col); err != nil {
				return err
			}
		}
		analyzed := byte(0)
		if db.cat.TableStats(name) != nil {
			analyzed = 1
		}
		if err := bw.WriteByte(analyzed); err != nil {
			return err
		}
		// Only live rows are saved; tombstones compact away on reload.
		if err := writeU64(bw, uint64(t.Rel.NumRows())); err != nil {
			return err
		}
		for p := 0; p < t.Rel.NumPages(); p++ {
			for s, row := range t.Rel.Page(p) {
				if !t.Rel.Live(storage.RowID{Page: p, Slot: s}) {
					continue
				}
				for _, v := range row {
					if err := writeValue(bw, v); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads a snapshot into a fresh database.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("engine: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return nil, fmt.Errorf("engine: not a snapshot file (magic %q)", magic)
	}
	db := Open()
	tableCount, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for ti := uint32(0); ti < tableCount; ti++ {
		name, err := readStr(br)
		if err != nil {
			return nil, err
		}
		colCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if colCount == 0 || colCount > 1<<16 {
			return nil, fmt.Errorf("engine: implausible column count %d in %q", colCount, name)
		}
		cols := make([]types.Column, colCount)
		for i := range cols {
			cname, err := readStr(br)
			if err != nil {
				return nil, err
			}
			kind, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if types.Kind(kind) > types.KindString {
				return nil, fmt.Errorf("engine: unknown column kind %d", kind)
			}
			cols[i] = types.Column{Name: cname, Type: types.Kind(kind)}
		}
		if _, err := db.cat.CreateTable(name, types.NewSchema(cols...)); err != nil {
			return nil, err
		}
		idxCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		type idxSpec struct{ name, col string }
		specs := make([]idxSpec, idxCount)
		for i := range specs {
			iname, err := readStr(br)
			if err != nil {
				return nil, err
			}
			icol, err := readStr(br)
			if err != nil {
				return nil, err
			}
			specs[i] = idxSpec{name: iname, col: icol}
		}
		analyzed, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rowCount, err := readU64(br)
		if err != nil {
			return nil, err
		}
		for ri := uint64(0); ri < rowCount; ri++ {
			row := make(types.Row, colCount)
			for i := range row {
				v, err := readValue(br)
				if err != nil {
					return nil, fmt.Errorf("engine: table %q row %d: %w", name, ri, err)
				}
				row[i] = v
			}
			if err := db.cat.Insert(name, row); err != nil {
				return nil, err
			}
		}
		// Indexes are rebuilt from the loaded rows (cheaper to recreate than
		// to serialize tree pages, and guaranteed consistent).
		for _, sp := range specs {
			if _, err := db.cat.CreateIndex(sp.name, name, sp.col); err != nil {
				return nil, err
			}
		}
		if analyzed == 1 {
			if err := db.cat.Analyze(name); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeStr(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func writeValue(w *bufio.Writer, v types.Value) error {
	if err := w.WriteByte(byte(v.Kind())); err != nil {
		return err
	}
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindBool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return w.WriteByte(b)
	case types.KindInt:
		return writeU64(w, uint64(v.Int()))
	case types.KindFloat:
		return writeU64(w, math.Float64bits(v.Float()))
	case types.KindString:
		return writeStr(w, v.Str())
	default:
		return fmt.Errorf("engine: cannot serialize kind %v", v.Kind())
	}
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

const maxStrLen = 64 << 20 // 64 MiB guards against corrupt length prefixes

func readStr(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStrLen {
		return "", fmt.Errorf("engine: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readValue(r *bufio.Reader) (types.Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return types.Null, err
	}
	switch types.Kind(kind) {
	case types.KindNull:
		return types.Null, nil
	case types.KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(b != 0), nil
	case types.KindInt:
		v, err := readU64(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(v)), nil
	case types.KindFloat:
		v, err := readU64(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Float64frombits(v)), nil
	case types.KindString:
		s, err := readStr(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(s), nil
	default:
		return types.Null, fmt.Errorf("engine: unknown value kind %d", kind)
	}
}
