package engine

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mqpi/internal/engine/types"
)

// sameQueryResults asserts two databases agree on a set of probes.
func sameQueryResults(t *testing.T, a, b *DB, queries []string) {
	t.Helper()
	for _, src := range queries {
		ra, _, _, err1 := a.Query(src)
		rb, _, _, err2 := b.Query(src)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", src, err1, err2)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows", src, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].Key() != rb[i].Key() {
				t.Fatalf("%s: row %d: %v vs %v", src, i, ra[i], rb[i])
			}
		}
	}
}

func TestWALRecoverFromEmpty(t *testing.T) {
	var wal bytes.Buffer
	db := Open()
	if _, err := db.AttachWAL(&wal); err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"CREATE TABLE t (a BIGINT, b TEXT)",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')",
		"CREATE INDEX t_a ON t (a)",
		"DELETE FROM t WHERE a = 2",
		"UPDATE t SET b = 'updated' WHERE a = 3",
		"CREATE TABLE u (c DOUBLE)",
		"INSERT INTO u VALUES (1.5)",
		"DROP TABLE u",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	db.DetachWAL()

	recovered, applied, err := Recover(nil, bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no records applied")
	}
	sameQueryResults(t, db, recovered, []string{
		"SELECT * FROM t ORDER BY a",
		"SELECT * FROM t WHERE a = 1",
		"SELECT * FROM t WHERE a = 3",
		"SELECT COUNT(*) FROM t",
	})
	// The dropped table stays dropped.
	if _, err := recovered.Catalog().Table("u"); err == nil {
		t.Error("dropped table resurrected")
	}
	// The index was replayed and serves probes.
	if _, ok := recovered.Catalog().IndexOn("t", "a"); !ok {
		t.Error("index missing after replay")
	}
}

func TestWALPlusCheckpoint(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	// Checkpoint, then log the post-checkpoint mutations.
	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	var wal bytes.Buffer
	if _, err := db.AttachWAL(&wal); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	db.DetachWAL()

	recovered, applied, err := Recover(bytes.NewReader(snap.Bytes()), bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Errorf("applied %d records, want 2", applied)
	}
	sameQueryResults(t, db, recovered, []string{"SELECT * FROM t ORDER BY a"})
}

// TestWALTornTail: replay of a truncated log stops cleanly at the torn
// record instead of failing.
func TestWALTornTail(t *testing.T) {
	var wal bytes.Buffer
	db := Open()
	if _, err := db.AttachWAL(&wal); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	db.DetachWAL()
	full := wal.Bytes()
	// Cut mid-record (anywhere past the header and first record).
	for _, cut := range []int{len(full) - 1, len(full) - 5, len(full) / 2} {
		recovered, applied, err := Recover(nil, bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if applied < 1 || applied > 11 {
			t.Errorf("cut %d: applied %d", cut, applied)
		}
		rows, _, _, err := recovered.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rows[0][0].Int() != int64(applied-1) { // first record created the table
			t.Errorf("cut %d: %v rows vs %d applied", cut, rows[0][0], applied)
		}
	}
}

func TestWALRejectsGarbage(t *testing.T) {
	db := Open()
	if _, err := db.ReplayWAL(bytes.NewReader([]byte("not a wal"))); err == nil {
		t.Error("garbage header accepted")
	}
	// Unknown record type is an error, not a silent stop.
	data := append([]byte("MQWL1"), 0x7f)
	if _, err := db.ReplayWAL(bytes.NewReader(data)); err == nil {
		t.Error("unknown record type accepted")
	}
}

// Property: a random mutation sequence recovers to identical query results,
// including through direct catalog inserts (the workload generator's path).
func TestWALRandomSequenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var wal bytes.Buffer
		db := Open()
		if _, err := db.AttachWAL(&wal); err != nil {
			return false
		}
		if _, err := db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE)"); err != nil {
			return false
		}
		cat := db.Catalog()
		live := 0
		for op := 0; op < 200; op++ {
			switch {
			case live == 0 || rng.Intn(3) > 0:
				row := types.Row{types.NewInt(int64(rng.Intn(50))), types.NewFloat(rng.Float64())}
				if err := cat.Insert("t", row); err != nil {
					return false
				}
				live++
			default:
				if _, err := db.Exec("DELETE FROM t WHERE a = " + types.NewInt(int64(rng.Intn(50))).String()); err != nil {
					return false
				}
				rows, _, _, err := db.Query("SELECT COUNT(*) FROM t")
				if err != nil {
					return false
				}
				live = int(rows[0][0].Int())
			}
		}
		db.DetachWAL()
		recovered, _, err := Recover(nil, bytes.NewReader(wal.Bytes()))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		a, _, _, err1 := db.Query("SELECT * FROM t ORDER BY a, b")
		b, _, _, err2 := recovered.Query("SELECT * FROM t ORDER BY a, b")
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
