package engine

// Differential testing: random queries are executed both through the full
// parse→plan→execute pipeline and by a deliberately naive reference
// evaluator written independently in this file. Any disagreement is a bug in
// the engine (or the reference, which is simple enough to audit).

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mqpi/internal/engine/types"
)

// refRow mirrors a row of the random table.
type refRow struct {
	a     *int64   // nil = NULL
	b     *float64 // nil = NULL
	c     string
	cNull bool
}

// buildRandomTable creates table t(a BIGINT, b DOUBLE, c TEXT) with n rows
// of random data (including NULLs) and returns the reference copy.
func buildRandomTable(t *testing.T, db *DB, rng *rand.Rand, n int) []refRow {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE, c TEXT)"); err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()
	ref := make([]refRow, 0, n)
	words := []string{"ant", "bee", "cat", "dog", "elk"}
	for i := 0; i < n; i++ {
		var r refRow
		row := make(types.Row, 3)
		if rng.Intn(10) == 0 {
			row[0] = types.Null
		} else {
			v := int64(rng.Intn(21) - 10)
			r.a = &v
			row[0] = types.NewInt(v)
		}
		if rng.Intn(10) == 0 {
			row[1] = types.Null
		} else {
			v := float64(rng.Intn(200))/10 - 10
			r.b = &v
			row[1] = types.NewFloat(v)
		}
		if rng.Intn(10) == 0 {
			r.cNull = true
			row[2] = types.Null
		} else {
			r.c = words[rng.Intn(len(words))]
			row[2] = types.NewString(r.c)
		}
		if err := cat.Insert("t", row); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, r)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// tv is SQL three-valued logic: +1 true, 0 unknown, -1 false.
type tv int

func tvOf(b bool) tv {
	if b {
		return 1
	}
	return -1
}

// pred is a randomly generated predicate that can render itself to SQL and
// evaluate itself against a reference row.
type pred interface {
	SQL() string
	Eval(r refRow) tv
}

type cmpPred struct {
	col string // "a", "b", or "c"
	op  string // =, <>, <, <=, >, >=
	i   int64
	f   float64
	s   string
}

func (p cmpPred) SQL() string {
	switch p.col {
	case "a":
		return fmt.Sprintf("a %s %d", p.op, p.i)
	case "b":
		return fmt.Sprintf("b %s %g", p.op, p.f)
	default:
		return fmt.Sprintf("c %s '%s'", p.op, p.s)
	}
}

func (p cmpPred) Eval(r refRow) tv {
	var cmp int
	switch p.col {
	case "a":
		if r.a == nil {
			return 0
		}
		switch {
		case *r.a < p.i:
			cmp = -1
		case *r.a > p.i:
			cmp = 1
		}
	case "b":
		if r.b == nil {
			return 0
		}
		switch {
		case *r.b < p.f:
			cmp = -1
		case *r.b > p.f:
			cmp = 1
		}
	default:
		if r.cNull {
			return 0
		}
		switch {
		case r.c < p.s:
			cmp = -1
		case r.c > p.s:
			cmp = 1
		}
	}
	switch p.op {
	case "=":
		return tvOf(cmp == 0)
	case "<>":
		return tvOf(cmp != 0)
	case "<":
		return tvOf(cmp < 0)
	case "<=":
		return tvOf(cmp <= 0)
	case ">":
		return tvOf(cmp > 0)
	default:
		return tvOf(cmp >= 0)
	}
}

type isNullPred struct {
	col    string
	negate bool
}

func (p isNullPred) SQL() string {
	if p.negate {
		return p.col + " IS NOT NULL"
	}
	return p.col + " IS NULL"
}

func (p isNullPred) Eval(r refRow) tv {
	var isNull bool
	switch p.col {
	case "a":
		isNull = r.a == nil
	case "b":
		isNull = r.b == nil
	default:
		isNull = r.cNull
	}
	return tvOf(isNull != p.negate)
}

type logicalPred struct {
	op   string // AND / OR
	l, r pred
}

func (p logicalPred) SQL() string {
	return "(" + p.l.SQL() + " " + p.op + " " + p.r.SQL() + ")"
}

func (p logicalPred) Eval(r refRow) tv {
	l, rv := p.l.Eval(r), p.r.Eval(r)
	if p.op == "AND" {
		if l == -1 || rv == -1 {
			return -1
		}
		if l == 0 || rv == 0 {
			return 0
		}
		return 1
	}
	if l == 1 || rv == 1 {
		return 1
	}
	if l == 0 || rv == 0 {
		return 0
	}
	return -1
}

type notPred struct{ x pred }

func (p notPred) SQL() string      { return "NOT " + p.x.SQL() }
func (p notPred) Eval(r refRow) tv { return -p.x.Eval(r) }

// randomPred builds a predicate tree of the given depth.
func randomPred(rng *rand.Rand, depth int) pred {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(5) == 0 {
			return isNullPred{col: []string{"a", "b", "c"}[rng.Intn(3)], negate: rng.Intn(2) == 0}
		}
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		p := cmpPred{
			col: []string{"a", "b", "c"}[rng.Intn(3)],
			op:  ops[rng.Intn(len(ops))],
			i:   int64(rng.Intn(21) - 10),
			f:   float64(rng.Intn(200))/10 - 10,
			s:   []string{"ant", "bee", "cat", "dog", "elk"}[rng.Intn(5)],
		}
		return p
	}
	switch rng.Intn(3) {
	case 0:
		return notPred{x: randomPred(rng, depth-1)}
	default:
		op := "AND"
		if rng.Intn(2) == 0 {
			op = "OR"
		}
		return logicalPred{op: op, l: randomPred(rng, depth-1), r: randomPred(rng, depth-1)}
	}
}

func rowKeyOf(r types.Row) string { return r.Key() }

func refKeyOf(r refRow) string {
	row := make(types.Row, 3)
	if r.a != nil {
		row[0] = types.NewInt(*r.a)
	}
	if r.b != nil {
		row[1] = types.NewFloat(*r.b)
	}
	if !r.cNull {
		row[2] = types.NewString(r.c)
	}
	return row.Key()
}

// TestDifferentialFilters runs many random WHERE clauses and compares the
// engine's result multiset against the reference evaluator's.
func TestDifferentialFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	db := Open()
	ref := buildRandomTable(t, db, rng, 500)
	for trial := 0; trial < 300; trial++ {
		p := randomPred(rng, 3)
		src := "SELECT * FROM t WHERE " + p.SQL()
		rows, _, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		var want []string
		for _, r := range ref {
			if p.Eval(r) == 1 {
				want = append(want, refKeyOf(r))
			}
		}
		got := make([]string, 0, len(rows))
		for _, r := range rows {
			got = append(got, rowKeyOf(r))
		}
		sort.Strings(want)
		sort.Strings(got)
		if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
			t.Fatalf("trial %d: %s\nengine returned %d rows, reference %d", trial, src, len(got), len(want))
		}
	}
}

// TestDifferentialAggregates compares COUNT/SUM/MIN/MAX/AVG under random
// predicates.
func TestDifferentialAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := Open()
	ref := buildRandomTable(t, db, rng, 400)
	for trial := 0; trial < 100; trial++ {
		p := randomPred(rng, 2)
		src := "SELECT COUNT(*), COUNT(a), SUM(a), MIN(b), MAX(b) FROM t WHERE " + p.SQL()
		rows, _, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		var countStar, countA, sumA int64
		var minB, maxB *float64
		for _, r := range ref {
			if p.Eval(r) != 1 {
				continue
			}
			countStar++
			if r.a != nil {
				countA++
				sumA += *r.a
			}
			if r.b != nil {
				if minB == nil || *r.b < *minB {
					v := *r.b
					minB = &v
				}
				if maxB == nil || *r.b > *maxB {
					v := *r.b
					maxB = &v
				}
			}
		}
		got := rows[0]
		if got[0].Int() != countStar || got[1].Int() != countA {
			t.Fatalf("trial %d: %s\ncounts: got %v/%v, want %d/%d", trial, src, got[0], got[1], countStar, countA)
		}
		if countA == 0 {
			if !got[2].IsNull() {
				t.Fatalf("trial %d: SUM of empty set must be NULL, got %v", trial, got[2])
			}
		} else if got[2].Int() != sumA {
			t.Fatalf("trial %d: %s\nSUM: got %v, want %d", trial, src, got[2], sumA)
		}
		checkFloat := func(name string, got types.Value, want *float64) {
			t.Helper()
			if want == nil {
				if !got.IsNull() {
					t.Fatalf("trial %d: %s of empty set must be NULL, got %v", trial, name, got)
				}
				return
			}
			if got.IsNull() || got.Float() != *want {
				t.Fatalf("trial %d: %s: got %v, want %g", trial, name, got, *want)
			}
		}
		checkFloat("MIN", got[3], minB)
		checkFloat("MAX", got[4], maxB)
	}
}

// TestDifferentialGroupBy compares GROUP BY c counts under random
// predicates.
func TestDifferentialGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := Open()
	ref := buildRandomTable(t, db, rng, 400)
	for trial := 0; trial < 50; trial++ {
		p := randomPred(rng, 2)
		src := "SELECT c, COUNT(*) FROM t WHERE " + p.SQL() + " GROUP BY c"
		rows, _, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		want := map[string]int64{}
		for _, r := range ref {
			if p.Eval(r) != 1 {
				continue
			}
			key := r.c
			if r.cNull {
				key = "\x00NULL"
			}
			want[key]++
		}
		got := map[string]int64{}
		for _, r := range rows {
			key := "\x00NULL"
			if !r[0].IsNull() {
				key = r[0].Str()
			}
			got[key] = r[1].Int()
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %s\ngroups: got %d, want %d", trial, src, len(got), len(want))
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("trial %d: %s\ngroup %q: got %d, want %d", trial, src, k, got[k], w)
			}
		}
	}
}

// TestDifferentialOrderLimit compares ORDER BY + LIMIT against reference
// sorting under random predicates.
func TestDifferentialOrderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	db := Open()
	ref := buildRandomTable(t, db, rng, 300)
	for trial := 0; trial < 50; trial++ {
		p := randomPred(rng, 2)
		limit := 1 + rng.Intn(20)
		src := fmt.Sprintf("SELECT a FROM t WHERE %s ORDER BY a LIMIT %d", p.SQL(), limit)
		rows, _, _, err := db.Query(src)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, src, err)
		}
		// Reference: filter, collect a (NULLs first), sort, truncate.
		var nullCount int
		var vals []int64
		for _, r := range ref {
			if p.Eval(r) != 1 {
				continue
			}
			if r.a == nil {
				nullCount++
			} else {
				vals = append(vals, *r.a)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var want []string
		for i := 0; i < nullCount && len(want) < limit; i++ {
			want = append(want, "NULL")
		}
		for _, v := range vals {
			if len(want) >= limit {
				break
			}
			want = append(want, fmt.Sprint(v))
		}
		if len(rows) != len(want) {
			t.Fatalf("trial %d: %s\ngot %d rows, want %d", trial, src, len(rows), len(want))
		}
		for i, r := range rows {
			if r[0].String() != want[i] {
				t.Fatalf("trial %d: %s\nrow %d = %v, want %s", trial, src, i, r[0], want[i])
			}
		}
	}
}

// TestDifferentialCorrelatedSubquery cross-checks the engine's correlated
// sub-query evaluation against a reference nested loop.
func TestDifferentialCorrelatedSubquery(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	db := Open()
	if _, err := db.Exec("CREATE TABLE outerT (k BIGINT, lim DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE innerT (k BIGINT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()
	type inner struct {
		k int64
		v float64
	}
	var inners []inner
	for i := 0; i < 600; i++ {
		row := inner{k: int64(rng.Intn(40)), v: float64(rng.Intn(100))}
		inners = append(inners, row)
		if err := cat.Insert("innerT", types.Row{types.NewInt(row.k), types.NewFloat(row.v)}); err != nil {
			t.Fatal(err)
		}
	}
	type outer struct {
		k   int64
		lim float64
	}
	var outers []outer
	for i := 0; i < 80; i++ {
		row := outer{k: int64(rng.Intn(50)), lim: float64(rng.Intn(3000))}
		outers = append(outers, row)
		if err := cat.Insert("outerT", types.Row{types.NewInt(row.k), types.NewFloat(row.lim)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("CREATE INDEX inner_k ON innerT (k)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	rows, _, _, err := db.Query(`SELECT o.k, o.lim FROM outerT o WHERE o.lim <
	    (SELECT SUM(i.v) FROM innerT i WHERE i.k = o.k)`)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: group inner sums, then filter. Missing groups are NULL and
	// never pass the comparison.
	sums := map[int64]float64{}
	present := map[int64]bool{}
	for _, r := range inners {
		sums[r.k] += r.v
		present[r.k] = true
	}
	want := 0
	for _, o := range outers {
		if present[o.k] && o.lim < sums[o.k] {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("correlated subquery: got %d rows, want %d", len(rows), want)
	}
}
