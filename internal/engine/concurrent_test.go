package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mqpi/internal/engine/exec"
	"mqpi/internal/engine/types"
)

// The parallel execute phase relies on the engine's read paths — heap pages,
// B+-tree probes, catalog lookups, statistics — being safe for concurrent
// readers, with DML fully serialized against execution. This test pins that
// audit under the race detector at the engine layer: 16 runners mixing seq
// scans, index probes, and correlated sub-queries are stepped from 16
// goroutines over one shared database, and their results and work meters are
// cross-checked bitwise against the same queries run serially.

// buildConcurrentDB loads items (indexed on k) and a small probe table.
func buildConcurrentDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	mustExec := func(src string) {
		t.Helper()
		if _, err := db.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE items (k BIGINT, v DOUBLE)`)
	mustExec(`CREATE TABLE probes (k BIGINT)`)
	cat := db.Catalog()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40*64; i++ {
		k := int64(rng.Intn(500))
		if err := cat.Insert("items", types.Row{types.NewInt(k), types.NewFloat(float64(k) * 1.5)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := cat.Insert("probes", types.Row{types.NewInt(int64(i * 7))}); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE INDEX items_k ON items (k)`)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

// concurrentQueries is the mixed workload: full scans (aggregation and
// filter), equality index probes, and a correlated sub-query whose inner
// plan probes the index once per outer row.
func concurrentQueries(n int) []string {
	shapes := []string{
		`SELECT SUM(v) FROM items`,
		`SELECT COUNT(*) FROM items WHERE v > %d`,
		`SELECT * FROM items WHERE k = %d`,
		`SELECT COUNT(*) FROM probes p WHERE (SELECT COUNT(*) FROM items i WHERE i.k = p.k) >= 1`,
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(shapes[i%len(shapes)], 30+i*11)
	}
	return out
}

type runOutcome struct {
	rows []types.Row
	work float64
	err  error
}

// runQuery steps the runner in small uneven budgets, mimicking scheduler
// interleaving, and returns the final rows and work meter.
func runQuery(db *DB, src string, seed int64) runOutcome {
	r, err := db.Prepare(src)
	if err != nil {
		return runOutcome{err: err}
	}
	rng := rand.New(rand.NewSource(seed))
	for !r.Done() {
		if _, _, err := r.Step(0.5 + 4*rng.Float64()); err != nil {
			return runOutcome{work: r.WorkDone(), err: err}
		}
	}
	return runOutcome{rows: r.Rows(), work: r.WorkDone(), err: r.Err()}
}

func TestConcurrentRunnersOverSharedEngine(t *testing.T) {
	const n = 16
	db := buildConcurrentDB(t)
	queries := concurrentQueries(n)

	// Serial reference: each query stepped to completion, one at a time.
	want := make([]runOutcome, n)
	for i, src := range queries {
		want[i] = runQuery(db, src, int64(100+i))
	}

	// Concurrent run: one goroutine per runner over the same database. The
	// budget sequence per query is identical to the serial reference, so the
	// outcomes must match bitwise.
	got := make([]runOutcome, n)
	var wg sync.WaitGroup
	for i, src := range queries {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			got[i] = runQuery(db, src, int64(100+i))
		}(i, src)
	}
	wg.Wait()

	for i := range want {
		w, g := want[i], got[i]
		if (w.err == nil) != (g.err == nil) {
			t.Fatalf("query %d error mismatch: serial %v, concurrent %v", i, w.err, g.err)
		}
		if math.Float64bits(w.work) != math.Float64bits(g.work) {
			t.Errorf("query %d work: serial %v, concurrent %v", i, w.work, g.work)
		}
		if len(w.rows) != len(g.rows) {
			t.Fatalf("query %d rows: serial %d, concurrent %d", i, len(w.rows), len(g.rows))
		}
		for j := range w.rows {
			for c := range w.rows[j] {
				if wv, gv := w.rows[j][c].String(), g.rows[j][c].String(); wv != gv {
					t.Errorf("query %d row %d col %d: serial %s, concurrent %s", i, j, c, wv, gv)
				}
			}
		}
	}

	// Runners also read the shared exec.Ctx machinery only through private
	// instances; a fresh context must observe zero accumulated work.
	if exec.NewCtx().Meter.Total() != 0 {
		t.Fatal("fresh Ctx carries work")
	}
}
