package sql

import (
	"fmt"
	"strings"

	"mqpi/internal/engine/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []types.Column
}

// CreateIndex is CREATE INDEX name ON table (column).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// Insert is INSERT INTO table VALUES (...), (...). Expressions must be
// constant (no column references).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Delete is DELETE FROM table [WHERE expr]. The predicate may reference the
// table's columns and contain (correlated) sub-queries.
type Delete struct {
	Table string
	Where Expr // nil deletes everything
}

// SetClause is one "col = expr" assignment of an UPDATE.
type SetClause struct {
	Column string
	Expr   Expr
}

// Update is UPDATE table SET col = expr [, ...] [WHERE expr]. Set
// expressions may reference the row being updated.
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr // nil updates everything
}

// SelectItem is one entry of a select list.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT * (Expr is nil)
}

// TableRef names a table in the FROM clause, optionally aliased.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement. Multiple FROM entries form a cross product
// (restricted by WHERE), the classic comma join.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil if absent
	GroupBy  []Expr
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	Limit    *int64 // nil if absent
}

func (CreateTable) stmt() {}
func (CreateIndex) stmt() {}
func (DropTable) stmt()   {}
func (Insert) stmt()      {}
func (Delete) stmt()      {}
func (Update) stmt()      {}
func (*Select) stmt()     {}

// Expr is any SQL expression node.
type Expr interface {
	expr()
	// String renders the expression back to SQL-ish text.
	String() string
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string
	Name      string
}

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd
	BinOr
)

// String renders the operator.
func (op BinOp) String() string {
	switch op {
	case BinAdd:
		return "+"
	case BinSub:
		return "-"
	case BinMul:
		return "*"
	case BinDiv:
		return "/"
	case BinEq:
		return "="
	case BinNe:
		return "<>"
	case BinLt:
		return "<"
	case BinLe:
		return "<="
	case BinGt:
		return ">"
	case BinGe:
		return ">="
	case BinAnd:
		return "AND"
	case BinOr:
		return "OR"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(op))
	}
}

// Binary is a binary expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is NOT expr or -expr.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

// String renders the aggregate function name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggCall is an aggregate function application: SUM(expr) or COUNT(*).
type AggCall struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
	Star bool
}

// Subquery is a scalar sub-query usable in expressions. If it references
// columns of the outer query it is correlated; the planner re-plans it per
// outer row through parameter bindings.
type Subquery struct {
	Stmt *Select
}

// Exists is EXISTS (SELECT ...): true when the sub-query yields any row.
type Exists struct {
	Stmt   *Select
	Negate bool // NOT EXISTS
}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	X      Expr
	Negate bool
}

func (ColumnRef) expr() {}
func (Literal) expr()   {}
func (Binary) expr()    {}
func (Unary) expr()     {}
func (AggCall) expr()   {}
func (Subquery) expr()  {}
func (Exists) expr()    {}
func (IsNull) expr()    {}

func (c ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

func (l Literal) String() string {
	if l.Val.Kind() == types.KindString {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	return l.Val.String()
}

func (b Binary) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

func (u Unary) String() string {
	if u.Op == "NOT" {
		return "NOT " + u.X.String()
	}
	return "(" + u.Op + u.X.String() + ")"
}

func (a AggCall) String() string {
	if a.Star {
		return a.Func.String() + "(*)"
	}
	return a.Func.String() + "(" + a.Arg.String() + ")"
}

func (s Subquery) String() string { return "(" + renderSelect(s.Stmt) + ")" }

func (e Exists) String() string {
	prefix := "EXISTS "
	if e.Negate {
		prefix = "NOT EXISTS "
	}
	return prefix + "(" + renderSelect(e.Stmt) + ")"
}

func (n IsNull) String() string {
	if n.Negate {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// renderSelect renders a Select back to SQL; used for diagnostics.
func renderSelect(s *Select) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}

// String renders the Select statement.
func (s *Select) String() string { return renderSelect(s) }
