package sql

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE a >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"},
		{TokIdent, "a"},
		{TokSymbol, ","},
		{TokIdent, "b"},
		{TokKeyword, "FROM"},
		{TokIdent, "t"},
		{TokKeyword, "WHERE"},
		{TokIdent, "a"},
		{TokSymbol, ">="},
		{TokNumber, "1.5"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = {%d %q}, want {%d %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexCaseFolding(t *testing.T) {
	toks, err := Lex("select FOO From BaR")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("keywords upper-case: %v", toks[0])
	}
	if toks[1].Text != "foo" || toks[1].Kind != TokIdent {
		t.Errorf("identifiers lower-case: %v", toks[1])
	}
	if toks[3].Text != "bar" {
		t.Errorf("identifier = %q", toks[3].Text)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`'hello' 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello" {
		t.Errorf("string 0: %v", toks[0])
	}
	if toks[1].Text != "it's" {
		t.Errorf("escaped quote: %q", toks[1].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT -- a comment\n 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Kind != TokNumber {
		t.Errorf("comment not skipped: %v", toks)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<> <= >= != < > = + - * / ( ) . ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "<=", ">=", "!=", "<", ">", "=", "+", "-", "*", "/", "(", ")", ".", ";"}
	if len(toks) != len(want)+1 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].Text != w || toks[i].Kind != TokSymbol {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 0.75 .5 100.")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"42", "0.75", ".5", "100."}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("number %d = {%d %q}, want %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexBadByte(t *testing.T) {
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("@ should be rejected")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions: %d, %d", toks[0].Pos, toks[1].Pos)
	}
	_ = kinds(toks)
}
