// Package sql implements the engine's SQL front end: a lexer, an AST, and a
// recursive-descent parser for the dialect the paper's workload needs —
// CREATE TABLE / CREATE INDEX / INSERT / SELECT with WHERE, aggregates,
// GROUP BY, ORDER BY, LIMIT, and scalar (correlated) sub-queries.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical unit. Keywords are upper-cased in Text; identifiers
// are lower-cased (the dialect is case-insensitive, like PostgreSQL).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "AS": true, "INSERT": true,
	"INTO": true, "VALUES": true, "CREATE": true, "TABLE": true,
	"INDEX": true, "ON": true, "NULL": true, "TRUE": true, "FALSE": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"BETWEEN": true, "IS": true, "DISTINCT": true, "DROP": true,
	"DELETE": true, "UPDATE": true, "SET": true, "EXISTS": true,
}

type lexer struct {
	src string
	pos int
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// bytes outside the dialect.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src}
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (Token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: lx.pos}, nil

scan:
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		seenDot := false
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isDigit(ch) {
				lx.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				lx.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
	case c == '\'':
		lx.pos++
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := lx.src[lx.pos]
			if ch == '\'' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(ch)
			lx.pos++
		}
	default:
		// Multi-byte operators first.
		for _, op := range []string{"<>", "<=", ">=", "!="} {
			if strings.HasPrefix(lx.src[lx.pos:], op) {
				lx.pos += 2
				return Token{Kind: TokSymbol, Text: op, Pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', ';', '.':
			lx.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		if c < 128 && unicode.IsPrint(rune(c)) {
			return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
		}
		return Token{}, fmt.Errorf("sql: unexpected byte 0x%02x at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
