package sql

import (
	"fmt"
	"strconv"
	"strings"

	"mqpi/internal/engine/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errorf("trailing input starting at %q", p.peek().Text)
	}
	return st, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*Select, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement, got %T", st)
	}
	return sel, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errorf("expected %s, got %q", want, p.peek().Text)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(TokKeyword, "CREATE"):
		if p.accept(TokKeyword, "TABLE") {
			return p.createTable()
		}
		if p.accept(TokKeyword, "INDEX") {
			return p.createIndex()
		}
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	case p.accept(TokKeyword, "DROP"):
		if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return DropTable{Name: name}, nil
	case p.accept(TokKeyword, "INSERT"):
		return p.insert()
	case p.accept(TokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.accept(TokKeyword, "UPDATE"):
		return p.updateStmt()
	default:
		return nil, p.errorf("expected a statement, got %q", p.peek().Text)
	}
}

func (p *parser) deleteStmt() (Statement, error) {
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := Delete{Table: table}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) updateStmt() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Expr: e})
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.advance()
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []types.Column
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeTok := p.advance()
		if typeTok.Kind != TokIdent && typeTok.Kind != TokKeyword {
			return nil, p.errorf("expected type name after column %q", colName)
		}
		kind, err := types.ParseKind(strings.ToUpper(typeTok.Text))
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		cols = append(cols, types.Column{Name: colName, Type: kind})
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return CreateTable{Name: name, Cols: cols}, nil
}

func (p *parser) createIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return CreateIndex{Name: name, Table: table, Column: col}, nil
}

func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	return Insert{Table: table, Rows: rows}, nil
}

func (p *parser) selectStmt() (*Select, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.accept(TokKeyword, "DISTINCT") {
		sel.Distinct = true
	}
	for {
		if p.accept(TokSymbol, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(TokKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.at(TokIdent, "") {
				item.Alias = p.advance().Text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: table, Alias: table}
		if p.accept(TokKeyword, "AS") {
			alias, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.at(TokIdent, "") {
			ref.Alias = p.advance().Text
		}
		sel.From = append(sel.From, ref)
		if p.accept(TokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = &n
	}
	return sel, nil
}

// Expression grammar, loosest binding first:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((=|<>|!=|<|<=|>|>=) addExpr | IS [NOT] NULL | BETWEEN addExpr AND addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | aggcall | column | ( expr ) | ( select )
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: BinOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: BinAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		// NOT [NOT ...] EXISTS folds into the Exists node.
		if ex, ok := x.(Exists); ok {
			ex.Negate = !ex.Negate
			return ex, nil
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]BinOp{
	"=": BinEq, "<>": BinNe, "!=": BinNe,
	"<": BinLt, "<=": BinLe, ">": BinGt, ">=": BinGe,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.at(TokSymbol, "") {
		if op, ok := cmpOps[p.peek().Text]; ok {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	if p.accept(TokKeyword, "IS") {
		negate := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return IsNull{X: l, Negate: negate}, nil
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Binary{
			Op: BinAnd,
			L:  Binary{Op: BinGe, L: l, R: lo},
			R:  Binary{Op: BinLe, L: l, R: hi},
		}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.accept(TokSymbol, "+"):
			op = BinAdd
		case p.accept(TokSymbol, "-"):
			op = BinSub
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.accept(TokSymbol, "*"):
			op = BinMul
		case p.accept(TokSymbol, "/"):
			op = BinDiv
		default:
			return l, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(Literal); ok && lit.Val.IsNumeric() {
			// Fold negative literals immediately.
			if lit.Val.Kind() == types.KindInt {
				return Literal{Val: types.NewInt(-lit.Val.Int())}, nil
			}
			return Literal{Val: types.NewFloat(-lit.Val.Float())}, nil
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

var aggNames = map[string]AggFunc{
	"SUM": AggSum, "COUNT": AggCount, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return Literal{Val: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return Literal{Val: types.NewInt(n)}, nil
	case TokString:
		p.advance()
		return Literal{Val: types.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return Literal{Val: types.Null}, nil
		case "TRUE":
			p.advance()
			return Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return Literal{Val: types.NewBool(false)}, nil
		case "EXISTS":
			p.advance()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return Exists{Stmt: sub}, nil
		}
		if fn, ok := aggNames[t.Text]; ok {
			p.advance()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			if p.accept(TokSymbol, "*") {
				if fn != AggCount {
					return nil, p.errorf("%s(*) is only valid for COUNT", t.Text)
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return AggCall{Func: AggCount, Star: true}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return AggCall{Func: fn, Arg: arg}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.advance()
		if p.accept(TokSymbol, ".") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColumnRef{Qualifier: t.Text, Name: name}, nil
		}
		return ColumnRef{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.advance()
			if p.at(TokKeyword, "SELECT") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokSymbol, ")"); err != nil {
					return nil, err
				}
				return Subquery{Stmt: sub}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}
