package sql

import "testing"

// FuzzParse feeds arbitrary byte strings through the full front end
// (lexer + parser). The contract under fuzzing: never panic, never loop, and
// return exactly one of a statement or an error. The seed corpus spans every
// statement kind the engine supports plus near-miss malformed inputs, so
// mutations explore the grammar's edges rather than random noise.
//
//	go test ./internal/engine/sql -fuzz FuzzParse -fuzztime 60s
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a < 10 ORDER BY b DESC LIMIT 5;",
		"SELECT COUNT(*), SUM(b) FROM t GROUP BY c HAVING COUNT(*) > 1",
		"SELECT t.a, u.c FROM t JOIN u ON t.a = u.c WHERE t.a >= 3",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.c = t.a)",
		"SELECT a FROM t WHERE b IN (SELECT c FROM u) AND NOT d",
		"SELECT o.k, (SELECT SUM(v) FROM innerT i WHERE i.k = o.k) FROM outerT o",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT -a + 2 * (b - 3) / 4, a % 2 FROM t",
		"SELECT 'it''s', 1.5e-3, TRUE, FALSE, NULL FROM t",
		"CREATE TABLE t (a BIGINT, b DOUBLE, c TEXT, d BOOLEAN)",
		"CREATE INDEX t_a ON t (a)",
		"INSERT INTO t (a, b) VALUES (1, 2.5), (3, 4.5)",
		"UPDATE t SET a = a + 1 WHERE b <> 0",
		"DELETE FROM t WHERE a = 1",
		"ANALYZE t",
		// Near-misses: valid prefixes with broken tails.
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP BY",
		"UPDATE t SET a",
		"DELETE t",
		"CREATE TABLE ",
		"INSERT INTO t VALUES (1",
		"SELECT (((((1)))))",
		"select a from t where a = 1; -- comment",
		"\"quoted ident\" FROM t",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil && st == nil {
			t.Fatalf("Parse(%q) returned neither statement nor error", src)
		}
		if err != nil && st != nil {
			t.Fatalf("Parse(%q) returned both statement (%T) and error (%v)", src, st, err)
		}
	})
}
