package sql

import "testing"

var benchQueries = []string{
	`select * from part_1 p where p.retailprice*0.75 >
	 (select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)`,
	`SELECT quantity, COUNT(*), SUM(extendedprice) FROM lineitem
	 WHERE partkey BETWEEN 10 AND 500 AND extendedprice IS NOT NULL
	 GROUP BY quantity HAVING COUNT(*) > 5 ORDER BY quantity DESC LIMIT 10`,
	`SELECT a, b FROM t WHERE NOT (a = 1 OR b < 2.5) AND c <> 'x''y'`,
}

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQueries[i%len(benchQueries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQueries[i%len(benchQueries)]); err != nil {
			b.Fatal(err)
		}
	}
}
