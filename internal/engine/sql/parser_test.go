package sql

import (
	"strings"
	"testing"

	"mqpi/internal/engine/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE t (a BIGINT, b DOUBLE, c TEXT, d BOOLEAN)")
	ct, ok := st.(CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "t" || len(ct.Cols) != 4 {
		t.Fatalf("%+v", ct)
	}
	wantTypes := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}
	for i, w := range wantTypes {
		if ct.Cols[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE INDEX i ON t (a)")
	ci, ok := st.(CreateIndex)
	if !ok || ci.Name != "i" || ci.Table != "t" || ci.Column != "a" {
		t.Fatalf("%T %+v", st, st)
	}
}

func TestParseDropTable(t *testing.T) {
	st := mustParse(t, "DROP TABLE t;")
	if dt, ok := st.(DropTable); !ok || dt.Name != "t" {
		t.Fatalf("%T %+v", st, st)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1, 2.5, 'x'), (-3, NULL, 'y')")
	ins, ok := st.(Insert)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("%+v", ins)
	}
	// Negative literals fold in the parser.
	lit, ok := ins.Rows[1][0].(Literal)
	if !ok || lit.Val.Int() != -3 {
		t.Errorf("negative literal: %v", ins.Rows[1][0])
	}
}

func TestParseSelectShape(t *testing.T) {
	sel := mustSelect(t, `SELECT a, SUM(b) AS total FROM t WHERE a > 1 GROUP BY a HAVING SUM(b) > 10 ORDER BY a DESC LIMIT 5`)
	if len(sel.Items) != 2 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "total" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Error("order by desc missing")
	}
	if sel.Limit == nil || *sel.Limit != 5 {
		t.Error("limit missing")
	}
}

func TestParseTableAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM part_1 p, lineitem AS l")
	if len(sel.From) != 2 {
		t.Fatal("two FROM entries expected")
	}
	if sel.From[0].Alias != "p" || sel.From[1].Alias != "l" {
		t.Errorf("aliases: %+v", sel.From)
	}
	if !sel.Items[0].Star {
		t.Error("star expected")
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a + 2 * 3 = 7 AND NOT a < 0 OR b = 1")
	// Top level must be OR.
	or, ok := sel.Where.(Binary)
	if !ok || or.Op != BinOr {
		t.Fatalf("top = %v", sel.Where)
	}
	and, ok := or.L.(Binary)
	if !ok || and.Op != BinAnd {
		t.Fatalf("left of OR = %v", or.L)
	}
	eq, ok := and.L.(Binary)
	if !ok || eq.Op != BinEq {
		t.Fatalf("left of AND = %v", and.L)
	}
	// a + 2*3: addition of a and (2*3).
	add, ok := eq.L.(Binary)
	if !ok || add.Op != BinAdd {
		t.Fatalf("lhs of = : %v", eq.L)
	}
	if mul, ok := add.R.(Binary); !ok || mul.Op != BinMul {
		t.Fatalf("rhs of + : %v", add.R)
	}
}

func TestParseParenthesizedSubquery(t *testing.T) {
	q := `select * from part_1 p where p.retailprice*0.75 >
	      (select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)`
	sel := mustSelect(t, q)
	cmp, ok := sel.Where.(Binary)
	if !ok || cmp.Op != BinGt {
		t.Fatalf("where = %v", sel.Where)
	}
	sub, ok := cmp.R.(Subquery)
	if !ok {
		t.Fatalf("rhs = %T", cmp.R)
	}
	if len(sub.Stmt.From) != 1 || sub.Stmt.From[0].Alias != "l" {
		t.Errorf("subquery from: %+v", sub.Stmt.From)
	}
	div, ok := sub.Stmt.Items[0].Expr.(Binary)
	if !ok || div.Op != BinDiv {
		t.Fatalf("subquery item: %v", sub.Stmt.Items[0].Expr)
	}
	if _, ok := div.L.(AggCall); !ok {
		t.Error("SUM expected")
	}
	// Correlated column reference keeps its qualifier.
	where, ok := sub.Stmt.Where.(Binary)
	if !ok || where.Op != BinEq {
		t.Fatal("subquery where")
	}
	if ref, ok := where.R.(ColumnRef); !ok || ref.Qualifier != "p" || ref.Name != "partkey" {
		t.Errorf("correlated ref: %v", where.R)
	}
}

func TestParseBetween(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 5")
	and, ok := sel.Where.(Binary)
	if !ok || and.Op != BinAnd {
		t.Fatalf("BETWEEN should desugar to AND, got %v", sel.Where)
	}
	lo, ok1 := and.L.(Binary)
	hi, ok2 := and.R.(Binary)
	if !ok1 || !ok2 || lo.Op != BinGe || hi.Op != BinLe {
		t.Errorf("desugared: %v / %v", and.L, and.R)
	}
}

func TestParseIsNull(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
	and := sel.Where.(Binary)
	l, ok1 := and.L.(IsNull)
	r, ok2 := and.R.(IsNull)
	if !ok1 || !ok2 || l.Negate || !r.Negate {
		t.Errorf("IS NULL parse: %v / %v", and.L, and.R)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustSelect(t, "SELECT COUNT(*) FROM t")
	agg, ok := sel.Items[0].Expr.(AggCall)
	if !ok || !agg.Star || agg.Func != AggCount {
		t.Fatalf("COUNT(*): %v", sel.Items[0].Expr)
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",                         // missing FROM
		"SELECT a FROM t WHERE",            // dangling WHERE
		"SELECT a FROM t GROUP a",          // GROUP without BY
		"SELECT a FROM t LIMIT x",          // non-numeric limit
		"INSERT t VALUES (1)",              // missing INTO
		"CREATE VIEW v",                    // unsupported
		"SELECT a FROM t; SELECT b FROM t", // trailing input
		"SELECT (SELECT a FROM t FROM u",   // unbalanced
		"CREATE TABLE t (a BLOB)",          // unknown type
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("CREATE TABLE t (a BIGINT)"); err == nil {
		t.Error("ParseSelect on DDL should fail")
	}
}

func TestRenderSelectRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a, b AS c FROM t x WHERE a = 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 3",
		"SELECT * FROM t",
		"SELECT SUM(a) FROM t WHERE b IS NOT NULL",
	}
	for _, src := range srcs {
		sel := mustSelect(t, src)
		rendered := sel.String()
		// The rendered text must itself parse to an identical rendering.
		again := mustSelect(t, rendered)
		if again.String() != rendered {
			t.Errorf("render not stable:\n%s\n%s", rendered, again.String())
		}
	}
}

func TestBinOpString(t *testing.T) {
	for op, want := range map[BinOp]string{
		BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/",
		BinEq: "=", BinNe: "<>", BinLt: "<", BinLe: "<=",
		BinGt: ">", BinGe: ">=", BinAnd: "AND", BinOr: "OR",
	} {
		if op.String() != want {
			t.Errorf("op %d renders %q", op, op.String())
		}
	}
}

func TestExprString(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE NOT (p.x = 'it''s') AND a IS NULL")
	s := sel.Where.String()
	for _, frag := range []string{"NOT", "p.x", "it''s", "IS NULL"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered %q missing %q", s, frag)
		}
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM t WHERE a > 3")
	del, ok := st.(Delete)
	if !ok || del.Table != "t" || del.Where == nil {
		t.Fatalf("%T %+v", st, st)
	}
	st = mustParse(t, "DELETE FROM t")
	if del := st.(Delete); del.Where != nil {
		t.Errorf("bare delete should have nil Where")
	}
	if _, err := Parse("DELETE t"); err == nil {
		t.Error("DELETE without FROM should fail")
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE a < 10")
	up, ok := st.(Update)
	if !ok || up.Table != "t" {
		t.Fatalf("%T %+v", st, st)
	}
	if len(up.Sets) != 2 || up.Sets[0].Column != "a" || up.Sets[1].Column != "b" {
		t.Fatalf("sets: %+v", up.Sets)
	}
	if up.Where == nil {
		t.Error("where missing")
	}
	if _, err := Parse("UPDATE t a = 1"); err == nil {
		t.Error("UPDATE without SET should fail")
	}
	if _, err := Parse("UPDATE t SET a"); err == nil {
		t.Error("SET without = should fail")
	}
}

func TestParseDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT a, b FROM t")
	if !sel.Distinct || len(sel.Items) != 2 {
		t.Fatalf("%+v", sel)
	}
	if !mustSelect(t, "SELECT a FROM t").Distinct == false {
		t.Error("plain select must not be distinct")
	}
	// Render round-trips.
	if got := sel.String(); !strings.Contains(got, "DISTINCT") {
		t.Errorf("render: %s", got)
	}
}

func TestParseExists(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE EXISTS (SELECT b FROM u WHERE u.b = t.a)")
	ex, ok := sel.Where.(Exists)
	if !ok || ex.Negate {
		t.Fatalf("where: %T %+v", sel.Where, sel.Where)
	}
	sel = mustSelect(t, "SELECT a FROM t WHERE NOT EXISTS (SELECT b FROM u)")
	ex, ok = sel.Where.(Exists)
	if !ok || !ex.Negate {
		t.Fatalf("not exists: %T %+v", sel.Where, sel.Where)
	}
	// Double negation cancels.
	sel = mustSelect(t, "SELECT a FROM t WHERE NOT NOT EXISTS (SELECT b FROM u)")
	if ex, ok := sel.Where.(Exists); !ok || ex.Negate {
		t.Fatalf("double negation: %+v", sel.Where)
	}
	if _, err := Parse("SELECT a FROM t WHERE EXISTS x"); err == nil {
		t.Error("EXISTS without ( should fail")
	}
	// Render mentions EXISTS.
	if s := ex.String(); !strings.Contains(s, "EXISTS") {
		t.Errorf("render: %s", s)
	}
}
