// Package engine is the facade over the SQL engine substrate: parse,
// plan, and execute statements against an in-memory catalog. The
// multi-query scheduler (internal/sched) drives long-running SELECTs through
// exec.Runner; everything else (DDL, INSERT, ad-hoc queries) goes through DB.
package engine

import (
	"fmt"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/exec"
	"mqpi/internal/engine/plan"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

// DB is an in-memory SQL database instance.
//
// Prepared runners may be stepped concurrently by distinct goroutines — all
// execution-time reads (heap pages, index probes, statistics) are lock-free
// and read-shared. Exec (DDL/DML) mutates that shared state and must be
// serialized against every in-flight runner step: callers either own all
// runners (single goroutine) or route Exec through the service owner
// goroutine, which never overlaps a tick's parallel execute phase.
type DB struct {
	cat     *catalog.Catalog
	planner *plan.Planner
}

// Open creates an empty database.
func Open() *DB {
	cat := catalog.New()
	return &DB{cat: cat, planner: plan.NewPlanner(cat)}
}

// Catalog exposes the underlying catalog (used by the workload generator to
// bulk-load data without SQL round-trips).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Analyze recomputes optimizer statistics for every table.
func (db *DB) Analyze() error { return db.cat.AnalyzeAll() }

// Exec runs a DDL or DML statement. For INSERT it returns the number of
// rows inserted; for DDL it returns 0.
func (db *DB) Exec(src string) (int, error) {
	st, err := sql.Parse(src)
	if err != nil {
		return 0, err
	}
	switch x := st.(type) {
	case sql.CreateTable:
		schema := types.NewSchema(x.Cols...)
		if _, err := db.cat.CreateTable(x.Name, schema); err != nil {
			return 0, err
		}
		return 0, nil
	case sql.CreateIndex:
		if _, err := db.cat.CreateIndex(x.Name, x.Table, x.Column); err != nil {
			return 0, err
		}
		return 0, nil
	case sql.DropTable:
		return 0, db.cat.DropTable(x.Name)
	case sql.Insert:
		n := 0
		for _, exprRow := range x.Rows {
			row := make(types.Row, len(exprRow))
			for i, e := range exprRow {
				v, err := evalConst(e)
				if err != nil {
					return n, err
				}
				row[i] = v
			}
			if err := db.cat.Insert(x.Table, row); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	case sql.Delete:
		return db.execDelete(x)
	case sql.Update:
		return db.execUpdate(x)
	case *sql.Select:
		return 0, fmt.Errorf("engine: use Query or Plan for SELECT statements")
	default:
		return 0, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// matchingRows scans a table and returns the RowIDs of live rows satisfying
// the (already bound) predicate; a nil predicate matches everything.
func (db *DB) matchingRows(tableName string, pred plan.Expr) ([]storage.RowID, error) {
	t, err := db.cat.Table(tableName)
	if err != nil {
		return nil, err
	}
	ctx := exec.NewCtx()
	var out []storage.RowID
	for p := 0; p < t.Rel.NumPages(); p++ {
		for s, row := range t.Rel.Page(p) {
			rid := storage.RowID{Page: p, Slot: s}
			if !t.Rel.Live(rid) {
				continue
			}
			if pred != nil {
				v, err := exec.EvalExpr(pred, row, ctx)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			out = append(out, rid)
		}
	}
	return out, nil
}

func (db *DB) execDelete(st sql.Delete) (int, error) {
	var pred plan.Expr
	if st.Where != nil {
		var err error
		pred, err = db.planner.BindRowExpr(st.Table, st.Where)
		if err != nil {
			return 0, err
		}
	}
	rids, err := db.matchingRows(st.Table, pred)
	if err != nil {
		return 0, err
	}
	for _, rid := range rids {
		if err := db.cat.Delete(st.Table, rid); err != nil {
			return 0, err
		}
	}
	return len(rids), nil
}

func (db *DB) execUpdate(st sql.Update) (int, error) {
	t, err := db.cat.Table(st.Table)
	if err != nil {
		return 0, err
	}
	schema := t.Rel.Schema()
	var pred plan.Expr
	if st.Where != nil {
		pred, err = db.planner.BindRowExpr(st.Table, st.Where)
		if err != nil {
			return 0, err
		}
	}
	type setSpec struct {
		idx  int
		expr plan.Expr
	}
	specs := make([]setSpec, 0, len(st.Sets))
	for _, set := range st.Sets {
		ci, err := schema.ColIndex("", set.Column)
		if err != nil {
			return 0, err
		}
		bound, err := db.planner.BindRowExpr(st.Table, set.Expr)
		if err != nil {
			return 0, err
		}
		specs = append(specs, setSpec{idx: ci, expr: bound})
	}
	rids, err := db.matchingRows(st.Table, pred)
	if err != nil {
		return 0, err
	}
	// Compute every replacement row before mutating, so SET expressions see
	// a consistent pre-update table even with self-referential sub-queries.
	ctx := exec.NewCtx()
	newRows := make([]types.Row, len(rids))
	for i, rid := range rids {
		old, err := t.Rel.Fetch(rid)
		if err != nil {
			return 0, err
		}
		nr := old.Clone()
		for _, sp := range specs {
			v, err := exec.EvalExpr(sp.expr, old, ctx)
			if err != nil {
				return 0, err
			}
			nr[sp.idx] = v
		}
		newRows[i] = nr
	}
	for i, rid := range rids {
		if err := db.cat.Delete(st.Table, rid); err != nil {
			return 0, err
		}
		if err := db.cat.Insert(st.Table, newRows[i]); err != nil {
			return 0, err
		}
	}
	return len(rids), nil
}

// Plan parses and plans a SELECT without executing it.
func (db *DB) Plan(src string) (plan.Node, error) {
	sel, err := sql.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return db.planner.PlanSelect(sel)
}

// Prepare plans a SELECT and wraps it in a resumable runner.
func (db *DB) Prepare(src string) (*exec.Runner, error) {
	p, err := db.Plan(src)
	if err != nil {
		return nil, err
	}
	return exec.NewRunner(p), nil
}

// Query plans and fully executes a SELECT, returning the result rows, the
// output schema, and the work (in U's) the query consumed.
func (db *DB) Query(src string) ([]types.Row, types.Schema, float64, error) {
	r, err := db.Prepare(src)
	if err != nil {
		return nil, types.Schema{}, 0, err
	}
	if err := r.Run(); err != nil {
		return nil, types.Schema{}, r.WorkDone(), err
	}
	return r.Rows(), r.Schema(), r.WorkDone(), nil
}

// evalConst evaluates a constant expression (INSERT values): literals and
// arithmetic over literals.
func evalConst(e sql.Expr) (types.Value, error) {
	switch x := e.(type) {
	case sql.Literal:
		return x.Val, nil
	case sql.Unary:
		if x.Op != "-" {
			return types.Null, fmt.Errorf("engine: %s is not allowed in VALUES", x.Op)
		}
		v, err := evalConst(x.X)
		if err != nil {
			return types.Null, err
		}
		return types.Arith(types.OpSub, types.NewInt(0), v)
	case sql.Binary:
		l, err := evalConst(x.L)
		if err != nil {
			return types.Null, err
		}
		r, err := evalConst(x.R)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case sql.BinAdd:
			return types.Arith(types.OpAdd, l, r)
		case sql.BinSub:
			return types.Arith(types.OpSub, l, r)
		case sql.BinMul:
			return types.Arith(types.OpMul, l, r)
		case sql.BinDiv:
			return types.Arith(types.OpDiv, l, r)
		default:
			return types.Null, fmt.Errorf("engine: operator %s is not allowed in VALUES", x.Op)
		}
	default:
		return types.Null, fmt.Errorf("engine: VALUES must be constant expressions, got %T", e)
	}
}
