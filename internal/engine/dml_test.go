package engine

import (
	"strings"
	"testing"
)

func TestDeleteBasic(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec("DELETE FROM part WHERE partkey < 5")
	if err != nil || n != 5 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT COUNT(*) FROM part")
	if rows[0][0].Int() != 15 {
		t.Errorf("remaining: %v", rows[0])
	}
	// Deleted rows are invisible to filters and joins.
	if rows := query(t, db, "SELECT * FROM part WHERE partkey = 3"); len(rows) != 0 {
		t.Errorf("deleted row visible: %v", rows)
	}
}

func TestDeleteAll(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec("DELETE FROM part")
	if err != nil || n != 20 {
		t.Fatalf("delete all: %d, %v", n, err)
	}
	if rows := query(t, db, "SELECT * FROM part"); len(rows) != 0 {
		t.Errorf("rows remain: %v", rows)
	}
	// Re-insert works after full delete.
	if _, err := db.Exec("INSERT INTO part VALUES (100, 1.0, 'new')"); err != nil {
		t.Fatal(err)
	}
	if rows := query(t, db, "SELECT * FROM part"); len(rows) != 1 {
		t.Errorf("re-insert: %v", rows)
	}
}

func TestDeleteThroughIndex(t *testing.T) {
	db := testDB(t)
	// Delete some lineitem rows; index probes must skip the tombstones.
	n, err := db.Exec("DELETE FROM lineitem WHERE partkey = 7 AND quantity = 3")
	if err != nil || n == 0 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT * FROM lineitem WHERE partkey = 7")
	if len(rows) != 10-n {
		t.Errorf("index scan after delete: %d rows, want %d", len(rows), 10-n)
	}
	for _, r := range rows {
		if r[1].Int() == 3 {
			t.Errorf("deleted row returned by index scan: %v", r)
		}
	}
}

func TestDeleteWithCorrelatedSubquery(t *testing.T) {
	db := testDB(t)
	// Delete parts with total revenue above a threshold (k > 10, see
	// TestQueryCorrelatedSubquery).
	n, err := db.Exec(`DELETE FROM part WHERE
	    (SELECT SUM(l.extendedprice) FROM lineitem l WHERE l.partkey = part.partkey) > 10000`)
	if err != nil || n != 9 {
		t.Fatalf("correlated delete: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT COUNT(*) FROM part")
	if rows[0][0].Int() != 11 {
		t.Errorf("remaining: %v", rows[0])
	}
}

func TestUpdateBasic(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec("UPDATE part SET retailprice = retailprice * 2 WHERE partkey < 3")
	if err != nil || n != 3 {
		t.Fatalf("update: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT retailprice FROM part WHERE partkey = 2")
	if len(rows) != 1 || rows[0][0].Float() != 204 {
		t.Errorf("updated price: %v", rows)
	}
	// Untouched rows unchanged.
	rows = query(t, db, "SELECT retailprice FROM part WHERE partkey = 5")
	if rows[0][0].Float() != 105 {
		t.Errorf("untouched price: %v", rows)
	}
	// Total count is preserved.
	rows = query(t, db, "SELECT COUNT(*) FROM part")
	if rows[0][0].Int() != 20 {
		t.Errorf("count after update: %v", rows[0])
	}
}

func TestUpdateMultipleColumns(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec("UPDATE part SET retailprice = 1.0, name = 'cheap' WHERE partkey = 4")
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT retailprice, name FROM part WHERE partkey = 4")
	if rows[0][0].Float() != 1.0 || rows[0][1].Str() != "cheap" {
		t.Errorf("row: %v", rows[0])
	}
}

func TestUpdateIndexedColumn(t *testing.T) {
	db := testDB(t)
	// Move all lineitem rows from partkey 3 to partkey 777; the index must
	// serve the new key and not the old one.
	n, err := db.Exec("UPDATE lineitem SET partkey = 777 WHERE partkey = 3")
	if err != nil || n != 10 {
		t.Fatalf("update: %d, %v", n, err)
	}
	if rows := query(t, db, "SELECT * FROM lineitem WHERE partkey = 3"); len(rows) != 0 {
		t.Errorf("old key still matches: %v", rows)
	}
	if rows := query(t, db, "SELECT * FROM lineitem WHERE partkey = 777"); len(rows) != 10 {
		t.Errorf("new key: %d rows", len(rows))
	}
}

func TestUpdateSeesPreUpdateState(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	// Every row becomes the pre-update total: the sub-query must not see
	// partially updated rows.
	n, err := db.Exec("UPDATE t SET a = (SELECT SUM(x.a) FROM t x)")
	if err != nil || n != 3 {
		t.Fatalf("update: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT a FROM t")
	for _, r := range rows {
		if r[0].Int() != 6 {
			t.Errorf("row: %v, want 6", r)
		}
	}
}

func TestDMLErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("DELETE FROM missing"); err == nil {
		t.Error("delete from missing table should fail")
	}
	if _, err := db.Exec("UPDATE part SET nope = 1"); err == nil {
		t.Error("update of unknown column should fail")
	}
	if _, err := db.Exec("UPDATE part SET retailprice = nope"); err == nil {
		t.Error("unknown column in SET expression should fail")
	}
	if _, err := db.Exec("DELETE FROM part WHERE nope = 1"); err == nil {
		t.Error("unknown column in predicate should fail")
	}
}

func TestAnalyzeAfterDelete(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("DELETE FROM part WHERE partkey >= 10"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	st := db.Catalog().TableStats("part")
	if st.RowCount != 10 {
		t.Errorf("stats rowcount = %d, want 10", st.RowCount)
	}
	if st.Cols["partkey"].Max.Int() != 9 {
		t.Errorf("stats max = %v", st.Cols["partkey"].Max)
	}
}

func TestSnapshotCompactsTombstones(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("DELETE FROM lineitem WHERE partkey < 10"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.Save(&nopWriter{&buf}); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	a := query(t, db, "SELECT COUNT(*) FROM lineitem")
	b := query(t, db2, "SELECT COUNT(*) FROM lineitem")
	if a[0][0].Int() != b[0][0].Int() || a[0][0].Int() != 100 {
		t.Errorf("counts: %v vs %v", a[0][0], b[0][0])
	}
	// Reloaded relation has no dead slots.
	t2, err := db2.Catalog().Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Rel.NumSlots() != t2.Rel.NumRows() {
		t.Errorf("tombstones survived reload: %d slots, %d rows", t2.Rel.NumSlots(), t2.Rel.NumRows())
	}
}

// nopWriter adapts a strings.Builder to io.Writer.
type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT DISTINCT quantity FROM lineitem ORDER BY quantity")
	if len(rows) != 5 {
		t.Fatalf("distinct quantities: %d", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != int64(i+1) {
			t.Errorf("row %d: %v", i, r)
		}
	}
	// DISTINCT over multiple columns.
	// quantity = 1+i%5 is fully determined by partkey = i%20 here, so the
	// only pairs with partkey < 2 are (0,1) and (1,2).
	rows = query(t, db, "SELECT DISTINCT partkey, quantity FROM lineitem WHERE partkey < 2")
	if len(rows) != 2 {
		t.Errorf("multi-column distinct: %d rows", len(rows))
	}
	// DISTINCT with no duplicates is a no-op.
	rows = query(t, db, "SELECT DISTINCT partkey FROM part")
	if len(rows) != 20 {
		t.Errorf("distinct partkeys: %d", len(rows))
	}
}

func TestExistsSubquery(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("INSERT INTO part VALUES (500, 9.0, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	// Parts with at least one lineitem.
	rows := query(t, db, `SELECT COUNT(*) FROM part p WHERE EXISTS
	    (SELECT * FROM lineitem l WHERE l.partkey = p.partkey)`)
	if rows[0][0].Int() != 20 {
		t.Errorf("EXISTS count: %v", rows[0])
	}
	// NOT EXISTS finds the orphan.
	rows = query(t, db, `SELECT p.name FROM part p WHERE NOT EXISTS
	    (SELECT * FROM lineitem l WHERE l.partkey = p.partkey)`)
	if len(rows) != 1 || rows[0][0].Str() != "orphan" {
		t.Errorf("NOT EXISTS: %v", rows)
	}
	// Uncorrelated EXISTS.
	rows = query(t, db, "SELECT COUNT(*) FROM part WHERE EXISTS (SELECT * FROM lineitem)")
	if rows[0][0].Int() != 21 {
		t.Errorf("uncorrelated EXISTS: %v", rows[0])
	}
	rows = query(t, db, "SELECT COUNT(*) FROM part WHERE EXISTS (SELECT * FROM lineitem WHERE partkey = 12345)")
	if rows[0][0].Int() != 0 {
		t.Errorf("empty EXISTS: %v", rows[0])
	}
}

func TestExistsInDelete(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("INSERT INTO part VALUES (500, 9.0, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Exec(`DELETE FROM part WHERE NOT EXISTS
	    (SELECT * FROM lineitem l WHERE l.partkey = part.partkey)`)
	if err != nil || n != 1 {
		t.Fatalf("delete orphans: %d, %v", n, err)
	}
}
