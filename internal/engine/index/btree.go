// Package index implements a B+-tree over int64 keys, the access method used
// by the paper's correlated sub-query plans (an index scan on
// lineitem.partkey). Duplicate keys are supported; leaves are chained for
// range scans. Node accesses are counted so the executor can charge work
// units per index page touched.
package index

import (
	"fmt"
	"sort"

	"mqpi/internal/engine/storage"
)

// Fanout is the maximum number of keys per node. Small enough to give the
// tree realistic height on scaled-down data, large enough to stay shallow.
const Fanout = 64

type node struct {
	leaf bool
	keys []int64
	// Internal nodes: children[i] covers keys < keys[i]; len(children) == len(keys)+1.
	children []*node
	// Leaves: vals[i] are the row ids for keys[i].
	vals [][]storage.RowID
	next *node // leaf chain
}

// BTree is a B+-tree index on a single int64 column.
//
// Concurrency: SearchEq and SearchRange are pure traversals — no node is
// mutated, no iterator state lives on the tree — so any number of goroutines
// may probe concurrently (the parallel execute phase does). Insert restructures
// nodes in place and must be exclusive: no probe or other Insert may run
// concurrently with it. DML is serialized against query execution by the
// layers above.
type BTree struct {
	name   string
	table  string
	column string
	root   *node
	height int
	nkeys  int // number of (key,rowid) entries
}

// New creates an empty B+-tree for table.column.
func New(name, table, column string) *BTree {
	return &BTree{name: name, table: table, column: column, root: &node{leaf: true}, height: 1}
}

// Name returns the index name.
func (t *BTree) Name() string { return t.name }

// Table returns the indexed table's name.
func (t *BTree) Table() string { return t.table }

// Column returns the indexed column's name.
func (t *BTree) Column() string { return t.column }

// Height returns the current tree height (leaf-only tree has height 1).
func (t *BTree) Height() int { return t.height }

// Len returns the number of entries in the index.
func (t *BTree) Len() int { return t.nkeys }

// Insert adds an entry. Duplicate keys accumulate row ids.
func (t *BTree) Insert(key int64, rid storage.RowID) {
	midKey, right := t.insert(t.root, key, rid)
	if right != nil {
		newRoot := &node{
			keys:     []int64{midKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
		t.height++
	}
	t.nkeys++
}

// insert descends into n; on split it returns the separator key and the new
// right sibling, otherwise (0, nil).
func (t *BTree) insert(n *node, key int64, rid storage.RowID) (int64, *node) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = append(n.vals[i], rid)
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []storage.RowID{rid}
		if len(n.keys) <= Fanout {
			return 0, nil
		}
		return t.splitLeaf(n)
	}
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	midKey, right := t.insert(n.children[i], key, rid)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= Fanout {
		return 0, nil
	}
	return t.splitInternal(n)
}

func (t *BTree) splitLeaf(n *node) (int64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([][]storage.RowID(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInternal(n *node) (int64, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sep, right
}

// Probe describes the pages touched by a lookup so the executor can charge
// work: NodesTouched counts index pages read.
type Probe struct {
	RowIDs       []storage.RowID
	NodesTouched int
}

// SearchEq returns the row ids for an exact key match.
func (t *BTree) SearchEq(key int64) Probe {
	n := t.root
	touched := 1
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.children[i]
		touched++
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	var rids []storage.RowID
	if i < len(n.keys) && n.keys[i] == key {
		rids = n.vals[i]
	}
	return Probe{RowIDs: rids, NodesTouched: touched}
}

// SearchRange returns row ids for keys in [lo, hi] (inclusive), in key order.
func (t *BTree) SearchRange(lo, hi int64) Probe {
	if lo > hi {
		return Probe{NodesTouched: 1}
	}
	n := t.root
	touched := 1
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return lo < n.keys[i] })
		n = n.children[i]
		touched++
	}
	var rids []storage.RowID
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		for ; i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return Probe{RowIDs: rids, NodesTouched: touched}
			}
			rids = append(rids, n.vals[i]...)
		}
		n = n.next
		if n != nil {
			touched++
		}
	}
	return Probe{RowIDs: rids, NodesTouched: touched}
}

// Validate checks B+-tree invariants: sorted keys, consistent fanout, uniform
// leaf depth, and an intact leaf chain. It is used by property-based tests.
func (t *BTree) Validate() error {
	depth := -1
	var walk func(n *node, level int, lo, hi *int64) error
	walk = func(n *node, level int, lo, hi *int64) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("index: keys out of order at level %d: %d >= %d", level, n.keys[i-1], n.keys[i])
			}
		}
		for _, k := range n.keys {
			if lo != nil && k < *lo {
				return fmt.Errorf("index: key %d below lower bound %d", k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("index: key %d at/above upper bound %d", k, *hi)
			}
		}
		if n != t.root && len(n.keys) > Fanout {
			return fmt.Errorf("index: node overflow: %d keys", len(n.keys))
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("index: leaves at different depths: %d vs %d", depth, level)
			}
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("index: leaf has %d keys but %d value lists", len(n.keys), len(n.vals))
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("index: internal node has %d keys but %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			var clo, chi *int64
			if i > 0 {
				clo = &n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, level+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	// Leaf chain must visit every key in ascending order.
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	var prev *int64
	count := 0
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			k := k
			if prev != nil && *prev >= k {
				return fmt.Errorf("index: leaf chain out of order: %d >= %d", *prev, k)
			}
			prev = &k
			count += len(n.vals[i])
		}
	}
	if count != t.nkeys {
		return fmt.Errorf("index: leaf chain has %d entries, expected %d", count, t.nkeys)
	}
	return nil
}
