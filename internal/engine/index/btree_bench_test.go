package index

import (
	"math/rand"
	"testing"
)

func buildTree(n int, dup int) *BTree {
	bt := New("b", "t", "c")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		bt.Insert(int64(rng.Intn(n/dup+1)), rid(i))
	}
	return bt
}

func BenchmarkInsertSequential(b *testing.B) {
	bt := New("b", "t", "c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.Insert(int64(i), rid(i))
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	bt := New("b", "t", "c")
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(rng.Int63n(1<<30), rid(i))
	}
}

func BenchmarkSearchEq(b *testing.B) {
	bt := buildTree(100000, 30) // ~30 matches per key, the paper's shape
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.SearchEq(rng.Int63n(100000/30 + 1))
	}
}

func BenchmarkSearchRange(b *testing.B) {
	bt := buildTree(100000, 1)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(90000)
		bt.SearchRange(lo, lo+1000)
	}
}
