package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mqpi/internal/engine/storage"
)

func rid(i int) storage.RowID { return storage.RowID{Page: i, Slot: 0} }

func TestEmptyTree(t *testing.T) {
	bt := New("idx", "t", "a")
	if bt.Len() != 0 || bt.Height() != 1 {
		t.Errorf("empty tree: len=%d height=%d", bt.Len(), bt.Height())
	}
	p := bt.SearchEq(5)
	if len(p.RowIDs) != 0 || p.NodesTouched != 1 {
		t.Errorf("SearchEq on empty = %+v", p)
	}
	if err := bt.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertSearchSequential(t *testing.T) {
	bt := New("idx", "t", "a")
	const n = 1000
	for i := 0; i < n; i++ {
		bt.Insert(int64(i), rid(i))
	}
	if bt.Len() != n {
		t.Errorf("Len = %d, want %d", bt.Len(), n)
	}
	if bt.Height() < 2 {
		t.Errorf("tree of %d keys should have split (height %d)", n, bt.Height())
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 0; i < n; i++ {
		p := bt.SearchEq(int64(i))
		if len(p.RowIDs) != 1 || p.RowIDs[0] != rid(i) {
			t.Fatalf("SearchEq(%d) = %v", i, p.RowIDs)
		}
		if p.NodesTouched != bt.Height() {
			t.Fatalf("probe touched %d nodes, height is %d", p.NodesTouched, bt.Height())
		}
	}
	if got := bt.SearchEq(int64(n)); len(got.RowIDs) != 0 {
		t.Errorf("missing key returned %v", got.RowIDs)
	}
}

func TestDuplicateKeys(t *testing.T) {
	bt := New("idx", "t", "a")
	for i := 0; i < 50; i++ {
		bt.Insert(7, rid(i))
	}
	p := bt.SearchEq(7)
	if len(p.RowIDs) != 50 {
		t.Fatalf("duplicates: got %d row ids", len(p.RowIDs))
	}
	if bt.Len() != 50 {
		t.Errorf("Len = %d", bt.Len())
	}
	if err := bt.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSearchRange(t *testing.T) {
	bt := New("idx", "t", "a")
	for i := 0; i < 200; i += 2 { // even keys only
		bt.Insert(int64(i), rid(i))
	}
	p := bt.SearchRange(10, 20)
	want := []int{10, 12, 14, 16, 18, 20}
	if len(p.RowIDs) != len(want) {
		t.Fatalf("range [10,20] returned %d ids", len(p.RowIDs))
	}
	for i, w := range want {
		if p.RowIDs[i] != rid(w) {
			t.Errorf("range result %d = %v, want %v", i, p.RowIDs[i], rid(w))
		}
	}
	if got := bt.SearchRange(21, 21); len(got.RowIDs) != 0 {
		t.Error("odd key should be absent")
	}
	if got := bt.SearchRange(30, 10); len(got.RowIDs) != 0 {
		t.Error("inverted range should be empty")
	}
	// Full range covers everything in order.
	all := bt.SearchRange(-1, 1000)
	if len(all.RowIDs) != 100 {
		t.Errorf("full range returned %d ids", len(all.RowIDs))
	}
}

// TestRandomAgainstReference inserts random keys and cross-checks every
// lookup against a map-based reference implementation.
func TestRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bt := New("idx", "t", "a")
	ref := make(map[int64][]storage.RowID)
	const n = 5000
	for i := 0; i < n; i++ {
		k := int64(rng.Intn(500)) // plenty of duplicates
		bt.Insert(k, rid(i))
		ref[k] = append(ref[k], rid(i))
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for k, want := range ref {
		got := bt.SearchEq(k).RowIDs
		if len(got) != len(want) {
			t.Fatalf("key %d: got %d ids, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %d id %d: got %v, want %v (insertion order must be preserved)", k, i, got[i], want[i])
			}
		}
	}
	// Range query matches reference.
	lo, hi := int64(100), int64(200)
	var want []storage.RowID
	var keys []int64
	for k := range ref {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		want = append(want, ref[k]...)
	}
	got := bt.SearchRange(lo, hi).RowIDs
	if len(got) != len(want) {
		t.Fatalf("range: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range result %d mismatch", i)
		}
	}
}

// Property: any insertion sequence leaves a valid tree whose length matches.
func TestQuickValidity(t *testing.T) {
	f := func(keys []int64) bool {
		bt := New("idx", "t", "a")
		for i, k := range keys {
			bt.Insert(k%1000, rid(i))
		}
		return bt.Validate() == nil && bt.Len() == len(keys)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMetadata(t *testing.T) {
	bt := New("idx_name", "tbl", "col")
	if bt.Name() != "idx_name" || bt.Table() != "tbl" || bt.Column() != "col" {
		t.Errorf("metadata: %q %q %q", bt.Name(), bt.Table(), bt.Column())
	}
}

func TestProbeCostGrowsWithHeight(t *testing.T) {
	bt := New("idx", "t", "a")
	prev := bt.Height()
	for i := 0; i < 100000; i++ {
		bt.Insert(int64(i), rid(i))
	}
	if bt.Height() <= prev {
		t.Fatalf("height did not grow: %d", bt.Height())
	}
	if bt.Height() < 3 {
		t.Errorf("100k keys at fanout %d should be at least 3 levels, got %d", Fanout, bt.Height())
	}
	p := bt.SearchEq(99999)
	if p.NodesTouched != bt.Height() {
		t.Errorf("probe cost %d != height %d", p.NodesTouched, bt.Height())
	}
}
