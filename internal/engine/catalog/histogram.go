package catalog

import "sort"

// HistogramBuckets is the number of equi-depth buckets ANALYZE builds per
// numeric column (PostgreSQL's default-statistics-target spirit, scaled to
// this engine).
const HistogramBuckets = 16

// Histogram is an equi-depth histogram over a numeric column: Bounds has
// HistogramBuckets+1 entries; each bucket [Bounds[i], Bounds[i+1]] holds the
// same number of values. It drives range-selectivity estimation.
type Histogram struct {
	Bounds []float64
}

// BuildHistogram constructs an equi-depth histogram from a sample of the
// column's non-NULL numeric values. It returns nil when there are too few
// values to be useful.
func BuildHistogram(values []float64) *Histogram {
	if len(values) < HistogramBuckets {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	bounds := make([]float64, HistogramBuckets+1)
	for i := 0; i <= HistogramBuckets; i++ {
		pos := i * (len(sorted) - 1) / HistogramBuckets
		bounds[i] = sorted[pos]
	}
	return &Histogram{Bounds: bounds}
}

// FracBelow estimates the fraction of column values strictly below v by
// locating v's bucket and interpolating linearly within it.
func (h *Histogram) FracBelow(v float64) float64 {
	n := len(h.Bounds) - 1
	if n < 1 {
		return 0.5
	}
	if v <= h.Bounds[0] {
		return 0
	}
	if v >= h.Bounds[n] {
		return 1
	}
	// Find the bucket containing v.
	i := sort.SearchFloat64s(h.Bounds, v)
	// h.Bounds[i-1] <= v <(=) h.Bounds[i] after the search (i >= 1 because
	// v > Bounds[0]).
	lo, hi := h.Bounds[i-1], h.Bounds[i]
	frac := float64(i-1) / float64(n)
	if hi > lo {
		frac += (v - lo) / (hi - lo) / float64(n)
	}
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}
