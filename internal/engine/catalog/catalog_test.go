package catalog

import (
	"strings"
	"testing"

	"mqpi/internal/engine/types"
)

func schemaAB() types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Type: types.KindInt},
		types.Column{Name: "b", Type: types.KindFloat},
	)
}

func TestCreateAndLookup(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("T1", schemaAB()); err != nil {
		t.Fatal(err)
	}
	// Lookup is case-insensitive.
	if _, err := c.Table("t1"); err != nil {
		t.Errorf("lowercase lookup failed: %v", err)
	}
	if _, err := c.Table("T1"); err != nil {
		t.Errorf("original-case lookup failed: %v", err)
	}
	if _, err := c.CreateTable("t1", schemaAB()); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Error("missing table lookup should fail")
	}
}

func TestDropTable(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", schemaAB()); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); err == nil {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTableNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(n, schemaAB()); err != nil {
			t.Fatal(err)
		}
	}
	got := c.TableNames()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("TableNames = %v", got)
	}
}

func TestInsertMaintainsIndex(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", schemaAB()); err != nil {
		t.Fatal(err)
	}
	// Rows before index creation are indexed at build time...
	if err := c.Insert("t", types.Row{types.NewInt(1), types.NewFloat(0.5)}); err != nil {
		t.Fatal(err)
	}
	bt, err := c.CreateIndex("idx", "t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 1 {
		t.Errorf("index built with %d entries", bt.Len())
	}
	// ...and later inserts are maintained incrementally.
	if err := c.Insert("t", types.Row{types.NewInt(2), types.NewFloat(1.5)}); err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 2 {
		t.Errorf("index has %d entries after insert", bt.Len())
	}
	if got := bt.SearchEq(2); len(got.RowIDs) != 1 {
		t.Errorf("SearchEq(2) = %v", got.RowIDs)
	}
	// NULL keys are skipped.
	if err := c.Insert("t", types.Row{types.Null, types.NewFloat(2.0)}); err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 2 {
		t.Errorf("NULL key should not be indexed, len=%d", bt.Len())
	}
}

func TestCreateIndexErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", schemaAB()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("i", "missing", "a"); err == nil {
		t.Error("index on missing table should fail")
	}
	if _, err := c.CreateIndex("i", "t", "b"); err == nil {
		t.Error("index on non-integer column should fail")
	}
	if _, err := c.CreateIndex("i", "t", "nope"); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := c.CreateIndex("i", "t", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("i2", "t", "a"); err == nil {
		t.Error("duplicate index on same column should fail")
	}
}

func TestIndexOn(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", schemaAB()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.IndexOn("t", "a"); ok {
		t.Error("no index yet")
	}
	if _, err := c.CreateIndex("i", "t", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.IndexOn("t", "A"); !ok {
		t.Error("IndexOn should be case-insensitive")
	}
	if _, ok := c.IndexOn("missing", "a"); ok {
		t.Error("IndexOn missing table should be false")
	}
}

func TestAnalyze(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", schemaAB()); err != nil {
		t.Fatal(err)
	}
	vals := []struct {
		a int64
		b float64
	}{{5, 1.0}, {3, 2.0}, {5, 3.0}, {9, 4.0}}
	for _, v := range vals {
		if err := c.Insert("t", types.Row{types.NewInt(v.a), types.NewFloat(v.b)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Insert("t", types.Row{types.Null, types.NewFloat(5)}); err != nil {
		t.Fatal(err)
	}
	if st := c.TableStats("t"); st != nil {
		t.Error("stats should be nil before Analyze")
	}
	if err := c.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	st := c.TableStats("t")
	if st == nil {
		t.Fatal("no stats after Analyze")
	}
	if st.RowCount != 5 {
		t.Errorf("RowCount = %d", st.RowCount)
	}
	cs := st.Cols["a"]
	if cs.Distinct != 3 {
		t.Errorf("distinct(a) = %d, want 3", cs.Distinct)
	}
	if cs.Min.Int() != 3 || cs.Max.Int() != 9 {
		t.Errorf("min/max(a) = %v/%v", cs.Min, cs.Max)
	}
	if cs.NullFrac != 0.2 {
		t.Errorf("nullfrac(a) = %g, want 0.2", cs.NullFrac)
	}
	if err := c.Analyze("missing"); err == nil {
		t.Error("Analyze on missing table should fail")
	}
}

func TestAnalyzeAll(t *testing.T) {
	c := New()
	for _, n := range []string{"x", "y"} {
		if _, err := c.CreateTable(n, schemaAB()); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if c.TableStats("x") == nil || c.TableStats("y") == nil {
		t.Error("AnalyzeAll should populate all stats")
	}
}

func TestInsertIntoMissingTable(t *testing.T) {
	c := New()
	err := c.Insert("nope", types.Row{types.NewInt(1)})
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("unexpected error: %v", err)
	}
}
