// Package catalog tracks the engine's tables, indexes, and optimizer
// statistics. The paper's experiments run "the PostgreSQL statistics
// collection program on all the relations" before measuring; Analyze is the
// equivalent here, and the planner's cardinality estimates come from it.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mqpi/internal/engine/index"
	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

// ColStats holds per-column optimizer statistics.
type ColStats struct {
	Min      types.Value
	Max      types.Value
	Distinct int
	NullFrac float64
	// Hist is an equi-depth histogram over numeric columns (nil for
	// non-numeric columns or tiny tables); it sharpens range selectivity on
	// skewed data where min/max interpolation fails.
	Hist *Histogram
}

// Stats holds per-table optimizer statistics.
type Stats struct {
	RowCount int
	Pages    int
	Cols     map[string]ColStats
}

// Table bundles a relation with its indexes and statistics.
type Table struct {
	Rel     *storage.Relation
	Indexes map[string]*index.BTree // keyed by lower-cased column name
	Stats   *Stats
}

// Observer is notified of catalog mutations before they are applied — the
// hook the write-ahead log uses. A non-nil error aborts the mutation.
type Observer interface {
	OnCreateTable(name string, schema types.Schema) error
	OnDropTable(name string) error
	OnCreateIndex(idxName, table, column string) error
	OnInsert(table string, row types.Row) error
	OnDelete(table string, rid storage.RowID) error
}

// Catalog is the namespace of tables. The namespace itself (lookups,
// creation, drops, stats installation) is guarded by an RWMutex and safe for
// concurrent use. The *contents* of a Table — its Relation pages and B+-tree
// nodes — are not covered by that lock: they are read-shared during query
// execution (plan nodes capture *Table pointers at plan time and scan them
// lock-free from the parallel execute phase), so Insert/Delete and index
// builds must never overlap query execution. The service layer enforces this
// by running DML on the scheduler's owner goroutine, strictly between ticks.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	observer Observer
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// SetObserver installs (or removes, with nil) the mutation observer.
func (c *Catalog) SetObserver(o Observer) {
	c.mu.Lock()
	c.observer = o
	c.mu.Unlock()
}

func (c *Catalog) notify(f func(Observer) error) error {
	c.mu.RLock()
	o := c.observer
	c.mu.RUnlock()
	if o == nil {
		return nil
	}
	return f(o)
}

// CreateTable registers a new empty table.
func (c *Catalog) CreateTable(name string, schema types.Schema) (*Table, error) {
	key := strings.ToLower(name)
	c.mu.RLock()
	_, exists := c.tables[key]
	c.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if err := c.notify(func(o Observer) error { return o.OnCreateTable(key, schema) }); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		Rel:     storage.NewRelation(key, schema),
		Indexes: make(map[string]*index.BTree),
	}
	c.tables[key] = t
	return t, nil
}

// DropTable removes a table; it is an error if the table does not exist.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	c.mu.RLock()
	_, exists := c.tables[key]
	c.mu.RUnlock()
	if !exists {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	if err := c.notify(func(o Observer) error { return o.OnDropTable(key) }); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// TableNames returns the sorted list of table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex builds a B+-tree over an existing integer column, indexing all
// current rows. New inserts through Insert keep it maintained.
func (c *Catalog) CreateIndex(idxName, tableName, column string) (*index.BTree, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	colKey := strings.ToLower(column)
	ci, err := t.Rel.Schema().ColIndex("", column)
	if err != nil {
		return nil, err
	}
	if t.Rel.Schema().Cols[ci].Type != types.KindInt {
		return nil, fmt.Errorf("catalog: index column %s.%s must be BIGINT", tableName, column)
	}
	c.mu.RLock()
	_, exists := t.Indexes[colKey]
	c.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", tableName, column)
	}
	if err := c.notify(func(o Observer) error {
		return o.OnCreateIndex(idxName, strings.ToLower(tableName), colKey)
	}); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := t.Indexes[colKey]; ok {
		return nil, fmt.Errorf("catalog: index on %s.%s already exists", tableName, column)
	}
	bt := index.New(idxName, strings.ToLower(tableName), colKey)
	for p := 0; p < t.Rel.NumPages(); p++ {
		for s, row := range t.Rel.Page(p) {
			rid := storage.RowID{Page: p, Slot: s}
			if row[ci].IsNull() || !t.Rel.Live(rid) {
				continue
			}
			bt.Insert(row[ci].Int(), rid)
		}
	}
	t.Indexes[colKey] = bt
	return bt, nil
}

// Insert appends a row to a table and maintains its indexes.
func (c *Catalog) Insert(tableName string, row types.Row) error {
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	if len(row) != t.Rel.Schema().Len() {
		return fmt.Errorf("catalog: %s expects %d columns, got %d", tableName, t.Rel.Schema().Len(), len(row))
	}
	if err := c.notify(func(o Observer) error {
		return o.OnInsert(strings.ToLower(tableName), row)
	}); err != nil {
		return err
	}
	rid, err := t.Rel.Insert(row)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for col, bt := range t.Indexes {
		ci, cerr := t.Rel.Schema().ColIndex("", col)
		if cerr != nil {
			return cerr
		}
		if !row[ci].IsNull() {
			bt.Insert(row[ci].Int(), rid)
		}
	}
	return nil
}

// Delete tombstones a row. Index entries for it remain in the B+-trees;
// probes verify liveness against the heap.
func (c *Catalog) Delete(tableName string, rid storage.RowID) error {
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	if !t.Rel.Live(rid) {
		return fmt.Errorf("catalog: %s has no live tuple %v", tableName, rid)
	}
	if err := c.notify(func(o Observer) error {
		return o.OnDelete(strings.ToLower(tableName), rid)
	}); err != nil {
		return err
	}
	return t.Rel.Delete(rid)
}

// IndexOn returns the index on tableName.column, if any.
func (c *Catalog) IndexOn(tableName, column string) (*index.BTree, bool) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	bt, ok := t.Indexes[strings.ToLower(column)]
	return bt, ok
}

// Analyze recomputes optimizer statistics for one table with a full pass:
// row/page counts and, per column, min/max/distinct/null fraction.
func (c *Catalog) Analyze(tableName string) error {
	t, err := c.Table(tableName)
	if err != nil {
		return err
	}
	schema := t.Rel.Schema()
	st := &Stats{
		RowCount: t.Rel.NumRows(),
		Pages:    t.Rel.NumPages(),
		Cols:     make(map[string]ColStats, schema.Len()),
	}
	distinct := make([]map[string]struct{}, schema.Len())
	mins := make([]types.Value, schema.Len())
	maxs := make([]types.Value, schema.Len())
	nulls := make([]int, schema.Len())
	numeric := make([][]float64, schema.Len())
	for i := range distinct {
		distinct[i] = make(map[string]struct{})
	}
	for p := 0; p < t.Rel.NumPages(); p++ {
		for s, row := range t.Rel.Page(p) {
			if !t.Rel.Live(storage.RowID{Page: p, Slot: s}) {
				continue
			}
			for i, v := range row {
				if v.IsNull() {
					nulls[i]++
					continue
				}
				distinct[i][v.String()] = struct{}{}
				if v.IsNumeric() {
					numeric[i] = append(numeric[i], v.Float())
				}
				if mins[i].IsNull() {
					mins[i], maxs[i] = v, v
					continue
				}
				if cmp, cerr := types.Compare(v, mins[i]); cerr == nil && cmp < 0 {
					mins[i] = v
				}
				if cmp, cerr := types.Compare(v, maxs[i]); cerr == nil && cmp > 0 {
					maxs[i] = v
				}
			}
		}
	}
	for i, col := range schema.Cols {
		cs := ColStats{Min: mins[i], Max: maxs[i], Distinct: len(distinct[i])}
		if st.RowCount > 0 {
			cs.NullFrac = float64(nulls[i]) / float64(st.RowCount)
		}
		cs.Hist = BuildHistogram(numeric[i])
		st.Cols[strings.ToLower(col.Name)] = cs
	}
	c.mu.Lock()
	t.Stats = st
	c.mu.Unlock()
	return nil
}

// AnalyzeAll runs Analyze on every table.
func (c *Catalog) AnalyzeAll() error {
	for _, name := range c.TableNames() {
		if err := c.Analyze(name); err != nil {
			return err
		}
	}
	return nil
}

// TableStats returns the statistics for a table, or nil if Analyze has not
// been run. The planner falls back to live row counts in that case.
func (c *Catalog) TableStats(tableName string) *Stats {
	t, err := c.Table(tableName)
	if err != nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return t.Stats
}
