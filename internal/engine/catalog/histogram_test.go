package catalog

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildHistogramTooFewValues(t *testing.T) {
	if h := BuildHistogram([]float64{1, 2, 3}); h != nil {
		t.Error("tiny inputs should not build a histogram")
	}
	if h := BuildHistogram(nil); h != nil {
		t.Error("nil input should not build a histogram")
	}
}

func TestHistogramUniform(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h := BuildHistogram(vals)
	if h == nil {
		t.Fatal("no histogram")
	}
	for _, v := range []float64{100, 250, 500, 900} {
		got := h.FracBelow(v)
		want := v / 999
		if math.Abs(got-want) > 0.02 {
			t.Errorf("FracBelow(%g) = %g, want ~%g", v, got, want)
		}
	}
	if h.FracBelow(-1) != 0 || h.FracBelow(1e9) != 1 {
		t.Error("out-of-range fractions must clamp")
	}
}

// TestHistogramSkewedBeatsMinMax: on heavily skewed data (most mass near 0,
// one huge outlier), the histogram estimate is accurate while min/max
// interpolation is off by orders of magnitude — the reason ANALYZE builds
// histograms at all.
func TestHistogramSkewedBeatsMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.Float64() // mass in [0,1]
	}
	vals[0] = 1e6 // outlier stretches min/max
	h := BuildHistogram(vals)
	if h == nil {
		t.Fatal("no histogram")
	}
	// True fraction below 0.5 is ~0.5; min/max interpolation says ~0.5/1e6.
	got := h.FracBelow(0.5)
	if math.Abs(got-0.5) > 0.1 {
		t.Errorf("FracBelow(0.5) = %g, want ~0.5", got)
	}
	minMax := 0.5 / 1e6
	if math.Abs(minMax-0.5) < math.Abs(got-0.5) {
		t.Error("histogram should beat min/max interpolation here")
	}
}

// Property: FracBelow is monotone nondecreasing and bounded in [0,1], and
// roughly matches the empirical CDF.
func TestHistogramMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := HistogramBuckets + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * float64(1+rng.Intn(100))
		}
		h := BuildHistogram(vals)
		if h == nil {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := -1.0
		for i := 0; i <= 50; i++ {
			v := sorted[0] + (sorted[len(sorted)-1]-sorted[0])*float64(i)/50
			frac := h.FracBelow(v)
			if frac < prev-1e-12 || frac < 0 || frac > 1 {
				return false
			}
			prev = frac
			// Empirical CDF within a bucket and a half.
			emp := float64(sort.SearchFloat64s(sorted, v)) / float64(len(sorted))
			if math.Abs(frac-emp) > 1.5/HistogramBuckets+0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
