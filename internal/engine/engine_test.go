package engine

import (
	"strings"
	"testing"

	"mqpi/internal/engine/types"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	stmts := []string{
		"CREATE TABLE part (partkey BIGINT, retailprice DOUBLE, name TEXT)",
		"CREATE TABLE lineitem (partkey BIGINT, quantity BIGINT, extendedprice DOUBLE)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(
			"INSERT INTO part VALUES (" +
				itoa(i) + ", " + itoa(100+i) + ".0, 'part-" + itoa(i) + "')"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(
			"INSERT INTO lineitem VALUES (" + itoa(i%20) + ", " + itoa(1+i%5) + ", " + itoa(10*i) + ".0)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("CREATE INDEX li_pk ON lineitem (partkey)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}

func query(t *testing.T, db *DB, src string) []types.Row {
	t.Helper()
	rows, _, _, err := db.Query(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return rows
}

func TestExecDDLAndInsertCounts(t *testing.T) {
	db := Open()
	if n, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil || n != 0 {
		t.Fatalf("create: %d, %v", n, err)
	}
	n, err := db.Exec("INSERT INTO t VALUES (1), (2), (3)")
	if err != nil || n != 3 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	rows := query(t, db, "SELECT * FROM t")
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if n, err := db.Exec("DROP TABLE t"); err != nil || n != 0 {
		t.Fatalf("drop: %d, %v", n, err)
	}
}

func TestExecConstExpressions(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT, b DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (2 + 3 * 4, 10.0 / 4)"); err != nil {
		t.Fatal(err)
	}
	rows := query(t, db, "SELECT * FROM t")
	if rows[0][0].Int() != 14 || rows[0][1].Float() != 2.5 {
		t.Errorf("const eval: %v", rows[0])
	}
	if _, err := db.Exec("INSERT INTO t VALUES (a, 1)"); err == nil {
		t.Error("column ref in VALUES should fail")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1 = 1, 1)"); err == nil {
		t.Error("comparison in VALUES should fail")
	}
}

func TestExecRejectsSelect(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT * FROM part"); err == nil {
		t.Error("Exec(SELECT) should direct callers to Query")
	}
}

func TestQueryFilterProject(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT name, retailprice FROM part WHERE partkey = 3")
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][0].Str() != "part-3" || rows[0][1].Float() != 103 {
		t.Errorf("row: %v", rows[0])
	}
}

func TestQueryAggregates(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT COUNT(*), SUM(quantity), MIN(extendedprice), MAX(extendedprice), AVG(quantity) FROM lineitem")
	r := rows[0]
	if r[0].Int() != 200 {
		t.Errorf("count = %v", r[0])
	}
	// quantity cycles 1..5 over 200 rows: sum = 40×(1+2+3+4+5) = 600.
	if r[1].Int() != 600 {
		t.Errorf("sum = %v", r[1])
	}
	if r[2].Float() != 0 || r[3].Float() != 1990 {
		t.Errorf("min/max = %v/%v", r[2], r[3])
	}
	if r[4].Float() != 3 {
		t.Errorf("avg = %v", r[4])
	}
}

func TestQueryGroupBy(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT quantity, COUNT(*) FROM lineitem GROUP BY quantity ORDER BY quantity")
	if len(rows) != 5 {
		t.Fatalf("groups: %d", len(rows))
	}
	for i, r := range rows {
		if r[0].Int() != int64(i+1) || r[1].Int() != 40 {
			t.Errorf("group %d: %v", i, r)
		}
	}
}

func TestQueryHaving(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT quantity FROM lineitem GROUP BY quantity HAVING SUM(extendedprice) > 39000 ORDER BY quantity")
	// Per-quantity sums: quantity q group holds rows i ≡ q-1 (mod 5);
	// sum = 10×(q-1) + 10×(q-1+5) + ... = 40 terms; only the largest pass.
	if len(rows) == 0 || len(rows) == 5 {
		t.Fatalf("having filtered %d groups", len(rows))
	}
}

func TestQueryOrderLimit(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, "SELECT partkey FROM part ORDER BY partkey DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].Int() != 19 || rows[2][0].Int() != 17 {
		t.Errorf("rows: %v", rows)
	}
}

func TestQueryJoin(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, `SELECT p.name, l.extendedprice FROM part p, lineitem l
	                      WHERE p.partkey = l.partkey AND l.extendedprice > 1900`)
	// extendedprice > 1900: rows 191..199 -> 9 rows.
	if len(rows) != 9 {
		t.Fatalf("join rows: %d", len(rows))
	}
	for _, r := range rows {
		if !strings.HasPrefix(r[0].Str(), "part-") {
			t.Errorf("row: %v", r)
		}
	}
}

func TestQueryCorrelatedSubquery(t *testing.T) {
	db := testDB(t)
	// Parts whose total lineitem revenue exceeds a threshold.
	rows := query(t, db, `SELECT p.partkey FROM part p
	       WHERE (SELECT SUM(l.extendedprice) FROM lineitem l WHERE l.partkey = p.partkey) > 10000
	       ORDER BY p.partkey`)
	// Part k matches lineitem rows k, k+20, ..., k+180: sum = 10*(10k + (0+20+...+180)) = 100k + 9000.
	// > 10000 ⇔ k > 10.
	if len(rows) != 9 {
		t.Fatalf("rows: %d (%v)", len(rows), rows)
	}
	if rows[0][0].Int() != 11 {
		t.Errorf("first = %v", rows[0])
	}
}

func TestQueryScalarSubqueryNoMatchIsNull(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("INSERT INTO part VALUES (999, 1.0, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	rows := query(t, db, `SELECT (SELECT SUM(l.quantity) FROM lineitem l WHERE l.partkey = p.partkey) x
	                      FROM part p WHERE p.partkey = 999`)
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Errorf("empty scalar subquery should be NULL: %v", rows)
	}
	// NULL comparisons are not truthy: the orphan is filtered out.
	rows = query(t, db, `SELECT p.partkey FROM part p WHERE p.partkey = 999 AND
	       (SELECT SUM(l.quantity) FROM lineitem l WHERE l.partkey = p.partkey) > 0`)
	if len(rows) != 0 {
		t.Errorf("NULL predicate must not pass rows: %v", rows)
	}
}

func TestQueryScalarSubqueryMultiRowFails(t *testing.T) {
	db := testDB(t)
	_, _, _, err := db.Query("SELECT (SELECT partkey FROM part) FROM lineitem")
	if err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Errorf("expected multi-row error, got %v", err)
	}
}

func TestQueryNullSemantics(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1), (NULL), (3)"); err != nil {
		t.Fatal(err)
	}
	if rows := query(t, db, "SELECT a FROM t WHERE a > 0"); len(rows) != 2 {
		t.Errorf("NULL must not satisfy a > 0: %v", rows)
	}
	if rows := query(t, db, "SELECT a FROM t WHERE a IS NULL"); len(rows) != 1 {
		t.Errorf("IS NULL: %v", rows)
	}
	if rows := query(t, db, "SELECT a FROM t WHERE a IS NOT NULL"); len(rows) != 2 {
		t.Errorf("IS NOT NULL: %v", rows)
	}
	// Aggregates ignore NULLs; COUNT(*) does not.
	rows := query(t, db, "SELECT COUNT(*), COUNT(a), SUM(a) FROM t")
	if rows[0][0].Int() != 3 || rows[0][1].Int() != 2 || rows[0][2].Int() != 4 {
		t.Errorf("aggregate NULL handling: %v", rows[0])
	}
	// NULL sorts first.
	rows = query(t, db, "SELECT a FROM t ORDER BY a")
	if !rows[0][0].IsNull() {
		t.Errorf("NULL should sort first: %v", rows)
	}
	// Three-valued OR: NULL OR TRUE = TRUE.
	rows = query(t, db, "SELECT a FROM t WHERE a > 100 OR 1 = 1")
	if len(rows) != 3 {
		t.Errorf("OR true: %v", rows)
	}
}

func TestQueryWorkAccounting(t *testing.T) {
	db := testDB(t)
	_, _, workScan, err := db.Query("SELECT * FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// 200 rows = 4 pages.
	if workScan != 4 {
		t.Errorf("seqscan work = %g U, want 4", workScan)
	}
	_, _, workIdx, err := db.Query("SELECT * FROM lineitem WHERE partkey = 3")
	if err != nil {
		t.Fatal(err)
	}
	if workIdx >= workScan+2 {
		t.Errorf("index scan work %g should beat seqscan %g", workIdx, workScan)
	}
	if workIdx < 1 {
		t.Errorf("index scan must charge at least the probe: %g", workIdx)
	}
}

func TestPlanExposesCost(t *testing.T) {
	db := testDB(t)
	p, err := db.Plan("SELECT * FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost() != 4 {
		t.Errorf("EstCost = %g, want 4 pages", p.EstCost())
	}
}

// TestQueryNestedCorrelationTwoLevels exercises an OuterCol reference that
// crosses two sub-query levels.
func TestQueryNestedCorrelationTwoLevels(t *testing.T) {
	db := testDB(t)
	// For each part, compare its price against a sub-query that itself
	// contains a sub-query referencing the OUTERMOST part row.
	q := `SELECT p.partkey FROM part p WHERE p.retailprice >
	        (SELECT AVG(l.extendedprice) FROM lineitem l WHERE l.partkey =
	            (SELECT MIN(l2.partkey) FROM lineitem l2 WHERE l2.partkey = p.partkey))
	      ORDER BY p.partkey`
	rows, _, _, err := db.Query(q)
	if err != nil {
		t.Fatalf("nested correlation: %v", err)
	}
	// Reference: part k matches rows k, k+20, ..., k+180 with prices
	// 10k, 10(k+20), ...: avg = 10k+900. retailprice = 100+k.
	// 100+k > 10k+900 never holds; adjust: use AVG(l.quantity) instead.
	_ = rows
	q2 := `SELECT p.partkey FROM part p WHERE p.retailprice >
	        (SELECT 30 * AVG(l.quantity) FROM lineitem l WHERE l.partkey =
	            (SELECT MIN(l2.partkey) FROM lineitem l2 WHERE l2.partkey = p.partkey))
	      ORDER BY p.partkey`
	rows2, _, _, err := db.Query(q2)
	if err != nil {
		t.Fatalf("nested correlation 2: %v", err)
	}
	// avg quantity for part k: quantities cycle 1+i%5 over matching rows
	// i = k, k+20, ..., k+180 -> quantity = 1+(k+20j)%5 = 1+(k)%5 when 20j%5=0:
	// all matches share quantity 1+k%5. Threshold: 100+k > 30*(1+k%5).
	var want []int64
	for k := int64(0); k < 20; k++ {
		if float64(100+k) > 30*float64(1+k%5) {
			want = append(want, k)
		}
	}
	if len(rows2) != len(want) {
		t.Fatalf("rows: got %d, want %d", len(rows2), len(want))
	}
	for i, w := range want {
		if rows2[i][0].Int() != w {
			t.Errorf("row %d = %v, want %d", i, rows2[i][0], w)
		}
	}
}

func TestQueryOrderByStringsAndNulls(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE s (name TEXT, v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO s VALUES ('beta', 2), (NULL, 0), ('alpha', 1), ('gamma', 3)"); err != nil {
		t.Fatal(err)
	}
	rows := query(t, db, "SELECT name FROM s ORDER BY name")
	if !rows[0][0].IsNull() || rows[1][0].Str() != "alpha" || rows[3][0].Str() != "gamma" {
		t.Errorf("order: %v", rows)
	}
	rows = query(t, db, "SELECT name FROM s ORDER BY name DESC")
	if rows[0][0].Str() != "gamma" || !rows[3][0].IsNull() {
		t.Errorf("desc order: %v", rows)
	}
}

func TestQueryLimitEdgeCases(t *testing.T) {
	db := testDB(t)
	if rows := query(t, db, "SELECT * FROM part LIMIT 0"); len(rows) != 0 {
		t.Errorf("LIMIT 0: %d rows", len(rows))
	}
	if rows := query(t, db, "SELECT * FROM part LIMIT 1000"); len(rows) != 20 {
		t.Errorf("oversized LIMIT: %d rows", len(rows))
	}
}

func TestQueryEmptyTable(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE e (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if rows := query(t, db, "SELECT * FROM e"); len(rows) != 0 {
		t.Errorf("empty scan: %v", rows)
	}
	rows := query(t, db, "SELECT COUNT(*), SUM(a) FROM e")
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty aggregates: %v", rows[0])
	}
	if rows := query(t, db, "SELECT a, COUNT(*) FROM e GROUP BY a"); len(rows) != 0 {
		t.Errorf("empty group by: %v", rows)
	}
	// Cross join with an empty side is empty.
	if _, err := db.Exec("CREATE TABLE f (b BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO f VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if rows := query(t, db, "SELECT * FROM e, f"); len(rows) != 0 {
		t.Errorf("empty×1 join: %v", rows)
	}
	if rows := query(t, db, "SELECT * FROM f, e"); len(rows) != 0 {
		t.Errorf("1×empty join: %v", rows)
	}
}

func TestQuerySubqueryInSelectList(t *testing.T) {
	db := testDB(t)
	rows := query(t, db, `SELECT p.partkey,
	        (SELECT COUNT(*) FROM lineitem l WHERE l.partkey = p.partkey) cnt
	      FROM part p WHERE p.partkey < 3 ORDER BY p.partkey`)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r[1].Int() != 10 { // 200 rows / 20 parts
			t.Errorf("count for part %v = %v", r[0], r[1])
		}
	}
}

func TestQueryThreeWayJoin(t *testing.T) {
	db := Open()
	for _, stmt := range []string{
		"CREATE TABLE x (a BIGINT)", "CREATE TABLE y (b BIGINT)", "CREATE TABLE z (c BIGINT)",
		"INSERT INTO x VALUES (1), (2)",
		"INSERT INTO y VALUES (10), (20)",
		"INSERT INTO z VALUES (100)",
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	rows := query(t, db, "SELECT a, b, c FROM x, y, z ORDER BY a, b")
	if len(rows) != 4 {
		t.Fatalf("cross product: %d rows", len(rows))
	}
	if rows[0][0].Int() != 1 || rows[0][1].Int() != 10 || rows[0][2].Int() != 100 {
		t.Errorf("first row: %v", rows[0])
	}
}
