package plan

import (
	"fmt"
	"strings"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/index"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

// Node is a physical plan operator. EstCost is the optimizer's total cost of
// running the node to completion, in U's; EstRows is the estimated output
// cardinality.
type Node interface {
	Schema() types.Schema
	EstCost() float64
	EstRows() float64
	Children() []Node
	// Label is the one-line EXPLAIN description of this node.
	Label() string
}

// SeqScan reads a table page by page.
type SeqScan struct {
	Table  *catalog.Table
	Name   string
	Alias  string
	schema types.Schema
	cost   float64
	rows   float64
}

// IndexScan probes a B+-tree with an equality key and fetches matching heap
// rows. KeyExpr may reference outer scopes (the correlated case) or be
// constant.
type IndexScan struct {
	Table   *catalog.Table
	Index   *index.BTree
	Name    string
	Alias   string
	KeyExpr Expr
	schema  types.Schema
	cost    float64
	rows    float64
}

// Filter passes rows satisfying Pred.
type Filter struct {
	Child Node
	Pred  Expr
	cost  float64
	rows  float64
}

// Project computes output expressions per input row.
type Project struct {
	Child  Node
	Exprs  []Expr
	schema types.Schema
	cost   float64
}

// NLJoin is a nested-loop cross product; join predicates are applied by a
// Filter above it.
type NLJoin struct {
	L, R   Node
	schema types.Schema
	cost   float64
	rows   float64
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func sql.AggFunc
	Arg  Expr // nil for COUNT(*)
	Star bool
}

// Agg groups its input and computes aggregates. Output schema is the
// group-by columns followed by the aggregate results. With no GROUP BY it
// produces exactly one row (scalar aggregation).
type Agg struct {
	Child   Node
	GroupBy []Expr
	Aggs    []AggSpec
	schema  types.Schema
	cost    float64
	rows    float64
}

// Distinct removes duplicate rows (SELECT DISTINCT), streaming through a
// hash set.
type Distinct struct {
	Child Node
	cost  float64
	rows  float64
}

func (n *Distinct) Schema() types.Schema { return n.Child.Schema() }
func (n *Distinct) EstCost() float64     { return n.cost }
func (n *Distinct) EstRows() float64     { return n.rows }
func (n *Distinct) Children() []Node     { return []Node{n.Child} }
func (n *Distinct) Label() string {
	return fmt.Sprintf("Distinct (cost=%.1f rows=%.0f)", n.cost, n.rows)
}

// SortKey is one ORDER BY key bound to the child's schema.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort materializes and orders its input.
type Sort struct {
	Child Node
	Keys  []SortKey
	cost  float64
}

// Limit truncates its input to N rows.
type Limit struct {
	Child Node
	N     int64
}

func (n *SeqScan) Schema() types.Schema { return n.schema }
func (n *SeqScan) EstCost() float64     { return n.cost }
func (n *SeqScan) EstRows() float64     { return n.rows }
func (n *SeqScan) Children() []Node     { return nil }
func (n *SeqScan) Label() string {
	return fmt.Sprintf("SeqScan %s (cost=%.1f rows=%.0f)", n.Name, n.cost, n.rows)
}

func (n *IndexScan) Schema() types.Schema { return n.schema }
func (n *IndexScan) EstCost() float64     { return n.cost }
func (n *IndexScan) EstRows() float64     { return n.rows }
func (n *IndexScan) Children() []Node     { return nil }
func (n *IndexScan) Label() string {
	return fmt.Sprintf("IndexScan %s via %s key=%s (cost=%.1f rows=%.0f)",
		n.Name, n.Index.Name(), n.KeyExpr.String(), n.cost, n.rows)
}

func (n *Filter) Schema() types.Schema { return n.Child.Schema() }
func (n *Filter) EstCost() float64     { return n.cost }
func (n *Filter) EstRows() float64     { return n.rows }
func (n *Filter) Children() []Node     { return []Node{n.Child} }
func (n *Filter) Label() string {
	return fmt.Sprintf("Filter %s (cost=%.1f rows=%.0f)", n.Pred.String(), n.cost, n.rows)
}

func (n *Project) Schema() types.Schema { return n.schema }
func (n *Project) EstCost() float64     { return n.cost }
func (n *Project) EstRows() float64     { return n.Child.EstRows() }
func (n *Project) Children() []Node     { return []Node{n.Child} }
func (n *Project) Label() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("Project %s (cost=%.1f)", strings.Join(parts, ", "), n.cost)
}

func (n *NLJoin) Schema() types.Schema { return n.schema }
func (n *NLJoin) EstCost() float64     { return n.cost }
func (n *NLJoin) EstRows() float64     { return n.rows }
func (n *NLJoin) Children() []Node     { return []Node{n.L, n.R} }
func (n *NLJoin) Label() string {
	return fmt.Sprintf("NestedLoopJoin (cost=%.1f rows=%.0f)", n.cost, n.rows)
}

func (n *Agg) Schema() types.Schema { return n.schema }
func (n *Agg) EstCost() float64     { return n.cost }
func (n *Agg) EstRows() float64     { return n.rows }
func (n *Agg) Children() []Node     { return []Node{n.Child} }
func (n *Agg) Label() string {
	parts := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		parts = append(parts, g.String())
	}
	for _, a := range n.Aggs {
		if a.Star {
			parts = append(parts, a.Func.String()+"(*)")
		} else {
			parts = append(parts, a.Func.String()+"("+a.Arg.String()+")")
		}
	}
	return fmt.Sprintf("Aggregate %s (cost=%.1f rows=%.0f)", strings.Join(parts, ", "), n.cost, n.rows)
}

func (n *Sort) Schema() types.Schema { return n.Child.Schema() }
func (n *Sort) EstCost() float64     { return n.cost }
func (n *Sort) EstRows() float64     { return n.Child.EstRows() }
func (n *Sort) Children() []Node     { return []Node{n.Child} }
func (n *Sort) Label() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort %s (cost=%.1f)", strings.Join(parts, ", "), n.cost)
}

func (n *Limit) Schema() types.Schema { return n.Child.Schema() }
func (n *Limit) EstCost() float64     { return n.Child.EstCost() }
func (n *Limit) EstRows() float64 {
	r := n.Child.EstRows()
	if float64(n.N) < r {
		return float64(n.N)
	}
	return r
}
func (n *Limit) Children() []Node { return []Node{n.Child} }
func (n *Limit) Label() string    { return fmt.Sprintf("Limit %d", n.N) }

// subplansOf extracts the scalar sub-query plans embedded in a node's
// expressions, so EXPLAIN can render them.
func subplansOf(n Node) []Node {
	var exprs []Expr
	switch x := n.(type) {
	case *Filter:
		exprs = []Expr{x.Pred}
	case *Project:
		exprs = x.Exprs
	case *IndexScan:
		exprs = []Expr{x.KeyExpr}
	case *Agg:
		exprs = append(exprs, x.GroupBy...)
		for _, a := range x.Aggs {
			if a.Arg != nil {
				exprs = append(exprs, a.Arg)
			}
		}
	case *Sort:
		for _, k := range x.Keys {
			exprs = append(exprs, k.Expr)
		}
	}
	var out []Node
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case SubplanExpr:
			out = append(out, x.Plan)
		case ExistsExpr:
			out = append(out, x.Plan)
		case BinaryExpr:
			walk(x.L)
			walk(x.R)
		case NotExpr:
			walk(x.X)
		case NegExpr:
			walk(x.X)
		case IsNullExpr:
			walk(x.X)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}

// Explain renders the plan tree as indented text, including the plans of
// scalar sub-queries embedded in expressions.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, sub := range subplansOf(n) {
			b.WriteString(strings.Repeat("  ", depth+1))
			b.WriteString("SubPlan:\n")
			walk(sub, depth+2)
		}
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
