// Package plan turns parsed SELECT statements into physical plans with cost
// estimates. Costs are expressed in the paper's work unit U (one page of
// bytes processed); the optimizer's total-cost estimate for a query is the
// progress indicator's starting point.
package plan

import (
	"fmt"

	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

// Expr is a bound expression: column references are resolved to positional
// indexes, and scalar sub-queries are embedded as plans.
type Expr interface {
	exprNode()
	String() string
}

// ColIdx references column i of the current input row.
type ColIdx struct {
	Idx  int
	Name string // for display
}

// OuterCol references column Idx of an enclosing query's current row.
// Level 1 is the nearest enclosing query.
type OuterCol struct {
	Level int
	Idx   int
	Name  string
}

// Const is a literal value.
type Const struct {
	Val types.Value
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   sql.BinOp
	L, R Expr
}

// NotExpr is logical negation.
type NotExpr struct {
	X Expr
}

// NegExpr is arithmetic negation.
type NegExpr struct {
	X Expr
}

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

// SubplanExpr evaluates a scalar sub-query plan. Correlated references
// inside the plan appear as OuterCol expressions. PerEvalCost is the
// optimizer's estimated cost of one evaluation, in U's.
type SubplanExpr struct {
	Plan        Node
	PerEvalCost float64
}

// ExistsExpr evaluates EXISTS (sub-query): true when the plan yields any
// row. Evaluation stops at the first row, so PerEvalCost is an upper bound.
type ExistsExpr struct {
	Plan        Node
	Negate      bool
	PerEvalCost float64
}

func (ColIdx) exprNode()      {}
func (OuterCol) exprNode()    {}
func (Const) exprNode()       {}
func (BinaryExpr) exprNode()  {}
func (NotExpr) exprNode()     {}
func (NegExpr) exprNode()     {}
func (IsNullExpr) exprNode()  {}
func (SubplanExpr) exprNode() {}
func (ExistsExpr) exprNode()  {}

func (e ColIdx) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("$%d", e.Idx)
}

func (e OuterCol) String() string {
	if e.Name != "" {
		return fmt.Sprintf("outer(%d).%s", e.Level, e.Name)
	}
	return fmt.Sprintf("outer(%d).$%d", e.Level, e.Idx)
}

func (e Const) String() string { return e.Val.String() }

func (e BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

func (e NotExpr) String() string { return "NOT " + e.X.String() }

func (e NegExpr) String() string { return "(-" + e.X.String() + ")" }

func (e IsNullExpr) String() string {
	if e.Negate {
		return e.X.String() + " IS NOT NULL"
	}
	return e.X.String() + " IS NULL"
}

func (e SubplanExpr) String() string {
	return fmt.Sprintf("subplan(cost=%.1f)", e.PerEvalCost)
}

func (e ExistsExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("not-exists(cost<=%.1f)", e.PerEvalCost)
	}
	return fmt.Sprintf("exists(cost<=%.1f)", e.PerEvalCost)
}

// exprCost returns the optimizer's estimated per-evaluation cost of an
// expression in U's. Plain scalar expressions are free (their CPU cost is
// folded into the page work of the operator evaluating them, as in the
// paper's page-based accounting); sub-plans carry their plan cost.
func exprCost(e Expr) float64 {
	switch x := e.(type) {
	case SubplanExpr:
		return x.PerEvalCost
	case ExistsExpr:
		return x.PerEvalCost
	case BinaryExpr:
		return exprCost(x.L) + exprCost(x.R)
	case NotExpr:
		return exprCost(x.X)
	case NegExpr:
		return exprCost(x.X)
	case IsNullExpr:
		return exprCost(x.X)
	default:
		return 0
	}
}

// refsCurrentLevel reports whether the expression references any column of
// the current (innermost) scope — i.e. whether it must be evaluated per row
// of the current input rather than once per outer binding.
func refsCurrentLevel(e Expr) bool {
	switch x := e.(type) {
	case ColIdx:
		return true
	case OuterCol, Const:
		return false
	case BinaryExpr:
		return refsCurrentLevel(x.L) || refsCurrentLevel(x.R)
	case NotExpr:
		return refsCurrentLevel(x.X)
	case NegExpr:
		return refsCurrentLevel(x.X)
	case IsNullExpr:
		return refsCurrentLevel(x.X)
	case SubplanExpr, ExistsExpr:
		// A sub-plan correlated on the current level would have been bound
		// with OuterCol(level 1) references inside the plan; treat it as
		// row-dependent conservatively.
		return true
	default:
		return true
	}
}
