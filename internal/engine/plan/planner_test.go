package plan

import (
	"strings"
	"testing"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/types"
)

// testCatalog builds part(partkey, retailprice) with 100 rows and
// lineitem(partkey, quantity, extendedprice) with 1000 rows, an index on
// lineitem.partkey, and fresh statistics.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("part", types.NewSchema(
		types.Column{Name: "partkey", Type: types.KindInt},
		types.Column{Name: "retailprice", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("lineitem", types.NewSchema(
		types.Column{Name: "partkey", Type: types.KindInt},
		types.Column{Name: "quantity", Type: types.KindInt},
		types.Column{Name: "extendedprice", Type: types.KindFloat},
	)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Insert("part", types.Row{types.NewInt(int64(i)), types.NewFloat(float64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if err := c.Insert("lineitem", types.Row{
			types.NewInt(int64(i % 100)),
			types.NewInt(int64(1 + i%10)),
			types.NewFloat(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateIndex("li_pk", "lineitem", "partkey"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func planOf(t *testing.T, c *catalog.Catalog, src string) Node {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewPlanner(c).PlanSelect(sel)
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return n
}

func planErr(t *testing.T, c *catalog.Catalog, src string) error {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewPlanner(c).PlanSelect(sel)
	if err == nil {
		t.Fatalf("plan %q should fail", src)
	}
	return err
}

func TestPlanSimpleScan(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM part")
	scan, ok := n.(*SeqScan)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if scan.EstRows() != 100 {
		t.Errorf("EstRows = %g", scan.EstRows())
	}
	if scan.EstCost() < 1 || scan.EstCost() > 3 {
		t.Errorf("EstCost = %g (100 rows should be 2 pages)", scan.EstCost())
	}
}

func TestPlanFilterSelectivity(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM lineitem WHERE quantity = 3")
	f, ok := n.(*Filter)
	if !ok {
		t.Fatalf("got %T", n)
	}
	// quantity has 10 distinct values -> 1000/10 = 100.
	if f.EstRows() < 90 || f.EstRows() > 110 {
		t.Errorf("eq selectivity rows = %g, want ~100", f.EstRows())
	}
}

func TestPlanRangeSelectivity(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM lineitem WHERE extendedprice < 250")
	// extendedprice spans [0, 999]; < 250 is ~25%.
	if n.EstRows() < 200 || n.EstRows() > 300 {
		t.Errorf("range rows = %g, want ~250", n.EstRows())
	}
	n2 := planOf(t, c, "SELECT * FROM lineitem WHERE 250 > extendedprice")
	if got, want := n2.EstRows(), n.EstRows(); got != want {
		t.Errorf("mirrored comparison: %g vs %g", got, want)
	}
}

func TestPlanIndexScanForLiteralKey(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM lineitem WHERE partkey = 7")
	scan, ok := n.(*IndexScan)
	if !ok {
		t.Fatalf("expected IndexScan, got %T: %s", n, Explain(n))
	}
	if scan.EstRows() != 10 { // 1000 rows / 100 distinct keys
		t.Errorf("index EstRows = %g, want 10", scan.EstRows())
	}
	// An index scan for 10 rows must be far cheaper than the 16-page seqscan.
	if scan.EstCost() >= 16 {
		t.Errorf("index cost %g not cheaper than seqscan", scan.EstCost())
	}
}

func TestPlanIndexNotUsedForNonEq(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM lineitem WHERE partkey > 7")
	if _, ok := n.(*Filter); !ok {
		t.Fatalf("range predicate should not use the eq-index path, got %T", n)
	}
}

func TestPlanIndexNotUsedForColumnColumn(t *testing.T) {
	c := testCatalog(t)
	// partkey = quantity references the same table on both sides: no index.
	n := planOf(t, c, "SELECT * FROM lineitem WHERE partkey = quantity")
	f, ok := n.(*Filter)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if _, ok := f.Child.(*SeqScan); !ok {
		t.Fatalf("child should be SeqScan, got %T", f.Child)
	}
}

func TestPlanCorrelatedSubqueryUsesIndex(t *testing.T) {
	c := testCatalog(t)
	q := `SELECT * FROM part p WHERE p.retailprice >
	      (SELECT SUM(l.extendedprice) FROM lineitem l WHERE l.partkey = p.partkey)`
	n := planOf(t, c, q)
	f, ok := n.(*Filter)
	if !ok {
		t.Fatalf("got %T", n)
	}
	be, ok := f.Pred.(BinaryExpr)
	if !ok {
		t.Fatalf("pred %T", f.Pred)
	}
	sub, ok := be.R.(SubplanExpr)
	if !ok {
		t.Fatalf("rhs %T", be.R)
	}
	// The subplan must bottom out at an IndexScan keyed by the outer column.
	var found *IndexScan
	var walk func(n Node)
	walk = func(n Node) {
		if is, ok := n.(*IndexScan); ok {
			found = is
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(sub.Plan)
	if found == nil {
		t.Fatalf("no IndexScan in subplan:\n%s", Explain(sub.Plan))
	}
	oc, ok := found.KeyExpr.(OuterCol)
	if !ok || oc.Level != 1 {
		t.Errorf("key expr = %v, want level-1 outer ref", found.KeyExpr)
	}
	// The filter's cost must include per-row subplan cost: much larger than
	// the bare part scan.
	if f.EstCost() < 100*sub.PerEvalCost/2 {
		t.Errorf("filter cost %g does not account for %d×%g subplan evals",
			f.EstCost(), 100, sub.PerEvalCost)
	}
}

func TestPlanAggregateShape(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT quantity, SUM(extendedprice), COUNT(*) FROM lineitem GROUP BY quantity")
	proj, ok := n.(*Project)
	if !ok {
		t.Fatalf("got %T", n)
	}
	agg, ok := proj.Child.(*Agg)
	if !ok {
		t.Fatalf("child %T", proj.Child)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg shape: %d group, %d aggs", len(agg.GroupBy), len(agg.Aggs))
	}
	if agg.EstRows() != 10 {
		t.Errorf("group count = %g, want 10 (distinct quantity)", agg.EstRows())
	}
	sch := n.Schema()
	if sch.Cols[0].Name != "quantity" || sch.Cols[0].Type != types.KindInt {
		t.Errorf("out col 0: %+v", sch.Cols[0])
	}
	if sch.Cols[1].Type != types.KindFloat {
		t.Errorf("SUM(float) type = %v", sch.Cols[1].Type)
	}
	if sch.Cols[2].Type != types.KindInt {
		t.Errorf("COUNT(*) type = %v", sch.Cols[2].Type)
	}
}

func TestPlanScalarAggregate(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT AVG(extendedprice) FROM lineitem")
	proj := n.(*Project)
	agg := proj.Child.(*Agg)
	if agg.EstRows() != 1 {
		t.Errorf("scalar agg rows = %g", agg.EstRows())
	}
	if n.Schema().Cols[0].Type != types.KindFloat {
		t.Errorf("AVG type = %v", n.Schema().Cols[0].Type)
	}
}

func TestPlanJoinShape(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT * FROM part p, lineitem l WHERE p.partkey = l.partkey")
	f, ok := n.(*Filter)
	if !ok {
		t.Fatalf("got %T", n)
	}
	j, ok := f.Child.(*NLJoin)
	if !ok {
		t.Fatalf("child %T", f.Child)
	}
	if j.Schema().Len() != 5 {
		t.Errorf("join schema width = %d", j.Schema().Len())
	}
	// Join cost must dominate either scan alone.
	if j.EstCost() <= 16 {
		t.Errorf("join cost = %g", j.EstCost())
	}
}

func TestPlanOrderByAndLimit(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT partkey, retailprice FROM part ORDER BY retailprice DESC LIMIT 5")
	lim, ok := n.(*Limit)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if lim.EstRows() != 5 {
		t.Errorf("limit rows = %g", lim.EstRows())
	}
	srt, ok := lim.Child.(*Sort)
	if !ok {
		t.Fatalf("limit child %T", lim.Child)
	}
	if len(srt.Keys) != 1 || !srt.Keys[0].Desc {
		t.Errorf("sort keys: %+v", srt.Keys)
	}
}

func TestPlanErrors(t *testing.T) {
	c := testCatalog(t)
	cases := []string{
		"SELECT nope FROM part",
		"SELECT * FROM missing",
		"SELECT partkey FROM part, lineitem",                        // ambiguous
		"SELECT retailprice FROM part GROUP BY partkey",             // not in group by
		"SELECT partkey FROM part HAVING COUNT(*) > 1 ORDER BY x",   // having without aggregation is fine? partkey not agg...
		"SELECT (SELECT partkey, quantity FROM lineitem) FROM part", // 2-col subquery
		"SELECT SUM(SUM(retailprice)) FROM part",                    // nested agg? inner SUM not allowed in arg
	}
	for _, src := range cases {
		planErr(t, c, src)
	}
}

func TestExplainContainsOperators(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, "SELECT quantity, COUNT(*) FROM lineitem WHERE partkey = 3 GROUP BY quantity ORDER BY quantity LIMIT 2")
	out := Explain(n)
	for _, frag := range []string{"Limit", "Sort", "Project", "Aggregate", "IndexScan"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %s:\n%s", frag, out)
		}
	}
}

func TestPlanHavingWithoutGroupBy(t *testing.T) {
	c := testCatalog(t)
	// Aggregate-only HAVING without GROUP BY is legal (scalar aggregation).
	n := planOf(t, c, "SELECT COUNT(*) FROM part HAVING COUNT(*) > 0")
	if n.Schema().Len() != 1 {
		t.Errorf("schema: %v", n.Schema())
	}
}

func TestSelectivityBounds(t *testing.T) {
	c := testCatalog(t)
	// AND of two predicates is at most either alone.
	one := planOf(t, c, "SELECT * FROM lineitem WHERE quantity = 3")
	both := planOf(t, c, "SELECT * FROM lineitem WHERE quantity = 3 AND extendedprice < 250")
	if both.EstRows() > one.EstRows() {
		t.Errorf("AND grew rows: %g > %g", both.EstRows(), one.EstRows())
	}
	// OR is at least either alone.
	or := planOf(t, c, "SELECT * FROM lineitem WHERE quantity = 3 OR extendedprice < 250")
	if or.EstRows() < one.EstRows() {
		t.Errorf("OR shrank rows: %g < %g", or.EstRows(), one.EstRows())
	}
}

func TestExplainRecursesIntoSubplans(t *testing.T) {
	c := testCatalog(t)
	n := planOf(t, c, `SELECT * FROM part p WHERE p.retailprice >
	      (SELECT SUM(l.extendedprice) FROM lineitem l WHERE l.partkey = p.partkey)`)
	out := Explain(n)
	for _, frag := range []string{"SubPlan:", "IndexScan lineitem", "Aggregate SUM"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
}
