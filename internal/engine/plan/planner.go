package plan

import (
	"fmt"
	"math"
	"strings"

	"mqpi/internal/engine/catalog"
	"mqpi/internal/engine/index"
	"mqpi/internal/engine/sql"
	"mqpi/internal/engine/storage"
	"mqpi/internal/engine/types"
)

// Planner binds and plans SELECT statements against a catalog.
type Planner struct {
	cat *catalog.Catalog
}

// NewPlanner creates a planner over the catalog.
func NewPlanner(cat *catalog.Catalog) *Planner {
	return &Planner{cat: cat}
}

// colOrigin records which base table column a scope column came from, so the
// selectivity estimator can find its statistics. Computed columns have an
// empty table.
type colOrigin struct {
	table  string
	column string
}

// scope is one level of name resolution: the combined FROM schema of a
// SELECT, plus per-column statistic origins.
type scope struct {
	schema  types.Schema
	origins []colOrigin
}

// PlanSelect builds a physical plan for a top-level SELECT.
func (p *Planner) PlanSelect(sel *sql.Select) (Node, error) {
	n, _, err := p.buildSelect(sel, nil)
	return n, err
}

// BindRowExpr binds an expression against a single table's row schema (for
// DELETE/UPDATE predicates and SET expressions). Sub-queries inside the
// expression may correlate against the table's row.
func (p *Planner) BindRowExpr(tableName string, e sql.Expr) (Expr, error) {
	t, err := p.cat.Table(tableName)
	if err != nil {
		return nil, err
	}
	sc := scope{schema: t.Rel.Schema().WithQualifier(tableName)}
	for _, c := range t.Rel.Schema().Cols {
		sc.origins = append(sc.origins, colOrigin{table: tableName, column: c.Name})
	}
	bound, _, err := p.bindExpr(e, []scope{sc}, false)
	return bound, err
}

// buildSelect plans one SELECT in the context of enclosing scopes
// (outers[len-1] is the nearest). It returns the plan and its output scope.
func (p *Planner) buildSelect(sel *sql.Select, outers []scope) (Node, scope, error) {
	if len(sel.From) == 0 {
		return nil, scope{}, fmt.Errorf("plan: FROM clause is required")
	}

	// Resolve FROM and build the combined input scope.
	cur := scope{}
	tables := make([]*catalog.Table, len(sel.From))
	for i, ref := range sel.From {
		t, err := p.cat.Table(ref.Table)
		if err != nil {
			return nil, scope{}, err
		}
		tables[i] = t
		qualified := t.Rel.Schema().WithQualifier(ref.Alias)
		cur.schema = cur.schema.Concat(qualified)
		for _, c := range t.Rel.Schema().Cols {
			cur.origins = append(cur.origins, colOrigin{table: ref.Table, column: c.Name})
		}
	}
	scopes := append(append([]scope(nil), outers...), cur)

	// Bind WHERE and split it into conjuncts for access-path selection.
	var whereConjuncts []Expr
	if sel.Where != nil {
		bound, _, err := p.bindExpr(sel.Where, scopes, false)
		if err != nil {
			return nil, scope{}, err
		}
		whereConjuncts = splitConjuncts(bound)
	}

	var root Node
	if len(sel.From) == 1 {
		node, rest, err := p.accessPath(tables[0], sel.From[0], cur, whereConjuncts)
		if err != nil {
			return nil, scope{}, err
		}
		root = node
		whereConjuncts = rest
	} else {
		// Left-deep cross-product chain; the WHERE filter restricts it above.
		root = p.newSeqScan(tables[0], sel.From[0])
		for i := 1; i < len(sel.From); i++ {
			r := p.newSeqScan(tables[i], sel.From[i])
			root = p.newNLJoin(root, r)
		}
	}
	if len(whereConjuncts) > 0 {
		root = p.newFilter(root, joinConjuncts(whereConjuncts), cur)
	}

	// Aggregation.
	hasAgg := len(sel.GroupBy) > 0 || selectHasAgg(sel)
	outScope := cur
	if hasAgg {
		var err error
		root, outScope, err = p.buildAgg(root, sel, scopes, cur)
		if err != nil {
			return nil, scope{}, err
		}
		scopes = append(append([]scope(nil), outers...), outScope)
		if sel.Having != nil {
			// HAVING was rewritten into the aggregate scope by buildAgg via
			// aggRewrite; bind it there.
			pred, _, err := p.bindAggExpr(sel.Having, sel, scopes, outScope)
			if err != nil {
				return nil, scope{}, err
			}
			root = p.newFilter(root, pred, outScope)
		}
	} else if sel.Having != nil {
		return nil, scope{}, fmt.Errorf("plan: HAVING requires aggregation")
	}

	// Projection.
	star := len(sel.Items) == 1 && sel.Items[0].Star
	if !star {
		exprs := make([]Expr, 0, len(sel.Items))
		outSchema := types.Schema{}
		outOrigins := make([]colOrigin, 0, len(sel.Items))
		for i, item := range sel.Items {
			if item.Star {
				return nil, scope{}, fmt.Errorf("plan: SELECT * cannot be mixed with expressions")
			}
			var (
				e    Expr
				kind types.Kind
				err  error
			)
			if hasAgg {
				e, kind, err = p.bindAggExpr(item.Expr, sel, scopes, outScope)
			} else {
				e, kind, err = p.bindExpr(item.Expr, scopes, false)
			}
			if err != nil {
				return nil, scope{}, err
			}
			name := item.Alias
			if name == "" {
				if c, ok := item.Expr.(sql.ColumnRef); ok {
					name = c.Name
				} else {
					name = fmt.Sprintf("expr%d", i+1)
				}
			}
			exprs = append(exprs, e)
			outSchema.Cols = append(outSchema.Cols, types.Column{Name: name, Type: kind})
			outSchema.Quals = append(outSchema.Quals, "")
			origin := colOrigin{}
			if ci, ok := e.(ColIdx); ok && ci.Idx < len(outScope.origins) {
				origin = outScope.origins[ci.Idx]
			}
			outOrigins = append(outOrigins, origin)
		}
		root = p.newProject(root, exprs, outSchema)
		outScope = scope{schema: outSchema, origins: outOrigins}
	}

	if sel.Distinct {
		root = p.newDistinct(root)
	}

	// ORDER BY binds against the projected output (name or alias). A
	// qualified reference like p.partkey falls back to its bare name, since
	// projection output drops qualifiers.
	if len(sel.OrderBy) > 0 {
		keys := make([]SortKey, 0, len(sel.OrderBy))
		orderScopes := []scope{outScope}
		for _, o := range sel.OrderBy {
			e, _, err := p.bindExpr(o.Expr, orderScopes, false)
			if err != nil {
				e, _, err = p.bindExpr(stripQualifiers(o.Expr), orderScopes, false)
			}
			if err != nil {
				return nil, scope{}, fmt.Errorf("plan: ORDER BY must reference output columns: %w", err)
			}
			keys = append(keys, SortKey{Expr: e, Desc: o.Desc})
		}
		root = p.newSort(root, keys)
	}
	if sel.Limit != nil {
		root = &Limit{Child: root, N: *sel.Limit}
	}
	return root, outScope, nil
}

// accessPath picks an index scan when a conjunct "col = expr" matches an
// index on the single FROM table and expr does not depend on the table's own
// rows (a constant or a correlated outer reference, the paper's lineitem
// probe). It returns the scan node and the conjuncts that still need a
// Filter.
func (p *Planner) accessPath(t *catalog.Table, ref sql.TableRef, cur scope, conjuncts []Expr) (Node, []Expr, error) {
	for i, c := range conjuncts {
		be, ok := c.(BinaryExpr)
		if !ok || be.Op != sql.BinEq {
			continue
		}
		col, key := be.L, be.R
		if _, isCol := col.(ColIdx); !isCol {
			col, key = be.R, be.L
		}
		ci, isCol := col.(ColIdx)
		if !isCol || refsCurrentLevel(key) {
			continue
		}
		origin := cur.origins[ci.Idx]
		bt, ok := p.cat.IndexOn(origin.table, origin.column)
		if !ok {
			continue
		}
		rest := append(append([]Expr(nil), conjuncts[:i]...), conjuncts[i+1:]...)
		return p.newIndexScan(t, ref, bt, key, origin), rest, nil
	}
	return p.newSeqScan(t, ref), conjuncts, nil
}

func selectHasAgg(sel *sql.Select) bool {
	for _, item := range sel.Items {
		if item.Expr != nil && astHasAgg(item.Expr) {
			return true
		}
	}
	if sel.Having != nil && astHasAgg(sel.Having) {
		return true
	}
	return false
}

// astHasAgg reports whether the AST contains an aggregate call outside any
// nested sub-query (aggregates inside a sub-query belong to the sub-query).
func astHasAgg(e sql.Expr) bool {
	switch x := e.(type) {
	case sql.AggCall:
		return true
	case sql.Binary:
		return astHasAgg(x.L) || astHasAgg(x.R)
	case sql.Unary:
		return astHasAgg(x.X)
	case sql.IsNull:
		return astHasAgg(x.X)
	default:
		return false
	}
}

// buildAgg constructs the Agg node: it collects the distinct aggregate calls
// appearing in the select list and HAVING, binds their arguments and the
// GROUP BY keys against the input scope, and returns the aggregate output
// scope (group keys first, then aggregate results).
func (p *Planner) buildAgg(child Node, sel *sql.Select, scopes []scope, cur scope) (Node, scope, error) {
	groupASTs := sel.GroupBy
	groupExprs := make([]Expr, 0, len(groupASTs))
	outSchema := types.Schema{}
	outOrigins := make([]colOrigin, 0)
	for i, g := range groupASTs {
		e, kind, err := p.bindExpr(g, scopes, false)
		if err != nil {
			return nil, scope{}, err
		}
		groupExprs = append(groupExprs, e)
		name := fmt.Sprintf("group%d", i+1)
		origin := colOrigin{}
		if c, ok := g.(sql.ColumnRef); ok {
			name = c.Name
			if ci, ok2 := e.(ColIdx); ok2 && ci.Idx < len(cur.origins) {
				origin = cur.origins[ci.Idx]
			}
		}
		outSchema.Cols = append(outSchema.Cols, types.Column{Name: name, Type: kind})
		outSchema.Quals = append(outSchema.Quals, "")
		outOrigins = append(outOrigins, origin)
	}

	// Collect distinct aggregate calls (keyed by rendered text) from the
	// select list and HAVING.
	var calls []sql.AggCall
	seen := map[string]bool{}
	collect := func(e sql.Expr) {
		var walk func(e sql.Expr)
		walk = func(e sql.Expr) {
			switch x := e.(type) {
			case sql.AggCall:
				if !seen[x.String()] {
					seen[x.String()] = true
					calls = append(calls, x)
				}
			case sql.Binary:
				walk(x.L)
				walk(x.R)
			case sql.Unary:
				walk(x.X)
			case sql.IsNull:
				walk(x.X)
			}
		}
		walk(e)
	}
	for _, item := range sel.Items {
		if item.Expr != nil {
			collect(item.Expr)
		}
	}
	if sel.Having != nil {
		collect(sel.Having)
	}

	specs := make([]AggSpec, 0, len(calls))
	for _, call := range calls {
		spec := AggSpec{Func: call.Func, Star: call.Star}
		kind := types.KindFloat
		if call.Star {
			kind = types.KindInt
		} else {
			arg, argKind, err := p.bindExpr(call.Arg, scopes, false)
			if err != nil {
				return nil, scope{}, err
			}
			spec.Arg = arg
			switch call.Func {
			case sql.AggCount:
				kind = types.KindInt
			case sql.AggAvg:
				kind = types.KindFloat
			default:
				kind = argKind
			}
		}
		specs = append(specs, spec)
		outSchema.Cols = append(outSchema.Cols, types.Column{Name: call.String(), Type: kind})
		outSchema.Quals = append(outSchema.Quals, "")
		outOrigins = append(outOrigins, colOrigin{})
	}
	node := p.newAgg(child, groupExprs, specs, outSchema, cur)
	return node, scope{schema: outSchema, origins: outOrigins}, nil
}

// bindAggExpr binds an expression that appears above an Agg node: aggregate
// calls and group-by expressions become positional references into the
// aggregate output; anything else must be composed of those.
func (p *Planner) bindAggExpr(e sql.Expr, sel *sql.Select, scopes []scope, aggScope scope) (Expr, types.Kind, error) {
	// Group-by expressions match textually (the standard trick).
	for i, g := range sel.GroupBy {
		if g.String() == e.String() {
			return ColIdx{Idx: i, Name: aggScope.schema.Cols[i].Name}, aggScope.schema.Cols[i].Type, nil
		}
	}
	switch x := e.(type) {
	case sql.AggCall:
		for i := len(sel.GroupBy); i < aggScope.schema.Len(); i++ {
			if aggScope.schema.Cols[i].Name == x.String() {
				return ColIdx{Idx: i, Name: x.String()}, aggScope.schema.Cols[i].Type, nil
			}
		}
		return nil, types.KindNull, fmt.Errorf("plan: aggregate %s not found in aggregation", x.String())
	case sql.Literal:
		return Const{Val: x.Val}, x.Val.Kind(), nil
	case sql.Binary:
		l, lk, err := p.bindAggExpr(x.L, sel, scopes, aggScope)
		if err != nil {
			return nil, types.KindNull, err
		}
		r, rk, err := p.bindAggExpr(x.R, sel, scopes, aggScope)
		if err != nil {
			return nil, types.KindNull, err
		}
		return BinaryExpr{Op: x.Op, L: l, R: r}, binaryKind(x.Op, lk, rk), nil
	case sql.Unary:
		inner, kind, err := p.bindAggExpr(x.X, sel, scopes, aggScope)
		if err != nil {
			return nil, types.KindNull, err
		}
		if x.Op == "NOT" {
			return NotExpr{X: inner}, types.KindBool, nil
		}
		return NegExpr{X: inner}, kind, nil
	case sql.IsNull:
		inner, _, err := p.bindAggExpr(x.X, sel, scopes, aggScope)
		if err != nil {
			return nil, types.KindNull, err
		}
		return IsNullExpr{X: inner, Negate: x.Negate}, types.KindBool, nil
	case sql.ColumnRef:
		return nil, types.KindNull, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", x.String())
	case sql.Subquery:
		return nil, types.KindNull, fmt.Errorf("plan: sub-queries above aggregation are not supported")
	default:
		return nil, types.KindNull, fmt.Errorf("plan: unsupported expression %T above aggregation", e)
	}
}

// bindExpr resolves an AST expression against the scope stack
// (scopes[len-1] is the current scope). Aggregate calls are rejected here;
// they are handled by the aggregation path.
func (p *Planner) bindExpr(e sql.Expr, scopes []scope, inAggArg bool) (Expr, types.Kind, error) {
	switch x := e.(type) {
	case sql.Literal:
		return Const{Val: x.Val}, x.Val.Kind(), nil
	case sql.ColumnRef:
		for level := 0; level < len(scopes); level++ {
			sc := scopes[len(scopes)-1-level]
			idx, err := sc.schema.ColIndex(x.Qualifier, x.Name)
			if err != nil {
				if isAmbiguous(err) {
					return nil, types.KindNull, err
				}
				continue
			}
			kind := sc.schema.Cols[idx].Type
			if level == 0 {
				return ColIdx{Idx: idx, Name: x.String()}, kind, nil
			}
			return OuterCol{Level: level, Idx: idx, Name: x.String()}, kind, nil
		}
		return nil, types.KindNull, fmt.Errorf("plan: unknown column %s", x.String())
	case sql.Binary:
		l, lk, err := p.bindExpr(x.L, scopes, inAggArg)
		if err != nil {
			return nil, types.KindNull, err
		}
		r, rk, err := p.bindExpr(x.R, scopes, inAggArg)
		if err != nil {
			return nil, types.KindNull, err
		}
		return BinaryExpr{Op: x.Op, L: l, R: r}, binaryKind(x.Op, lk, rk), nil
	case sql.Unary:
		inner, kind, err := p.bindExpr(x.X, scopes, inAggArg)
		if err != nil {
			return nil, types.KindNull, err
		}
		if x.Op == "NOT" {
			return NotExpr{X: inner}, types.KindBool, nil
		}
		return NegExpr{X: inner}, kind, nil
	case sql.IsNull:
		inner, _, err := p.bindExpr(x.X, scopes, inAggArg)
		if err != nil {
			return nil, types.KindNull, err
		}
		return IsNullExpr{X: inner, Negate: x.Negate}, types.KindBool, nil
	case sql.Subquery:
		node, sscope, err := p.buildSelect(x.Stmt, scopes)
		if err != nil {
			return nil, types.KindNull, err
		}
		if sscope.schema.Len() != 1 {
			return nil, types.KindNull, fmt.Errorf("plan: scalar sub-query must return one column, got %d", sscope.schema.Len())
		}
		return SubplanExpr{Plan: node, PerEvalCost: node.EstCost()}, sscope.schema.Cols[0].Type, nil
	case sql.Exists:
		node, _, err := p.buildSelect(x.Stmt, scopes)
		if err != nil {
			return nil, types.KindNull, err
		}
		return ExistsExpr{Plan: node, Negate: x.Negate, PerEvalCost: node.EstCost()}, types.KindBool, nil
	case sql.AggCall:
		return nil, types.KindNull, fmt.Errorf("plan: aggregate %s is not allowed here", x.String())
	default:
		return nil, types.KindNull, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// stripQualifiers rewrites an AST expression with every column qualifier
// removed (ORDER BY fallback after projection).
func stripQualifiers(e sql.Expr) sql.Expr {
	switch x := e.(type) {
	case sql.ColumnRef:
		return sql.ColumnRef{Name: x.Name}
	case sql.Binary:
		return sql.Binary{Op: x.Op, L: stripQualifiers(x.L), R: stripQualifiers(x.R)}
	case sql.Unary:
		return sql.Unary{Op: x.Op, X: stripQualifiers(x.X)}
	case sql.IsNull:
		return sql.IsNull{X: stripQualifiers(x.X), Negate: x.Negate}
	default:
		return e
	}
}

func isAmbiguous(err error) bool {
	return err != nil && strings.Contains(err.Error(), "ambiguous")
}

func binaryKind(op sql.BinOp, l, r types.Kind) types.Kind {
	switch op {
	case sql.BinEq, sql.BinNe, sql.BinLt, sql.BinLe, sql.BinGt, sql.BinGe, sql.BinAnd, sql.BinOr:
		return types.KindBool
	case sql.BinDiv:
		return types.KindFloat
	default:
		if l == types.KindFloat || r == types.KindFloat {
			return types.KindFloat
		}
		return types.KindInt
	}
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if be, ok := e.(BinaryExpr); ok && be.Op == sql.BinAnd {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []Expr{e}
}

// joinConjuncts rebuilds a conjunction.
func joinConjuncts(cs []Expr) Expr {
	out := cs[0]
	for _, c := range cs[1:] {
		out = BinaryExpr{Op: sql.BinAnd, L: out, R: c}
	}
	return out
}

// --- node constructors with cost estimation ---

func (p *Planner) tableStats(t *catalog.Table, name string) (rows, pages float64, stats *catalog.Stats) {
	stats = p.cat.TableStats(name)
	if stats != nil {
		return float64(stats.RowCount), float64(stats.Pages), stats
	}
	return float64(t.Rel.NumRows()), float64(t.Rel.NumPages()), nil
}

func (p *Planner) newSeqScan(t *catalog.Table, ref sql.TableRef) *SeqScan {
	rows, pages, _ := p.tableStats(t, ref.Table)
	return &SeqScan{
		Table:  t,
		Name:   ref.Table,
		Alias:  ref.Alias,
		schema: t.Rel.Schema().WithQualifier(ref.Alias),
		cost:   math.Max(1, pages),
		rows:   rows,
	}
}

func (p *Planner) newIndexScan(t *catalog.Table, ref sql.TableRef, bt *index.BTree, key Expr, origin colOrigin) Node {
	rows, pages, stats := p.tableStats(t, ref.Table)
	distinct := 1.0
	if stats != nil {
		if cs, ok := stats.Cols[origin.column]; ok && cs.Distinct > 0 {
			distinct = float64(cs.Distinct)
		}
	}
	matches := rows / distinct
	heapPages := math.Min(matches, math.Max(pages, 1))
	return &IndexScan{
		Table:   t,
		Index:   bt,
		Name:    ref.Table,
		Alias:   ref.Alias,
		KeyExpr: key,
		schema:  t.Rel.Schema().WithQualifier(ref.Alias),
		cost:    float64(bt.Height()) + math.Max(1, heapPages),
		rows:    matches,
	}
}

func (p *Planner) newFilter(child Node, pred Expr, sc scope) *Filter {
	sel := p.selectivity(pred, sc)
	return &Filter{
		Child: child,
		Pred:  pred,
		cost:  child.EstCost() + child.EstRows()*exprCost(pred),
		rows:  math.Max(0, child.EstRows()*sel),
	}
}

func (p *Planner) newProject(child Node, exprs []Expr, schema types.Schema) *Project {
	perRow := 0.0
	for _, e := range exprs {
		perRow += exprCost(e)
	}
	return &Project{
		Child:  child,
		Exprs:  exprs,
		schema: schema,
		cost:   child.EstCost() + child.EstRows()*perRow,
	}
}

func (p *Planner) newNLJoin(l, r Node) *NLJoin {
	return &NLJoin{
		L:      l,
		R:      r,
		schema: l.Schema().Concat(r.Schema()),
		cost:   l.EstCost() + math.Max(1, l.EstRows())*r.EstCost(),
		rows:   l.EstRows() * r.EstRows(),
	}
}

func (p *Planner) newAgg(child Node, groupBy []Expr, aggs []AggSpec, schema types.Schema, sc scope) *Agg {
	groups := 1.0
	for _, g := range groupBy {
		d := p.distinctOf(g, sc)
		groups *= d
	}
	groups = math.Min(math.Max(1, groups), math.Max(1, child.EstRows()))
	perRow := 0.0
	for _, a := range aggs {
		if a.Arg != nil {
			perRow += exprCost(a.Arg)
		}
	}
	outPages := math.Max(1, groups/float64(storage.PageSlots))
	return &Agg{
		Child:   child,
		GroupBy: groupBy,
		Aggs:    aggs,
		schema:  schema,
		cost:    child.EstCost() + child.EstRows()*perRow + outPages,
		rows:    groups,
	}
}

func (p *Planner) newDistinct(child Node) *Distinct {
	rows := child.EstRows()
	outPages := math.Max(1, rows/float64(storage.PageSlots))
	return &Distinct{
		Child: child,
		cost:  child.EstCost() + outPages,
		rows:  rows, // upper bound; duplicates only shrink it
	}
}

func (p *Planner) newSort(child Node, keys []SortKey) *Sort {
	matPages := math.Max(1, child.EstRows()/float64(storage.PageSlots))
	return &Sort{
		Child: child,
		Keys:  keys,
		cost:  child.EstCost() + 2*matPages,
	}
}

// distinctOf estimates the number of distinct values an expression takes.
func (p *Planner) distinctOf(e Expr, sc scope) float64 {
	ci, ok := e.(ColIdx)
	if !ok || ci.Idx >= len(sc.origins) {
		return 10 // generic guess for computed group keys
	}
	origin := sc.origins[ci.Idx]
	stats := p.cat.TableStats(origin.table)
	if stats == nil {
		return 10
	}
	if cs, ok := stats.Cols[origin.column]; ok && cs.Distinct > 0 {
		return float64(cs.Distinct)
	}
	return 10
}

const defaultSelectivity = 1.0 / 3.0

// selectivity estimates the fraction of rows a predicate passes, in the
// System R tradition: 1/distinct for equality, min/max interpolation for
// ranges, 1/3 when nothing is known.
func (p *Planner) selectivity(pred Expr, sc scope) float64 {
	switch x := pred.(type) {
	case BinaryExpr:
		switch x.Op {
		case sql.BinAnd:
			return p.selectivity(x.L, sc) * p.selectivity(x.R, sc)
		case sql.BinOr:
			a, b := p.selectivity(x.L, sc), p.selectivity(x.R, sc)
			return a + b - a*b
		case sql.BinEq:
			if d, ok := p.eqDistinct(x, sc); ok {
				return 1 / d
			}
			return defaultSelectivity / 3
		case sql.BinNe:
			if d, ok := p.eqDistinct(x, sc); ok {
				return 1 - 1/d
			}
			return 1 - defaultSelectivity/3
		case sql.BinLt, sql.BinLe, sql.BinGt, sql.BinGe:
			return p.rangeSelectivity(x, sc)
		default:
			return defaultSelectivity
		}
	case NotExpr:
		return 1 - p.selectivity(x.X, sc)
	case IsNullExpr:
		s := p.nullFrac(x.X, sc)
		if x.Negate {
			return 1 - s
		}
		return s
	case Const:
		if x.Val.Truthy() {
			return 1
		}
		return 0
	default:
		return defaultSelectivity
	}
}

// eqDistinct returns the distinct count of the column side of an equality
// predicate whose other side is row-independent.
func (p *Planner) eqDistinct(be BinaryExpr, sc scope) (float64, bool) {
	col, other := be.L, be.R
	if _, ok := col.(ColIdx); !ok {
		col, other = be.R, be.L
	}
	ci, ok := col.(ColIdx)
	if !ok || refsCurrentLevel(other) {
		return 0, false
	}
	d := p.distinctOf(ci, sc)
	if d <= 0 {
		return 0, false
	}
	return d, true
}

// rangeSelectivity interpolates "col op const" against the column's min/max.
func (p *Planner) rangeSelectivity(be BinaryExpr, sc scope) float64 {
	col, other := be.L, be.R
	op := be.Op
	if _, ok := col.(ColIdx); !ok {
		col, other = be.R, be.L
		// Mirror the operator when the column is on the right.
		switch op {
		case sql.BinLt:
			op = sql.BinGt
		case sql.BinLe:
			op = sql.BinGe
		case sql.BinGt:
			op = sql.BinLt
		case sql.BinGe:
			op = sql.BinLe
		}
	}
	ci, ok := col.(ColIdx)
	if !ok {
		return defaultSelectivity
	}
	c, ok := other.(Const)
	if !ok || !c.Val.IsNumeric() {
		return defaultSelectivity
	}
	if ci.Idx >= len(sc.origins) {
		return defaultSelectivity
	}
	origin := sc.origins[ci.Idx]
	stats := p.cat.TableStats(origin.table)
	if stats == nil {
		return defaultSelectivity
	}
	cs, okc := stats.Cols[origin.column]
	if !okc || cs.Min.IsNull() || cs.Max.IsNull() || !cs.Min.IsNumeric() {
		return defaultSelectivity
	}
	v := c.Val.Float()
	var frac float64
	if cs.Hist != nil {
		// Equi-depth histogram: robust on skewed distributions.
		frac = cs.Hist.FracBelow(v)
	} else {
		lo, hi := cs.Min.Float(), cs.Max.Float()
		if hi <= lo {
			return defaultSelectivity
		}
		frac = (v - lo) / (hi - lo)
		frac = math.Min(1, math.Max(0, frac))
	}
	switch op {
	case sql.BinLt, sql.BinLe:
		return frac
	default:
		return 1 - frac
	}
}

func (p *Planner) nullFrac(e Expr, sc scope) float64 {
	ci, ok := e.(ColIdx)
	if !ok || ci.Idx >= len(sc.origins) {
		return 0.01
	}
	origin := sc.origins[ci.Idx]
	stats := p.cat.TableStats(origin.table)
	if stats == nil {
		return 0.01
	}
	if cs, ok := stats.Cols[origin.column]; ok {
		return math.Max(cs.NullFrac, 0.001)
	}
	return 0.01
}
