package storage

import (
	"testing"

	"mqpi/internal/engine/types"
)

func newRel() *Relation {
	return NewRelation("t", types.NewSchema(
		types.Column{Name: "a", Type: types.KindInt},
	))
}

func TestInsertAndFetch(t *testing.T) {
	r := newRel()
	for i := 0; i < 3; i++ {
		rid, err := r.Insert(types.Row{types.NewInt(int64(i))})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		got, err := r.Fetch(rid)
		if err != nil || got[0].Int() != int64(i) {
			t.Fatalf("Fetch(%v) = %v, %v", rid, got, err)
		}
	}
	if r.NumRows() != 3 {
		t.Errorf("NumRows = %d", r.NumRows())
	}
}

func TestInsertArityCheck(t *testing.T) {
	r := newRel()
	if _, err := r.Insert(types.Row{types.NewInt(1), types.NewInt(2)}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestPagination(t *testing.T) {
	r := newRel()
	n := PageSlots*2 + 5
	for i := 0; i < n; i++ {
		if _, err := r.Insert(types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", r.NumPages())
	}
	if len(r.Page(0)) != PageSlots {
		t.Errorf("page 0 has %d slots", len(r.Page(0)))
	}
	if len(r.Page(2)) != 5 {
		t.Errorf("page 2 has %d slots, want 5", len(r.Page(2)))
	}
	if r.Page(3) != nil || r.Page(-1) != nil {
		t.Error("out-of-range pages must be nil")
	}
	// Every inserted row is reachable by full scan, in order.
	seen := 0
	for p := 0; p < r.NumPages(); p++ {
		for _, row := range r.Page(p) {
			if row[0].Int() != int64(seen) {
				t.Fatalf("row %d out of order: %v", seen, row)
			}
			seen++
		}
	}
	if seen != n {
		t.Errorf("scanned %d rows, want %d", seen, n)
	}
}

func TestFetchErrors(t *testing.T) {
	r := newRel()
	if _, err := r.Fetch(RowID{Page: 0, Slot: 0}); err == nil {
		t.Error("fetch from empty relation should fail")
	}
	if _, err := r.Insert(types.Row{types.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fetch(RowID{Page: 0, Slot: 5}); err == nil {
		t.Error("bad slot should fail")
	}
	if _, err := r.Fetch(RowID{Page: 9, Slot: 0}); err == nil {
		t.Error("bad page should fail")
	}
}

func TestRowIDString(t *testing.T) {
	if got := (RowID{Page: 3, Slot: 7}).String(); got != "3:7" {
		t.Errorf("RowID.String() = %q", got)
	}
}

func TestEmptyRelation(t *testing.T) {
	r := newRel()
	if r.NumPages() != 0 || r.NumRows() != 0 {
		t.Error("fresh relation should be empty")
	}
	if r.Name() != "t" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Schema().Len() != 1 {
		t.Errorf("Schema len = %d", r.Schema().Len())
	}
}

func TestDeleteTombstones(t *testing.T) {
	r := newRel()
	var ids []RowID
	for i := 0; i < 10; i++ {
		id, err := r.Insert(types.Row{types.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := r.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 9 || r.NumSlots() != 10 {
		t.Errorf("rows=%d slots=%d", r.NumRows(), r.NumSlots())
	}
	if r.Live(ids[3]) {
		t.Error("deleted row still live")
	}
	if !r.Live(ids[4]) {
		t.Error("neighbor row died")
	}
	// Double delete fails; bad id fails.
	if err := r.Delete(ids[3]); err == nil {
		t.Error("double delete should fail")
	}
	if err := r.Delete(RowID{Page: 99, Slot: 0}); err == nil {
		t.Error("bad id delete should fail")
	}
	// Fetch still returns the tuple bytes (liveness is the caller's check).
	if _, err := r.Fetch(ids[3]); err != nil {
		t.Errorf("fetch of tombstoned slot: %v", err)
	}
	if r.Live(RowID{Page: -1, Slot: 0}) {
		t.Error("invalid id must not be live")
	}
}
