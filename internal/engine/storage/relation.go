// Package storage implements the engine's paged heap relations.
//
// The unit of work accounting throughout the system is one page: the paper
// defines U as "the amount of work required to process one page of bytes",
// and every page this layer hands out is charged as 1 U by the executor.
package storage

import (
	"fmt"

	"mqpi/internal/engine/types"
)

// PageSlots is the number of tuple slots per heap page. It is deliberately
// small so that scaled-down datasets still span many pages, keeping the
// work-unit accounting meaningful.
const PageSlots = 64

// RowID addresses a tuple within a relation.
type RowID struct {
	Page int
	Slot int
}

// String renders the row id as "page:slot".
func (r RowID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Relation is a paged heap of rows. Inserts append; deletes tombstone the
// slot (scans skip dead slots, and index probes verify liveness).
//
// Concurrency: the read paths (NumRows, NumSlots, NumPages, Page, Fetch,
// Live) never mutate the relation and are safe for any number of concurrent
// readers — the scheduler's parallel execute phase scans relations from many
// goroutines at once. Insert and Delete are single-writer and must not run
// concurrently with each other or with any reader; the engine's upper layers
// serialize DML against query execution.
type Relation struct {
	name   string
	schema types.Schema
	pages  [][]types.Row
	dead   [][]bool
	nrows  int // live rows
	nslots int // physical slots, live or dead
}

// NewRelation creates an empty relation.
func NewRelation(name string, schema types.Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() types.Schema { return r.schema }

// NumRows returns the number of live tuples.
func (r *Relation) NumRows() int { return r.nrows }

// NumSlots returns the number of physical tuple slots, live or dead; scans
// visit every slot, so progress reporting is slot-based.
func (r *Relation) NumSlots() int { return r.nslots }

// NumPages returns the number of heap pages. An empty relation has zero
// pages; scanning it still costs one U (the executor charges a minimum).
func (r *Relation) NumPages() int { return len(r.pages) }

// Insert appends a row and returns its RowID. The row is validated against
// the schema arity; type mismatches surface later during evaluation, the same
// lenient behaviour PostgreSQL-era dynamic plans exhibit for NULLs.
func (r *Relation) Insert(row types.Row) (RowID, error) {
	if len(row) != r.schema.Len() {
		return RowID{}, fmt.Errorf("storage: %s expects %d columns, got %d", r.name, r.schema.Len(), len(row))
	}
	if len(r.pages) == 0 || len(r.pages[len(r.pages)-1]) >= PageSlots {
		r.pages = append(r.pages, make([]types.Row, 0, PageSlots))
		r.dead = append(r.dead, make([]bool, 0, PageSlots))
	}
	p := len(r.pages) - 1
	r.pages[p] = append(r.pages[p], row)
	r.dead[p] = append(r.dead[p], false)
	r.nrows++
	r.nslots++
	return RowID{Page: p, Slot: len(r.pages[p]) - 1}, nil
}

// Delete tombstones the tuple at id. Deleting a dead or nonexistent tuple is
// an error.
func (r *Relation) Delete(id RowID) error {
	if !r.validID(id) {
		return fmt.Errorf("storage: %s has no tuple %v", r.name, id)
	}
	if r.dead[id.Page][id.Slot] {
		return fmt.Errorf("storage: %s tuple %v already deleted", r.name, id)
	}
	r.dead[id.Page][id.Slot] = true
	r.nrows--
	return nil
}

// Live reports whether the tuple at id exists and has not been deleted.
func (r *Relation) Live(id RowID) bool {
	return r.validID(id) && !r.dead[id.Page][id.Slot]
}

func (r *Relation) validID(id RowID) bool {
	return id.Page >= 0 && id.Page < len(r.pages) &&
		id.Slot >= 0 && id.Slot < len(r.pages[id.Page])
}

// Page returns the rows on page i. Callers must treat the slice as read-only.
func (r *Relation) Page(i int) []types.Row {
	if i < 0 || i >= len(r.pages) {
		return nil
	}
	return r.pages[i]
}

// Fetch returns the row at id, or an error if the id is out of range.
func (r *Relation) Fetch(id RowID) (types.Row, error) {
	if id.Page < 0 || id.Page >= len(r.pages) {
		return nil, fmt.Errorf("storage: %s has no page %d", r.name, id.Page)
	}
	pg := r.pages[id.Page]
	if id.Slot < 0 || id.Slot >= len(pg) {
		return nil, fmt.Errorf("storage: %s page %d has no slot %d", r.name, id.Page, id.Slot)
	}
	return pg[id.Slot], nil
}
