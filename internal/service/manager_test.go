package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
	"mqpi/internal/sched"
	"mqpi/internal/wm"
)

// loadTable populates a fresh table of `pages` heap pages (64 rows each)
// directly through the catalog. Call it only before New or after Close.
func loadTable(t testing.TB, db *engine.DB, name string, pages int) {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE " + name + " (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()
	for i := 0; i < pages*64; i++ {
		if err := cat.Insert(name, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// manual returns a manager in manual-clock mode (no wall ticker): virtual
// time moves only through Advance, making tests deterministic.
func manual(t testing.TB, db *engine.DB, sc sched.Config) *Manager {
	t.Helper()
	m := New(db, Config{Sched: sc, TickEvery: -1})
	t.Cleanup(m.Close)
	return m
}

func TestSubmitRunFinish(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})

	view, err := m.Submit(SubmitRequest{Label: "q1", SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != "running" || view.ID <= 0 {
		t.Fatalf("initial view = %+v", view)
	}
	// 11 U at 10 U/s: after 0.5s the query is ~5/11 done.
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	p, err := m.Progress(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Done < 4 || p.Done > 6 {
		t.Errorf("done after one tick = %g U, want ~5", p.Done)
	}
	if eta := float64(p.MultiETA); eta < 0.3 || eta > 1.0 {
		t.Errorf("multi-query ETA = %g, want ~0.6", eta)
	}
	if err := m.Advance(5); err != nil {
		t.Fatal(err)
	}
	p, err = m.Progress(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "finished" || p.Fraction != 1 {
		t.Errorf("final view = %+v", p)
	}
	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Finished) != 1 || len(ov.Running) != 0 {
		t.Errorf("overview: %d finished, %d running", len(ov.Finished), len(ov.Running))
	}
}

func TestEstimatesReviseOnBlock(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "a", 20)
	loadTable(t, db, "b", 20)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})

	v1, err := m.Submit(SubmitRequest{Label: "a", SQL: "SELECT SUM(a) FROM a"})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Submit(SubmitRequest{Label: "b", SQL: "SELECT SUM(a) FROM b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}
	before, _ := m.Progress(v1.ID)
	// Blocking the competitor must roughly halve q1's multi-query ETA.
	if err := m.Block(v2.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Progress(v1.ID)
	if float64(after.MultiETA) > 0.7*float64(before.MultiETA) {
		t.Errorf("ETA did not drop after blocking competitor: %g -> %g", before.MultiETA, after.MultiETA)
	}
	// The revision must be visible in the event trace.
	revised := false
	for _, e := range m.Events(v1.ID) {
		if e.Type == EventRevised {
			revised = true
		}
	}
	if !revised {
		t.Errorf("no %s event for q1; events: %+v", EventRevised, m.Events(v1.ID))
	}
	if err := m.Unblock(v2.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(10); err != nil {
		t.Fatal(err)
	}
	p2, _ := m.Progress(v2.ID)
	if p2.Status != "finished" {
		t.Errorf("q2 = %+v", p2)
	}
}

func TestScheduledArrivalAndAbort(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	loadTable(t, db, "t2", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})

	v1, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1", Delay: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Status != "scheduled" {
		t.Fatalf("status = %s, want scheduled", v1.Status)
	}
	if b, _ := v1.MultiETA.MarshalJSON(); string(b) != "null" {
		t.Errorf("scheduled ETA marshals to %s, want null", b)
	}
	// An arrival can be aborted before it enters the system.
	v2, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t2", Delay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(v2.ID); err != nil {
		t.Fatal(err)
	}
	// A tick must exist for the clock to move past the arrival: 1.25 lands
	// mid-quantum and the segmented Tick submits it there.
	if err := m.Advance(1.5); err != nil {
		t.Fatal(err)
	}
	p, err := m.Progress(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "running" || p.SubmitTime != 1.25 || p.StartTime != 1.25 {
		t.Errorf("arrival view = %+v", p)
	}
	if p2, _ := m.Progress(v2.ID); p2.Status != "aborted" {
		t.Errorf("aborted arrival = %+v", p2)
	}
}

func TestUnknownQueryAndBadSQL(t *testing.T) {
	db := engine.Open()
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	if _, err := m.Progress(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("Progress(999) = %v, want ErrNotFound", err)
	}
	if err := m.Block(999); err == nil {
		t.Error("Block(999) succeeded")
	}
	if _, err := m.Submit(SubmitRequest{SQL: "SELECT FROM WHERE"}); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestCloseSemantics(t *testing.T) {
	db := engine.Open()
	m := New(db, Config{Sched: sched.Config{RateC: 10, Quantum: 0.5}, TickEvery: -1})
	m.Close()
	m.Close() // idempotent
	if _, err := m.Overview(); !errors.Is(err, ErrClosed) {
		t.Errorf("Overview after Close = %v, want ErrClosed", err)
	}
	if _, err := m.Submit(SubmitRequest{SQL: "SELECT 1"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestEventRingBounded(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 40)
	loadTable(t, db, "t2", 40)
	m := New(db, Config{
		Sched:           sched.Config{RateC: 10, Quantum: 0.25},
		TickEvery:       -1,
		EventCap:        8,
		RevisionEpsilon: 1e-9, // every tick revises
	})
	t.Cleanup(m.Close)
	v1, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t2"}); err != nil {
		t.Fatal(err)
	}
	// Repeated block/unblock cycles shake the competitor's share, so q1's
	// prediction revises on most of the ~30 ticks.
	for i := 0; i < 4; i++ {
		if err := m.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	evs := m.Events(v1.ID)
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want exactly cap=8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("events out of order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	// Oldest entries (submitted/admitted) must have been evicted by revisions.
	if evs[0].Type == EventSubmitted {
		t.Errorf("oldest retained event is still %q; ring did not wrap", evs[0].Type)
	}
}

func TestMetricsTextParses(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	v, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Block(v.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Unblock(v.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(5); err != nil {
		t.Fatal(err)
	}
	text := m.Metrics().Text()
	assertPrometheusText(t, text)
	for _, want := range []string{
		"mqpi_queries_submitted_total 1",
		"mqpi_queries_finished_total 1",
		"mqpi_queries_blocked_total 1",
		"mqpi_queries_unblocked_total 1",
		"mqpi_queries_running 0",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// assertPrometheusText validates the text exposition format: every
// non-comment line is `name{labels} value`, histograms have monotone
// cumulative buckets ending at +Inf, and _count matches the +Inf bucket.
func assertPrometheusText(t *testing.T, text string) {
	t.Helper()
	infBucket := make(map[string]uint64)
	lastBucket := make(map[string]uint64)
	counts := make(map[string]uint64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("bad comment line %q", line)
			continue
		}
		var name string
		var value float64
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = line[:i]
			if _, err := fmt.Sscanf(line[j+1:], "%g", &value); err != nil && !strings.Contains(line, "+Inf") {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			label := line[i+1 : j]
			if strings.HasSuffix(name, "_bucket") {
				base := strings.TrimSuffix(name, "_bucket")
				if _, err := fmt.Sscanf(line[j+2:], "%g", &value); err != nil {
					t.Fatalf("bad bucket value in %q: %v", line, err)
				}
				if uint64(value) < lastBucket[base] {
					t.Errorf("bucket %q not cumulative: %g < %d", line, value, lastBucket[base])
				}
				lastBucket[base] = uint64(value)
				if label == `le="+Inf"` {
					infBucket[base] = uint64(value)
				}
			}
			continue
		}
		if n, err := fmt.Sscanf(line, "%s %g", &name, &value); n != 2 || err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_count") {
			counts[strings.TrimSuffix(name, "_count")] = uint64(value)
		}
	}
	if len(infBucket) == 0 {
		t.Error("no histograms found")
	}
	for base, inf := range infBucket {
		if counts[base] != inf {
			t.Errorf("%s_count = %d but +Inf bucket = %d", base, counts[base], inf)
		}
	}
}

func TestPlannersThroughManager(t *testing.T) {
	db := engine.Open()
	for i, pages := range []int{10, 20, 30} {
		loadTable(t, db, fmt.Sprintf("p%d", i), pages)
	}
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	var ids []int
	for i := range 3 {
		v, err := m.Submit(SubmitRequest{SQL: fmt.Sprintf("SELECT SUM(a) FROM p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}
	victims, err := m.SpeedUpSingle(ids[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0].ID == ids[0] {
		t.Errorf("SpeedUpSingle victims = %+v", victims)
	}
	if _, err := m.SpeedUpOthers(); err != nil {
		t.Fatal(err)
	}
	plan, err := m.PlanMaintenance(2, wm.Case2TotalCost, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Quiescent > 2+1e-9 && len(plan.Abort) == 0 {
		t.Errorf("plan misses deadline with no aborts: %+v", plan)
	}
	s, err := m.Diagram(60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Q") {
		t.Errorf("diagram has no queries:\n%s", s)
	}
}

// TestConcurrentClients is the -race workhorse: a live wall ticker at a high
// time scale while many goroutines submit, poll, block, unblock, abort, and
// scrape metrics simultaneously.
func TestConcurrentClients(t *testing.T) {
	db := engine.Open()
	for i := 0; i < 6; i++ {
		loadTable(t, db, fmt.Sprintf("c%d", i), 8)
	}
	m := New(db, Config{
		Sched:     sched.Config{RateC: 20, Quantum: 0.25, MPL: 4},
		TickEvery: time.Millisecond,
		TimeScale: 500, // 0.5 virtual seconds per wall ms: finishes fast
	})
	defer m.Close()

	var wg sync.WaitGroup
	ids := make(chan int, 64)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				v, err := m.Submit(SubmitRequest{
					Label:    fmt.Sprintf("c%d-%d", i, k),
					SQL:      fmt.Sprintf("SELECT SUM(a) FROM c%d", i),
					Priority: i % 3,
					Delay:    float64(k) * 0.1,
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				ids <- v.ID
			}
		}(i)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case id := <-ids:
					if _, err := m.Progress(id); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("progress: %v", err)
					}
					switch id % 4 {
					case 0:
						_ = m.Block(id) // may fail if already finished: fine
						_ = m.Unblock(id)
					case 1:
						_ = m.Abort(id)
					case 2:
						_ = m.SetPriority(id, 2)
					}
					_ = m.Metrics().Text()
					m.Events(0)
					if _, err := m.Overview(); err != nil {
						t.Errorf("overview: %v", err)
					}
				}
			}
		}(w)
	}

	// Wait for the scheduler to drain everything that wasn't aborted.
	deadline := time.After(20 * time.Second)
	for {
		ov, err := m.Overview()
		if err != nil {
			t.Fatal(err)
		}
		if len(ov.Running) == 0 && len(ov.Queued) == 0 && len(ov.Scheduled) == 0 && len(ov.Finished) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("workload did not drain: %d running, %d queued, %d scheduled",
				len(ov.Running), len(ov.Queued), len(ov.Scheduled))
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(done)
	wg.Wait()

	text := m.Metrics().Text()
	assertPrometheusText(t, text)
	if !strings.Contains(text, "mqpi_queries_submitted_total 24") {
		t.Errorf("expected 24 submissions:\n%s", text)
	}
}

func TestAdvanceValidation(t *testing.T) {
	db := engine.Open()
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	for _, bad := range []float64{0, -1, math.NaN(), 2e9} {
		if err := m.Advance(bad); err == nil {
			t.Errorf("Advance(%g) accepted", bad)
		}
	}
}

// TestIdleClockFrozen: with nothing to run, wall ticks must not move the
// virtual clock (a quiet service does not spin the scheduler).
func TestIdleClockFrozen(t *testing.T) {
	db := engine.Open()
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	if err := m.Advance(100); err != nil {
		t.Fatal(err)
	}
	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Now != 0 {
		t.Errorf("idle clock moved to %g", ov.Now)
	}
}

// TestReadsBypassOwner pins the tentpole invariant: Progress, Overview,
// Diagram, the §3 planners, Events, and metrics scrapes perform zero sends on
// the owner-goroutine channel. First by counting owner requests across a
// burst of reads, then behaviorally: with the owner goroutine wedged on a
// slow request, every read still completes.
func TestReadsBypassOwner(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	loadTable(t, db, "t2", 20)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	v1, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t2"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}

	before, _, _ := m.metrics.readStats()
	if _, err := m.Progress(v1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Overview(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Diagram(40); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpeedUpSingle(v1.ID, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SpeedUpOthers(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PlanMaintenance(10, wm.Case2TotalCost, false); err != nil {
		t.Fatal(err)
	}
	m.Events(0)
	_ = m.Metrics().Text()
	if after, _, _ := m.metrics.readStats(); after != before {
		t.Fatalf("reads sent %d request(s) to the owner goroutine, want 0", after-before)
	}

	// Behavioral proof: wedge the owner, reads must not care.
	gate := make(chan struct{})
	defer close(gate) // un-wedge before Cleanup's m.Close even if we fail below
	started := make(chan struct{})
	go func() { _ = m.call(func() { close(started); <-gate }) }()
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.Progress(v1.ID); err != nil {
			t.Errorf("progress with wedged owner: %v", err)
		}
		if _, err := m.Overview(); err != nil {
			t.Errorf("overview with wedged owner: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked behind the owner goroutine")
	}
}

// TestSingleflightEstimates: concurrent pollers of the same snapshot epoch
// must trigger exactly one EstimateAll computation; everyone else shares it
// via the per-epoch cache.
func TestSingleflightEstimates(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 50)
	m := manual(t, db, sched.Config{RateC: 1, Quantum: 0.5})
	v, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}

	_, hits0, miss0 := m.metrics.readStats()
	const pollers = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < pollers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			p, err := m.Progress(v.ID)
			if err != nil {
				t.Errorf("progress: %v", err)
				return
			}
			if p.Status != "running" || p.MultiETA <= 0 {
				t.Errorf("poll view = %+v", p)
			}
		}()
	}
	close(start)
	wg.Wait()
	_, hits, miss := m.metrics.readStats()
	if miss-miss0 != 1 {
		t.Errorf("estimates computed %d times for one epoch, want exactly 1", miss-miss0)
	}
	if total := (hits - hits0) + (miss - miss0); total != pollers {
		t.Errorf("hits+misses = %d, want %d", total, pollers)
	}

	// A mutation publishes a new epoch, which must invalidate the cache.
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Progress(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, miss2 := func() (uint64, uint64) { _, h, ms := m.metrics.readStats(); return h, ms }(); miss2 != miss+1 {
		t.Errorf("post-mutation poll did not recompute: misses = %d, want %d", miss2, miss+1)
	}
}

// TestOverviewCarriesEpoch: every mutation publishes a fresh snapshot, and
// the overview reports which epoch it was derived from.
func TestOverviewCarriesEpoch(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	ov1, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov1.Epoch == 0 {
		t.Fatal("initial snapshot has epoch 0; New must publish before serving reads")
	}
	if _, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}); err != nil {
		t.Fatal(err)
	}
	ov2, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov2.Epoch <= ov1.Epoch {
		t.Errorf("epoch did not advance across a mutation: %d -> %d", ov1.Epoch, ov2.Epoch)
	}
	if len(ov2.Running) != 1 {
		t.Errorf("read-your-write failed: submit not visible in next overview: %+v", ov2)
	}
}

// TestProgressCarriesNow pins the virtual-clock stamp on the poll path: a
// single-query view must carry the scheduler's current time so a client can
// audit predictions (predicted finish = now + ETA) against the actual finish
// time later. Views embedded in an Overview omit the per-view stamp in favor
// of the overview's own Now.
func TestProgressCarriesNow(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})

	view, err := m.Submit(SubmitRequest{Label: "q1", SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	// The submit-time view is stamped at the submission instant.
	if float64(view.Now) != 0 {
		t.Errorf("submit view now = %g, want 0", float64(view.Now))
	}
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	p, err := m.Progress(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if float64(p.Now) != 0.5 {
		t.Errorf("poll view now = %g, want 0.5", float64(p.Now))
	}
	// now + ETA should predict a finish consistent with the actual one.
	predicted := float64(p.Now) + float64(p.MultiETA)
	if err := m.Advance(5); err != nil {
		t.Fatal(err)
	}
	final, err := m.Progress(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != "finished" {
		t.Fatalf("status = %s", final.Status)
	}
	actual := float64(final.FinishTime)
	if math.Abs(predicted-actual) > 0.25*actual+0.25 {
		t.Errorf("predicted finish %g vs actual %g", predicted, actual)
	}

	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(ov.Finished[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"now"`) {
		t.Errorf("overview-embedded view carries its own now: %s", b)
	}
}
