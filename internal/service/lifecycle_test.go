package service

import (
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// eventTypes returns the ordered event-type sequence recorded for query id.
func eventTypes(m *Manager, id int) []string {
	var out []string
	for _, ev := range m.Events(0) {
		if ev.QueryID == id {
			out = append(out, ev.Type)
		}
	}
	return out
}

func wantPrefix(t *testing.T, got, want []string, id int) {
	t.Helper()
	if len(got) < len(want) {
		t.Fatalf("q%d events = %v, want prefix %v", id, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("q%d events = %v, want prefix %v", id, got, want)
		}
	}
}

// Reduced from simulator seed 24: aborting a running query frees its MPL slot
// and the scheduler refills from the admission queue synchronously, so the
// replacement's admitted event must be recorded by the abort itself, not
// deferred to the next tick (where a block/abort of the replacement could be
// logged first, inverting the lifecycle).
func TestAbortRefillEmitsAdmission(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5, MPL: 1})

	v1, err := m.Submit(SubmitRequest{Label: "q1", SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Submit(SubmitRequest{Label: "q2", SQL: "SELECT COUNT(*) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != "queued" {
		t.Fatalf("q2 status = %q, want queued (MPL=1)", v2.Status)
	}
	if err := m.Abort(v1.ID); err != nil {
		t.Fatal(err)
	}
	wantPrefix(t, eventTypes(m, v2.ID), []string{EventSubmitted, EventQueued, EventAdmitted}, v2.ID)
	// The lifecycle must hold even when the very next action targets the
	// freshly admitted query.
	if err := m.Block(v2.ID); err != nil {
		t.Fatal(err)
	}
	wantPrefix(t, eventTypes(m, v2.ID),
		[]string{EventSubmitted, EventQueued, EventAdmitted, EventBlocked}, v2.ID)
}

// A scheduled arrival that lands, is admitted, and finishes within one tick
// must record submitted+admitted before finished.
func TestSameTickArrivalFinishEvents(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 4)
	m := manual(t, db, sched.Config{RateC: 100, Quantum: 10})

	v, err := m.Submit(SubmitRequest{Label: "q1", SQL: "SELECT SUM(a) FROM t1", Delay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != "scheduled" {
		t.Fatalf("q1 status = %q, want scheduled", v.Status)
	}
	if err := m.Advance(10); err != nil {
		t.Fatal(err)
	}
	p, err := m.Progress(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "finished" {
		t.Fatalf("q1 status = %q, want finished", p.Status)
	}
	wantPrefix(t, eventTypes(m, v.ID),
		[]string{EventScheduled, EventSubmitted, EventAdmitted, EventFinished}, v.ID)
}
