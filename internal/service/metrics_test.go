package service

import (
	"strings"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// TestReadPathMetricsExposition: the read-path counters, snapshot gauges,
// and poll-latency histogram render in the Prometheus text format with
// monotone cumulative buckets ending at +Inf.
func TestReadPathMetricsExposition(t *testing.T) {
	m := newMetrics()
	m.snapshotInfo = func() (uint64, float64) { return 7, 0.125 }
	m.incOwnerRequest()
	m.incCacheMiss()
	m.incCacheHit()
	m.incCacheHit()
	m.observePoll(2e-5) // lands in a finite bucket
	m.observePoll(123)  // lands only in +Inf

	text := m.Text()
	assertPrometheusText(t, text)
	for _, want := range []string{
		"mqpi_owner_requests_total 1",
		"mqpi_poll_estimate_cache_hits_total 2",
		"mqpi_poll_estimate_cache_misses_total 1",
		"mqpi_snapshot_epoch 7",
		"mqpi_snapshot_age_seconds 0.125",
		`mqpi_poll_duration_seconds_bucket{le="+Inf"} 2`,
		"mqpi_poll_duration_seconds_count 2",
		"mqpi_poll_duration_seconds_sum 123.00002",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// The overflow observation must not leak into the last finite bucket.
	if !strings.Contains(text, `mqpi_poll_duration_seconds_bucket{le="0.1"} 1`+"\n") {
		t.Errorf("finite buckets should hold exactly 1 observation:\n%s", text)
	}
}

// TestBuildInfoExposition: SetBuildInfo renders a constant-1 mqpi_build_info
// gauge with deterministically ordered (sorted) labels; before the call the
// gauge is absent rather than rendered with an empty label set.
func TestBuildInfoExposition(t *testing.T) {
	m := newMetrics()
	if strings.Contains(m.Text(), "mqpi_build_info") {
		t.Errorf("build info rendered before SetBuildInfo:\n%s", m.Text())
	}
	m.SetBuildInfo(map[string]string{"version": "dev", "go": "go1.x"})
	text := m.Text()
	assertPrometheusText(t, text)
	want := `mqpi_build_info{go="go1.x",version="dev"} 1` + "\n"
	if !strings.Contains(text, want) {
		t.Errorf("metrics missing %q:\n%s", want, text)
	}
}

// TestMetricsSnapshotGaugesUnwired: a Metrics without a Manager omits the
// snapshot gauges instead of rendering garbage.
func TestMetricsSnapshotGaugesUnwired(t *testing.T) {
	m := newMetrics()
	text := m.Text()
	assertPrometheusText(t, text)
	if strings.Contains(text, "mqpi_snapshot_epoch") || strings.Contains(text, "mqpi_snapshot_age_seconds") {
		t.Errorf("unwired metrics render snapshot gauges:\n%s", text)
	}
}

// TestManagerWiresReadPathMetrics: a real manager exports the snapshot
// gauges and counts cache traffic end to end through the scrape surface.
func TestManagerWiresReadPathMetrics(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	v, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Progress(v.ID); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := m.Overview(); err != nil { // hit (same epoch)
		t.Fatal(err)
	}
	text := m.Metrics().Text()
	assertPrometheusText(t, text)
	for _, want := range []string{
		"mqpi_poll_estimate_cache_hits_total 1",
		"mqpi_poll_estimate_cache_misses_total 1",
		"mqpi_owner_requests_total 2", // submit + advance; the polls add nothing
		"mqpi_poll_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Epoch gauge reflects the published snapshot (1 from New + 2 mutations).
	if !strings.Contains(text, "mqpi_snapshot_epoch 3\n") {
		t.Errorf("snapshot epoch gauge wrong:\n%s", text)
	}
	if !strings.Contains(text, "mqpi_snapshot_age_seconds ") {
		t.Errorf("snapshot age gauge missing:\n%s", text)
	}
}
