package service

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mqpi/internal/core"
)

// histogram is a fixed-bucket histogram in the Prometheus style: counts[i]
// counts observations ≤ bounds[i], the final slot is the +Inf overflow.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogram(bounds ...float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Metrics is the service's observability state, rendered in the Prometheus
// text exposition format by Text. All methods are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	submitted uint64
	finished  uint64
	failed    uint64
	aborted   uint64
	blocked   uint64
	unblocked uint64

	ownerRequests uint64 // operations marshalled onto the owner goroutine
	cacheHits     uint64 // polls served from the per-epoch estimate cache
	cacheMisses   uint64 // polls that computed their epoch's estimates
	execBusy      uint64 // Exec calls bounced with ErrBusy (deadline exceeded)

	advanceBackstops uint64 // advances truncated by MaxTicksPerAdvance (debt carried)

	tickRounds uint64 // cumulative allocate→execute→settle rounds across ticks
	workers    int    // configured execute-phase worker count

	foldAttaches   uint64 // lifetime shared-scan attachments (monotonic)
	foldPagesSaved uint64 // lifetime page reads avoided by folding (monotonic)
	foldGroups     int    // live fold groups
	foldMembers    int    // live attached members

	estimatorMode    string             // non-stage estimate-plane mode ("" = stage, no ensemble)
	estimatorWeights map[string]float64 // last published blend weights by member
	bandWithin       uint64             // finishes whose true time fell inside the reported band
	bandFinishes     uint64             // finishes with a reported band

	buildInfo map[string]string // static build labels for mqpi_build_info ("" = unset)

	runningDepth   int
	blockedDepth   int
	queuedDepth    int
	scheduledDepth int

	tickDur  *histogram // wall seconds per scheduler tick
	execDur  *histogram // wall seconds in the tick's execute phase
	revision *histogram // |Δ predicted finish| per tick, virtual seconds
	pollDur  *histogram // wall seconds per progress/overview poll

	// snapshotInfo, when wired by the Manager, reports the published
	// read-path snapshot's epoch and wall-clock age in seconds. It must not
	// block (the Manager wires an atomic load) — Text calls it under mu.
	snapshotInfo func() (epoch uint64, ageSeconds float64)
}

func newMetrics() *Metrics {
	return &Metrics{
		tickDur:  newHistogram(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1),
		execDur:  newHistogram(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1),
		revision: newHistogram(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300),
		pollDur:  newHistogram(1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1),
	}
}

func (m *Metrics) incSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *Metrics) incFinished()  { m.mu.Lock(); m.finished++; m.mu.Unlock() }
func (m *Metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *Metrics) incAborted()   { m.mu.Lock(); m.aborted++; m.mu.Unlock() }
func (m *Metrics) incBlocked()   { m.mu.Lock(); m.blocked++; m.mu.Unlock() }
func (m *Metrics) incUnblocked() { m.mu.Lock(); m.unblocked++; m.mu.Unlock() }

func (m *Metrics) incOwnerRequest() { m.mu.Lock(); m.ownerRequests++; m.mu.Unlock() }
func (m *Metrics) incCacheHit()     { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) incCacheMiss()    { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *Metrics) incExecBusy()     { m.mu.Lock(); m.execBusy++; m.mu.Unlock() }

func (m *Metrics) incAdvanceBackstop() { m.mu.Lock(); m.advanceBackstops++; m.mu.Unlock() }

// advanceBackstopCount reports how many advances hit the tick backstop; the
// regression test for the debt-carry fix reads it directly.
func (m *Metrics) advanceBackstopCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.advanceBackstops
}

func (m *Metrics) setWorkers(n int) { m.mu.Lock(); m.workers = n; m.mu.Unlock() }

// setEstimator records the non-stage estimate-plane mode; the ensemble
// weight gauges and band-coverage counters are exposed only once this is set
// (stage mode runs no ensemble, and its exposition stays byte-stable).
func (m *Metrics) setEstimator(mode string) {
	m.mu.Lock()
	m.estimatorMode = mode
	m.mu.Unlock()
}

// setEstimatorStats installs the latest ensemble blend weights and the
// lifetime band-coverage counters. The counter inputs are absolute totals
// maintained by the calibration accumulator, so the exposed counters stay
// Prometheus-monotonic.
func (m *Metrics) setEstimatorStats(weights map[string]float64, within, finishes uint64) {
	m.mu.Lock()
	m.estimatorWeights = weights
	m.bandWithin, m.bandFinishes = within, finishes
	m.mu.Unlock()
}

// SetBuildInfo installs the static labels rendered on the mqpi_build_info
// gauge (version, go runtime, ...), identifying the binary from /metrics
// alone. Call once at startup, before the first scrape.
func (m *Metrics) SetBuildInfo(labels map[string]string) {
	m.mu.Lock()
	m.buildInfo = labels
	m.mu.Unlock()
}

// setFoldStats installs the scheduler's folding summary. The counter inputs
// are lifetime totals maintained by the fold registry (monotonic across
// SetFold toggles), so storing absolute values keeps the exposed counters
// Prometheus-correct.
func (m *Metrics) setFoldStats(attaches, pagesSaved uint64, groups, members int) {
	m.mu.Lock()
	m.foldAttaches, m.foldPagesSaved = attaches, pagesSaved
	m.foldGroups, m.foldMembers = groups, members
	m.mu.Unlock()
}

// observeExecutePhase records one tick's execute-phase wall time and how many
// allocate→execute→settle rounds the tick needed (>1 means the
// work-conserving redistribution loop re-ran).
func (m *Metrics) observeExecutePhase(seconds float64, rounds int) {
	m.mu.Lock()
	m.execDur.observe(seconds)
	m.tickRounds += uint64(rounds)
	m.mu.Unlock()
}

func (m *Metrics) observePoll(seconds float64) {
	m.mu.Lock()
	m.pollDur.observe(seconds)
	m.mu.Unlock()
}

// readStats returns the read-path counters; tests use it to pin the two
// tentpole invariants (reads bypass the owner, estimates are singleflighted).
func (m *Metrics) readStats() (ownerRequests, cacheHits, cacheMisses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ownerRequests, m.cacheHits, m.cacheMisses
}

func (m *Metrics) observeTick(seconds float64) {
	m.mu.Lock()
	m.tickDur.observe(seconds)
	m.mu.Unlock()
}

func (m *Metrics) observeRevision(seconds float64) {
	m.mu.Lock()
	m.revision.observe(seconds)
	m.mu.Unlock()
}

func (m *Metrics) setDepths(running, blocked, queued, scheduled int) {
	m.mu.Lock()
	m.runningDepth, m.blockedDepth, m.queuedDepth, m.scheduledDepth = running, blocked, queued, scheduled
	m.mu.Unlock()
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeScalar(b *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, fmtFloat(v))
}

func writeHistogram(b *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, fmtFloat(h.sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.count)
}

// Text renders the metrics in the Prometheus text exposition format
// (version 0.0.4), ready to be scraped from /metrics.
func (m *Metrics) Text() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	writeScalar(&b, "mqpi_queries_submitted_total", "counter", "Queries accepted for execution (immediate or scheduled).", float64(m.submitted))
	writeScalar(&b, "mqpi_queries_finished_total", "counter", "Queries that completed successfully.", float64(m.finished))
	writeScalar(&b, "mqpi_queries_failed_total", "counter", "Queries terminated by an execution error.", float64(m.failed))
	writeScalar(&b, "mqpi_queries_aborted_total", "counter", "Queries killed by a client or a planner.", float64(m.aborted))
	writeScalar(&b, "mqpi_queries_blocked_total", "counter", "Block operations applied.", float64(m.blocked))
	writeScalar(&b, "mqpi_queries_unblocked_total", "counter", "Unblock operations applied.", float64(m.unblocked))
	writeScalar(&b, "mqpi_queries_running", "gauge", "Admitted queries currently receiving capacity.", float64(m.runningDepth))
	writeScalar(&b, "mqpi_queries_blocked", "gauge", "Admitted queries currently blocked.", float64(m.blockedDepth))
	writeScalar(&b, "mqpi_queries_queued", "gauge", "Admission-queue depth.", float64(m.queuedDepth))
	writeScalar(&b, "mqpi_queries_scheduled", "gauge", "Future arrivals not yet submitted.", float64(m.scheduledDepth))
	writeScalar(&b, "mqpi_owner_requests_total", "counter", "Operations marshalled onto the owner goroutine (mutations only; reads bypass it).", float64(m.ownerRequests))
	writeScalar(&b, "mqpi_poll_estimate_cache_hits_total", "counter", "Polls that shared a cached per-epoch estimate computation.", float64(m.cacheHits))
	writeScalar(&b, "mqpi_poll_estimate_cache_misses_total", "counter", "Polls that computed their epoch's estimates.", float64(m.cacheMisses))
	writeScalar(&b, "mqpi_exec_workers", "gauge", "Execute-phase worker count (1 = inline serial stepping).", float64(m.workers))
	writeScalar(&b, "mqpi_exec_deadline_busy_total", "counter", "Exec statements rejected with 409 because the owner was busy past the deadline.", float64(m.execBusy))
	writeScalar(&b, "mqpi_tick_rounds_total", "counter", "Allocate/execute/settle rounds across all ticks (redistribution re-runs included).", float64(m.tickRounds))
	writeScalar(&b, "mqpi_fold_attach_total", "counter", "Queries attached to a shared scan cursor.", float64(m.foldAttaches))
	writeScalar(&b, "mqpi_fold_pages_saved_total", "counter", "Page reads avoided because a fold member rode a page another member fetched.", float64(m.foldPagesSaved))
	writeScalar(&b, "mqpi_fold_groups", "gauge", "Live shared-scan groups.", float64(m.foldGroups))
	writeScalar(&b, "mqpi_fold_members", "gauge", "Queries currently riding a shared cursor.", float64(m.foldMembers))
	writeScalar(&b, "mqpi_advance_backstop_total", "counter", "Advances truncated by MaxTicksPerAdvance; the residual virtual-time debt is carried into later advances.", float64(m.advanceBackstops))
	if m.estimatorMode != "" {
		fmt.Fprintf(&b, "# HELP mqpi_estimator_weight Current ensemble blend weight per estimator member.\n# TYPE mqpi_estimator_weight gauge\n")
		for _, it := range core.SortedWeights(m.estimatorWeights) {
			fmt.Fprintf(&b, "mqpi_estimator_weight{member=%q} %s\n", it.Member, fmtFloat(it.Weight))
		}
		writeScalar(&b, "mqpi_eta_band_finishes_total", "counter", "Query finishes for which an uncertainty band had been reported.", float64(m.bandFinishes))
		writeScalar(&b, "mqpi_eta_band_within_total", "counter", "Query finishes whose true finish time fell inside the reported band.", float64(m.bandWithin))
	}
	if m.buildInfo != nil {
		fmt.Fprintf(&b, "# HELP mqpi_build_info Build metadata; the gauge is constant 1 and the labels identify the binary.\n# TYPE mqpi_build_info gauge\n")
		keys := make([]string, 0, len(m.buildInfo))
		for k := range m.buildInfo {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("mqpi_build_info{")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, m.buildInfo[k])
		}
		b.WriteString("} 1\n")
	}
	if m.snapshotInfo != nil {
		epoch, age := m.snapshotInfo()
		writeScalar(&b, "mqpi_snapshot_epoch", "gauge", "Epoch of the published read-path snapshot.", float64(epoch))
		writeScalar(&b, "mqpi_snapshot_age_seconds", "gauge", "Wall-clock age of the published read-path snapshot.", age)
	}
	writeHistogram(&b, "mqpi_tick_duration_seconds", "Wall-clock duration of one scheduler tick.", m.tickDur)
	writeHistogram(&b, "mqpi_execute_phase_seconds", "Wall-clock duration of the parallel execute phase within one tick.", m.execDur)
	writeHistogram(&b, "mqpi_estimate_revision_seconds", "Per-tick change of a query's predicted finish time, in virtual seconds.", m.revision)
	writeHistogram(&b, "mqpi_poll_duration_seconds", "Wall-clock latency of one progress or overview poll on the lock-free read path.", m.pollDur)
	return b.String()
}
