package service

import (
	"sync"
	"time"

	"mqpi/internal/core"
	"mqpi/internal/sched"
)

// Snapshot is the immutable, epoch-stamped view of the whole service that the
// owner goroutine publishes (through an atomic pointer) after every mutation:
// each tick batch, submission, block/unblock/abort, and priority change.
// Readers load the latest snapshot and derive whatever view they need on
// their own goroutine — nothing in a Snapshot aliases live scheduler state,
// so no locking is required and polls never stall the scheduler.
//
// Epoch increases by exactly one per publication, which gives the estimate
// cache its invalidation rule: derived estimates are valid for precisely one
// epoch, and a changed epoch means the world changed.
type Snapshot struct {
	Epoch     uint64
	Published time.Time // wall-clock publication time (snapshot age = now - Published)
	Sched     sched.Snapshot
	TimeScale float64
	Arrivals  *core.ArrivalModel // immutable after New; shared, never written
	// Estimator is the configured estimate-plane mode (core.EstimatorModes).
	Estimator string
	// Calib is the ensemble calibration state as of this epoch: rolling
	// per-member errors and speed EWMAs, copied at publication so every
	// reader of this epoch derives identical estimates. Zero in stage mode.
	Calib core.EnsembleState
}

// estimateInput converts the snapshot to the pure-value input of the §2.2–2.4
// estimators.
func (s *Snapshot) estimateInput() core.EstimateInput {
	return core.EstimateInput{
		Running:  s.Sched.StatesRunning(),
		Queued:   s.Sched.StatesQueued(),
		MPL:      s.Sched.MPL,
		RateC:    s.Sched.RateC,
		Speeds:   s.Sched.Speeds(),
		Arrivals: s.Arrivals,
	}
}

// estimates derives the per-query estimate bundle and quiescent ETA from the
// snapshot alone — a pure function, safe on any goroutine. It is the stateless
// oracle the incremental read path is tested against; the live read path goes
// through Manager.estimatesFor, which maintains an incremental stage structure
// across epochs and produces bit-identical results.
func (s *Snapshot) estimates() viewEstimates {
	est, err := core.NewEstimator(s.Estimator)
	if err != nil {
		panic(err) // published snapshots only ever carry validated modes
	}
	out := est.Estimates(s.estimateInput(), s.Calib)
	return viewEstimates{perQuery: out.PerQuery, quiescent: out.Quiescent, weights: out.Weights}
}

// viewEstimates is everything the read path derives from one snapshot: the
// §2.2–2.4 estimate bundle plus the quiescent ETA. Immutable once published
// through the cache entry's done channel.
type viewEstimates struct {
	perQuery  map[int]core.Estimate
	quiescent float64 // seconds until all known work drains
	// weights maps ensemble member name to its blend weight this epoch (nil
	// in stage mode, which runs no ensemble).
	weights map[string]float64
}

// estimateCache shares one estimate computation per snapshot epoch among all
// concurrent pollers (singleflight): the first caller at a new epoch computes
// on its own goroutine while later callers of the same epoch wait on the
// entry's done channel and then share the identical immutable result. The
// cache holds a single slot — the newest epoch wins — because readers always
// load the latest published snapshot; a straggler that raced a publication
// and still holds the previous epoch simply computes its own result without
// disturbing the slot.
type estimateCache struct {
	mu  sync.Mutex
	cur *estEntry
}

type estEntry struct {
	epoch uint64
	done  chan struct{} // closed once est is filled in
	est   viewEstimates
}

// get returns the estimate bundle for the given epoch, invoking compute at
// most once per epoch among concurrent callers. hit reports whether the
// result was shared from another caller's (possibly in-flight) computation.
func (c *estimateCache) get(epoch uint64, compute func() viewEstimates) (est viewEstimates, hit bool) {
	c.mu.Lock()
	if e := c.cur; e != nil && e.epoch == epoch {
		c.mu.Unlock()
		<-e.done
		return e.est, true
	}
	e := &estEntry{epoch: epoch, done: make(chan struct{})}
	if c.cur == nil || epoch > c.cur.epoch {
		c.cur = e
	}
	c.mu.Unlock()
	e.est = compute()
	close(e.done)
	return e.est, false
}
