package service

import (
	"fmt"
	"math"
	"testing"

	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

func sameEstimate(a, b core.Estimate) bool {
	return math.Float64bits(a.SingleQuery) == math.Float64bits(b.SingleQuery) &&
		math.Float64bits(a.MultiQuery) == math.Float64bits(b.MultiQuery)
}

// checkIncrementalEstimates compares the manager's live estimate path — the
// incremental stage structure behind estimatesFor — against the stateless
// oracle Snapshot.estimates, bit for bit, on the current snapshot.
func checkIncrementalEstimates(t *testing.T, m *Manager, step string) {
	t.Helper()
	snap, err := m.read()
	if err != nil {
		t.Fatal(err)
	}
	want := snap.estimates()
	got := m.estimatesFor(snap)
	if math.Float64bits(got.quiescent) != math.Float64bits(want.quiescent) {
		t.Fatalf("%s: quiescent = %v, want %v", step, got.quiescent, want.quiescent)
	}
	if len(got.perQuery) != len(want.perQuery) {
		t.Fatalf("%s: %d estimates, want %d", step, len(got.perQuery), len(want.perQuery))
	}
	for id, w := range want.perQuery {
		if g, ok := got.perQuery[id]; !ok || !sameEstimate(g, w) {
			t.Fatalf("%s: query %d estimate = %+v, want %+v", step, id, got.perQuery[id], w)
		}
	}
}

// TestIncrementalEstimatesMatchStateless drives a manager through submission
// bursts, queueing, block/unblock, priority changes, an abort, and thirty
// ticks of drainage, checking after every transition that the incremental
// read path returns exactly — bitwise — what the stateless ComputeEstimates
// oracle returns for the same snapshot. This pins the service-layer half of
// the incremental profile's bit-identity contract (the core half is pinned by
// the differential tests in internal/core, the sim half by invariant I10).
func TestIncrementalEstimatesMatchStateless(t *testing.T) {
	db := engine.Open()
	for i := 0; i < 6; i++ {
		loadTable(t, db, fmt.Sprintf("inc%d", i), 8+4*i)
	}
	m := manual(t, db, sched.Config{
		RateC:   12,
		Quantum: 0.5,
		MPL:     3,
		Weights: map[int]float64{1: 2, 2: 4},
	})

	ids := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		v, err := m.Submit(SubmitRequest{
			Label:    fmt.Sprintf("q%d", i),
			SQL:      fmt.Sprintf("SELECT SUM(a) FROM inc%d", i),
			Priority: i % 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		// With MPL 3, submissions 4–6 queue up: the non-empty-queue fallback
		// (event-stepped simulation) is exercised alongside the fast path.
		checkIncrementalEstimates(t, m, fmt.Sprintf("submit %d", i))
	}

	for step := 0; step < 30; step++ {
		if err := m.Advance(0.5); err != nil {
			t.Fatal(err)
		}
		checkIncrementalEstimates(t, m, fmt.Sprintf("tick %d", step))
		switch step {
		case 2:
			if err := m.Block(ids[0]); err != nil {
				t.Fatal(err)
			}
			checkIncrementalEstimates(t, m, "block")
		case 4:
			if err := m.SetPriority(ids[1], 2); err != nil {
				t.Fatal(err)
			}
			checkIncrementalEstimates(t, m, "priority")
		case 6:
			if err := m.Unblock(ids[0]); err != nil {
				t.Fatal(err)
			}
			checkIncrementalEstimates(t, m, "unblock")
		case 8:
			// The target may already have finished depending on the weight
			// mix; either way the post-action snapshot must stay consistent.
			_ = m.Abort(ids[2])
			checkIncrementalEstimates(t, m, "abort")
		}
	}
}

// TestIncrementalEstimatesArrivalsFallback pins the fallback contract: with a
// §2.4 arrival model configured, the incremental estimator must defer to the
// stateless event-stepped simulation verbatim.
func TestIncrementalEstimatesArrivalsFallback(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "arr0", 10)
	loadTable(t, db, "arr1", 14)
	m := New(db, Config{
		Sched:     sched.Config{RateC: 10, Quantum: 0.5, MPL: 2},
		TickEvery: -1,
		Arrivals:  &core.ArrivalModel{Lambda: 0.5, AvgCost: 8, AvgWeight: 1},
	})
	t.Cleanup(m.Close)

	for i, tbl := range []string{"arr0", "arr1"} {
		if _, err := m.Submit(SubmitRequest{
			Label: fmt.Sprintf("a%d", i),
			SQL:   "SELECT SUM(a) FROM " + tbl,
		}); err != nil {
			t.Fatal(err)
		}
		checkIncrementalEstimates(t, m, fmt.Sprintf("submit %d", i))
	}
	for step := 0; step < 6; step++ {
		if err := m.Advance(0.5); err != nil {
			t.Fatal(err)
		}
		checkIncrementalEstimates(t, m, fmt.Sprintf("tick %d", step))
	}
}
