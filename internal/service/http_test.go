package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	db := engine.Open()
	m := New(db, Config{Sched: sched.Config{RateC: 10, Quantum: 0.5}, TickEvery: -1})
	t.Cleanup(m.Close)
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(ts.Close)
	return ts, m
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
}

// TestHTTPSession drives a full client session over the wire: load data,
// submit three queries, watch multi-query estimates revise as competitors
// finish, and exercise block/priority/planner/diagram/metrics endpoints.
func TestHTTPSession(t *testing.T) {
	ts, _ := newTestServer(t)

	// Load three tables of different sizes through /exec.
	for i, rows := range []int{64 * 5, 64 * 10, 64 * 20} {
		doJSON(t, "POST", ts.URL+"/exec",
			map[string]string{"sql": fmt.Sprintf("CREATE TABLE t%d (a BIGINT)", i)}, 200, nil)
		var vals []string
		for r := 0; r < rows; r++ {
			vals = append(vals, fmt.Sprintf("(%d)", r))
		}
		var res struct {
			Rows int `json:"rows"`
		}
		doJSON(t, "POST", ts.URL+"/exec",
			map[string]string{"sql": fmt.Sprintf("INSERT INTO t%d VALUES %s", i, strings.Join(vals, ","))}, 200, &res)
		if res.Rows != rows {
			t.Fatalf("insert returned %d rows, want %d", res.Rows, rows)
		}
	}

	// Submit three concurrent queries.
	var views [3]QueryView
	for i := range views {
		doJSON(t, "POST", ts.URL+"/queries", SubmitRequest{
			Label: fmt.Sprintf("q%d", i), SQL: fmt.Sprintf("SELECT SUM(a) FROM t%d", i), Priority: i,
		}, http.StatusCreated, &views[i])
		if views[i].Status != "running" {
			t.Fatalf("q%d = %+v", i, views[i])
		}
	}

	// One tick in: everyone has an estimate.
	var ov Overview
	doJSON(t, "POST", ts.URL+"/advance", map[string]float64{"seconds": 0.5}, 200, &ov)
	if len(ov.Running) != 3 {
		t.Fatalf("running = %d, want 3", len(ov.Running))
	}
	eta0 := make(map[int]float64)
	for _, v := range ov.Running {
		if v.MultiETA <= 0 {
			t.Errorf("q%d multi ETA = %g", v.ID, v.MultiETA)
		}
		if v.MultiETA < v.SingleETA {
			t.Errorf("q%d multi ETA %g < single ETA %g under contention", v.ID, v.MultiETA, v.SingleETA)
		}
		eta0[v.ID] = float64(v.MultiETA)
	}

	// Run until the smallest finishes; survivors' ETAs must have revised
	// downward relative to naive (eta0 - elapsed): they inherit capacity.
	doJSON(t, "POST", ts.URL+"/advance", map[string]float64{"seconds": 3}, 200, &ov)
	if len(ov.Finished) == 0 {
		t.Fatalf("no query finished by t=3.5: %+v", ov)
	}
	for _, v := range ov.Running {
		naive := eta0[v.ID] - 3
		if float64(v.MultiETA) > naive+0.25 {
			t.Errorf("q%d ETA %g did not improve vs naive %g after a competitor finished", v.ID, v.MultiETA, naive)
		}
	}

	// Per-query view and events for the largest query.
	big := views[2].ID
	var qv QueryView
	doJSON(t, "GET", fmt.Sprintf("%s/queries/%d", ts.URL, big), nil, 200, &qv)
	if qv.Fraction <= 0 || qv.Fraction >= 1 {
		t.Errorf("big query fraction = %g", qv.Fraction)
	}
	var evs struct {
		Events []Event `json:"events"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/events?id=%d", ts.URL, big), nil, 200, &evs)
	if len(evs.Events) == 0 || evs.Events[0].Type != EventSubmitted {
		t.Errorf("big query events = %+v", evs.Events)
	}

	// Planners over the live state.
	var plan map[string]any
	doJSON(t, "GET", ts.URL+"/plan/maintenance?deadline=1&mode=total-cost", nil, 200, &plan)
	if _, ok := plan["abort"]; !ok {
		t.Errorf("maintenance plan = %v", plan)
	}
	if len(ov.Running) >= 2 {
		doJSON(t, "GET", fmt.Sprintf("%s/plan/speedup?target=%d&victims=1", ts.URL, big), nil, 200, &plan)
		doJSON(t, "GET", ts.URL+"/plan/speedup-others", nil, 200, &plan)
	}

	// Block + priority + unblock round trip.
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/block", ts.URL, big), nil, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/priority", ts.URL, big), map[string]int{"priority": 5}, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/unblock", ts.URL, big), nil, 200, nil)

	// Diagram renders as plain text.
	resp, err := http.Get(ts.URL + "/diagram?width=40")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("diagram: status %d, type %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "Q") {
		t.Errorf("diagram body:\n%s", body)
	}

	// Drain and check /metrics.
	doJSON(t, "POST", ts.URL+"/advance", map[string]float64{"seconds": 30}, 200, &ov)
	if len(ov.Running) != 0 || len(ov.Finished) != 3 {
		t.Fatalf("final overview: %d running, %d finished", len(ov.Running), len(ov.Finished))
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics content type = %s", resp.Header.Get("Content-Type"))
	}
	assertPrometheusText(t, string(body))
	for _, want := range []string{"mqpi_queries_submitted_total 3", "mqpi_queries_finished_total 3"} {
		if !strings.Contains(string(body), want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/queries/999", nil, http.StatusNotFound},
		{"GET", "/queries/abc", nil, http.StatusBadRequest},
		{"POST", "/queries/999/block", nil, http.StatusNotFound},
		{"POST", "/queries", map[string]string{"sql": ""}, http.StatusBadRequest},
		{"POST", "/queries", map[string]string{"sql": "SELECT FROM WHERE"}, http.StatusBadRequest},
		{"POST", "/queries", map[string]string{"nope": "x"}, http.StatusBadRequest},
		{"POST", "/advance", map[string]float64{"seconds": -1}, http.StatusBadRequest},
		{"GET", "/plan/speedup", nil, http.StatusBadRequest},
		{"GET", "/plan/maintenance?deadline=5&mode=bogus", nil, http.StatusBadRequest},
		{"GET", "/nope", nil, http.StatusNotFound},
		{"DELETE", "/queries", nil, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		var errBody map[string]string
		out := any(&errBody)
		if c.want == http.StatusMethodNotAllowed || c.path == "/nope" {
			out = nil // mux-generated errors are not JSON
		}
		doJSON(t, c.method, ts.URL+c.path, c.body, c.want, out)
	}
}

func TestHTTPClosedManager(t *testing.T) {
	db := engine.Open()
	m := New(db, Config{Sched: sched.Config{RateC: 10, Quantum: 0.5}, TickEvery: -1})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()
	m.Close()
	var errBody map[string]string
	doJSON(t, "GET", ts.URL+"/queries", nil, http.StatusServiceUnavailable, &errBody)
	if errBody["error"] == "" {
		t.Error("no error message in 503 body")
	}
}
