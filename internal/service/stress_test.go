package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// TestReadPathStressRace pins the safety of the lock-free read path under
// -race (make ci runs this package under the detector): 32 reader goroutines
// hammer Progress, Overview, Events, Diagram, planners, and the metrics
// scrape while the wall-clock ticker advances virtual time and writer
// goroutines submit, block, unblock, re-prioritize, and abort queries —
// including scheduled future arrivals.
func TestReadPathStressRace(t *testing.T) {
	db := engine.Open()
	for i := 0; i < 4; i++ {
		loadTable(t, db, fmt.Sprintf("s%d", i), 12)
	}
	m := New(db, Config{
		Sched:     sched.Config{RateC: 5, Quantum: 0.25, MPL: 3},
		TickEvery: time.Millisecond,
		TimeScale: 50,
	})
	defer m.Close()

	const (
		writers          = 2
		readers          = 32
		queriesPerWriter = 25
	)
	var lastID atomic.Int64
	stop := make(chan struct{})

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for k := 0; k < queriesPerWriter; k++ {
				v, err := m.Submit(SubmitRequest{
					Label:    fmt.Sprintf("w%d-%d", w, k),
					SQL:      fmt.Sprintf("SELECT SUM(a) FROM s%d", (w+k)%4),
					Priority: k % 3,
					Delay:    float64(k%3) * 0.05, // mix immediate and scheduled arrivals
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				lastID.Store(int64(v.ID))
				switch k % 5 {
				case 1:
					_ = m.Block(v.ID) // may race a finish: failures are fine
					_ = m.Unblock(v.ID)
				case 2:
					_ = m.Abort(v.ID)
				case 3:
					_ = m.SetPriority(v.ID, (k+1)%3)
				}
				time.Sleep(300 * time.Microsecond)
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := int(lastID.Load())
				if id == 0 {
					id = 1
				}
				switch (i + r) % 6 {
				case 0:
					if _, err := m.Progress(id); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("progress: %v", err)
						return
					}
				case 1:
					if _, err := m.Overview(); err != nil {
						t.Errorf("overview: %v", err)
						return
					}
				case 2:
					m.Events(0)
				case 3:
					if _, err := m.Diagram(40); err != nil {
						t.Errorf("diagram: %v", err)
						return
					}
				case 4:
					_ = m.Metrics().Text()
				case 5:
					// Domain errors (e.g. fewer than two runnable queries)
					// are expected while the workload churns; only a closed
					// manager would be a bug here.
					if _, err := m.SpeedUpOthers(); errors.Is(err, ErrClosed) {
						t.Errorf("speedup-others: %v", err)
						return
					}
				}
				// Yield so 32 spinning pollers don't starve the writers and
				// ticker on small GOMAXPROCS (CI runs this under -race on a
				// single core).
				runtime.Gosched()
				if i%8 == 7 {
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(r)
	}

	writerWG.Wait()
	time.Sleep(50 * time.Millisecond) // let readers overlap the tail of the workload
	close(stop)
	readerWG.Wait()

	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Now <= 0 {
		t.Error("ticker never advanced the virtual clock under load")
	}
	_, hits, misses := m.metrics.readStats()
	if hits+misses == 0 {
		t.Error("read path never computed an estimate")
	}
	// The whole point of the refactor: far more polls than estimate
	// computations. Every miss is one EstimateAll; everything else shared.
	if misses > 0 && hits == 0 {
		t.Errorf("cache never shared a computation: %d misses, %d hits", misses, hits)
	}
	text := m.Metrics().Text()
	assertPrometheusText(t, text)
}
