package service

import (
	"encoding/json"
	"math"

	"mqpi/internal/core"
	"mqpi/internal/sched"
)

// Seconds is a duration in (virtual) seconds that marshals non-finite
// values as JSON null instead of breaking the encoder.
type Seconds float64

// MarshalJSON renders NaN and ±Inf as null.
func (s Seconds) MarshalJSON() ([]byte, error) {
	f := float64(s)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// QueryView is the client-facing snapshot of one query: identity, lifecycle
// timestamps, work accounting, and the two competing remaining-time
// estimates. All times are in virtual seconds.
type QueryView struct {
	ID    int    `json:"id"`
	Label string `json:"label,omitempty"`
	SQL   string `json:"sql,omitempty"`
	// Now is the virtual clock at the instant this view was derived. Single-
	// query polls carry it so a client can audit predictions (predicted
	// finish = now + ETA) against the actual finish time later; views
	// embedded in an Overview omit it in favor of the overview's own Now.
	Now        Seconds `json:"now,omitempty"`
	Priority   int     `json:"priority"`
	Status     string  `json:"status"`
	SubmitTime float64 `json:"submit_time"`
	StartTime  float64 `json:"start_time"`
	FinishTime float64 `json:"finish_time"`
	Done       float64 `json:"done_u"`      // e_i: work completed, in U's
	Remaining  float64 `json:"remaining_u"` // c_i: refined remaining cost, in U's
	Fraction   float64 `json:"fraction"`    // done/(done+remaining), in [0, 1]
	Speed      float64 `json:"speed_ups"`   // observed speed, U/s
	Weight     float64 `json:"weight"`
	// Credit is the scheduler's accrued balance for the query in U's:
	// positive while service is banked ahead of an indivisible chunk,
	// negative while a chunk's overshoot is being paid down. It explains why
	// a running query may briefly progress faster or slower than its weight
	// share implies.
	Credit float64 `json:"credit_u"`
	// Cost is the engine-cost plane in U's: physical work after shared-scan
	// deduplication. Equal to Done unless the query rode a shared cursor.
	Cost float64 `json:"cost_u"`
	// FoldGroup is the shared-scan group the query currently rides (omitted
	// when solo). Members of one group advance in lockstep over one cursor.
	FoldGroup int     `json:"fold_group,omitempty"`
	SingleETA Seconds `json:"single_query_eta"` // t = c/s (null if unobservable)
	MultiETA  Seconds `json:"multi_query_eta"`  // stage-model / blended estimate
	// ETALow/ETAHigh bound the estimator's uncertainty band around MultiETA.
	// Degenerate (equal to MultiETA) under the stage estimator; ensemble
	// modes widen it by member spread and calibrated rolling error.
	ETALow  Seconds `json:"eta_low"`
	ETAHigh Seconds `json:"eta_high"`
	Err     string  `json:"error,omitempty"`
}

// FoldView summarizes shared-scan folding for the overview: live gauges plus
// lifetime counters (monotonic across fold on/off toggles).
type FoldView struct {
	Enabled    bool     `json:"enabled"`
	Groups     int      `json:"groups"`
	Members    int      `json:"members"`
	Attaches   uint64   `json:"attaches_total"`
	PagesSaved uint64   `json:"pages_saved_total"`
	Tables     []string `json:"tables,omitempty"` // tables with a live group, sorted
}

// Overview is the whole system's live view.
type Overview struct {
	Now       float64  `json:"now"`   // virtual clock, seconds
	Epoch     uint64   `json:"epoch"` // snapshot epoch this view was derived from
	RateC     float64  `json:"rate_c"`
	MPL       int      `json:"mpl"`
	Quantum   float64  `json:"quantum"`
	Workers   int      `json:"workers"` // execute-phase worker count
	TimeScale float64  `json:"time_scale"`
	Fold      FoldView `json:"fold"`
	// Estimator is the configured estimate-plane mode; Weights carries the
	// ensemble's current blend weights by member (omitted in stage mode).
	Estimator    string             `json:"estimator"`
	Weights      map[string]float64 `json:"estimator_weights,omitempty"`
	QuiescentETA Seconds            `json:"quiescent_eta"` // until ALL known work drains
	Running      []QueryView `json:"running"`
	Queued       []QueryView `json:"queued"`
	Scheduled    []QueryView `json:"scheduled"`
	Finished     []QueryView `json:"finished"`
}

func makeView(info sched.QueryInfo, est core.Estimate) QueryView {
	v := QueryView{
		ID:         info.ID,
		Label:      info.Label,
		SQL:        info.SQL,
		Priority:   info.Priority,
		Status:     info.Status.String(),
		SubmitTime: info.SubmitTime,
		StartTime:  info.StartTime,
		FinishTime: info.FinishTime,
		Done:       info.Done,
		Remaining:  info.Remaining,
		Speed:      info.Speed,
		Weight:     info.Weight,
		Credit:     info.Credit,
		Cost:       info.Cost,
		FoldGroup:  info.FoldGroup,
		Err:        info.Err,
	}
	if total := info.Done + info.Remaining; total > 0 {
		v.Fraction = info.Done / total
	}
	switch info.Status {
	case sched.StatusFinished:
		v.Fraction = 1
		v.SingleETA, v.MultiETA = 0, 0
		v.ETALow, v.ETAHigh = 0, 0
	case sched.StatusAborted, sched.StatusFailed:
		v.SingleETA, v.MultiETA = 0, 0
		v.ETALow, v.ETAHigh = 0, 0
	case sched.StatusScheduled:
		// Not in the system yet: no meaningful estimate.
		v.SingleETA = Seconds(math.Inf(1))
		v.MultiETA = Seconds(math.Inf(1))
		v.ETALow = Seconds(math.Inf(1))
		v.ETAHigh = Seconds(math.Inf(1))
	default:
		v.SingleETA = Seconds(est.SingleQuery)
		v.MultiETA = Seconds(est.MultiQuery)
		v.ETALow = Seconds(est.ETALow)
		v.ETAHigh = Seconds(est.ETAHigh)
	}
	return v
}
