package service

import (
	"fmt"
	"testing"
)

func TestEventLogDefaultCap(t *testing.T) {
	l := newEventLog(0)
	if l.capPerQuery != 128 {
		t.Fatalf("zero cap should default to 128, got %d", l.capPerQuery)
	}
	l = newEventLog(-3)
	if l.capPerQuery != 128 {
		t.Fatalf("negative cap should default to 128, got %d", l.capPerQuery)
	}
}

func TestEventLogRingBound(t *testing.T) {
	const cap = 4
	l := newEventLog(cap)
	for i := 0; i < 10; i++ {
		l.add(float64(i), 1, EventRevised, fmt.Sprintf("rev %d", i))
	}
	got := l.Query(1)
	if len(got) != cap {
		t.Fatalf("ring should retain %d events, got %d", cap, len(got))
	}
	// The newest cap events survive, oldest-first: seqs 7..10.
	for i, ev := range got {
		if want := int64(7 + i); ev.Seq != want {
			t.Errorf("event %d: want seq %d, got %d (%s)", i, want, ev.Seq, ev.Detail)
		}
	}
	if got[0].Detail != "rev 6" || got[cap-1].Detail != "rev 9" {
		t.Errorf("wraparound order wrong: first %q, last %q", got[0].Detail, got[cap-1].Detail)
	}
}

func TestEventLogOrderBeforeWraparound(t *testing.T) {
	l := newEventLog(8)
	for i := 0; i < 5; i++ {
		l.add(float64(i), 7, EventRevised, "")
	}
	got := l.Query(7)
	if len(got) != 5 {
		t.Fatalf("want all 5 events below cap, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("events out of order at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}

func TestEventLogQueryUnknown(t *testing.T) {
	l := newEventLog(4)
	if got := l.Query(42); got != nil {
		t.Fatalf("unknown query should return nil, got %v", got)
	}
}

func TestEventLogAllMergedBySeq(t *testing.T) {
	l := newEventLog(3)
	// Interleave two queries; query 1 wraps its ring, query 2 stays below cap.
	for i := 0; i < 8; i++ {
		l.add(float64(i), 1+i%2, EventRevised, "")
	}
	got := l.All()
	if len(got) != 3+3 { // q1 wrapped to 3, q2 has 4 adds but cap 3
		t.Fatalf("want 6 retained events, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("All() not merged by seq at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
		}
	}
}
