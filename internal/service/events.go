package service

import (
	"sort"
	"sync"
	"time"
)

// Event types recorded in the per-query trace.
const (
	EventSubmitted = "submitted"         // accepted for execution
	EventQueued    = "queued"            // parked in the admission queue (MPL full)
	EventScheduled = "scheduled"         // registered as a future arrival
	EventAdmitted  = "admitted"          // granted an MPL slot, now running
	EventBlocked   = "blocked"           // suspended (a §3.1 victim operation)
	EventUnblocked = "unblocked"         // resumed
	EventPriority  = "priority_changed"  // weight changed via SetPriority
	EventRevised   = "estimate_revised"  // predicted finish time moved materially
	EventFinished  = "finished"          // completed successfully
	EventFailed    = "failed"            // terminated with an execution error
	EventAborted   = "aborted"           // killed by a client or a planner
	EventFold      = "fold_toggled"      // shared-scan folding switched on or off (queryID 0)
)

// Event is one entry in a query's trace. Seq is a global, strictly
// increasing sequence number; Virtual is the scheduler clock in seconds.
type Event struct {
	Seq     int64     `json:"seq"`
	Wall    time.Time `json:"wall"`
	Virtual float64   `json:"virtual"`
	QueryID int       `json:"query"`
	Type    string    `json:"type"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog keeps a bounded ring of events per query: the newest capPerQuery
// events survive, older ones are overwritten in place. Memory is therefore
// O(queries × capPerQuery) no matter how long the service runs or how often
// estimates are revised.
type EventLog struct {
	mu          sync.Mutex
	capPerQuery int
	seq         int64
	rings       map[int]*eventRing
}

type eventRing struct {
	buf  []Event
	next int
	full bool
}

func newEventLog(capPerQuery int) *EventLog {
	if capPerQuery <= 0 {
		capPerQuery = 128
	}
	return &EventLog{capPerQuery: capPerQuery, rings: make(map[int]*eventRing)}
}

func (l *EventLog) add(virtual float64, queryID int, typ, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rings[queryID]
	if r == nil {
		r = &eventRing{buf: make([]Event, 0, l.capPerQuery)}
		l.rings[queryID] = r
	}
	l.seq++
	ev := Event{
		Seq:     l.seq,
		Wall:    time.Now(),
		Virtual: virtual,
		QueryID: queryID,
		Type:    typ,
		Detail:  detail,
	}
	if len(r.buf) < l.capPerQuery {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % l.capPerQuery
	r.full = true
}

// snapshot returns the ring's events oldest-first.
func (r *eventRing) snapshot() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Query returns the retained events of one query, oldest first.
func (l *EventLog) Query(id int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.rings[id]
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// All returns the retained events of every query, merged in sequence order.
func (l *EventLog) All() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, r := range l.rings {
		out = append(out, r.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
