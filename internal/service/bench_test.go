package service

import (
	"fmt"
	"testing"
	"time"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// benchWorkload loads a few tables and submits long-lived queries so the
// pollers always observe a non-trivial system: running queries past the MPL
// cap (so the admission queue is populated) with small RateC so nothing
// finishes during the benchmark window.
func benchWorkload(b *testing.B, tick time.Duration) *Manager {
	b.Helper()
	db := engine.Open()
	for i := 0; i < 4; i++ {
		loadTable(b, db, fmt.Sprintf("b%d", i), 64)
	}
	m := New(db, Config{
		Sched:     sched.Config{RateC: 0.01, Quantum: 0.25, MPL: 3},
		TickEvery: tick,
		TimeScale: 250,
	})
	b.Cleanup(m.Close)
	for i := 0; i < 6; i++ {
		if _, err := m.Submit(SubmitRequest{
			Label:    fmt.Sprintf("bench-%d", i),
			SQL:      fmt.Sprintf("SELECT SUM(a) FROM b%d", i%4),
			Priority: i % 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if tick < 0 {
		// Manual clock: advance once so speeds are observed, then hold the
		// epoch fixed — every poll after the first is a cache hit.
		if err := m.Advance(0.5); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkConcurrentPoll measures the lock-free read path under parallel
// pollers. idle-owner holds the snapshot epoch fixed (pure cache-hit cost);
// ticking-owner republishes every millisecond, so pollers keep re-computing
// estimates through the singleflight cache — the realistic serving mix.
func BenchmarkConcurrentPoll(b *testing.B) {
	b.Run("progress/idle-owner", func(b *testing.B) {
		m := benchWorkload(b, -1)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := m.Progress(1); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("progress/ticking-owner", func(b *testing.B) {
		m := benchWorkload(b, time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := m.Progress(1); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("overview/ticking-owner", func(b *testing.B) {
		m := benchWorkload(b, time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := m.Overview(); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
