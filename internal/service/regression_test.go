package service

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// TestHTTPParamValidation pins the query-param audit: every strconv call
// site must answer 400 for unparsable or out-of-range values instead of
// silently substituting a default, and float params must reject the
// non-finite spellings ParseFloat accepts ("NaN", "Inf", ...).
func TestHTTPParamValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, path string
		want       int
	}{
		{"diagram default", "/diagram", http.StatusOK},
		{"diagram ok", "/diagram?width=40", http.StatusOK},
		{"diagram max", "/diagram?width=400", http.StatusOK},
		{"diagram garbage", "/diagram?width=abc", http.StatusBadRequest},
		{"diagram negative", "/diagram?width=-5", http.StatusBadRequest},
		{"diagram zero", "/diagram?width=0", http.StatusBadRequest},
		{"diagram too wide", "/diagram?width=401", http.StatusBadRequest},
		{"diagram float", "/diagram?width=40.5", http.StatusBadRequest},
		{"events default", "/events", http.StatusOK},
		{"events all", "/events?id=0", http.StatusOK},
		{"events garbage", "/events?id=abc", http.StatusBadRequest},
		{"events negative", "/events?id=-1", http.StatusBadRequest},
		{"speedup no target", "/plan/speedup", http.StatusBadRequest},
		{"speedup victims garbage", "/plan/speedup?target=1&victims=x", http.StatusBadRequest},
		{"speedup victims zero", "/plan/speedup?target=1&victims=0", http.StatusBadRequest},
		{"speedup victims negative", "/plan/speedup?target=1&victims=-2", http.StatusBadRequest},
		{"maintenance ok", "/plan/maintenance?deadline=5", http.StatusOK},
		{"maintenance missing", "/plan/maintenance", http.StatusBadRequest},
		{"maintenance garbage", "/plan/maintenance?deadline=abc", http.StatusBadRequest},
		{"maintenance nan", "/plan/maintenance?deadline=NaN", http.StatusBadRequest},
		{"maintenance inf", "/plan/maintenance?deadline=Inf", http.StatusBadRequest},
		{"maintenance neg inf", "/plan/maintenance?deadline=-Inf", http.StatusBadRequest},
		{"maintenance negative", "/plan/maintenance?deadline=-3", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + c.path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Errorf("GET %s = %d, want %d", c.path, resp.StatusCode, c.want)
			}
		})
	}
}

// TestAdvanceRejectsNonFinite pins the Manager-layer half of the float
// validation fix: NaN and ±Inf must not survive the range check.
func TestAdvanceRejectsNonFinite(t *testing.T) {
	db := engine.Open()
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1, 2e9} {
		if err := m.Advance(v); err == nil {
			t.Errorf("Advance(%g) = nil, want error", v)
		}
	}
	if err := m.Advance(0.5); err != nil {
		t.Errorf("Advance(0.5) = %v", err)
	}
}

// TestPlanMaintenanceRejectsNonFinite pins the second validation hole: a NaN
// deadline used to flow into the knapsack where every comparison silently
// evaluates false, and ±Inf produced degenerate abort-everything /
// abort-nothing plans that looked legitimate.
func TestPlanMaintenanceRejectsNonFinite(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})
	if _, err := m.Submit(SubmitRequest{Label: "q", SQL: "SELECT SUM(a) FROM t1"}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := m.PlanMaintenance(v, 0, false); err == nil {
			t.Errorf("PlanMaintenance(%g) = nil, want error", v)
		}
	}
	if _, err := m.PlanMaintenance(5, 0, false); err != nil {
		t.Errorf("PlanMaintenance(5) = %v", err)
	}
}

// TestAdvanceBackstopCarriesDebt pins the backstop-truncation fix with a
// pathological time scale: one huge Advance hits MaxTicksPerAdvance, and the
// un-ticked virtual time must remain owed. Pre-fix the residual debt was
// zeroed, so the follow-up (sub-quantum) Advance ticked nothing and the
// virtual clock silently lost eight seconds.
func TestAdvanceBackstopCarriesDebt(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 60) // ~61 U: busy for 12+ ticks at 5 U/tick
	m := New(db, Config{
		Sched:              sched.Config{RateC: 10, Quantum: 0.5},
		TickEvery:          -1,
		MaxTicksPerAdvance: 4,
	})
	defer m.Close()
	if _, err := m.Submit(SubmitRequest{Label: "q", SQL: "SELECT SUM(a) FROM t1"}); err != nil {
		t.Fatal(err)
	}

	// Owed 10 s but capped at 4 ticks × 0.5 s: the clock reaches 2 s and the
	// backstop fires with 8 s still owed.
	if err := m.Advance(10); err != nil {
		t.Fatal(err)
	}
	if now := m.Load().Now; math.Abs(now-2) > 1e-9 {
		t.Fatalf("after capped advance: now = %g, want 2", now)
	}
	if n := m.Metrics().advanceBackstopCount(); n != 1 {
		t.Fatalf("backstop count = %d, want 1", n)
	}

	// A sub-quantum nudge must drain four more ticks of the carried debt.
	// Pre-fix: debt was dropped, 1e-9 s < quantum, the clock stayed at 2 s.
	if err := m.Advance(1e-9); err != nil {
		t.Fatal(err)
	}
	if now := m.Load().Now; math.Abs(now-4) > 1e-9 {
		t.Fatalf("after nudge: now = %g, want 4 (residual debt dropped?)", now)
	}
	if n := m.Metrics().advanceBackstopCount(); n != 2 {
		t.Fatalf("backstop count = %d, want 2", n)
	}

	// The counter is exported for operators.
	if text := m.Metrics().Text(); !strings.Contains(text, "mqpi_advance_backstop_total 2\n") {
		t.Errorf("metrics text missing backstop counter:\n%s", text)
	}
}

// TestLoadProbe pins the router's lock-free load signal: counts and
// remaining work must come straight from the published snapshot.
func TestLoadProbe(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "t1", 10)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5, MPL: 1})
	if l := m.Load(); l.Admitted != 0 || l.Queued != 0 || l.RemainingU != 0 {
		t.Fatalf("idle load = %+v", l)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}); err != nil {
			t.Fatal(err)
		}
	}
	l := m.Load()
	if l.Admitted != 1 || l.Queued != 1 {
		t.Fatalf("load = %+v, want 1 admitted + 1 queued (MPL 1)", l)
	}
	if l.RemainingU <= 0 {
		t.Fatalf("remaining = %g, want > 0", l.RemainingU)
	}
	before := l.RemainingU
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}
	l = m.Load()
	if l.RemainingU >= before {
		t.Fatalf("remaining did not shrink: %g -> %g", before, l.RemainingU)
	}
	if l.Epoch == 0 {
		t.Fatal("epoch not stamped")
	}
}
