package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"mqpi/internal/wm"
)

// NewHandler exposes a Manager as an HTTP/JSON API. GET endpoints ride the
// Manager's lock-free read path — they serve from the latest published
// snapshot and never wait on the owner goroutine, so progress polls stay
// fast no matter how busy the scheduler is. POST endpoints mutate and are
// marshalled onto the owner.
//
//	POST /queries                     submit {"sql","label","priority","delay"}
//	GET  /queries                     system overview (running/queued/scheduled/finished)
//	GET  /queries/{id}                one query's progress + ETAs
//	POST /queries/{id}/block          suspend (§3.1 victim operation)
//	POST /queries/{id}/unblock        resume
//	POST /queries/{id}/abort          kill (free per §3.3)
//	POST /queries/{id}/priority       {"priority": n}
//	GET  /diagram                     ASCII stage diagram (text/plain)
//	GET  /plan/speedup?target=&victims=    §3.1 planner
//	GET  /plan/speedup-others              §3.2 planner
//	GET  /plan/maintenance?deadline=&mode=&exact=   §3.3 planner
//	GET  /events[?id=]                bounded per-query event trace
//	GET  /metrics                     Prometheus text exposition
//	POST /exec                        {"sql"}: synchronous DDL/DML (data loading);
//	                                  409 if the owner stays busy past the exec deadline
//	POST /advance                     {"seconds"}: push virtual time forward
//	GET  /healthz                     liveness probe
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /queries", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if strings.TrimSpace(req.SQL) == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing sql"))
			return
		}
		view, err := m.Submit(req)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, view)
	})

	mux.HandleFunc("GET /queries", func(w http.ResponseWriter, r *http.Request) {
		out, err := m.Overview()
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /queries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		view, err := m.Progress(id)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	op := func(name string, f func(int) error) func(http.ResponseWriter, *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			id, err := pathID(r)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if err := f(id); err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"ok": true, "op": name, "id": id})
		}
	}
	mux.HandleFunc("POST /queries/{id}/block", op("block", m.Block))
	mux.HandleFunc("POST /queries/{id}/unblock", op("unblock", m.Unblock))
	mux.HandleFunc("POST /queries/{id}/abort", op("abort", m.Abort))

	mux.HandleFunc("POST /queries/{id}/priority", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var req struct {
			Priority int `json:"priority"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.SetPriority(id, req.Priority); err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "op": "priority", "id": id, "priority": req.Priority})
	})

	mux.HandleFunc("GET /diagram", func(w http.ResponseWriter, r *http.Request) {
		width, err := queryInt(r, "width", 60, 1, 400)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		text, err := m.Diagram(width)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})

	mux.HandleFunc("GET /plan/speedup", func(w http.ResponseWriter, r *http.Request) {
		target, err := strconv.Atoi(r.URL.Query().Get("target"))
		if err != nil {
			writeError(w, http.StatusBadRequest, errors.New("missing or invalid target"))
			return
		}
		h, err := queryInt(r, "victims", 1, 1, 1<<20)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		victims, err := m.SpeedUpSingle(target, h)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"target": target, "victims": victims})
	})

	mux.HandleFunc("GET /plan/speedup-others", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.SpeedUpOthers()
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"victim": v})
	})

	mux.HandleFunc("GET /plan/maintenance", func(w http.ResponseWriter, r *http.Request) {
		deadline, err := queryFloat(r, "deadline", 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		mode := wm.Case2TotalCost
		switch r.URL.Query().Get("mode") {
		case "", "total-cost":
		case "completed-work":
			mode = wm.Case1CompletedWork
		default:
			writeError(w, http.StatusBadRequest, errors.New("mode must be total-cost or completed-work"))
			return
		}
		exact := r.URL.Query().Get("exact") == "1"
		plan, err := m.PlanMaintenance(deadline, mode, exact)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"abort": plan.Abort, "lost_u": plan.Lost, "quiescent_eta": Seconds(plan.Quiescent),
			"mode": mode.String(), "exact": exact,
		})
	})

	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		id, err := queryInt(r, "id", 0, 0, 1<<31-1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"events": m.Events(id)})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, m.Metrics().Text())
	})

	mux.HandleFunc("POST /exec", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			SQL string `json:"sql"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n, err := m.Exec(req.SQL)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": n})
	})

	mux.HandleFunc("POST /advance", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Seconds float64 `json:"seconds"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := m.Advance(req.Seconds); err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		out, err := m.Overview()
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	return mux
}

// queryInt parses an optional integer query parameter. A missing parameter
// yields def; anything unparsable or outside [min, max] is an error so the
// handler answers 400 instead of silently substituting the default.
func queryInt(r *http.Request, name string, def, min, max int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, s)
	}
	if n < min || n > max {
		return 0, fmt.Errorf("%s must be between %d and %d", name, min, max)
	}
	return n, nil
}

// queryFloat parses a required float query parameter, rejecting NaN and ±Inf
// (which strconv.ParseFloat happily accepts) and values below min.
func queryFloat(r *http.Request, name string, min float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%s must be finite", name)
	}
	if v < min {
		return 0, fmt.Errorf("%s must be >= %g", name, min)
	}
	return v, nil
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id <= 0 {
		return 0, errors.New("invalid query id")
	}
	return id, nil
}

// statusOf maps service errors to HTTP statuses: unknown IDs are 404, a
// closed manager is 503, an Exec deadline miss is 409 (retryable — the owner
// is mid-tick), invalid state transitions and bad SQL are 400.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
