// Package service turns the replay-only virtual-time simulator into a live
// progress-indicator service — the way the paper's prototype was actually
// consumed, with PostgreSQL clients polling estimates *while* queries ran.
//
// A Manager hosts one sched.Server, one engine.DB, and all derived state
// behind a single owner goroutine — the only writer. Mutations (Submit,
// Block, Abort, SetPriority, Advance, Exec) marshal a closure onto an
// unbuffered request channel and wait for the owner to run it; a wall-clock
// ticker feeding the same loop drives sched.Tick, bridging the virtual clock
// to real time with a configurable time scale (an hour-long workload can
// replay in seconds). Nothing inside the simulator needs a mutex, and every
// value that crosses the goroutine boundary is a copy (sched.QueryInfo,
// QueryView, Event), never a live pointer.
//
// Reads take a different path entirely. After every mutation and tick batch
// the owner publishes an immutable, epoch-stamped Snapshot through an atomic
// pointer; Progress, Overview, Diagram, and the §3 planners load the latest
// snapshot and compute their views on the *caller's* goroutine, never
// touching the owner channel. A per-epoch estimate cache with singleflight
// semantics makes N concurrent pollers of the same epoch share one estimate
// computation — itself backed by an incremental stage structure that patches
// only what changed since the previous epoch — so polls scale with reader
// parallelism instead of serializing behind each other and the scheduler
// ticks.
//
// On top of the session manager sits the observability layer: Prometheus
// counters/gauges/histograms (Metrics, including read-path cache hit/miss
// counters, snapshot age, and poll latency) and a bounded per-query event
// trace (EventLog), both safe to read from any goroutine without stalling
// the scheduler.
package service

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
	"mqpi/internal/wm"
)

// ErrClosed is returned by every Manager method after Close.
var ErrClosed = errors.New("service: manager closed")

// ErrNotFound is returned when a query ID is unknown.
var ErrNotFound = errors.New("service: unknown query")

// ErrBusy is returned by Exec when the owner goroutine could not take the
// statement within Config.ExecDeadline — typically because a long (possibly
// parallel) tick is in flight. The HTTP layer maps it to 409 Conflict so
// clients retry instead of silently queueing DML behind the scheduler.
var ErrBusy = errors.New("service: owner busy, exec deadline exceeded")

// Config configures a Manager.
type Config struct {
	// Sched configures the wrapped scheduler (rate C, weights, MPL, quantum).
	Sched sched.Config
	// TickEvery is the wall-clock interval between scheduler advances
	// (default 50ms). A negative value disables the ticker entirely:
	// virtual time then only moves through Advance, which is what
	// deterministic tests and batch drivers use.
	TickEvery time.Duration
	// TimeScale is virtual seconds per wall second (default 1). At 600, an
	// hour-long workload replays in six seconds of wall time.
	TimeScale float64
	// EventCap bounds each query's event ring (default 128).
	EventCap int
	// ExecDeadline bounds how long a synchronous Exec (DDL/DML) waits for
	// the owner goroutine before giving up with ErrBusy. DML must be
	// serialized against the tick's parallel execute phase — it mutates
	// relations the runners scan lock-free — so it can only run between
	// ticks; under heavy load or a pathological time scale that wait can be
	// long, and a deadline turns it into fast, retryable back-pressure.
	// Zero or negative waits indefinitely (the pre-deadline behaviour).
	ExecDeadline time.Duration
	// RevisionEpsilon is the minimum absolute change of a query's predicted
	// finish time, in virtual seconds, that is recorded as an
	// estimate_revised event (default: one quantum). The metrics histogram
	// observes every revision regardless.
	RevisionEpsilon float64
	// MaxTicksPerAdvance bounds how many scheduler ticks one advance may run
	// (default 100000) — the backstop against a pathological TimeScale that
	// would otherwise pin the owner goroutine in the tick loop. When the
	// backstop fires the un-ticked virtual-time debt is carried into the next
	// advance (and counted by mqpi_advance_backstop_total), never dropped.
	MaxTicksPerAdvance int
	// Arrivals optionally switches the multi-query estimates to the §2.4
	// future-aware form.
	Arrivals *core.ArrivalModel
	// Estimator selects the estimate plane: "stage" (default) is the classic
	// single-pipeline stage model, bit-identical to the pre-ensemble path;
	// "cost"/"speed" force a single ensemble member; "ensemble" blends all
	// members online by observed rolling error and reports uncertainty bands.
	// Must be one of core.EstimatorModes (New panics otherwise — the HTTP and
	// flag layers validate first).
	Estimator string
}

func (c Config) withDefaults() Config {
	if c.TickEvery == 0 {
		c.TickEvery = 50 * time.Millisecond
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.EventCap <= 0 {
		c.EventCap = 128
	}
	if c.MaxTicksPerAdvance <= 0 {
		c.MaxTicksPerAdvance = 100000
	}
	return c
}

// Manager is the goroutine-safe session manager over one scheduler and one
// database. Create with New, stop with Close.
type Manager struct {
	cfg     Config
	metrics *Metrics
	events  *EventLog

	reqs      chan func()
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// Read path: the owner publishes an immutable snapshot here after every
	// mutation; pollers load it and share per-epoch estimates via cache.
	snap  atomic.Pointer[Snapshot]
	cache estimateCache
	// readEst is the read path's estimator. Its stage member maintains an
	// incremental stage structure: successive epochs over a slowly changing
	// mix refill the estimate cache in O(changed·log n) instead of re-sorting
	// everything. The singleflight cache already collapses concurrent pollers
	// of one epoch to one compute, but a straggler holding the previous epoch
	// may compute concurrently, so readMu serializes access to the structure.
	readMu  sync.Mutex
	readEst core.Estimator

	// Owner-goroutine state: only the loop goroutine may touch these.
	db         *engine.DB
	srv        *sched.Server
	epoch      uint64              // last published snapshot epoch
	debt       float64             // virtual seconds owed but not yet ticked
	lastFinish map[int]float64     // query -> last predicted absolute finish time
	queuedSet  map[int]bool        // queries last seen in the admission queue
	schedSet   map[int]bool        // queries still waiting as future arrivals
	// ownerEst is the owner goroutine's estimator instance, backing the
	// per-tick estimate pass (afterTick → estimates) the same way readEst
	// backs the poller cache.
	ownerEst core.Estimator
	// calib accumulates finish-time residuals and band coverage for the
	// ensemble blender; nil in stage mode, where no calibration runs and the
	// estimate path is the classic pipeline verbatim.
	calib *core.EnsembleCalib
	// calibState is the immutable calibration state as of the last
	// publication, shared with the snapshot so the read path's estimates stay
	// pure functions of the snapshot. Always zero in stage mode.
	calibState core.EnsembleState
}

// New creates a manager over db and starts its owner goroutine.
func New(db *engine.DB, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	if cfg.Arrivals != nil {
		// Snapshot publications share this pointer across goroutines; a
		// private copy guarantees the caller cannot mutate it underneath the
		// read path.
		a := *cfg.Arrivals
		cfg.Arrivals = &a
	}
	m := &Manager{
		cfg:        cfg,
		metrics:    newMetrics(),
		events:     newEventLog(cfg.EventCap),
		reqs:       make(chan func()),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		db:         db,
		srv:        sched.New(cfg.Sched),
		lastFinish: make(map[int]float64),
		queuedSet:  make(map[int]bool),
		schedSet:   make(map[int]bool),
	}
	if m.cfg.RevisionEpsilon <= 0 {
		m.cfg.RevisionEpsilon = m.srv.Quantum()
	}
	ownerEst, err := core.NewEstimator(cfg.Estimator)
	if err != nil {
		panic(err) // flag/HTTP layers validate; reaching here is a programming error
	}
	readEst, _ := core.NewEstimator(cfg.Estimator)
	m.ownerEst, m.readEst = ownerEst, readEst
	if mode := ownerEst.Mode(); mode != core.EstimatorStage {
		m.calib = core.NewEnsembleCalib()
		m.metrics.setEstimator(mode)
	}
	m.srv.OnFinish(m.onFinish)
	m.metrics.setWorkers(m.srv.Workers())
	m.metrics.snapshotInfo = func() (uint64, float64) {
		s := m.snap.Load()
		if s == nil {
			return 0, 0
		}
		return s.Epoch, time.Since(s.Published).Seconds()
	}
	m.publish() // epoch 1: readers never observe a nil snapshot
	go m.loop()
	return m
}

// Close stops the owner goroutine, waiting for in-flight requests to drain.
// It is idempotent; methods called after Close return ErrClosed.
func (m *Manager) Close() {
	m.closeOnce.Do(func() { close(m.quit) })
	<-m.done
}

// Metrics returns the service metrics registry.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Events returns the retained event trace: one query's (oldest first), or
// every query's merged in sequence order when id is 0.
func (m *Manager) Events(id int) []Event {
	if id == 0 {
		return m.events.All()
	}
	return m.events.Query(id)
}

func (m *Manager) loop() {
	var tickC <-chan time.Time
	if m.cfg.TickEvery > 0 {
		ticker := time.NewTicker(m.cfg.TickEvery)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case <-m.quit:
			// Drain requests that already rendezvoused, then release
			// everyone else via the closed done channel.
			for {
				select {
				case f := <-m.reqs:
					f()
				default:
					m.srv.Close() // release the execute-phase worker pool
					close(m.done)
					return
				}
			}
		case f := <-m.reqs:
			f()
		case <-tickC:
			m.advance(m.cfg.TickEvery.Seconds() * m.cfg.TimeScale)
			m.publish()
		}
	}
}

// call runs f on the owner goroutine, publishes a fresh snapshot, and waits
// for both to complete — so a client that mutates and immediately polls reads
// its own write.
func (m *Manager) call(f func()) error { return m.callDeadline(f, 0) }

// callDeadline is call with a bound on the hand-off wait: if the owner does
// not take the request within d (because a tick — serial credit plane plus
// parallel execute phase — is still in flight), it returns ErrBusy without
// running f. d <= 0 waits indefinitely. Once the owner accepts the request,
// it always runs to completion.
func (m *Manager) callDeadline(f func(), d time.Duration) error {
	fin := make(chan struct{})
	req := func() { f(); m.publish(); close(fin) }
	var timeout <-chan time.Time
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case m.reqs <- req:
		m.metrics.incOwnerRequest()
		<-fin
		return nil
	case <-m.done:
		return ErrClosed
	case <-timeout:
		m.metrics.incExecBusy()
		return ErrBusy
	}
}

// publish installs a fresh immutable snapshot for the read path. Owner
// goroutine only (called from New before the loop starts, then from the loop).
func (m *Manager) publish() {
	m.epoch++
	if m.calib != nil {
		// An immutable copy per publication: the owner keeps mutating the
		// accumulator, but this epoch's readers must all see the same state.
		m.calibState = m.calib.State()
	}
	m.snap.Store(&Snapshot{
		Epoch:     m.epoch,
		Published: time.Now(),
		Sched:     m.srv.Snapshot(),
		TimeScale: m.cfg.TimeScale,
		Arrivals:  m.cfg.Arrivals,
		Estimator: m.ownerEst.Mode(),
		Calib:     m.calibState,
	})
}

// read returns the latest published snapshot without touching the owner
// goroutine. After Close it fails with ErrClosed, preserving the method
// contract even though the final snapshot would still be readable.
func (m *Manager) read() (*Snapshot, error) {
	select {
	case <-m.done:
		return nil, ErrClosed
	default:
		return m.snap.Load(), nil
	}
}

// estimatesFor returns the shared estimate bundle for snap's epoch,
// computing it on the calling goroutine at most once per epoch across all
// concurrent pollers.
func (m *Manager) estimatesFor(snap *Snapshot) viewEstimates {
	est, hit := m.cache.get(snap.Epoch, func() viewEstimates {
		m.readMu.Lock()
		defer m.readMu.Unlock()
		out := m.readEst.Estimates(snap.estimateInput(), snap.Calib)
		return viewEstimates{perQuery: out.PerQuery, quiescent: out.Quiescent, weights: out.Weights}
	})
	if hit {
		m.metrics.incCacheHit()
	} else {
		m.metrics.incCacheMiss()
	}
	return est
}

// advance accrues vsec virtual seconds of debt and ticks the scheduler while
// at least one quantum is owed. The virtual clock freezes while the server
// is idle (no queries, no arrivals) so a quiet service does not spin.
func (m *Manager) advance(vsec float64) {
	if vsec <= 0 {
		return
	}
	quantum := m.srv.Quantum()
	m.debt += vsec
	for i := 0; m.debt >= quantum-1e-12; i++ {
		if !m.srv.Busy() {
			// Idle server: the virtual clock freezes, so nothing is owed.
			m.debt = 0
			return
		}
		if i >= m.cfg.MaxTicksPerAdvance {
			// Backstop against a pathological time scale: stop ticking now,
			// but keep the residual debt so the clock catches up across
			// subsequent advances instead of silently losing virtual time.
			m.metrics.incAdvanceBackstop()
			return
		}
		start := time.Now()
		m.srv.Tick()
		m.metrics.observeTick(time.Since(start).Seconds())
		st := m.srv.TickStats()
		m.metrics.observeExecutePhase(st.ExecuteSeconds, st.Rounds)
		m.debt -= quantum
		m.afterTick()
	}
}

// onFinish runs inside sched.Tick on the owner goroutine.
func (m *Manager) onFinish(q *sched.Query) {
	info := m.srv.InfoOf(q)
	// A query can be admitted and finish within the same tick (a scheduled
	// arrival or queue refill followed by a fast plan): its pending
	// submitted/admitted events have not been emitted yet, and once the query
	// retires afterTick will no longer see it in Running. Emit them here so
	// the lifecycle stays ordered ahead of the finished/failed event.
	if m.schedSet[info.ID] {
		delete(m.schedSet, info.ID)
		m.events.add(info.SubmitTime, info.ID, EventSubmitted, "scheduled arrival")
		m.events.add(info.StartTime, info.ID, EventAdmitted, "")
	}
	if m.queuedSet[info.ID] {
		delete(m.queuedSet, info.ID)
		m.events.add(info.StartTime, info.ID, EventAdmitted, "")
	}
	delete(m.lastFinish, info.ID)
	if info.Status == sched.StatusFailed {
		if m.calib != nil {
			m.calib.Forget(info.ID) // a failure is not an ETA residual
		}
		m.metrics.incFailed()
		m.events.add(info.FinishTime, info.ID, EventFailed, info.Err)
		return
	}
	if m.calib != nil {
		m.calib.Finish(info.ID, info.FinishTime)
	}
	m.metrics.incFinished()
	m.events.add(info.FinishTime, info.ID, EventFinished,
		fmt.Sprintf("latency %.3fs, %.1f U", info.FinishTime-info.SubmitTime, info.Done))
}

// afterTick records lifecycle transitions the tick caused (admissions,
// scheduled arrivals entering the system) and the movement of every query's
// predicted finish time.
func (m *Manager) afterTick() {
	now := m.srv.Now()
	m.recordAdmissions()
	// Iterate estimates in query-ID order: map iteration order is random, and
	// the estimate_revised events appended here must land in the event log in
	// the same order on every run (and at every worker count) for /events to
	// be deterministic.
	in := m.estimateInput()
	bundle := m.ownerEst.Estimates(in, m.ownerCalibState())
	if m.calib != nil {
		// Fold this pass into the calibration state: per-query speed EWMAs,
		// each member's absolute predicted finish, and the reported band.
		m.calib.Observe(now, in, bundle)
		within, finishes := m.calib.Coverage()
		m.metrics.setEstimatorStats(bundle.Weights, within, finishes)
	}
	est := bundle.PerQuery
	ids := make([]int, 0, len(est))
	for id := range est {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		eta := est[id].MultiQuery
		if math.IsInf(eta, 1) || math.IsNaN(eta) {
			continue
		}
		abs := now + eta
		if last, ok := m.lastFinish[id]; ok {
			rev := math.Abs(abs - last)
			m.metrics.observeRevision(rev)
			if rev >= m.cfg.RevisionEpsilon {
				m.events.add(now, id, EventRevised,
					fmt.Sprintf("predicted finish moved %+.3fs (t=%.3fs -> t=%.3fs)", abs-last, last, abs))
			}
		}
		m.lastFinish[id] = abs
	}
	fs := m.srv.FoldStats()
	m.metrics.setFoldStats(fs.Attaches, fs.PagesSaved, fs.Groups, fs.Members)
	m.updateDepths()
}

// recordAdmissions emits the lifecycle events for queries that left the
// admission queue or the arrival schedule since the last reconciliation:
// queue refills become admitted events, arrivals become submitted (+queued or
// +admitted) events. It runs after every tick and after any control action
// that can free an MPL slot (sched.Abort of an admitted query refills the
// queue synchronously), so no admission goes unrecorded. Owner goroutine
// only.
func (m *Manager) recordAdmissions() {
	now := m.srv.Now()
	for _, q := range m.srv.Running() {
		if m.queuedSet[q.ID] {
			delete(m.queuedSet, q.ID)
			m.events.add(now, q.ID, EventAdmitted, "")
		}
		if m.schedSet[q.ID] {
			delete(m.schedSet, q.ID)
			m.events.add(q.SubmitTime, q.ID, EventSubmitted, "scheduled arrival")
			m.events.add(q.StartTime, q.ID, EventAdmitted, "")
		}
	}
	for _, q := range m.srv.Queued() {
		if m.schedSet[q.ID] {
			delete(m.schedSet, q.ID)
			m.queuedSet[q.ID] = true
			m.events.add(q.SubmitTime, q.ID, EventSubmitted, "scheduled arrival")
			m.events.add(q.SubmitTime, q.ID, EventQueued, "")
		}
	}
	for id := range m.schedSet { // arrivals aborted before arriving
		if q, ok := m.srv.Lookup(id); ok && q.Status != sched.StatusScheduled {
			delete(m.schedSet, id)
		}
	}
}

func (m *Manager) updateDepths() {
	running, blocked := 0, 0
	for _, q := range m.srv.Running() {
		if q.Status == sched.StatusBlocked {
			blocked++
		} else {
			running++
		}
	}
	m.metrics.setDepths(running, blocked, len(m.srv.Queued()), len(m.schedSet))
}

// estimates computes the estimate bundle for every admitted and queued query
// from the live scheduler state, through the owner's incremental stage
// structure — this runs once per tick (afterTick), so over a slowly changing
// mix the per-tick cost is O(changed·log n) instead of a full re-sort. The
// values are bit-identical to the stateless core.ComputeEstimates (and to the
// legacy EstimateAll, which shares the same empty-queue fast path). Owner
// goroutine only.
func (m *Manager) estimates() map[int]core.Estimate {
	return m.ownerEst.Estimates(m.estimateInput(), m.ownerCalibState()).PerQuery
}

// estimateInput assembles the pure-value estimator input from the live
// scheduler state. Owner goroutine only.
func (m *Manager) estimateInput() core.EstimateInput {
	speeds := make(map[int]float64)
	for _, q := range m.srv.Running() {
		speeds[q.ID] = q.ObservedSpeed()
	}
	return core.EstimateInput{
		Running:  m.srv.StateRunning(),
		Queued:   m.srv.StateQueued(),
		MPL:      m.srv.MPL(),
		RateC:    m.srv.RateC(),
		Speeds:   speeds,
		Arrivals: m.cfg.Arrivals,
	}
}

// ownerCalibState exports the calibration accumulator's current state for an
// owner-side estimate pass (the zero state in stage mode, where no
// calibration runs). Owner goroutine only.
func (m *Manager) ownerCalibState() core.EnsembleState {
	if m.calib == nil {
		return core.EnsembleState{}
	}
	return m.calib.State()
}

// SubmitRequest describes one query submission.
type SubmitRequest struct {
	Label    string  `json:"label"`
	SQL      string  `json:"sql"`
	Priority int     `json:"priority"`
	// Delay, when positive, schedules the arrival Delay virtual seconds from
	// now instead of submitting immediately.
	Delay float64 `json:"delay,omitempty"`
}

// Submit prepares the SQL and places the query in the scheduler (or its
// arrival calendar). It returns the query's initial view, whose ID all other
// operations use.
func (m *Manager) Submit(req SubmitRequest) (QueryView, error) {
	var view QueryView
	var rerr error
	err := m.call(func() {
		r, err := m.db.Prepare(req.SQL)
		if err != nil {
			rerr = fmt.Errorf("prepare: %w", err)
			return
		}
		r.CollectRows = false
		q := m.srv.NewQuery(req.Label, req.SQL, req.Priority, r)
		now := m.srv.Now()
		m.metrics.incSubmitted()
		if req.Delay > 0 {
			m.srv.ScheduleArrival(now+req.Delay, q)
			m.schedSet[q.ID] = true
			m.events.add(now, q.ID, EventScheduled, fmt.Sprintf("arrives at t=%.3fs", now+req.Delay))
		} else {
			m.srv.Submit(q)
			m.events.add(now, q.ID, EventSubmitted, "")
			if q.Status == sched.StatusQueued {
				m.queuedSet[q.ID] = true
				m.events.add(now, q.ID, EventQueued, "")
			} else {
				m.events.add(now, q.ID, EventAdmitted, "")
			}
		}
		m.updateDepths()
		view = m.viewLocked(q.ID)
	})
	if err != nil {
		return QueryView{}, err
	}
	return view, rerr
}

// Exec runs a DDL/DML statement to completion on the owner goroutine —
// loading data is synchronous and unscheduled, unlike SELECT submission.
// DML mutates storage the parallel execute phase reads lock-free, so it
// only runs between ticks; if the owner cannot take the statement within
// Config.ExecDeadline, Exec fails fast with ErrBusy (HTTP 409).
func (m *Manager) Exec(sqlText string) (int, error) {
	var n int
	var rerr error
	err := m.callDeadline(func() { n, rerr = m.db.Exec(sqlText) }, m.cfg.ExecDeadline)
	if err != nil {
		return 0, err
	}
	return n, rerr
}

// Progress returns the live view of one query. It is a pure read: the latest
// snapshot is loaded from the atomic pointer and the view is computed on the
// caller's goroutine, with zero sends on the owner channel.
func (m *Manager) Progress(id int) (QueryView, error) {
	snap, err := m.read()
	if err != nil {
		return QueryView{}, err
	}
	start := time.Now()
	defer func() { m.metrics.observePoll(time.Since(start).Seconds()) }()
	info, ok := snap.Sched.Lookup(id)
	if !ok {
		return QueryView{}, ErrNotFound
	}
	var est core.Estimate
	if statusHasEstimate(info.Status) {
		est = m.estimatesFor(snap).perQuery[id]
	}
	view := makeView(info, est)
	// Stamp the poll with the snapshot's virtual clock so clients can turn
	// the relative ETA into an absolute predicted finish (now + eta) and
	// audit it against finish_time once the query completes.
	view.Now = Seconds(snap.Sched.Now)
	return view, nil
}

// statusHasEstimate reports whether makeView consults the estimate bundle
// for a query in this state — terminated and not-yet-arrived queries render
// fixed ETAs, so polling them skips the estimate computation entirely.
func statusHasEstimate(st sched.Status) bool {
	return st == sched.StatusRunning || st == sched.StatusBlocked || st == sched.StatusQueued
}

// Overview returns the whole system's live view. Like Progress it is a pure
// snapshot read on the caller's goroutine.
func (m *Manager) Overview() (Overview, error) {
	snap, err := m.read()
	if err != nil {
		return Overview{}, err
	}
	start := time.Now()
	defer func() { m.metrics.observePoll(time.Since(start).Seconds()) }()
	est := m.estimatesFor(snap)
	out := Overview{
		Now:          snap.Sched.Now,
		Epoch:        snap.Epoch,
		RateC:        snap.Sched.RateC,
		MPL:          snap.Sched.MPL,
		Quantum:      snap.Sched.Quantum,
		Workers:      snap.Sched.Workers,
		TimeScale:    snap.TimeScale,
		Fold:         foldView(&snap.Sched),
		Estimator:    snap.Estimator,
		Weights:      est.weights,
		QuiescentETA: Seconds(est.quiescent),
	}
	for _, info := range snap.Sched.Running {
		out.Running = append(out.Running, makeView(info, est.perQuery[info.ID]))
	}
	for _, info := range snap.Sched.Queued {
		out.Queued = append(out.Queued, makeView(info, est.perQuery[info.ID]))
	}
	for _, info := range snap.Sched.Scheduled {
		out.Scheduled = append(out.Scheduled, makeView(info, est.perQuery[info.ID]))
	}
	for _, info := range snap.Sched.Done {
		out.Finished = append(out.Finished, makeView(info, est.perQuery[info.ID]))
	}
	return out, nil
}

// foldView projects the scheduler snapshot's folding state into the overview.
func foldView(s *sched.Snapshot) FoldView {
	return FoldView{
		Enabled:    s.FoldEnabled,
		Groups:     s.Fold.Groups,
		Members:    s.Fold.Members,
		Attaches:   s.Fold.Attaches,
		PagesSaved: s.Fold.PagesSaved,
		Tables:     s.FoldTables,
	}
}

// SetFold toggles shared-scan folding at runtime. Turning it off releases
// every shared cursor (members finish their laps solo); turning it on makes
// not-yet-started queries eligible at the next tick.
func (m *Manager) SetFold(on bool) error {
	return m.call(func() {
		m.srv.SetFold(on)
		m.events.add(m.srv.Now(), 0, EventFold, fmt.Sprintf("fold=%v", on))
	})
}

// Block suspends an admitted query (the §3.1 victim operation).
func (m *Manager) Block(id int) error { return m.op(id, "block") }

// Unblock resumes a blocked query.
func (m *Manager) Unblock(id int) error { return m.op(id, "unblock") }

// Abort terminates a query wherever it is.
func (m *Manager) Abort(id int) error { return m.op(id, "abort") }

func (m *Manager) op(id int, kind string) error {
	var rerr error
	err := m.call(func() {
		if _, ok := m.srv.Lookup(id); !ok {
			rerr = ErrNotFound
			return
		}
		switch kind {
		case "block":
			if rerr = m.srv.Block(id); rerr == nil {
				m.metrics.incBlocked()
				m.events.add(m.srv.Now(), id, EventBlocked, "")
			}
		case "unblock":
			if rerr = m.srv.Unblock(id); rerr == nil {
				m.metrics.incUnblocked()
				m.events.add(m.srv.Now(), id, EventUnblocked, "")
			}
		case "abort":
			if rerr = m.srv.Abort(id); rerr == nil {
				m.metrics.incAborted()
				delete(m.lastFinish, id)
				delete(m.queuedSet, id)
				delete(m.schedSet, id)
				if m.calib != nil {
					m.calib.Forget(id) // an abort is not an ETA residual
				}
				m.events.add(m.srv.Now(), id, EventAborted, "")
				// Aborting an admitted query frees its MPL slot and the
				// scheduler refills from the queue synchronously; record the
				// replacement's admission now rather than at the next tick.
				m.recordAdmissions()
			}
		}
		if rerr == nil {
			m.updateDepths()
		}
	})
	if err != nil {
		return err
	}
	return rerr
}

// SetPriority changes a query's priority (the §3.1 "natural choice").
func (m *Manager) SetPriority(id, priority int) error {
	var rerr error
	err := m.call(func() {
		if _, ok := m.srv.Lookup(id); !ok {
			rerr = ErrNotFound
			return
		}
		if rerr = m.srv.SetPriority(id, priority); rerr == nil {
			m.events.add(m.srv.Now(), id, EventPriority, fmt.Sprintf("priority=%d", priority))
		}
	})
	if err != nil {
		return err
	}
	return rerr
}

// Advance synchronously advances virtual time by vsec seconds (in quantum
// steps), independent of the wall-clock ticker. Deterministic tests and
// batch drivers use it; with TickEvery < 0 it is the only clock source.
func (m *Manager) Advance(vsec float64) error {
	// Non-finite values are rejected explicitly: NaN slips through every
	// ordinary comparison (each negated comparison admits it), and ±Inf would
	// either freeze the loop or accrue unpayable debt.
	if math.IsNaN(vsec) || math.IsInf(vsec, 0) || vsec <= 0 || vsec > 1e9 {
		return fmt.Errorf("service: advance of %g seconds out of range", vsec)
	}
	return m.call(func() { m.advance(vsec) })
}

// Diagram renders the §2.2 stage diagram of the currently admitted queries.
// A pure snapshot read.
func (m *Manager) Diagram(width int) (string, error) {
	snap, err := m.read()
	if err != nil {
		return "", err
	}
	// Non-stage modes annotate each finish with its uncertainty band; stage
	// mode passes nil bands, rendering byte-identically to the classic
	// diagram (the sim traces embed diagrams, so this is load-bearing).
	var bands map[int]core.Interval
	if snap.Estimator != core.EstimatorStage {
		est := m.estimatesFor(snap)
		bands = make(map[int]core.Interval, len(est.perQuery))
		for id, e := range est.perQuery {
			if !math.IsInf(e.ETAHigh, 0) && !math.IsNaN(e.ETALow) {
				bands[id] = core.Interval{Low: e.ETALow, High: e.ETAHigh}
			}
		}
	}
	return core.StageDiagramBands(snap.Sched.StatesRunning(), snap.Sched.RateC, width, bands), nil
}

// SpeedUpSingle runs the §3.1 planner: the h best victims to block so that
// the target query speeds up the most. The planners are pure functions of
// the query states, so they run on the caller's goroutine over the latest
// snapshot instead of stalling the scheduler.
func (m *Manager) SpeedUpSingle(targetID, h int) ([]wm.Victim, error) {
	snap, err := m.read()
	if err != nil {
		return nil, err
	}
	return wm.SpeedUpSingle(snap.Sched.StatesRunning(), snap.Sched.RateC, targetID, h)
}

// SpeedUpOthers runs the §3.2 planner: the single victim whose blocking most
// improves everyone else's total response time. A pure snapshot read.
func (m *Manager) SpeedUpOthers() (wm.Victim, error) {
	snap, err := m.read()
	if err != nil {
		return wm.Victim{}, err
	}
	return wm.SpeedUpOthers(snap.Sched.StatesRunning(), snap.Sched.RateC)
}

// PlanMaintenance runs the §3.3 planner: which queries to abort now so the
// rest finish within deadline seconds. exact switches from the greedy
// knapsack to the branch-and-bound optimum (n ≤ 25). A pure snapshot read.
func (m *Manager) PlanMaintenance(deadline float64, mode wm.LostWorkMode, exact bool) (wm.MaintenancePlan, error) {
	// A NaN deadline makes every knapsack comparison false and ±Inf turns the
	// plan degenerate; both must be rejected here, not just at the HTTP layer,
	// because library callers reach this method directly.
	if math.IsNaN(deadline) || math.IsInf(deadline, 0) {
		return wm.MaintenancePlan{}, fmt.Errorf("service: non-finite maintenance deadline %g", deadline)
	}
	snap, err := m.read()
	if err != nil {
		return wm.MaintenancePlan{}, err
	}
	states := snap.Sched.StatesRunning()
	if exact {
		return wm.PlanMaintenanceExact(states, snap.Sched.RateC, deadline, mode)
	}
	return wm.PlanMaintenance(states, snap.Sched.RateC, deadline, mode)
}

// Load is a point-in-time summary of this manager's outstanding work, read
// lock-free from the published snapshot. The cluster router polls it on
// every routing decision, so it deliberately computes no estimates — just
// counts and the total refined remaining cost.
type Load struct {
	Epoch      uint64  // snapshot epoch the figures were read from
	Now        float64 // shard-local virtual clock, seconds
	Admitted   int     // running + blocked queries holding MPL slots
	Queued     int     // admission-queue depth
	Scheduled  int     // future arrivals not yet submitted
	RemainingU float64 // refined remaining cost across admitted/queued/scheduled, in U's
	// FoldTables lists the tables with a live shared-scan group on this
	// shard, sorted. A fold-aware router steers same-table scans here so they
	// join the cursor instead of paying a full scan elsewhere.
	FoldTables []string
}

// Load returns the current routing load signal. It is a pure snapshot read
// (no owner-channel sends) and stays readable after Close, so a router never
// stalls behind a busy or closing shard.
func (m *Manager) Load() Load {
	s := m.snap.Load()
	admitted, queued, remaining := s.Sched.LoadStats()
	return Load{
		Epoch:      s.Epoch,
		Now:        s.Sched.Now,
		Admitted:   admitted,
		Queued:     queued,
		Scheduled:  len(s.Sched.Scheduled),
		RemainingU: remaining,
		FoldTables: s.Sched.FoldTables,
	}
}

// viewLocked builds the client view of one query. Owner goroutine only.
func (m *Manager) viewLocked(id int) QueryView {
	info, _ := m.srv.SnapshotQuery(id)
	est := m.estimates()
	view := makeView(info, est[info.ID])
	view.Now = Seconds(m.srv.Now())
	return view
}
