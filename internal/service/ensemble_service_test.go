package service

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// ensembleManager is manual() with a non-stage estimator mode.
func ensembleManager(t testing.TB, db *engine.DB, sc sched.Config, mode string) *Manager {
	t.Helper()
	m := New(db, Config{Sched: sc, TickEvery: -1, Estimator: mode})
	t.Cleanup(m.Close)
	return m
}

// TestEnsembleServiceEndToEnd drives an ensemble-mode manager through a full
// workload: views must carry real uncertainty bands bracketing the blended
// point, the overview must expose the mode and normalized weights, finishes
// must feed the calibration accumulator (visible through the band-coverage
// counters), and the diagram must annotate ETAs with bands.
func TestEnsembleServiceEndToEnd(t *testing.T) {
	db := engine.Open()
	for i := 0; i < 3; i++ {
		loadTable(t, db, fmt.Sprintf("ens%d", i), 6+2*i)
	}
	m := ensembleManager(t, db, sched.Config{RateC: 10, Quantum: 0.5, MPL: 2}, core.EstimatorEnsemble)

	ids := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		v, err := m.Submit(SubmitRequest{Label: fmt.Sprintf("q%d", i), SQL: fmt.Sprintf("SELECT SUM(a) FROM ens%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := m.Advance(1); err != nil {
		t.Fatal(err)
	}

	p, err := m.Progress(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	lo, point, hi := float64(p.ETALow), float64(p.MultiETA), float64(p.ETAHigh)
	if !(lo <= point && point <= hi) {
		t.Fatalf("band [%g,%g] misses point %g", lo, hi, point)
	}
	if hi-lo <= 0 {
		t.Fatalf("ensemble band degenerate: %+v", p)
	}

	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Estimator != core.EstimatorEnsemble {
		t.Fatalf("overview estimator = %q", ov.Estimator)
	}
	sum := 0.0
	for _, w := range ov.Weights {
		sum += w
	}
	if len(ov.Weights) != 3 || math.Abs(sum-1) > 1e-9 {
		t.Fatalf("overview weights = %v", ov.Weights)
	}

	d, err := m.Diagram(40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d, "±[") {
		t.Fatalf("diagram carries no band annotation:\n%s", d)
	}

	// Drain everything; finishes must land residuals in the calibration
	// accumulator and show up in the metrics text.
	for i := 0; i < 40; i++ {
		if err := m.Advance(1); err != nil {
			t.Fatal(err)
		}
	}
	ov, err = m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Finished) != 3 {
		t.Fatalf("finished %d queries, want 3", len(ov.Finished))
	}

	text := m.Metrics().Text()
	for _, want := range []string{
		`mqpi_estimator_weight{member="stage"}`,
		`mqpi_estimator_weight{member="cost"}`,
		`mqpi_estimator_weight{member="speed"}`,
		"mqpi_eta_band_finishes_total 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}

	// Residuals landed → weights are no longer uniform thirds (the members
	// genuinely differ on this workload), yet still normalized.
	snap, err := m.read()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Calib.Samples != 3 {
		t.Fatalf("calibration samples = %d, want 3", snap.Calib.Samples)
	}
	for _, name := range core.MemberNames {
		if _, ok := snap.Calib.Errors[name]; !ok {
			t.Fatalf("no rolling error for member %s: %+v", name, snap.Calib)
		}
	}
}

// TestEnsembleFinishedViewsZeroBand: terminal and not-yet-arrived queries
// render the same fixed band conventions as the point ETAs.
func TestEnsembleFinishedViewsZeroBand(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "ensz", 4)
	m := ensembleManager(t, db, sched.Config{RateC: 100, Quantum: 0.5}, core.EstimatorSpeed)

	v, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM ensz"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM ensz", Delay: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Advance(0.5); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.Progress(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != "finished" || p.ETALow != 0 || p.ETAHigh != 0 {
		t.Fatalf("finished view = %+v", p)
	}
	ps, err := m.Progress(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != "scheduled" || !math.IsInf(float64(ps.ETALow), 1) || !math.IsInf(float64(ps.ETAHigh), 1) {
		t.Fatalf("scheduled view = %+v", ps)
	}
}

// TestStageModeNoEnsembleSurface: in default stage mode the new surfaces stay
// inert — degenerate bands equal to the point, no weights, no estimator
// metrics lines — so the refactor is invisible until opted into.
func TestStageModeNoEnsembleSurface(t *testing.T) {
	db := engine.Open()
	loadTable(t, db, "stg", 6)
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5})

	v, err := m.Submit(SubmitRequest{SQL: "SELECT SUM(a) FROM stg"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	p, err := m.Progress(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.ETALow != p.MultiETA || p.ETAHigh != p.MultiETA {
		t.Fatalf("stage-mode band not degenerate: %+v", p)
	}
	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Estimator != core.EstimatorStage || ov.Weights != nil {
		t.Fatalf("stage-mode overview estimator=%q weights=%v", ov.Estimator, ov.Weights)
	}
	if text := m.Metrics().Text(); strings.Contains(text, "mqpi_estimator_weight") ||
		strings.Contains(text, "mqpi_eta_band") {
		t.Fatal("stage mode exposes ensemble metrics")
	}
	d, err := m.Diagram(40)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(d, "±[") {
		t.Fatalf("stage-mode diagram carries band annotations:\n%s", d)
	}
}
