package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mqpi/internal/engine"
	"mqpi/internal/sched"
)

// Service-layer coverage for the three-phase tick: the /exec 409 deadline,
// worker-count plumbing into the overview, and event-log determinism across
// execute-phase worker counts.

// occupyOwner parks the owner goroutine inside a request until release is
// closed, simulating a long tick holding the owner busy.
func occupyOwner(t *testing.T, m *Manager) (release func()) {
	t.Helper()
	rel := make(chan struct{})
	entered := make(chan struct{})
	m.reqs <- func() { close(entered); <-rel }
	<-entered
	return func() { close(rel) }
}

func TestExecDeadlineBusy(t *testing.T) {
	db := engine.Open()
	m := New(db, Config{
		Sched:        sched.Config{RateC: 10, Quantum: 0.5},
		TickEvery:    -1,
		ExecDeadline: 20 * time.Millisecond,
	})
	t.Cleanup(m.Close)

	release := occupyOwner(t, m)
	if _, err := m.Exec("CREATE TABLE busy1 (a BIGINT)"); !errors.Is(err, ErrBusy) {
		release()
		t.Fatalf("Exec while owner busy = %v, want ErrBusy", err)
	}
	release()

	// With the owner free again the same statement succeeds.
	if _, err := m.Exec("CREATE TABLE busy1 (a BIGINT)"); err != nil {
		t.Fatalf("Exec after release: %v", err)
	}
	if text := m.Metrics().Text(); !strings.Contains(text, "mqpi_exec_deadline_busy_total 1") {
		t.Error("busy counter not incremented in exposition")
	}

	// Mutations other than Exec keep the unbounded wait: Submit must not
	// inherit the deadline.
	release = occupyOwner(t, m)
	done := make(chan error, 1)
	go func() {
		_, err := m.Submit(SubmitRequest{SQL: "SELECT COUNT(*) FROM busy1"})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Submit returned early with %v, want it to wait for the owner", err)
	case <-time.After(60 * time.Millisecond):
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("Submit after release: %v", err)
	}
}

func TestHTTPExecConflict(t *testing.T) {
	db := engine.Open()
	m := New(db, Config{
		Sched:        sched.Config{RateC: 10, Quantum: 0.5},
		TickEvery:    -1,
		ExecDeadline: 20 * time.Millisecond,
	})
	t.Cleanup(m.Close)
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(ts.Close)

	release := occupyOwner(t, m)
	var out map[string]string
	doJSON(t, "POST", ts.URL+"/exec", map[string]string{"sql": "CREATE TABLE h1 (a BIGINT)"},
		http.StatusConflict, &out)
	release()
	if out["error"] == "" {
		t.Error("409 body carries no error message")
	}
	doJSON(t, "POST", ts.URL+"/exec", map[string]string{"sql": "CREATE TABLE h1 (a BIGINT)"},
		http.StatusOK, nil)
}

func TestOverviewReportsWorkers(t *testing.T) {
	db := engine.Open()
	m := manual(t, db, sched.Config{RateC: 10, Quantum: 0.5, Workers: 3})
	ov, err := m.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Workers != 3 {
		t.Errorf("Overview.Workers = %d, want 3", ov.Workers)
	}
	if text := m.Metrics().Text(); !strings.Contains(text, "mqpi_exec_workers 3") {
		t.Error("workers gauge missing from exposition")
	}
}

// runEventScript drives one manager through a fixed workload — staggered
// arrivals, mixed priorities, a block/unblock, an abort — entirely on the
// manual clock, and returns the full merged event log.
func runEventScript(t *testing.T, workers int) []Event {
	t.Helper()
	db := engine.Open()
	loadTable(t, db, "ev", 12)
	m := manual(t, db, sched.Config{RateC: 8, Quantum: 0.25, MPL: 3, Workers: workers})

	ids := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		req := SubmitRequest{
			Label:    fmt.Sprintf("q%d", i),
			SQL:      "SELECT SUM(a) FROM ev",
			Priority: i % 3,
		}
		if i >= 4 {
			req.Delay = 0.6 + 0.25*float64(i)
		}
		v, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	step := func(vsec float64) {
		t.Helper()
		if err := m.Advance(vsec); err != nil {
			t.Fatal(err)
		}
	}
	step(0.5)
	if err := m.Block(ids[1]); err != nil {
		t.Fatal(err)
	}
	step(0.75)
	if err := m.SetPriority(ids[2], 4); err != nil {
		t.Fatal(err)
	}
	if err := m.Unblock(ids[1]); err != nil {
		t.Fatal(err)
	}
	step(1)
	if err := m.Abort(ids[5]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		step(1)
	}
	return m.Events(0)
}

// TestEventsDeterministicAcrossWorkers pins the satellite guarantee: the
// /events stream — including retirement order and estimate revisions — is
// identical whether runners execute inline or on a parallel worker pool.
func TestEventsDeterministicAcrossWorkers(t *testing.T) {
	serial := runEventScript(t, 1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		parallel := runEventScript(t, workers)
		if len(serial) != len(parallel) {
			t.Fatalf("workers=%d: %d events, serial has %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			s, p := serial[i], parallel[i]
			// Wall timestamps differ run to run; everything else must match.
			if s.Seq != p.Seq || s.Virtual != p.Virtual || s.QueryID != p.QueryID ||
				s.Type != p.Type || s.Detail != p.Detail {
				t.Fatalf("workers=%d event %d:\n serial   %+v\n parallel %+v", workers, i, s, p)
			}
		}
	}
}
