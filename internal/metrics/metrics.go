// Package metrics provides the small amount of plumbing the experiment
// harness needs: named (x, y) series, text rendering of figures as aligned
// tables, and relative-error helpers matching the paper's definition.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name string
	Pts  []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Pts = append(s.Pts, Point{X: x, Y: y}) }

// YAt returns the y value at x (within tolerance), or NaN.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Pts {
		if math.Abs(p.X-x) < 1e-9 {
			return p.Y
		}
	}
	return math.NaN()
}

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Pts) == 0 {
		return Point{}, false
	}
	return s.Pts[len(s.Pts)-1], true
}

// Figure is a set of series sharing an x axis, renderable as a text table —
// the harness's stand-in for the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, attaches, and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// xGrid returns the sorted union of x values across all series.
func (f *Figure) xGrid() []float64 {
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Pts {
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x-out[len(out)-1] > 1e-9 {
			out = append(out, x)
		}
	}
	return out
}

// Render draws the figure as an aligned text table, one row per x value and
// one column per series. Missing samples render as "-".
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for _, x := range f.xGrid() {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, formatNum(y))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row —
// ready for gnuplot/matplotlib. Missing samples are empty cells.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range f.xGrid() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			y := s.YAt(x)
			if !math.IsNaN(y) {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func formatNum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// RelErr is the paper's relative error |est − actual| / actual × 100%,
// returned as a fraction (0.35 = 35%). A zero actual with a zero estimate is
// a perfect prediction; a zero actual otherwise yields +Inf.
func RelErr(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if math.IsInf(est, 0) {
		return math.Inf(1)
	}
	return math.Abs(est-actual) / math.Abs(actual)
}

// Mean averages the values, ignoring NaNs; +Inf values saturate the mean.
func Mean(vals []float64) float64 {
	n := 0
	sum := 0.0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
