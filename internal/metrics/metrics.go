// Package metrics provides the small amount of plumbing the experiment
// harness needs: named (x, y) series, text rendering of figures as aligned
// tables, and relative-error helpers matching the paper's definition.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name string
	Pts  []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Pts = append(s.Pts, Point{X: x, Y: y}) }

// YAt returns the y value at x (within tolerance), or NaN.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Pts {
		if math.Abs(p.X-x) < 1e-9 {
			return p.Y
		}
	}
	return math.NaN()
}

// seriesIndex is a sorted x→y lookup built once per series, replacing the
// per-grid-point linear YAt scan that made figure rendering O(points²). It
// preserves YAt's exact semantics — first point in insertion order within the
// 1e-9 tolerance wins — so rendered output is unchanged.
type seriesIndex struct {
	pts []indexedPoint
}

type indexedPoint struct {
	Point
	ord int
}

func (s *Series) index() *seriesIndex {
	ip := make([]indexedPoint, len(s.Pts))
	for i, p := range s.Pts {
		ip[i] = indexedPoint{Point: p, ord: i}
	}
	sort.SliceStable(ip, func(i, j int) bool { return ip[i].X < ip[j].X })
	return &seriesIndex{pts: ip}
}

// yAt returns the y value at x (within tolerance), or NaN — binary search
// plus a scan of the (tiny) tolerance band for the earliest-inserted match.
func (ix *seriesIndex) yAt(x float64) float64 {
	lo := sort.Search(len(ix.pts), func(i int) bool { return ix.pts[i].X >= x-1e-9 })
	best := -1
	y := math.NaN()
	for i := lo; i < len(ix.pts) && ix.pts[i].X <= x+1e-9; i++ {
		if math.Abs(ix.pts[i].X-x) < 1e-9 && (best < 0 || ix.pts[i].ord < best) {
			best = ix.pts[i].ord
			y = ix.pts[i].Y
		}
	}
	return y
}

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Pts) == 0 {
		return Point{}, false
	}
	return s.Pts[len(s.Pts)-1], true
}

// Figure is a set of series sharing an x axis, renderable as a text table —
// the harness's stand-in for the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, attaches, and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// xGrid returns the sorted union of x values across all series.
func (f *Figure) xGrid() []float64 {
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Pts {
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x-out[len(out)-1] > 1e-9 {
			out = append(out, x)
		}
	}
	return out
}

// Render draws the figure as an aligned text table, one row per x value and
// one column per series. Missing samples render as "-".
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	idx := make([]*seriesIndex, len(f.Series))
	for i, s := range f.Series {
		idx[i] = s.index()
	}
	rows := [][]string{cols}
	for _, x := range f.xGrid() {
		row := []string{formatNum(x)}
		for si := range f.Series {
			y := idx[si].yAt(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, formatNum(y))
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row —
// ready for gnuplot/matplotlib. Missing samples are empty cells.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	idx := make([]*seriesIndex, len(f.Series))
	for i, s := range f.Series {
		idx[i] = s.index()
	}
	for _, x := range f.xGrid() {
		fmt.Fprintf(&b, "%g", x)
		for si := range f.Series {
			b.WriteByte(',')
			y := idx[si].yAt(x)
			if !math.IsNaN(y) {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// jsonNum marshals like a float64 but emits null for NaN and ±Inf, which
// encoding/json rejects outright — figures legitimately contain +Inf relative
// errors in unstable regimes.
type jsonNum float64

// MarshalJSON implements json.Marshaler.
func (v jsonNum) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return []byte(strconv.FormatFloat(f, 'g', -1, 64)), nil
}

// JSON renders the figure as a single JSON object:
//
//	{"title":…,"xlabel":…,"ylabel":…,"series":[{"name":…,"points":[[x,y],…]},…]}
//
// Points are emitted per series in insertion order (no grid alignment), so
// the output is lossless; NaN and ±Inf values become null.
func (f *Figure) JSON() (string, error) {
	type jsSeries struct {
		Name   string       `json:"name"`
		Points [][2]jsonNum `json:"points"`
	}
	out := struct {
		Title  string     `json:"title"`
		XLabel string     `json:"xlabel"`
		YLabel string     `json:"ylabel"`
		Series []jsSeries `json:"series"`
	}{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, Series: make([]jsSeries, 0, len(f.Series))}
	for _, s := range f.Series {
		js := jsSeries{Name: s.Name, Points: make([][2]jsonNum, 0, len(s.Pts))}
		for _, p := range s.Pts {
			js.Points = append(js.Points, [2]jsonNum{jsonNum(p.X), jsonNum(p.Y)})
		}
		out.Series = append(out.Series, js)
	}
	b, err := json.Marshal(out)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func formatNum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// RelErr is the paper's relative error |est − actual| / actual × 100%,
// returned as a fraction (0.35 = 35%). A zero actual with a zero estimate is
// a perfect prediction; a zero actual otherwise yields +Inf.
func RelErr(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if math.IsInf(est, 0) {
		return math.Inf(1)
	}
	return math.Abs(est-actual) / math.Abs(actual)
}

// Mean averages the values, ignoring NaNs; +Inf values saturate the mean.
func Mean(vals []float64) float64 {
	n := 0
	sum := 0.0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
