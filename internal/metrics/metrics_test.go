package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "s"}
	if _, ok := s.Last(); ok {
		t.Error("empty series has no last point")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if p, ok := s.Last(); !ok || p.X != 2 || p.Y != 20 {
		t.Errorf("Last = %+v, %v", p, ok)
	}
	if got := s.YAt(1); got != 10 {
		t.Errorf("YAt(1) = %g", got)
	}
	if got := s.YAt(3); !math.IsNaN(got) {
		t.Errorf("YAt(missing) = %g", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x", YLabel: "u"}
	a := f.AddSeries("alpha")
	b := f.AddSeries("beta")
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 10)
	b.Add(2, 30) // ragged grid: row 1 has no beta, row 2 no alpha
	out := f.Render()
	for _, frag := range []string{"== T ==", "alpha", "beta", "(y: u)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 x rows + ylabel = 7 lines.
	if len(lines) != 7 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing-cell marker absent:\n%s", out)
	}
}

func TestFigureRenderInf(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x"}
	s := f.AddSeries("s")
	s.Add(0, math.Inf(1))
	if !strings.Contains(f.Render(), "inf") {
		t.Error("inf should render")
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{90, 100, 0.1},
		{110, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{200, -100, 3},
	}
	for _, c := range cases {
		if got := RelErr(c.est, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%g, %g) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
	if got := RelErr(5, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(5,0) = %g", got)
	}
	if got := RelErr(math.Inf(1), 100); !math.IsInf(got, 1) {
		t.Errorf("RelErr(inf,100) = %g", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Errorf("Mean with NaN = %g", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("Mean with inf = %g", got)
	}
}

func TestFormatNumStable(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x"}
	s := f.AddSeries("s")
	s.Add(0.025, 123.456)
	s.Add(1000000, 0.5)
	out := f.Render()
	if !strings.Contains(out, "0.0250") || !strings.Contains(out, "123.5") {
		t.Errorf("number formatting:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{Title: "T", XLabel: "lambda"}
	a := f.AddSeries("single, est") // comma forces quoting
	b := f.AddSeries("multi")
	a.Add(0, 1.5)
	a.Add(0.05, 2)
	b.Add(0, 0.5)
	got := f.CSV()
	want := "lambda,\"single, est\",multi\n0,1.5,0.5\n0.05,2,\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
}
