package metrics

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "s"}
	if _, ok := s.Last(); ok {
		t.Error("empty series has no last point")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if p, ok := s.Last(); !ok || p.X != 2 || p.Y != 20 {
		t.Errorf("Last = %+v, %v", p, ok)
	}
	if got := s.YAt(1); got != 10 {
		t.Errorf("YAt(1) = %g", got)
	}
	if got := s.YAt(3); !math.IsNaN(got) {
		t.Errorf("YAt(missing) = %g", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x", YLabel: "u"}
	a := f.AddSeries("alpha")
	b := f.AddSeries("beta")
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 10)
	b.Add(2, 30) // ragged grid: row 1 has no beta, row 2 no alpha
	out := f.Render()
	for _, frag := range []string{"== T ==", "alpha", "beta", "(y: u)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 3 x rows + ylabel = 7 lines.
	if len(lines) != 7 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Missing cells render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing-cell marker absent:\n%s", out)
	}
}

func TestFigureRenderInf(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x"}
	s := f.AddSeries("s")
	s.Add(0, math.Inf(1))
	if !strings.Contains(f.Render(), "inf") {
		t.Error("inf should render")
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		est, actual, want float64
	}{
		{90, 100, 0.1},
		{110, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{200, -100, 3},
	}
	for _, c := range cases {
		if got := RelErr(c.est, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%g, %g) = %g, want %g", c.est, c.actual, got, c.want)
		}
	}
	if got := RelErr(5, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(5,0) = %g", got)
	}
	if got := RelErr(math.Inf(1), 100); !math.IsInf(got, 1) {
		t.Errorf("RelErr(inf,100) = %g", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Errorf("Mean with NaN = %g", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("Mean with inf = %g", got)
	}
}

func TestFormatNumStable(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x"}
	s := f.AddSeries("s")
	s.Add(0.025, 123.456)
	s.Add(1000000, 0.5)
	out := f.Render()
	if !strings.Contains(out, "0.0250") || !strings.Contains(out, "123.5") {
		t.Errorf("number formatting:\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{Title: "T", XLabel: "lambda"}
	a := f.AddSeries("single, est") // comma forces quoting
	b := f.AddSeries("multi")
	a.Add(0, 1.5)
	a.Add(0.05, 2)
	b.Add(0, 0.5)
	got := f.CSV()
	want := "lambda,\"single, est\",multi\n0,1.5,0.5\n0.05,2,\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
}

// TestSeriesIndexMatchesYAt: the render-time index must agree with the naive
// linear scan on every lookup, including duplicate x values (first inserted
// wins), tolerance-band neighbors, and misses.
func TestSeriesIndexMatchesYAt(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(1, 11) // duplicate x: YAt returns the first inserted (10)
	s.Add(2, 20)
	s.Add(1+5e-10, 99) // inside the tolerance band of x=1, inserted later
	ix := s.index()
	for _, x := range []float64{0, 1, 1 + 5e-10, 2, 2.5, 3, 1e9} {
		want := s.YAt(x)
		got := ix.yAt(x)
		if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && got != want) {
			t.Errorf("yAt(%g) = %g, YAt = %g", x, got, want)
		}
	}
}

// TestFigureJSON: lossless emission, with NaN/Inf as null.
func TestFigureJSON(t *testing.T) {
	f := Figure{Title: "T", XLabel: "x", YLabel: "y"}
	s := f.AddSeries("s")
	s.Add(0, 1.5)
	s.Add(1, math.Inf(1))
	s.Add(2, math.NaN())
	got, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"T","xlabel":"x","ylabel":"y","series":[{"name":"s","points":[[0,1.5],[1,null],[2,null]]}]}`
	if got != want {
		t.Errorf("JSON:\n%s\nwant:\n%s", got, want)
	}
}

// figure10k builds the benchmark figure: 3 series × 10k points on a shared
// grid — the shape a long trajectory experiment produces.
func figure10k() *Figure {
	f := &Figure{Title: "bench", XLabel: "t"}
	for si := 0; si < 3; si++ {
		s := f.AddSeries(fmt.Sprintf("s%d", si))
		for i := 0; i < 10000; i++ {
			s.Add(float64(i)*0.5, float64(si*i))
		}
	}
	return f
}

func BenchmarkFigureRender10k(b *testing.B) {
	f := figure10k()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkFigureCSV10k(b *testing.B) {
	f := figure10k()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.CSV()) == 0 {
			b.Fatal("empty csv")
		}
	}
}
