package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(1.2, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewZipf(0, 10); err == nil {
		t.Error("a=0 should fail")
	}
	if _, err := NewZipf(-1, 10); err == nil {
		t.Error("a<0 should fail")
	}
}

func TestZipfSamplesInRange(t *testing.T) {
	z, err := NewZipf(1.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		k := z.Sample(rng)
		if k < 1 || k > 50 {
			t.Fatalf("sample %d out of range", k)
		}
	}
	if z.K() != 50 || z.A() != 1.2 {
		t.Errorf("accessors: %d, %g", z.K(), z.A())
	}
}

func TestZipfSkew(t *testing.T) {
	z, _ := NewZipf(2.2, 20)
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 21)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// P(1) = 1/H where H = Σ_{k≤20} 1/k^2.2 ≈ 1.47: about 68%.
	frac1 := float64(counts[1]) / n
	if frac1 < 0.6 || frac1 < float64(counts[2])/n {
		t.Errorf("P(1) = %g; distribution not Zipf-skewed", frac1)
	}
	// Monotone decreasing probabilities (statistically).
	if counts[1] < counts[2] || counts[2] < counts[5] {
		t.Errorf("counts not decreasing: %v", counts[:6])
	}
}

func TestZipfMeanMatchesEmpirical(t *testing.T) {
	z, _ := NewZipf(1.2, 30)
	analytic := z.Mean()
	rng := rand.New(rand.NewSource(5))
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(z.Sample(rng))
	}
	empirical := sum / n
	if math.Abs(analytic-empirical) > 0.1*analytic {
		t.Errorf("mean: analytic %g vs empirical %g", analytic, empirical)
	}
}

// Property: the CDF is complete — for any u in [0,1) a sample exists, and a
// degenerate support of 1 always yields 1.
func TestZipfDegenerate(t *testing.T) {
	z, err := NewZipf(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		if z.Sample(rng) != 1 {
			t.Fatal("K=1 must always sample 1")
		}
	}
	if z.Mean() != 1 {
		t.Errorf("mean = %g", z.Mean())
	}
}

func TestZipfDeterministic(t *testing.T) {
	z, _ := NewZipf(1.2, 50)
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if z.Sample(a) != z.Sample(b) {
			t.Fatal("same seed must give same samples")
		}
	}
}

func TestPoissonInterarrivals(t *testing.T) {
	p := Poisson{Lambda: 0.1}
	rng := rand.New(rand.NewSource(7))
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		d := p.NextInterarrival(rng)
		if d < 0 {
			t.Fatal("negative interarrival")
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.5 {
		t.Errorf("mean interarrival = %g, want ~10", mean)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	p := Poisson{Lambda: 0}
	rng := rand.New(rand.NewSource(8))
	if !math.IsInf(p.NextInterarrival(rng), 1) {
		t.Error("zero rate should never fire")
	}
	if times := p.ArrivalTimes(rng, 100); len(times) != 0 {
		t.Errorf("arrivals: %v", times)
	}
}

func TestPoissonArrivalTimes(t *testing.T) {
	p := Poisson{Lambda: 0.5}
	rng := rand.New(rand.NewSource(9))
	times := p.ArrivalTimes(rng, 1000)
	// ~500 arrivals expected.
	if len(times) < 400 || len(times) > 600 {
		t.Errorf("arrival count = %d", len(times))
	}
	prev := 0.0
	for _, at := range times {
		if at <= prev || at > 1000 {
			t.Fatalf("bad arrival time %g after %g", at, prev)
		}
		prev = at
	}
}

// Property: arrival times are sorted and within the horizon for any rate.
func TestPoissonArrivalTimesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Poisson{Lambda: 0.01 + rng.Float64()}
		times := p.ArrivalTimes(rng, 200)
		prev := 0.0
		for _, at := range times {
			if at <= prev || at > 200 {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
