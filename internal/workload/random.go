// Package workload generates the paper's experimental workload: TPC-R-style
// relations (lineitem and the part_i family of Table 1), the nested query Qi
// over them, Zipfian size distributions, and Poisson arrival processes. All
// randomness flows through explicit *rand.Rand sources so every experiment
// is reproducible from its seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples from {1, …, K} with P(k) ∝ 1/k^a, the distribution the paper
// uses for the part-table sizes N_i. (math/rand's Zipf generator requires
// a > 1 and has a different parameterization; the experiments need exact
// control, so this one is implemented directly via the inverse CDF.)
type Zipf struct {
	a   float64
	cdf []float64
}

// NewZipf builds a Zipf distribution over {1..k} with exponent a > 0.
func NewZipf(a float64, k int) (*Zipf, error) {
	if k < 1 {
		return nil, fmt.Errorf("workload: Zipf support must be >= 1, got %d", k)
	}
	if a <= 0 {
		return nil, fmt.Errorf("workload: Zipf exponent must be positive, got %g", a)
	}
	cdf := make([]float64, k)
	sum := 0.0
	for i := 1; i <= k; i++ {
		sum += 1 / math.Pow(float64(i), a)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[k-1] = 1 // guard against rounding
	return &Zipf{a: a, cdf: cdf}, nil
}

// K returns the support size.
func (z *Zipf) K() int { return len(z.cdf) }

// A returns the exponent.
func (z *Zipf) A() float64 { return z.a }

// Sample draws one value in {1..K}.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Mean returns the distribution's expected value.
func (z *Zipf) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range z.cdf {
		m += float64(i+1) * (c - prev)
		prev = c
	}
	return m
}

// Poisson is a Poisson arrival process with rate Lambda (events/second).
type Poisson struct {
	Lambda float64
}

// NextInterarrival draws an exponential inter-arrival time. A non-positive
// rate yields +Inf (no arrivals).
func (p Poisson) NextInterarrival(rng *rand.Rand) float64 {
	if p.Lambda <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.Lambda
}

// ArrivalTimes returns all arrival instants in (0, horizon].
func (p Poisson) ArrivalTimes(rng *rand.Rand, horizon float64) []float64 {
	var out []float64
	t := 0.0
	for {
		t += p.NextInterarrival(rng)
		if t > horizon || math.IsInf(t, 1) {
			return out
		}
		out = append(out, t)
	}
}
