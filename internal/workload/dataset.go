package workload

import (
	"fmt"
	"math/rand"

	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
)

// DataConfig scales the Table 1 dataset. The paper used 24M lineitem tuples
// (3.02 GB); the defaults here shrink that to laptop-test size while keeping
// the schema and the ~30 lineitem matches per partkey that shape the
// correlated sub-query plans.
type DataConfig struct {
	// LineitemRows is the lineitem cardinality (default 120000).
	LineitemRows int
	// MatchesPerKey is the average number of lineitem rows per partkey
	// (default 30, as in the paper).
	MatchesPerKey int
	// Seed drives all data randomness.
	Seed int64
}

func (c DataConfig) withDefaults() DataConfig {
	if c.LineitemRows <= 0 {
		c.LineitemRows = 120000
	}
	if c.MatchesPerKey <= 0 {
		c.MatchesPerKey = 30
	}
	return c
}

// Dataset is a database loaded with the lineitem relation and zero or more
// part_i relations.
type Dataset struct {
	DB         *engine.DB
	Cfg        DataConfig
	MaxPartKey int64
	partTables map[int]int // part index -> N_i
	rng        *rand.Rand
}

// maxPartKey returns the lineitem key range implied by the config.
func (c DataConfig) maxPartKey() int64 {
	maxKey := int64(c.LineitemRows / c.MatchesPerKey)
	if maxKey < 1 {
		maxKey = 1
	}
	return maxKey
}

// lineitemRow draws one lineitem row. Keeping every rng draw inside this one
// function is what lets DatasetCache replay the generator stream without
// rebuilding the relation: hydration calls it the same number of times a
// fresh build would, discarding the rows.
func lineitemRow(rng *rand.Rand, maxKey int64) types.Row {
	partkey := rng.Int63n(maxKey) + 1
	quantity := int64(1 + rng.Intn(50))
	// TPC-style price: roughly proportional to quantity with noise.
	price := float64(quantity) * (900 + 200*rng.Float64())
	discount := float64(rng.Intn(11)) / 100
	return types.Row{
		types.NewInt(partkey),
		types.NewInt(quantity),
		types.NewFloat(price),
		types.NewFloat(discount),
	}
}

// BuildDataset returns a database with the lineitem relation (partkey,
// quantity, extendedprice, discount), an index on partkey, and fresh
// statistics. The base catalog is built at most once per DataConfig and
// process: later calls hydrate a private copy from the shared in-memory
// snapshot, with the generator rng replayed so the result is
// indistinguishable from a from-scratch build.
func BuildDataset(cfg DataConfig) (*Dataset, error) {
	return sharedCache.Hydrate(cfg)
}

// buildDatasetFresh constructs the base catalog from scratch.
func buildDatasetFresh(cfg DataConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	db := engine.Open()
	if _, err := db.Exec(`CREATE TABLE lineitem (partkey BIGINT, quantity BIGINT, extendedprice DOUBLE, discount DOUBLE)`); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxKey := cfg.maxPartKey()
	cat := db.Catalog()
	for i := 0; i < cfg.LineitemRows; i++ {
		if err := cat.Insert("lineitem", lineitemRow(rng, maxKey)); err != nil {
			return nil, err
		}
	}
	if _, err := db.Exec(`CREATE INDEX lineitem_partkey ON lineitem (partkey)`); err != nil {
		return nil, err
	}
	if err := db.Analyze(); err != nil {
		return nil, err
	}
	return &Dataset{
		DB:         db,
		Cfg:        cfg,
		MaxPartKey: maxKey,
		partTables: make(map[int]int),
		rng:        rng,
	}, nil
}

// PartTableName returns the name of the i-th part table.
func PartTableName(i int) string { return fmt.Sprintf("part_%d", i) }

// CreatePartTable creates part_i with 10×N_i tuples, each with a distinct
// partkey drawn uniformly from the lineitem key range (as in Table 1), and
// refreshes its statistics. It replaces any previous part_i.
func (d *Dataset) CreatePartTable(i, n int) error {
	if n < 1 {
		return fmt.Errorf("workload: N_%d must be >= 1, got %d", i, n)
	}
	name := PartTableName(i)
	if _, exists := d.partTables[i]; exists {
		if _, err := d.DB.Exec("DROP TABLE " + name); err != nil {
			return err
		}
		delete(d.partTables, i)
	}
	if _, err := d.DB.Exec(fmt.Sprintf(`CREATE TABLE %s (partkey BIGINT, retailprice DOUBLE)`, name)); err != nil {
		return err
	}
	rows := 10 * n
	if int64(rows) > d.MaxPartKey {
		return fmt.Errorf("workload: part_%d needs %d distinct partkeys but lineitem only has %d", i, rows, d.MaxPartKey)
	}
	seen := make(map[int64]bool, rows)
	cat := d.DB.Catalog()
	for len(seen) < rows {
		k := d.rng.Int63n(d.MaxPartKey) + 1
		if seen[k] {
			continue
		}
		seen[k] = true
		// Retail price centered near the average per-unit selling price so
		// the "25% below retail" predicate is selective but non-empty.
		retail := 1000 * (0.8 + 0.8*d.rng.Float64())
		row := types.Row{types.NewInt(k), types.NewFloat(retail)}
		if err := cat.Insert(name, row); err != nil {
			return err
		}
	}
	if err := cat.Analyze(name); err != nil {
		return err
	}
	d.partTables[i] = n
	return nil
}

// DropPartTable removes part_i if it exists.
func (d *Dataset) DropPartTable(i int) error {
	if _, exists := d.partTables[i]; !exists {
		return nil
	}
	delete(d.partTables, i)
	_, err := d.DB.Exec("DROP TABLE " + PartTableName(i))
	return err
}

// PartTables returns the currently loaded part table indexes and sizes.
func (d *Dataset) PartTables() map[int]int {
	out := make(map[int]int, len(d.partTables))
	for k, v := range d.partTables {
		out[k] = v
	}
	return out
}

// QuerySQL returns the paper's query Q_i: find parts selling on average 25%
// below suggested retail price, via a correlated sub-query whose plan is an
// index scan on lineitem.partkey.
func QuerySQL(i int) string {
	return fmt.Sprintf(
		`select * from %s p where p.retailprice*0.75 > `+
			`(select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)`,
		PartTableName(i))
}

// QueryTemplate selects one of the query families used to check the paper's
// "we repeated our experiments with other kinds of queries; the results were
// similar" claim. All templates over part_i have cost roughly proportional
// to N_i, so the PI behaviour carries over.
type QueryTemplate uint8

const (
	// TemplateRetail is the paper's published Q_i (25% below retail).
	TemplateRetail QueryTemplate = iota
	// TemplateMaxPrice compares against the maximum item price instead of
	// the average unit price (same correlated index-probe shape, different
	// aggregate).
	TemplateMaxPrice
	// TemplateGroupCount aggregates the matches per part and counts parts
	// with enough of them (sub-query in the select list feeding a scalar
	// aggregate).
	TemplateGroupCount
)

// String names the template.
func (t QueryTemplate) String() string {
	switch t {
	case TemplateRetail:
		return "retail"
	case TemplateMaxPrice:
		return "maxprice"
	case TemplateGroupCount:
		return "groupcount"
	default:
		return fmt.Sprintf("QueryTemplate(%d)", uint8(t))
	}
}

// QuerySQLVariant renders query template t over part_i.
func QuerySQLVariant(i int, t QueryTemplate) string {
	p := PartTableName(i)
	switch t {
	case TemplateMaxPrice:
		return fmt.Sprintf(
			`select * from %s p where p.retailprice > `+
				`(select max(l.extendedprice)/30 from lineitem l where l.partkey = p.partkey)`, p)
	case TemplateGroupCount:
		return fmt.Sprintf(
			`select count(*) from %s p where `+
				`(select count(*) from lineitem l where l.partkey = p.partkey) >= 25`, p)
	default:
		return QuerySQL(i)
	}
}
