package workload

import (
	"fmt"
	"sync"
	"testing"
)

// tableFingerprint renders every row of a table so datasets can be compared
// for exact equality.
func tableFingerprint(t *testing.T, ds *Dataset, name string) string {
	t.Helper()
	rows, _, _, err := ds.DB.Query("SELECT * FROM " + name)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%v\n", r)
	}
	return out
}

// TestHydrateMatchesFreshBuild: a cache-hydrated dataset must be
// indistinguishable from a from-scratch build — same lineitem contents, same
// plan costs, and the same part-table stream afterwards.
func TestHydrateMatchesFreshBuild(t *testing.T) {
	cfg := DataConfig{LineitemRows: 5000, Seed: 42}
	fresh, err := buildDatasetFresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewDatasetCache()
	hyd, err := cache.Hydrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tableFingerprint(t, hyd, "lineitem"), tableFingerprint(t, fresh, "lineitem"); got != want {
		t.Fatal("hydrated lineitem differs from fresh build")
	}
	// The replayed rng must continue the generator stream exactly: part
	// tables created after hydration match those created after a build.
	for _, ds := range []*Dataset{fresh, hyd} {
		if err := ds.CreatePartTable(1, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := tableFingerprint(t, hyd, PartTableName(1)), tableFingerprint(t, fresh, PartTableName(1)); got != want {
		t.Fatal("part table stream diverged after hydration")
	}
	// Plan costs agree (statistics were rebuilt identically).
	pf, err := fresh.DB.Plan(QuerySQL(1))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := hyd.DB.Plan(QuerySQL(1))
	if err != nil {
		t.Fatal(err)
	}
	if pf.EstCost() != ph.EstCost() {
		t.Fatalf("plan cost drifted: fresh %g vs hydrated %g", pf.EstCost(), ph.EstCost())
	}
}

// TestHydrateSeededIsPrivateAndDeterministic: same seed, same tables; private
// copies never interfere.
func TestHydrateSeededIsPrivateAndDeterministic(t *testing.T) {
	cfg := DataConfig{LineitemRows: 5000, Seed: 7}
	cache := NewDatasetCache()
	a, err := cache.HydrateSeeded(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.HydrateSeeded(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.HydrateSeeded(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []*Dataset{a, b, c} {
		if err := ds.CreatePartTable(3, 4); err != nil {
			t.Fatal(err)
		}
	}
	fa, fb, fc := tableFingerprint(t, a, PartTableName(3)), tableFingerprint(t, b, PartTableName(3)), tableFingerprint(t, c, PartTableName(3))
	if fa != fb {
		t.Error("same dataset seed must produce identical part tables")
	}
	if fa == fc {
		t.Error("different dataset seeds should produce different part tables")
	}
	// Mutating one copy must not leak into another.
	if err := a.DropPartTable(3); err != nil {
		t.Fatal(err)
	}
	if got := tableFingerprint(t, b, PartTableName(3)); got != fb {
		t.Error("datasets are not private")
	}
}

// TestCacheConcurrentHydration exercises the cache from many goroutines —
// the shape the worker pool produces — under the race detector.
func TestCacheConcurrentHydration(t *testing.T) {
	cfg := DataConfig{LineitemRows: 2000, Seed: 3}
	cache := NewDatasetCache()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds, err := cache.HydrateSeeded(cfg, int64(i))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = ds.CreatePartTable(1, 2)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
}
