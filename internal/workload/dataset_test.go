package workload

import (
	"strings"
	"testing"

	"mqpi/internal/engine/sql"
)

func smallData(t *testing.T) *Dataset {
	t.Helper()
	ds, err := BuildDataset(DataConfig{LineitemRows: 6000, MatchesPerKey: 30, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildDatasetShape(t *testing.T) {
	ds := smallData(t)
	cat := ds.DB.Catalog()
	li, err := cat.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if li.Rel.NumRows() != 6000 {
		t.Errorf("lineitem rows = %d", li.Rel.NumRows())
	}
	if ds.MaxPartKey != 200 {
		t.Errorf("MaxPartKey = %d, want 6000/30", ds.MaxPartKey)
	}
	if _, ok := cat.IndexOn("lineitem", "partkey"); !ok {
		t.Error("partkey index missing")
	}
	if cat.TableStats("lineitem") == nil {
		t.Error("stats missing after build")
	}
	// Keys live in [1, MaxPartKey].
	st := cat.TableStats("lineitem")
	if st.Cols["partkey"].Min.Int() < 1 || st.Cols["partkey"].Max.Int() > ds.MaxPartKey {
		t.Errorf("key range: %v..%v", st.Cols["partkey"].Min, st.Cols["partkey"].Max)
	}
}

func TestCreatePartTable(t *testing.T) {
	ds := smallData(t)
	if err := ds.CreatePartTable(1, 5); err != nil {
		t.Fatal(err)
	}
	cat := ds.DB.Catalog()
	pt, err := cat.Table("part_1")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rel.NumRows() != 50 {
		t.Errorf("part_1 rows = %d, want 10×N", pt.Rel.NumRows())
	}
	// All partkeys distinct.
	seen := map[int64]bool{}
	for p := 0; p < pt.Rel.NumPages(); p++ {
		for _, row := range pt.Rel.Page(p) {
			k := row[0].Int()
			if seen[k] {
				t.Fatalf("duplicate partkey %d", k)
			}
			if k < 1 || k > ds.MaxPartKey {
				t.Fatalf("partkey %d out of range", k)
			}
			seen[k] = true
		}
	}
	if cat.TableStats("part_1") == nil {
		t.Error("part stats missing")
	}
	// Recreating replaces the table.
	if err := ds.CreatePartTable(1, 3); err != nil {
		t.Fatal(err)
	}
	pt, _ = cat.Table("part_1")
	if pt.Rel.NumRows() != 30 {
		t.Errorf("recreated part_1 rows = %d", pt.Rel.NumRows())
	}
	if got := ds.PartTables(); got[1] != 3 {
		t.Errorf("PartTables: %v", got)
	}
}

func TestCreatePartTableErrors(t *testing.T) {
	ds := smallData(t)
	if err := ds.CreatePartTable(1, 0); err == nil {
		t.Error("N=0 should fail")
	}
	// 10×N must fit within the distinct key space (200 here).
	if err := ds.CreatePartTable(2, 21); err == nil {
		t.Error("oversized part table should fail")
	}
}

func TestDropPartTable(t *testing.T) {
	ds := smallData(t)
	if err := ds.CreatePartTable(7, 2); err != nil {
		t.Fatal(err)
	}
	if err := ds.DropPartTable(7); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.DB.Catalog().Table("part_7"); err == nil {
		t.Error("table should be gone")
	}
	// Dropping a non-existent table is a no-op.
	if err := ds.DropPartTable(7); err != nil {
		t.Errorf("double drop: %v", err)
	}
}

func TestQuerySQLParsesAndRuns(t *testing.T) {
	ds := smallData(t)
	if err := ds.CreatePartTable(1, 4); err != nil {
		t.Fatal(err)
	}
	src := QuerySQL(1)
	if !strings.Contains(src, "part_1") || !strings.Contains(src, "0.75") {
		t.Errorf("query text: %s", src)
	}
	if _, err := sql.ParseSelect(src); err != nil {
		t.Fatalf("query does not parse: %v", err)
	}
	rows, _, work, err := ds.DB.Query(src)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	// The predicate is selective but not empty or total for this seed.
	if len(rows) == 0 || len(rows) == 40 {
		t.Logf("note: predicate passed %d/40 rows", len(rows))
	}
	if work <= 0 {
		t.Error("no work accounted")
	}
	// Cost is dominated by the 40 correlated probes.
	if work < 40 {
		t.Errorf("work = %g U, expected at least one probe per part row", work)
	}
}

func TestMatchesPerKeyApproximation(t *testing.T) {
	ds := smallData(t)
	cat := ds.DB.Catalog()
	bt, _ := cat.IndexOn("lineitem", "partkey")
	total := 0
	for k := int64(1); k <= ds.MaxPartKey; k++ {
		total += len(bt.SearchEq(k).RowIDs)
	}
	avg := float64(total) / float64(ds.MaxPartKey)
	if avg < 25 || avg > 35 {
		t.Errorf("avg matches per key = %g, want ~30", avg)
	}
}

func TestPartTableNameFormat(t *testing.T) {
	if PartTableName(12) != "part_12" {
		t.Errorf("name: %s", PartTableName(12))
	}
}

func TestDatasetDefaults(t *testing.T) {
	cfg := DataConfig{}.withDefaults()
	if cfg.LineitemRows != 120000 || cfg.MatchesPerKey != 30 {
		t.Errorf("defaults: %+v", cfg)
	}
}
