package workload

import (
	"bytes"
	"math/rand"
	"sync"

	"mqpi/internal/engine"
)

// DatasetCache builds the base catalog (lineitem, its partkey index, and
// statistics) for each DataConfig once, keeps the serialized snapshot in
// memory, and hydrates cheap private copies from it. It exists for the
// parallel experiment harness: every (seed, parameter) simulation run needs
// its own mutable database — runs create and drop part tables — and
// regenerating the ~120k-tuple lineitem relation per run would dwarf the
// simulation itself. Hydration deserializes the immutable blob instead.
//
// The cache is safe for concurrent use; hydrated datasets are fully private
// (own engine, own rng) and need no synchronization.
type DatasetCache struct {
	mu    sync.Mutex
	blobs map[DataConfig][]byte
}

// NewDatasetCache creates an empty cache.
func NewDatasetCache() *DatasetCache {
	return &DatasetCache{blobs: make(map[DataConfig][]byte)}
}

// sharedCache backs BuildDataset and the experiment harness, so the same
// base catalog is reused across experiments, runs, and workers.
var sharedCache = NewDatasetCache()

// SharedCache returns the process-wide cache used by BuildDataset.
func SharedCache() *DatasetCache { return sharedCache }

// Snapshot returns the serialized base catalog for cfg, building it on
// first use. The returned blob is shared and must not be modified.
func (c *DatasetCache) Snapshot(cfg DataConfig) ([]byte, error) {
	cfg = cfg.withDefaults()
	c.mu.Lock()
	defer c.mu.Unlock()
	if blob, ok := c.blobs[cfg]; ok {
		return blob, nil
	}
	ds, err := buildDatasetFresh(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := ds.DB.Save(&buf); err != nil {
		return nil, err
	}
	blob := buf.Bytes()
	c.blobs[cfg] = blob
	return blob, nil
}

// hydrate loads a private database from the snapshot blob and wraps it as a
// Dataset around the given part-table rng.
func (c *DatasetCache) hydrate(cfg DataConfig, rng *rand.Rand) (*Dataset, error) {
	blob, err := c.Snapshot(cfg)
	if err != nil {
		return nil, err
	}
	db, err := engine.Load(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	return &Dataset{
		DB:         db,
		Cfg:        cfg,
		MaxPartKey: cfg.maxPartKey(),
		partTables: make(map[int]int),
		rng:        rng,
	}, nil
}

// Hydrate returns a private dataset equivalent to a from-scratch
// BuildDataset(cfg): same relation contents, and the part-table rng replayed
// to the exact state the generator would have left it in, so part tables
// created afterwards are bit-identical to the uncached behaviour.
func (c *DatasetCache) Hydrate(cfg DataConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxKey := cfg.maxPartKey()
	for i := 0; i < cfg.LineitemRows; i++ {
		lineitemRow(rng, maxKey)
	}
	return c.hydrate(cfg, rng)
}

// HydrateSeeded returns a private dataset whose part-table randomness starts
// from its own seed instead of continuing the base generator stream. This is
// what the parallel harness hands each worker: run i's part tables depend
// only on (cfg, seed_i), never on how many runs executed before it — the
// property that makes sweep output independent of worker interleaving.
func (c *DatasetCache) HydrateSeeded(cfg DataConfig, seed int64) (*Dataset, error) {
	cfg = cfg.withDefaults()
	return c.hydrate(cfg, rand.New(rand.NewSource(seed)))
}
