package sched

import (
	"math"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/engine/exec"
)

// runnerOn prepares another SUM(a) runner over an existing table, so several
// queries seq-scan the same relation.
func runnerOn(t testing.TB, db *engine.DB, name string) *exec.Runner {
	t.Helper()
	r, err := db.Prepare("SELECT SUM(a) FROM " + name)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectRows = false
	return r
}

// foldTrace drives the server to idle and records every query's charged-work
// trajectory: WorkDone after each tick, keyed by query ID, plus finish times.
type foldTrace struct {
	work   map[int][]float64
	finish map[int]float64
	cost   map[int]float64
}

func traceToIdle(srv *Server, ids []int) foldTrace {
	tr := foldTrace{work: map[int][]float64{}, finish: map[int]float64{}, cost: map[int]float64{}}
	for srv.Busy() && !srv.Stalled() && srv.Now() < 1e6 {
		srv.Tick()
		for _, id := range ids {
			if q, ok := srv.Lookup(id); ok && q.Runner != nil {
				tr.work[id] = append(tr.work[id], q.Runner.WorkDone())
			}
		}
	}
	for _, id := range ids {
		if q, ok := srv.Lookup(id); ok {
			tr.finish[id] = q.FinishTime
			tr.cost[id] = q.Runner.CostDone()
		}
	}
	return tr
}

func sameTrajectories(t *testing.T, label string, a, b foldTrace) {
	t.Helper()
	for id, wa := range a.work {
		wb := b.work[id]
		if len(wa) != len(wb) {
			t.Fatalf("%s: query %d trajectory lengths differ: %d vs %d", label, id, len(wa), len(wb))
		}
		for i := range wa {
			if math.Float64bits(wa[i]) != math.Float64bits(wb[i]) {
				t.Fatalf("%s: query %d diverges at tick %d: %v vs %v", label, id, i, wa[i], wb[i])
			}
		}
	}
	for id, fa := range a.finish {
		if math.Float64bits(fa) != math.Float64bits(b.finish[id]) {
			t.Fatalf("%s: query %d finish differs: %v vs %v", label, id, fa, b.finish[id])
		}
	}
}

// buildFoldWorkload creates a fresh engine with one shared 20-page table and
// submits three same-priority scans of it (two at t=0, one arriving at t=1 to
// exercise attach-at-offset) plus one scan of a private table.
func buildFoldWorkload(t testing.TB, srv *Server) []int {
	db := engine.Open()
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "shared", 20))
	q2 := srv.NewQuery("q2", "", 0, runnerOn(t, db, "shared"))
	q3 := srv.NewQuery("q3", "", 0, runnerOn(t, db, "shared"))
	q4 := srv.NewQuery("q4", "", 0, prepare(t, db, "private", 10))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Submit(q4)
	srv.ScheduleArrival(1.0, q3)
	return []int{q1.ID, q2.ID, q3.ID, q4.ID}
}

// TestFoldConservation is the I11 law at the scheduler: with folding on, each
// member charges a full solo lap while the group's physical reads cover the
// relation exactly once per rotation, so Σ(done−cost) = pages saved.
func TestFoldConservation(t *testing.T) {
	srv := newServer(Config{RateC: 20, Quantum: 0.5, Fold: true})
	ids := buildFoldWorkload(t, srv)
	if !srv.FoldEnabled() {
		t.Fatal("folding should be on")
	}
	tr := traceToIdle(srv, ids)
	var saved float64
	for _, id := range ids {
		q, _ := srv.Lookup(id)
		if q.Status != StatusFinished {
			t.Fatalf("query %d is %v", id, q.Status)
		}
		done, cost := q.Runner.WorkDone(), q.Runner.CostDone()
		if cost > done {
			t.Errorf("query %d: cost %g > done %g", id, cost, done)
		}
		saved += done - cost
	}
	st := srv.FoldStats()
	// All four attach (q4 seeds a 1-member group on its private table that
	// nothing ever joins); only the shared-table trio actually saves pages.
	if st.Attaches != 4 {
		t.Errorf("attaches = %d, want 4", st.Attaches)
	}
	if st.PagesSaved == 0 {
		t.Error("no pages saved")
	}
	// Integer page charges make the conservation law float-exact.
	if saved != float64(st.PagesSaved) {
		t.Errorf("Σ(done−cost) = %g, PagesSaved = %d", saved, st.PagesSaved)
	}
	if st.Groups != 0 || st.Members != 0 {
		t.Errorf("live groups remain after idle: %+v", st)
	}
	_ = tr
}

// TestFoldOffIdentical is the I12 law: the same workload with folding on and
// off yields bit-identical charged-work trajectories and finish times — only
// the engine-cost plane differs.
func TestFoldOffIdentical(t *testing.T) {
	on := newServer(Config{RateC: 20, Quantum: 0.5, Fold: true})
	idsOn := buildFoldWorkload(t, on)
	trOn := traceToIdle(on, idsOn)

	off := newServer(Config{RateC: 20, Quantum: 0.5})
	idsOff := buildFoldWorkload(t, off)
	trOff := traceToIdle(off, idsOff)

	if len(idsOn) != len(idsOff) {
		t.Fatal("workloads differ")
	}
	sameTrajectories(t, "fold on vs off", trOn, trOff)
	// The cost plane must actually diverge (otherwise folding did nothing).
	dropped := false
	for _, id := range idsOn {
		if trOn.cost[id] < trOff.cost[id] {
			dropped = true
		}
		if trOff.cost[id] != trOff.work[id][len(trOff.work[id])-1] {
			t.Errorf("fold off: query %d cost %g != done", id, trOff.cost[id])
		}
	}
	if !dropped {
		t.Error("folding saved no cost for any query")
	}
	if on.FoldStats().PagesSaved == 0 || off.FoldStats().PagesSaved != 0 {
		t.Errorf("fold stats: on=%+v off=%+v", on.FoldStats(), off.FoldStats())
	}
}

// TestFoldParallelDeterminism: with folding on, the parallel execute phase is
// bit-identical to serial at every worker count (a fold group is one work
// item, so its shared cursor is single-threaded by construction).
func TestFoldParallelDeterminism(t *testing.T) {
	var base foldTrace
	for i, workers := range []int{1, 2, 4} {
		srv := newServer(Config{RateC: 20, Quantum: 0.5, Fold: true, Workers: workers})
		ids := buildFoldWorkload(t, srv)
		tr := traceToIdle(srv, ids)
		srv.Close()
		if i == 0 {
			base = tr
			continue
		}
		sameTrajectories(t, "workers", base, tr)
	}
}

// TestFoldSnapshotExposure: fold membership and the cost plane surface
// through QueryInfo, Snapshot, and the core states.
func TestFoldSnapshotExposure(t *testing.T) {
	srv := newServer(Config{RateC: 4, Quantum: 0.5, Fold: true})
	db := engine.Open()
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "shared", 20))
	q2 := srv.NewQuery("q2", "", 0, runnerOn(t, db, "shared"))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Tick()
	snap := srv.Snapshot()
	if !snap.FoldEnabled {
		t.Fatal("snapshot should report folding on")
	}
	if snap.Fold.Groups != 1 || snap.Fold.Members != 2 {
		t.Fatalf("snapshot fold stats: %+v", snap.Fold)
	}
	if len(snap.FoldTables) != 1 || snap.FoldTables[0] != "shared" {
		t.Fatalf("fold tables: %v", snap.FoldTables)
	}
	gid := 0
	for _, info := range snap.Running {
		if info.FoldGroup == 0 {
			t.Fatalf("query %d not folded in snapshot", info.ID)
		}
		if gid == 0 {
			gid = info.FoldGroup
		} else if info.FoldGroup != gid {
			t.Fatalf("members report different groups")
		}
		if info.Cost > info.Done {
			t.Errorf("query %d: cost %g > done %g", info.ID, info.Cost, info.Done)
		}
	}
	for _, st := range srv.StateRunning() {
		if st.Fold != gid {
			t.Errorf("core state fold = %d, want %d", st.Fold, gid)
		}
	}
	for _, st := range snap.StatesRunning() {
		if st.Fold != gid {
			t.Errorf("snapshot state fold = %d, want %d", st.Fold, gid)
		}
	}
}

// TestFoldReleaseHooks: block, abort, and priority changes free the fold seat
// so the surviving members never deadlock at the cursor barrier.
func TestFoldReleaseHooks(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   func(srv *Server, id int) error
	}{
		{"block", func(srv *Server, id int) error { return srv.Block(id) }},
		{"abort", func(srv *Server, id int) error { return srv.Abort(id) }},
		{"reprioritize", func(srv *Server, id int) error { return srv.SetPriority(id, 5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := newServer(Config{RateC: 10, Quantum: 0.5, Fold: true, Weights: map[int]float64{0: 1, 5: 2}})
			db := engine.Open()
			q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "shared", 20))
			q2 := srv.NewQuery("q2", "", 0, runnerOn(t, db, "shared"))
			q3 := srv.NewQuery("q3", "", 0, runnerOn(t, db, "shared"))
			srv.Submit(q1)
			srv.Submit(q2)
			srv.Submit(q3)
			srv.Tick()
			if err := tc.op(srv, q2.ID); err != nil {
				t.Fatal(err)
			}
			if q2.Runner.FoldAttached() {
				t.Fatalf("%s left q2 attached", tc.name)
			}
			srv.RunUntilIdle(1e6)
			for _, q := range []*Query{q1, q3} {
				if q.Status != StatusFinished {
					t.Errorf("%s: query %d is %v (barrier deadlock?)", tc.name, q.ID, q.Status)
				}
			}
		})
	}
}

// TestSetFoldToggle: disabling folding mid-flight detaches everyone (laps
// finish solo), re-enabling folds queries that have not started yet, and the
// lifetime counters never move backwards.
func TestSetFoldToggle(t *testing.T) {
	srv := newServer(Config{RateC: 10, Quantum: 0.5, Fold: true})
	db := engine.Open()
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "shared", 30))
	q2 := srv.NewQuery("q2", "", 0, runnerOn(t, db, "shared"))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Tick()
	if !q1.Runner.FoldAttached() || !q2.Runner.FoldAttached() {
		t.Fatal("pair should fold")
	}
	before := srv.FoldStats()
	srv.SetFold(false)
	if q1.Runner.FoldAttached() || q2.Runner.FoldAttached() {
		t.Fatal("SetFold(false) should detach everyone")
	}
	srv.Tick()

	srv.SetFold(true)
	q3 := srv.NewQuery("q3", "", 0, runnerOn(t, db, "shared"))
	q4 := srv.NewQuery("q4", "", 0, runnerOn(t, db, "shared"))
	srv.Submit(q3)
	srv.Submit(q4)
	srv.Tick()
	if !q3.Runner.FoldAttached() || !q4.Runner.FoldAttached() {
		t.Fatal("new pair should fold after re-enable")
	}
	// q1/q2 already hold detached seats and must not re-fold.
	if q1.Runner.FoldAttached() || q2.Runner.FoldAttached() {
		t.Fatal("released runners re-attached")
	}
	srv.RunUntilIdle(1e6)
	after := srv.FoldStats()
	if after.Attaches < before.Attaches || after.PagesSaved < before.PagesSaved {
		t.Errorf("lifetime counters went backwards: %+v -> %+v", before, after)
	}
	if after.Attaches != 4 {
		t.Errorf("attaches = %d, want 4", after.Attaches)
	}
	for _, q := range []*Query{q1, q2, q3, q4} {
		if q.Status != StatusFinished {
			t.Errorf("query %d is %v", q.ID, q.Status)
		}
	}
}
