package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the execute phase of the three-phase tick.
//
// Tick decomposes each scheduling round into:
//
//	(1) allocate — the owner fixes every runnable query's credit for the
//	    round from weights and priorities, serially and purely in virtual
//	    time (the serial credit plane);
//	(2) execute  — every runner is stepped against its pre-computed credit.
//	    Runners are per-query and step only read-shared engine state
//	    (catalog lookups, heap pages, B+-tree probes), so with
//	    Config.Workers > 1 the steps fan out across a persistent worker
//	    pool and real execution scales with cores;
//	(3) settle   — the owner folds consumed/leftover work back in admission
//	    order, retires finishers, and redistributes returned credit.
//
// Because credits are fixed before any runner moves and settlement folds
// results in a worker-independent order, virtual-time outcomes are
// bit-identical to the serial scheduler at every worker count.

// stepResult is the execute phase's per-query outcome, recorded by whichever
// worker stepped the runner and consumed by the owner during settlement.
type stepResult struct {
	consumed float64
	done     bool
	err      error
}

// TickStats describes the execution-plane work of the most recent Tick.
type TickStats struct {
	// Rounds counts allocate→execute→settle rounds, summed over the tick's
	// arrival-bounded segments (at least one per segment with runnable work,
	// plus one per round of work-conserving credit redistribution).
	Rounds int
	// Steps counts runner Step calls issued across all rounds.
	Steps int
	// ExecuteSeconds is the wall-clock time spent inside the execute phase.
	ExecuteSeconds float64
}

// TickStats returns the stats of the most recent Tick.
func (s *Server) TickStats() TickStats { return s.lastStats }

// Workers returns the effective execute-phase worker count (at least 1).
func (s *Server) Workers() int {
	if s.cfg.Workers > 1 {
		return s.cfg.Workers
	}
	return 1
}

// executePhase steps every query in runnable against its pre-computed credit
// (credits is index-aligned with runnable) and returns one result per query,
// also index-aligned. The result slice is part of the server's tick scratch,
// valid until the next round.
//
// items, when non-nil, partitions the runnable indexes into work items so
// that all members of one fold group are stepped by the same worker (a shared
// cursor is single-goroutine; see exec.FoldGroup). A nil items is the
// identity partition — one query per item — and keeps the fold-off path on
// the exact pre-folding code.
func (s *Server) executePhase(runnable []*Query, credits []float64, items [][]int32) []stepResult {
	if cap(s.scratch.results) < len(runnable) {
		s.scratch.results = make([]stepResult, len(runnable))
	}
	results := s.scratch.results[:len(runnable)]
	start := time.Now()
	n := len(runnable)
	if items != nil {
		n = len(items)
	}
	if s.cfg.Workers > 1 && n > 1 {
		if s.pool == nil {
			s.pool = newExecPool(s.cfg.Workers)
		}
		s.pool.run(runnable, credits, results, items)
	} else {
		b := execBatch{queries: runnable, credits: credits, results: results, items: items}
		b.drain()
	}
	s.lastStats.Rounds++
	s.lastStats.Steps += len(runnable)
	s.lastStats.ExecuteSeconds += time.Since(start).Seconds()
	return results
}

// execBatch is one execute round's shared work list. Workers claim work items
// with an atomic counter, step the runners, and write only their items'
// result slots; each worker touches a disjoint set of (query, slot) pairs,
// and the owner's wg.Wait gives it a happens-before edge on every slot before
// settlement reads them.
type execBatch struct {
	queries []*Query
	credits []float64
	results []stepResult
	// items partitions the query indexes into work items (nil = one query per
	// item). Each fold group is one item, so its shared cursor is stepped by
	// exactly one worker.
	items [][]int32
	next  atomic.Int64
	wg    sync.WaitGroup
}

func (b *execBatch) drain() {
	for {
		i := int(b.next.Add(1)) - 1
		if b.items == nil {
			if i >= len(b.queries) {
				return
			}
			b.runOne(i)
			continue
		}
		if i >= len(b.items) {
			return
		}
		b.runItem(b.items[i])
	}
}

// runOne steps a single solo query against its fixed credit.
func (b *execBatch) runOne(i int) {
	q := b.queries[i]
	// The credit was fixed by the allocate phase and is read-only until
	// settlement; Step mutates only the runner, which belongs to exactly
	// one query.
	consumed, done, err := q.Runner.Step(b.credits[i])
	b.results[i] = stepResult{consumed: consumed, done: done, err: err}
}

// runItem steps one work item: a solo query, or a whole fold group whose
// members share one rotating cursor. Group members are stepped round-robin —
// a member parked at the cursor barrier yields without consuming, so passes
// repeat until a full pass makes no progress (everyone is out of credit,
// parked behind a peer that is, or done). Each member's result is the sum of
// its steps this round, exactly as a single solo Step would report.
func (b *execBatch) runItem(item []int32) {
	if len(item) == 1 {
		b.runOne(int(item[0]))
		return
	}
	for _, qi := range item {
		b.results[qi] = stepResult{}
	}
	for {
		progress := false
		for _, qi := range item {
			i := int(qi)
			r := &b.results[i]
			if r.done {
				continue
			}
			left := b.credits[i] - r.consumed
			if left <= 0 {
				continue
			}
			consumed, done, err := b.queries[i].Runner.Step(left)
			r.consumed += consumed
			r.done, r.err = done, err
			if consumed > 0 || done {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// execPool is the persistent execute-phase worker pool: workers-1 helper
// goroutines that live across ticks (the ticking goroutine itself is the
// final worker). It is created lazily on the first parallel execute phase
// and released by Server.Close.
type execPool struct {
	helpers int
	batches chan *execBatch
	quit    chan struct{}
	once    sync.Once
	// batch is the pool's reusable work list. Only the owner goroutine runs
	// execute phases, and run() returns only after every helper is done with
	// the batch (wg.Wait), so one reused value is race-free and keeps the
	// per-round &execBatch{...} allocation off the steady-state tick path.
	batch execBatch
}

func newExecPool(workers int) *execPool {
	p := &execPool{
		helpers: workers - 1,
		batches: make(chan *execBatch),
		quit:    make(chan struct{}),
	}
	for i := 0; i < p.helpers; i++ {
		go p.worker()
	}
	return p
}

func (p *execPool) worker() {
	for {
		select {
		case b := <-p.batches:
			b.drain()
			b.wg.Done()
		case <-p.quit:
			return
		}
	}
}

func (p *execPool) close() { p.once.Do(func() { close(p.quit) }) }

// run executes the batch across the helper goroutines plus the calling
// goroutine, returning once every result slot is filled. On a closed pool
// the caller drains the whole batch alone, so ticking a closed server stays
// correct (just serial).
func (p *execPool) run(queries []*Query, credits []float64, results []stepResult, items [][]int32) {
	b := &p.batch
	b.queries, b.credits, b.results, b.items = queries, credits, results, items
	b.next.Store(0)
	work := len(queries)
	if items != nil {
		work = len(items)
	}
	n := p.helpers
	if n > work-1 {
		n = work - 1
	}
	for i := 0; i < n; i++ {
		b.wg.Add(1)
		select {
		case p.batches <- b:
		case <-p.quit:
			b.wg.Done()
			n = 0
		}
	}
	b.drain()
	b.wg.Wait()
}
