package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the execute phase of the three-phase tick.
//
// Tick decomposes each scheduling round into:
//
//	(1) allocate — the owner fixes every runnable query's credit for the
//	    round from weights and priorities, serially and purely in virtual
//	    time (the serial credit plane);
//	(2) execute  — every runner is stepped against its pre-computed credit.
//	    Runners are per-query and step only read-shared engine state
//	    (catalog lookups, heap pages, B+-tree probes), so with
//	    Config.Workers > 1 the steps fan out across a persistent worker
//	    pool and real execution scales with cores;
//	(3) settle   — the owner folds consumed/leftover work back in admission
//	    order, retires finishers, and redistributes returned credit.
//
// Because credits are fixed before any runner moves and settlement folds
// results in a worker-independent order, virtual-time outcomes are
// bit-identical to the serial scheduler at every worker count.

// stepResult is the execute phase's per-query outcome, recorded by whichever
// worker stepped the runner and consumed by the owner during settlement.
type stepResult struct {
	consumed float64
	done     bool
	err      error
}

// TickStats describes the execution-plane work of the most recent Tick.
type TickStats struct {
	// Rounds counts allocate→execute→settle rounds, summed over the tick's
	// arrival-bounded segments (at least one per segment with runnable work,
	// plus one per round of work-conserving credit redistribution).
	Rounds int
	// Steps counts runner Step calls issued across all rounds.
	Steps int
	// ExecuteSeconds is the wall-clock time spent inside the execute phase.
	ExecuteSeconds float64
}

// TickStats returns the stats of the most recent Tick.
func (s *Server) TickStats() TickStats { return s.lastStats }

// Workers returns the effective execute-phase worker count (at least 1).
func (s *Server) Workers() int {
	if s.cfg.Workers > 1 {
		return s.cfg.Workers
	}
	return 1
}

// executePhase steps every query in runnable against its pre-computed credit
// (credits is index-aligned with runnable) and returns one result per query,
// also index-aligned. The result slice is part of the server's tick scratch,
// valid until the next round.
func (s *Server) executePhase(runnable []*Query, credits []float64) []stepResult {
	if cap(s.scratch.results) < len(runnable) {
		s.scratch.results = make([]stepResult, len(runnable))
	}
	results := s.scratch.results[:len(runnable)]
	start := time.Now()
	if s.cfg.Workers > 1 && len(runnable) > 1 {
		if s.pool == nil {
			s.pool = newExecPool(s.cfg.Workers)
		}
		s.pool.run(runnable, credits, results)
	} else {
		b := execBatch{queries: runnable, credits: credits, results: results}
		b.drain()
	}
	s.lastStats.Rounds++
	s.lastStats.Steps += len(runnable)
	s.lastStats.ExecuteSeconds += time.Since(start).Seconds()
	return results
}

// execBatch is one execute round's shared work list. Workers claim indexes
// with an atomic counter, step the runner, and write only their own result
// slot; each worker touches a disjoint set of (query, slot) pairs, and the
// owner's wg.Wait gives it a happens-before edge on every slot before
// settlement reads them.
type execBatch struct {
	queries []*Query
	credits []float64
	results []stepResult
	next    atomic.Int64
	wg      sync.WaitGroup
}

func (b *execBatch) drain() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(b.queries) {
			return
		}
		q := b.queries[i]
		// The credit was fixed by the allocate phase and is read-only until
		// settlement; Step mutates only the runner, which belongs to exactly
		// one query.
		consumed, done, err := q.Runner.Step(b.credits[i])
		b.results[i] = stepResult{consumed: consumed, done: done, err: err}
	}
}

// execPool is the persistent execute-phase worker pool: workers-1 helper
// goroutines that live across ticks (the ticking goroutine itself is the
// final worker). It is created lazily on the first parallel execute phase
// and released by Server.Close.
type execPool struct {
	helpers int
	batches chan *execBatch
	quit    chan struct{}
	once    sync.Once
	// batch is the pool's reusable work list. Only the owner goroutine runs
	// execute phases, and run() returns only after every helper is done with
	// the batch (wg.Wait), so one reused value is race-free and keeps the
	// per-round &execBatch{...} allocation off the steady-state tick path.
	batch execBatch
}

func newExecPool(workers int) *execPool {
	p := &execPool{
		helpers: workers - 1,
		batches: make(chan *execBatch),
		quit:    make(chan struct{}),
	}
	for i := 0; i < p.helpers; i++ {
		go p.worker()
	}
	return p
}

func (p *execPool) worker() {
	for {
		select {
		case b := <-p.batches:
			b.drain()
			b.wg.Done()
		case <-p.quit:
			return
		}
	}
}

func (p *execPool) close() { p.once.Do(func() { close(p.quit) }) }

// run executes the batch across the helper goroutines plus the calling
// goroutine, returning once every result slot is filled. On a closed pool
// the caller drains the whole batch alone, so ticking a closed server stays
// correct (just serial).
func (p *execPool) run(queries []*Query, credits []float64, results []stepResult) {
	b := &p.batch
	b.queries, b.credits, b.results = queries, credits, results
	b.next.Store(0)
	n := p.helpers
	if n > len(queries)-1 {
		n = len(queries) - 1
	}
	for i := 0; i < n; i++ {
		b.wg.Add(1)
		select {
		case p.batches <- b:
		case <-p.quit:
			b.wg.Done()
			n = 0
		}
	}
	b.drain()
	b.wg.Wait()
}
