package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mqpi/internal/core"
	"mqpi/internal/engine"
)

// TestDifferentialPredictionVsMeasured is the seeded cross-check of the two
// layers: for random workloads — mixed priorities, MPL limits, scheduled
// (including mid-quantum) arrivals, and mid-run block/unblock cycles — the
// queue-aware stage-model prediction taken from a live snapshot must match
// the finish times the virtual-time server actually measures, within quantum
// granularity. A bug in either the estimator (wrong stage algebra) or the
// scheduler (unfair sharing, lost service, stale credit) shows up as a
// divergence.
func TestDifferentialPredictionVsMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	weights := map[int]float64{0: 1, 1: 2, 2: 4}
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		db := engine.Open()
		quantum := []float64{0.25, 0.5, 1}[rng.Intn(3)]
		mpl := []int{0, 0, 2, 3}[rng.Intn(4)]
		srv := New(Config{RateC: 10, Quantum: quantum, MPL: mpl, Weights: weights})
		n := 2 + rng.Intn(4)
		queries := make([]*Query, n)
		for i := range queries {
			pages := 2 + rng.Intn(28)
			r := prepare(t, db, fmt.Sprintf("t%d_%d", trial, i), pages)
			q := srv.NewQuery(fmt.Sprintf("q%d", i), "", rng.Intn(3), r)
			queries[i] = q
			if rng.Intn(4) == 0 {
				// Scheduled arrival, half the time strictly mid-quantum.
				at := float64(1+rng.Intn(3)) * quantum
				if rng.Intn(2) == 0 {
					at += 0.5 * quantum
				}
				srv.ScheduleArrival(at, q)
			} else {
				srv.Submit(q)
			}
		}
		// Run past all arrivals, plus a few warm-up ticks.
		for len(srv.arrivals) > 0 {
			srv.Tick()
		}
		for k := rng.Intn(3); k > 0; k-- {
			srv.Tick()
		}
		// Half the trials stress the block paths: one victim goes through a
		// block→unblock cycle, another may stay blocked across the snapshot.
		if rng.Intn(2) == 0 && len(srv.Running()) > 1 {
			victim := srv.Running()[rng.Intn(len(srv.Running()))]
			if victim.Status == StatusRunning {
				if err := srv.Block(victim.ID); err != nil {
					t.Fatal(err)
				}
				srv.Tick()
				if victim.Status == StatusBlocked { // may have been admitted-over
					if err := srv.Unblock(victim.ID); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if rng.Intn(3) == 0 && len(srv.Running()) > 1 {
			victim := srv.Running()[rng.Intn(len(srv.Running()))]
			if victim.Status == StatusRunning {
				if err := srv.Block(victim.ID); err != nil { // blocked across the snapshot
					t.Fatal(err)
				}
			}
		}
		snapNow := srv.Now()
		pred := core.MultiQueryWithQueue(srv.StateRunning(), srv.StateQueued(), srv.MPL(), srv.RateC())
		srv.RunUntilIdle(1e6)
		for _, q := range queries {
			p, ok := pred[q.ID]
			if !ok || math.IsInf(p, 1) {
				continue // finished before the snapshot, or blocked forever
			}
			if q.Status != StatusFinished {
				t.Errorf("trial %d: Q%d predicted to finish in %.2fs but ended %v", trial, q.ID, p, q.Status)
				continue
			}
			measured := q.FinishTime - snapNow
			// Tolerance: finish times and MPL admissions quantize to quantum
			// boundaries, and refined costs can be off by a page.
			tol := 2*quantum + 0.05*p + 0.5
			if math.Abs(measured-p) > tol {
				t.Errorf("trial %d (quantum=%g mpl=%d): Q%d predicted %.3fs, measured %.3fs (|Δ|=%.3f > tol %.3f)",
					trial, quantum, mpl, q.ID, p, measured, math.Abs(measured-p), tol)
			}
		}
	}
}
