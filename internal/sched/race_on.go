//go:build race

package sched

// raceEnabled reports whether the race detector is compiled in. The detector
// instruments allocations, so alloc-count assertions are skipped under -race.
const raceEnabled = true
