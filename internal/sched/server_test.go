package sched

import (
	"math"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/engine/exec"
	"mqpi/internal/engine/types"
)

// prepare builds a runner that scans and sums a fresh table of `pages`
// heap pages, so its total work is exactly pages+1 U (scan + aggregate
// materialization).
func prepare(t testing.TB, db *engine.DB, name string, pages int) *exec.Runner {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE " + name + " (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()
	for i := 0; i < pages*64; i++ {
		if err := cat.Insert(name, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := db.Prepare("SELECT SUM(a) FROM " + name)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectRows = false
	return r
}

func newServer(cfg Config) *Server { return New(cfg) }

func TestFairSharingEqualPriorities(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 10))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 30))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.RunUntilIdle(1e6)
	// Work-conserving: total 42 U at 10 U/s -> idle at ~4.2s (quantum 0.5
	// rounds up).
	if srv.Now() < 4 || srv.Now() > 6 {
		t.Errorf("idle at %g, want ~4.5", srv.Now())
	}
	// q1 (11 U at 5 U/s) finishes near 2.2s; q2 near 4.2s.
	if q1.FinishTime < 2 || q1.FinishTime > 3 {
		t.Errorf("q1 finish = %g", q1.FinishTime)
	}
	if q2.FinishTime < 4 || q2.FinishTime > 5.5 {
		t.Errorf("q2 finish = %g", q2.FinishTime)
	}
	if q1.Status != StatusFinished || q2.Status != StatusFinished {
		t.Errorf("status: %v, %v", q1.Status, q2.Status)
	}
}

// TestTickWorkConserving is the regression test for the quantum dropping a
// finisher's surplus credit: when work remains, a single Tick must deliver
// exactly rate × dt work units. Against the old Tick, q1 (3 U) received a 5 U
// share, and its 2 U surplus vanished with it — the tick delivered only 8 of
// the 10 U the server is rated for.
func TestTickWorkConserving(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 2))  // 3 U total
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 40)) // 41 U total
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Tick()
	if q1.Status != StatusFinished {
		t.Fatalf("q1 should finish inside the quantum, got %v", q1.Status)
	}
	total := q1.Runner.WorkDone() + q2.Runner.WorkDone()
	if total < 10-1e-6 {
		t.Errorf("tick delivered %g U, want rate×dt = 10 (surplus credit dropped)", total)
	}
	if q2.Runner.WorkDone() < 7-1e-6 {
		t.Errorf("q2 did %g U, want 7 (5 own share + q1's 2 U surplus)", q2.Runner.WorkDone())
	}
}

// TestTickWorkConservingCascade: surplus redistribution must itself be
// work-conserving when several queries finish in the same quantum.
func TestTickWorkConservingCascade(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 12, Quantum: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 1))  // 2 U
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 2))  // 3 U
	q3 := srv.NewQuery("q3", "", 0, prepare(t, db, "t3", 60)) // 61 U
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Submit(q3)
	srv.Tick()
	if q1.Status != StatusFinished || q2.Status != StatusFinished {
		t.Fatalf("q1/q2 should finish inside the quantum: %v, %v", q1.Status, q2.Status)
	}
	total := q1.Runner.WorkDone() + q2.Runner.WorkDone() + q3.Runner.WorkDone()
	if total < 12-1e-6 {
		t.Errorf("tick delivered %g U, want rate×dt = 12", total)
	}
	// q3 must absorb everything the finishers could not use: 12 - 2 - 3.
	if q3.Runner.WorkDone() < 7-1e-6 {
		t.Errorf("q3 did %g U, want 7", q3.Runner.WorkDone())
	}
}

func TestWeightedSharing(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{
		RateC:   10,
		Quantum: 0.25,
		Weights: map[int]float64{1: 1, 3: 3},
	})
	hi := srv.NewQuery("hi", "", 3, prepare(t, db, "th", 15))
	lo := srv.NewQuery("lo", "", 1, prepare(t, db, "tl", 15))
	srv.Submit(hi)
	srv.Submit(lo)
	srv.RunUntilIdle(1e6)
	if hi.FinishTime >= lo.FinishTime {
		t.Errorf("high priority (%g) should finish before low (%g)", hi.FinishTime, lo.FinishTime)
	}
	// hi runs at 7.5 U/s: 16 U -> ~2.1s. lo finishes at 32/10 = 3.2s.
	if hi.FinishTime > 3 {
		t.Errorf("hi finish = %g", hi.FinishTime)
	}
	if lo.FinishTime < 3 || lo.FinishTime > 4 {
		t.Errorf("lo finish = %g", lo.FinishTime)
	}
}

func TestMPLQueueing(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5, MPL: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 10))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 10))
	srv.Submit(q1)
	srv.Submit(q2)
	if q1.Status != StatusRunning || q2.Status != StatusQueued {
		t.Fatalf("admission: %v, %v", q1.Status, q2.Status)
	}
	if len(srv.Queued()) != 1 {
		t.Fatalf("queued: %d", len(srv.Queued()))
	}
	srv.RunUntilIdle(1e6)
	if q2.StartTime <= q1.StartTime {
		t.Errorf("q2 must start after q1: %g vs %g", q2.StartTime, q1.StartTime)
	}
	if q2.StartTime < q1.FinishTime-1e-9 {
		t.Errorf("q2 started at %g before q1 finished at %g", q2.StartTime, q1.FinishTime)
	}
}

func TestScheduledArrival(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 20))
	late := srv.NewQuery("late", "", 0, prepare(t, db, "t2", 5))
	srv.Submit(q1)
	srv.ScheduleArrival(3, late)
	if len(srv.Running()) != 1 {
		t.Fatalf("late query admitted early")
	}
	srv.RunUntilIdle(1e6)
	if late.SubmitTime < 3 || late.SubmitTime > 3.6 {
		t.Errorf("late submit = %g", late.SubmitTime)
	}
	if late.Status != StatusFinished {
		t.Errorf("late status: %v", late.Status)
	}
	// Scheduling in the past submits immediately.
	srv2 := newServer(Config{RateC: 10})
	now := srv2.NewQuery("now", "", 0, prepare(t, db, "t3", 1))
	srv2.ScheduleArrival(-1, now)
	if now.Status != StatusRunning {
		t.Errorf("past arrival should run: %v", now.Status)
	}
}

func TestBlockAndUnblock(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 40))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 10))
	srv.Submit(q1)
	srv.Submit(q2)
	if err := srv.Block(q2.ID); err != nil {
		t.Fatal(err)
	}
	// Blocked query gets no work; q1 gets everything.
	for i := 0; i < 4; i++ {
		srv.Tick()
	}
	if q2.Runner.WorkDone() != 0 {
		t.Errorf("blocked query did %g U", q2.Runner.WorkDone())
	}
	if q1.Runner.WorkDone() < 15 {
		t.Errorf("q1 should get full capacity, did %g U", q1.Runner.WorkDone())
	}
	// Blocked queries appear with zero weight in the PI view.
	for _, st := range srv.StateRunning() {
		if st.ID == q2.ID && st.Weight != 0 {
			t.Errorf("blocked weight = %g", st.Weight)
		}
	}
	if err := srv.Unblock(q2.ID); err != nil {
		t.Fatal(err)
	}
	srv.RunUntilIdle(1e6)
	if q2.Status != StatusFinished {
		t.Errorf("q2 status after unblock: %v", q2.Status)
	}
	// Error paths.
	if err := srv.Block(9999); err == nil {
		t.Error("blocking unknown query should fail")
	}
	if err := srv.Unblock(q2.ID); err == nil {
		t.Error("unblocking a finished query should fail")
	}
}

func TestAbortFreesSlot(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5, MPL: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 100))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 5))
	srv.Submit(q1)
	srv.Submit(q2)
	if err := srv.Abort(q1.ID); err != nil {
		t.Fatal(err)
	}
	if q1.Status != StatusAborted {
		t.Errorf("q1 status: %v", q1.Status)
	}
	if q2.Status != StatusRunning {
		t.Errorf("q2 should be admitted after abort: %v", q2.Status)
	}
	// Abort from the queue too.
	srv2 := newServer(Config{RateC: 10, MPL: 1})
	a := srv2.NewQuery("a", "", 0, prepare(t, db, "t3", 5))
	b := srv2.NewQuery("b", "", 0, prepare(t, db, "t4", 5))
	srv2.Submit(a)
	srv2.Submit(b)
	if err := srv2.Abort(b.ID); err != nil {
		t.Fatal(err)
	}
	if b.Status != StatusAborted || len(srv2.Queued()) != 0 {
		t.Errorf("queued abort: %v, queue %d", b.Status, len(srv2.Queued()))
	}
	if err := srv2.Abort(12345); err == nil {
		t.Error("aborting unknown query should fail")
	}
}

func TestOnFinishCallback(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q := srv.NewQuery("q", "", 0, prepare(t, db, "t1", 3))
	var finished []*Query
	srv.OnFinish(func(f *Query) { finished = append(finished, f) })
	srv.Submit(q)
	srv.RunUntilIdle(1e6)
	if len(finished) != 1 || finished[0] != q {
		t.Errorf("callbacks: %v", finished)
	}
}

func TestLookup(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, MPL: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 2))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 2))
	srv.Submit(q1)
	srv.Submit(q2)
	for _, q := range []*Query{q1, q2} {
		got, ok := srv.Lookup(q.ID)
		if !ok || got != q {
			t.Errorf("Lookup(%d) = %v, %v", q.ID, got, ok)
		}
	}
	srv.RunUntilIdle(1e6)
	if got, ok := srv.Lookup(q1.ID); !ok || got != q1 {
		t.Error("finished queries must stay discoverable")
	}
	if _, ok := srv.Lookup(777); ok {
		t.Error("unknown id should miss")
	}
}

func TestObservedSpeedApproximatesShare(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 20, Quantum: 0.5, SpeedWindow: 5})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 200))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 200))
	srv.Submit(q1)
	srv.Submit(q2)
	for i := 0; i < 40; i++ { // 20s
		srv.Tick()
	}
	got := q1.ObservedSpeed()
	if math.Abs(got-10) > 2 {
		t.Errorf("observed speed = %g, want ~10 (C/2)", got)
	}
}

func TestQuiescentEstimateMatchesIdleTime(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	srv.Submit(srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 12)))
	srv.Submit(srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 24)))
	est := srv.QuiescentEstimate()
	idle := srv.RunUntilIdle(1e6)
	// The refined costs at t=0 equal the optimizer costs, which are exact
	// for pure scans, so the estimate should be within a quantum or two.
	if math.Abs(est-idle) > 1.5 {
		t.Errorf("quiescent estimate %g vs actual idle %g", est, idle)
	}
}

func TestSortQueriesByRemainingTime(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10})
	small := srv.NewQuery("small", "", 0, prepare(t, db, "t1", 3))
	large := srv.NewQuery("large", "", 0, prepare(t, db, "t2", 30))
	srv.Submit(large)
	srv.Submit(small)
	ids := srv.SortQueriesByRemainingTime()
	if len(ids) != 2 || ids[0] != small.ID || ids[1] != large.ID {
		t.Errorf("order: %v (small=%d large=%d)", ids, small.ID, large.ID)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusQueued: "queued", StatusRunning: "running", StatusBlocked: "blocked",
		StatusFinished: "finished", StatusAborted: "aborted", StatusFailed: "failed",
	} {
		if st.String() != want {
			t.Errorf("%d renders %q", st, st.String())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		db := engine.Open()
		srv := newServer(Config{RateC: 10, Quantum: 0.5})
		q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 10))
		q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 20))
		srv.Submit(q1)
		srv.Submit(q2)
		srv.RunUntilIdle(1e6)
		return q1.FinishTime, q2.FinishTime
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Errorf("nondeterministic: (%g,%g) vs (%g,%g)", a1, a2, b1, b2)
	}
}

func TestSetPriority(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{
		RateC:   10,
		Quantum: 0.5,
		Weights: map[int]float64{0: 1, 5: 4},
	})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 400))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 400))
	srv.Submit(q1)
	srv.Submit(q2)
	if err := srv.SetPriority(q1.ID, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // 10s: far less than either query's 401 U
		srv.Tick()
	}
	// q1 should now receive ~4/5 of the capacity.
	r := q1.Runner.WorkDone() / (q1.Runner.WorkDone() + q2.Runner.WorkDone())
	if r < 0.7 || r > 0.9 {
		t.Errorf("priority share = %g, want ~0.8", r)
	}
	if err := srv.SetPriority(999, 5); err == nil {
		t.Error("unknown query should fail")
	}
	// Queued queries can be re-prioritized too.
	srv2 := newServer(Config{RateC: 10, MPL: 1})
	a := srv2.NewQuery("a", "", 0, prepare(t, db, "t3", 2))
	b := srv2.NewQuery("b", "", 0, prepare(t, db, "t4", 2))
	srv2.Submit(a)
	srv2.Submit(b)
	if err := srv2.SetPriority(b.ID, 5); err != nil {
		t.Fatal(err)
	}
	if b.Priority != 5 {
		t.Errorf("queued priority = %d", b.Priority)
	}
}

func TestStalledDetection(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 5))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 100))
	srv.Submit(q1)
	srv.Submit(q2)
	if srv.Stalled() {
		t.Error("runnable server is not stalled")
	}
	if err := srv.Block(q2.ID); err != nil {
		t.Fatal(err)
	}
	// RunUntilIdle must terminate even though the blocked query never
	// finishes.
	idle := srv.RunUntilIdle(1e12)
	if idle >= 1e12 {
		t.Fatalf("RunUntilIdle spun to the time cap")
	}
	if q1.Status != StatusFinished {
		t.Errorf("q1 status: %v", q1.Status)
	}
	if !srv.Stalled() {
		t.Error("only a blocked query remains: stalled")
	}
	// Scheduled arrivals mean the server is not stalled.
	q3 := srv.NewQuery("q3", "", 0, prepare(t, db, "t3", 2))
	srv.ScheduleArrival(srv.Now()+5, q3)
	if srv.Stalled() {
		t.Error("pending arrival: not stalled")
	}
	srv.RunUntilIdle(srv.Now() + 100)
	if q3.Status != StatusFinished {
		t.Errorf("q3 status: %v", q3.Status)
	}
}

func TestFailedQueryReported(t *testing.T) {
	db := engine.Open()
	// A scalar sub-query returning two rows fails at runtime.
	if _, err := db.Exec("CREATE TABLE two (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO two VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE outerq (b BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec("INSERT INTO outerq VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	r, err := db.Prepare("SELECT (SELECT a FROM two) FROM outerq")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(Config{RateC: 10, Quantum: 0.5})
	q := srv.NewQuery("bad", "", 0, r)
	var failed *Query
	srv.OnFinish(func(f *Query) { failed = f })
	srv.Submit(q)
	srv.RunUntilIdle(1e6)
	if q.Status != StatusFailed || q.Err == nil {
		t.Fatalf("status %v err %v", q.Status, q.Err)
	}
	if failed != q {
		t.Error("failure must fire OnFinish")
	}
}

func TestRateFuncViolatesAssumption1(t *testing.T) {
	db := engine.Open()
	// Total rate halves when two queries run (thrashing model).
	srv := newServer(Config{
		RateC:   10,
		Quantum: 0.5,
		RateFunc: func(n int) float64 {
			if n > 1 {
				return 5
			}
			return 10
		},
	})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 10))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 10))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.RunUntilIdle(1e6)
	// 22 U total: both running at 5 U/s total until q1's 11 U done at
	// ~4.4s, then q2 alone at 10 U/s. Far later than the constant-rate 2.2s.
	if q1.FinishTime < 4 {
		t.Errorf("q1 finish = %g; contention not applied", q1.FinishTime)
	}
	if q2.FinishTime > q1.FinishTime+2 {
		t.Errorf("q2 finish = %g; solo speed-up not applied", q2.FinishTime)
	}
}

func TestQuiescentEstimateWithQueue(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5, MPL: 1})
	srv.Submit(srv.NewQuery("a", "", 0, prepare(t, db, "t1", 10)))
	srv.Submit(srv.NewQuery("b", "", 0, prepare(t, db, "t2", 10)))
	est := srv.QuiescentEstimate()
	// Total work 22 U at 10 U/s: ~2.2s — the queued query must be included.
	if est < 2 || est > 3 {
		t.Errorf("quiescent estimate %g, want ~2.2 (queued work included)", est)
	}
	idle := srv.RunUntilIdle(1e6)
	if math.Abs(est-idle) > 1 {
		t.Errorf("estimate %g vs actual idle %g", est, idle)
	}
}

// TestBlockForfeitsCredit is the regression test for stale scheduling credit
// surviving a Block: whatever credit the victim had accrued at block time
// (an overshooting Step leaves a debt, the work-conserving pool a surplus)
// must NOT replay on Unblock — the first quantum back delivers exactly the
// fair share. Against the old Block, a +3 U stale credit made the victim
// consume ~8 U of the 10 U quantum instead of its 5 U half.
func TestBlockForfeitsCredit(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 200))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "t2", 200))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Tick()
	for _, stale := range []float64{+3, -3} {
		q2.credit = stale
		if err := srv.Block(q2.ID); err != nil {
			t.Fatal(err)
		}
		srv.Tick() // q1 runs alone while q2 is blocked
		if err := srv.Unblock(q2.ID); err != nil {
			t.Fatal(err)
		}
		before := q2.Runner.WorkDone()
		srv.Tick()
		got := q2.Runner.WorkDone() - before
		if math.Abs(got-5) > 1 {
			t.Errorf("stale credit %+g: first quantum after unblock delivered %g U, want ~5 (fair share)", stale, got)
		}
	}
}

// TestAbortForfeitsCredit: an aborted query's accrued credit must not linger
// on the query object (nothing may ever replay it).
func TestAbortForfeitsCredit(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 1})
	q := srv.NewQuery("q", "", 0, prepare(t, db, "t1", 50))
	srv.Submit(q)
	srv.Tick()
	q.credit = 4
	if err := srv.Abort(q.ID); err != nil {
		t.Fatal(err)
	}
	if q.credit != 0 {
		t.Errorf("aborted query keeps credit %g, want 0", q.credit)
	}
}

// TestMidQuantumArrival is the regression test for arrivals due strictly
// inside a quantum: an arrival at now + 0.5×Quantum must be submitted at its
// arrival time (not the next tick boundary) and served for the remainder of
// the quantum. The old Tick submitted it one full quantum later with a
// skewed SubmitTime.
func TestMidQuantumArrival(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 1})
	q := srv.NewQuery("q", "", 0, prepare(t, db, "t1", 100))
	srv.ScheduleArrival(0.5, q)
	if q.Status != StatusScheduled {
		t.Fatalf("pending arrival status = %v, want scheduled", q.Status)
	}
	if got, ok := srv.Lookup(q.ID); !ok || got != q {
		t.Fatal("scheduled arrivals must be discoverable via Lookup")
	}
	srv.Tick()
	if q.Status != StatusRunning {
		t.Fatalf("mid-quantum arrival not admitted within the quantum: %v", q.Status)
	}
	if q.SubmitTime != 0.5 || q.StartTime != 0.5 {
		t.Errorf("submit/start = %g/%g, want 0.5/0.5 (true arrival time)", q.SubmitTime, q.StartTime)
	}
	// Present for half the quantum at full capacity: ~10 U/s × 0.5 s.
	if got := q.Runner.WorkDone(); math.Abs(got-5) > 1 {
		t.Errorf("first-quantum work = %g U, want ~5 (prorated service)", got)
	}
}

// TestMidQuantumArrivalSharesSegment: a query already running keeps the full
// rate until the arrival, then shares it — the arrival must not dilute the
// part of the quantum before it existed.
func TestMidQuantumArrivalSharesSegment(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 1})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "t1", 100))
	late := srv.NewQuery("late", "", 0, prepare(t, db, "t2", 100))
	srv.Submit(q1)
	srv.ScheduleArrival(0.5, late)
	srv.Tick()
	// q1: 10 U/s alone for 0.5 s + 5 U/s shared for 0.5 s = ~7.5 U.
	if got := q1.Runner.WorkDone(); math.Abs(got-7.5) > 1.5 {
		t.Errorf("q1 work = %g U, want ~7.5", got)
	}
	if got := late.Runner.WorkDone(); math.Abs(got-2.5) > 1.5 {
		t.Errorf("late work = %g U, want ~2.5", got)
	}
}

// TestSnapshotStatesMatchLive: the PI views derived from a Snapshot must be
// byte-for-byte the ones the live server reports — the serving layer's
// lock-free read path computes estimates from the snapshot alone, so any
// divergence here would make polled estimates drift from owner-side ones.
func TestSnapshotStatesMatchLive(t *testing.T) {
	db := engine.Open()
	srv := newServer(Config{RateC: 10, Quantum: 0.5, MPL: 2, Weights: map[int]float64{0: 1, 2: 3}})
	a := srv.NewQuery("a", "", 0, prepare(t, db, "sa", 10))
	b := srv.NewQuery("b", "", 2, prepare(t, db, "sb", 20))
	c := srv.NewQuery("c", "", 0, prepare(t, db, "sc", 30)) // queued behind MPL=2
	srv.Submit(a)
	srv.Submit(b)
	srv.Submit(c)
	srv.Tick()
	srv.Tick()
	if err := srv.Block(a.ID); err != nil {
		t.Fatal(err)
	}

	snap := srv.Snapshot()
	if snap.Quantum != 0.5 {
		t.Errorf("snapshot quantum = %g, want 0.5", snap.Quantum)
	}
	wantRun, gotRun := srv.StateRunning(), snap.StatesRunning()
	if len(gotRun) != len(wantRun) {
		t.Fatalf("running states: %d, want %d", len(gotRun), len(wantRun))
	}
	for i := range wantRun {
		if gotRun[i] != wantRun[i] {
			t.Errorf("running[%d] = %+v, want %+v", i, gotRun[i], wantRun[i])
		}
	}
	wantQ, gotQ := srv.StateQueued(), snap.StatesQueued()
	if len(gotQ) != len(wantQ) {
		t.Fatalf("queued states: %d, want %d", len(gotQ), len(wantQ))
	}
	for i := range wantQ {
		if gotQ[i] != wantQ[i] {
			t.Errorf("queued[%d] = %+v, want %+v", i, gotQ[i], wantQ[i])
		}
	}
	// Blocked query carries weight 0 in both views.
	for _, st := range gotRun {
		if st.ID == a.ID && st.Weight != 0 {
			t.Errorf("blocked query weight = %g, want 0", st.Weight)
		}
	}
	speeds := snap.Speeds()
	for _, q := range srv.Running() {
		if speeds[q.ID] != q.ObservedSpeed() {
			t.Errorf("speed[%d] = %g, want %g", q.ID, speeds[q.ID], q.ObservedSpeed())
		}
	}
	// Lookup finds queries in every lifecycle bucket.
	for _, id := range []int{a.ID, b.ID, c.ID} {
		info, ok := snap.Lookup(id)
		if !ok || info.ID != id {
			t.Errorf("snapshot Lookup(%d) = %+v, %v", id, info, ok)
		}
	}
	if _, ok := snap.Lookup(999); ok {
		t.Error("snapshot Lookup(999) found a ghost")
	}
}
