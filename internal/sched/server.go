// Package sched simulates the multi-query RDBMS of the paper's model in
// virtual time: the server processes C work units per second in total
// (Assumption 1) and divides them among running queries in proportion to the
// weights of their priorities (Assumption 3). An admission queue with an MPL
// limit, scheduled arrivals, and block/abort controls provide everything the
// experiments and the workload-management algorithms need.
//
// Queries execute for real — each one drives an exec.Runner over actual
// data — only the clock is virtual, which is what makes hour-long workloads
// reproducible in milliseconds.
//
// Virtual time and real execution are decoupled by the three-phase tick
// (allocate → execute → settle, see exec_phase.go): how much work each query
// receives per quantum is decided serially from the paper's stage model, but
// the work itself — stepping the runners — fans out across Config.Workers
// goroutines. Outcomes are bit-identical at every worker count.
package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"mqpi/internal/core"
	"mqpi/internal/engine/exec"
)

// Status is a query's lifecycle state.
type Status uint8

const (
	StatusQueued Status = iota
	StatusRunning
	StatusBlocked
	StatusFinished
	StatusAborted
	StatusFailed
	// StatusScheduled marks a query handed to ScheduleArrival that has not
	// reached its arrival time yet.
	StatusScheduled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	case StatusFinished:
		return "finished"
	case StatusAborted:
		return "aborted"
	case StatusFailed:
		return "failed"
	case StatusScheduled:
		return "scheduled"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Query is one query under the server's control.
type Query struct {
	ID       int
	Label    string
	SQL      string
	Priority int
	Runner   *exec.Runner

	Status     Status
	SubmitTime float64
	StartTime  float64
	FinishTime float64 // finish, abort, or failure time
	Err        error

	credit      float64
	tracker     *core.SpeedTracker
	foldChecked bool // fold eligibility decided (exactly-once attach)
}

// foldID returns the query's live fold-group ID, or 0 when it is not riding a
// shared cursor (never folded, detached, or no runner).
func (q *Query) foldID() int {
	if q.Runner != nil && q.Runner.FoldAttached() {
		return q.Runner.FoldGroup()
	}
	return 0
}

// ObservedSpeed returns the query's execution speed in U/s as monitored over
// the speed window — the s in the single-query PI's t = c/s.
func (q *Query) ObservedSpeed() float64 {
	if q.tracker == nil {
		return 0
	}
	return q.tracker.Speed()
}

// State converts the query to the PI's abstract view, using the refined
// remaining-cost estimate.
func (q *Query) State() core.QueryState {
	return core.QueryState{
		ID:        q.ID,
		Remaining: q.Runner.EstRemaining(),
		Weight:    0, // filled by the server, which knows the weight table
		Done:      q.Runner.WorkDone(),
		Fold:      q.foldID(),
	}
}

// Config configures a Server.
type Config struct {
	// RateC is the paper's constant processing rate C in U/s.
	RateC float64
	// RateFunc, when non-nil, makes the total processing rate depend on the
	// number of runnable queries — deliberately violating the paper's
	// Assumption 1 for the robustness experiments (§4.1: thrashing under
	// load, speed-up when queries leave). It receives the runnable count
	// and returns the total rate in U/s. The PIs still assume RateC.
	RateFunc func(runnable int) float64
	// MPL caps concurrently admitted queries; 0 means unlimited.
	MPL int
	// Quantum is the virtual-time step in seconds (default 0.5).
	Quantum float64
	// Weights maps priority to weight; missing priorities get weight 1.
	Weights map[int]float64
	// SpeedWindow is the observation window for per-query speed in seconds
	// (default 10).
	SpeedWindow float64
	// Workers caps the goroutines stepping runners during each tick's
	// execute phase. 0 or 1 keeps execution inline on the ticking goroutine
	// (the serial scheduler); n > 1 fans runner steps across a persistent
	// pool of n workers (the ticking goroutine included), created lazily and
	// released by Close. Virtual-time outcomes are bit-identical at every
	// setting: credits are fixed by the serial allocate phase before any
	// runner moves, and settlement folds results in admission order.
	Workers int
	// Fold enables shared-scan folding: admitted queries that seq-scan the
	// same relation at the same priority attach to one shared cursor, so each
	// page read charges every member's progress but costs the engine one
	// physical read. Progress, ETAs, and credit settlement are unchanged —
	// only the engine-cost plane (QueryInfo.Cost) shrinks. Toggle at runtime
	// with SetFold.
	Fold bool
	// FoldMinPages is the smallest relation (in pages) worth folding;
	// values below 2 mean 2.
	FoldMinPages int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.RateC <= 0 {
		out.RateC = 100
	}
	if out.Quantum <= 0 {
		out.Quantum = 0.5
	}
	if out.SpeedWindow <= 0 {
		out.SpeedWindow = 10
	}
	return out
}

// arrival is a scheduled future submission.
type arrival struct {
	at float64
	q  *Query
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Server is the simulated multi-query RDBMS.
//
// All methods are owner-goroutine only: one goroutine drives the server at a
// time. Inside Tick's execute phase the server itself fans runner steps
// across its worker pool (Config.Workers); everything those workers touch is
// either query-private (the runner and its operator tree) or read-shared
// engine state, so no other method may run concurrently with Tick.
type Server struct {
	cfg      Config
	now      float64
	nextID   int
	running  []*Query
	queue    []*Query
	done     []*Query
	arrivals arrivalHeap
	onFinish []func(*Query)

	pool      *execPool   // execute-phase workers, created lazily when Workers > 1
	scratch   tickScratch // reused allocate/execute/settle working set
	lastStats TickStats

	foldOn      bool               // folding currently enabled (see SetFold)
	foldReg     *exec.FoldRegistry // shared-cursor registry; nil until folding first enabled
	foldGrouped bool               // some live group has >= 2 members (per-segment cache)
}

// tickScratch is the tick's reusable working set: the SoA credit plane —
// runnable queries with their weights and credit balances in index-aligned
// slices — plus the execute phase's stepResult buffer and the retirement
// list. Buffers grow to the high-water mark of concurrent queries and stay,
// so a steady-state Tick (no finishes, no admissions) allocates nothing
// (pinned by TestTickSteadyStateAllocs and the BENCH_tickpath.json baseline).
type tickScratch struct {
	runnable []*Query
	weights  []float64
	credits  []float64
	results  []stepResult
	finished []*Query
	// Fold-mode partition scratch: the execute phase's work items (one per
	// solo query, one per fold group) and their shared index backing. Unused
	// — and unallocated — while no live group has two members.
	items    [][]int32
	itemBuf  []int32
	itemGids []int
}

func (t *tickScratch) ensure(n int) {
	if cap(t.runnable) < n {
		t.runnable = make([]*Query, 0, n)
		t.weights = make([]float64, n)
		t.credits = make([]float64, n)
	}
}

// New creates a server.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), nextID: 1}
	if s.cfg.Fold {
		s.foldOn = true
		s.foldReg = exec.NewFoldRegistry(s.cfg.FoldMinPages)
	}
	return s
}

// FoldEnabled reports whether shared-scan folding is currently on.
func (s *Server) FoldEnabled() bool { return s.foldOn }

// SetFold toggles shared-scan folding at runtime. Turning it off releases
// every attached member (each finishes its lap solo, at full engine cost);
// lifetime fold counters keep accumulating across toggles. Turning it on
// makes queries that have not started executing yet eligible at the next
// tick.
func (s *Server) SetFold(on bool) {
	if on == s.foldOn {
		return
	}
	s.foldOn = on
	if !on {
		if s.foldReg != nil {
			s.foldReg.ReleaseAll()
			s.foldReg.Sweep()
		}
		return
	}
	if s.foldReg == nil {
		s.foldReg = exec.NewFoldRegistry(s.cfg.FoldMinPages)
	}
	// Queries admitted while folding was off were never marked checked (the
	// attach pass only runs with folding on), so still-unstarted ones are
	// examined at the next tick. A query that attached, was released, and
	// re-enabled stays solo: its runner already holds a detached seat.
}

// foldAttachPass folds newly admitted, not-yet-started queries in admission
// order, then refreshes the "any group actually shares" cache the execute
// partition keys on. Serial phase of the tick.
func (s *Server) foldAttachPass() {
	if !s.foldOn {
		return
	}
	for _, q := range s.running {
		if q.foldChecked || q.Status != StatusRunning {
			continue
		}
		q.foldChecked = true
		if q.Runner != nil {
			s.foldReg.Attach(q.Runner, q.Priority)
		}
	}
	s.foldGrouped = s.foldReg.HasSharing()
}

// buildItems partitions runnable into execute-phase work items: one item per
// solo query, one item — in admission order — per fold group, so a shared
// cursor is stepped by exactly one goroutine per round. Returns nil (the
// identity partition) while nothing actually shares. Item index slices are
// scratch-backed and valid until the next round.
func (s *Server) buildItems(runnable []*Query) [][]int32 {
	if !s.foldGrouped {
		return nil
	}
	if cap(s.scratch.itemBuf) < len(runnable) {
		s.scratch.itemBuf = make([]int32, 0, len(runnable))
	}
	// buf never grows past len(runnable) (each index appears exactly once),
	// so the item sub-slices below stay valid.
	buf := s.scratch.itemBuf[:0]
	items := s.scratch.items[:0]
	gids := s.scratch.itemGids[:0]
	for i, q := range runnable {
		gid := q.foldID()
		if gid != 0 {
			already := false
			for _, g := range gids {
				if g == gid {
					already = true
					break
				}
			}
			if already {
				continue
			}
		}
		start := len(buf)
		buf = append(buf, int32(i))
		if gid != 0 {
			for j := i + 1; j < len(runnable); j++ {
				if runnable[j].foldID() == gid {
					buf = append(buf, int32(j))
				}
			}
			gids = append(gids, gid)
		}
		items = append(items, buf[start:len(buf):len(buf)])
	}
	s.scratch.itemBuf, s.scratch.items, s.scratch.itemGids = buf, items, gids
	return items
}

// Close releases the execute-phase worker pool, if one was started. It is
// idempotent, and a server that never ticked in parallel has nothing to
// release. A closed server can still Tick — execution falls back inline.
func (s *Server) Close() {
	if s.pool != nil {
		s.pool.close()
	}
}

// Now returns the current virtual time in seconds.
func (s *Server) Now() float64 { return s.now }

// RateC returns the configured processing rate C.
func (s *Server) RateC() float64 { return s.cfg.RateC }

// MPL returns the admission limit (0 = unlimited).
func (s *Server) MPL() int { return s.cfg.MPL }

// Quantum returns the virtual-time step one Tick advances, in seconds.
func (s *Server) Quantum() float64 { return s.cfg.Quantum }

// WeightOf maps a priority to its weight (Assumption 3's weight table).
func (s *Server) WeightOf(priority int) float64 {
	if w, ok := s.cfg.Weights[priority]; ok {
		return w
	}
	return 1
}

// OnFinish registers a callback invoked when a query finishes or fails.
func (s *Server) OnFinish(f func(*Query)) { s.onFinish = append(s.onFinish, f) }

// NewQuery wraps a runner as a query ready for Submit.
func (s *Server) NewQuery(label, sqlText string, priority int, r *exec.Runner) *Query {
	q := &Query{
		ID:       s.nextID,
		Label:    label,
		SQL:      sqlText,
		Priority: priority,
		Runner:   r,
		tracker:  core.NewSpeedTrackerSized(s.cfg.SpeedWindow, s.trackerSamples()),
	}
	s.nextID++
	return q
}

// trackerSamples sizes a query's speed-tracker ring for one observation per
// quantum across the speed window (plus slack for the ≥2-sample retention
// rule), so steady ticking never regrows it.
func (s *Server) trackerSamples() int {
	n := int(s.cfg.SpeedWindow/s.cfg.Quantum) + 4
	if n < 8 {
		n = 8
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// Submit places a query in the server: it starts running immediately if an
// MPL slot is free, otherwise it waits in the admission queue.
func (s *Server) Submit(q *Query) { s.submitAt(q, s.now) }

// submitAt is Submit with an explicit submission timestamp, so arrivals that
// fall strictly inside a quantum record their true arrival time rather than
// the enclosing tick boundary.
func (s *Server) submitAt(q *Query, at float64) {
	q.SubmitTime = at
	if s.cfg.MPL > 0 && len(s.running) >= s.cfg.MPL {
		q.Status = StatusQueued
		s.queue = append(s.queue, q)
		return
	}
	s.admitAt(q, at)
}

// ScheduleArrival submits the query automatically at virtual time at.
func (s *Server) ScheduleArrival(at float64, q *Query) {
	if at <= s.now {
		s.Submit(q)
		return
	}
	q.Status = StatusScheduled
	heap.Push(&s.arrivals, arrival{at: at, q: q})
}

func (s *Server) admit(q *Query) { s.admitAt(q, s.now) }

func (s *Server) admitAt(q *Query, at float64) {
	q.Status = StatusRunning
	q.StartTime = at
	s.running = append(s.running, q)
}

// Busy reports whether any query is running, blocked, or queued, or any
// arrival is still scheduled.
func (s *Server) Busy() bool {
	return len(s.running) > 0 || len(s.queue) > 0 || len(s.arrivals) > 0
}

// Running returns the admitted queries (running and blocked), in admission
// order.
func (s *Server) Running() []*Query { return s.running }

// Queued returns the admission queue in FIFO order.
func (s *Server) Queued() []*Query { return s.queue }

// Finished returns all terminated queries (finished, aborted, failed).
func (s *Server) Finished() []*Query { return s.done }

// Lookup finds a query by ID among running, queued, and terminated queries.
func (s *Server) Lookup(id int) (*Query, bool) {
	for _, q := range s.running {
		if q.ID == id {
			return q, true
		}
	}
	for _, q := range s.queue {
		if q.ID == id {
			return q, true
		}
	}
	for _, q := range s.done {
		if q.ID == id {
			return q, true
		}
	}
	for _, a := range s.arrivals {
		if a.q.ID == id {
			return a.q, true
		}
	}
	return nil, false
}

// Block suspends an admitted query (the §3.1 victim operation): it keeps its
// MPL slot but receives no capacity until Unblock.
func (s *Server) Block(id int) error {
	for _, q := range s.running {
		if q.ID == id {
			if q.Status != StatusRunning && q.Status != StatusBlocked {
				return fmt.Errorf("sched: query %d is %s, cannot block", id, q.Status)
			}
			q.Status = StatusBlocked
			// Forfeit accrued scheduling credit: replaying it on Unblock
			// would give the victim more (or, after an overshoot, less) than
			// its fair share in its first quantum back.
			q.credit = 0
			// A blocked query receives no capacity, so a fold seat it kept
			// would park every peer at the shared cursor's barrier forever.
			// It finishes its lap solo after Unblock.
			if q.Runner != nil {
				q.Runner.ReleaseFold()
			}
			return nil
		}
	}
	return fmt.Errorf("sched: query %d is not admitted", id)
}

// Unblock resumes a blocked query.
func (s *Server) Unblock(id int) error {
	for _, q := range s.running {
		if q.ID == id {
			if q.Status != StatusBlocked {
				return fmt.Errorf("sched: query %d is %s, cannot unblock", id, q.Status)
			}
			q.Status = StatusRunning
			return nil
		}
	}
	return fmt.Errorf("sched: query %d is not admitted", id)
}

// SetPriority changes the priority of a running, blocked, or queued query
// (the §3.1 "natural choice" for speeding a query up). It takes effect at
// the next quantum.
func (s *Server) SetPriority(id, priority int) error {
	for _, q := range s.running {
		if q.ID == id {
			// Fold groups hold equal-weight members only (that is what keeps a
			// member's charged progress identical to its solo run), so a query
			// changing priority class must leave its shared cursor.
			if q.Priority != priority && q.Runner != nil {
				q.Runner.ReleaseFold()
			}
			q.Priority = priority
			return nil
		}
	}
	for _, q := range s.queue {
		if q.ID == id {
			q.Priority = priority
			return nil
		}
	}
	return fmt.Errorf("sched: query %d is not active", id)
}

// Abort terminates a query wherever it is (running, blocked, or queued).
// Per §3.3 the abort itself is treated as free.
func (s *Server) Abort(id int) error {
	for i, q := range s.running {
		if q.ID == id {
			q.Status = StatusAborted
			q.FinishTime = s.now
			q.credit = 0 // accrued credit dies with the query
			if q.Runner != nil {
				q.Runner.ReleaseFold() // free the fold seat, or peers barrier forever
			}
			s.running = append(s.running[:i], s.running[i+1:]...)
			s.done = append(s.done, q)
			s.fillSlots()
			return nil
		}
	}
	for i, q := range s.queue {
		if q.ID == id {
			q.Status = StatusAborted
			q.FinishTime = s.now
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.done = append(s.done, q)
			return nil
		}
	}
	for i, a := range s.arrivals {
		if a.q.ID == id {
			q := a.q
			q.Status = StatusAborted
			q.FinishTime = s.now
			heap.Remove(&s.arrivals, i)
			s.done = append(s.done, q)
			return nil
		}
	}
	return fmt.Errorf("sched: query %d is not active", id)
}

func (s *Server) fillSlots() {
	for len(s.queue) > 0 && (s.cfg.MPL <= 0 || len(s.running) < s.cfg.MPL) {
		q := s.queue[0]
		s.queue = s.queue[1:]
		s.admit(q)
	}
}

// distribute delivers rate×dt work units to the runnable queries in
// proportion to their weights. It does not advance s.now (the caller does);
// finishers are stamped with the end of the segment, s.now+dt.
func (s *Server) distribute(dt float64) {
	if dt <= 0 {
		return
	}
	// Fold newly admitted queries before credit is allocated, so a pair of
	// same-table scans submitted in the same quantum shares from page 0.
	s.foldAttachPass()
	// The segment runs on the scratch SoA credit plane: runnable queries,
	// their weights, and their credit balances live in index-aligned slices,
	// loaded once here and written back once at the end. The rounds below
	// therefore touch no maps (WeightOf is called once per query per segment;
	// priorities cannot change mid-Tick) and allocate nothing.
	s.scratch.ensure(len(s.running))
	runnable := s.scratch.runnable[:0]
	for _, q := range s.running {
		if q.Status == StatusRunning {
			runnable = append(runnable, q)
		}
	}
	s.scratch.runnable = runnable
	if len(runnable) == 0 {
		return
	}
	weights := s.scratch.weights[:len(runnable)]
	credits := s.scratch.credits[:len(runnable)]
	for i, q := range runnable {
		weights[i] = s.WeightOf(q.Priority)
		credits[i] = q.credit
	}
	rate := s.cfg.RateC
	if s.cfg.RateFunc != nil {
		rate = s.cfg.RateFunc(len(runnable))
	}
	budget := rate * dt
	// Work-conserving weighted fair sharing, run as repeated rounds of the
	// three-phase pipeline (see exec_phase.go): a query that finishes
	// mid-segment hands its surplus credit back during settlement, and the
	// pool is redistributed among the queries still runnable until the
	// segment's budget is exhausted or nothing is left to run. Each round
	// retires at least one query from `runnable` (budget only refills when
	// one finishes), so the loop does at most len(runnable)+1 rounds.
	for budget > 1e-9 && len(runnable) > 0 {
		// (1) allocate: fix every query's credit for this round, serially
		// and purely in virtual time. Each share depends only on the pool
		// and the weight table, never on another query's execution.
		W := 0.0
		for i := range runnable {
			W += weights[i]
		}
		if W <= 0 {
			break
		}
		pool := budget
		budget = 0
		for i := range runnable {
			credits[i] += pool * weights[i] / W
		}
		// (2) execute: step every runner against its fixed credit —
		// concurrently when Workers allows it. A query whose accrued credit
		// is still non-positive (a prior overshoot) steps with a
		// non-positive budget, which performs no work.
		results := s.executePhase(runnable, credits, s.buildItems(runnable))
		// (3) settle: fold consumed and leftover work back in admission
		// order, so float accumulation is independent of which worker
		// finished first and bit-identical to the serial scheduler.
		// Compaction happens in the same pass, in place, preserving
		// admission order across all three parallel slices.
		keep := 0
		for i, q := range runnable {
			r := results[i]
			credits[i] -= r.consumed
			if r.done {
				// A finisher whose driver scan never reached its lap's end
				// (LIMIT satisfied, execution error) must leave its fold seat,
				// or the surviving members would wait on it forever at the
				// cursor barrier.
				if q.Runner != nil {
					q.Runner.ReleaseFold()
				}
				q.FinishTime = s.now + dt
				if r.err != nil {
					q.Status = StatusFailed
					q.Err = r.err
				} else {
					q.Status = StatusFinished
				}
				// Reclaim the finisher's unconsumed share for the rest
				// of the segment. A finishing Step can overshoot by a
				// tuple, so only a positive remainder is returned.
				if credits[i] > 0 {
					budget += credits[i]
				}
				q.credit = 0
				continue
			}
			runnable[keep] = q
			weights[keep] = weights[i]
			credits[keep] = credits[i]
			keep++
		}
		runnable = runnable[:keep]
		weights = weights[:keep]
		credits = credits[:keep]
	}
	// Persist surviving balances back to the queries (blocked queries were
	// never loaded and keep theirs untouched).
	for i, q := range runnable {
		q.credit = credits[i]
	}
}

// Tick advances virtual time by one quantum: C×quantum work units are
// distributed among runnable queries in proportion to their weights. The
// quantum is split at arrival boundaries, so a query whose arrival time
// falls strictly inside the quantum is submitted *at* that time and served
// for the rest of the quantum, instead of silently losing up to one quantum
// of service by waiting for the next Tick (and having its SubmitTime skewed
// to the tick boundary).
func (s *Server) Tick() {
	s.lastStats = TickStats{}
	end := s.now + s.cfg.Quantum
	for {
		// Submit arrivals due now (the heap guarantees anything left is due
		// strictly later, so each segment makes progress).
		for len(s.arrivals) > 0 && s.arrivals[0].at <= s.now+1e-12 {
			a := heap.Pop(&s.arrivals).(arrival)
			s.Submit(a.q)
		}
		segEnd := end
		if len(s.arrivals) > 0 && s.arrivals[0].at < segEnd {
			segEnd = s.arrivals[0].at
		}
		s.distribute(segEnd - s.now)
		s.now = segEnd
		if segEnd >= end-1e-12 {
			s.now = end
			break
		}
	}

	// Retire finished queries and refill MPL slots. Retirement is sorted by
	// query ID — not admission or completion order — so the `done` list,
	// OnFinish callbacks, and everything layered on them (the service's
	// /events stream) are byte-identical at every worker count. The finished
	// list lives in the tick scratch and is ordered by insertion sort (IDs are
	// unique; finishes per tick are few), so steady-state retirement neither
	// allocates the slice nor a sort.Slice closure.
	finished := s.scratch.finished[:0]
	kept := s.running[:0]
	for _, q := range s.running {
		if q.Status == StatusFinished || q.Status == StatusFailed {
			j := len(finished)
			finished = append(finished, q)
			for j > 0 && finished[j-1].ID > q.ID {
				finished[j] = finished[j-1]
				j--
			}
			finished[j] = q
			continue
		}
		kept = append(kept, q)
	}
	s.running = kept
	s.scratch.finished = finished
	s.done = append(s.done, finished...)
	if s.foldReg != nil {
		// Retire groups drained by this tick's detachments, folding their page
		// counters into the registry's lifetime totals.
		s.foldReg.Sweep()
	}
	s.fillSlots()

	// Speed observation happens after time advanced, so trackers see the
	// work/time pairing the PI would sample.
	for _, q := range s.running {
		q.tracker.Observe(s.now, q.Runner.WorkDone())
	}
	for _, q := range finished {
		q.tracker.Observe(s.now, q.Runner.WorkDone())
		for _, f := range s.onFinish {
			f(q)
		}
	}
}

// RunUntil ticks until virtual time reaches t.
func (s *Server) RunUntil(t float64) {
	for s.now < t && s.Busy() {
		s.Tick()
	}
}

// Stalled reports whether the server can make no further progress on its
// own: no query is runnable and no arrival is pending, so every remaining
// query is blocked (or stuck behind blocked queries in the admission queue).
func (s *Server) Stalled() bool {
	if len(s.arrivals) > 0 {
		return false
	}
	for _, q := range s.running {
		if q.Status == StatusRunning {
			return false
		}
	}
	// Queued queries could only be admitted when a running query retires,
	// which cannot happen if nothing is runnable.
	return len(s.running) > 0 || len(s.queue) > 0
}

// RunUntilIdle ticks until no work remains, the server stalls (only blocked
// queries left), or maxTime is reached; it returns the stopping time.
func (s *Server) RunUntilIdle(maxTime float64) float64 {
	for s.Busy() && !s.Stalled() && s.now < maxTime {
		s.Tick()
	}
	return s.now
}

// StateRunning returns the PI view of admitted queries: refined remaining
// costs, weights (0 for blocked queries, which receive no capacity), and
// completed work.
func (s *Server) StateRunning() []core.QueryState {
	out := make([]core.QueryState, 0, len(s.running))
	for _, q := range s.running {
		st := q.State()
		if q.Status == StatusRunning {
			st.Weight = s.WeightOf(q.Priority)
		}
		out = append(out, st)
	}
	return out
}

// StateQueued returns the PI view of the admission queue in FIFO order.
func (s *Server) StateQueued() []core.QueryState {
	out := make([]core.QueryState, 0, len(s.queue))
	for _, q := range s.queue {
		st := q.State()
		st.Weight = s.WeightOf(q.Priority)
		out = append(out, st)
	}
	return out
}

// TotalRemaining returns the sum of refined remaining costs of admitted
// queries, in U's.
func (s *Server) TotalRemaining() float64 {
	t := 0.0
	for _, q := range s.running {
		t += q.Runner.EstRemaining()
	}
	return t
}

// QuiescentEstimate predicts when all admitted and queued queries will have
// finished, from the stage model.
func (s *Server) QuiescentEstimate() float64 {
	prof := core.SimulateProfile(s.StateRunning(), s.cfg.RateC, core.SimOptions{
		MPL:    s.cfg.MPL,
		Queued: s.StateQueued(),
	})
	t := 0.0
	for _, f := range prof.Finish {
		if !math.IsInf(f, 1) && f > t {
			t = f
		}
	}
	return s.now + t
}

// SortQueriesByRemainingTime returns admitted query IDs sorted ascending by
// c_i/s_i (the paper's canonical ordering), using refined remaining costs
// and current weights.
func (s *Server) SortQueriesByRemainingTime() []int {
	states := s.StateRunning()
	sort.SliceStable(states, func(i, j int) bool {
		ri := ratioOf(states[i])
		rj := ratioOf(states[j])
		if ri != rj {
			return ri < rj
		}
		return states[i].ID < states[j].ID
	})
	ids := make([]int, len(states))
	for i, st := range states {
		ids[i] = st.ID
	}
	return ids
}

func ratioOf(st core.QueryState) float64 {
	if st.Weight <= 0 {
		return math.Inf(1)
	}
	return st.Remaining / st.Weight
}

// QueryInfo is a value snapshot of one query. Unlike *Query — whose fields
// the next Tick mutates — a QueryInfo is safe to retain, compare, or hand to
// another goroutine, which is what the serving layer does.
type QueryInfo struct {
	ID         int
	Label      string
	SQL        string
	Priority   int
	Status     Status
	SubmitTime float64
	StartTime  float64
	FinishTime float64
	Done       float64 // e_i: work completed, in U's
	Remaining  float64 // c_i: refined remaining-cost estimate, in U's
	Speed      float64 // observed execution speed over the speed window, U/s
	Weight     float64 // current scheduling weight (0 while blocked)
	// Credit is the accrued scheduling balance in U's: positive when the
	// runner could not spend its share yet (its next indivisible chunk
	// exceeds the balance), negative after a chunk overshot and the debt is
	// being paid down. Zero in steady fluid operation.
	Credit float64
	// Cost is the engine-cost plane in U's: physical work after shared-scan
	// deduplication. Equal to Done unless the query rode a shared cursor.
	Cost float64
	// FoldGroup is the shared-scan group the query currently rides, 0 when it
	// is not attached (never folded, or detached).
	FoldGroup int
	Err       string // terminal error, if the query failed
}

// InfoOf captures a value snapshot of q under this server's weight table.
func (s *Server) InfoOf(q *Query) QueryInfo {
	info := QueryInfo{
		ID:         q.ID,
		Label:      q.Label,
		SQL:        q.SQL,
		Priority:   q.Priority,
		Status:     q.Status,
		SubmitTime: q.SubmitTime,
		StartTime:  q.StartTime,
		FinishTime: q.FinishTime,
		Done:       q.Runner.WorkDone(),
		Remaining:  q.Runner.EstRemaining(),
		Speed:      q.ObservedSpeed(),
		Credit:     q.credit,
		Cost:       q.Runner.CostDone(),
		FoldGroup:  q.foldID(),
	}
	if q.Status == StatusRunning || q.Status == StatusQueued || q.Status == StatusScheduled {
		info.Weight = s.WeightOf(q.Priority)
	}
	if q.Err != nil {
		info.Err = q.Err.Error()
	}
	return info
}

// SnapshotQuery returns the info snapshot of the query with the given ID,
// looking among running, queued, terminated, and scheduled queries.
func (s *Server) SnapshotQuery(id int) (QueryInfo, bool) {
	q, ok := s.Lookup(id)
	if !ok {
		return QueryInfo{}, false
	}
	return s.InfoOf(q), true
}

// FoldStats summarizes a server's shared-scan folding state: live gauges plus
// lifetime counters (monotonic across SetFold toggles). The zero value means
// folding never engaged.
type FoldStats struct {
	Groups     int    // live fold groups (>= 1 member)
	Members    int    // live attached members
	Attaches   uint64 // lifetime member attachments
	Fetches    uint64 // lifetime pages physically read by shared cursors
	PagesSaved uint64 // lifetime page reads avoided (consumptions served shared)
}

// FoldStats returns the server's current folding summary.
func (s *Server) FoldStats() FoldStats {
	if s.foldReg == nil {
		return FoldStats{}
	}
	st := s.foldReg.Stats()
	return FoldStats{
		Groups:     st.Groups,
		Members:    st.Members,
		Attaches:   st.Attaches,
		Fetches:    st.Fetches,
		PagesSaved: st.PagesSaved(),
	}
}

// FoldTables returns the sorted table names with a live fold group — the
// signal a fold-aware router keys on.
func (s *Server) FoldTables() []string {
	if s.foldReg == nil {
		return nil
	}
	return s.foldReg.Tables()
}

// Snapshot is a consistent value copy of the server's whole state, taken
// between ticks. It carries everything the progress-indicator read path
// needs — states, weights, observed speeds — so estimates can be computed
// from the snapshot alone, on any goroutine, with no live scheduler pointers.
type Snapshot struct {
	Now         float64
	RateC       float64
	MPL         int
	Quantum     float64
	Workers     int // effective execute-phase worker count (>= 1)
	FoldEnabled bool
	Fold        FoldStats
	FoldTables  []string    // tables with a live fold group, sorted
	Running     []QueryInfo // admitted queries (running and blocked), admission order
	Queued      []QueryInfo // admission queue, FIFO order
	Scheduled   []QueryInfo // future arrivals, ascending arrival time
	Done        []QueryInfo // terminated queries, termination order
}

// Lookup finds one query's info in the snapshot, searching admitted, queued,
// scheduled, and terminated queries.
func (s *Snapshot) Lookup(id int) (QueryInfo, bool) {
	for _, list := range [4][]QueryInfo{s.Running, s.Queued, s.Scheduled, s.Done} {
		for _, q := range list {
			if q.ID == id {
				return q, true
			}
		}
	}
	return QueryInfo{}, false
}

// StatesRunning converts the snapshot's admitted queries to the PI's
// abstract view, mirroring Server.StateRunning: blocked queries carry
// weight 0 (QueryInfo.Weight is already 0 while blocked).
func (s *Snapshot) StatesRunning() []core.QueryState {
	return infoStates(s.Running)
}

// StatesQueued converts the snapshot's admission queue to the PI view in
// FIFO order, mirroring Server.StateQueued.
func (s *Snapshot) StatesQueued() []core.QueryState {
	return infoStates(s.Queued)
}

// LoadStats summarizes the snapshot as a routing load signal: how many
// queries hold MPL slots (running + blocked), how many wait in the admission
// queue, and the total refined remaining cost across admitted, queued, and
// scheduled queries in U's. Scheduled arrivals count toward the remaining
// work — a shard that has absorbed delayed admissions owes that work even
// though nothing runs yet — but not toward either depth figure.
func (s *Snapshot) LoadStats() (admitted, queued int, remainingU float64) {
	for _, q := range s.Running {
		remainingU += q.Remaining
	}
	for _, q := range s.Queued {
		remainingU += q.Remaining
	}
	for _, q := range s.Scheduled {
		remainingU += q.Remaining
	}
	return len(s.Running), len(s.Queued), remainingU
}

// Speeds returns the observed execution speed of every admitted query, the
// s in the single-query PI's t = c/s.
func (s *Snapshot) Speeds() map[int]float64 {
	out := make(map[int]float64, len(s.Running))
	for _, q := range s.Running {
		out[q.ID] = q.Speed
	}
	return out
}

func infoStates(infos []QueryInfo) []core.QueryState {
	out := make([]core.QueryState, 0, len(infos))
	for _, q := range infos {
		out = append(out, core.QueryState{ID: q.ID, Remaining: q.Remaining, Weight: q.Weight, Done: q.Done, Fold: q.FoldGroup})
	}
	return out
}

// Snapshot captures the server state as plain values.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Now: s.now, RateC: s.cfg.RateC, MPL: s.cfg.MPL, Quantum: s.cfg.Quantum,
		Workers:     s.Workers(),
		FoldEnabled: s.foldOn,
		Fold:        s.FoldStats(),
		FoldTables:  s.FoldTables(),
	}
	for _, q := range s.running {
		snap.Running = append(snap.Running, s.InfoOf(q))
	}
	for _, q := range s.queue {
		snap.Queued = append(snap.Queued, s.InfoOf(q))
	}
	if len(s.arrivals) > 0 {
		arr := append([]arrival(nil), s.arrivals...)
		sort.Slice(arr, func(i, j int) bool { return arr[i].at < arr[j].at })
		for _, a := range arr {
			info := s.InfoOf(a.q)
			info.SubmitTime = a.at // the time it will be submitted
			snap.Scheduled = append(snap.Scheduled, info)
		}
	}
	for _, q := range s.done {
		snap.Done = append(snap.Done, s.InfoOf(q))
	}
	return snap
}
