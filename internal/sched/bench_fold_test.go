package sched

import (
	"fmt"
	"testing"
)

// BenchmarkSharedScan measures tick latency for N same-table scans stepped
// solo versus folded onto one shared cursor. A fold group is one execute-phase
// work item (the scheduler steps its members in lockstep on one goroutine), so
// this benchmark is the coordination-overhead guardrail for the shared-cursor
// barrier: folded ticks must not allocate, and their latency must stay in the
// same band as the solo path. The committed baseline lives in
// BENCH_sharedscan.json; `make bench-check` ratchets the allocation counts.
func BenchmarkSharedScan(b *testing.B) {
	db := benchDB(b)
	for _, members := range []int{1, 2, 4, 8} {
		for _, fold := range []bool{false, true} {
			mode := "solo"
			if fold {
				mode = "fold"
			}
			b.Run(fmt.Sprintf("members%d/%s", members, mode), func(b *testing.B) {
				var srv *Server
				rebuild := func() {
					if srv != nil {
						srv.Close()
					}
					srv = New(Config{
						RateC:   benchPagesPerQuery * float64(members),
						Quantum: 1,
						Workers: 1,
						Fold:    fold,
					})
					for i := 0; i < members; i++ {
						r, err := db.Prepare("SELECT SUM(a) FROM big")
						if err != nil {
							b.Fatal(err)
						}
						r.CollectRows = false
						srv.Submit(srv.NewQuery(fmt.Sprintf("b%d", i), "", 0, r))
					}
				}
				// Same steady-state framing as BenchmarkParallelTick: queries
				// live 8 ticks (2048 pages at 256/tick each); rebuild every 6
				// ticks with the rebuild and one warm-up tick off the clock.
				rebuild()
				srv.Tick()
				ticksLeft := 5
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if ticksLeft == 0 {
						b.StopTimer()
						rebuild()
						srv.Tick()
						ticksLeft = 5
						b.StartTimer()
					}
					srv.Tick()
					ticksLeft--
				}
				b.StopTimer()
				srv.Close()
			})
		}
	}
}
