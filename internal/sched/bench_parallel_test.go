package sched

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
)

// BenchmarkParallelTick measures tick latency across MPL (concurrent
// queries) and execute-phase worker counts. The committed baseline lives in
// BENCH_tickpath.json; `make bench` tracks it. RateC is scaled with MPL so
// every query steps ~256 pages per tick regardless of MPL — the benchmark
// then isolates how the fixed per-tick execution work scales with workers,
// instead of shrinking each query's share as MPL grows.

const (
	benchTickPages     = 2048 // heap pages in the shared table
	benchPagesPerQuery = 256  // pages each query consumes per tick
)

var benchTickDB struct {
	once sync.Once
	db   *engine.DB
}

func benchDB(tb testing.TB) *engine.DB {
	benchTickDB.once.Do(func() {
		db := engine.Open()
		if _, err := db.Exec("CREATE TABLE big (a BIGINT)"); err != nil {
			tb.Fatal(err)
		}
		cat := db.Catalog()
		for i := 0; i < benchTickPages*64; i++ {
			if err := cat.Insert("big", types.Row{types.NewInt(int64(i % 9973))}); err != nil {
				tb.Fatal(err)
			}
		}
		if err := db.Analyze(); err != nil {
			tb.Fatal(err)
		}
		benchTickDB.db = db
	})
	return benchTickDB.db
}

func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

func BenchmarkParallelTick(b *testing.B) {
	db := benchDB(b)
	for _, mpl := range []int{1, 4, 16} {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("mpl%d/workers%d", mpl, workers), func(b *testing.B) {
				var srv *Server
				rebuild := func() {
					if srv != nil {
						srv.Close()
					}
					srv = New(Config{
						RateC:   benchPagesPerQuery * float64(mpl),
						Quantum: 1,
						Workers: workers,
					})
					for i := 0; i < mpl; i++ {
						r, err := db.Prepare("SELECT SUM(a) FROM big")
						if err != nil {
							b.Fatal(err)
						}
						r.CollectRows = false
						srv.Submit(srv.NewQuery(fmt.Sprintf("b%d", i), "", 0, r))
					}
				}
				// Each query lives 8 ticks (2048 pages at 256/tick). Rebuild
				// every 6 timed ticks, with the rebuild and one warm-up tick
				// off the clock, so the timed region is pure steady state —
				// no query completions, no scratch growth — and allocs/op
				// reports the steady-state figure the alloc tests pin.
				rebuild()
				srv.Tick()
				ticksLeft := 5
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if ticksLeft == 0 {
						b.StopTimer()
						rebuild()
						srv.Tick()
						ticksLeft = 5
						b.StartTimer()
					}
					srv.Tick()
					ticksLeft--
				}
				b.StopTimer()
				srv.Close()
			})
		}
	}
}
